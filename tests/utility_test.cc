#include "core/utility.h"

#include <gtest/gtest.h>

namespace quasaq::core {
namespace {

TEST(AxisUtilityTest, RampsAcrossTheWindow) {
  EXPECT_DOUBLE_EQ(AxisUtility(10.0, 10.0, 20.0), 0.0);
  EXPECT_DOUBLE_EQ(AxisUtility(15.0, 10.0, 20.0), 0.5);
  EXPECT_DOUBLE_EQ(AxisUtility(20.0, 10.0, 20.0), 1.0);
}

TEST(AxisUtilityTest, ClampsOutsideTheWindow) {
  EXPECT_DOUBLE_EQ(AxisUtility(5.0, 10.0, 20.0), 0.0);
  EXPECT_DOUBLE_EQ(AxisUtility(25.0, 10.0, 20.0), 1.0);
}

TEST(AxisUtilityTest, DegenerateWindowScoresMembership) {
  EXPECT_DOUBLE_EQ(AxisUtility(24.0, 24.0, 24.0), 1.0);
  EXPECT_DOUBLE_EQ(AxisUtility(12.0, 24.0, 24.0), 0.0);
}

TEST(PresentationUtilityTest, IdealDeliveryScoresOne) {
  media::AppQosRange range;
  range.min_resolution = media::kResolutionSif;
  range.max_resolution = media::kResolutionDvd;
  range.min_frame_rate = 10.0;
  range.max_frame_rate = 23.97;
  range.min_color_depth_bits = 12;
  range.max_color_depth_bits = 24;
  media::AppQos best{media::kResolutionDvd, 24, 23.97,
                     media::VideoFormat::kMpeg2};
  EXPECT_DOUBLE_EQ(PresentationUtility(best, range), 1.0);
}

TEST(PresentationUtilityTest, FloorDeliveryScoresZero) {
  media::AppQosRange range;
  range.min_resolution = media::kResolutionSif;
  range.max_resolution = media::kResolutionDvd;
  range.min_frame_rate = 10.0;
  range.max_frame_rate = 23.97;
  range.min_color_depth_bits = 12;
  range.max_color_depth_bits = 24;
  media::AppQos floor{media::kResolutionSif, 12, 10.0,
                      media::VideoFormat::kMpeg1, media::AudioQuality::kNone};
  EXPECT_DOUBLE_EQ(PresentationUtility(floor, range), 0.0);
}

TEST(PresentationUtilityTest, WeightsShiftTheScore) {
  media::AppQosRange range;
  range.min_resolution = media::kResolutionSif;
  range.max_resolution = media::kResolutionDvd;
  range.min_frame_rate = 10.0;
  range.max_frame_rate = 30.0;
  range.min_color_depth_bits = 12;
  range.max_color_depth_bits = 24;
  // Max resolution, min everything else.
  media::AppQos delivered{media::kResolutionDvd, 12, 10.0,
                          media::VideoFormat::kMpeg1};
  UtilityWeights spatial_heavy{10.0, 1.0, 1.0};
  UtilityWeights temporal_heavy{1.0, 10.0, 1.0};
  EXPECT_GT(PresentationUtility(delivered, range, spatial_heavy),
            PresentationUtility(delivered, range, temporal_heavy));
}

TEST(PresentationUtilityTest, MonotoneInDeliveredQuality) {
  media::AppQosRange range;  // default wide range
  media::AppQos low{media::kResolutionSif, 12, 15.0,
                    media::VideoFormat::kMpeg1};
  media::AppQos high{media::kResolutionDvd, 24, 23.97,
                     media::VideoFormat::kMpeg2};
  EXPECT_LT(PresentationUtility(low, range),
            PresentationUtility(high, range));
}

TEST(SatisfactionGainTest, GainStaysPositiveAndBounded) {
  media::AppQosRange range;
  auto gain = MakeSatisfactionGain(range);
  Plan plan;
  plan.delivered_qos = media::AppQos{media::kResolutionQcif, 12, 5.0,
                                     media::VideoFormat::kMpeg1};
  EXPECT_GE(gain(plan), 0.1);
  plan.delivered_qos = media::AppQos{media::kResolutionDvd, 24, 60.0,
                                     media::VideoFormat::kMpeg2};
  EXPECT_LE(gain(plan), 1.0);
}

TEST(SatisfactionGainTest, PrefersRicherDelivery) {
  media::AppQosRange range;
  auto gain = MakeSatisfactionGain(range);
  Plan low;
  low.delivered_qos = media::AppQos{media::kResolutionSif, 12, 15.0,
                                    media::VideoFormat::kMpeg1};
  Plan high;
  high.delivered_qos = media::AppQos{media::kResolutionDvd, 24, 23.97,
                                     media::VideoFormat::kMpeg2};
  EXPECT_GT(gain(high), gain(low));
}

}  // namespace
}  // namespace quasaq::core
