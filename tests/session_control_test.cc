// User actions during playback (paper §3.2: renegotiation "may also be
// needed due to user actions during playback"): pause releases the
// stream's resources, resume re-admits them.

#include <gtest/gtest.h>

#include "core/system.h"

namespace quasaq::core {
namespace {

class SessionControlTest : public ::testing::Test {
 protected:
  SessionControlTest() {
    MediaDbSystem::Options options;
    options.kind = SystemKind::kVdbmsQuasaq;
    options.seed = 3;
    options.library.min_duration_seconds = 60.0;
    options.library.max_duration_seconds = 90.0;
    system_ = std::make_unique<MediaDbSystem>(&simulator_, options);
  }

  MediaDbSystem::DeliveryOutcome StartOne() {
    query::QosRequirement qos;
    qos.range.min_frame_rate = 1.0;
    return system_->SubmitDelivery(SiteId(0), LogicalOid(0), qos);
  }

  // A DVD-rate session: only satisfiable by the master replica.
  MediaDbSystem::DeliveryOutcome StartHighRate() {
    query::QosRequirement qos;
    qos.range.min_resolution = media::kResolutionSvcd;
    qos.range.min_color_depth_bits = 24;
    qos.range.min_frame_rate = 20.0;
    return system_->SubmitDelivery(SiteId(0), LogicalOid(0), qos);
  }

  sim::Simulator simulator_;
  std::unique_ptr<MediaDbSystem> system_;
};

TEST_F(SessionControlTest, PauseReleasesResources) {
  MediaDbSystem::DeliveryOutcome outcome = StartOne();
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_GT(system_->pool().MaxUtilization(), 0.0);
  ASSERT_TRUE(system_->PauseSession(outcome.session).ok());
  EXPECT_DOUBLE_EQ(system_->pool().MaxUtilization(), 0.0);
  // The session still exists (it is paused, not cancelled).
  EXPECT_EQ(system_->outstanding_sessions(), 1);
}

TEST_F(SessionControlTest, PausedSessionDoesNotComplete) {
  MediaDbSystem::DeliveryOutcome outcome = StartOne();
  ASSERT_TRUE(outcome.status.ok());
  ASSERT_TRUE(system_->PauseSession(outcome.session).ok());
  simulator_.RunUntil(SecondsToSimTime(3600.0));
  EXPECT_EQ(system_->stats().completed, 0u);
  EXPECT_EQ(system_->outstanding_sessions(), 1);
}

TEST_F(SessionControlTest, ResumeReacquiresAndCompletes) {
  MediaDbSystem::DeliveryOutcome outcome = StartOne();
  ASSERT_TRUE(outcome.status.ok());
  simulator_.RunUntil(SecondsToSimTime(10.0));
  ASSERT_TRUE(system_->PauseSession(outcome.session).ok());
  simulator_.RunUntil(SecondsToSimTime(500.0));
  ASSERT_TRUE(system_->ResumeSession(outcome.session).ok());
  EXPECT_GT(system_->pool().MaxUtilization(), 0.0);
  simulator_.RunAll();
  EXPECT_EQ(system_->stats().completed, 1u);
  EXPECT_DOUBLE_EQ(system_->pool().MaxUtilization(), 0.0);
}

TEST_F(SessionControlTest, PauseExtendsWallClockCompletion) {
  MediaDbSystem::DeliveryOutcome outcome = StartOne();
  ASSERT_TRUE(outcome.status.ok());
  SimTime completed_at = 0;
  system_->set_on_session_complete(
      [&completed_at](SessionId, SimTime t) { completed_at = t; });
  simulator_.RunUntil(SecondsToSimTime(10.0));
  ASSERT_TRUE(system_->PauseSession(outcome.session).ok());
  simulator_.RunUntil(SecondsToSimTime(110.0));  // paused for 100 s
  ASSERT_TRUE(system_->ResumeSession(outcome.session).ok());
  simulator_.RunAll();
  // Duration is 60-90 s; with a 100 s pause the completion must land
  // beyond 160 s.
  EXPECT_GT(completed_at, SecondsToSimTime(160.0));
}

TEST_F(SessionControlTest, DoublePauseAndBlindResumeFail) {
  MediaDbSystem::DeliveryOutcome outcome = StartOne();
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(system_->ResumeSession(outcome.session).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(system_->PauseSession(outcome.session).ok());
  EXPECT_EQ(system_->PauseSession(outcome.session).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(system_->PauseSession(SessionId(999)).code(),
            StatusCode::kNotFound);
}

TEST_F(SessionControlTest, ResumeFailsWhenResourcesAreGone) {
  MediaDbSystem::DeliveryOutcome outcome = StartHighRate();
  ASSERT_TRUE(outcome.status.ok());
  ASSERT_TRUE(system_->PauseSession(outcome.session).ok());
  // Occupy every link with more DVD-rate sessions while the user is
  // paused: the released ~330 KB/s slot gets taken.
  query::QosRequirement qos;
  qos.range.min_resolution = media::kResolutionSvcd;
  qos.range.min_color_depth_bits = 24;
  qos.range.min_frame_rate = 20.0;
  for (int i = 0; i < 400; ++i) {
    system_->SubmitDelivery(SiteId(i % 3), LogicalOid(i % 15), qos);
  }
  Status resumed = system_->ResumeSession(outcome.session);
  EXPECT_EQ(resumed.code(), StatusCode::kResourceExhausted);
  // Still paused; a later retry after load drains succeeds.
  simulator_.RunAll();
  EXPECT_TRUE(system_->ResumeSession(outcome.session).ok());
}

TEST_F(SessionControlTest, CancelPausedSessionIsClean) {
  MediaDbSystem::DeliveryOutcome outcome = StartOne();
  ASSERT_TRUE(outcome.status.ok());
  ASSERT_TRUE(system_->PauseSession(outcome.session).ok());
  ASSERT_TRUE(system_->CancelSession(outcome.session).ok());
  EXPECT_EQ(system_->outstanding_sessions(), 0);
  EXPECT_DOUBLE_EQ(system_->pool().MaxUtilization(), 0.0);
}

}  // namespace
}  // namespace quasaq::core
