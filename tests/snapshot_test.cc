#include "metadata/snapshot.h"

#include <gtest/gtest.h>

#include "media/library.h"

namespace quasaq::meta {
namespace {

std::vector<SiteId> ThreeSites() {
  return {SiteId(0), SiteId(1), SiteId(2)};
}

DistributedMetadataEngine PopulatedEngine() {
  DistributedMetadataEngine engine(ThreeSites(),
                                   DistributedMetadataEngine::Options());
  media::LibraryOptions options;
  options.num_videos = 6;
  media::VideoLibrary library =
      media::BuildExperimentLibrary(options, ThreeSites());
  QosSampler sampler;
  for (const media::VideoContent& content : library.contents) {
    EXPECT_TRUE(engine.InsertContent(content).ok());
  }
  for (const media::ReplicaInfo& replica : library.replicas) {
    EXPECT_TRUE(engine.InsertReplica(replica).ok());
    EXPECT_TRUE(
        engine.SetQosProfile(replica.id, sampler.SampleStreaming(replica))
            .ok());
  }
  return engine;
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  DistributedMetadataEngine source = PopulatedEngine();
  std::string snapshot = SerializeCatalog(source);
  EXPECT_NE(snapshot.find("content,0,"), std::string::npos);
  EXPECT_NE(snapshot.find("replica,"), std::string::npos);
  EXPECT_NE(snapshot.find("profile,"), std::string::npos);

  DistributedMetadataEngine restored(ThreeSites(),
                                     DistributedMetadataEngine::Options());
  ASSERT_TRUE(LoadCatalog(snapshot, &restored).ok());

  ASSERT_EQ(restored.AllContentIds().size(), source.AllContentIds().size());
  for (LogicalOid oid : source.AllContentIds()) {
    SiteId owner = source.OwnerOf(oid);
    auto original = source.FindContent(owner, oid);
    auto copy = restored.FindContent(owner, oid);
    ASSERT_TRUE(copy.has_value());
    EXPECT_EQ(copy->title, original->title);
    EXPECT_EQ(copy->keywords, original->keywords);
    ASSERT_EQ(copy->features.size(), original->features.size());
    for (size_t i = 0; i < copy->features.size(); ++i) {
      EXPECT_NEAR(copy->features[i], original->features[i], 1e-9);
    }
    EXPECT_NEAR(copy->duration_seconds, original->duration_seconds, 1e-6);
    EXPECT_EQ(copy->master_quality, original->master_quality);

    auto original_replicas = source.ReplicasOf(owner, oid);
    auto copy_replicas = restored.ReplicasOf(owner, oid);
    ASSERT_EQ(copy_replicas.size(), original_replicas.size());
    for (size_t i = 0; i < copy_replicas.size(); ++i) {
      EXPECT_EQ(copy_replicas[i].id, original_replicas[i].id);
      EXPECT_EQ(copy_replicas[i].site, original_replicas[i].site);
      EXPECT_EQ(copy_replicas[i].qos, original_replicas[i].qos);
      EXPECT_EQ(copy_replicas[i].frame_seed,
                original_replicas[i].frame_seed);
      EXPECT_NEAR(copy_replicas[i].size_kb, original_replicas[i].size_kb,
                  original_replicas[i].size_kb * 1e-6);
      auto original_profile =
          source.FindQosProfile(owner, original_replicas[i].id);
      auto copy_profile =
          restored.FindQosProfile(owner, copy_replicas[i].id);
      ASSERT_TRUE(copy_profile.has_value());
      EXPECT_NEAR(copy_profile->cpu_fraction,
                  original_profile->cpu_fraction, 1e-9);
      EXPECT_NEAR(copy_profile->net_kbps, original_profile->net_kbps, 1e-6);
    }
  }
}

TEST(SnapshotTest, EmptyCatalogRoundTrips) {
  DistributedMetadataEngine empty(ThreeSites(),
                                  DistributedMetadataEngine::Options());
  std::string snapshot = SerializeCatalog(empty);
  DistributedMetadataEngine restored(ThreeSites(),
                                     DistributedMetadataEngine::Options());
  ASSERT_TRUE(LoadCatalog(snapshot, &restored).ok());
  EXPECT_TRUE(restored.AllContentIds().empty());
}

TEST(SnapshotTest, RejectsMalformedRecords) {
  DistributedMetadataEngine engine(ThreeSites(),
                                   DistributedMetadataEngine::Options());
  Status status = LoadCatalog("bogus,1,2,3\n", &engine);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 1"), std::string::npos);
  EXPECT_NE(status.message().find("bogus"), std::string::npos);
}

TEST(SnapshotTest, RejectsShortContentRecord) {
  DistributedMetadataEngine engine(ThreeSites(),
                                   DistributedMetadataEngine::Options());
  EXPECT_FALSE(LoadCatalog("content,0,video00,60\n", &engine).ok());
}

TEST(SnapshotTest, RejectsReplicaBeforeContent) {
  DistributedMetadataEngine engine(ThreeSites(),
                                   DistributedMetadataEngine::Options());
  Status status = LoadCatalog(
      "replica,0,7,0,352,288,24,23.97,0,3,60,42\n", &engine);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not registered"), std::string::npos);
}

TEST(SnapshotTest, RejectsOutOfRangeEnums) {
  DistributedMetadataEngine engine(ThreeSites(),
                                   DistributedMetadataEngine::Options());
  EXPECT_FALSE(
      LoadCatalog(
          "content,0,v,60,news,0.5,720,480,24,23.97,9,3\n", &engine)
          .ok());
}

TEST(SnapshotTest, CommentsAndBlanksIgnored) {
  DistributedMetadataEngine engine(ThreeSites(),
                                   DistributedMetadataEngine::Options());
  ASSERT_TRUE(LoadCatalog("# header\n\n# more\n", &engine).ok());
}

}  // namespace
}  // namespace quasaq::meta
