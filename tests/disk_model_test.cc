#include "storage/disk_model.h"

#include <gtest/gtest.h>

#include "media/library.h"
#include "storage/storage_manager.h"

namespace quasaq::storage {
namespace {

TEST(DiskModelTest, RandomReadPaysSeek) {
  DiskModel disk;
  SimTime random1 = disk.ReadPages(0, 1);
  SimTime random2 = disk.ReadPages(1000, 1);
  // Both include seek + rotation (~12 ms) + transfer.
  EXPECT_GT(random1, MillisToSimTime(11.0));
  EXPECT_GT(random2, MillisToSimTime(11.0));
}

TEST(DiskModelTest, SequentialContinuationSkipsSeek) {
  DiskModel disk;
  disk.ReadPages(0, 4);
  SimTime sequential = disk.ReadPages(4, 4);
  // 4 pages x 8 KB at 60 MB/s ~ 0.53 ms, no seek.
  EXPECT_LT(sequential, MillisToSimTime(1.0));
  EXPECT_EQ(disk.sequential_reads(), 1u);
  EXPECT_EQ(disk.total_reads(), 2u);
}

TEST(DiskModelTest, TransferScalesWithPages) {
  DiskModel disk;
  disk.ReadPages(0, 1);
  SimTime small = disk.ReadPages(1, 10);
  SimTime large = disk.ReadPages(11, 100);
  EXPECT_GT(large, small * 5);
}

TEST(BufferPoolTest, MissThenHit) {
  DiskModel disk;
  BufferPool pool(&disk, 16);
  SimTime miss = pool.ReadPage(42);
  EXPECT_GT(miss, 0);
  SimTime hit = pool.ReadPage(42);
  EXPECT_EQ(hit, 0);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(pool.stats().HitRate(), 0.5);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  DiskModel disk;
  BufferPool pool(&disk, 2);
  pool.ReadPage(1);
  pool.ReadPage(2);
  pool.ReadPage(1);  // 1 is now most recent
  pool.ReadPage(3);  // evicts 2
  EXPECT_TRUE(pool.Contains(1));
  EXPECT_FALSE(pool.Contains(2));
  EXPECT_TRUE(pool.Contains(3));
  EXPECT_EQ(pool.resident_pages(), 2u);
}

TEST(BufferPoolTest, RangeReadCoalescesMisses) {
  DiskModel disk;
  BufferPool pool(&disk, 64);
  SimTime cold = pool.ReadRange(0, 16);
  EXPECT_GT(cold, 0);
  // One coalesced sequential read, not 16 random ones.
  EXPECT_EQ(disk.total_reads(), 1u);
  SimTime warm = pool.ReadRange(0, 16);
  EXPECT_EQ(warm, 0);
  EXPECT_EQ(pool.stats().hits, 16u);
}

TEST(BufferPoolTest, PartialRangeOnlyFetchesMissingRuns) {
  DiskModel disk;
  BufferPool pool(&disk, 64);
  pool.ReadPage(5);  // warm one page in the middle
  uint64_t reads_before = disk.total_reads();
  pool.ReadRange(0, 10);
  // Two runs around the cached page 5.
  EXPECT_EQ(disk.total_reads(), reads_before + 2);
}

TEST(StorageManagerBlockReadTest, StreamingReadIsMostlySequential) {
  StorageManager manager(SiteId(0), StorageManager::Options());
  media::ReplicaInfo replica;
  replica.id = PhysicalOid(1);
  replica.content = LogicalOid(1);
  replica.site = SiteId(0);
  replica.qos = media::QualityLadder::Standard().levels[1];
  replica.duration_seconds = 60.0;
  media::FinalizeReplicaSizing(replica);
  ASSERT_TRUE(manager.store().Put(replica).ok());

  // Stream the object one second at a time (~15 pages per call).
  SimTime total_latency = 0;
  int pages_per_call =
      static_cast<int>(replica.bitrate_kbps / 8.0) + 1;
  int calls = 50;
  for (int i = 0; i < calls; ++i) {
    Result<SimTime> latency = manager.ReadObjectPages(
        replica.id, static_cast<int64_t>(i) * pages_per_call,
        pages_per_call);
    ASSERT_TRUE(latency.ok()) << latency.status().ToString();
    total_latency += *latency;
  }
  // 50 s of a ~119 KB/s stream from a 60 MB/s disk: total I/O far below
  // real time (one seek + mostly sequential transfer).
  EXPECT_LT(total_latency, SecondsToSimTime(1.0));
  EXPECT_GT(manager.disk_model().sequential_reads(), 40u);
}

TEST(StorageManagerBlockReadTest, ErrorsOnBadInputs) {
  StorageManager manager(SiteId(0), StorageManager::Options());
  EXPECT_EQ(manager.ReadObjectPages(PhysicalOid(9), 0, 1).status().code(),
            StatusCode::kNotFound);
  media::ReplicaInfo replica;
  replica.id = PhysicalOid(1);
  replica.content = LogicalOid(1);
  replica.site = SiteId(0);
  replica.qos = media::QualityLadder::Standard().levels[3];
  replica.duration_seconds = 10.0;
  media::FinalizeReplicaSizing(replica);
  ASSERT_TRUE(manager.store().Put(replica).ok());
  EXPECT_EQ(
      manager.ReadObjectPages(replica.id, -1, 1).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      manager.ReadObjectPages(replica.id, 0, 1 << 20).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace quasaq::storage
