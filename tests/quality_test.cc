#include "media/quality.h"

#include "media/library.h"

#include <gtest/gtest.h>

namespace quasaq::media {
namespace {

TEST(ResolutionTest, PixelCountAndOrdering) {
  EXPECT_EQ(kResolutionVcd.PixelCount(), 352 * 288);
  EXPECT_LT(kResolutionQcif, kResolutionSif);
  EXPECT_LT(kResolutionSif, kResolutionVcd);
  EXPECT_LT(kResolutionVcd, kResolutionSvcd);
  EXPECT_LT(kResolutionSvcd, kResolutionDvd);
}

TEST(ResolutionTest, ToStringFormat) {
  EXPECT_EQ(ResolutionToString(kResolutionDvd), "720x480");
}

TEST(VideoFormatTest, Names) {
  EXPECT_EQ(VideoFormatName(VideoFormat::kMpeg1), "MPEG1");
  EXPECT_EQ(VideoFormatName(VideoFormat::kMpeg2), "MPEG2");
}

TEST(AppQosTest, ToStringMentionsAllAxes) {
  AppQos qos{kResolutionVcd, 24, 23.97, VideoFormat::kMpeg1};
  std::string s = AppQosToString(qos);
  EXPECT_NE(s.find("352x288"), std::string::npos);
  EXPECT_NE(s.find("24bit"), std::string::npos);
  EXPECT_NE(s.find("23.97"), std::string::npos);
  EXPECT_NE(s.find("MPEG1"), std::string::npos);
}

TEST(AppQosRangeTest, DefaultRangeIsWideOpen) {
  AppQosRange range;
  EXPECT_TRUE(range.Contains(
      AppQos{kResolutionQcif, 12, 10.0, VideoFormat::kMpeg1}));
  EXPECT_TRUE(range.Contains(
      AppQos{kResolutionDvd, 24, 23.97, VideoFormat::kMpeg2}));
}

TEST(AppQosRangeTest, ResolutionBoundsAreByPixelCount) {
  AppQosRange range;
  range.min_resolution = kResolutionVcd;
  range.max_resolution = kResolutionDvd;
  EXPECT_FALSE(range.Contains(
      AppQos{kResolutionSif, 24, 23.97, VideoFormat::kMpeg1}));
  EXPECT_TRUE(range.Contains(
      AppQos{kResolutionVcd, 24, 23.97, VideoFormat::kMpeg1}));
  EXPECT_TRUE(range.Contains(
      AppQos{kResolutionDvd, 24, 23.97, VideoFormat::kMpeg1}));
}

TEST(AppQosRangeTest, FrameRateBounds) {
  AppQosRange range;
  range.min_frame_rate = 15.0;
  range.max_frame_rate = 30.0;
  AppQos qos{kResolutionVcd, 24, 10.0, VideoFormat::kMpeg1};
  EXPECT_FALSE(range.Contains(qos));
  qos.frame_rate = 23.97;
  EXPECT_TRUE(range.Contains(qos));
  qos.frame_rate = 60.0;
  EXPECT_FALSE(range.Contains(qos));
}

TEST(AppQosRangeTest, ColorDepthBounds) {
  AppQosRange range;
  range.min_color_depth_bits = 24;
  AppQos qos{kResolutionVcd, 12, 23.97, VideoFormat::kMpeg1};
  EXPECT_FALSE(range.Contains(qos));
  qos.color_depth_bits = 24;
  EXPECT_TRUE(range.Contains(qos));
}

TEST(AppQosRangeTest, FormatMask) {
  AppQosRange range;
  range.accepted_formats = 1u << static_cast<int>(VideoFormat::kMpeg1);
  EXPECT_TRUE(range.AcceptsFormat(VideoFormat::kMpeg1));
  EXPECT_FALSE(range.AcceptsFormat(VideoFormat::kMpeg2));
  AppQos qos{kResolutionVcd, 24, 23.97, VideoFormat::kMpeg2};
  EXPECT_FALSE(range.Contains(qos));
}

TEST(AppQosRangeTest, ToStringMentionsBounds) {
  AppQosRange range;
  range.min_resolution = kResolutionSif;
  std::string s = range.ToString();
  EXPECT_NE(s.find("320x240"), std::string::npos);
  EXPECT_NE(s.find("MPEG1"), std::string::npos);
}

TEST(BitrateModelTest, MoreResolutionMeansMoreBitrate) {
  AppQos low{kResolutionSif, 24, 23.97, VideoFormat::kMpeg1};
  AppQos high{kResolutionDvd, 24, 23.97, VideoFormat::kMpeg1};
  EXPECT_LT(EstimateBitrateKBps(low), EstimateBitrateKBps(high));
}

TEST(BitrateModelTest, HigherFrameRateAndDepthCostMore) {
  AppQos base{kResolutionVcd, 24, 23.97, VideoFormat::kMpeg1};
  AppQos slow = base;
  slow.frame_rate = 10.0;
  EXPECT_LT(EstimateBitrateKBps(slow), EstimateBitrateKBps(base));
  AppQos shallow = base;
  shallow.color_depth_bits = 12;
  // Halving color depth halves the video component (audio unchanged).
  EXPECT_NEAR(EstimateVideoBitrateKBps(shallow),
              EstimateVideoBitrateKBps(base) / 2.0, 1e-9);
}

TEST(BitrateModelTest, AudioTrackAddsItsBitrate) {
  AppQos with_cd{kResolutionVcd, 24, 23.97, VideoFormat::kMpeg1,
                 AudioQuality::kCd};
  AppQos without{kResolutionVcd, 24, 23.97, VideoFormat::kMpeg1,
                 AudioQuality::kNone};
  EXPECT_NEAR(EstimateBitrateKBps(with_cd) - EstimateBitrateKBps(without),
              AudioBitrateKBps(AudioQuality::kCd), 1e-9);
}

TEST(AudioQualityTest, BitratesOrderByFidelity) {
  EXPECT_DOUBLE_EQ(AudioBitrateKBps(AudioQuality::kNone), 0.0);
  EXPECT_LT(AudioBitrateKBps(AudioQuality::kPhone),
            AudioBitrateKBps(AudioQuality::kFm));
  EXPECT_LT(AudioBitrateKBps(AudioQuality::kFm),
            AudioBitrateKBps(AudioQuality::kCd));
  EXPECT_EQ(AudioQualityName(AudioQuality::kCd), "cd");
}

TEST(AppQosRangeTest, AudioBounds) {
  AppQosRange range;
  range.min_audio = AudioQuality::kFm;
  AppQos qos{kResolutionVcd, 24, 23.97, VideoFormat::kMpeg1,
             AudioQuality::kPhone};
  EXPECT_FALSE(range.Contains(qos));
  qos.audio = AudioQuality::kFm;
  EXPECT_TRUE(range.Contains(qos));
  range.max_audio = AudioQuality::kFm;
  qos.audio = AudioQuality::kCd;
  EXPECT_FALSE(range.Contains(qos));
}

TEST(BitrateModelTest, Mpeg2IsMoreEfficientPerPixel) {
  AppQos mpeg1{kResolutionDvd, 24, 23.97, VideoFormat::kMpeg1};
  AppQos mpeg2{kResolutionDvd, 24, 23.97, VideoFormat::kMpeg2};
  EXPECT_LT(EstimateBitrateKBps(mpeg2), EstimateBitrateKBps(mpeg1));
}

TEST(BitrateModelTest, LadderBitratesMatchLinkClasses) {
  // The calibration targets from DESIGN.md: DVD-class ~300 KB/s,
  // VCD-class ~120 KB/s, SIF ~28 KB/s, QCIF single-digit KB/s.
  QualityLadder ladder = QualityLadder::Standard();
  EXPECT_NEAR(EstimateBitrateKBps(ladder.levels[0]), 327.0, 30.0);
  EXPECT_NEAR(EstimateBitrateKBps(ladder.levels[1]), 135.0, 15.0);
  EXPECT_NEAR(EstimateBitrateKBps(ladder.levels[2]), 36.0, 7.0);
  EXPECT_LT(EstimateBitrateKBps(ladder.levels[3]), 10.0);
}

}  // namespace
}  // namespace quasaq::media
