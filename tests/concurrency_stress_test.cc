#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cache/cache_manager.h"
#include "cache/segment_cache.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/session_manager.h"
#include "core/system.h"
#include "net/topology.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resource/composite_api.h"
#include "resource/pool.h"
#include "simcore/simulator.h"

// Multi-threaded stress tests for the subsystems that carry thread-safety
// annotations (src/common/sync.h): ResourcePool, CompositeQosApi,
// SegmentCache/CacheManager, and SessionManager. These are the tests the
// `tsan` CI leg runs under -fsanitize=thread — the annotations promise
// the locking discipline is *declared* correctly; TSan on these
// interleavings checks the declarations describe reality.
//
// The simulator clock stays single-threaded throughout (see the
// SessionManager header): worker threads mutate sessions while the
// clock stands still, and RunAll happens after every thread has joined.

namespace quasaq {
namespace {

constexpr int kThreads = 8;
constexpr int kIterations = 400;

BucketId Net(int site) {
  return {SiteId(site), ResourceKind::kNetworkBandwidth};
}

TEST(ConcurrencyStressTest, PoolAcquireReleaseNeverCorruptsUsage) {
  res::ResourcePool pool;
  for (int site = 0; site < 4; ++site) {
    ASSERT_TRUE(pool.DeclareBucket(Net(site), 1000.0).ok());
  }
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> rejected{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &admitted, &rejected, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kIterations; ++i) {
        ResourceVector demand;
        demand.Add(Net(static_cast<int>(rng.UniformInt(0, 3))),
                   rng.Uniform(1.0, 400.0));
        if (pool.Acquire(demand).ok()) {
          ++admitted;
          // The snapshot any concurrent reader costs against is
          // internally consistent: usage never exceeds capacity.
          EXPECT_LE(pool.MaxUtilization(), 1.0 + 1e-9);
          ASSERT_TRUE(pool.Release(demand).ok());
        } else {
          ++rejected;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(admitted + rejected, uint64_t{kThreads} * kIterations);
  // Every admitted demand was released: the pool drains to zero.
  for (int site = 0; site < 4; ++site) {
    EXPECT_NEAR(pool.Used(Net(site)), 0.0, 1e-6);
  }
}

TEST(ConcurrencyStressTest, CompositeApiReserveReleaseBalances) {
  res::ResourcePool pool;
  ASSERT_TRUE(pool.DeclareBucket(Net(0), 500.0).ok());
  res::CompositeQosApi api(&pool);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&api, t] {
      Rng rng(2000 + t);
      std::vector<res::ReservationId> held;
      for (int i = 0; i < kIterations; ++i) {
        if (!held.empty() && rng.Bernoulli(0.5)) {
          EXPECT_TRUE(api.Release(held.back()).ok());
          held.pop_back();
        } else {
          ResourceVector demand;
          demand.Add(Net(0), rng.Uniform(1.0, 60.0));
          Result<res::ReservationId> r = api.Reserve(demand);
          if (r.ok()) held.push_back(*r);
        }
      }
      for (res::ReservationId id : held) {
        EXPECT_TRUE(api.Release(id).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(api.active_reservations(), 0u);
  EXPECT_NEAR(pool.Used(Net(0)), 0.0, 1e-6);
  res::CompositeQosApi::Stats stats = api.stats();
  EXPECT_EQ(stats.admitted, stats.released);
}

TEST(ConcurrencyStressTest, SegmentCacheReadsFillsAndEvictions) {
  // Tiny capacity: fills, evictions, and rejections all exercised.
  cache::SegmentCache segment_cache(
      {.capacity_kb = 64.0, .policy = "lru", .popularity_half_life = 0});
  std::atomic<uint64_t> accesses{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&segment_cache, &accesses, t] {
      Rng rng(3000 + t);
      for (int i = 0; i < kIterations; ++i) {
        PhysicalOid replica(static_cast<int>(rng.UniformInt(0, 3)));
        cache::SegmentKey key{replica,
                              static_cast<int32_t>(rng.UniformInt(0, 15))};
        double roll = rng.Uniform(0.0, 1.0);
        if (roll < 0.70) {
          segment_cache.Access(key, 4.0, SimTime(i) * kSecond);
          ++accesses;
        } else if (roll < 0.80) {
          segment_cache.Contains(key);  // planner peek, no side effects
        } else if (roll < 0.90) {
          EXPECT_GE(segment_cache.CachedKbOf(replica), 0.0);
        } else if (roll < 0.95) {
          segment_cache.Erase(key);
        } else {
          segment_cache.EraseReplica(replica);
        }
        EXPECT_LE(segment_cache.used_kb(),
                  segment_cache.capacity_kb() + 1e-9);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  cache::SegmentCache::Counters counters = segment_cache.counters();
  EXPECT_EQ(counters.hits + counters.misses, accesses.load());
  EXPECT_LE(segment_cache.used_kb(), segment_cache.capacity_kb() + 1e-9);
}

TEST(ConcurrencyStressTest, CacheManagerParallelSitesAndInvalidation) {
  std::vector<SiteId> sites = {SiteId(0), SiteId(1), SiteId(2), SiteId(3)};
  cache::CacheManager::Options options;
  options.cache.capacity_kb = 512.0;
  options.cache.policy = "utility";
  cache::CacheManager manager(sites, options);

  std::vector<media::ReplicaInfo> replicas(6);
  for (size_t r = 0; r < replicas.size(); ++r) {
    replicas[r].id = PhysicalOid(static_cast<int64_t>(r));
    replicas[r].content = LogicalOid(static_cast<int64_t>(r));
    replicas[r].site = sites[r % sites.size()];
    replicas[r].duration_seconds = 40.0;
    replicas[r].bitrate_kbps = 16.0;
    replicas[r].size_kb = 640.0;
  }

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&manager, &replicas, &sites, t] {
      Rng rng(4000 + t);
      for (int i = 0; i < kIterations / 4; ++i) {
        const media::ReplicaInfo& replica =
            replicas[rng.UniformInt(0, static_cast<int>(replicas.size()) - 1)];
        SiteId site = sites[rng.UniformInt(0, 3)];
        double roll = rng.Uniform(0.0, 1.0);
        if (roll < 0.6) {
          manager.OnStream(site, replica, SimTime(i) * kSecond);
        } else if (roll < 0.9) {
          double fraction = manager.CachedFraction(site, replica);
          EXPECT_GE(fraction, 0.0);
          EXPECT_LE(fraction, 1.0);
        } else {
          manager.EraseReplica(replica.id);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (SiteId site : sites) {
    const cache::SegmentCache* c = manager.at(site);
    ASSERT_NE(c, nullptr);
    EXPECT_LE(c->used_kb(), c->capacity_kb() + 1e-9);
  }
  cache::SegmentCache::Counters total = manager.TotalCounters();
  EXPECT_GT(total.hits + total.misses, 0u);
}

// The pause/resume interleaving stress: threads start, pause, resume and
// cancel sessions concurrently while the simulated clock stands still;
// the release-exactly-once invariant must survive every interleaving.
TEST(ConcurrencyStressTest, SessionLifecycleInterleavings) {
  constexpr int kSessionsPerThread = 24;
  sim::Simulator simulator;
  res::ResourcePool pool;
  // Big enough that every Start and every Resume re-admission fits:
  // the invariant under test is bookkeeping, not admission pressure.
  ASSERT_TRUE(
      pool.DeclareBucket(Net(0), 1e9).ok());
  res::CompositeQosApi api(&pool);
  core::SessionManager manager(&simulator, &api);
  std::atomic<uint64_t> completions{0};
  manager.set_on_complete(
      [&completions](SessionId, SimTime) { ++completions; });

  // Phase 1: concurrent admissions (reservation-backed and VDBMS-pinned
  // sessions mixed).
  std::vector<std::vector<SessionId>> started(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(5000 + t);
        for (int i = 0; i < kSessionsPerThread; ++i) {
          core::SessionManager::Record record;
          record.content = LogicalOid(i);
          record.site = SiteId(0);
          if (rng.Bernoulli(0.7)) {
            ResourceVector demand;
            demand.Add(Net(0), rng.Uniform(100.0, 900.0));
            Result<res::ReservationId> r = api.Reserve(demand);
            ASSERT_TRUE(r.ok());
            record.reservation = *r;
          } else {
            record.vdbms_kbps = rng.Uniform(100.0, 900.0);
          }
          started[t].push_back(
              manager.Start(record, rng.Uniform(10.0, 120.0)));
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  ASSERT_EQ(manager.outstanding(), kThreads * kSessionsPerThread);

  // Phase 2: concurrent pause/resume/cancel, each thread also poking
  // sessions owned by its neighbor so transitions genuinely contend.
  std::atomic<uint64_t> cancelled{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(6000 + t);
        const std::vector<SessionId>& mine = started[t];
        const std::vector<SessionId>& neighbor =
            started[(t + 1) % kThreads];
        for (int i = 0; i < kIterations; ++i) {
          const std::vector<SessionId>& from =
              rng.Bernoulli(0.8) ? mine : neighbor;
          SessionId id =
              from[rng.UniformInt(0, static_cast<int>(from.size()) - 1)];
          double roll = rng.Uniform(0.0, 1.0);
          Status status = Status::Ok();
          if (roll < 0.40) {
            status = manager.Pause(id);
          } else if (roll < 0.80) {
            status = manager.Resume(id);
          } else if (roll < 0.85) {
            if (manager.Cancel(id).ok()) ++cancelled;
            continue;
          } else {
            (void)manager.vdbms_active_kbps(SiteId(0));
            continue;
          }
          // Losing a race is legal (already paused / running / gone);
          // resource exhaustion is not — capacity covers everything.
          EXPECT_NE(status.code(), StatusCode::kResourceExhausted)
              << status.ToString();
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  // Drain: resume whatever is still paused, then run the clock out.
  for (const std::vector<SessionId>& ids : started) {
    for (SessionId id : ids) {
      const core::SessionManager::Record* record = manager.Find(id);
      if (record != nullptr && record->paused) {
        EXPECT_TRUE(manager.Resume(id).ok());
      }
    }
  }
  simulator.RunAll();

  EXPECT_EQ(manager.outstanding(), 0);
  EXPECT_EQ(completions.load() + cancelled.load(),
            uint64_t{kThreads} * kSessionsPerThread);
  EXPECT_EQ(manager.completed(), completions.load());
  // Release-exactly-once: every reservation returned, every VDBMS pin
  // unwound, the pool fully drained.
  EXPECT_EQ(api.active_reservations(), 0u);
  EXPECT_NEAR(pool.Used(Net(0)), 0.0, 1e-3);
  EXPECT_DOUBLE_EQ(manager.vdbms_active_kbps(SiteId(0)), 0.0);
}

// The full admission pipeline under 8 submitter threads: concurrent
// admit / renegotiate / probe / cancel through the sharded MediaDbSystem
// facade, parallel plan costing on, tracing off (traced admissions are
// single-threaded by contract). Each thread owns the sessions it starts,
// so the races under test are the shared layers — plan stream fan-out,
// the composite QoS API, the sharded session table and the per-shard
// metrics registries — not cross-thread session ownership.
TEST(ConcurrencyStressTest, ShardedAdmitRenegotiateCancelPipeline) {
  constexpr int kOpsPerThread = 150;
  sim::Simulator simulator;
  core::MediaDbSystem::Options options;
  options.kind = core::SystemKind::kVdbmsQuasaq;
  options.topology = net::Topology::Uniform(4);
  options.session_shards = 4;
  options.seed = 17;
  options.quality.generator.parallel_costing = true;
  options.quality.generator.costing_threads = 2;
  core::MediaDbSystem system(&simulator, options);
  const std::vector<SiteId> sites = system.topology().SiteIds();

  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> renegotiated{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(7000 + t);
      const SiteId site = sites[static_cast<size_t>(t) % sites.size()];
      query::QosRequirement wide;
      wide.range.min_frame_rate = 1.0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        LogicalOid content(static_cast<int64_t>((i + 3 * t) % 15));
        core::MediaDbSystem::DeliveryOutcome outcome =
            system.SubmitDelivery(site, content, wide);
        if (!outcome.status.ok()) continue;  // admission pressure is fine
        ++admitted;
        if (rng.Bernoulli(0.4)) {
          Result<core::MediaDbSystem::DeliveryOutcome> changed =
              system.ChangeSessionQos(outcome.session, wide);
          if (changed.ok()) ++renegotiated;
        }
        std::optional<core::SessionManager::Record> record =
            system.session_manager().Snapshot(outcome.session);
        EXPECT_TRUE(record.has_value());
        EXPECT_TRUE(system.CancelSession(outcome.session).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Every admitted session was cancelled by its owner: table empty,
  // every reservation handed back, the pool fully drained.
  EXPECT_EQ(system.outstanding_sessions(), 0);
  EXPECT_EQ(system.qos_api().active_reservations(), 0u);
  EXPECT_DOUBLE_EQ(system.pool().MaxUtilization(), 0.0);
  core::MediaDbSystem::Stats stats = system.stats();
  EXPECT_EQ(stats.submitted, uint64_t{kThreads} * kOpsPerThread);
  EXPECT_EQ(stats.admitted, admitted.load());
  EXPECT_EQ(stats.admitted + stats.rejected, stats.submitted);
  // The quality manager's atomic counters reconcile with the outcome
  // tallies (renegotiations happen via ChangeSessionQos, which must not
  // count as fresh queries).
  core::QualityManager::Stats plan_stats =
      system.quality_manager()->stats();
  EXPECT_EQ(plan_stats.queries, stats.submitted);
  EXPECT_EQ(plan_stats.admitted, admitted.load());
  EXPECT_GT(renegotiated.load(), 0u);
  // Merged exposition renders cleanly after the dust settles.
  core::MediaDbSystem::ObservabilitySnapshot snapshot =
      system.TakeObservabilitySnapshot();
  EXPECT_NE(snapshot.prometheus.find("quasaq_session_started_total"),
            std::string::npos);
}

// The metrics registry is the one object every instrumented subsystem
// shares, so it gets hammered from all sides: lookups (which mutate the
// family maps), CAS-loop increments, histogram observes, and full
// exposition renders, all concurrently.
TEST(ConcurrencyStressTest, MetricsRegistrySharedAndLabeledUpdates) {
  obs::MetricsRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      const std::string thread_label = std::to_string(t);
      for (int i = 0; i < kIterations; ++i) {
        // Re-resolving every iteration stresses the registry lock, not
        // just the instruments.
        registry.GetCounter("quasaq_stress_ops_total", "all threads")
            ->Increment();
        registry
            .GetCounter("quasaq_stress_thread_ops_total", "per thread",
                        {{"thread", thread_label}})
            ->Increment();
        registry.GetGauge("quasaq_stress_level_count", "last writer wins")
            ->Set(static_cast<double>(i));
        registry
            .GetHistogram("quasaq_stress_value_count", "observations",
                          obs::HistogramOptions{1.0, 2.0, 8})
            ->Observe(static_cast<double>(i % 50));
        if (i % 97 == 0) {
          EXPECT_FALSE(registry.PrometheusText().empty());
          EXPECT_FALSE(registry.JsonSnapshot().empty());
          EXPECT_GE(registry.MetricNames().size(), 1u);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // The lock-free CAS loop must not lose increments.
  EXPECT_DOUBLE_EQ(
      registry.GetCounter("quasaq_stress_ops_total", "all threads")->value(),
      static_cast<double>(kThreads) * kIterations);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(
        registry
            .GetCounter("quasaq_stress_thread_ops_total", "per thread",
                        {{"thread", std::to_string(t)}})
            ->value(),
        static_cast<double>(kIterations));
  }
  EXPECT_EQ(registry
                .GetHistogram("quasaq_stress_value_count", "observations",
                              obs::HistogramOptions{1.0, 2.0, 8})
                ->count(),
            uint64_t{kThreads} * kIterations);
}

// Spans from many deliveries interleave in the shared event buffer but
// each track keeps its own stack; concurrent exports must see a
// consistent buffer.
TEST(ConcurrencyStressTest, TracerParallelTracksStayBalanced) {
  obs::Tracer tracer;
  std::vector<int64_t> tracks(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    tracks[t] = tracer.NewTrack("stress track " + std::to_string(t));
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, &tracks, t] {
      const int64_t track = tracks[t];
      for (int i = 0; i < kIterations; ++i) {
        tracer.Begin(track, "delivery", SimTime(i));
        tracer.Begin(track, "plan.enumerate", SimTime(i));
        tracer.Instant(track, "plan.relax", SimTime(i));
        tracer.End(track, SimTime(i));
        if (i % 3 == 0) {
          tracer.End(track, SimTime(i));
        } else {
          tracer.EndAll(track, SimTime(i));
        }
        if (i % 101 == 0) {
          (void)tracer.snapshot();
          (void)tracer.event_count();
          EXPECT_FALSE(tracer.ChromeTraceJson().empty());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(tracer.unbalanced_ends(), 0u);
  for (int64_t track : tracks) {
    EXPECT_EQ(tracer.OpenSpans(track), 0);
  }
}

// SetLogLevel/GetLogLevel are an atomic, so readers may race the writer
// freely; every LogMessage consults the level in its constructor. The
// messages themselves stay below the flipped levels so the test is
// silent — the point is the level handshake, not the output.
TEST(ConcurrencyStressTest, LogLevelFlipsWhileEveryThreadLogs) {
  const LogLevel initial = GetLogLevel();
  std::atomic<bool> stop{false};
  std::thread flipper([&stop] {
    const LogLevel levels[] = {LogLevel::kInfo, LogLevel::kWarning,
                               LogLevel::kError};
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      SetLogLevel(levels[i++ % 3]);
    }
  });
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kIterations; ++i) {
        QUASAQ_LOG(kDebug) << "thread " << t << " iteration " << i;
        LogLevel seen = GetLogLevel();
        EXPECT_GE(static_cast<int>(seen),
                  static_cast<int>(LogLevel::kDebug));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  flipper.join();
  SetLogLevel(initial);
}

}  // namespace
}  // namespace quasaq
