// EXPLAIN path: plan enumeration and ranking exposed without execution.

#include <gtest/gtest.h>

#include "core/system.h"
#include "query/parser.h"

namespace quasaq::core {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() {
    MediaDbSystem::Options options;
    options.kind = SystemKind::kVdbmsQuasaq;
    options.seed = 3;
    system_ = std::make_unique<MediaDbSystem>(&simulator_, options);
    keyword_ = system_->library().contents[0].keywords[0];
  }

  std::string Query(bool explain) {
    return std::string(explain ? "EXPLAIN " : "") +
           "SELECT video FROM videos WHERE CONTAINS('" + keyword_ +
           "') WITH QOS (framerate >= 5)";
  }

  sim::Simulator simulator_;
  std::unique_ptr<MediaDbSystem> system_;
  std::string keyword_;
};

TEST_F(ExplainTest, ParserRecognizesExplainPrefix) {
  Result<query::ParsedQuery> parsed = query::ParseQuery(Query(true));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->explain);
  Result<query::ParsedQuery> plain = query::ParseQuery(Query(false));
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->explain);
}

TEST_F(ExplainTest, RanksPlansWithoutReservingAnything) {
  Result<MediaDbSystem::Explanation> explanation =
      system_->ExplainTextQuery(SiteId(0), Query(true));
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
  ASSERT_FALSE(explanation->plans.empty());
  EXPECT_LE(explanation->plans.size(), 10u);
  // Ranked ascending by cost; all admissible on an idle system.
  double previous = -1.0;
  for (const QualityManager::RankedPlan& entry : explanation->plans) {
    EXPECT_GE(entry.cost, previous);
    previous = entry.cost;
    EXPECT_TRUE(entry.admissible);
  }
  // Nothing was executed or reserved.
  EXPECT_EQ(system_->outstanding_sessions(), 0);
  EXPECT_DOUBLE_EQ(system_->pool().MaxUtilization(), 0.0);
}

TEST_F(ExplainTest, WorksWithoutThePrefixToo) {
  Result<MediaDbSystem::Explanation> explanation =
      system_->ExplainTextQuery(SiteId(0), Query(false));
  ASSERT_TRUE(explanation.ok());
  EXPECT_FALSE(explanation->plans.empty());
}

TEST_F(ExplainTest, LimitCapsTheListing) {
  Result<MediaDbSystem::Explanation> explanation =
      system_->ExplainTextQuery(SiteId(0), Query(true), 3);
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->plans.size(), 3u);
}

TEST_F(ExplainTest, AdmissibilityReflectsSystemLoad) {
  // Saturate the network everywhere: high-rate plans turn inadmissible.
  for (const net::ServerSpec& server : system_->topology().servers) {
    ResourceVector used;
    used.Add({server.id, ResourceKind::kNetworkBandwidth},
             server.outbound_kbps - 10.0);
    ASSERT_TRUE(system_->pool().Acquire(used).ok());
  }
  Result<MediaDbSystem::Explanation> explanation =
      system_->ExplainTextQuery(SiteId(0), Query(true), 50);
  ASSERT_TRUE(explanation.ok());
  bool any_inadmissible = false;
  for (const QualityManager::RankedPlan& entry : explanation->plans) {
    if (entry.plan.wire_rate_kbps > 10.0) {
      EXPECT_FALSE(entry.admissible) << entry.plan.ToString();
      any_inadmissible = true;
    }
  }
  EXPECT_TRUE(any_inadmissible);
}

TEST_F(ExplainTest, SubmitRejectsExplainQueries) {
  Result<MediaDbSystem::TextQueryOutcome> outcome =
      system_->SubmitTextQuery(SiteId(0), Query(true));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ExplainTest, ToStringListsEveryPlan) {
  Result<MediaDbSystem::Explanation> explanation =
      system_->ExplainTextQuery(SiteId(0), Query(true), 5);
  ASSERT_TRUE(explanation.ok());
  std::string text = explanation->ToString();
  EXPECT_NE(text.find("EXPLAIN: 5 plans"), std::string::npos);
  EXPECT_NE(text.find("cost="), std::string::npos);
  EXPECT_NE(text.find("KB/s"), std::string::npos);
}

TEST(ExplainOnVdbmsTest, RequiresQuasaq) {
  sim::Simulator simulator;
  MediaDbSystem::Options options;
  options.kind = SystemKind::kVdbms;
  MediaDbSystem system(&simulator, options);
  Result<MediaDbSystem::Explanation> explanation =
      system.ExplainTextQuery(SiteId(0), "SELECT v FROM videos");
  ASSERT_FALSE(explanation.ok());
  EXPECT_EQ(explanation.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace quasaq::core
