#include "resource/composite_api.h"

#include <gtest/gtest.h>

namespace quasaq::res {
namespace {

BucketId Cpu(int site) { return {SiteId(site), ResourceKind::kCpu}; }
BucketId Net(int site) {
  return {SiteId(site), ResourceKind::kNetworkBandwidth};
}

class CompositeQosApiTest : public ::testing::Test {
 protected:
  CompositeQosApiTest() : api_(&pool_) {
    EXPECT_TRUE(pool_.DeclareBucket(Cpu(0), 1.0).ok());
    EXPECT_TRUE(pool_.DeclareBucket(Net(0), 100.0).ok());
  }

  ResourceVector Demand(double cpu, double net) {
    ResourceVector demand;
    if (cpu > 0.0) demand.Add(Cpu(0), cpu);
    if (net > 0.0) demand.Add(Net(0), net);
    return demand;
  }

  ResourcePool pool_;
  CompositeQosApi api_;
};

TEST_F(CompositeQosApiTest, ReserveChargesAndReleaseRestores) {
  Result<ReservationId> id = api_.Reserve(Demand(0.5, 50.0));
  ASSERT_TRUE(id.ok());
  EXPECT_DOUBLE_EQ(pool_.Used(Cpu(0)), 0.5);
  EXPECT_EQ(api_.active_reservations(), 1u);
  ASSERT_TRUE(api_.Release(*id).ok());
  EXPECT_DOUBLE_EQ(pool_.Used(Cpu(0)), 0.0);
  EXPECT_EQ(api_.active_reservations(), 0u);
}

TEST_F(CompositeQosApiTest, AdmissibleDoesNotCharge) {
  EXPECT_TRUE(api_.Admissible(Demand(0.9, 0.0)));
  EXPECT_DOUBLE_EQ(pool_.Used(Cpu(0)), 0.0);
  ASSERT_TRUE(api_.Reserve(Demand(0.9, 0.0)).ok());
  EXPECT_FALSE(api_.Admissible(Demand(0.2, 0.0)));
}

TEST_F(CompositeQosApiTest, RejectionCountsAndChargesNothing) {
  ASSERT_TRUE(api_.Reserve(Demand(0.8, 0.0)).ok());
  Result<ReservationId> rejected = api_.Reserve(Demand(0.5, 0.0));
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(api_.stats().admitted, 1u);
  EXPECT_EQ(api_.stats().rejected, 1u);
  EXPECT_DOUBLE_EQ(pool_.Used(Cpu(0)), 0.8);
}

TEST_F(CompositeQosApiTest, ReleaseUnknownReservationFails) {
  EXPECT_EQ(api_.Release(42).code(), StatusCode::kNotFound);
}

TEST_F(CompositeQosApiTest, DoubleReleaseFails) {
  Result<ReservationId> id = api_.Reserve(Demand(0.1, 0.0));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(api_.Release(*id).ok());
  EXPECT_EQ(api_.Release(*id).code(), StatusCode::kNotFound);
}

TEST_F(CompositeQosApiTest, FindReturnsReservedVector) {
  Result<ReservationId> id = api_.Reserve(Demand(0.3, 30.0));
  ASSERT_TRUE(id.ok());
  const ResourceVector* vector = api_.Find(*id);
  ASSERT_NE(vector, nullptr);
  EXPECT_DOUBLE_EQ(vector->Get(Cpu(0)), 0.3);
  EXPECT_EQ(api_.Find(9999), nullptr);
}

TEST_F(CompositeQosApiTest, RenegotiateDown) {
  Result<ReservationId> id = api_.Reserve(Demand(0.6, 60.0));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(api_.Renegotiate(*id, Demand(0.2, 20.0)).ok());
  EXPECT_DOUBLE_EQ(pool_.Used(Cpu(0)), 0.2);
  EXPECT_DOUBLE_EQ(pool_.Used(Net(0)), 20.0);
  EXPECT_EQ(api_.stats().renegotiations, 1u);
}

TEST_F(CompositeQosApiTest, RenegotiateUpWithinCapacity) {
  Result<ReservationId> id = api_.Reserve(Demand(0.2, 20.0));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(api_.Renegotiate(*id, Demand(0.9, 90.0)).ok());
  EXPECT_DOUBLE_EQ(pool_.Used(Cpu(0)), 0.9);
}

TEST_F(CompositeQosApiTest, FailedRenegotiationKeepsOldReservation) {
  Result<ReservationId> a = api_.Reserve(Demand(0.5, 0.0));
  ASSERT_TRUE(a.ok());
  Result<ReservationId> b = api_.Reserve(Demand(0.4, 0.0));
  ASSERT_TRUE(b.ok());
  // b cannot grow to 0.6 (0.5 + 0.6 > 1.0); old 0.4 must survive.
  EXPECT_EQ(api_.Renegotiate(*b, Demand(0.6, 0.0)).code(),
            StatusCode::kResourceExhausted);
  EXPECT_NEAR(pool_.Used(Cpu(0)), 0.9, 1e-12);
  EXPECT_EQ(api_.stats().renegotiation_failures, 1u);
  const ResourceVector* vector = api_.Find(*b);
  ASSERT_NE(vector, nullptr);
  EXPECT_DOUBLE_EQ(vector->Get(Cpu(0)), 0.4);
}

TEST_F(CompositeQosApiTest, RenegotiateUnknownReservationFails) {
  EXPECT_EQ(api_.Renegotiate(77, Demand(0.1, 0.0)).code(),
            StatusCode::kNotFound);
}

TEST_F(CompositeQosApiTest, KindStatsIdentifyTheBottleneck) {
  // Exhaust the network while CPU stays roomy.
  ASSERT_TRUE(api_.Reserve(Demand(0.1, 95.0)).ok());
  EXPECT_FALSE(api_.Reserve(Demand(0.1, 50.0)).ok());
  EXPECT_FALSE(api_.Reserve(Demand(0.1, 50.0)).ok());
  const CompositeQosApi::KindStats& net =
      api_.kind_stats(ResourceKind::kNetworkBandwidth);
  const CompositeQosApi::KindStats& cpu =
      api_.kind_stats(ResourceKind::kCpu);
  EXPECT_EQ(net.requests, 3u);
  EXPECT_EQ(net.denials, 2u);
  EXPECT_EQ(cpu.requests, 3u);
  EXPECT_EQ(cpu.denials, 0u);
  std::string report = api_.BottleneckReport();
  EXPECT_NE(report.find("net"), std::string::npos) << report;
  EXPECT_NE(report.find("2 of 2"), std::string::npos) << report;
}

TEST_F(CompositeQosApiTest, NoDenialsMeansEmptyReport) {
  ASSERT_TRUE(api_.Reserve(Demand(0.1, 10.0)).ok());
  EXPECT_TRUE(api_.BottleneckReport().empty());
}

TEST_F(CompositeQosApiTest, ManyReservationsFillThePool) {
  int admitted = 0;
  for (int i = 0; i < 20; ++i) {
    if (api_.Reserve(Demand(0.15, 0.0)).ok()) ++admitted;
  }
  EXPECT_EQ(admitted, 6);  // 6 * 0.15 = 0.90; the 7th would hit 1.05
  EXPECT_EQ(api_.stats().rejected, 14u);
}

}  // namespace
}  // namespace quasaq::res
