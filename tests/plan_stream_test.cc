#include "core/plan_stream.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/quality_manager.h"
#include "media/library.h"

// The refactoring contract of the lazy best-first plan stream: it must
// yield plans in bit-identical order to the eager materialize-and-sort
// pipeline (same cost key, same tie-breaks), so switching
// PlanGenerator::Options::lazy_enumeration can never change which plan
// a query is served — only how much of the search space gets expanded.

namespace quasaq::core {
namespace {

media::VideoContent MakeContent(int64_t oid) {
  media::VideoContent content;
  content.id = LogicalOid(oid);
  content.title = "video" + std::to_string(oid);
  content.duration_seconds = 60.0;
  content.master_quality = media::QualityLadder::Standard().levels[0];
  return content;
}

media::ReplicaInfo MakeReplica(int64_t oid, int64_t content, int site,
                               int level) {
  media::ReplicaInfo replica;
  replica.id = PhysicalOid(oid);
  replica.content = LogicalOid(content);
  replica.site = SiteId(site);
  replica.qos =
      media::QualityLadder::Standard().levels[static_cast<size_t>(level)];
  replica.duration_seconds = 60.0;
  replica.frame_seed = static_cast<uint64_t>(oid);
  media::FinalizeReplicaSizing(replica);
  return replica;
}

query::QosRequirement WideQos() {
  query::QosRequirement qos;
  qos.range.min_frame_rate = 1.0;
  return qos;
}

// Two-site search space mirroring the QualityManager tests: one logical
// object, three ladder levels replicated on both sites.
class PlanStreamTest : public ::testing::Test {
 protected:
  PlanStreamTest()
      : sites_({SiteId(0), SiteId(1)}),
        metadata_(sites_, meta::DistributedMetadataEngine::Options()) {
    DeclareBuckets(pool_);
    EXPECT_TRUE(metadata_.InsertContent(MakeContent(0)).ok());
    int64_t oid = 0;
    for (int site = 0; site < 2; ++site) {
      for (int level = 0; level < 3; ++level) {
        EXPECT_TRUE(
            metadata_.InsertReplica(MakeReplica(oid++, 0, site, level)).ok());
      }
    }
  }

  void DeclareBuckets(res::ResourcePool& pool) {
    for (SiteId site : sites_) {
      ASSERT_TRUE(pool.DeclareBucket({site, ResourceKind::kCpu}, 1.0).ok());
      ASSERT_TRUE(pool.DeclareBucket({site, ResourceKind::kNetworkBandwidth}, 3200.0).ok());
      ASSERT_TRUE(pool.DeclareBucket({site, ResourceKind::kDiskBandwidth}, 20000.0).ok());
      ASSERT_TRUE(pool.DeclareBucket({site, ResourceKind::kMemory}, 1 << 20).ok());
    }
  }

  // The eager reference ranking and its per-plan keys.
  std::vector<Plan> EagerRanking(PlanGenerator& generator,
                                 const RuntimeCostEvaluator& evaluator,
                                 const query::QosRequirement& qos,
                                 const res::ResourcePool& pool) {
    Result<std::vector<Plan>> plans =
        generator.Generate(SiteId(0), LogicalOid(0), qos);
    EXPECT_TRUE(plans.ok()) << plans.status().ToString();
    evaluator.Rank(*plans, pool);
    return std::move(*plans);
  }

  std::vector<SiteId> sites_;
  meta::DistributedMetadataEngine metadata_;
  res::ResourcePool pool_;
  LrbCostModel lrb_;
};

TEST_F(PlanStreamTest, YieldsEveryPlanInEagerRankingOrder) {
  PlanGenerator generator(&metadata_, sites_, PlanGenerator::Options());
  RuntimeCostEvaluator evaluator(&lrb_);
  query::QosRequirement qos = WideQos();
  std::vector<Plan> eager = EagerRanking(generator, evaluator, qos, pool_);
  ASSERT_FALSE(eager.empty());

  PlanStream stream(&generator, &evaluator, &pool_, SiteId(0), LogicalOid(0),
                    qos);
  ASSERT_TRUE(stream.status().ok());
  size_t i = 0;
  while (std::optional<PlanStream::Ranked> ranked = stream.Next()) {
    ASSERT_LT(i, eager.size());
    EXPECT_EQ(ranked->plan.ToString(), eager[i].ToString()) << "rank " << i;
    EXPECT_DOUBLE_EQ(ranked->cost, evaluator.EfficiencyCost(eager[i], pool_));
    ++i;
  }
  EXPECT_EQ(i, eager.size());
  EXPECT_EQ(stream.stats().plans_yielded, eager.size());
  // Draining the stream expands everything — no pruning without an
  // early-stopping consumer.
  EXPECT_EQ(stream.groups_pruned(), 0u);
}

TEST_F(PlanStreamTest, OrderHoldsUnderLoadedPool) {
  PlanGenerator generator(&metadata_, sites_, PlanGenerator::Options());
  RuntimeCostEvaluator evaluator(&lrb_);
  // Skew the pool so the ranking differs from the cold-pool one: site 0
  // network is nearly full, site 0 disk half full.
  ResourceVector used;
  used.Add({SiteId(0), ResourceKind::kNetworkBandwidth}, 2900.0);
  used.Add({SiteId(0), ResourceKind::kDiskBandwidth}, 10000.0);
  ASSERT_TRUE(pool_.Acquire(used).ok());

  query::QosRequirement qos = WideQos();
  std::vector<Plan> eager = EagerRanking(generator, evaluator, qos, pool_);
  PlanStream stream(&generator, &evaluator, &pool_, SiteId(0), LogicalOid(0),
                    qos);
  size_t i = 0;
  while (std::optional<PlanStream::Ranked> ranked = stream.Next()) {
    ASSERT_LT(i, eager.size());
    EXPECT_EQ(ranked->plan.ToString(), eager[i].ToString()) << "rank " << i;
    ++i;
  }
  EXPECT_EQ(i, eager.size());
}

TEST_F(PlanStreamTest, StatefulRandomModelStillMatchesEagerOrder) {
  // The Random model advances its RNG on every Cost() call, so the
  // stream must fall back to expanding in exact eager call order (no
  // sound lower bound exists). Two independently seeded model instances
  // replay the same draw sequence.
  PlanGenerator generator(&metadata_, sites_, PlanGenerator::Options());
  RandomCostModel eager_model(7);
  RandomCostModel stream_model(7);
  RuntimeCostEvaluator eager_eval(&eager_model);
  RuntimeCostEvaluator stream_eval(&stream_model);
  EXPECT_FALSE(stream_eval.SupportsCostLowerBound());

  query::QosRequirement qos = WideQos();
  std::vector<Plan> eager = EagerRanking(generator, eager_eval, qos, pool_);
  PlanStream stream(&generator, &stream_eval, &pool_, SiteId(0),
                    LogicalOid(0), qos);
  size_t i = 0;
  while (std::optional<PlanStream::Ranked> ranked = stream.Next()) {
    ASSERT_LT(i, eager.size());
    EXPECT_EQ(ranked->plan.ToString(), eager[i].ToString()) << "rank " << i;
    ++i;
  }
  EXPECT_EQ(i, eager.size());
}

TEST_F(PlanStreamTest, GainFunctionDisablesTheBoundButNotTheOrder) {
  PlanGenerator generator(&metadata_, sites_, PlanGenerator::Options());
  RuntimeCostEvaluator evaluator(&lrb_);
  query::QosRequirement qos = WideQos();
  qos.range.min_frame_rate = 10.0;
  evaluator.set_gain_function(
      MakeSatisfactionGain(qos.range, UtilityWeights()));
  EXPECT_FALSE(evaluator.SupportsCostLowerBound());

  std::vector<Plan> eager = EagerRanking(generator, evaluator, qos, pool_);
  PlanStream stream(&generator, &evaluator, &pool_, SiteId(0), LogicalOid(0),
                    qos);
  size_t i = 0;
  while (std::optional<PlanStream::Ranked> ranked = stream.Next()) {
    ASSERT_LT(i, eager.size());
    EXPECT_EQ(ranked->plan.ToString(), eager[i].ToString()) << "rank " << i;
    ++i;
  }
  EXPECT_EQ(i, eager.size());
}

TEST_F(PlanStreamTest, UnknownContentFailsConstruction) {
  PlanGenerator generator(&metadata_, sites_, PlanGenerator::Options());
  RuntimeCostEvaluator evaluator(&lrb_);
  PlanStream stream(&generator, &evaluator, &pool_, SiteId(0),
                    LogicalOid(99), WideQos());
  EXPECT_EQ(stream.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(stream.Next().has_value());
}

// Side-by-side QualityManagers — streamed vs eager — over identically
// declared pools. Every scenario must produce the same admitted plan
// (or the same rejection), and the pools must drift in lockstep.
class StreamedVsEagerTest : public PlanStreamTest {
 protected:
  StreamedVsEagerTest()
      : eager_api_(&eager_pool_), streamed_api_(&streamed_pool_) {
    DeclareBuckets(eager_pool_);
    DeclareBuckets(streamed_pool_);
    QualityManager::Options eager_options;
    eager_options.generator.lazy_enumeration = false;
    eager_ = std::make_unique<QualityManager>(&metadata_, &eager_api_, &lrb_,
                                              sites_, eager_options);
    QualityManager::Options streamed_options;  // lazy is the default
    streamed_ = std::make_unique<QualityManager>(
        &metadata_, &streamed_api_, &lrb_, sites_, streamed_options);
  }

  void ExpectSameOutcome(const query::QosRequirement& qos,
                         const UserProfile* profile = nullptr) {
    Result<QualityManager::Admitted> eager =
        eager_->AdmitQuery(SiteId(0), LogicalOid(0), qos, profile);
    Result<QualityManager::Admitted> streamed =
        streamed_->AdmitQuery(SiteId(0), LogicalOid(0), qos, profile);
    ASSERT_EQ(eager.ok(), streamed.ok())
        << "eager: " << eager.status().ToString()
        << " streamed: " << streamed.status().ToString();
    if (eager.ok()) {
      EXPECT_EQ(eager->plan.ToString(), streamed->plan.ToString());
      EXPECT_DOUBLE_EQ(eager->plan.wire_rate_kbps,
                       streamed->plan.wire_rate_kbps);
      EXPECT_EQ(eager->renegotiated, streamed->renegotiated);
      EXPECT_DOUBLE_EQ(eager_pool_.MaxUtilization(),
                       streamed_pool_.MaxUtilization());
    } else {
      EXPECT_EQ(eager.status().code(), streamed.status().code());
    }
  }

  res::ResourcePool eager_pool_;
  res::ResourcePool streamed_pool_;
  res::CompositeQosApi eager_api_;
  res::CompositeQosApi streamed_api_;
  std::unique_ptr<QualityManager> eager_;
  std::unique_ptr<QualityManager> streamed_;
};

TEST_F(StreamedVsEagerTest, AdmitsIdenticalPlansAcrossScenarios) {
  // Wide-open QoS, repeated until the pools carry real load.
  for (int i = 0; i < 4; ++i) ExpectSameOutcome(WideQos());
  // Tight quality floor.
  query::QosRequirement tight;
  tight.range.min_frame_rate = 20.0;
  tight.range.min_resolution = media::kResolutionVcd;
  ExpectSameOutcome(tight);
  // Security requested: encrypted activity sets join the space.
  query::QosRequirement secure = WideQos();
  secure.min_security = media::SecurityLevel::kStandard;
  ExpectSameOutcome(secure);
  // Unsatisfiable window rejects identically.
  query::QosRequirement impossible;
  impossible.range.min_frame_rate = 60.0;
  ExpectSameOutcome(impossible);
}

TEST_F(StreamedVsEagerTest, RenegotiationMatchesEager) {
  UserProfile profile(UserId(1), "user");
  query::QosRequirement qos;
  qos.range.min_resolution = media::kResolutionSvcd;
  qos.range.min_color_depth_bits = 24;
  qos.range.min_frame_rate = 20.0;
  ResourceVector used;
  for (SiteId site : sites_) {
    used.Add({site, ResourceKind::kNetworkBandwidth}, 3000.0);
  }
  ASSERT_TRUE(eager_pool_.Acquire(used).ok());
  ASSERT_TRUE(streamed_pool_.Acquire(used).ok());
  ExpectSameOutcome(qos, &profile);
  EXPECT_EQ(eager_->stats().renegotiated, streamed_->stats().renegotiated);
}

TEST_F(StreamedVsEagerTest, ExplainListingsAreIdentical) {
  Result<std::vector<QualityManager::RankedPlan>> eager =
      eager_->ExplainPlans(SiteId(0), LogicalOid(0), WideQos(), 8);
  Result<std::vector<QualityManager::RankedPlan>> streamed =
      streamed_->ExplainPlans(SiteId(0), LogicalOid(0), WideQos(), 8);
  ASSERT_TRUE(eager.ok());
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(QualityManager::FormatPlanListing(LogicalOid(0), *eager),
            QualityManager::FormatPlanListing(LogicalOid(0), *streamed));
}

TEST_F(StreamedVsEagerTest, StreamedMaterializesStrictlyFewerPlans) {
  ExpectSameOutcome(WideQos());
  // The eager path pays for the whole space on every query; the stream
  // stops at the first admitted plan.
  EXPECT_GT(eager_->stats().plans_generated, 0u);
  EXPECT_LT(streamed_->stats().plans_generated,
            eager_->stats().plans_generated);
  EXPECT_GT(streamed_->stats().groups_pruned, 0u);
  EXPECT_EQ(eager_->stats().groups_pruned, 0u);
}

// Satellite regression: ExplainPlans used to enumerate and rank the full
// space before applying `limit`. With one plan per (replica, site) group
// and a disk-dominated pool the group bound is exact, so the stream must
// generate exactly `limit` plans — not the whole space.
TEST(ExplainLimitTest, GenerationStopsAtTheLimit) {
  std::vector<SiteId> sites = {SiteId(0)};
  meta::DistributedMetadataEngine metadata(
      sites, meta::DistributedMetadataEngine::Options());
  ASSERT_TRUE(metadata.InsertContent(MakeContent(0)).ok());
  // Four ladder levels at one site: four groups of exactly one plan
  // each once dropping/transcoding/relay are off and no security is
  // requested.
  for (int level = 0; level < 4; ++level) {
    ASSERT_TRUE(
        metadata.InsertReplica(MakeReplica(level, 0, 0, level)).ok());
  }
  res::ResourcePool pool;
  // Disk is the scarce bucket; everything else is effectively infinite,
  // so the LRB cost of a plan equals its group's retrieval bound.
  ASSERT_TRUE(pool.DeclareBucket({SiteId(0), ResourceKind::kCpu}, 1e9).ok());
  ASSERT_TRUE(pool.DeclareBucket({SiteId(0), ResourceKind::kNetworkBandwidth}, 1e9).ok());
  ASSERT_TRUE(pool.DeclareBucket({SiteId(0), ResourceKind::kDiskBandwidth}, 2000.0).ok());
  ASSERT_TRUE(pool.DeclareBucket({SiteId(0), ResourceKind::kMemory}, 1e12).ok());
  res::CompositeQosApi api(&pool);
  LrbCostModel lrb;
  QualityManager::Options options;
  options.generator.enable_frame_dropping = false;
  options.generator.enable_transcoding = false;
  options.generator.enable_relay = false;
  QualityManager manager(&metadata, &api, &lrb, sites, options);

  const size_t limit = 2;
  Result<std::vector<QualityManager::RankedPlan>> plans =
      manager.ExplainPlans(SiteId(0), LogicalOid(0), WideQos(), limit);
  ASSERT_TRUE(plans.ok()) << plans.status().ToString();
  EXPECT_EQ(plans->size(), limit);
  EXPECT_LE(manager.stats().plans_generated, limit);
  EXPECT_EQ(manager.stats().groups_pruned, 4u - limit);
}

}  // namespace
}  // namespace quasaq::core
