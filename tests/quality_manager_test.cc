#include "core/quality_manager.h"

#include <gtest/gtest.h>

#include "media/library.h"

namespace quasaq::core {
namespace {

media::VideoContent MakeContent(int64_t oid) {
  media::VideoContent content;
  content.id = LogicalOid(oid);
  content.title = "video" + std::to_string(oid);
  content.duration_seconds = 60.0;
  content.master_quality = media::QualityLadder::Standard().levels[0];
  return content;
}

media::ReplicaInfo MakeReplica(int64_t oid, int64_t content, int site,
                               int level) {
  media::ReplicaInfo replica;
  replica.id = PhysicalOid(oid);
  replica.content = LogicalOid(content);
  replica.site = SiteId(site);
  replica.qos =
      media::QualityLadder::Standard().levels[static_cast<size_t>(level)];
  replica.duration_seconds = 60.0;
  replica.frame_seed = static_cast<uint64_t>(oid);
  media::FinalizeReplicaSizing(replica);
  return replica;
}

class QualityManagerTest : public ::testing::Test {
 protected:
  QualityManagerTest()
      : sites_({SiteId(0), SiteId(1)}),
        metadata_(sites_, meta::DistributedMetadataEngine::Options()),
        api_(&pool_) {
    for (SiteId site : sites_) {
      EXPECT_TRUE(pool_.DeclareBucket({site, ResourceKind::kCpu}, 1.0).ok());
      EXPECT_TRUE(pool_.DeclareBucket({site, ResourceKind::kNetworkBandwidth}, 3200.0).ok());
      EXPECT_TRUE(pool_.DeclareBucket({site, ResourceKind::kDiskBandwidth}, 20000.0).ok());
      EXPECT_TRUE(pool_.DeclareBucket({site, ResourceKind::kMemory}, 1 << 20).ok());
    }
    EXPECT_TRUE(metadata_.InsertContent(MakeContent(0)).ok());
    int64_t oid = 0;
    for (int site = 0; site < 2; ++site) {
      for (int level = 0; level < 3; ++level) {
        EXPECT_TRUE(
            metadata_.InsertReplica(MakeReplica(oid++, 0, site, level)).ok());
      }
    }
  }

  QualityManager MakeManager(QualityManager::Options options = {}) {
    return QualityManager(&metadata_, &api_, &lrb_, sites_, options);
  }

  query::QosRequirement WideQos() {
    query::QosRequirement qos;
    qos.range.min_frame_rate = 1.0;
    return qos;
  }

  std::vector<SiteId> sites_;
  meta::DistributedMetadataEngine metadata_;
  res::ResourcePool pool_;
  res::CompositeQosApi api_;
  LrbCostModel lrb_;
};

TEST_F(QualityManagerTest, AdmitsAndReservesBestPlan) {
  QualityManager manager = MakeManager();
  Result<QualityManager::Admitted> admitted =
      manager.AdmitQuery(SiteId(0), LogicalOid(0), WideQos());
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  EXPECT_NE(admitted->reservation, res::kInvalidReservationId);
  EXPECT_FALSE(admitted->renegotiated);
  EXPECT_GT(pool_.MaxUtilization(), 0.0);
  EXPECT_EQ(manager.stats().queries, 1u);
  EXPECT_EQ(manager.stats().admitted, 1u);
}

TEST_F(QualityManagerTest, LrbPicksTheCheapestSatisfyingStream) {
  QualityManager manager = MakeManager();
  Result<QualityManager::Admitted> admitted =
      manager.AdmitQuery(SiteId(0), LogicalOid(0), WideQos());
  ASSERT_TRUE(admitted.ok());
  // With wide-open QoS the minimum-bucket plan streams the lowest-rate
  // replica (the SIF level) — and, since the user accepts any frame
  // rate >= 1, shaves it further by frame dropping. Pure throughput
  // optimization races to the cheapest acceptable delivery.
  EXPECT_LE(admitted->plan.wire_rate_kbps, 40.0);
  EXPECT_FALSE(admitted->plan.transform.transcode_target.has_value());
  EXPECT_LE(admitted->plan.resources.Get(
                {SiteId(0), ResourceKind::kNetworkBandwidth}) +
                admitted->plan.resources.Get(
                    {SiteId(1), ResourceKind::kNetworkBandwidth}),
            40.0);
}

TEST_F(QualityManagerTest, TightQualityFloorPreventsTheRaceToTheBottom) {
  QualityManager manager = MakeManager();
  query::QosRequirement qos;
  qos.range.min_frame_rate = 20.0;  // the user insists on full motion
  qos.range.min_resolution = media::kResolutionVcd;
  Result<QualityManager::Admitted> admitted =
      manager.AdmitQuery(SiteId(0), LogicalOid(0), qos);
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(admitted->plan.transform.drop, media::FrameDropStrategy::kNone);
  EXPECT_GE(admitted->plan.delivered_qos.frame_rate, 20.0);
}

TEST_F(QualityManagerTest, CompleteDeliveryReleasesResources) {
  QualityManager manager = MakeManager();
  Result<QualityManager::Admitted> admitted =
      manager.AdmitQuery(SiteId(0), LogicalOid(0), WideQos());
  ASSERT_TRUE(admitted.ok());
  ASSERT_TRUE(manager.CompleteDelivery(*admitted).ok());
  EXPECT_DOUBLE_EQ(pool_.MaxUtilization(), 0.0);
}

TEST_F(QualityManagerTest, UnsatisfiableQosIsNotFound) {
  QualityManager manager = MakeManager();
  query::QosRequirement qos;
  qos.range.min_frame_rate = 60.0;  // nothing streams at 60 fps
  Result<QualityManager::Admitted> admitted =
      manager.AdmitQuery(SiteId(0), LogicalOid(0), qos);
  ASSERT_FALSE(admitted.ok());
  EXPECT_EQ(admitted.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.stats().rejected_no_plan, 1u);
}

TEST_F(QualityManagerTest, ExhaustedResourcesReject) {
  QualityManager manager = MakeManager();
  // Saturate both CPUs so no plan can be admitted.
  for (SiteId site : sites_) {
    ResourceVector used;
    used.Add({site, ResourceKind::kCpu}, 1.0);
    ASSERT_TRUE(pool_.Acquire(used).ok());
  }
  Result<QualityManager::Admitted> admitted =
      manager.AdmitQuery(SiteId(0), LogicalOid(0), WideQos());
  ASSERT_FALSE(admitted.ok());
  EXPECT_EQ(admitted.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(manager.stats().rejected_no_resources, 1u);
}

TEST_F(QualityManagerTest, WalksRankingPastInadmissiblePlans) {
  QualityManager manager = MakeManager();
  // Fill site 0's network almost completely: local low-rate plans still
  // fit, but high-rate ones do not.
  ResourceVector used;
  used.Add({SiteId(0), ResourceKind::kNetworkBandwidth}, 3190.0);
  ASSERT_TRUE(pool_.Acquire(used).ok());
  query::QosRequirement qos = WideQos();
  Result<QualityManager::Admitted> admitted =
      manager.AdmitQuery(SiteId(0), LogicalOid(0), qos);
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
}

TEST_F(QualityManagerTest, SingleAttemptSemanticsRejectsMore) {
  // With max_admission_attempts = 1 only the top-ranked plan is tried.
  QualityManager::Options options;
  options.max_admission_attempts = 1;
  options.enable_renegotiation = false;
  QualityManager manager = MakeManager(options);
  // Saturate CPU on both sites so closely that even the leanest plan
  // (a maximally dropped SIF stream needs ~0.1% of a CPU) cannot fit.
  for (SiteId site : sites_) {
    ResourceVector used;
    used.Add({site, ResourceKind::kCpu}, 0.99995);
    ASSERT_TRUE(pool_.Acquire(used).ok());
  }
  Result<QualityManager::Admitted> admitted =
      manager.AdmitQuery(SiteId(0), LogicalOid(0), WideQos());
  EXPECT_FALSE(admitted.ok());
}

TEST_F(QualityManagerTest, RenegotiationGivesSecondChance) {
  QualityManager manager = MakeManager();
  UserProfile profile(UserId(1), "user");
  // QoS window satisfiable only by the DVD master (high everything)...
  query::QosRequirement qos;
  qos.range.min_resolution = media::kResolutionSvcd;
  qos.range.min_color_depth_bits = 24;
  qos.range.min_frame_rate = 20.0;
  // ... but the network can no longer carry a DVD-rate stream anywhere.
  for (SiteId site : sites_) {
    ResourceVector used;
    used.Add({site, ResourceKind::kNetworkBandwidth}, 3000.0);
    ASSERT_TRUE(pool_.Acquire(used).ok());
  }
  Result<QualityManager::Admitted> without =
      manager.AdmitQuery(SiteId(0), LogicalOid(0), qos);
  EXPECT_FALSE(without.ok());

  Result<QualityManager::Admitted> with =
      manager.AdmitQuery(SiteId(0), LogicalOid(0), qos, &profile);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  EXPECT_TRUE(with->renegotiated);
  EXPECT_GE(manager.stats().renegotiated, 1u);
  // The degraded stream fits in the remaining 200 KB/s.
  EXPECT_LT(with->plan.wire_rate_kbps, 200.0);
}

TEST_F(QualityManagerTest, RenegotiationRoundsAreBounded) {
  QualityManager::Options options;
  options.max_renegotiation_rounds = 1;
  QualityManager manager = MakeManager(options);
  UserProfile profile(UserId(1), "user");
  query::QosRequirement qos;
  qos.range.min_frame_rate = 60.0;  // never satisfiable
  Result<QualityManager::Admitted> admitted =
      manager.AdmitQuery(SiteId(0), LogicalOid(0), qos, &profile);
  EXPECT_FALSE(admitted.ok());
}

TEST_F(QualityManagerTest, StatsCountPlansGenerated) {
  QualityManager manager = MakeManager();
  ASSERT_TRUE(
      manager.AdmitQuery(SiteId(0), LogicalOid(0), WideQos()).ok());
  EXPECT_GT(manager.stats().plans_generated, 0u);
}

}  // namespace
}  // namespace quasaq::core
