#include "net/rtp.h"

#include <gtest/gtest.h>

#include "media/library.h"
#include "net/topology.h"

namespace quasaq::net {
namespace {

media::ReplicaInfo VcdReplica(double duration_seconds = 60.0) {
  media::ReplicaInfo replica;
  replica.id = PhysicalOid(1);
  replica.content = LogicalOid(1);
  replica.site = SiteId(0);
  replica.qos = media::QualityLadder::Standard().levels[1];
  replica.duration_seconds = duration_seconds;
  replica.frame_seed = 77;
  media::FinalizeReplicaSizing(replica);
  return replica;
}

media::ReplicaInfo DvdReplica(double duration_seconds = 60.0) {
  media::ReplicaInfo replica = VcdReplica(duration_seconds);
  replica.id = PhysicalOid(2);
  replica.qos = media::QualityLadder::Standard().levels[0];
  media::FinalizeReplicaSizing(replica);
  return replica;
}

TEST(StreamTransformTest, DeliveredQosDefaultsToStoredQuality) {
  media::ReplicaInfo replica = VcdReplica();
  StreamTransform transform;
  EXPECT_EQ(transform.DeliveredQos(replica), replica.qos);
  transform.transcode_target = media::QualityLadder::Standard().levels[2];
  EXPECT_EQ(transform.DeliveredQos(replica),
            media::QualityLadder::Standard().levels[2]);
}

TEST(StreamCostTest, WireRateMatchesBitrateWithoutTransform) {
  media::ReplicaInfo replica = VcdReplica();
  EXPECT_NEAR(StreamWireRateKbps(replica, StreamTransform{}),
              replica.bitrate_kbps, 1e-9);
}

TEST(StreamCostTest, DroppingReducesWireRateAndFrameRate) {
  media::ReplicaInfo replica = VcdReplica();
  StreamTransform transform;
  transform.drop = media::FrameDropStrategy::kAllBFrames;
  EXPECT_NEAR(StreamWireRateKbps(replica, transform),
              replica.bitrate_kbps * 17.0 / 27.0, 1e-9);
  media::AppQos delivered = StreamDeliveredQos(replica, transform);
  EXPECT_NEAR(delivered.frame_rate, replica.qos.frame_rate / 3.0, 1e-9);
}

TEST(StreamCostTest, TranscodeReducesWireRateToTarget) {
  media::ReplicaInfo replica = DvdReplica();
  StreamTransform transform;
  transform.transcode_target = media::QualityLadder::Standard().levels[1];
  EXPECT_NEAR(
      StreamWireRateKbps(replica, transform),
      media::EstimateBitrateKBps(*transform.transcode_target), 1e-9);
}

TEST(StreamCostTest, CpuGrowsWithTranscodeAndEncryption) {
  media::ReplicaInfo replica = DvdReplica();
  media::StreamingCpuCost cost;
  double plain = StreamCpuFraction(replica, StreamTransform{}, cost);
  StreamTransform transcoded;
  transcoded.transcode_target = media::QualityLadder::Standard().levels[1];
  EXPECT_GT(StreamCpuFraction(replica, transcoded, cost), plain * 2.0);
  StreamTransform encrypted;
  encrypted.encryption = media::EncryptionAlgorithm::kAlgorithm1;
  EXPECT_GT(StreamCpuFraction(replica, encrypted, cost), plain);
}

class RtpSessionTest : public ::testing::Test {
 protected:
  RtpSessionTest()
      : scheduler_(&simulator_, [] {
          res::TimeSharingCpuScheduler::Options options;
          options.context_switch_ms = 0.0;
          return options;
        }()) {}

  sim::Simulator simulator_;
  res::TimeSharingCpuScheduler scheduler_;
};

TEST_F(RtpSessionTest, DeliversEveryFrameWithoutDropping) {
  RtpSessionOptions options;
  options.max_source_frames = 150;
  RtpStreamingSession session(&simulator_, VcdReplica(), StreamTransform{},
                              options);
  session.AttachTimeSharing(&scheduler_);
  bool finished = false;
  session.Start([&finished] { finished = true; });
  simulator_.RunAll();
  EXPECT_TRUE(finished);
  EXPECT_TRUE(session.finished());
  EXPECT_EQ(session.delivered_frames(), 150);
  EXPECT_EQ(session.frame_completion_times().size(), 150u);
}

TEST_F(RtpSessionTest, InterFrameDelayMeanMatchesFrameRate) {
  RtpSessionOptions options;
  options.max_source_frames = 600;
  RtpStreamingSession session(&simulator_, VcdReplica(), StreamTransform{},
                              options);
  session.AttachTimeSharing(&scheduler_);
  session.Start();
  simulator_.RunAll();
  RunningStats stats = session.InterFrameDelayStats();
  EXPECT_NEAR(stats.mean(), 1000.0 / 23.97, 1.0);
  // VBR: inter-frame deltas vary with frame size (I >> B).
  EXPECT_GT(stats.stddev(), 10.0);
}

TEST_F(RtpSessionTest, InterGopDelayIsSmooth) {
  RtpSessionOptions options;
  options.max_source_frames = 600;
  RtpStreamingSession session(&simulator_, VcdReplica(), StreamTransform{},
                              options);
  session.AttachTimeSharing(&scheduler_);
  session.Start();
  simulator_.RunAll();
  RunningStats gop = session.InterGopDelayStats();
  EXPECT_NEAR(gop.mean(), 15.0 * 1000.0 / 23.97, 10.0);
  EXPECT_LT(gop.stddev(), gop.mean() * 0.1);
}

TEST_F(RtpSessionTest, AllBDropDeliversOneThirdOfFrames) {
  RtpSessionOptions options;
  options.max_source_frames = 300;
  StreamTransform transform;
  transform.drop = media::FrameDropStrategy::kAllBFrames;
  RtpStreamingSession session(&simulator_, VcdReplica(), transform, options);
  session.AttachTimeSharing(&scheduler_);
  session.Start();
  simulator_.RunAll();
  EXPECT_EQ(session.delivered_frames(), 100);  // I and P frames only
  EXPECT_EQ(session.source_frames(), 300);
}

TEST_F(RtpSessionTest, RecordLimitCapsStoredTimes) {
  RtpSessionOptions options;
  options.max_source_frames = 100;
  options.record_limit = 10;
  RtpStreamingSession session(&simulator_, VcdReplica(), StreamTransform{},
                              options);
  session.AttachTimeSharing(&scheduler_);
  session.Start();
  simulator_.RunAll();
  EXPECT_EQ(session.frame_completion_times().size(), 10u);
  EXPECT_EQ(session.delivered_frames(), 100);
}

TEST_F(RtpSessionTest, StopCancelsStreaming) {
  RtpSessionOptions options;
  options.max_source_frames = 1000;
  RtpStreamingSession session(&simulator_, VcdReplica(), StreamTransform{},
                              options);
  session.AttachTimeSharing(&scheduler_);
  bool finished = false;
  session.Start([&finished] { finished = true; });
  simulator_.RunUntil(SecondsToSimTime(2.0));
  int delivered = session.delivered_frames();
  EXPECT_GT(delivered, 0);
  session.Stop();
  simulator_.RunAll();
  EXPECT_FALSE(finished);
  EXPECT_LE(session.delivered_frames(), delivered + 1);
}

TEST_F(RtpSessionTest, ReservedAttachmentRespectsAdmission) {
  res::ReservationCpuScheduler reservation(
      &simulator_, res::ReservationCpuScheduler::Options());
  RtpSessionOptions options;
  options.max_source_frames = 50;
  RtpStreamingSession session(&simulator_, VcdReplica(), StreamTransform{},
                              options);
  EXPECT_FALSE(session.AttachReserved(&reservation, 5.0).ok());
  ASSERT_TRUE(session.AttachReserved(&reservation, 0.1).ok());
  session.Start();
  simulator_.RunAll();
  EXPECT_TRUE(session.finished());
  EXPECT_EQ(session.delivered_frames(), 50);
}

TEST_F(RtpSessionTest, ZeroFrameSessionFinishesImmediately) {
  media::ReplicaInfo replica = VcdReplica(/*duration_seconds=*/0.0);
  RtpStreamingSession session(&simulator_, replica, StreamTransform{},
                              RtpSessionOptions{});
  session.AttachTimeSharing(&scheduler_);
  bool finished = false;
  session.Start([&finished] { finished = true; });
  EXPECT_TRUE(finished);
}

TEST(TopologyTest, PaperTestbedHasThreeServers) {
  Topology topology = Topology::PaperTestbed();
  ASSERT_EQ(topology.servers.size(), 3u);
  for (const ServerSpec& server : topology.servers) {
    EXPECT_DOUBLE_EQ(server.outbound_kbps, 3200.0);
  }
  EXPECT_NE(topology.Find(SiteId(0)), nullptr);
  EXPECT_EQ(topology.Find(SiteId(9)), nullptr);
  EXPECT_EQ(topology.SiteIds().size(), 3u);
}

TEST(TopologyTest, NetworkModelProvidesPerSiteLinks) {
  sim::Simulator simulator;
  Topology topology = Topology::Uniform(2);
  NetworkModel network(&simulator, topology);
  sim::FluidServer& link0 = network.OutboundLink(SiteId(0));
  sim::FluidServer& link1 = network.OutboundLink(SiteId(1));
  EXPECT_NE(&link0, &link1);
  EXPECT_DOUBLE_EQ(link0.capacity(), 3200.0);
}

}  // namespace
}  // namespace quasaq::net
