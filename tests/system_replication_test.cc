// System-level integration of dynamic replication: a QuaSAQ system that
// starts with master copies only converges toward serving skewed demand
// from dynamically materialized cheap replicas.

#include <gtest/gtest.h>

#include "core/system.h"
#include "workload/traffic.h"

namespace quasaq::core {
namespace {

MediaDbSystem::Options ReplicatingOptions() {
  MediaDbSystem::Options options;
  options.kind = SystemKind::kVdbmsQuasaq;
  options.seed = 3;
  options.library.max_duration_seconds = 60.0;
  options.library.min_replica_levels = 1;  // masters only at t=0
  options.library.max_replica_levels = 1;
  options.replication.enabled = true;
  options.replication.manager.period = 10 * kSecond;
  return options;
}

TEST(SystemReplicationTest, ManagerAndStoragePresentOnlyWhenEnabled) {
  sim::Simulator simulator;
  MediaDbSystem plain(&simulator, [] {
    MediaDbSystem::Options options;
    options.kind = SystemKind::kVdbmsQuasaq;
    return options;
  }());
  EXPECT_EQ(plain.replication_manager(), nullptr);
  EXPECT_EQ(plain.storage_at(SiteId(0)), nullptr);

  sim::Simulator simulator2;
  MediaDbSystem replicating(&simulator2, ReplicatingOptions());
  EXPECT_NE(replicating.replication_manager(), nullptr);
  ASSERT_NE(replicating.storage_at(SiteId(0)), nullptr);
  // Initial masters are physically stored.
  EXPECT_GT(replicating.storage_at(SiteId(0))->store().object_count(), 0u);
}

TEST(SystemReplicationTest, SkewedDemandMaterializesCheapReplicas) {
  sim::Simulator simulator;
  MediaDbSystem system(&simulator, ReplicatingOptions());
  // Hammer video 0 with low-quality requests; the master (DVD-class)
  // serves them at first, but the manager should materialize cheaper
  // levels.
  query::QosRequirement cheap;
  cheap.range.max_resolution = media::kResolutionSif;
  cheap.range.min_frame_rate = 5.0;
  cheap.range.max_frame_rate = 15.0;
  cheap.range.max_color_depth_bits = 16;
  cheap.range.max_audio = media::AudioQuality::kFm;
  for (int i = 0; i < 40; ++i) {
    system.SubmitDelivery(SiteId(i % 3), LogicalOid(0), cheap);
    simulator.RunUntil(simulator.Now() + SecondsToSimTime(1.0));
  }
  simulator.RunUntil(simulator.Now() + SecondsToSimTime(120.0));
  EXPECT_GT(system.replication_manager()->stats().created, 0u);
  // Fresh identical queries can now be served from a cheap replica
  // without transcoding.
  MediaDbSystem::DeliveryOutcome outcome =
      system.SubmitDelivery(SiteId(0), LogicalOid(0), cheap);
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_LT(outcome.wire_rate_kbps, 60.0);
}

TEST(SystemReplicationTest, ReplicationImprovesAdmitRateUnderSkew) {
  auto run = [](bool enabled) {
    sim::Simulator simulator;
    MediaDbSystem::Options options = ReplicatingOptions();
    options.replication.enabled = enabled;
    MediaDbSystem system(&simulator, options);
    workload::TrafficOptions traffic_options;
    traffic_options.seed = 11;
    traffic_options.video_zipf_s = 1.2;
    workload::TrafficGenerator traffic(traffic_options, 15,
                                       options.topology.SiteIds());
    uint64_t admitted = 0;
    for (int i = 0; i < 600; ++i) {
      workload::QuerySpec spec = traffic.Next();
      if (system
              .SubmitDelivery(spec.client_site, spec.content, spec.qos)
              .status.ok()) {
        ++admitted;
      }
      simulator.RunUntil(simulator.Now() +
                         SecondsToSimTime(traffic.NextGapSeconds()));
    }
    return admitted;
  };
  uint64_t with = run(true);
  uint64_t without = run(false);
  EXPECT_GT(with, without * 12 / 10)
      << "dynamic replication should lift the admit rate by >20%";
}

TEST(SystemReplicationTest, BoundedStorageStaysWithinBudget) {
  sim::Simulator simulator;
  MediaDbSystem::Options options = ReplicatingOptions();
  // Room for the masters (~2.2e5 KB/site) plus a handful of extras.
  options.replication.storage_capacity_kb = 3.0e5;
  options.replication.manager.policy.consolidate_cold_replicas = true;
  MediaDbSystem system(&simulator, options);
  workload::TrafficGenerator traffic(workload::TrafficOptions(), 15,
                                     options.topology.SiteIds());
  for (int i = 0; i < 400; ++i) {
    workload::QuerySpec spec = traffic.Next();
    system.SubmitDelivery(spec.client_site, spec.content, spec.qos);
    simulator.RunUntil(simulator.Now() +
                       SecondsToSimTime(traffic.NextGapSeconds()));
  }
  for (SiteId site : options.topology.SiteIds()) {
    const storage::ObjectStore& store = system.storage_at(site)->store();
    EXPECT_LE(store.used_kb(), store.capacity_kb() + 1e-6);
  }
}

}  // namespace
}  // namespace quasaq::core
