// Integration tests: scaled-down versions of the paper's experiments
// asserting the qualitative results (the "shapes") end to end.

#include <gtest/gtest.h>

#include "workload/interframe.h"
#include "workload/throughput.h"

namespace quasaq {
namespace {

using core::SystemKind;
using workload::InterframeOptions;
using workload::InterframeResult;
using workload::RunInterframeExperiment;
using workload::RunThroughputExperiment;
using workload::ThroughputOptions;
using workload::ThroughputResult;

constexpr SimTime kHorizon = 400 * kSecond;

ThroughputOptions SmallThroughput(SystemKind kind) {
  ThroughputOptions options;
  options.system.kind = kind;
  options.system.seed = 7;
  options.system.library.max_duration_seconds = 90.0;
  options.traffic.seed = 42;
  options.horizon = kHorizon;
  return options;
}

// --- Figure 5 / Table 2 shapes -------------------------------------------

InterframeOptions SmallInterframe(bool quasaq, bool high) {
  InterframeOptions options;
  options.quasaq = quasaq;
  options.high_contention = high;
  options.measured_frames = 450;
  return options;
}

TEST(InterframeIntegrationTest, AllPanelsTrackTheIdealMeanOrAbove) {
  for (bool quasaq : {false, true}) {
    for (bool high : {false, true}) {
      InterframeResult result =
          RunInterframeExperiment(SmallInterframe(quasaq, high));
      ASSERT_TRUE(result.measured_finished);
      EXPECT_GE(result.interframe_ms.mean(),
                result.ideal_interframe_ms * 0.98);
    }
  }
}

TEST(InterframeIntegrationTest, VdbmsDegradesUnderHighContention) {
  InterframeResult low =
      RunInterframeExperiment(SmallInterframe(false, false));
  InterframeResult high =
      RunInterframeExperiment(SmallInterframe(false, true));
  // Table 2's signature: the SD explodes and the mean shifts upward.
  EXPECT_GT(high.interframe_ms.stddev(), low.interframe_ms.stddev() * 3.0);
  EXPECT_GT(high.interframe_ms.mean(), low.interframe_ms.mean() * 1.05);
  EXPECT_GT(high.intergop_ms.stddev(), low.intergop_ms.stddev() * 3.0);
}

TEST(InterframeIntegrationTest, QuasaqIsContentionProof) {
  InterframeResult low =
      RunInterframeExperiment(SmallInterframe(true, false));
  InterframeResult high =
      RunInterframeExperiment(SmallInterframe(true, true));
  EXPECT_NEAR(high.interframe_ms.mean(), low.interframe_ms.mean(), 1.0);
  EXPECT_NEAR(high.interframe_ms.stddev(), low.interframe_ms.stddev(), 3.0);
  EXPECT_LT(high.intergop_ms.stddev(), 20.0);
}

TEST(InterframeIntegrationTest, QuasaqBeatsVdbmsUnderHighContention) {
  InterframeResult vdbms =
      RunInterframeExperiment(SmallInterframe(false, true));
  InterframeResult quasaq =
      RunInterframeExperiment(SmallInterframe(true, true));
  EXPECT_GT(vdbms.interframe_ms.stddev(),
            quasaq.interframe_ms.stddev() * 3.0);
  EXPECT_GT(vdbms.interframe_ms.max(), quasaq.interframe_ms.max() * 2.0);
}

// --- Figure 6 shapes ------------------------------------------------------

TEST(ThroughputIntegrationTest, VdbmsHoldsTheMostOutstandingSessions) {
  ThroughputResult vdbms =
      RunThroughputExperiment(SmallThroughput(SystemKind::kVdbms));
  ThroughputResult qosapi =
      RunThroughputExperiment(SmallThroughput(SystemKind::kVdbmsQosApi));
  ThroughputResult quasaq =
      RunThroughputExperiment(SmallThroughput(SystemKind::kVdbmsQuasaq));
  double vdbms_mean = vdbms.outstanding.MeanOver(kHorizon / 2, kHorizon);
  double qosapi_mean = qosapi.outstanding.MeanOver(kHorizon / 2, kHorizon);
  double quasaq_mean = quasaq.outstanding.MeanOver(kHorizon / 2, kHorizon);
  EXPECT_GT(vdbms_mean, quasaq_mean);
  EXPECT_GT(quasaq_mean, qosapi_mean * 1.3)
      << "QuaSAQ must clearly beat the QoS-API-only system";
}

TEST(ThroughputIntegrationTest, VdbmsNeverRejects) {
  ThroughputResult vdbms =
      RunThroughputExperiment(SmallThroughput(SystemKind::kVdbms));
  EXPECT_EQ(vdbms.system_stats.rejected, 0u);
  EXPECT_GT(vdbms.system_stats.submitted, 100u);
}

TEST(ThroughputIntegrationTest, QosApiRejectsUnderLoad) {
  ThroughputResult qosapi =
      RunThroughputExperiment(SmallThroughput(SystemKind::kVdbmsQosApi));
  EXPECT_GT(qosapi.system_stats.rejected, 0u);
}

TEST(ThroughputIntegrationTest, QuasaqCompletesTheMostJobs) {
  ThroughputResult qosapi =
      RunThroughputExperiment(SmallThroughput(SystemKind::kVdbmsQosApi));
  ThroughputResult quasaq =
      RunThroughputExperiment(SmallThroughput(SystemKind::kVdbmsQuasaq));
  EXPECT_GT(quasaq.system_stats.completed, qosapi.system_stats.completed);
}

// --- Figure 7 shapes ------------------------------------------------------

TEST(CostModelIntegrationTest, LrbBeatsRandomOnRejectsAndSessions) {
  ThroughputOptions lrb = SmallThroughput(SystemKind::kVdbmsQuasaq);
  lrb.system.cost_model = "lrb";
  lrb.system.quality.max_admission_attempts = 1;
  lrb.enable_renegotiation_profile = false;
  ThroughputOptions random = lrb;
  random.system.cost_model = "random";

  ThroughputResult lrb_result = RunThroughputExperiment(lrb);
  ThroughputResult random_result = RunThroughputExperiment(random);

  EXPECT_LT(lrb_result.system_stats.rejected,
            random_result.system_stats.rejected);
  double lrb_mean =
      lrb_result.outstanding.MeanOver(kHorizon / 2, kHorizon);
  double random_mean =
      random_result.outstanding.MeanOver(kHorizon / 2, kHorizon);
  EXPECT_GT(lrb_mean, random_mean * 1.2);
}

// --- resource accounting sanity -------------------------------------------

TEST(ResourceAccountingTest, PoolDrainsWhenTrafficStops) {
  ThroughputOptions options = SmallThroughput(SystemKind::kVdbmsQuasaq);
  sim::Simulator simulator;
  core::MediaDbSystem system(&simulator, options.system);
  workload::TrafficGenerator traffic(options.traffic, 15,
                                     options.system.topology.SiteIds());
  for (int i = 0; i < 50; ++i) {
    workload::QuerySpec spec = traffic.Next();
    system.SubmitDelivery(spec.client_site, spec.content, spec.qos);
  }
  simulator.RunAll();  // all sessions complete
  EXPECT_EQ(system.outstanding_sessions(), 0);
  EXPECT_DOUBLE_EQ(system.pool().MaxUtilization(), 0.0);
  EXPECT_EQ(system.stats().completed, system.stats().admitted);
}

TEST(ResourceAccountingTest, UtilizationNeverExceedsCapacity) {
  ThroughputOptions options = SmallThroughput(SystemKind::kVdbmsQuasaq);
  sim::Simulator simulator;
  core::MediaDbSystem system(&simulator, options.system);
  workload::TrafficGenerator traffic(options.traffic, 15,
                                     options.system.topology.SiteIds());
  for (int i = 0; i < 400; ++i) {
    workload::QuerySpec spec = traffic.Next();
    system.SubmitDelivery(spec.client_site, spec.content, spec.qos);
    EXPECT_LE(system.pool().MaxUtilization(), 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace quasaq
