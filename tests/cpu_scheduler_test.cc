#include "resource/cpu_scheduler.h"

#include <vector>

#include <gtest/gtest.h>

namespace quasaq::res {
namespace {

// Options with no context-switch cost so timings are exact.
TimeSharingCpuScheduler::Options ExactOptions() {
  TimeSharingCpuScheduler::Options options;
  options.context_switch_ms = 0.0;
  return options;
}

TEST(WorkQueueTaskTest, SubmitAndCompleteSingleItem) {
  sim::Simulator simulator;
  TimeSharingCpuScheduler scheduler(&simulator, ExactOptions());
  WorkQueueTask task(&scheduler);
  scheduler.AddTask(&task);
  SimTime completed_at = -1;
  task.Submit(5.0, [&](SimTime t) { completed_at = t; });
  simulator.RunAll();
  EXPECT_EQ(completed_at, MillisToSimTime(5.0));
  EXPECT_EQ(task.queued_items(), 0u);
}

TEST(WorkQueueTaskTest, PendingWorkSumsItems) {
  sim::Simulator simulator;
  TimeSharingCpuScheduler scheduler(&simulator, ExactOptions());
  WorkQueueTask task(&scheduler);
  // Not registered with AddTask: work only accumulates.
  task.Submit(2.0, nullptr);
  task.Submit(3.0, nullptr);
  EXPECT_DOUBLE_EQ(task.PendingWorkMs(), 5.0);
  EXPECT_EQ(task.queued_items(), 2u);
}

TEST(WorkQueueTaskTest, FifoCompletionOrder) {
  sim::Simulator simulator;
  TimeSharingCpuScheduler scheduler(&simulator, ExactOptions());
  WorkQueueTask task(&scheduler);
  scheduler.AddTask(&task);
  std::vector<int> order;
  task.Submit(1.0, [&](SimTime) { order.push_back(1); });
  task.Submit(1.0, [&](SimTime) { order.push_back(2); });
  task.Submit(1.0, [&](SimTime) { order.push_back(3); });
  simulator.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimeSharingTest, LargeJobRunsInQuanta) {
  sim::Simulator simulator;
  TimeSharingCpuScheduler scheduler(&simulator, ExactOptions());
  WorkQueueTask task(&scheduler);
  scheduler.AddTask(&task);
  SimTime completed_at = -1;
  task.Submit(35.0, [&](SimTime t) { completed_at = t; });  // 4 quanta
  simulator.RunAll();
  EXPECT_EQ(completed_at, MillisToSimTime(35.0));
}

TEST(TimeSharingTest, RoundRobinInterleavesTasks) {
  sim::Simulator simulator;
  TimeSharingCpuScheduler scheduler(&simulator, ExactOptions());
  WorkQueueTask a(&scheduler);
  WorkQueueTask b(&scheduler);
  scheduler.AddTask(&a);
  scheduler.AddTask(&b);
  SimTime a_done = -1;
  SimTime b_done = -1;
  a.Submit(20.0, [&](SimTime t) { a_done = t; });
  b.Submit(20.0, [&](SimTime t) { b_done = t; });
  simulator.RunAll();
  // Interleaved 10ms quanta: a finishes at 30ms, b at 40ms.
  EXPECT_EQ(a_done, MillisToSimTime(30.0));
  EXPECT_EQ(b_done, MillisToSimTime(40.0));
}

TEST(TimeSharingTest, ShortJobWaitsForLongQuantumHolder) {
  sim::Simulator simulator;
  TimeSharingCpuScheduler scheduler(&simulator, ExactOptions());
  WorkQueueTask hog(&scheduler);
  WorkQueueTask interactive(&scheduler);
  scheduler.AddTask(&hog, /*quantum_ms=*/200.0);
  scheduler.AddTask(&interactive);
  hog.Submit(200.0, nullptr);
  simulator.RunUntil(MillisToSimTime(1.0));  // hog now holds the CPU
  SimTime done = -1;
  interactive.Submit(1.0, [&](SimTime t) { done = t; });
  simulator.RunAll();
  // The interactive task waits for the hog's full 200 ms quantum.
  EXPECT_EQ(done, MillisToSimTime(201.0));
}

TEST(TimeSharingTest, IdleCpuServesNewWorkImmediately) {
  sim::Simulator simulator;
  TimeSharingCpuScheduler scheduler(&simulator, ExactOptions());
  WorkQueueTask task(&scheduler);
  scheduler.AddTask(&task);
  simulator.RunUntil(MillisToSimTime(100.0));
  SimTime done = -1;
  task.Submit(2.0, [&](SimTime t) { done = t; });
  simulator.RunAll();
  EXPECT_EQ(done, MillisToSimTime(102.0));
}

TEST(TimeSharingTest, RemoveTaskDropsItsWork) {
  sim::Simulator simulator;
  TimeSharingCpuScheduler scheduler(&simulator, ExactOptions());
  WorkQueueTask keeper(&scheduler);
  scheduler.AddTask(&keeper);
  bool removed_completed = false;
  SimTime keeper_done = -1;
  {
    WorkQueueTask removed(&scheduler);
    scheduler.AddTask(&removed);
    removed.Submit(50.0, [&](SimTime) { removed_completed = true; });
    keeper.Submit(5.0, [&](SimTime t) { keeper_done = t; });
    // Destructor unregisters `removed` mid-quantum.
  }
  simulator.RunAll();
  EXPECT_FALSE(removed_completed);
  EXPECT_GE(keeper_done, 0);
}

TEST(TimeSharingTest, BusyFractionTracksLoad) {
  sim::Simulator simulator;
  TimeSharingCpuScheduler scheduler(&simulator, ExactOptions());
  WorkQueueTask task(&scheduler);
  scheduler.AddTask(&task);
  task.Submit(50.0, nullptr);
  simulator.RunUntil(MillisToSimTime(100.0));
  EXPECT_NEAR(scheduler.BusyFraction(), 0.5, 0.01);
}

TEST(ReservationTest, AdmissionEnforcesCapacity) {
  sim::Simulator simulator;
  ReservationCpuScheduler::Options options;
  options.reservable_fraction = 0.9;
  options.scheduler_overhead_fraction = 0.1;
  ReservationCpuScheduler scheduler(&simulator, options);
  WorkQueueTask a(&scheduler);
  WorkQueueTask b(&scheduler);
  WorkQueueTask c(&scheduler);
  EXPECT_TRUE(scheduler.AddReservedTask(&a, 0.5).ok());
  EXPECT_TRUE(scheduler.AddReservedTask(&b, 0.3).ok());
  // 0.5 + 0.3 + 0.1 > 0.9 - 0.1 reservable.
  EXPECT_EQ(scheduler.AddReservedTask(&c, 0.1).code(),
            StatusCode::kResourceExhausted);
  EXPECT_NEAR(scheduler.reserved_fraction(), 0.8, 1e-12);
}

TEST(ReservationTest, RejectsNonPositiveReservation) {
  sim::Simulator simulator;
  ReservationCpuScheduler scheduler(&simulator,
                                    ReservationCpuScheduler::Options());
  WorkQueueTask task(&scheduler);
  EXPECT_EQ(scheduler.AddReservedTask(&task, 0.0).code(),
            StatusCode::kInvalidArgument);
}

TEST(ReservationTest, ReservedWorkServedPromptly) {
  sim::Simulator simulator;
  ReservationCpuScheduler::Options options;
  options.max_dispatch_latency_ms = 0.0;
  ReservationCpuScheduler scheduler(&simulator, options);
  WorkQueueTask task(&scheduler);
  ASSERT_TRUE(scheduler.AddReservedTask(&task, 0.1).ok());
  SimTime done = -1;
  task.Submit(3.0, [&](SimTime t) { done = t; });
  simulator.RunAll();
  EXPECT_EQ(done, MillisToSimTime(3.0));
}

TEST(ReservationTest, IndependentTasksDoNotDelayEachOther) {
  sim::Simulator simulator;
  ReservationCpuScheduler::Options options;
  options.max_dispatch_latency_ms = 0.0;
  ReservationCpuScheduler scheduler(&simulator, options);
  WorkQueueTask a(&scheduler);
  WorkQueueTask b(&scheduler);
  ASSERT_TRUE(scheduler.AddReservedTask(&a, 0.3).ok());
  ASSERT_TRUE(scheduler.AddReservedTask(&b, 0.3).ok());
  SimTime a_done = -1;
  SimTime b_done = -1;
  a.Submit(5.0, [&](SimTime t) { a_done = t; });
  b.Submit(5.0, [&](SimTime t) { b_done = t; });
  simulator.RunAll();
  EXPECT_EQ(a_done, MillisToSimTime(5.0));
  EXPECT_EQ(b_done, MillisToSimTime(5.0));
}

TEST(ReservationTest, WorkArrivingWhileBusyIsServedNext) {
  sim::Simulator simulator;
  ReservationCpuScheduler::Options options;
  options.max_dispatch_latency_ms = 0.0;
  ReservationCpuScheduler scheduler(&simulator, options);
  WorkQueueTask task(&scheduler);
  ASSERT_TRUE(scheduler.AddReservedTask(&task, 0.1).ok());
  std::vector<SimTime> completions;
  task.Submit(4.0, [&](SimTime t) { completions.push_back(t); });
  simulator.ScheduleAt(MillisToSimTime(1.0), [&] {
    task.Submit(2.0, [&](SimTime t) { completions.push_back(t); });
  });
  simulator.RunAll();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], MillisToSimTime(4.0));
  EXPECT_EQ(completions[1], MillisToSimTime(6.0));
}

TEST(ReservationTest, RemoveTaskFreesReservation) {
  sim::Simulator simulator;
  ReservationCpuScheduler scheduler(&simulator,
                                    ReservationCpuScheduler::Options());
  {
    WorkQueueTask task(&scheduler);
    ASSERT_TRUE(scheduler.AddReservedTask(&task, 0.5).ok());
    EXPECT_NEAR(scheduler.reserved_fraction(), 0.5, 1e-12);
  }
  EXPECT_NEAR(scheduler.reserved_fraction(), 0.0, 1e-12);
}

TEST(ReservationTest, DispatchLatencyIsBounded) {
  sim::Simulator simulator;
  ReservationCpuScheduler::Options options;
  options.max_dispatch_latency_ms = 0.2;
  ReservationCpuScheduler scheduler(&simulator, options);
  WorkQueueTask task(&scheduler);
  ASSERT_TRUE(scheduler.AddReservedTask(&task, 0.1).ok());
  for (int i = 0; i < 20; ++i) {
    SimTime submitted = simulator.Now();
    SimTime done = -1;
    task.Submit(1.0, [&](SimTime t) { done = t; });
    simulator.RunAll();
    SimTime elapsed = done - submitted;
    EXPECT_GE(elapsed, MillisToSimTime(1.0));
    EXPECT_LE(elapsed, MillisToSimTime(1.2) + 1);
  }
}

}  // namespace
}  // namespace quasaq::res
