#include "common/resource_vector.h"

#include <gtest/gtest.h>

namespace quasaq {
namespace {

BucketId Cpu(int site) { return {SiteId(site), ResourceKind::kCpu}; }
BucketId Net(int site) {
  return {SiteId(site), ResourceKind::kNetworkBandwidth};
}

TEST(ResourceKindTest, NamesAreStable) {
  EXPECT_EQ(ResourceKindName(ResourceKind::kCpu), "cpu");
  EXPECT_EQ(ResourceKindName(ResourceKind::kNetworkBandwidth), "net");
  EXPECT_EQ(ResourceKindName(ResourceKind::kDiskBandwidth), "disk");
  EXPECT_EQ(ResourceKindName(ResourceKind::kMemory), "mem");
}

TEST(BucketIdTest, EqualityAndOrdering) {
  EXPECT_EQ(Cpu(0), Cpu(0));
  EXPECT_NE(Cpu(0), Cpu(1));
  EXPECT_NE(Cpu(0), Net(0));
  EXPECT_LT(Cpu(0), Cpu(1));
  EXPECT_LT(Cpu(0), Net(0));  // same site, kind order
}

TEST(BucketIdTest, ToStringFormat) {
  EXPECT_EQ(BucketIdToString(Net(2)), "site2/net");
}

TEST(ResourceVectorTest, StartsEmpty) {
  ResourceVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_DOUBLE_EQ(v.Get(Cpu(0)), 0.0);
}

TEST(ResourceVectorTest, AddAndGet) {
  ResourceVector v;
  v.Add(Cpu(0), 0.5);
  v.Add(Net(1), 100.0);
  EXPECT_DOUBLE_EQ(v.Get(Cpu(0)), 0.5);
  EXPECT_DOUBLE_EQ(v.Get(Net(1)), 100.0);
  EXPECT_DOUBLE_EQ(v.Get(Net(0)), 0.0);
  EXPECT_EQ(v.size(), 2u);
}

TEST(ResourceVectorTest, AddAccumulates) {
  ResourceVector v;
  v.Add(Cpu(0), 0.2);
  v.Add(Cpu(0), 0.3);
  EXPECT_DOUBLE_EQ(v.Get(Cpu(0)), 0.5);
  EXPECT_EQ(v.size(), 1u);
}

TEST(ResourceVectorTest, NegativeAddClampsAtZero) {
  ResourceVector v;
  v.Add(Cpu(0), 0.2);
  v.Add(Cpu(0), -1.0);
  EXPECT_DOUBLE_EQ(v.Get(Cpu(0)), 0.0);
}

TEST(ResourceVectorTest, EntriesStaySorted) {
  ResourceVector v;
  v.Add(Net(1), 1.0);
  v.Add(Cpu(0), 1.0);
  v.Add(Cpu(1), 1.0);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.entries()[0].bucket, Cpu(0));
  EXPECT_EQ(v.entries()[1].bucket, Cpu(1));
  EXPECT_EQ(v.entries()[2].bucket, Net(1));
}

TEST(ResourceVectorTest, MergeAddsEntries) {
  ResourceVector a;
  a.Add(Cpu(0), 0.1);
  ResourceVector b;
  b.Add(Cpu(0), 0.2);
  b.Add(Net(0), 50.0);
  a.Merge(b);
  EXPECT_NEAR(a.Get(Cpu(0)), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(a.Get(Net(0)), 50.0);
}

TEST(ResourceVectorTest, ScaleMultipliesEverything) {
  ResourceVector v;
  v.Add(Cpu(0), 2.0);
  v.Add(Net(0), 10.0);
  v.Scale(0.5);
  EXPECT_DOUBLE_EQ(v.Get(Cpu(0)), 1.0);
  EXPECT_DOUBLE_EQ(v.Get(Net(0)), 5.0);
}

TEST(ResourceVectorTest, ToStringListsEntries) {
  ResourceVector v;
  v.Add(Cpu(0), 0.25);
  std::string s = v.ToString();
  EXPECT_NE(s.find("site0/cpu"), std::string::npos);
  EXPECT_NE(s.find("0.25"), std::string::npos);
}

TEST(ResourceVectorTest, BucketIdHashDistinguishesKinds) {
  std::hash<BucketId> hasher;
  EXPECT_NE(hasher(Cpu(0)), hasher(Net(0)));
}

}  // namespace
}  // namespace quasaq
