#include "storage/object_store.h"

#include <gtest/gtest.h>

#include "media/library.h"
#include "storage/storage_manager.h"

namespace quasaq::storage {
namespace {

media::ReplicaInfo MakeReplica(int64_t oid, int64_t site, double size_kb) {
  media::ReplicaInfo replica;
  replica.id = PhysicalOid(oid);
  replica.content = LogicalOid(oid / 10);
  replica.site = SiteId(site);
  replica.qos = media::QualityLadder::Standard().levels[1];
  replica.duration_seconds = 60.0;
  replica.bitrate_kbps = size_kb / 60.0;
  replica.size_kb = size_kb;
  return replica;
}

TEST(ObjectStoreTest, PutAndGet) {
  ObjectStore store(SiteId(0));
  ASSERT_TRUE(store.Put(MakeReplica(1, 0, 100.0)).ok());
  const media::ReplicaInfo* replica = store.Get(PhysicalOid(1));
  ASSERT_NE(replica, nullptr);
  EXPECT_EQ(replica->id, PhysicalOid(1));
  EXPECT_TRUE(store.Contains(PhysicalOid(1)));
  EXPECT_EQ(store.object_count(), 1u);
  EXPECT_DOUBLE_EQ(store.used_kb(), 100.0);
}

TEST(ObjectStoreTest, RejectsWrongSite) {
  ObjectStore store(SiteId(0));
  Status status = store.Put(MakeReplica(1, 1, 100.0));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.object_count(), 0u);
}

TEST(ObjectStoreTest, RejectsDuplicateOid) {
  ObjectStore store(SiteId(0));
  ASSERT_TRUE(store.Put(MakeReplica(1, 0, 100.0)).ok());
  EXPECT_EQ(store.Put(MakeReplica(1, 0, 50.0)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_DOUBLE_EQ(store.used_kb(), 100.0);
}

TEST(ObjectStoreTest, EnforcesCapacity) {
  ObjectStore store(SiteId(0), 150.0);
  ASSERT_TRUE(store.Put(MakeReplica(1, 0, 100.0)).ok());
  EXPECT_EQ(store.Put(MakeReplica(2, 0, 100.0)).code(),
            StatusCode::kResourceExhausted);
  ASSERT_TRUE(store.Put(MakeReplica(3, 0, 50.0)).ok());
  EXPECT_DOUBLE_EQ(store.used_kb(), 150.0);
}

TEST(ObjectStoreTest, UnlimitedCapacityWhenZero) {
  ObjectStore store(SiteId(0), 0.0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Put(MakeReplica(i, 0, 1e9)).ok());
  }
}

TEST(ObjectStoreTest, DeleteReclaimsSpace) {
  ObjectStore store(SiteId(0), 150.0);
  ASSERT_TRUE(store.Put(MakeReplica(1, 0, 100.0)).ok());
  ASSERT_TRUE(store.Delete(PhysicalOid(1)).ok());
  EXPECT_DOUBLE_EQ(store.used_kb(), 0.0);
  EXPECT_FALSE(store.Contains(PhysicalOid(1)));
  ASSERT_TRUE(store.Put(MakeReplica(2, 0, 120.0)).ok());
}

TEST(ObjectStoreTest, DeleteUnknownFails) {
  ObjectStore store(SiteId(0));
  EXPECT_EQ(store.Delete(PhysicalOid(7)).code(), StatusCode::kNotFound);
}

TEST(ObjectStoreTest, ReplicasOfFiltersByContent) {
  ObjectStore store(SiteId(0));
  ASSERT_TRUE(store.Put(MakeReplica(10, 0, 1.0)).ok());  // content 1
  ASSERT_TRUE(store.Put(MakeReplica(11, 0, 1.0)).ok());  // content 1
  ASSERT_TRUE(store.Put(MakeReplica(20, 0, 1.0)).ok());  // content 2
  EXPECT_EQ(store.ReplicasOf(LogicalOid(1)).size(), 2u);
  EXPECT_EQ(store.ReplicasOf(LogicalOid(2)).size(), 1u);
  EXPECT_TRUE(store.ReplicasOf(LogicalOid(9)).empty());
}

TEST(StorageManagerTest, CommitAndReleaseReadBandwidth) {
  StorageManager manager(SiteId(0), StorageManager::Options{1000.0, 0.0});
  ASSERT_TRUE(manager.store().Put(MakeReplica(1, 0, 100.0)).ok());
  ASSERT_TRUE(manager.CommitRead(PhysicalOid(1), 600.0).ok());
  EXPECT_DOUBLE_EQ(manager.committed_read_kbps(), 600.0);
  EXPECT_DOUBLE_EQ(manager.available_read_kbps(), 400.0);
  // Next commit exceeding capacity fails.
  EXPECT_EQ(manager.CommitRead(PhysicalOid(1), 500.0).code(),
            StatusCode::kResourceExhausted);
  manager.ReleaseRead(600.0);
  EXPECT_DOUBLE_EQ(manager.committed_read_kbps(), 0.0);
}

TEST(StorageManagerTest, CommitUnknownObjectFails) {
  StorageManager manager(SiteId(0), StorageManager::Options());
  EXPECT_EQ(manager.CommitRead(PhysicalOid(1), 10.0).code(),
            StatusCode::kNotFound);
}

TEST(StorageManagerTest, ReleaseClampsAtZero) {
  StorageManager manager(SiteId(0), StorageManager::Options());
  manager.ReleaseRead(100.0);
  EXPECT_DOUBLE_EQ(manager.committed_read_kbps(), 0.0);
}

TEST(StorageManagerTest, NegativeCommitRejected) {
  StorageManager manager(SiteId(0), StorageManager::Options());
  ASSERT_TRUE(manager.store().Put(MakeReplica(1, 0, 100.0)).ok());
  EXPECT_EQ(manager.CommitRead(PhysicalOid(1), -5.0).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace quasaq::storage
