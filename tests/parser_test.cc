#include "query/parser.h"

#include <gtest/gtest.h>

namespace quasaq::query {
namespace {

ParsedQuery MustParse(std::string_view input) {
  Result<ParsedQuery> parsed = ParseQuery(input);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? *parsed : ParsedQuery{};
}

TEST(ParserTest, MinimalQuery) {
  ParsedQuery query = MustParse("SELECT video FROM videos");
  EXPECT_EQ(query.target, "videos");
  EXPECT_TRUE(query.content.empty());
  EXPECT_FALSE(query.has_qos_clause);
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  ParsedQuery query = MustParse("select video from videos");
  EXPECT_EQ(query.target, "videos");
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  MustParse("SELECT video FROM videos;");
}

TEST(ParserTest, ContainsPredicate) {
  ParsedQuery query =
      MustParse("SELECT video FROM videos WHERE CONTAINS('sunset')");
  ASSERT_EQ(query.content.keywords.size(), 1u);
  EXPECT_EQ(query.content.keywords[0], "sunset");
}

TEST(ParserTest, MultipleContainsAreAnded) {
  ParsedQuery query = MustParse(
      "SELECT video FROM videos WHERE CONTAINS('sunset') AND "
      "CONTAINS('ocean')");
  ASSERT_EQ(query.content.keywords.size(), 2u);
}

TEST(ParserTest, TitlePredicate) {
  ParsedQuery query =
      MustParse("SELECT video FROM videos WHERE TITLE = 'video03'");
  ASSERT_TRUE(query.content.title.has_value());
  EXPECT_EQ(*query.content.title, "video03");
}

TEST(ParserTest, SimilarPredicateWithTop) {
  ParsedQuery query = MustParse(
      "SELECT video FROM videos WHERE SIMILAR(0.1, 0.2, 0.3) TOP 5");
  ASSERT_TRUE(query.content.similar_to.has_value());
  EXPECT_EQ(query.content.similar_to->size(), 3u);
  EXPECT_DOUBLE_EQ((*query.content.similar_to)[1], 0.2);
  EXPECT_EQ(query.content.top_k, 5);
}

TEST(ParserTest, SimilarDefaultsToTopOne) {
  ParsedQuery query =
      MustParse("SELECT video FROM videos WHERE SIMILAR(0.5)");
  EXPECT_EQ(query.content.top_k, 1);
}

TEST(ParserTest, QosResolutionBounds) {
  ParsedQuery query = MustParse(
      "SELECT video FROM videos WITH QOS (resolution >= 320x240, "
      "resolution <= 720x480)");
  EXPECT_TRUE(query.has_qos_clause);
  EXPECT_EQ(query.qos.range.min_resolution, (media::Resolution{320, 240}));
  EXPECT_EQ(query.qos.range.max_resolution, (media::Resolution{720, 480}));
}

TEST(ParserTest, QosResolutionEqualityPinsBothBounds) {
  ParsedQuery query = MustParse(
      "SELECT video FROM videos WITH QOS (resolution = 352x288)");
  EXPECT_EQ(query.qos.range.min_resolution, (media::Resolution{352, 288}));
  EXPECT_EQ(query.qos.range.max_resolution, (media::Resolution{352, 288}));
}

TEST(ParserTest, QosFrameRateAndColor) {
  ParsedQuery query = MustParse(
      "SELECT video FROM videos WITH QOS (framerate >= 15, framerate <= 30,"
      " color >= 12, color <= 24)");
  EXPECT_DOUBLE_EQ(query.qos.range.min_frame_rate, 15.0);
  EXPECT_DOUBLE_EQ(query.qos.range.max_frame_rate, 30.0);
  EXPECT_EQ(query.qos.range.min_color_depth_bits, 12);
  EXPECT_EQ(query.qos.range.max_color_depth_bits, 24);
}

TEST(ParserTest, QosSingleFormat) {
  ParsedQuery query =
      MustParse("SELECT video FROM videos WITH QOS (format = MPEG1)");
  EXPECT_TRUE(query.qos.range.AcceptsFormat(media::VideoFormat::kMpeg1));
  EXPECT_FALSE(query.qos.range.AcceptsFormat(media::VideoFormat::kMpeg2));
}

TEST(ParserTest, QosFormatInList) {
  ParsedQuery query = MustParse(
      "SELECT video FROM videos WITH QOS (format IN (MPEG1, MPEG2))");
  EXPECT_TRUE(query.qos.range.AcceptsFormat(media::VideoFormat::kMpeg1));
  EXPECT_TRUE(query.qos.range.AcceptsFormat(media::VideoFormat::kMpeg2));
}

TEST(ParserTest, QosSecurityLevels) {
  EXPECT_EQ(MustParse("SELECT v FROM videos WITH QOS (security >= standard)")
                .qos.min_security,
            media::SecurityLevel::kStandard);
  EXPECT_EQ(MustParse("SELECT v FROM videos WITH QOS (security = strong)")
                .qos.min_security,
            media::SecurityLevel::kStrong);
  EXPECT_EQ(MustParse("SELECT v FROM videos WITH QOS (security = none)")
                .qos.min_security,
            media::SecurityLevel::kNone);
}

TEST(ParserTest, FullQuery) {
  ParsedQuery query = MustParse(
      "SELECT video FROM videos WHERE CONTAINS('surgery') AND "
      "SIMILAR(0.9, 0.1) TOP 2 WITH QOS (resolution >= 480x480, "
      "framerate >= 20, color >= 24, format IN (MPEG1, MPEG2), "
      "security >= strong);");
  EXPECT_EQ(query.content.keywords.size(), 1u);
  EXPECT_EQ(query.content.top_k, 2);
  EXPECT_EQ(query.qos.min_security, media::SecurityLevel::kStrong);
  EXPECT_EQ(query.qos.range.min_resolution, (media::Resolution{480, 480}));
}

// --- error cases ---------------------------------------------------------

struct BadQueryCase {
  const char* name;
  const char* text;
  const char* message_fragment;
};

class ParserErrorTest : public ::testing::TestWithParam<BadQueryCase> {};

TEST_P(ParserErrorTest, RejectsWithDiagnostic) {
  const BadQueryCase& test_case = GetParam();
  Result<ParsedQuery> parsed = ParseQuery(test_case.text);
  ASSERT_FALSE(parsed.ok()) << test_case.text;
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find(test_case.message_fragment),
            std::string::npos)
      << "actual: " << parsed.status().message();
}

INSTANTIATE_TEST_SUITE_P(
    BadQueries, ParserErrorTest,
    ::testing::Values(
        BadQueryCase{"MissingSelect", "video FROM videos", "SELECT"},
        BadQueryCase{"MissingFrom", "SELECT video videos", "FROM"},
        BadQueryCase{"MissingTarget", "SELECT video FROM", "identifier"},
        BadQueryCase{"EmptyWhere", "SELECT v FROM videos WHERE", "expected"},
        BadQueryCase{"BadTerm", "SELECT v FROM videos WHERE FOO('x')",
                     "CONTAINS, TITLE or SIMILAR"},
        BadQueryCase{"ContainsWantsString",
                     "SELECT v FROM videos WHERE CONTAINS(42)", "string"},
        BadQueryCase{"UnknownQosParam",
                     "SELECT v FROM videos WITH QOS (loudness >= 3)",
                     "unknown QoS parameter"},
        BadQueryCase{"UnknownFormat",
                     "SELECT v FROM videos WITH QOS (format = MPEG7)",
                     "unknown format"},
        BadQueryCase{"UnknownSecurity",
                     "SELECT v FROM videos WITH QOS (security = medium)",
                     "unknown security level"},
        BadQueryCase{"ResolutionWantsResolution",
                     "SELECT v FROM videos WITH QOS (resolution >= 42)",
                     "resolution"},
        BadQueryCase{"TrailingGarbage", "SELECT v FROM videos extra",
                     "trailing"},
        BadQueryCase{"EmptyResolutionRange",
                     "SELECT v FROM videos WITH QOS (resolution >= 720x480, "
                     "resolution <= 320x240)",
                     "empty resolution range"},
        BadQueryCase{"EmptyFrameRateRange",
                     "SELECT v FROM videos WITH QOS (framerate >= 30, "
                     "framerate <= 10)",
                     "empty frame rate range"},
        BadQueryCase{"ZeroTop",
                     "SELECT v FROM videos WHERE SIMILAR(0.1) TOP 0",
                     "TOP"}),
    [](const ::testing::TestParamInfo<BadQueryCase>& info) {
      return info.param.name;
    });

TEST(ParserInternalsTest, EqualsIgnoreCase) {
  using internal_parser::EqualsIgnoreCase;
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("MpEg1", "mpeg1"));
  EXPECT_FALSE(EqualsIgnoreCase("select", "selec"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

}  // namespace
}  // namespace quasaq::query
