# Negative compile test for the Clang thread-safety annotations.
#
# Invoked by ctest (see tests/CMakeLists.txt, Clang-only) as:
#   cmake -DCXX=<clang++> -DSRC=<thread_safety_compile_fail.cc>
#         -DINC=<repo>/src -P thread_safety_compile_test.cmake
#
# Asserts both directions:
#   - the locked variant compiles clean under -Werror=thread-safety;
#   - removing the MutexLock (the unlocked variant) breaks the build
#     with a thread-safety diagnostic, proving the analysis is live.

set(common_flags -std=c++20 -fsyntax-only -Wthread-safety
                 -Werror=thread-safety -I${INC})

execute_process(
  COMMAND ${CXX} ${common_flags} -DQUASAQ_TS_TEST_LOCKED ${SRC}
  RESULT_VARIABLE locked_result
  ERROR_VARIABLE locked_stderr)
if(NOT locked_result EQUAL 0)
  message(FATAL_ERROR
    "locked variant must compile under -Werror=thread-safety but "
    "failed:\n${locked_stderr}")
endif()

execute_process(
  COMMAND ${CXX} ${common_flags} ${SRC}
  RESULT_VARIABLE unlocked_result
  ERROR_VARIABLE unlocked_stderr)
if(unlocked_result EQUAL 0)
  message(FATAL_ERROR
    "unlocked access to a GUARDED_BY member compiled — the "
    "thread-safety analysis is not live")
endif()
if(NOT unlocked_stderr MATCHES "thread-safety|requires holding")
  message(FATAL_ERROR
    "unlocked variant failed for the wrong reason (expected a "
    "-Wthread-safety diagnostic):\n${unlocked_stderr}")
endif()

message(STATUS "thread-safety compile test ok: locked compiles, "
               "unlocked is rejected")
