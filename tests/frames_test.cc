#include "media/frames.h"

#include <gtest/gtest.h>

namespace quasaq::media {
namespace {

TEST(GopPatternTest, StandardPatternShape) {
  GopPattern pattern = GopPattern::Standard();
  EXPECT_EQ(pattern.size(), 15);
  EXPECT_EQ(pattern.frames().front(), FrameType::kI);
  EXPECT_EQ(pattern.CountOf(FrameType::kI), 1);
  EXPECT_EQ(pattern.CountOf(FrameType::kP), 4);
  EXPECT_EQ(pattern.CountOf(FrameType::kB), 10);
}

TEST(GopPatternTest, StandardPatternSequence) {
  GopPattern pattern = GopPattern::Standard();
  std::string sequence;
  for (FrameType type : pattern.frames()) {
    sequence += FrameTypeChar(type);
  }
  EXPECT_EQ(sequence, "IBBPBBPBBPBBPBB");
}

TEST(GopPatternTest, FormatSpecificPatterns) {
  GopPattern mpeg1 = GopPattern::StandardFor(VideoFormat::kMpeg1);
  EXPECT_EQ(mpeg1.size(), 15);
  GopPattern mpeg2 = GopPattern::StandardFor(VideoFormat::kMpeg2);
  EXPECT_EQ(mpeg2.size(), 12);
  EXPECT_EQ(mpeg2.CountOf(FrameType::kI), 1);
  EXPECT_EQ(mpeg2.CountOf(FrameType::kP), 3);
  EXPECT_EQ(mpeg2.CountOf(FrameType::kB), 8);
}

TEST(GopPatternTest, CustomPattern) {
  GopPattern pattern = GopPattern::Make(12, 4);
  EXPECT_EQ(pattern.size(), 12);
  EXPECT_EQ(pattern.CountOf(FrameType::kI), 1);
  EXPECT_EQ(pattern.CountOf(FrameType::kP), 2);
  EXPECT_EQ(pattern.CountOf(FrameType::kB), 9);
}

TEST(GopPatternTest, TotalWeightMatchesTypeWeights) {
  GopPattern pattern = GopPattern::Standard();
  // 1 I (5) + 4 P (3) + 10 B (1) = 27.
  EXPECT_DOUBLE_EQ(pattern.TotalWeight(), 27.0);
}

TEST(FrameTypeTest, WeightsFollowMpegRatio) {
  EXPECT_GT(FrameTypeWeight(FrameType::kI), FrameTypeWeight(FrameType::kP));
  EXPECT_GT(FrameTypeWeight(FrameType::kP), FrameTypeWeight(FrameType::kB));
}

TEST(FrameSizeGeneratorTest, MeanSizesMatchBitrate) {
  GopPattern pattern = GopPattern::Standard();
  FrameSizeGenerator generator(pattern, 119.0, 23.97, 1);
  // Per GOP: 15 frames / 23.97 fps * 119 KB/s of payload.
  double gop_kb = 119.0 * 15.0 / 23.97;
  EXPECT_NEAR(generator.MeanFrameSizeKb(FrameType::kI), gop_kb * 5.0 / 27.0,
              1e-9);
  EXPECT_NEAR(generator.MeanFrameSizeKb(FrameType::kB), gop_kb / 27.0, 1e-9);
}

TEST(FrameSizeGeneratorTest, DeterministicForSameSeed) {
  GopPattern pattern = GopPattern::Standard();
  FrameSizeGenerator a(pattern, 119.0, 23.97, 42);
  FrameSizeGenerator b(pattern, 119.0, 23.97, 42);
  for (int i = 0; i < 100; ++i) {
    FrameInfo fa = a.Next();
    FrameInfo fb = b.Next();
    EXPECT_EQ(fa.type, fb.type);
    EXPECT_DOUBLE_EQ(fa.size_kb, fb.size_kb);
  }
}

TEST(FrameSizeGeneratorTest, CyclesThroughPattern) {
  GopPattern pattern = GopPattern::Standard();
  FrameSizeGenerator generator(pattern, 119.0, 23.97, 1);
  for (int gop = 0; gop < 3; ++gop) {
    for (int i = 0; i < pattern.size(); ++i) {
      FrameInfo frame = generator.Next();
      EXPECT_EQ(frame.type, pattern.frames()[i]);
      EXPECT_EQ(frame.index_in_gop, i);
    }
  }
}

TEST(FrameSizeGeneratorTest, LongRunBitrateConverges) {
  GopPattern pattern = GopPattern::Standard();
  FrameSizeGenerator generator(pattern, 119.0, 23.97, 7);
  double total_kb = 0.0;
  const int frames = 15 * 2000;
  for (int i = 0; i < frames; ++i) total_kb += generator.Next().size_kb;
  double seconds = frames / 23.97;
  EXPECT_NEAR(total_kb / seconds, 119.0, 119.0 * 0.03);
}

TEST(FrameSizeGeneratorTest, IFramesAreLargest) {
  GopPattern pattern = GopPattern::Standard();
  FrameSizeGenerator generator(pattern, 119.0, 23.97, 7);
  double i_total = 0.0;
  double b_total = 0.0;
  int i_count = 0;
  int b_count = 0;
  for (int k = 0; k < 15 * 200; ++k) {
    FrameInfo frame = generator.Next();
    if (frame.type == FrameType::kI) {
      i_total += frame.size_kb;
      ++i_count;
    } else if (frame.type == FrameType::kB) {
      b_total += frame.size_kb;
      ++b_count;
    }
  }
  EXPECT_GT(i_total / i_count, 3.0 * (b_total / b_count));
}

TEST(FrameSizeGeneratorTest, SizesArePositive) {
  GopPattern pattern = GopPattern::Standard();
  FrameSizeGenerator generator(pattern, 6.0, 10.0, 3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(generator.Next().size_kb, 0.0);
  }
}

// Property-style sweep: the generator hits its target bitrate for any
// combination of bitrate and frame rate.
class FrameRateSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FrameRateSweep, BitrateConvergesForAllConfigurations) {
  auto [bitrate, fps] = GetParam();
  FrameSizeGenerator generator(GopPattern::Standard(), bitrate, fps, 11);
  double total_kb = 0.0;
  const int frames = 15 * 1000;
  for (int i = 0; i < frames; ++i) total_kb += generator.Next().size_kb;
  EXPECT_NEAR(total_kb / (frames / fps), bitrate, bitrate * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Bitrates, FrameRateSweep,
    ::testing::Combine(::testing::Values(6.0, 28.0, 119.0, 311.0),
                       ::testing::Values(10.0, 15.0, 23.97, 30.0)));

}  // namespace
}  // namespace quasaq::media
