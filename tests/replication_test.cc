#include "replication/manager.h"

#include <gtest/gtest.h>

#include "replication/access_tracker.h"
#include "replication/policy.h"

namespace quasaq::repl {
namespace {

// --- AccessTracker ---------------------------------------------------------

TEST(AccessTrackerTest, RateCountsWindowOnly) {
  AccessTracker tracker(10 * kSecond);
  tracker.Record(LogicalOid(1), 0, 0);
  tracker.Record(LogicalOid(1), 0, 5 * kSecond);
  EXPECT_NEAR(tracker.DemandRate(LogicalOid(1), 0, 5 * kSecond), 0.2, 1e-9);
  // The t=0 event expires once the window slides past it.
  EXPECT_NEAR(tracker.DemandRate(LogicalOid(1), 0, 12 * kSecond), 0.1, 1e-9);
  EXPECT_NEAR(tracker.DemandRate(LogicalOid(1), 0, 30 * kSecond), 0.0, 1e-9);
}

TEST(AccessTrackerTest, SeparatesLevelsAndContents) {
  AccessTracker tracker(10 * kSecond);
  tracker.Record(LogicalOid(1), 0, 0);
  tracker.Record(LogicalOid(1), 2, 0);
  tracker.Record(LogicalOid(2), 0, 0);
  EXPECT_GT(tracker.DemandRate(LogicalOid(1), 0, 0), 0.0);
  EXPECT_GT(tracker.DemandRate(LogicalOid(1), 2, 0), 0.0);
  EXPECT_DOUBLE_EQ(tracker.DemandRate(LogicalOid(1), 1, 0), 0.0);
  EXPECT_EQ(tracker.total_requests(), 3u);
}

TEST(AccessTrackerTest, RankedDemandSortsDescending) {
  AccessTracker tracker(10 * kSecond);
  for (int i = 0; i < 5; ++i) tracker.Record(LogicalOid(7), 1, 0);
  for (int i = 0; i < 2; ++i) tracker.Record(LogicalOid(3), 0, 0);
  auto ranked = tracker.RankedDemand(0);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].first.content, LogicalOid(7));
  EXPECT_GT(ranked[0].second, ranked[1].second);
}

// --- policy ----------------------------------------------------------------

PlacementSnapshot BaseSnapshot() {
  PlacementSnapshot snapshot;
  snapshot.sites = {SiteId(0), SiteId(1)};
  // One master (level 0) of content 0 per site.
  snapshot.replicas.push_back(
      PlacementEntry{PhysicalOid(0), LogicalOid(0), 0, SiteId(0), 1000.0});
  snapshot.replicas.push_back(
      PlacementEntry{PhysicalOid(1), LogicalOid(0), 0, SiteId(1), 1000.0});
  return snapshot;
}

TEST(PolicyTest, NoDemandNoActions) {
  PlacementSnapshot snapshot = BaseSnapshot();
  EXPECT_TRUE(PlanReplicationActions(snapshot, PolicyOptions()).empty());
}

TEST(PolicyTest, CreatesHotMissingReplicasOnEverySite) {
  PlacementSnapshot snapshot = BaseSnapshot();
  snapshot.demand = {{DemandKey{LogicalOid(0), 2}, 1.0}};
  snapshot.demand_replica_kb = {100.0};
  auto actions = PlanReplicationActions(snapshot, PolicyOptions());
  ASSERT_EQ(actions.size(), 2u);
  for (const ReplicationAction& action : actions) {
    EXPECT_EQ(action.kind, ReplicationAction::Kind::kCreate);
    EXPECT_EQ(action.content, LogicalOid(0));
    EXPECT_EQ(action.ladder_level, 2);
  }
  EXPECT_NE(actions[0].site, actions[1].site);
}

TEST(PolicyTest, ColdDemandBelowThresholdIsIgnored) {
  PlacementSnapshot snapshot = BaseSnapshot();
  snapshot.demand = {{DemandKey{LogicalOid(0), 2}, 0.01}};
  snapshot.demand_replica_kb = {100.0};
  EXPECT_TRUE(PlanReplicationActions(snapshot, PolicyOptions()).empty());
}

TEST(PolicyTest, ExistingPlacementIsNotDuplicated) {
  PlacementSnapshot snapshot = BaseSnapshot();
  snapshot.replicas.push_back(
      PlacementEntry{PhysicalOid(5), LogicalOid(0), 2, SiteId(0), 100.0});
  snapshot.demand = {{DemandKey{LogicalOid(0), 2}, 1.0}};
  snapshot.demand_replica_kb = {100.0};
  auto actions = PlanReplicationActions(snapshot, PolicyOptions());
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].site, SiteId(1));
}

TEST(PolicyTest, ActionBudgetIsRespected) {
  PlacementSnapshot snapshot = BaseSnapshot();
  snapshot.demand = {{DemandKey{LogicalOid(0), 1}, 2.0},
                     {DemandKey{LogicalOid(0), 2}, 1.5},
                     {DemandKey{LogicalOid(0), 3}, 1.0}};
  snapshot.demand_replica_kb = {100.0, 60.0, 20.0};
  PolicyOptions options;
  options.max_actions_per_cycle = 3;
  auto actions = PlanReplicationActions(snapshot, options);
  EXPECT_EQ(actions.size(), 3u);
}

TEST(PolicyTest, EvictsColdReplicaToMakeRoom) {
  PlacementSnapshot snapshot = BaseSnapshot();
  // Site 0 holds a cold level-3 replica and has no free space.
  snapshot.replicas.push_back(
      PlacementEntry{PhysicalOid(9), LogicalOid(4), 3, SiteId(0), 150.0});
  snapshot.free_kb = {{SiteId(0), 50.0}, {SiteId(1), 1000.0}};
  snapshot.demand = {{DemandKey{LogicalOid(0), 2}, 1.0}};
  snapshot.demand_replica_kb = {120.0};
  auto actions = PlanReplicationActions(snapshot, PolicyOptions());
  // Expect: drop the cold replica at site 0, create at both sites.
  int drops = 0;
  int creates = 0;
  for (const ReplicationAction& action : actions) {
    if (action.kind == ReplicationAction::Kind::kDrop) {
      ++drops;
      EXPECT_EQ(action.victim, PhysicalOid(9));
    } else {
      ++creates;
    }
  }
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(creates, 2);
}

TEST(PolicyTest, NeverEvictsMasterCopies) {
  PlacementSnapshot snapshot;
  snapshot.sites = {SiteId(0)};
  snapshot.replicas.push_back(
      PlacementEntry{PhysicalOid(0), LogicalOid(0), 0, SiteId(0), 1000.0});
  snapshot.replicas.push_back(
      PlacementEntry{PhysicalOid(1), LogicalOid(1), 0, SiteId(0), 1000.0});
  snapshot.free_kb = {{SiteId(0), 10.0}};
  snapshot.demand = {{DemandKey{LogicalOid(0), 2}, 5.0}};
  snapshot.demand_replica_kb = {200.0};
  auto actions = PlanReplicationActions(snapshot, PolicyOptions());
  // Only masters exist, nothing evictable -> nothing created either.
  EXPECT_TRUE(actions.empty());
}

TEST(PolicyTest, DoesNotEvictHotterThanNewcomer) {
  PlacementSnapshot snapshot = BaseSnapshot();
  snapshot.replicas.push_back(
      PlacementEntry{PhysicalOid(9), LogicalOid(4), 3, SiteId(0), 150.0});
  snapshot.free_kb = {{SiteId(0), 0.0}};
  // The existing replica's stream is hotter than the candidate.
  snapshot.demand = {{DemandKey{LogicalOid(4), 3}, 2.0},
                     {DemandKey{LogicalOid(0), 2}, 0.5}};
  snapshot.demand_replica_kb = {150.0, 100.0};
  auto actions = PlanReplicationActions(snapshot, PolicyOptions());
  for (const ReplicationAction& action : actions) {
    EXPECT_NE(action.victim, PhysicalOid(9));
  }
}

TEST(PolicyTest, NoMasterAnywhereNoCreate) {
  PlacementSnapshot snapshot;
  snapshot.sites = {SiteId(0)};
  snapshot.replicas.push_back(
      PlacementEntry{PhysicalOid(2), LogicalOid(0), 2, SiteId(0), 100.0});
  snapshot.demand = {{DemandKey{LogicalOid(0), 1}, 5.0}};
  snapshot.demand_replica_kb = {200.0};
  auto actions = PlanReplicationActions(snapshot, PolicyOptions());
  EXPECT_TRUE(actions.empty());
}

TEST(PolicyConsolidationTest, DropsColdExtraCopies) {
  PlacementSnapshot snapshot = BaseSnapshot();
  for (int site = 0; site < 2; ++site) {
    snapshot.replicas.push_back(PlacementEntry{
        PhysicalOid(20 + site), LogicalOid(0), 2, SiteId(site), 100.0});
  }
  PolicyOptions options;
  options.consolidate_cold_replicas = true;
  options.min_copies = 1;
  auto actions = PlanReplicationActions(snapshot, options);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, ReplicationAction::Kind::kDrop);
  // One of the two level-2 copies goes; masters are untouched.
  EXPECT_GE(actions[0].victim.value(), 20);
}

TEST(PolicyConsolidationTest, WarmGroupsSurvive) {
  PlacementSnapshot snapshot = BaseSnapshot();
  for (int site = 0; site < 2; ++site) {
    snapshot.replicas.push_back(PlacementEntry{
        PhysicalOid(20 + site), LogicalOid(0), 2, SiteId(site), 100.0});
  }
  snapshot.demand = {{DemandKey{LogicalOid(0), 2}, 0.01}};
  snapshot.demand_replica_kb = {100.0};
  PolicyOptions options;
  options.consolidate_cold_replicas = true;
  // Warm (non-zero demand), and 0.01 < create threshold: no action of
  // either kind.
  EXPECT_TRUE(PlanReplicationActions(snapshot, options).empty());
}

TEST(PolicyConsolidationTest, MastersAreNeverConsolidated) {
  PlacementSnapshot snapshot = BaseSnapshot();  // two cold masters
  PolicyOptions options;
  options.consolidate_cold_replicas = true;
  EXPECT_TRUE(PlanReplicationActions(snapshot, options).empty());
}

TEST(PolicyConsolidationTest, FreedSpaceFeedsCreationsInSameCycle) {
  PlacementSnapshot snapshot = BaseSnapshot();
  // Site 0 is full, holding a cold level-3 replica of another content.
  snapshot.replicas.push_back(
      PlacementEntry{PhysicalOid(30), LogicalOid(4), 3, SiteId(0), 150.0});
  snapshot.replicas.push_back(
      PlacementEntry{PhysicalOid(31), LogicalOid(4), 3, SiteId(1), 150.0});
  snapshot.free_kb = {{SiteId(0), 10.0}, {SiteId(1), 1000.0}};
  snapshot.demand = {{DemandKey{LogicalOid(0), 2}, 1.0}};
  snapshot.demand_replica_kb = {120.0};
  PolicyOptions options;
  options.consolidate_cold_replicas = true;
  options.min_copies = 1;
  auto actions = PlanReplicationActions(snapshot, options);
  bool created_at_site0 = false;
  for (const ReplicationAction& action : actions) {
    if (action.kind == ReplicationAction::Kind::kCreate &&
        action.site == SiteId(0)) {
      created_at_site0 = true;
    }
  }
  EXPECT_TRUE(created_at_site0)
      << "consolidation-freed space should enable the hot creation";
}

// --- manager end to end -----------------------------------------------------

class ReplicationManagerTest : public ::testing::Test {
 protected:
  ReplicationManagerTest()
      : sites_({SiteId(0), SiteId(1)}),
        metadata_(sites_, meta::DistributedMetadataEngine::Options()) {
    for (SiteId site : sites_) {
      storage::StorageManager::Options store_options;
      store_options.capacity_kb = 0.0;  // unlimited by default
      stores_.push_back(
          std::make_unique<storage::StorageManager>(site, store_options));
    }
    // Two contents, master copies only, on both sites.
    for (int c = 0; c < 2; ++c) {
      media::VideoContent content;
      content.id = LogicalOid(c);
      content.title = "video" + std::to_string(c);
      content.duration_seconds = 60.0;
      content.master_quality = media::QualityLadder::Standard().levels[0];
      EXPECT_TRUE(metadata_.InsertContent(content).ok());
      for (size_t s = 0; s < sites_.size(); ++s) {
        media::ReplicaInfo replica;
        replica.id = PhysicalOid(c * 10 + static_cast<int64_t>(s));
        replica.content = content.id;
        replica.site = sites_[s];
        replica.qos = content.master_quality;
        replica.duration_seconds = content.duration_seconds;
        media::FinalizeReplicaSizing(replica);
        EXPECT_TRUE(metadata_.InsertReplica(replica).ok());
        EXPECT_TRUE(stores_[s]->store().Put(replica).ok());
      }
    }
  }

  ReplicationManager MakeManager(ReplicationManager::Options options = {}) {
    std::vector<storage::StorageManager*> raw;
    for (auto& store : stores_) raw.push_back(store.get());
    return ReplicationManager(&simulator_, &metadata_, raw,
                              media::QualityLadder::Standard(), 1000,
                              options);
  }

  sim::Simulator simulator_;
  std::vector<SiteId> sites_;
  meta::DistributedMetadataEngine metadata_;
  std::vector<std::unique_ptr<storage::StorageManager>> stores_;
};

TEST_F(ReplicationManagerTest, HotDemandMaterializesReplicas) {
  ReplicationManager manager = MakeManager();
  for (int i = 0; i < 20; ++i) {
    manager.RecordDemand(LogicalOid(0), 2);
  }
  manager.RunCycle();
  // Creation is asynchronous (offline transcoding time).
  EXPECT_EQ(manager.stats().created, 0u);
  simulator_.RunAll();
  EXPECT_EQ(manager.stats().created, 2u);  // one per site
  // The planner-visible metadata now lists the new level-2 replicas.
  auto replicas = metadata_.ReplicasOf(SiteId(0), LogicalOid(0));
  int level2 = 0;
  for (const media::ReplicaInfo& replica : replicas) {
    if (replica.qos == media::QualityLadder::Standard().levels[2]) ++level2;
  }
  EXPECT_EQ(level2, 2);
}

TEST_F(ReplicationManagerTest, CreationTakesTranscodeTime) {
  ReplicationManager::Options options;
  options.transcode_throughput_kbps = 100.0;  // slow transcoder
  ReplicationManager manager = MakeManager(options);
  for (int i = 0; i < 20; ++i) manager.RecordDemand(LogicalOid(0), 3);
  manager.RunCycle();
  // Level-3 replica of a 60 s video ~ 370 KB -> ~3.7 s at 100 KB/s.
  simulator_.RunUntil(1 * kSecond);
  EXPECT_EQ(manager.stats().created, 0u);
  simulator_.RunAll();
  EXPECT_EQ(manager.stats().created, 2u);
}

TEST_F(ReplicationManagerTest, ColdSystemCreatesNothing) {
  ReplicationManager manager = MakeManager();
  manager.RunCycle();
  simulator_.RunAll();
  EXPECT_EQ(manager.stats().created, 0u);
  EXPECT_EQ(manager.stats().dropped, 0u);
}

TEST_F(ReplicationManagerTest, PeriodicCyclesRunWhenStarted) {
  ReplicationManager::Options options;
  options.period = 10 * kSecond;
  ReplicationManager manager = MakeManager(options);
  manager.Start();
  for (int i = 0; i < 20; ++i) manager.RecordDemand(LogicalOid(1), 2);
  simulator_.RunUntil(35 * kSecond);
  manager.Stop();
  EXPECT_GE(manager.stats().cycles, 3u);
  EXPECT_GE(manager.stats().created, 2u);
}

TEST_F(ReplicationManagerTest, DropRemovesStorageAndMetadata) {
  ReplicationManager manager = MakeManager();
  for (int i = 0; i < 20; ++i) manager.RecordDemand(LogicalOid(0), 2);
  manager.RunCycle();
  simulator_.RunAll();
  // Find a created replica and evict it manually through the policy
  // execution path.
  auto replicas = metadata_.ReplicasOf(SiteId(0), LogicalOid(0));
  PhysicalOid victim;
  for (const media::ReplicaInfo& replica : replicas) {
    if (replica.qos == media::QualityLadder::Standard().levels[2]) {
      victim = replica.id;
      break;
    }
  }
  ASSERT_TRUE(victim.valid());
  ASSERT_TRUE(metadata_.EraseReplica(victim).ok());
  auto after = metadata_.ReplicasOf(SiteId(0), LogicalOid(0));
  for (const media::ReplicaInfo& replica : after) {
    EXPECT_NE(replica.id, victim);
  }
}

}  // namespace
}  // namespace quasaq::repl
