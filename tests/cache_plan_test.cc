// Cache-aware plan generation: cache-served plan variants, their
// disk -> memory-bandwidth resource swap, how the cost evaluator ranks
// them, the storage manager's cache-served read path, and the
// system-level admission loop that warms the cache.

#include <gtest/gtest.h>

#include "cache/cache_manager.h"
#include "core/cost_evaluator.h"
#include "core/cost_model.h"
#include "core/plan_generator.h"
#include "core/system.h"
#include "media/library.h"
#include "resource/pool.h"
#include "simcore/simulator.h"
#include "storage/storage_manager.h"

namespace quasaq::core {
namespace {

media::VideoContent MakeContent(int64_t oid) {
  media::VideoContent content;
  content.id = LogicalOid(oid);
  content.title = "video" + std::to_string(oid);
  content.duration_seconds = 60.0;
  content.master_quality = media::QualityLadder::Standard().levels[0];
  return content;
}

media::ReplicaInfo MakeReplica(int64_t oid, int64_t content, int site,
                               int level) {
  media::ReplicaInfo replica;
  replica.id = PhysicalOid(oid);
  replica.content = LogicalOid(content);
  replica.site = SiteId(site);
  replica.qos =
      media::QualityLadder::Standard().levels[static_cast<size_t>(level)];
  replica.duration_seconds = 60.0;
  replica.frame_seed = static_cast<uint64_t>(oid);
  media::FinalizeReplicaSizing(replica);
  return replica;
}

// Planner-side stub: reports the same cached fraction for every replica.
class FakeCacheView : public cache::CacheView {
 public:
  explicit FakeCacheView(double fraction) : fraction_(fraction) {}
  double CachedFraction(SiteId, const media::ReplicaInfo&) const override {
    return fraction_;
  }

 private:
  double fraction_;
};

class CachePlanTest : public ::testing::Test {
 protected:
  CachePlanTest()
      : sites_({SiteId(0), SiteId(1)}),
        metadata_(sites_, meta::DistributedMetadataEngine::Options()),
        replica_(MakeReplica(0, 0, 0, 0)) {
    EXPECT_TRUE(metadata_.InsertContent(MakeContent(0)).ok());
    EXPECT_TRUE(metadata_.InsertReplica(replica_).ok());
  }

  PlanGenerator MakeGenerator(PlanGenerator::Options options = {}) {
    return PlanGenerator(&metadata_, sites_, options);
  }

  static query::QosRequirement AnyQos() {
    query::QosRequirement qos;
    qos.range.min_frame_rate = 1.0;
    return qos;
  }

  std::vector<SiteId> sites_;
  meta::DistributedMetadataEngine metadata_;
  media::ReplicaInfo replica_;
};

TEST_F(CachePlanTest, WarmCacheDoublesTheSpaceWithCachedVariants) {
  PlanGenerator cold = MakeGenerator();
  Result<std::vector<Plan>> cold_plans =
      cold.Generate(SiteId(0), LogicalOid(0), AnyQos());
  ASSERT_TRUE(cold_plans.ok());
  for (const Plan& plan : *cold_plans) {
    EXPECT_FALSE(plan.IsCacheServed());
  }

  FakeCacheView view(0.6);
  PlanGenerator warm = MakeGenerator();
  warm.set_cache_view(&view);
  Result<std::vector<Plan>> warm_plans =
      warm.Generate(SiteId(0), LogicalOid(0), AnyQos());
  ASSERT_TRUE(warm_plans.ok());
  // Every base plan gains exactly one cache-served twin.
  EXPECT_EQ(warm_plans->size(), cold_plans->size() * 2);
  size_t cached = 0;
  for (const Plan& plan : *warm_plans) {
    if (plan.IsCacheServed()) {
      ++cached;
      EXPECT_DOUBLE_EQ(plan.cache_fraction, 0.6);
    }
  }
  EXPECT_EQ(cached, cold_plans->size());
}

TEST_F(CachePlanTest, CachedVariantSwapsDiskForMemoryBandwidth) {
  FakeCacheView view(0.6);
  PlanGenerator generator = MakeGenerator();
  generator.set_cache_view(&view);
  Result<std::vector<Plan>> plans =
      generator.Generate(SiteId(0), LogicalOid(0), AnyQos());
  ASSERT_TRUE(plans.ok());
  BucketId disk{SiteId(0), ResourceKind::kDiskBandwidth};
  BucketId membw{SiteId(0), ResourceKind::kMemoryBandwidth};
  size_t checked = 0;
  for (const Plan& plan : *plans) {
    if (plan.IsCacheServed()) {
      EXPECT_NEAR(plan.resources.Get(disk),
                  replica_.bitrate_kbps * 0.4, 1e-9);
      EXPECT_NEAR(plan.resources.Get(membw),
                  replica_.bitrate_kbps * 0.6, 1e-9);
      ++checked;
    } else {
      EXPECT_NEAR(plan.resources.Get(disk), replica_.bitrate_kbps, 1e-9);
      EXPECT_DOUBLE_EQ(plan.resources.Get(membw), 0.0);
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(CachePlanTest, CachedVariantDeliversSameQosWithFasterStartup) {
  FakeCacheView view(1.0);
  PlanGenerator generator = MakeGenerator();
  generator.set_cache_view(&view);
  Result<std::vector<Plan>> plans =
      generator.Generate(SiteId(0), LogicalOid(0), AnyQos());
  ASSERT_TRUE(plans.ok());
  // Variants come in (cached, base) pairs sharing all activity choices.
  for (size_t i = 0; i + 1 < plans->size(); ++i) {
    const Plan& a = (*plans)[i];
    const Plan& b = (*plans)[i + 1];
    if (!a.IsCacheServed() || b.IsCacheServed()) continue;
    EXPECT_EQ(a.delivered_qos, b.delivered_qos);
    EXPECT_DOUBLE_EQ(a.wire_rate_kbps, b.wire_rate_kbps);
    EXPECT_LT(a.startup_seconds, b.startup_seconds);
  }
}

TEST_F(CachePlanTest, ColdOrBelowThresholdEmitsNoCachedVariants) {
  FakeCacheView barely_warm(0.01);  // below the 5% default threshold
  PlanGenerator generator = MakeGenerator();
  generator.set_cache_view(&barely_warm);
  Result<std::vector<Plan>> plans =
      generator.Generate(SiteId(0), LogicalOid(0), AnyQos());
  ASSERT_TRUE(plans.ok());
  for (const Plan& plan : *plans) {
    EXPECT_FALSE(plan.IsCacheServed());
  }

  PlanGenerator::Options disabled;
  disabled.enable_cache_plans = false;
  FakeCacheView fully_warm(1.0);
  PlanGenerator off = MakeGenerator(disabled);
  off.set_cache_view(&fully_warm);
  plans = off.Generate(SiteId(0), LogicalOid(0), AnyQos());
  ASSERT_TRUE(plans.ok());
  for (const Plan& plan : *plans) {
    EXPECT_FALSE(plan.IsCacheServed());
  }
}

TEST_F(CachePlanTest, EvaluatorPrefersCachedVariantWhenDiskIsHot) {
  // Two otherwise-identical plans: disk-served and fully cache-served.
  Plan base;
  base.replica_oid = replica_.id;
  base.source_site = replica_.site;
  base.delivery_site = replica_.site;
  FinalizePlan(base, replica_, PlanCostConstants{});
  Plan cached = base;
  cached.cache_fraction = 1.0;
  FinalizePlan(cached, replica_, PlanCostConstants{});

  res::ResourcePool pool;
  ASSERT_TRUE(pool.DeclareBucket({SiteId(0), ResourceKind::kCpu}, 1.0).ok());
  ASSERT_TRUE(pool.DeclareBucket({SiteId(0), ResourceKind::kNetworkBandwidth}, 8000.0).ok());
  ASSERT_TRUE(pool.DeclareBucket({SiteId(0), ResourceKind::kDiskBandwidth}, 2500.0).ok());
  ASSERT_TRUE(pool.DeclareBucket({SiteId(0), ResourceKind::kMemory}, 1024.0 * 1024.0).ok());
  ASSERT_TRUE(pool.DeclareBucket({SiteId(0), ResourceKind::kMemoryBandwidth}, 200000.0).ok());
  // Load the disk bucket close to capacity: the LRB cost of the
  // disk-served plan spikes, the cache-served one is unaffected.
  ResourceVector load;
  load.Add({SiteId(0), ResourceKind::kDiskBandwidth}, 2200.0);
  ASSERT_TRUE(pool.Acquire(load).ok());

  std::unique_ptr<CostModel> model = MakeCostModel("lrb", 1);
  RuntimeCostEvaluator evaluator(model.get());
  EXPECT_LT(evaluator.EfficiencyCost(cached, pool),
            evaluator.EfficiencyCost(base, pool));

  std::vector<Plan> plans;
  plans.push_back(base);
  plans.push_back(cached);
  evaluator.Rank(plans, pool);
  EXPECT_TRUE(plans.front().IsCacheServed());
}

TEST(StorageCacheTest, CachedRangesAreServedFromMemory) {
  media::ReplicaInfo replica = MakeReplica(5, 5, 0, 0);
  storage::StorageManager::Options options;
  storage::StorageManager manager(SiteId(0), options);
  ASSERT_TRUE(manager.store().Put(replica).ok());
  cache::SegmentCache cache(cache::SegmentCache::Options{});
  manager.AttachCache(&cache);

  // Cold read goes to disk and fills the touched segments.
  Result<SimTime> cold = manager.ReadObjectPages(replica.id, 0, 8, 0);
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(cache.counters().misses, 0u);
  EXPECT_EQ(cache.counters().hits, 0u);

  // Warm read of the same range is memory-served: orders of magnitude
  // faster than any disk path, and counted as hits.
  Result<SimTime> warm =
      manager.ReadObjectPages(replica.id, 0, 8, kSecond);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(cache.counters().hits, 0u);
  EXPECT_LT(*warm, *cold);
  double kb = 8 * manager.disk_model().page_kb();
  EXPECT_EQ(*warm, SecondsToSimTime(kb / options.memory_read_kbps));

  // Detached cache restores the plain disk path.
  manager.AttachCache(nullptr);
  Result<SimTime> detached =
      manager.ReadObjectPages(replica.id, 0, 8, 2 * kSecond);
  ASSERT_TRUE(detached.ok());
}

TEST(SystemCacheTest, RepeatQueriesTurnIntoCacheHits) {
  sim::Simulator simulator;
  MediaDbSystem::Options options;
  options.kind = SystemKind::kVdbmsQuasaq;
  options.seed = 3;
  options.cache.enabled = true;
  MediaDbSystem system(&simulator, options);
  ASSERT_NE(system.cache_manager(), nullptr);

  query::QosRequirement qos;
  qos.range.min_frame_rate = 1.0;
  SiteId client(0);
  LogicalOid content(0);

  // First delivery streams from disk and warms the cache.
  MediaDbSystem::DeliveryOutcome first =
      system.SubmitDelivery(client, content, qos);
  ASSERT_TRUE(first.status.ok());
  cache::SegmentCache::Counters counters =
      system.cache_manager()->TotalCounters();
  EXPECT_GT(counters.misses, 0u);
  EXPECT_EQ(counters.hits, 0u);

  // Let the first session finish so both queries are planned under the
  // same (idle) system status; only the cache warmth differs.
  simulator.RunUntil(2000 * kSecond);
  EXPECT_EQ(system.outstanding_sessions(), 0);

  // The repeat query is planned against the warm cache: the admitted
  // plan is cache-served, so the stream's segments come back as hits.
  MediaDbSystem::DeliveryOutcome second =
      system.SubmitDelivery(client, content, qos);
  ASSERT_TRUE(second.status.ok());
  counters = system.cache_manager()->TotalCounters();
  EXPECT_GT(counters.hits, 0u);
  EXPECT_GT(counters.HitRatio(), 0.0);
}

TEST(SystemCacheTest, CacheDisabledByDefault) {
  sim::Simulator simulator;
  MediaDbSystem::Options options;
  options.kind = SystemKind::kVdbmsQuasaq;
  MediaDbSystem system(&simulator, options);
  EXPECT_EQ(system.cache_manager(), nullptr);
}

}  // namespace
}  // namespace quasaq::core
