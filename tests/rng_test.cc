#include "common/rng.h"

#include <gtest/gtest.h>

namespace quasaq {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.NextDouble(), b.NextDouble());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.NextDouble() != b.NextDouble()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Uniform(-2.5, 9.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 9.5);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t x = rng.UniformInt(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= x == 0;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, ClampedNormalStaysInBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.ClampedNormal(1.0, 10.0, 0.5, 1.5);
    EXPECT_GE(x, 0.5);
    EXPECT_LE(x, 1.5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyConverges) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, WeightedIndexNeverPicksZeroWeight) {
  Rng rng(9);
  std::vector<double> weights = {0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 1000; ++i) {
    size_t index = rng.WeightedIndex(weights);
    EXPECT_TRUE(index == 1 || index == 3);
  }
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(9);
  std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.WeightedIndex(weights) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.02);
}

TEST(RngTest, ZipfZeroSkewIsUniformish) {
  Rng rng(13);
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Zipf(4, 0.0)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.03);
  }
}

TEST(RngTest, ZipfSkewFavorsLowRanks) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(RngTest, ForkProducesIndependentDeterministicStream) {
  Rng a(99);
  Rng b(99);
  Rng fork_a = a.Fork();
  Rng fork_b = b.Fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(fork_a.NextDouble(), fork_b.NextDouble());
  }
}

}  // namespace
}  // namespace quasaq
