#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cache_manager.h"
#include "cache/eviction.h"
#include "cache/segment.h"
#include "cache/segment_cache.h"
#include "common/rng.h"
#include "media/frames.h"
#include "media/library.h"
#include "media/video.h"

namespace quasaq::cache {
namespace {

media::ReplicaInfo MakeReplica(int64_t oid, double duration_seconds,
                               int ladder_level = 0) {
  media::ReplicaInfo replica;
  replica.id = PhysicalOid(oid);
  replica.content = LogicalOid(oid);
  replica.site = SiteId(0);
  replica.qos = media::QualityLadder::Standard()
                    .levels[static_cast<size_t>(ladder_level)];
  replica.duration_seconds = duration_seconds;
  media::FinalizeReplicaSizing(replica);
  return replica;
}

TEST(SegmentLayoutTest, SegmentsAreWholeGops) {
  media::ReplicaInfo replica = MakeReplica(1, 120.0);
  SegmentLayout layout = SegmentLayout::For(replica);
  media::GopPattern pattern =
      media::GopPattern::StandardFor(replica.qos.format);
  double gop_seconds =
      static_cast<double>(pattern.size()) / replica.qos.frame_rate;
  EXPECT_GE(layout.gops_per_segment(), 1);
  EXPECT_NEAR(layout.segment_seconds(),
              layout.gops_per_segment() * gop_seconds, 1e-9);
}

TEST(SegmentLayoutTest, SegmentSizesSumToObjectSize) {
  for (double duration : {7.0, 60.0, 95.5, 120.0, 600.0}) {
    media::ReplicaInfo replica = MakeReplica(1, duration);
    SegmentLayout layout = SegmentLayout::For(replica);
    double sum = 0.0;
    for (int i = 0; i < layout.num_segments(); ++i) {
      sum += layout.SegmentKb(i);
    }
    EXPECT_NEAR(sum, layout.total_kb(), layout.total_kb() * 1e-9)
        << "duration=" << duration;
    EXPECT_NEAR(layout.PrefixKb(layout.num_segments()), sum, 1e-6);
    EXPECT_DOUBLE_EQ(layout.total_kb(), replica.size_kb);
  }
}

TEST(SegmentLayoutTest, LastSegmentCarriesTheRemainder) {
  media::ReplicaInfo replica = MakeReplica(1, 95.0);
  SegmentLayout layout = SegmentLayout::For(replica);
  ASSERT_GE(layout.num_segments(), 2);
  EXPECT_LE(layout.SegmentKb(layout.num_segments() - 1),
            layout.SegmentKb(0));
  EXPECT_GT(layout.SegmentKb(layout.num_segments() - 1), 0.0);
}

TEST(SegmentLayoutTest, OffsetMapsIntoValidSegments) {
  media::ReplicaInfo replica = MakeReplica(1, 120.0);
  SegmentLayout layout = SegmentLayout::For(replica);
  EXPECT_EQ(layout.SegmentAtOffsetKb(0.0), 0);
  EXPECT_EQ(layout.SegmentAtOffsetKb(-5.0), 0);
  EXPECT_EQ(layout.SegmentAtOffsetKb(layout.total_kb() * 2.0),
            layout.num_segments() - 1);
  // An offset just inside segment 1's range maps to segment 1.
  EXPECT_EQ(layout.SegmentAtOffsetKb(layout.SegmentKb(0) + 1.0), 1);
}

TEST(SegmentCacheTest, HitMissSequenceIsDeterministic) {
  // The same seeded workload replayed into two fresh caches must produce
  // identical hit/miss sequences — cache behavior depends only on the
  // access sequence and the simulated clock, never on host state.
  auto run = [] {
    SegmentCache::Options options;
    options.capacity_kb = 2000.0;
    SegmentCache cache(options);
    Rng rng(1234);
    std::vector<bool> outcomes;
    for (int i = 0; i < 2000; ++i) {
      SegmentKey key{PhysicalOid(rng.UniformInt(0, 7)),
                     static_cast<int32_t>(rng.UniformInt(0, 11))};
      outcomes.push_back(cache.Access(key, 100.0, i * kSecond));
    }
    return outcomes;
  };
  std::vector<bool> first = run();
  std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  // The workload overflows the cache, so both hits and misses occur.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST(SegmentCacheTest, ByteAccountingBalances) {
  SegmentCache::Options options;
  options.capacity_kb = 1500.0;
  SegmentCache cache(options);
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    SegmentKey key{PhysicalOid(rng.UniformInt(0, 4)),
                   static_cast<int32_t>(rng.UniformInt(0, 9))};
    cache.Access(key, 100.0, i * kSecond);
  }
  const SegmentCache::Counters& counters = cache.counters();
  // Everything inserted either is still resident or was evicted.
  EXPECT_NEAR(cache.used_kb(),
              counters.inserted_kb - counters.evicted_kb, 1e-6);
  EXPECT_LE(cache.used_kb(), options.capacity_kb + 1e-9);
  EXPECT_EQ(counters.hits + counters.misses, 500u);
  EXPECT_NEAR(counters.hit_kb + counters.miss_kb, 500 * 100.0, 1e-6);
}

TEST(SegmentCacheTest, LruEvictsLeastRecentlyUsed) {
  SegmentCache::Options options;
  options.capacity_kb = 300.0;
  options.policy = "lru";
  SegmentCache cache(options);
  cache.Access(SegmentKey{PhysicalOid(1), 0}, 100.0, 1 * kSecond);
  cache.Access(SegmentKey{PhysicalOid(1), 1}, 100.0, 2 * kSecond);
  cache.Access(SegmentKey{PhysicalOid(1), 2}, 100.0, 3 * kSecond);
  // Refresh segment 0; segment 1 becomes the LRU victim.
  cache.Access(SegmentKey{PhysicalOid(1), 0}, 100.0, 4 * kSecond);
  cache.Access(SegmentKey{PhysicalOid(2), 0}, 100.0, 5 * kSecond);
  EXPECT_TRUE(cache.Contains(SegmentKey{PhysicalOid(1), 0}));
  EXPECT_FALSE(cache.Contains(SegmentKey{PhysicalOid(1), 1}));
  EXPECT_TRUE(cache.Contains(SegmentKey{PhysicalOid(1), 2}));
  EXPECT_TRUE(cache.Contains(SegmentKey{PhysicalOid(2), 0}));
}

TEST(SegmentCacheTest, PoliciesDivergeOnSkewedPrefixWorkload) {
  // A popular video's prefix is re-read constantly while a long one-off
  // scan floods the cache. Under LRU the scan's fresh segments displace
  // the popular prefix; the utility-weighted policy keeps it resident.
  auto run = [](const std::string& policy) {
    SegmentCache::Options options;
    options.capacity_kb = 1000.0;
    options.policy = policy;
    SegmentCache cache(options);
    const PhysicalOid popular(1);
    const PhysicalOid scan(2);
    SimTime now = 0;
    // Build up popularity: many sessions re-reading the short prefix.
    for (int session = 0; session < 20; ++session) {
      for (int32_t seg = 0; seg < 4; ++seg) {
        now += kSecond;
        cache.Access(SegmentKey{popular, seg}, 100.0, now);
      }
    }
    // One long cold scan, twice the cache size.
    for (int32_t seg = 0; seg < 20; ++seg) {
      now += kSecond;
      cache.Access(SegmentKey{scan, seg}, 100.0, now);
    }
    // How much of the popular prefix survived the flood?
    return cache.CachedSegmentsOf(popular);
  };
  int lru_survivors = run("lru");
  int utility_survivors = run("utility");
  EXPECT_EQ(lru_survivors, 0);       // LRU keeps only the newest segments
  EXPECT_EQ(utility_survivors, 4);   // utility keeps the hot prefix
}

TEST(SegmentCacheTest, ContainsHasNoSideEffects) {
  SegmentCache cache(SegmentCache::Options{});
  cache.Access(SegmentKey{PhysicalOid(1), 0}, 100.0, kSecond);
  SegmentCache::Counters before = cache.counters();
  EXPECT_TRUE(cache.Contains(SegmentKey{PhysicalOid(1), 0}));
  EXPECT_FALSE(cache.Contains(SegmentKey{PhysicalOid(1), 1}));
  EXPECT_EQ(cache.counters().hits, before.hits);
  EXPECT_EQ(cache.counters().misses, before.misses);
}

TEST(SegmentCacheTest, OversizedSegmentIsRejected) {
  SegmentCache::Options options;
  options.capacity_kb = 100.0;
  SegmentCache cache(options);
  EXPECT_FALSE(cache.Access(SegmentKey{PhysicalOid(1), 0}, 500.0, 0));
  EXPECT_FALSE(cache.Contains(SegmentKey{PhysicalOid(1), 0}));
  EXPECT_EQ(cache.counters().rejected, 1u);
  EXPECT_DOUBLE_EQ(cache.used_kb(), 0.0);
}

TEST(SegmentCacheTest, EraseReplicaDropsAllItsSegments) {
  SegmentCache cache(SegmentCache::Options{});
  for (int32_t seg = 0; seg < 5; ++seg) {
    cache.Access(SegmentKey{PhysicalOid(1), seg}, 50.0, kSecond);
    cache.Access(SegmentKey{PhysicalOid(2), seg}, 50.0, kSecond);
  }
  EXPECT_DOUBLE_EQ(cache.CachedKbOf(PhysicalOid(1)), 250.0);
  EXPECT_EQ(cache.EraseReplica(PhysicalOid(1)), 5u);
  EXPECT_DOUBLE_EQ(cache.CachedKbOf(PhysicalOid(1)), 0.0);
  EXPECT_EQ(cache.CachedSegmentsOf(PhysicalOid(1)), 0);
  // The other replica is untouched and the bytes balance.
  EXPECT_DOUBLE_EQ(cache.CachedKbOf(PhysicalOid(2)), 250.0);
  EXPECT_DOUBLE_EQ(cache.used_kb(), 250.0);
  // Invalidation is not eviction pressure: not charged as evictions.
  EXPECT_EQ(cache.counters().evictions, 0u);
}

TEST(CacheManagerTest, StreamingWarmsTheSourceSiteOnly) {
  std::vector<SiteId> sites = {SiteId(0), SiteId(1)};
  CacheManager manager(sites, CacheManager::Options{});
  media::ReplicaInfo replica = MakeReplica(3, 60.0);
  EXPECT_DOUBLE_EQ(manager.CachedFraction(SiteId(0), replica), 0.0);

  manager.OnStream(SiteId(0), replica, kSecond);
  EXPECT_DOUBLE_EQ(manager.CachedFraction(SiteId(0), replica), 1.0);
  EXPECT_DOUBLE_EQ(manager.CachedFraction(SiteId(1), replica), 0.0);
  // Unknown sites answer cold instead of failing.
  EXPECT_DOUBLE_EQ(manager.CachedFraction(SiteId(9), replica), 0.0);

  // First pass was all misses; a second pass is all hits.
  SegmentCache::Counters counters = manager.TotalCounters();
  EXPECT_EQ(counters.hits, 0u);
  EXPECT_GT(counters.misses, 0u);
  manager.OnStream(SiteId(0), replica, 2 * kSecond);
  counters = manager.TotalCounters();
  EXPECT_EQ(counters.hits, counters.misses);
  EXPECT_DOUBLE_EQ(counters.hit_kb, counters.miss_kb);

  manager.EraseReplica(replica.id);
  EXPECT_DOUBLE_EQ(manager.CachedFraction(SiteId(0), replica), 0.0);
}

TEST(EvictionPolicyTest, FactoryKnowsBothPolicies) {
  EXPECT_NE(MakeEvictionPolicy("lru"), nullptr);
  EXPECT_NE(MakeEvictionPolicy("utility"), nullptr);
  EXPECT_EQ(MakeEvictionPolicy("no-such-policy"), nullptr);
}

TEST(EvictionPolicyTest, UtilityFavorsEarlySegmentsAndPopularity) {
  UtilityWeightedPolicy policy;
  SegmentMeta early;
  early.key = SegmentKey{PhysicalOid(1), 0};
  early.popularity = 5.0;
  early.last_access = 10 * kSecond;
  SegmentMeta late = early;
  late.key.index = 9;
  EXPECT_GT(policy.Score(early, 10 * kSecond),
            policy.Score(late, 10 * kSecond));
  // Popularity decays with idleness inside the score.
  EXPECT_GT(policy.Score(early, 10 * kSecond),
            policy.Score(early, 1000 * kSecond));
}

}  // namespace
}  // namespace quasaq::cache
