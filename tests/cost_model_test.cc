#include "core/cost_model.h"

#include <gtest/gtest.h>

#include "core/cost_evaluator.h"

namespace quasaq::core {
namespace {

BucketId Cpu(int site) { return {SiteId(site), ResourceKind::kCpu}; }
BucketId Net(int site) {
  return {SiteId(site), ResourceKind::kNetworkBandwidth};
}

// ResourcePool owns a mutex and is pinned in place; fill in situ.
void FillTwoSitePool(res::ResourcePool& pool) {
  ASSERT_TRUE(pool.DeclareBucket(Cpu(0), 1.0).ok());
  ASSERT_TRUE(pool.DeclareBucket(Net(0), 100.0).ok());
  ASSERT_TRUE(pool.DeclareBucket(Cpu(1), 1.0).ok());
  ASSERT_TRUE(pool.DeclareBucket(Net(1), 100.0).ok());
}

TEST(LrbCostModelTest, EmptySystemCostEqualsLargestDemandFill) {
  res::ResourcePool pool;
  FillTwoSitePool(pool);
  LrbCostModel lrb;
  ResourceVector demand;
  demand.Add(Cpu(0), 0.2);
  demand.Add(Net(0), 50.0);
  EXPECT_NEAR(lrb.Cost(demand, pool), 0.5, 1e-12);
}

TEST(LrbCostModelTest, IncludesCurrentUsage) {
  res::ResourcePool pool;
  FillTwoSitePool(pool);
  ResourceVector used;
  used.Add(Cpu(1), 0.7);
  ASSERT_TRUE(pool.Acquire(used).ok());
  LrbCostModel lrb;
  ResourceVector demand;
  demand.Add(Cpu(0), 0.2);
  // The hot untouched bucket (site1 cpu at 0.7) dominates.
  EXPECT_NEAR(lrb.Cost(demand, pool), 0.7, 1e-12);
  // A plan stacked on the hot bucket costs more.
  ResourceVector stacked;
  stacked.Add(Cpu(1), 0.2);
  EXPECT_NEAR(lrb.Cost(stacked, pool), 0.9, 1e-12);
}

TEST(LrbCostModelTest, PrefersLoadBalancingPlacement) {
  res::ResourcePool pool;
  FillTwoSitePool(pool);
  ResourceVector used;
  used.Add(Net(0), 60.0);
  ASSERT_TRUE(pool.Acquire(used).ok());
  LrbCostModel lrb;
  ResourceVector on_hot;
  on_hot.Add(Net(0), 30.0);
  ResourceVector on_cold;
  on_cold.Add(Net(1), 30.0);
  EXPECT_LT(lrb.Cost(on_cold, pool), lrb.Cost(on_hot, pool));
}

TEST(LrbCostModelTest, MatchesPaperFormula) {
  // f(r) = max_i (U_i + r_i) / R_i over all buckets (paper Eq. 1).
  res::ResourcePool pool;
  FillTwoSitePool(pool);
  ResourceVector used;
  used.Add(Cpu(0), 0.30);
  used.Add(Net(0), 42.0);
  ASSERT_TRUE(pool.Acquire(used).ok());
  ResourceVector demand;
  demand.Add(Cpu(0), 0.15);
  demand.Add(Net(0), 15.0);
  LrbCostModel lrb;
  // cpu: 0.45, net: 0.57 -> max 0.57.
  EXPECT_NEAR(lrb.Cost(demand, pool), 0.57, 1e-12);
}

TEST(RandomCostModelTest, DeterministicGivenSeed) {
  res::ResourcePool pool;
  FillTwoSitePool(pool);
  ResourceVector demand;
  RandomCostModel a(5);
  RandomCostModel b(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.Cost(demand, pool), b.Cost(demand, pool));
  }
}

TEST(RandomCostModelTest, IgnoresDemand) {
  res::ResourcePool pool;
  FillTwoSitePool(pool);
  RandomCostModel model(5);
  ResourceVector heavy;
  heavy.Add(Cpu(0), 0.99);
  for (int i = 0; i < 100; ++i) {
    double cost = model.Cost(heavy, pool);
    EXPECT_GE(cost, 0.0);
    EXPECT_LT(cost, 1.0);
  }
}

TEST(MinTotalCostModelTest, SumsNormalizedDemand) {
  res::ResourcePool pool;
  FillTwoSitePool(pool);
  MinTotalCostModel model;
  ResourceVector demand;
  demand.Add(Cpu(0), 0.2);
  demand.Add(Net(0), 30.0);
  EXPECT_NEAR(model.Cost(demand, pool), 0.5, 1e-12);
  // Current usage is ignored by design.
  ResourceVector used;
  used.Add(Cpu(0), 0.7);
  ASSERT_TRUE(pool.Acquire(used).ok());
  EXPECT_NEAR(model.Cost(demand, pool), 0.5, 1e-12);
}

TEST(WeightedSumCostModelTest, PenalizesHotBucketsQuadratically) {
  res::ResourcePool pool;
  FillTwoSitePool(pool);
  ResourceVector used;
  used.Add(Net(0), 60.0);
  ASSERT_TRUE(pool.Acquire(used).ok());
  WeightedSumCostModel model;
  ResourceVector on_hot;
  on_hot.Add(Net(0), 30.0);
  ResourceVector on_cold;
  on_cold.Add(Net(1), 30.0);
  EXPECT_LT(model.Cost(on_cold, pool), model.Cost(on_hot, pool));
}

TEST(CostModelFactoryTest, KnownNames) {
  EXPECT_EQ(MakeCostModel("lrb")->name(), "LRB");
  EXPECT_EQ(MakeCostModel("LRB")->name(), "LRB");
  EXPECT_EQ(MakeCostModel("random", 3)->name(), "Random");
  EXPECT_EQ(MakeCostModel("mintotal")->name(), "MinTotal");
  EXPECT_EQ(MakeCostModel("WeightedSum")->name(), "WeightedSum");
  EXPECT_EQ(MakeCostModel("bogus"), nullptr);
}

// --- RuntimeCostEvaluator -------------------------------------------------

Plan PlanWithDemand(double cpu0, double net0, double cpu1 = 0.0) {
  Plan plan;
  plan.replica_oid = PhysicalOid(1);
  plan.source_site = SiteId(0);
  plan.delivery_site = SiteId(0);
  if (cpu0 > 0.0) plan.resources.Add(Cpu(0), cpu0);
  if (net0 > 0.0) plan.resources.Add(Net(0), net0);
  if (cpu1 > 0.0) plan.resources.Add(Cpu(1), cpu1);
  return plan;
}

TEST(RuntimeCostEvaluatorTest, RanksAscendingByCost) {
  res::ResourcePool pool;
  FillTwoSitePool(pool);
  LrbCostModel lrb;
  RuntimeCostEvaluator evaluator(&lrb);
  std::vector<Plan> plans;
  plans.push_back(PlanWithDemand(0.8, 0.0));   // cost 0.8
  plans.push_back(PlanWithDemand(0.1, 0.0));   // cost 0.1
  plans.push_back(PlanWithDemand(0.0, 40.0));  // cost 0.4
  evaluator.Rank(plans, pool);
  EXPECT_NEAR(plans[0].resources.Get(Cpu(0)), 0.1, 1e-12);
  EXPECT_NEAR(plans[1].resources.Get(Net(0)), 40.0, 1e-12);
  EXPECT_NEAR(plans[2].resources.Get(Cpu(0)), 0.8, 1e-12);
}

TEST(RuntimeCostEvaluatorTest, TieBreaksOnTotalDemand) {
  res::ResourcePool pool;
  FillTwoSitePool(pool);
  // Pre-load site 1 so it dominates every LRB cost identically.
  ResourceVector used;
  used.Add(Cpu(1), 0.9);
  ASSERT_TRUE(pool.Acquire(used).ok());
  LrbCostModel lrb;
  RuntimeCostEvaluator evaluator(&lrb);
  std::vector<Plan> plans;
  plans.push_back(PlanWithDemand(0.5, 10.0));  // larger total demand
  plans.push_back(PlanWithDemand(0.1, 10.0));  // smaller total demand
  evaluator.Rank(plans, pool);
  EXPECT_NEAR(plans[0].resources.Get(Cpu(0)), 0.1, 1e-12);
}

TEST(RuntimeCostEvaluatorTest, GainDividesCost) {
  res::ResourcePool pool;
  FillTwoSitePool(pool);
  LrbCostModel lrb;
  RuntimeCostEvaluator evaluator(&lrb);
  // Gain = delivered quality: mark one plan as twice as valuable.
  evaluator.set_gain_function([](const Plan& plan) {
    return plan.resources.Get(Cpu(0)) > 0.3 ? 4.0 : 1.0;
  });
  std::vector<Plan> plans;
  plans.push_back(PlanWithDemand(0.2, 0.0));  // cost 0.2 / 1
  plans.push_back(PlanWithDemand(0.4, 0.0));  // cost 0.4 / 4 = 0.1
  evaluator.Rank(plans, pool);
  EXPECT_NEAR(plans[0].resources.Get(Cpu(0)), 0.4, 1e-12);
}

TEST(RuntimeCostEvaluatorTest, EmptyAndSingleInputsAreFine) {
  res::ResourcePool pool;
  FillTwoSitePool(pool);
  LrbCostModel lrb;
  RuntimeCostEvaluator evaluator(&lrb);
  std::vector<Plan> empty;
  evaluator.Rank(empty, pool);
  EXPECT_TRUE(empty.empty());
  std::vector<Plan> one;
  one.push_back(PlanWithDemand(0.1, 0.0));
  evaluator.Rank(one, pool);
  EXPECT_EQ(one.size(), 1u);
}

}  // namespace
}  // namespace quasaq::core
