// System-level property sweep: a randomized storm of user operations
// (submit, cancel, pause, resume, quality changes) against the QuaSAQ
// facade must never corrupt resource accounting — buckets never
// overflow, and everything drains to zero when the storm ends.

#include <gtest/gtest.h>

#include "core/system.h"
#include "workload/traffic.h"

namespace quasaq {
namespace {

class SystemStormTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SystemStormTest, ResourceAccountingSurvivesRandomUserActions) {
  sim::Simulator simulator;
  core::MediaDbSystem::Options options;
  options.kind = core::SystemKind::kVdbmsQuasaq;
  options.seed = GetParam();
  options.library.min_duration_seconds = 20.0;
  options.library.max_duration_seconds = 60.0;
  core::MediaDbSystem system(&simulator, options);
  core::UserProfile profile(UserId(1), "storm");
  workload::TrafficOptions traffic_options;
  traffic_options.seed = GetParam() * 17 + 1;
  traffic_options.fraction_secure = 0.2;
  workload::TrafficGenerator traffic(traffic_options, 15,
                                     options.topology.SiteIds());
  Rng rng(GetParam() * 31 + 7);

  std::vector<SessionId> live;
  std::vector<SessionId> paused;
  for (int step = 0; step < 600; ++step) {
    simulator.RunUntil(simulator.Now() +
                       SecondsToSimTime(rng.Uniform(0.0, 2.0)));
    double dice = rng.NextDouble();
    if (dice < 0.5 || live.empty()) {
      workload::QuerySpec spec = traffic.Next();
      core::MediaDbSystem::DeliveryOutcome outcome = system.SubmitDelivery(
          spec.client_site, spec.content, spec.qos, &profile);
      if (outcome.status.ok()) live.push_back(outcome.session);
    } else if (dice < 0.65) {
      size_t index = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      // The session may have completed already; both outcomes are fine.
      (void)system.CancelSession(live[index]);
      live.erase(live.begin() + static_cast<long>(index));
    } else if (dice < 0.8) {
      size_t index = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      if (system.PauseSession(live[index]).ok()) {
        paused.push_back(live[index]);
        live.erase(live.begin() + static_cast<long>(index));
      }
    } else if (dice < 0.9 && !paused.empty()) {
      size_t index = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(paused.size()) - 1));
      if (system.ResumeSession(paused[index]).ok()) {
        live.push_back(paused[index]);
        paused.erase(paused.begin() + static_cast<long>(index));
      }
    } else {
      size_t index = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      workload::QuerySpec spec = traffic.Next();
      (void)system.ChangeSessionQos(live[index], spec.qos);
    }
    ASSERT_LE(system.pool().MaxUtilization(), 1.0 + 1e-9)
        << "bucket overflow at step " << step;
  }

  // Cancel the paused stragglers (they never complete on their own),
  // then drain.
  for (SessionId session : paused) {
    (void)system.CancelSession(session);
  }
  simulator.RunAll();
  EXPECT_EQ(system.outstanding_sessions(), 0);
  EXPECT_NEAR(system.pool().MaxUtilization(), 0.0, 1e-9)
      << system.pool().DebugString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemStormTest,
                         ::testing::Range<uint64_t>(1, 7));

// Parser robustness: random garbage must produce a clean error, never a
// crash; random valid queries always parse.
class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, GarbageNeverCrashesTheParser) {
  Rng rng(GetParam());
  const std::string alphabet =
      "SELECT FROM WHERE WITH QOS CONTAINS video () ',= ><0123x9.'\n\t";
  for (int trial = 0; trial < 300; ++trial) {
    std::string input;
    int length = static_cast<int>(rng.UniformInt(0, 120));
    for (int i = 0; i < length; ++i) {
      input += alphabet[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(alphabet.size()) - 1))];
    }
    Result<query::ParsedQuery> parsed = query::ParseQuery(input);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
      EXPECT_FALSE(parsed.status().message().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<uint64_t>(1, 5));

}  // namespace
}  // namespace quasaq
