#include "resource/pool.h"

#include <gtest/gtest.h>

namespace quasaq::res {
namespace {

BucketId Cpu(int site) { return {SiteId(site), ResourceKind::kCpu}; }
BucketId Net(int site) {
  return {SiteId(site), ResourceKind::kNetworkBandwidth};
}

TEST(ResourcePoolTest, DeclareAndQuery) {
  ResourcePool pool;
  EXPECT_FALSE(pool.HasBucket(Cpu(0)));
  ASSERT_TRUE(pool.DeclareBucket(Cpu(0), 1.0).ok());
  EXPECT_TRUE(pool.HasBucket(Cpu(0)));
  EXPECT_DOUBLE_EQ(pool.Capacity(Cpu(0)), 1.0);
  EXPECT_DOUBLE_EQ(pool.Used(Cpu(0)), 0.0);
  EXPECT_DOUBLE_EQ(pool.Utilization(Cpu(0)), 0.0);
}

TEST(ResourcePoolTest, AcquireChargesBuckets) {
  ResourcePool pool;
  ASSERT_TRUE(pool.DeclareBucket(Cpu(0), 1.0).ok());
  ASSERT_TRUE(pool.DeclareBucket(Net(0), 3200.0).ok());
  ResourceVector demand;
  demand.Add(Cpu(0), 0.25);
  demand.Add(Net(0), 800.0);
  ASSERT_TRUE(pool.Acquire(demand).ok());
  EXPECT_DOUBLE_EQ(pool.Utilization(Cpu(0)), 0.25);
  EXPECT_DOUBLE_EQ(pool.Utilization(Net(0)), 0.25);
}

TEST(ResourcePoolTest, AcquireIsAtomicOnOverflow) {
  ResourcePool pool;
  ASSERT_TRUE(pool.DeclareBucket(Cpu(0), 1.0).ok());
  ASSERT_TRUE(pool.DeclareBucket(Net(0), 100.0).ok());
  ResourceVector demand;
  demand.Add(Cpu(0), 0.5);
  demand.Add(Net(0), 150.0);  // overflows net
  EXPECT_EQ(pool.Acquire(demand).code(), StatusCode::kResourceExhausted);
  // Nothing was charged.
  EXPECT_DOUBLE_EQ(pool.Used(Cpu(0)), 0.0);
  EXPECT_DOUBLE_EQ(pool.Used(Net(0)), 0.0);
}

TEST(ResourcePoolTest, UndeclaredBucketIsNotFound) {
  ResourcePool pool;
  ASSERT_TRUE(pool.DeclareBucket(Cpu(0), 1.0).ok());
  ResourceVector demand;
  demand.Add(Net(0), 1.0);
  EXPECT_EQ(pool.Acquire(demand).code(), StatusCode::kNotFound);
  EXPECT_FALSE(pool.Fits(demand));
}

TEST(ResourcePoolTest, FitsChecksWithoutCharging) {
  ResourcePool pool;
  ASSERT_TRUE(pool.DeclareBucket(Cpu(0), 1.0).ok());
  ResourceVector demand;
  demand.Add(Cpu(0), 0.9);
  EXPECT_TRUE(pool.Fits(demand));
  EXPECT_DOUBLE_EQ(pool.Used(Cpu(0)), 0.0);
  ASSERT_TRUE(pool.Acquire(demand).ok());
  EXPECT_FALSE(pool.Fits(demand));
}

TEST(ResourcePoolTest, ExactFillIsAccepted) {
  ResourcePool pool;
  ASSERT_TRUE(pool.DeclareBucket(Cpu(0), 1.0).ok());
  ResourceVector demand;
  demand.Add(Cpu(0), 1.0);
  EXPECT_TRUE(pool.Acquire(demand).ok());
  EXPECT_NEAR(pool.Utilization(Cpu(0)), 1.0, 1e-12);
}

TEST(ResourcePoolTest, ReleaseRestoresCapacity) {
  ResourcePool pool;
  ASSERT_TRUE(pool.DeclareBucket(Cpu(0), 1.0).ok());
  ResourceVector demand;
  demand.Add(Cpu(0), 0.6);
  ASSERT_TRUE(pool.Acquire(demand).ok());
  EXPECT_TRUE(pool.Release(demand).ok());
  EXPECT_DOUBLE_EQ(pool.Used(Cpu(0)), 0.0);
  ASSERT_TRUE(pool.Acquire(demand).ok());
}

TEST(ResourcePoolTest, ReleaseClampsAtZero) {
  ResourcePool pool;
  ASSERT_TRUE(pool.DeclareBucket(Cpu(0), 1.0).ok());
  ResourceVector demand;
  demand.Add(Cpu(0), 0.6);
  // An over-release is clamped *and* reported.
  EXPECT_EQ(pool.Release(demand).code(),  // never acquired
            StatusCode::kFailedPrecondition);
  EXPECT_DOUBLE_EQ(pool.Used(Cpu(0)), 0.0);
}

TEST(ResourcePoolTest, RepeatedAcquireAccumulates) {
  ResourcePool pool;
  ASSERT_TRUE(pool.DeclareBucket(Cpu(0), 1.0).ok());
  ResourceVector demand;
  demand.Add(Cpu(0), 0.4);
  ASSERT_TRUE(pool.Acquire(demand).ok());
  ASSERT_TRUE(pool.Acquire(demand).ok());
  EXPECT_EQ(pool.Acquire(demand).code(), StatusCode::kResourceExhausted);
  EXPECT_NEAR(pool.Utilization(Cpu(0)), 0.8, 1e-12);
}

TEST(ResourcePoolTest, BucketsReturnsSortedIds) {
  ResourcePool pool;
  ASSERT_TRUE(pool.DeclareBucket(Net(1), 1.0).ok());
  ASSERT_TRUE(pool.DeclareBucket(Cpu(0), 1.0).ok());
  ASSERT_TRUE(pool.DeclareBucket(Cpu(1), 1.0).ok());
  auto buckets = pool.Buckets();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], Cpu(0));
  EXPECT_EQ(buckets[1], Cpu(1));
  EXPECT_EQ(buckets[2], Net(1));
}

TEST(ResourcePoolTest, MaxUtilizationTracksHottestBucket) {
  ResourcePool pool;
  ASSERT_TRUE(pool.DeclareBucket(Cpu(0), 1.0).ok());
  ASSERT_TRUE(pool.DeclareBucket(Net(0), 100.0).ok());
  ResourceVector demand;
  demand.Add(Cpu(0), 0.2);
  demand.Add(Net(0), 70.0);
  ASSERT_TRUE(pool.Acquire(demand).ok());
  EXPECT_NEAR(pool.MaxUtilization(), 0.7, 1e-12);
}

TEST(ResourcePoolTest, DebugStringListsBuckets) {
  ResourcePool pool;
  ASSERT_TRUE(pool.DeclareBucket(Cpu(0), 1.0).ok());
  std::string s = pool.DebugString();
  EXPECT_NE(s.find("site0/cpu"), std::string::npos);
}

TEST(ResourcePoolTest, RedeclareKeepsUsage) {
  ResourcePool pool;
  ASSERT_TRUE(pool.DeclareBucket(Cpu(0), 1.0).ok());
  ResourceVector demand;
  demand.Add(Cpu(0), 0.5);
  ASSERT_TRUE(pool.Acquire(demand).ok());
  ASSERT_TRUE(pool.DeclareBucket(Cpu(0), 2.0).ok());  // capacity upgrade
  EXPECT_DOUBLE_EQ(pool.Used(Cpu(0)), 0.5);
  EXPECT_DOUBLE_EQ(pool.Utilization(Cpu(0)), 0.25);
}

}  // namespace
}  // namespace quasaq::res
