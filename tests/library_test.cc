#include "media/library.h"

#include <set>

#include <gtest/gtest.h>

namespace quasaq::media {
namespace {

std::vector<SiteId> ThreeSites() {
  return {SiteId(0), SiteId(1), SiteId(2)};
}

TEST(QualityLadderTest, StandardLadderIsDescending) {
  QualityLadder ladder = QualityLadder::Standard();
  ASSERT_EQ(ladder.levels.size(), 4u);
  for (size_t i = 1; i < ladder.levels.size(); ++i) {
    EXPECT_LT(EstimateBitrateKBps(ladder.levels[i]),
              EstimateBitrateKBps(ladder.levels[i - 1]));
  }
  EXPECT_EQ(ladder.levels.front().format, VideoFormat::kMpeg2);
  EXPECT_EQ(ladder.levels[1].format, VideoFormat::kMpeg1);
}

TEST(LibraryTest, PaperDefaultsProduceFifteenVideos) {
  VideoLibrary library =
      BuildExperimentLibrary(LibraryOptions(), ThreeSites());
  EXPECT_EQ(library.contents.size(), 15u);
}

TEST(LibraryTest, DurationsWithinRange) {
  LibraryOptions options;
  VideoLibrary library = BuildExperimentLibrary(options, ThreeSites());
  for (const VideoContent& content : library.contents) {
    EXPECT_GE(content.duration_seconds, options.min_duration_seconds);
    EXPECT_LE(content.duration_seconds, options.max_duration_seconds);
  }
}

TEST(LibraryTest, FullReplicationAcrossSites) {
  VideoLibrary library =
      BuildExperimentLibrary(LibraryOptions(), ThreeSites());
  for (const VideoContent& content : library.contents) {
    std::set<int64_t> sites_with_master;
    for (const ReplicaInfo* replica : library.ReplicasOf(content.id)) {
      if (replica->qos == content.master_quality) {
        sites_with_master.insert(replica->site.value());
      }
    }
    EXPECT_EQ(sites_with_master.size(), 3u)
        << "master replica missing at some site for " << content.title;
  }
}

TEST(LibraryTest, ReplicaLevelsWithinConfiguredBounds) {
  LibraryOptions options;
  VideoLibrary library = BuildExperimentLibrary(options, ThreeSites());
  for (const VideoContent& content : library.contents) {
    std::set<int64_t> distinct_qualities;
    for (const ReplicaInfo* replica : library.ReplicasOf(content.id)) {
      distinct_qualities.insert(replica->qos.resolution.PixelCount() * 100 +
                                replica->qos.color_depth_bits);
    }
    EXPECT_GE(static_cast<int>(distinct_qualities.size()),
              options.min_replica_levels);
    EXPECT_LE(static_cast<int>(distinct_qualities.size()),
              options.max_replica_levels);
  }
}

TEST(LibraryTest, PhysicalOidsAreUnique) {
  VideoLibrary library =
      BuildExperimentLibrary(LibraryOptions(), ThreeSites());
  std::set<int64_t> oids;
  for (const ReplicaInfo& replica : library.replicas) {
    EXPECT_TRUE(oids.insert(replica.id.value()).second);
  }
}

TEST(LibraryTest, ReplicaSizingIsConsistent) {
  VideoLibrary library =
      BuildExperimentLibrary(LibraryOptions(), ThreeSites());
  for (const ReplicaInfo& replica : library.replicas) {
    EXPECT_NEAR(replica.bitrate_kbps, EstimateBitrateKBps(replica.qos),
                1e-9);
    EXPECT_NEAR(replica.size_kb,
                replica.bitrate_kbps * replica.duration_seconds, 1e-6);
  }
}

TEST(LibraryTest, SameTranscodeLevelSharesFrameSeedAcrossSites) {
  VideoLibrary library =
      BuildExperimentLibrary(LibraryOptions(), ThreeSites());
  // Replicas of the same (video, quality) on different sites are
  // byte-identical copies, hence identical frame seeds.
  for (const VideoContent& content : library.contents) {
    for (const ReplicaInfo* a : library.ReplicasOf(content.id)) {
      for (const ReplicaInfo* b : library.ReplicasOf(content.id)) {
        if (a->qos == b->qos) {
          EXPECT_EQ(a->frame_seed, b->frame_seed);
        }
      }
    }
  }
}

TEST(LibraryTest, DeterministicForSameSeed) {
  VideoLibrary a = BuildExperimentLibrary(LibraryOptions(), ThreeSites());
  VideoLibrary b = BuildExperimentLibrary(LibraryOptions(), ThreeSites());
  ASSERT_EQ(a.replicas.size(), b.replicas.size());
  for (size_t i = 0; i < a.replicas.size(); ++i) {
    EXPECT_EQ(a.replicas[i].id, b.replicas[i].id);
    EXPECT_DOUBLE_EQ(a.replicas[i].size_kb, b.replicas[i].size_kb);
  }
  for (size_t i = 0; i < a.contents.size(); ++i) {
    EXPECT_EQ(a.contents[i].keywords, b.contents[i].keywords);
  }
}

TEST(LibraryTest, DifferentSeedChangesDurations) {
  LibraryOptions options_a;
  LibraryOptions options_b;
  options_b.seed = options_a.seed + 1;
  VideoLibrary a = BuildExperimentLibrary(options_a, ThreeSites());
  VideoLibrary b = BuildExperimentLibrary(options_b, ThreeSites());
  bool any_different = false;
  for (size_t i = 0; i < a.contents.size(); ++i) {
    if (a.contents[i].duration_seconds != b.contents[i].duration_seconds) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(LibraryTest, FindReplicaByOid) {
  VideoLibrary library =
      BuildExperimentLibrary(LibraryOptions(), ThreeSites());
  const ReplicaInfo& known = library.replicas.front();
  const ReplicaInfo* found = library.FindReplica(known.id);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->content, known.content);
  EXPECT_EQ(library.FindReplica(PhysicalOid(999999)), nullptr);
}

TEST(LibraryTest, ContentsHaveKeywordsAndFeatures) {
  VideoLibrary library =
      BuildExperimentLibrary(LibraryOptions(), ThreeSites());
  for (const VideoContent& content : library.contents) {
    EXPECT_FALSE(content.keywords.empty());
    EXPECT_EQ(content.features.size(), 8u);
    for (double f : content.features) {
      EXPECT_GE(f, 0.0);
      EXPECT_LT(f, 1.0);
    }
  }
}

}  // namespace
}  // namespace quasaq::media
