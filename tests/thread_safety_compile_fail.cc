// Compile-time fixture for the thread-safety annotations, driven by
// tests/thread_safety_compile_test.cmake (Clang only):
//
//   1. compiled with -DQUASAQ_TS_TEST_LOCKED, the MutexLock below is
//      present and the file must compile cleanly under
//      -Werror=thread-safety;
//   2. compiled without it — i.e. with the MutexLock deliberately
//      removed — the unlocked access to the GUARDED_BY member must
//      break the build ("reading variable 'value_' requires holding
//      mutex 'mu_'").
//
// If (2) ever starts compiling, the annotation net is dead (a macro
// regressed to a no-op, or -Wthread-safety fell out of the build) and
// every GUARDED_BY promise in src/ is decorative.

#include "common/sync.h"

namespace quasaq {

class Guarded {
 public:
  int Increment() QUASAQ_EXCLUDES(mu_) {
#ifdef QUASAQ_TS_TEST_LOCKED
    MutexLock lock(&mu_);
#endif
    return ++value_;
  }

 private:
  Mutex mu_;
  int value_ QUASAQ_GUARDED_BY(mu_) = 0;
};

}  // namespace quasaq

int main() {
  quasaq::Guarded guarded;
  return guarded.Increment() == 1 ? 0 : 1;
}
