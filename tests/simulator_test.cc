#include "simcore/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace quasaq::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator simulator;
  EXPECT_EQ(simulator.Now(), 0);
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(30, [&] { order.push_back(3); });
  simulator.ScheduleAt(10, [&] { order.push_back(1); });
  simulator.ScheduleAt(20, [&] { order.push_back(2); });
  simulator.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.Now(), 30);
  EXPECT_EQ(simulator.executed_events(), 3u);
}

TEST(SimulatorTest, EqualTimestampsRunFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    simulator.ScheduleAt(10, [&order, i] { order.push_back(i); });
  }
  simulator.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, PastTimesClampToNow) {
  Simulator simulator;
  simulator.ScheduleAt(100, [] {});
  simulator.RunAll();
  bool ran = false;
  simulator.ScheduleAt(50, [&ran] { ran = true; });  // in the past
  simulator.RunAll();
  EXPECT_TRUE(ran);
  EXPECT_EQ(simulator.Now(), 100);
}

TEST(SimulatorTest, ScheduleAfterUsesRelativeDelay) {
  Simulator simulator;
  SimTime fired_at = -1;
  simulator.ScheduleAt(40, [&] {
    simulator.ScheduleAfter(5, [&] { fired_at = simulator.Now(); });
  });
  simulator.RunAll();
  EXPECT_EQ(fired_at, 45);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator simulator;
  bool ran = false;
  EventId id = simulator.ScheduleAt(10, [&ran] { ran = true; });
  EXPECT_TRUE(simulator.Cancel(id));
  simulator.RunAll();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelTwiceFails) {
  Simulator simulator;
  EventId id = simulator.ScheduleAt(10, [] {});
  EXPECT_TRUE(simulator.Cancel(id));
  EXPECT_FALSE(simulator.Cancel(id));
}

TEST(SimulatorTest, CancelUnknownIdFails) {
  Simulator simulator;
  EXPECT_FALSE(simulator.Cancel(kInvalidEventId));
  EXPECT_FALSE(simulator.Cancel(9999));
}

TEST(SimulatorTest, RunUntilStopsBeforeLaterEvents) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(10, [&] { order.push_back(1); });
  simulator.ScheduleAt(30, [&] { order.push_back(2); });
  simulator.RunUntil(20);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(simulator.Now(), 20);  // clock advances to the limit
  simulator.RunUntil(40);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, RunUntilExecutesEventAtBoundary) {
  Simulator simulator;
  bool ran = false;
  simulator.ScheduleAt(20, [&ran] { ran = true; });
  simulator.RunUntil(20);
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator simulator;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 10) simulator.ScheduleAfter(1, chain);
  };
  simulator.ScheduleAfter(1, chain);
  simulator.RunAll();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(simulator.Now(), 10);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator simulator;
  EXPECT_FALSE(simulator.Step());
}

TEST(SimulatorTest, PendingEventsExcludesCancelled) {
  Simulator simulator;
  EventId a = simulator.ScheduleAt(1, [] {});
  simulator.ScheduleAt(2, [] {});
  EXPECT_EQ(simulator.pending_events(), 2u);
  simulator.Cancel(a);
  EXPECT_EQ(simulator.pending_events(), 1u);
}

TEST(PeriodicTaskTest, FiresAtFixedPeriod) {
  Simulator simulator;
  std::vector<SimTime> firings;
  PeriodicTask task(&simulator, 10, [&] { firings.push_back(simulator.Now()); });
  simulator.RunUntil(35);
  task.Stop();
  EXPECT_EQ(firings, (std::vector<SimTime>{10, 20, 30}));
}

TEST(PeriodicTaskTest, StopPreventsFutureFirings) {
  Simulator simulator;
  int count = 0;
  PeriodicTask task(&simulator, 10, [&] { ++count; });
  simulator.RunUntil(15);
  task.Stop();
  simulator.RunUntil(100);
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(task.stopped());
}

TEST(PeriodicTaskTest, CanStopItselfFromCallback) {
  Simulator simulator;
  int count = 0;
  PeriodicTask* handle = nullptr;
  PeriodicTask task(&simulator, 10, [&] {
    ++count;
    if (count == 3) handle->Stop();
  });
  handle = &task;
  simulator.RunUntil(1000);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTaskTest, DestructorStops) {
  Simulator simulator;
  int count = 0;
  {
    PeriodicTask task(&simulator, 10, [&] { ++count; });
    simulator.RunUntil(10);
  }
  simulator.RunUntil(100);
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace quasaq::sim
