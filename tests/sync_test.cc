#include "common/sync.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/sim_time.h"

// Tests for the annotated synchronization primitives themselves. The
// locking *discipline* (which member needs which lock) is enforced at
// compile time by Clang — see thread_safety_compile_test — so these
// tests pin the runtime behavior: mutual exclusion, RAII scope, and the
// condition-variable wait protocol.

namespace quasaq {
namespace {

TEST(MutexTest, LockUnlockRoundTrip) {
  Mutex mu;
  mu.Lock();
  mu.AssertHeld();
  mu.Unlock();
  // Reacquirable after release.
  mu.Lock();
  mu.Unlock();
}

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  EXPECT_TRUE(mu.TryLock());
  // A second owner must be refused while the lock is held.
  std::thread contender([&mu] {
    EXPECT_FALSE(mu.TryLock());
  });
  contender.join();
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockReleasesAtScopeExit) {
  Mutex mu;
  {
    MutexLock lock(&mu);
    std::thread contender([&mu] { EXPECT_FALSE(mu.TryLock()); });
    contender.join();
  }
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, ProtectsSharedCounter) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  Mutex mu;
  int64_t counter = 0;  // guarded by mu (dynamically; local for the test)
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, int64_t{kThreads} * kIncrements);
}

TEST(CondVarTest, SignalWakesWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.Signal();
  });
  {
    MutexLock lock(&mu);
    cv.Await(&mu, [&ready] { return ready; });
    EXPECT_TRUE(ready);
  }
  producer.join();
}

// Await with a SimTime-valued predicate: a producer advances a guarded
// simulated deadline one second at a time; the consumer sleeps until
// the deadline crosses five simulated seconds. Exercises the
// re-check-after-wakeup loop (every intermediate Signal wakes the
// waiter with the predicate still false).
TEST(CondVarTest, AwaitPredicateOverSimTime) {
  constexpr SimTime kTarget = 5 * kSecond;
  Mutex mu;
  CondVar cv;
  SimTime reached = 0;
  std::thread producer([&] {
    for (int step = 0; step < 7; ++step) {
      MutexLock lock(&mu);
      reached += kSecond;
      cv.Signal();
    }
  });
  SimTime observed = 0;
  {
    MutexLock lock(&mu);
    cv.Await(&mu, [&reached] { return reached >= kTarget; });
    observed = reached;
  }
  producer.join();
  EXPECT_GE(observed, kTarget);
}

TEST(CondVarTest, SignalAllWakesEveryWaiter) {
  constexpr int kWaiters = 6;
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      cv.Await(&mu, [&go] { return go; });
      ++awake;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
    cv.SignalAll();
  }
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(awake, kWaiters);
}

}  // namespace
}  // namespace quasaq
