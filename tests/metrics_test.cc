#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace quasaq::obs {
namespace {

TEST(CounterTest, IncrementsAccumulate) {
  Counter counter;
  EXPECT_DOUBLE_EQ(counter.value(), 0.0);
  counter.Increment();
  counter.Increment(2.5);
  EXPECT_DOUBLE_EQ(counter.value(), 3.5);
}

TEST(GaugeTest, SetAddAndSample) {
  Gauge gauge;
  gauge.Set(4.0);
  gauge.Add(-1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.Sample(10 * kSecond, 7.0);
  gauge.Sample(20 * kSecond, 3.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  const TimeSeries history = gauge.history();
  ASSERT_EQ(history.samples().size(), 2u);
  EXPECT_EQ(history.samples()[0].time, 10 * kSecond);
  EXPECT_DOUBLE_EQ(history.samples()[0].value, 7.0);
  EXPECT_DOUBLE_EQ(history.samples()[1].value, 3.0);
  EXPECT_EQ(gauge.history_dropped(), 0u);
}

TEST(HistogramTest, GeometricBoundsFromOptions) {
  Histogram histogram(HistogramOptions{2.0, 4.0, 3});
  const std::vector<double> expected = {2.0, 8.0, 32.0};
  ASSERT_EQ(histogram.bounds().size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(histogram.bounds()[i], expected[i]);
  }
}

// The Prometheus `le` convention: bucket i counts values in
// (bounds[i-1], bounds[i]] — an observation exactly on a bound lands in
// that bound's bucket, one epsilon above it lands in the next.
TEST(HistogramTest, BucketBoundariesAreUpperInclusive) {
  Histogram histogram(HistogramOptions{1.0, 2.0, 3});  // bounds 1, 2, 4
  histogram.Observe(1.0);   // bucket 0 (<= 1)
  histogram.Observe(1.001); // bucket 1
  histogram.Observe(2.0);   // bucket 1 (<= 2)
  histogram.Observe(4.0);   // bucket 2 (<= 4)
  histogram.Observe(4.001); // overflow (+Inf) bucket
  histogram.Observe(0.0);   // bucket 0
  const Histogram::Snapshot snapshot = histogram.snapshot();
  ASSERT_EQ(snapshot.counts.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.counts[1], 2u);
  EXPECT_EQ(snapshot.counts[2], 1u);
  EXPECT_EQ(snapshot.counts[3], 1u);
  EXPECT_EQ(snapshot.count, 6u);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 4.001);
  EXPECT_NEAR(snapshot.sum, 12.002, 1e-9);
}

TEST(MetricsRegistryTest, SameNameAndLabelsIsTheSamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("quasaq_test_hits_total", "help",
                                   {{"site", "0"}});
  Counter* b = registry.GetCounter("quasaq_test_hits_total", "help",
                                   {{"site", "0"}});
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.family_count(), 1u);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotSplitTheChild) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("quasaq_test_hits_total", "help",
                                   {{"site", "0"}, {"kind", "cpu"}});
  Counter* b = registry.GetCounter("quasaq_test_hits_total", "help",
                                   {{"kind", "cpu"}, {"site", "0"}});
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistryTest, DistinctLabelsAreDistinctChildren) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("quasaq_test_hits_total", "help",
                                   {{"site", "0"}});
  Counter* b = registry.GetCounter("quasaq_test_hits_total", "help",
                                   {{"site", "1"}});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.family_count(), 1u);  // one family, two children
}

TEST(MetricsRegistryTest, TypeMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("quasaq_test_hits_total", "help"), nullptr);
  EXPECT_EQ(registry.GetGauge("quasaq_test_hits_total", "help"), nullptr);
  EXPECT_EQ(registry.GetHistogram("quasaq_test_hits_total", "help"),
            nullptr);
}

TEST(MetricsRegistryTest, HistogramBucketLayoutMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetHistogram("quasaq_test_wait_ms", "help",
                                  HistogramOptions{1.0, 2.0, 8}),
            nullptr);
  EXPECT_NE(registry.GetHistogram("quasaq_test_wait_ms", "help",
                                  HistogramOptions{1.0, 2.0, 8}),
            nullptr);
  EXPECT_EQ(registry.GetHistogram("quasaq_test_wait_ms", "help",
                                  HistogramOptions{1.0, 2.0, 9}),
            nullptr);
}

TEST(MetricsRegistryTest, MetricNamesAreSorted) {
  MetricsRegistry registry;
  registry.GetCounter("quasaq_b_events_total", "b");
  registry.GetGauge("quasaq_a_level_count", "a");
  const std::vector<std::string> names = registry.MetricNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "quasaq_a_level_count");
  EXPECT_EQ(names[1], "quasaq_b_events_total");
}

TEST(MetricsRegistryTest, PrometheusTextRendersAllSeries) {
  MetricsRegistry registry;
  registry.GetCounter("quasaq_test_hits_total", "Cache hits",
                      {{"site", "2"}})->Increment(5.0);
  registry.GetGauge("quasaq_test_fill_ratio", "Bucket fill")->Set(0.25);
  Histogram* histogram = registry.GetHistogram(
      "quasaq_test_wait_ms", "Waiting", HistogramOptions{1.0, 2.0, 2});
  histogram->Observe(0.5);
  histogram->Observe(3.0);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# HELP quasaq_test_hits_total Cache hits"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE quasaq_test_hits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("quasaq_test_hits_total{site=\"2\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("quasaq_test_fill_ratio 0.25"), std::string::npos);
  // Cumulative histogram: le="2" already includes the 0.5 observation,
  // le="+Inf" equals the total count.
  EXPECT_NE(text.find("quasaq_test_wait_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("quasaq_test_wait_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("quasaq_test_wait_ms_count 2"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonSnapshotMentionsEverySeries) {
  MetricsRegistry registry;
  registry.GetCounter("quasaq_test_hits_total", "Cache \"hits\"")
      ->Increment();
  Gauge* gauge = registry.GetGauge("quasaq_test_fill_ratio", "Fill");
  gauge->Sample(kSecond, 0.5);
  const std::string json = registry.JsonSnapshot();
  EXPECT_NE(json.find("\"quasaq_test_hits_total\""), std::string::npos);
  EXPECT_NE(json.find("\"quasaq_test_fill_ratio\""), std::string::npos);
  // Help strings are escaped, histories serialized as [seconds, value].
  EXPECT_NE(json.find("Cache \\\"hits\\\""), std::string::npos);
  EXPECT_NE(json.find("[1, 0.5]"), std::string::npos);
}

// The merged exposition is what TakeObservabilitySnapshot renders when
// per-shard registries exist: same-name families combine, counters sum
// per label set, histograms merge per-bucket.
TEST(MetricsRegistryTest, MergedExpositionSumsAcrossRegistries) {
  MetricsRegistry main_registry, shard0, shard1;
  main_registry.GetCounter("quasaq_test_hits_total", "Hits", {{"site", "0"}})
      ->Increment(1.0);
  shard0.GetCounter("quasaq_test_hits_total", "Hits", {{"site", "0"}})
      ->Increment(2.0);
  shard1.GetCounter("quasaq_test_hits_total", "Hits", {{"site", "1"}})
      ->Increment(4.0);
  shard0
      .GetHistogram("quasaq_test_wait_ms", "Waiting",
                    HistogramOptions{1.0, 2.0, 2})
      ->Observe(0.5);
  shard1
      .GetHistogram("quasaq_test_wait_ms", "Waiting",
                    HistogramOptions{1.0, 2.0, 2})
      ->Observe(3.0);
  const std::string text = MetricsRegistry::MergedPrometheusText(
      {&main_registry, &shard0, &shard1});
  // Same label set sums across registries; distinct label sets stay
  // separate series of one family.
  EXPECT_NE(text.find("quasaq_test_hits_total{site=\"0\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("quasaq_test_hits_total{site=\"1\"} 4"),
            std::string::npos);
  // The family header renders once, not per contributing registry.
  const size_t first = text.find("# TYPE quasaq_test_hits_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE quasaq_test_hits_total counter", first + 1),
            std::string::npos);
  // Histogram buckets merge: both observations land in one series.
  EXPECT_NE(text.find("quasaq_test_wait_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("quasaq_test_wait_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("quasaq_test_wait_ms_count 2"), std::string::npos);
}

TEST(MetricsRegistryTest, MergedExpositionOfOneRegistryIsPlainExposition) {
  MetricsRegistry registry;
  registry.GetCounter("quasaq_test_hits_total", "Hits", {{"site", "2"}})
      ->Increment(5.0);
  registry.GetGauge("quasaq_test_fill_ratio", "Fill")->Set(0.25);
  registry
      .GetHistogram("quasaq_test_wait_ms", "Waiting",
                    HistogramOptions{1.0, 2.0, 2})
      ->Observe(0.5);
  EXPECT_EQ(MetricsRegistry::MergedPrometheusText({&registry}),
            registry.PrometheusText());
  EXPECT_EQ(MetricsRegistry::MergedJsonSnapshot({&registry}),
            registry.JsonSnapshot());
}

TEST(JsonEscapeStringTest, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(JsonEscapeString("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscapeString("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscapeString(std::string_view("\x01", 1)), "\\u0001");
}

}  // namespace
}  // namespace quasaq::obs
