#include "query/content_search.h"

#include <gtest/gtest.h>

namespace quasaq::query {
namespace {

media::VideoContent MakeContent(int64_t oid, std::vector<std::string> keywords,
                                std::vector<double> features = {}) {
  media::VideoContent content;
  content.id = LogicalOid(oid);
  content.title = "video" + std::to_string(oid);
  content.keywords = std::move(keywords);
  content.features = std::move(features);
  return content;
}

class ContentIndexTest : public ::testing::Test {
 protected:
  ContentIndexTest() {
    index_.Add(MakeContent(0, {"news", "weather"}, {0.0, 0.0}));
    index_.Add(MakeContent(1, {"news", "sports"}, {0.5, 0.5}));
    index_.Add(MakeContent(2, {"sunset", "ocean"}, {1.0, 1.0}));
    index_.Add(MakeContent(3, {"sunset"}, {0.9, 0.9}));
  }
  ContentIndex index_;
};

TEST_F(ContentIndexTest, EmptyPredicateMatchesAll) {
  ContentPredicate predicate;
  std::vector<LogicalOid> matches = index_.Search(predicate);
  EXPECT_EQ(matches.size(), 4u);
  EXPECT_EQ(matches.front(), LogicalOid(0));  // sorted by OID
}

TEST_F(ContentIndexTest, SingleKeyword) {
  ContentPredicate predicate;
  predicate.keywords = {"news"};
  std::vector<LogicalOid> matches = index_.Search(predicate);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], LogicalOid(0));
  EXPECT_EQ(matches[1], LogicalOid(1));
}

TEST_F(ContentIndexTest, KeywordsIntersect) {
  ContentPredicate predicate;
  predicate.keywords = {"news", "sports"};
  std::vector<LogicalOid> matches = index_.Search(predicate);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], LogicalOid(1));
}

TEST_F(ContentIndexTest, UnknownKeywordMatchesNothing) {
  ContentPredicate predicate;
  predicate.keywords = {"nonexistent"};
  EXPECT_TRUE(index_.Search(predicate).empty());
  predicate.keywords = {"news", "nonexistent"};
  EXPECT_TRUE(index_.Search(predicate).empty());
}

TEST_F(ContentIndexTest, TitleLookup) {
  ContentPredicate predicate;
  predicate.title = "video2";
  std::vector<LogicalOid> matches = index_.Search(predicate);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], LogicalOid(2));
}

TEST_F(ContentIndexTest, TitleWithConflictingKeywordMatchesNothing) {
  ContentPredicate predicate;
  predicate.title = "video2";
  predicate.keywords = {"news"};
  EXPECT_TRUE(index_.Search(predicate).empty());
}

TEST_F(ContentIndexTest, TitleWithConsistentKeyword) {
  ContentPredicate predicate;
  predicate.title = "video2";
  predicate.keywords = {"sunset"};
  EXPECT_EQ(index_.Search(predicate).size(), 1u);
}

TEST_F(ContentIndexTest, UnknownTitleMatchesNothing) {
  ContentPredicate predicate;
  predicate.title = "videoX";
  EXPECT_TRUE(index_.Search(predicate).empty());
}

TEST_F(ContentIndexTest, SimilarityRanksByDistance) {
  ContentPredicate predicate;
  predicate.similar_to = std::vector<double>{1.0, 1.0};
  predicate.top_k = 4;
  std::vector<LogicalOid> matches = index_.Search(predicate);
  ASSERT_EQ(matches.size(), 4u);
  EXPECT_EQ(matches[0], LogicalOid(2));  // exact match
  EXPECT_EQ(matches[1], LogicalOid(3));
  EXPECT_EQ(matches.back(), LogicalOid(0));  // farthest
}

TEST_F(ContentIndexTest, SimilarityHonorsTopK) {
  ContentPredicate predicate;
  predicate.similar_to = std::vector<double>{0.0, 0.0};
  predicate.top_k = 2;
  std::vector<LogicalOid> matches = index_.Search(predicate);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], LogicalOid(0));
}

TEST_F(ContentIndexTest, SimilarityCombinedWithKeywordFilter) {
  ContentPredicate predicate;
  predicate.keywords = {"sunset"};
  predicate.similar_to = std::vector<double>{0.0, 0.0};
  predicate.top_k = 1;
  std::vector<LogicalOid> matches = index_.Search(predicate);
  ASSERT_EQ(matches.size(), 1u);
  // Among sunset videos, oid 3 (0.9, 0.9) is closer to the origin.
  EXPECT_EQ(matches[0], LogicalOid(3));
}

TEST(FeatureDistanceTest, ZeroForIdenticalVectors) {
  EXPECT_DOUBLE_EQ(FeatureDistanceSquared({1.0, 2.0}, {1.0, 2.0}), 0.0);
}

TEST(FeatureDistanceTest, KnownDistance) {
  EXPECT_DOUBLE_EQ(FeatureDistanceSquared({0.0, 0.0}, {3.0, 4.0}), 25.0);
}

TEST(FeatureDistanceTest, ShorterVectorIsZeroPadded) {
  EXPECT_DOUBLE_EQ(FeatureDistanceSquared({1.0}, {1.0, 2.0}), 4.0);
  EXPECT_DOUBLE_EQ(FeatureDistanceSquared({}, {3.0}), 9.0);
}

TEST(ContentIndexEdgeTest, IndexedCount) {
  ContentIndex index;
  EXPECT_EQ(index.indexed_count(), 0u);
  index.Add(MakeContent(0, {"a"}));
  EXPECT_EQ(index.indexed_count(), 1u);
}

}  // namespace
}  // namespace quasaq::query
