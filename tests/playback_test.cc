#include "net/playback.h"

#include <gtest/gtest.h>

namespace quasaq::net {
namespace {

// A perfectly paced server-side schedule at `fps`.
std::vector<SimTime> PerfectSchedule(int frames, double fps) {
  std::vector<SimTime> times;
  times.reserve(static_cast<size_t>(frames));
  for (int i = 0; i < frames; ++i) {
    times.push_back(SecondsToSimTime(i / fps));
  }
  return times;
}

PlaybackOptions NoJitterOptions() {
  PlaybackOptions options;
  options.max_network_jitter = 0;
  return options;
}

TEST(PlaybackTest, EmptyStream) {
  PlaybackReport report = SimulateClientPlayback({}, PlaybackOptions());
  EXPECT_EQ(report.frames, 0);
  EXPECT_DOUBLE_EQ(report.OnTimeFraction(), 1.0);
}

TEST(PlaybackTest, PerfectScheduleNeverStalls) {
  PlaybackReport report = SimulateClientPlayback(
      PerfectSchedule(500, 23.97), NoJitterOptions());
  EXPECT_EQ(report.frames, 500);
  EXPECT_EQ(report.late_frames, 0);
  EXPECT_EQ(report.underruns, 0);
  EXPECT_EQ(report.total_stall, 0);
  EXPECT_DOUBLE_EQ(report.OnTimeFraction(), 1.0);
}

TEST(PlaybackTest, StartupLatencyIsDelayPlusBuffer) {
  PlaybackOptions options = NoJitterOptions();
  PlaybackReport report =
      SimulateClientPlayback(PerfectSchedule(100, 23.97), options);
  EXPECT_EQ(report.startup_latency,
            options.network_delay + options.startup_buffer);
}

TEST(PlaybackTest, SmallJitterIsAbsorbedByTheBuffer) {
  PlaybackOptions options;
  options.max_network_jitter = 20 * kMillisecond;
  options.startup_buffer = 1 * kSecond;
  PlaybackReport report =
      SimulateClientPlayback(PerfectSchedule(500, 23.97), options);
  EXPECT_EQ(report.underruns, 0);
}

TEST(PlaybackTest, ServerStallCausesOneUnderrun) {
  std::vector<SimTime> times = PerfectSchedule(200, 23.97);
  // The server freezes for 3 seconds after frame 100.
  for (size_t i = 100; i < times.size(); ++i) {
    times[i] += 3 * kSecond;
  }
  PlaybackOptions options = NoJitterOptions();
  PlaybackReport report = SimulateClientPlayback(times, options);
  EXPECT_EQ(report.underruns, 1);
  EXPECT_GT(report.late_frames, 0);
  // The stall is the freeze minus the buffer the client had built up.
  EXPECT_GE(report.total_stall, 1 * kSecond);
  EXPECT_LE(report.total_stall, 3 * kSecond);
}

TEST(PlaybackTest, RepeatedStallsCountSeparately) {
  std::vector<SimTime> times = PerfectSchedule(300, 23.97);
  for (size_t i = 100; i < times.size(); ++i) times[i] += 2 * kSecond;
  for (size_t i = 200; i < times.size(); ++i) times[i] += 2 * kSecond;
  PlaybackReport report =
      SimulateClientPlayback(times, NoJitterOptions());
  EXPECT_EQ(report.underruns, 2);
}

TEST(PlaybackTest, BiggerBufferTradesLatencyForSmoothness) {
  std::vector<SimTime> times = PerfectSchedule(200, 23.97);
  for (size_t i = 50; i < times.size(); ++i) {
    times[i] += 1500 * kMillisecond;
  }
  PlaybackOptions small = NoJitterOptions();
  small.startup_buffer = 500 * kMillisecond;
  PlaybackOptions big = NoJitterOptions();
  big.startup_buffer = 2 * kSecond;
  PlaybackReport small_report = SimulateClientPlayback(times, small);
  PlaybackReport big_report = SimulateClientPlayback(times, big);
  EXPECT_GT(small_report.underruns, 0);
  EXPECT_EQ(big_report.underruns, 0);
  EXPECT_GT(big_report.startup_latency, small_report.startup_latency);
}

TEST(PlaybackTest, OnTimeFractionReflectsLateFrames) {
  std::vector<SimTime> times = PerfectSchedule(100, 23.97);
  for (size_t i = 50; i < times.size(); ++i) times[i] += 5 * kSecond;
  PlaybackReport report =
      SimulateClientPlayback(times, NoJitterOptions());
  EXPECT_LT(report.OnTimeFraction(), 1.0);
  EXPECT_GT(report.OnTimeFraction(), 0.0);
}

}  // namespace
}  // namespace quasaq::net
