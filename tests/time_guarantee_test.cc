// Time Guarantee (paper Table 1's application-QoS parameter): startup
// latency bounds flow from the query text into plan pruning.

#include <gtest/gtest.h>

#include "core/plan_generator.h"
#include "core/system.h"
#include "media/library.h"
#include "query/parser.h"

namespace quasaq {
namespace {

TEST(TimeGuaranteeParseTest, StartupBoundParses) {
  Result<query::ParsedQuery> parsed = query::ParseQuery(
      "SELECT v FROM videos WITH QOS (startup <= 2.5, framerate >= 5)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->qos.max_startup_seconds, 2.5);
}

TEST(TimeGuaranteeParseTest, DefaultIsUnbounded) {
  Result<query::ParsedQuery> parsed =
      query::ParseQuery("SELECT v FROM videos");
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->qos.max_startup_seconds, 0.0);
}

TEST(TimeGuaranteeParseTest, RejectsBadBounds) {
  EXPECT_FALSE(
      query::ParseQuery("SELECT v FROM videos WITH QOS (startup >= 2)")
          .ok());
  EXPECT_FALSE(
      query::ParseQuery("SELECT v FROM videos WITH QOS (startup <= 0)")
          .ok());
}

TEST(TimeGuaranteePlanTest, StartupGrowsWithRelayAndTranscode) {
  media::ReplicaInfo replica;
  replica.id = PhysicalOid(1);
  replica.content = LogicalOid(1);
  replica.site = SiteId(1);
  replica.qos = media::QualityLadder::Standard().levels[0];
  replica.duration_seconds = 60.0;
  media::FinalizeReplicaSizing(replica);

  core::PlanCostConstants constants;
  core::Plan local;
  local.replica_oid = replica.id;
  local.source_site = replica.site;
  local.delivery_site = replica.site;
  FinalizePlan(local, replica, constants);

  core::Plan relayed = local;
  relayed.delivery_site = SiteId(0);
  FinalizePlan(relayed, replica, constants);
  EXPECT_GT(relayed.startup_seconds, local.startup_seconds);

  core::Plan transcoded = local;
  transcoded.transform.transcode_target =
      media::QualityLadder::Standard().levels[1];
  FinalizePlan(transcoded, replica, constants);
  EXPECT_GT(transcoded.startup_seconds, local.startup_seconds);
  EXPECT_NEAR(local.startup_seconds,
              constants.startup_base_seconds + constants.buffer_seconds,
              1e-9);
}

TEST(TimeGuaranteePlanTest, TightBoundPrunesSlowPlans) {
  sim::Simulator simulator;
  core::MediaDbSystem::Options options;
  options.kind = core::SystemKind::kVdbmsQuasaq;
  core::MediaDbSystem system(&simulator, options);

  query::QosRequirement qos;
  qos.range.min_frame_rate = 1.0;
  Result<std::vector<core::Plan>> unbounded =
      system.quality_manager()->generator().Generate(SiteId(0),
                                                     LogicalOid(0), qos);
  ASSERT_TRUE(unbounded.ok());

  // Base (0.5) + buffer (2.0) = 2.5 s: only local, non-transcoding
  // plans survive a 2.6 s guarantee.
  qos.max_startup_seconds = 2.6;
  Result<std::vector<core::Plan>> bounded =
      system.quality_manager()->generator().Generate(SiteId(0),
                                                     LogicalOid(0), qos);
  ASSERT_TRUE(bounded.ok());
  EXPECT_LT(bounded->size(), unbounded->size());
  ASSERT_FALSE(bounded->empty());
  for (const core::Plan& plan : *bounded) {
    EXPECT_FALSE(plan.IsRelayed()) << plan.ToString();
    EXPECT_FALSE(plan.transform.transcode_target.has_value())
        << plan.ToString();
    EXPECT_LE(plan.startup_seconds, 2.6);
  }
}

TEST(TimeGuaranteePlanTest, ImpossibleBoundYieldsNoPlans) {
  sim::Simulator simulator;
  core::MediaDbSystem::Options options;
  options.kind = core::SystemKind::kVdbmsQuasaq;
  core::MediaDbSystem system(&simulator, options);
  query::QosRequirement qos;
  qos.range.min_frame_rate = 1.0;
  qos.max_startup_seconds = 0.1;  // below even the base setup
  Result<std::vector<core::Plan>> plans =
      system.quality_manager()->generator().Generate(SiteId(0),
                                                     LogicalOid(0), qos);
  ASSERT_TRUE(plans.ok());
  EXPECT_TRUE(plans->empty());
}

TEST(TimeGuaranteeEndToEndTest, TextQueryWithStartupBoundDelivers) {
  sim::Simulator simulator;
  core::MediaDbSystem::Options options;
  options.kind = core::SystemKind::kVdbmsQuasaq;
  core::MediaDbSystem system(&simulator, options);
  const std::string keyword = system.library().contents[0].keywords[0];
  Result<core::MediaDbSystem::TextQueryOutcome> outcome =
      system.SubmitTextQuery(
          SiteId(0), "SELECT video FROM videos WHERE CONTAINS('" + keyword +
                         "') WITH QOS (framerate >= 5, startup <= 2.6)");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->delivery.status.ok());
}

}  // namespace
}  // namespace quasaq
