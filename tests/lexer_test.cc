#include "query/lexer.h"

#include <gtest/gtest.h>

namespace quasaq::query {
namespace {

std::vector<Token> MustTokenize(std::string_view input) {
  Result<std::vector<Token>> tokens = Tokenize(input);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return tokens.ok() ? *tokens : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = MustTokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, WhitespaceOnlyYieldsEnd) {
  auto tokens = MustTokenize("   \t\n  ");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, Identifiers) {
  auto tokens = MustTokenize("SELECT videos frame_rate");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdent);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[2].text, "frame_rate");
}

TEST(LexerTest, StringLiterals) {
  auto tokens = MustTokenize("'hello world'");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello world");
}

TEST(LexerTest, EmptyStringLiteral) {
  auto tokens = MustTokenize("''");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "");
}

TEST(LexerTest, UnterminatedStringFails) {
  Result<std::vector<Token>> tokens = Tokenize("'oops");
  ASSERT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(tokens.status().message().find("unterminated"),
            std::string::npos);
}

TEST(LexerTest, IntegerAndDecimalNumbers) {
  auto tokens = MustTokenize("42 23.97");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kNumber);
  EXPECT_DOUBLE_EQ(tokens[0].number, 42.0);
  EXPECT_EQ(tokens[1].type, TokenType::kNumber);
  EXPECT_DOUBLE_EQ(tokens[1].number, 23.97);
}

TEST(LexerTest, ResolutionLiteral) {
  auto tokens = MustTokenize("320x240");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kResolution);
  EXPECT_EQ(tokens[0].res_width, 320);
  EXPECT_EQ(tokens[0].res_height, 240);
}

TEST(LexerTest, ResolutionWithCapitalX) {
  auto tokens = MustTokenize("720X480");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kResolution);
  EXPECT_EQ(tokens[0].res_width, 720);
  EXPECT_EQ(tokens[0].res_height, 480);
}

TEST(LexerTest, NumberFollowedByIdentIsNotResolution) {
  auto tokens = MustTokenize("320 x240");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kNumber);
  EXPECT_EQ(tokens[1].type, TokenType::kIdent);
}

TEST(LexerTest, Operators) {
  auto tokens = MustTokenize(">= <= =");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, TokenType::kGe);
  EXPECT_EQ(tokens[1].type, TokenType::kLe);
  EXPECT_EQ(tokens[2].type, TokenType::kEq);
}

TEST(LexerTest, BareComparisonWithoutEqualsFails) {
  Result<std::vector<Token>> tokens = Tokenize("framerate > 20");
  ASSERT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kInvalidArgument);
}

TEST(LexerTest, Punctuation) {
  auto tokens = MustTokenize("(,);");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].type, TokenType::kLParen);
  EXPECT_EQ(tokens[1].type, TokenType::kComma);
  EXPECT_EQ(tokens[2].type, TokenType::kRParen);
  EXPECT_EQ(tokens[3].type, TokenType::kSemicolon);
}

TEST(LexerTest, UnknownCharacterFails) {
  Result<std::vector<Token>> tokens = Tokenize("videos @ 3");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("'@'"), std::string::npos);
}

TEST(LexerTest, PositionsPointIntoInput) {
  auto tokens = MustTokenize("SELECT video");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 7u);
}

TEST(LexerTest, FullQueryTokenizes) {
  auto tokens = MustTokenize(
      "SELECT video FROM videos WHERE CONTAINS('sunset') WITH QOS "
      "(resolution >= 320x240, framerate >= 15.5)");
  EXPECT_GT(tokens.size(), 15u);
  EXPECT_EQ(tokens.back().type, TokenType::kEnd);
}

TEST(LexerTest, TokenTypeNames) {
  EXPECT_EQ(TokenTypeName(TokenType::kIdent), "identifier");
  EXPECT_EQ(TokenTypeName(TokenType::kResolution), "resolution");
  EXPECT_EQ(TokenTypeName(TokenType::kEnd), "end of input");
}

}  // namespace
}  // namespace quasaq::query
