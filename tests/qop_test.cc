#include "core/qop.h"

#include <gtest/gtest.h>

#include "core/query_producer.h"
#include "query/parser.h"

namespace quasaq::core {
namespace {

TEST(QopLevelTest, Names) {
  EXPECT_EQ(QopLevelName(QopLevel::kLow), "low");
  EXPECT_EQ(QopLevelName(QopLevel::kMedium), "medium");
  EXPECT_EQ(QopLevelName(QopLevel::kHigh), "high");
}

TEST(QopRequestTest, ToStringListsAxes) {
  QopRequest request;
  request.spatial = QopLevel::kHigh;
  request.security = media::SecurityLevel::kStrong;
  std::string s = request.ToString();
  EXPECT_NE(s.find("spatial=high"), std::string::npos);
  EXPECT_NE(s.find("security=strong"), std::string::npos);
}

TEST(QopPresetTest, KnownPresets) {
  auto dvd = QopPresetByName("DVD");
  ASSERT_TRUE(dvd.has_value());
  EXPECT_EQ(dvd->spatial, QopLevel::kHigh);
  auto vcd = QopPresetByName("vcd-like");
  ASSERT_TRUE(vcd.has_value());
  EXPECT_EQ(vcd->spatial, QopLevel::kMedium);
  auto modem = QopPresetByName("modem");
  ASSERT_TRUE(modem.has_value());
  EXPECT_EQ(modem->spatial, QopLevel::kLow);
  EXPECT_FALSE(QopPresetByName("4k").has_value());
}

TEST(UserProfileTest, TranslateHighDemandsDvdClassWindow) {
  UserProfile profile = UserProfile::Physician(UserId(1));
  QopRequest request;
  request.spatial = QopLevel::kHigh;
  request.temporal = QopLevel::kHigh;
  request.color = QopLevel::kHigh;
  media::AppQosRange range = profile.Translate(request);
  media::AppQos dvd{media::kResolutionDvd, 24, 23.97,
                    media::VideoFormat::kMpeg2};
  EXPECT_TRUE(range.Contains(dvd));
  media::AppQos vcd{media::kResolutionVcd, 24, 23.97,
                    media::VideoFormat::kMpeg1};
  EXPECT_FALSE(range.Contains(vcd));
}

TEST(UserProfileTest, TranslateMediumAcceptsVcdClass) {
  UserProfile profile = UserProfile::Nurse(UserId(2));
  QopRequest request;  // all medium
  media::AppQosRange range = profile.Translate(request);
  media::AppQos vcd{media::kResolutionVcd, 24, 23.97,
                    media::VideoFormat::kMpeg1};
  EXPECT_TRUE(range.Contains(vcd));
  media::AppQos dvd{media::kResolutionDvd, 24, 23.97,
                    media::VideoFormat::kMpeg2};
  EXPECT_FALSE(range.Contains(dvd));  // above the medium window
}

TEST(UserProfileTest, TranslateLowAcceptsThumbnailStreams) {
  UserProfile profile(UserId(3), "generic");
  QopRequest request;
  request.spatial = QopLevel::kLow;
  request.temporal = QopLevel::kLow;
  request.color = QopLevel::kLow;
  request.audio = QopLevel::kLow;
  media::AppQosRange range = profile.Translate(request);
  media::AppQos qcif{media::kResolutionQcif, 12, 10.0,
                     media::VideoFormat::kMpeg1, media::AudioQuality::kPhone};
  EXPECT_TRUE(range.Contains(qcif));
}

TEST(UserProfileTest, LevelWindowsAreDisjointish) {
  UserProfile profile(UserId(4), "generic");
  QopRequest low;
  low.spatial = QopLevel::kLow;
  QopRequest high;
  high.spatial = QopLevel::kHigh;
  media::AppQosRange low_range = profile.Translate(low);
  media::AppQosRange high_range = profile.Translate(high);
  EXPECT_LT(low_range.max_resolution.PixelCount(),
            high_range.min_resolution.PixelCount() + 1);
}

TEST(UserProfileTest, RelaxPicksLeastValuedAxisFirst) {
  UserProfile profile(UserId(5), "custom");
  // Color is least valued: relax should lower the color floor first.
  profile.set_weights(RenegotiationWeights{3.0, 2.0, 1.0, 5.0});
  QopRequest request;
  request.spatial = QopLevel::kHigh;
  request.temporal = QopLevel::kHigh;
  request.color = QopLevel::kHigh;
  media::AppQosRange range = profile.Translate(request);
  ASSERT_TRUE(profile.RelaxForRenegotiation(range));
  EXPECT_EQ(range.min_color_depth_bits, 12);
  // Spatial floor untouched on the first round.
  EXPECT_EQ(range.min_resolution, media::kResolutionSvcd);
}

TEST(UserProfileTest, RelaxMovesToNextAxisWhenExhausted) {
  UserProfile profile(UserId(6), "custom");
  profile.set_weights(RenegotiationWeights{3.0, 2.0, 1.0, 5.0});
  QopRequest request;
  request.spatial = QopLevel::kHigh;
  request.temporal = QopLevel::kHigh;
  request.color = QopLevel::kLow;  // color floor already at 12
  media::AppQosRange range = profile.Translate(request);
  ASSERT_TRUE(profile.RelaxForRenegotiation(range));
  // Color could not be lowered further; temporal (next weight) was.
  EXPECT_LT(range.min_frame_rate, 20.0);
}

TEST(UserProfileTest, RelaxEventuallyExhausts) {
  UserProfile profile(UserId(7), "custom");
  media::AppQosRange range = profile.Translate(QopRequest{});
  int rounds = 0;
  while (profile.RelaxForRenegotiation(range)) {
    ++rounds;
    ASSERT_LT(rounds, 50) << "relaxation did not terminate";
  }
  EXPECT_GT(rounds, 0);
  EXPECT_EQ(range.min_resolution, media::kResolutionQcif);
  EXPECT_DOUBLE_EQ(range.min_frame_rate, 5.0);
  EXPECT_EQ(range.min_color_depth_bits, 12);
}

TEST(UserProfileTest, PhysicianValuesSpatialMost) {
  UserProfile profile = UserProfile::Physician(UserId(1));
  EXPECT_GT(profile.weights().spatial, profile.weights().temporal);
  EXPECT_GT(profile.weights().spatial, profile.weights().color);
}

TEST(QueryProducerTest, ProducedTextRoundTripsThroughParser) {
  UserProfile profile = UserProfile::Nurse(UserId(1));
  QueryProducer producer(&profile);
  query::ContentPredicate content;
  content.keywords = {"patient"};
  QopRequest request;
  request.spatial = QopLevel::kMedium;
  request.security = media::SecurityLevel::kStandard;

  std::string text = producer.ProduceText(content, request);
  Result<query::ParsedQuery> parsed = query::ParseQuery(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;

  query::ParsedQuery direct = producer.Produce(content, request);
  EXPECT_EQ(parsed->qos.range.min_resolution,
            direct.qos.range.min_resolution);
  EXPECT_EQ(parsed->qos.range.max_resolution,
            direct.qos.range.max_resolution);
  EXPECT_DOUBLE_EQ(parsed->qos.range.min_frame_rate,
                   direct.qos.range.min_frame_rate);
  EXPECT_EQ(parsed->qos.min_security, media::SecurityLevel::kStandard);
  EXPECT_EQ(parsed->content.keywords, content.keywords);
}

TEST(QueryProducerTest, SimilarityAndTitleInText) {
  UserProfile profile(UserId(2), "generic");
  QueryProducer producer(&profile);
  query::ContentPredicate content;
  content.title = "video07";
  content.similar_to = std::vector<double>{0.25, 0.5};
  content.top_k = 3;
  std::string text = producer.ProduceText(content, QopRequest{});
  Result<query::ParsedQuery> parsed = query::ParseQuery(text);
  ASSERT_TRUE(parsed.ok()) << text;
  EXPECT_EQ(*parsed->content.title, "video07");
  EXPECT_EQ(parsed->content.top_k, 3);
  ASSERT_TRUE(parsed->content.similar_to.has_value());
  EXPECT_DOUBLE_EQ((*parsed->content.similar_to)[0], 0.25);
}

}  // namespace
}  // namespace quasaq::core
