#include "workload/trace.h"

#include <gtest/gtest.h>

namespace quasaq::workload {
namespace {

core::UserProfile Profile() {
  return core::UserProfile(UserId(1), "trace-test");
}

TEST(TraceParseTest, ParsesWellFormedTrace) {
  core::UserProfile profile = Profile();
  Result<std::vector<TraceEntry>> entries = ParseTrace(
      "# comment line\n"
      "0.5,3,0,high,medium,low,medium,none\n"
      "\n"
      "2.25,14,2,low,low,low,low,strong\n",
      profile);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->size(), 2u);
  const TraceEntry& first = (*entries)[0];
  EXPECT_DOUBLE_EQ(first.arrival_seconds, 0.5);
  EXPECT_EQ(first.spec.content, LogicalOid(3));
  EXPECT_EQ(first.spec.client_site, SiteId(0));
  EXPECT_EQ(first.spec.qop.spatial, core::QopLevel::kHigh);
  EXPECT_EQ(first.spec.qop.color, core::QopLevel::kLow);
  EXPECT_EQ(first.spec.qos.min_security, media::SecurityLevel::kNone);
  // The QoS range was translated through the profile.
  EXPECT_EQ(first.spec.qos.range.min_resolution, media::kResolutionSvcd);
  const TraceEntry& second = (*entries)[1];
  EXPECT_EQ(second.spec.qos.min_security, media::SecurityLevel::kStrong);
}

TEST(TraceParseTest, RejectsBadFieldCount) {
  core::UserProfile profile = Profile();
  Result<std::vector<TraceEntry>> entries =
      ParseTrace("1.0,3,0,high,medium\n", profile);
  ASSERT_FALSE(entries.ok());
  EXPECT_NE(entries.status().message().find("line 1"), std::string::npos);
}

TEST(TraceParseTest, RejectsBadLevelNamingLine) {
  core::UserProfile profile = Profile();
  Result<std::vector<TraceEntry>> entries = ParseTrace(
      "1.0,3,0,high,medium,low,medium,none\n"
      "2.0,3,0,ultra,medium,low,medium,none\n",
      profile);
  ASSERT_FALSE(entries.ok());
  EXPECT_NE(entries.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(entries.status().message().find("ultra"), std::string::npos);
}

TEST(TraceParseTest, RejectsNegativeArrival) {
  core::UserProfile profile = Profile();
  Result<std::vector<TraceEntry>> entries =
      ParseTrace("-1.0,3,0,high,medium,low,medium,none\n", profile);
  ASSERT_FALSE(entries.ok());
}

TEST(TraceParseTest, EmptyTraceIsEmpty) {
  core::UserProfile profile = Profile();
  Result<std::vector<TraceEntry>> entries =
      ParseTrace("# nothing here\n\n", profile);
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
}

TEST(TraceRoundTripTest, FormatThenParseIsIdentity) {
  TrafficOptions options;
  options.fraction_secure = 0.3;
  TrafficGenerator generator(options, 15,
                             {SiteId(0), SiteId(1), SiteId(2)});
  std::vector<TraceEntry> recorded = RecordTrace(generator, 50);
  core::UserProfile profile = Profile();
  Result<std::vector<TraceEntry>> parsed =
      ParseTrace(FormatTrace(recorded), profile);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), recorded.size());
  for (size_t i = 0; i < recorded.size(); ++i) {
    EXPECT_NEAR((*parsed)[i].arrival_seconds, recorded[i].arrival_seconds,
                1e-4);
    EXPECT_EQ((*parsed)[i].spec.content, recorded[i].spec.content);
    EXPECT_EQ((*parsed)[i].spec.client_site, recorded[i].spec.client_site);
    EXPECT_EQ(static_cast<int>((*parsed)[i].spec.qop.spatial),
              static_cast<int>(recorded[i].spec.qop.spatial));
    EXPECT_EQ(static_cast<int>((*parsed)[i].spec.qop.audio),
              static_cast<int>(recorded[i].spec.qop.audio));
    EXPECT_EQ((*parsed)[i].spec.qos.min_security,
              recorded[i].spec.qos.min_security);
  }
}

TEST(TraceReplayTest, ArrivalTimesAreHonored) {
  core::UserProfile profile = Profile();
  Result<std::vector<TraceEntry>> entries = ParseTrace(
      "1.0,0,0,medium,medium,medium,medium,none\n"
      "5.0,1,1,low,low,low,low,none\n",
      profile);
  ASSERT_TRUE(entries.ok());
  sim::Simulator simulator;
  core::MediaDbSystem::Options options;
  options.kind = core::SystemKind::kVdbmsQuasaq;
  options.library.max_duration_seconds = 60.0;
  core::MediaDbSystem system(&simulator, options);
  TraceReplayResult result = ReplayTrace(*entries, system, simulator);
  EXPECT_EQ(result.admitted, 2);
  EXPECT_EQ(result.rejected, 0);
  EXPECT_EQ(result.stats.completed, 2u);
}

TEST(TraceReplayTest, SameTraceSameOutcomeAcrossRuns) {
  TrafficGenerator generator(TrafficOptions(), 15,
                             {SiteId(0), SiteId(1), SiteId(2)});
  std::vector<TraceEntry> trace = RecordTrace(generator, 200);

  auto run = [&trace] {
    sim::Simulator simulator;
    core::MediaDbSystem::Options options;
    options.kind = core::SystemKind::kVdbmsQuasaq;
    options.library.max_duration_seconds = 60.0;
    core::MediaDbSystem system(&simulator, options);
    return ReplayTrace(trace, system, simulator);
  };
  TraceReplayResult a = run();
  TraceReplayResult b = run();
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.stats.completed, b.stats.completed);
}

}  // namespace
}  // namespace quasaq::workload
