#include "core/plan_executor.h"

#include <gtest/gtest.h>

#include "media/library.h"
#include "net/playback.h"

namespace quasaq::core {
namespace {

media::ReplicaInfo MakeReplica(int level, int site,
                               double duration_seconds = 20.0) {
  media::ReplicaInfo replica;
  replica.id = PhysicalOid(level * 10 + site);
  replica.content = LogicalOid(0);
  replica.site = SiteId(site);
  replica.qos =
      media::QualityLadder::Standard().levels[static_cast<size_t>(level)];
  replica.duration_seconds = duration_seconds;
  replica.frame_seed = 5;
  media::FinalizeReplicaSizing(replica);
  return replica;
}

QualityManager::Admitted AdmittedFor(const media::ReplicaInfo& replica,
                                     net::StreamTransform transform = {}) {
  QualityManager::Admitted admitted;
  admitted.plan.replica_oid = replica.id;
  admitted.plan.source_site = replica.site;
  admitted.plan.delivery_site = replica.site;
  admitted.plan.transform = transform;
  FinalizePlan(admitted.plan, replica, PlanCostConstants{});
  admitted.reservation = 1;
  return admitted;
}

TEST(PlanExecutorTest, ExecutesPlainPlanToCompletion) {
  sim::Simulator simulator;
  PlanExecutor executor(&simulator, PlanExecutor::Options{});
  media::ReplicaInfo replica = MakeReplica(1, 0);
  bool finished = false;
  Result<std::unique_ptr<RunningDelivery>> delivery = executor.Execute(
      AdmittedFor(replica), replica, [&finished] { finished = true; });
  ASSERT_TRUE(delivery.ok()) << delivery.status().ToString();
  simulator.RunAll();
  EXPECT_TRUE(finished);
  EXPECT_TRUE((*delivery)->session().finished());
  // ~20 s at 23.97 fps.
  EXPECT_NEAR((*delivery)->session().delivered_frames(), 479, 2);
}

TEST(PlanExecutorTest, MismatchedReplicaRejected) {
  sim::Simulator simulator;
  PlanExecutor executor(&simulator, PlanExecutor::Options{});
  media::ReplicaInfo replica = MakeReplica(1, 0);
  media::ReplicaInfo other = MakeReplica(2, 0);
  Result<std::unique_ptr<RunningDelivery>> delivery =
      executor.Execute(AdmittedFor(replica), other);
  ASSERT_FALSE(delivery.ok());
  EXPECT_EQ(delivery.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanExecutorTest, TransformShapesTheDeliveredStream) {
  sim::Simulator simulator;
  PlanExecutor executor(&simulator, PlanExecutor::Options{});
  media::ReplicaInfo replica = MakeReplica(0, 0, 10.0);  // DVD master
  net::StreamTransform transform;
  transform.drop = media::FrameDropStrategy::kAllBFrames;
  Result<std::unique_ptr<RunningDelivery>> delivery =
      executor.Execute(AdmittedFor(replica, transform), replica);
  ASSERT_TRUE(delivery.ok());
  simulator.RunAll();
  // Only I and P frames delivered: 1/3 of the source frames.
  int source = (*delivery)->session().source_frames();
  EXPECT_NEAR((*delivery)->session().delivered_frames(), source / 3, 2);
}

TEST(PlanExecutorTest, CpuAdmissionLimitsConcurrentDeliveries) {
  sim::Simulator simulator;
  PlanExecutor::Options options;
  options.cpu_reservation_factor = 10.0;  // make streams CPU-hungry
  PlanExecutor executor(&simulator, options);
  media::ReplicaInfo replica = MakeReplica(0, 0, 60.0);
  std::vector<std::unique_ptr<RunningDelivery>> running;
  int rejected = 0;
  for (int i = 0; i < 20; ++i) {
    Result<std::unique_ptr<RunningDelivery>> delivery =
        executor.Execute(AdmittedFor(replica), replica);
    if (delivery.ok()) {
      running.push_back(std::move(*delivery));
    } else {
      EXPECT_EQ(delivery.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_GT(running.size(), 0u);
  EXPECT_GT(rejected, 0);
}

TEST(PlanExecutorTest, RelayedPlanForwardsThroughTheSourceSite) {
  sim::Simulator simulator;
  PlanExecutor executor(&simulator, PlanExecutor::Options{});
  media::ReplicaInfo replica = MakeReplica(1, 1, 20.0);  // stored at site 1
  QualityManager::Admitted admitted;
  admitted.plan.replica_oid = replica.id;
  admitted.plan.source_site = replica.site;
  admitted.plan.delivery_site = SiteId(0);  // relayed
  FinalizePlan(admitted.plan, replica, PlanCostConstants{});
  admitted.reservation = 1;

  bool finished = false;
  Result<std::unique_ptr<RunningDelivery>> delivery = executor.Execute(
      admitted, replica, [&finished] { finished = true; });
  ASSERT_TRUE(delivery.ok()) << delivery.status().ToString();
  // The source CPU now carries the forwarding reservation.
  EXPECT_GT(executor.SchedulerFor(SiteId(1)).reserved_fraction(), 0.0);
  EXPECT_GT(executor.SchedulerFor(SiteId(0)).reserved_fraction(), 0.0);
  simulator.RunAll();
  EXPECT_TRUE(finished);
  EXPECT_NEAR((*delivery)->session().delivered_frames(), 479, 2);
}

TEST(PlanExecutorTest, RelayAddsPipelineLatencyNotJitter) {
  sim::Simulator simulator;
  PlanExecutor::Options options;
  options.relay_hop_latency = 50 * kMillisecond;
  PlanExecutor executor(&simulator, options);
  media::ReplicaInfo replica = MakeReplica(1, 1, 15.0);

  QualityManager::Admitted local;
  local.plan.replica_oid = replica.id;
  local.plan.source_site = replica.site;
  local.plan.delivery_site = replica.site;
  FinalizePlan(local.plan, replica, PlanCostConstants{});
  QualityManager::Admitted relayed = local;
  relayed.plan.delivery_site = SiteId(0);
  FinalizePlan(relayed.plan, replica, PlanCostConstants{});

  Result<std::unique_ptr<RunningDelivery>> local_run =
      executor.Execute(local, replica);
  Result<std::unique_ptr<RunningDelivery>> relayed_run =
      executor.Execute(relayed, replica);
  ASSERT_TRUE(local_run.ok());
  ASSERT_TRUE(relayed_run.ok());
  simulator.RunAll();

  const auto& local_times = (*local_run)->session().frame_completion_times();
  const auto& relayed_times =
      (*relayed_run)->session().frame_completion_times();
  ASSERT_EQ(local_times.size(), relayed_times.size());
  // Every relayed frame lands later (hop + forwarding), but the
  // inter-frame cadence is preserved.
  EXPECT_GT(relayed_times.front(), local_times.front() + 40 * kMillisecond);
  RunningStats local_if;
  RunningStats relayed_if;
  for (size_t i = 1; i < local_times.size(); ++i) {
    local_if.Add(SimTimeToMillis(local_times[i] - local_times[i - 1]));
    relayed_if.Add(SimTimeToMillis(relayed_times[i] - relayed_times[i - 1]));
  }
  EXPECT_NEAR(relayed_if.mean(), local_if.mean(), 0.5);
}

TEST(PlanExecutorTest, SeparateSitesHaveSeparateCpus) {
  sim::Simulator simulator;
  PlanExecutor executor(&simulator, PlanExecutor::Options{});
  EXPECT_NE(&executor.SchedulerFor(SiteId(0)),
            &executor.SchedulerFor(SiteId(1)));
  EXPECT_EQ(&executor.SchedulerFor(SiteId(0)),
            &executor.SchedulerFor(SiteId(0)));
}

TEST(PlanExecutorTest, DeliveredStreamPlaysBackCleanly) {
  sim::Simulator simulator;
  PlanExecutor executor(&simulator, PlanExecutor::Options{});
  media::ReplicaInfo replica = MakeReplica(1, 0, 30.0);
  Result<std::unique_ptr<RunningDelivery>> delivery =
      executor.Execute(AdmittedFor(replica), replica);
  ASSERT_TRUE(delivery.ok());
  simulator.RunAll();
  net::PlaybackOptions playback;
  playback.frame_rate = replica.qos.frame_rate;
  net::PlaybackReport report = net::SimulateClientPlayback(
      (*delivery)->session().frame_completion_times(), playback);
  EXPECT_EQ(report.underruns, 0);
  EXPECT_DOUBLE_EQ(report.OnTimeFraction(), 1.0);
}

}  // namespace
}  // namespace quasaq::core
