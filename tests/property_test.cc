// Property-based suites: invariants checked across randomized or swept
// parameter spaces (TEST_P / INSTANTIATE_TEST_SUITE_P).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cost_model.h"
#include "core/plan_generator.h"
#include "core/qop.h"
#include "core/query_producer.h"
#include "media/library.h"
#include "net/rtp.h"
#include "query/parser.h"
#include "resource/pool.h"
#include "simcore/fluid.h"

namespace quasaq {
namespace {

// --- LRB cost bounds over random pool states ------------------------------

class LrbPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LrbPropertyTest, CostBoundsAndMonotonicity) {
  Rng rng(GetParam());
  res::ResourcePool pool;
  std::vector<BucketId> buckets;
  for (int site = 0; site < 3; ++site) {
    for (int kind = 0; kind < kNumResourceKinds; ++kind) {
      BucketId bucket{SiteId(site), static_cast<ResourceKind>(kind)};
      ASSERT_TRUE(pool.DeclareBucket(bucket, rng.Uniform(1.0, 100.0)).ok());
      buckets.push_back(bucket);
    }
  }
  // Random pre-existing usage.
  for (const BucketId& bucket : buckets) {
    ResourceVector used;
    used.Add(bucket, pool.Capacity(bucket) * rng.Uniform(0.0, 0.8));
    ASSERT_TRUE(pool.Acquire(used).ok());
  }
  core::LrbCostModel lrb;
  for (int trial = 0; trial < 50; ++trial) {
    ResourceVector demand;
    for (const BucketId& bucket : buckets) {
      if (rng.Bernoulli(0.4)) {
        demand.Add(bucket, pool.Capacity(bucket) * rng.Uniform(0.0, 0.2));
      }
    }
    double cost = lrb.Cost(demand, pool);
    // Lower bound: the fullest bucket before the plan.
    EXPECT_GE(cost, pool.MaxUtilization() - 1e-12);
    // Monotonicity: adding more demand never lowers the cost.
    ResourceVector bigger = demand;
    bigger.Add(buckets[static_cast<size_t>(rng.UniformInt(
                   0, static_cast<int64_t>(buckets.size()) - 1))],
               1.0);
    EXPECT_GE(lrb.Cost(bigger, pool), cost - 1e-12);
    // Feasibility: cost <= 1 implies the pool can actually take it.
    if (cost <= 1.0) {
      EXPECT_TRUE(pool.Fits(demand));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LrbPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

// --- pool acquire/release inverse under random sequences -------------------

class PoolPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PoolPropertyTest, AcquireReleaseSequencesBalance) {
  Rng rng(GetParam());
  res::ResourcePool pool;
  BucketId bucket{SiteId(0), ResourceKind::kCpu};
  ASSERT_TRUE(pool.DeclareBucket(bucket, 10.0).ok());
  std::vector<ResourceVector> held;
  for (int step = 0; step < 300; ++step) {
    if (!held.empty() && rng.Bernoulli(0.45)) {
      ASSERT_TRUE(pool.Release(held.back()).ok());
      held.pop_back();
    } else {
      ResourceVector demand;
      demand.Add(bucket, rng.Uniform(0.0, 2.0));
      if (pool.Acquire(demand).ok()) held.push_back(demand);
    }
    EXPECT_LE(pool.Used(bucket), pool.Capacity(bucket) + 1e-9);
    EXPECT_GE(pool.Used(bucket), -1e-9);
  }
  for (const ResourceVector& demand : held) ASSERT_TRUE(pool.Release(demand).ok());
  EXPECT_NEAR(pool.Used(bucket), 0.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

// --- fluid server conserves work -------------------------------------------

class FluidPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FluidPropertyTest, EveryFlowCompletesAndCapacityIsRespected) {
  Rng rng(GetParam());
  sim::Simulator simulator;
  double capacity = rng.Uniform(50.0, 500.0);
  sim::FluidServer server(&simulator, capacity);
  int completions = 0;
  int flows = 30;
  double total_work = 0.0;
  for (int i = 0; i < flows; ++i) {
    double work = rng.Uniform(1.0, 50.0);
    total_work += work;
    simulator.ScheduleAt(SecondsToSimTime(rng.Uniform(0.0, 5.0)),
                         [&server, &completions, work, &rng] {
                           server.AddFlow(work, rng.Uniform(1.0, 100.0),
                                          [&](sim::FlowId) { ++completions; });
                         });
  }
  simulator.RunAll();
  EXPECT_EQ(completions, flows);
  // Lower bound on finish time: total work cannot beat the capacity.
  EXPECT_GE(SimTimeToSeconds(simulator.Now()), total_work / capacity - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

// --- QueryProducer text round-trips for the whole QoP space ----------------

class QopRoundTripTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(QopRoundTripTest, ProducedTextParsesBackToTheSameRange) {
  auto [spatial, temporal, color, security] = GetParam();
  core::QopRequest request;
  request.spatial = static_cast<core::QopLevel>(spatial);
  request.temporal = static_cast<core::QopLevel>(temporal);
  request.color = static_cast<core::QopLevel>(color);
  request.security = static_cast<media::SecurityLevel>(security);
  core::UserProfile profile(UserId(1), "sweep");
  core::QueryProducer producer(&profile);
  query::ContentPredicate content;
  content.keywords = {"news"};

  std::string text = producer.ProduceText(content, request);
  Result<query::ParsedQuery> parsed = query::ParseQuery(text);
  ASSERT_TRUE(parsed.ok()) << text << "\n" << parsed.status().ToString();
  query::ParsedQuery direct = producer.Produce(content, request);
  EXPECT_EQ(parsed->qos.range.min_resolution,
            direct.qos.range.min_resolution);
  EXPECT_EQ(parsed->qos.range.max_resolution,
            direct.qos.range.max_resolution);
  EXPECT_DOUBLE_EQ(parsed->qos.range.min_frame_rate,
                   direct.qos.range.min_frame_rate);
  EXPECT_DOUBLE_EQ(parsed->qos.range.max_frame_rate,
                   direct.qos.range.max_frame_rate);
  EXPECT_EQ(parsed->qos.range.min_color_depth_bits,
            direct.qos.range.min_color_depth_bits);
  EXPECT_EQ(parsed->qos.min_security, direct.qos.min_security);
}

INSTANTIATE_TEST_SUITE_P(
    QopSpace, QopRoundTripTest,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Range(0, 3),
                       ::testing::Range(0, 3), ::testing::Range(0, 3)));

// --- plan generation invariants over the whole QoP space -------------------

class PlanSpaceSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PlanSpaceSweepTest, GeneratedPlansAreWellFormedAndSatisfying) {
  auto [spatial, temporal, color] = GetParam();
  core::QopRequest request;
  request.spatial = static_cast<core::QopLevel>(spatial);
  request.temporal = static_cast<core::QopLevel>(temporal);
  request.color = static_cast<core::QopLevel>(color);
  core::UserProfile profile(UserId(1), "sweep");
  query::QosRequirement qos;
  qos.range = profile.Translate(request);

  std::vector<SiteId> sites = {SiteId(0), SiteId(1), SiteId(2)};
  meta::DistributedMetadataEngine metadata(
      sites, meta::DistributedMetadataEngine::Options());
  media::LibraryOptions library_options;
  library_options.num_videos = 3;
  media::VideoLibrary library =
      media::BuildExperimentLibrary(library_options, sites);
  for (const media::VideoContent& content : library.contents) {
    ASSERT_TRUE(metadata.InsertContent(content).ok());
  }
  for (const media::ReplicaInfo& replica : library.replicas) {
    ASSERT_TRUE(metadata.InsertReplica(replica).ok());
  }

  core::PlanGenerator::Options options;
  for (const media::AppQos& level : media::QualityLadder::Standard().levels) {
    options.transcode_targets.push_back(level);
    if (level.color_depth_bits > 12) {
      media::AppQos low = level;
      low.color_depth_bits = 12;
      options.transcode_targets.push_back(low);
    }
  }
  core::PlanGenerator generator(&metadata, sites, options);
  Result<std::vector<core::Plan>> plans =
      generator.Generate(SiteId(0), LogicalOid(0), qos);
  ASSERT_TRUE(plans.ok());
  for (const core::Plan& plan : *plans) {
    // Delivered quality satisfies the request.
    EXPECT_TRUE(qos.SatisfiedBy(plan.delivered_qos,
                                plan.transform.encryption))
        << plan.ToString();
    // Resource vectors are strictly positive and touch only real sites.
    EXPECT_FALSE(plan.resources.empty());
    for (const ResourceVector::Entry& e : plan.resources.entries()) {
      EXPECT_GT(e.amount, 0.0) << plan.ToString();
      EXPECT_GE(e.bucket.site.value(), 0);
      EXPECT_LT(e.bucket.site.value(), 3);
    }
    EXPECT_GT(plan.wire_rate_kbps, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    QopSpace, PlanSpaceSweepTest,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Range(0, 3),
                       ::testing::Range(0, 3)));

// --- transcoding forms a strict partial order -------------------------------

std::vector<media::AppQos> QualityUniverse() {
  std::vector<media::AppQos> universe;
  for (const media::Resolution& resolution :
       {media::kResolutionQcif, media::kResolutionVcd,
        media::kResolutionDvd}) {
    for (int depth : {12, 24}) {
      for (double fps : {10.0, 23.97}) {
        for (int format = 0; format < media::kNumVideoFormats; ++format) {
          for (media::AudioQuality audio :
               {media::AudioQuality::kPhone, media::AudioQuality::kCd}) {
            universe.push_back(media::AppQos{
                resolution, depth, fps,
                static_cast<media::VideoFormat>(format), audio});
          }
        }
      }
    }
  }
  return universe;
}

TEST(TranscodeOrderTest, Irreflexive) {
  for (const media::AppQos& qos : QualityUniverse()) {
    EXPECT_FALSE(media::TranscodeAllowed(qos, qos))
        << media::AppQosToString(qos);
  }
}

TEST(TranscodeOrderTest, NoTwoWayTranscodesExceptFormatSwaps) {
  std::vector<media::AppQos> universe = QualityUniverse();
  for (const media::AppQos& a : universe) {
    for (const media::AppQos& b : universe) {
      if (media::TranscodeAllowed(a, b) && media::TranscodeAllowed(b, a)) {
        // Both directions allowed only when the qualities differ solely
        // in container format (format conversion is never an upgrade).
        media::AppQos b_with_a_format = b;
        b_with_a_format.format = a.format;
        EXPECT_EQ(a, b_with_a_format)
            << media::AppQosToString(a) << " <-> "
            << media::AppQosToString(b);
      }
    }
  }
}

TEST(TranscodeOrderTest, TransitiveAlongQualityChains) {
  std::vector<media::AppQos> universe = QualityUniverse();
  int checked = 0;
  for (const media::AppQos& a : universe) {
    for (const media::AppQos& b : universe) {
      if (!media::TranscodeAllowed(a, b)) continue;
      for (const media::AppQos& c : universe) {
        if (!media::TranscodeAllowed(b, c)) continue;
        if (c == a) continue;  // round trips collapse to identity
        EXPECT_TRUE(media::TranscodeAllowed(a, c))
            << media::AppQosToString(a) << " -> "
            << media::AppQosToString(b) << " -> "
            << media::AppQosToString(c);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 100);  // the universe is dense enough to matter
}

TEST(TranscodeOrderTest, DownscalingNeverRaisesEstimatedBitrate) {
  std::vector<media::AppQos> universe = QualityUniverse();
  for (const media::AppQos& from : universe) {
    for (const media::AppQos& to : universe) {
      if (!media::TranscodeAllowed(from, to)) continue;
      if (from.format != to.format) continue;  // same codec efficiency
      EXPECT_LE(media::EstimateBitrateKBps(to),
                media::EstimateBitrateKBps(from) + 1e-9)
          << media::AppQosToString(from) << " -> "
          << media::AppQosToString(to);
    }
  }
}

// --- stream cost model consistency across all transforms -------------------

class TransformSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(TransformSweepTest, WireRateAndCpuArePositiveAndBounded) {
  int drop = GetParam();
  media::ReplicaInfo replica;
  replica.id = PhysicalOid(1);
  replica.content = LogicalOid(1);
  replica.site = SiteId(0);
  replica.qos = media::QualityLadder::Standard().levels[0];
  replica.duration_seconds = 30.0;
  media::FinalizeReplicaSizing(replica);

  for (int enc = 0; enc < media::kNumEncryptionAlgorithms; ++enc) {
    net::StreamTransform transform;
    transform.drop = static_cast<media::FrameDropStrategy>(drop);
    transform.encryption = static_cast<media::EncryptionAlgorithm>(enc);
    double wire = net::StreamWireRateKbps(replica, transform);
    EXPECT_GT(wire, 0.0);
    EXPECT_LE(wire, replica.bitrate_kbps + 1e-9);
    double cpu = net::StreamCpuFraction(replica, transform,
                                        media::StreamingCpuCost{});
    EXPECT_GT(cpu, 0.0);
    EXPECT_LT(cpu, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Drops, TransformSweepTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace quasaq
