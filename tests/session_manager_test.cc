#include "core/session_manager.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/system.h"

// Session lifecycle layer: the invariant under test throughout is that
// a session's resources are released exactly once — at completion,
// cancellation, or pause — no matter how pause / resume / renegotiate /
// cancel interleave.

namespace quasaq::core {
namespace {

class SessionManagerTest : public ::testing::Test {
 protected:
  SessionManagerTest() : api_(&pool_), manager_(&simulator_, &api_) {
    EXPECT_TRUE(pool_.DeclareBucket({SiteId(0), ResourceKind::kNetworkBandwidth}, 1000.0).ok());
    EXPECT_TRUE(pool_.DeclareBucket({SiteId(1), ResourceKind::kNetworkBandwidth}, 1000.0).ok());
  }

  ResourceVector Kbps(int site, double kbps) {
    ResourceVector v;
    v.Add({SiteId(site), ResourceKind::kNetworkBandwidth}, kbps);
    return v;
  }

  res::ReservationId Reserve(double kbps) {
    Result<res::ReservationId> r = api_.Reserve(Kbps(0, kbps));
    EXPECT_TRUE(r.ok());
    return *r;
  }

  SessionManager::Record ReservedRecord(res::ReservationId id) {
    SessionManager::Record record;
    record.content = LogicalOid(0);
    record.site = SiteId(0);
    record.reservation = id;
    return record;
  }

  sim::Simulator simulator_;
  res::ResourcePool pool_;
  res::CompositeQosApi api_;
  SessionManager manager_;
};

TEST_F(SessionManagerTest, StartCapturesVectorAndCompletesOnce) {
  SessionId completed_id(0);
  int fired = 0;
  manager_.set_on_complete([&](SessionId id, SimTime) {
    completed_id = id;
    ++fired;
  });
  SessionId id = manager_.Start(ReservedRecord(Reserve(400.0)), 60.0);
  EXPECT_EQ(manager_.outstanding(), 1);
  const SessionManager::Record* record = manager_.Find(id);
  ASSERT_NE(record, nullptr);
  EXPECT_FALSE(record->reserved_vector.empty());

  simulator_.RunAll();
  EXPECT_EQ(manager_.outstanding(), 0);
  EXPECT_EQ(manager_.completed(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(completed_id, id);
  EXPECT_EQ(api_.stats().released, 1u);
  EXPECT_DOUBLE_EQ(pool_.MaxUtilization(), 0.0);
}

TEST_F(SessionManagerTest, CancelWhilePausedDoesNotDoubleRelease) {
  SessionId id = manager_.Start(ReservedRecord(Reserve(400.0)), 60.0);
  ASSERT_TRUE(manager_.Pause(id).ok());
  EXPECT_EQ(api_.stats().released, 1u);
  EXPECT_DOUBLE_EQ(pool_.MaxUtilization(), 0.0);

  ASSERT_TRUE(manager_.Cancel(id).ok());
  EXPECT_EQ(api_.stats().released, 1u);  // pause already gave it back
  EXPECT_EQ(manager_.outstanding(), 0);
  simulator_.RunAll();
  EXPECT_EQ(manager_.completed(), 0u);  // no stale completion event fires
}

TEST_F(SessionManagerTest, ResumeFailureLeavesSessionPaused) {
  SessionId id = manager_.Start(ReservedRecord(Reserve(800.0)), 60.0);
  ASSERT_TRUE(manager_.Pause(id).ok());
  // The released 800 KB/s slot gets taken while the user is paused.
  Result<res::ReservationId> blocker = api_.Reserve(Kbps(0, 900.0));
  ASSERT_TRUE(blocker.ok());

  Status resumed = manager_.Resume(id);
  EXPECT_EQ(resumed.code(), StatusCode::kResourceExhausted);
  const SessionManager::Record* record = manager_.Find(id);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->paused);
  // Nothing was acquired by the failed resume.
  EXPECT_DOUBLE_EQ(pool_.MaxUtilization(), 0.9);

  ASSERT_TRUE(api_.Release(*blocker).ok());
  ASSERT_TRUE(manager_.Resume(id).ok());
  simulator_.RunAll();
  EXPECT_EQ(manager_.completed(), 1u);
  EXPECT_DOUBLE_EQ(pool_.MaxUtilization(), 0.0);
  // pause + blocker + completion: each slot released exactly once.
  EXPECT_EQ(api_.stats().released, 3u);
}

TEST_F(SessionManagerTest, VdbmsPinningIsKeyedBySite) {
  SessionManager::Record a;
  a.content = LogicalOid(0);
  a.site = SiteId(0);
  a.vdbms_kbps = 500.0;
  SessionManager::Record b;
  b.content = LogicalOid(1);
  b.site = SiteId(1);
  b.vdbms_kbps = 300.0;
  SessionId id_a = manager_.Start(std::move(a), 60.0);
  manager_.Start(std::move(b), 60.0);
  EXPECT_DOUBLE_EQ(manager_.vdbms_active_kbps(SiteId(0)), 500.0);
  EXPECT_DOUBLE_EQ(manager_.vdbms_active_kbps(SiteId(1)), 300.0);

  ASSERT_TRUE(manager_.Pause(id_a).ok());
  EXPECT_DOUBLE_EQ(manager_.vdbms_active_kbps(SiteId(0)), 0.0);
  EXPECT_DOUBLE_EQ(manager_.vdbms_active_kbps(SiteId(1)), 300.0);
  ASSERT_TRUE(manager_.Resume(id_a).ok());
  EXPECT_DOUBLE_EQ(manager_.vdbms_active_kbps(SiteId(0)), 500.0);

  simulator_.RunAll();
  EXPECT_DOUBLE_EQ(manager_.vdbms_active_kbps(SiteId(0)), 0.0);
  EXPECT_DOUBLE_EQ(manager_.vdbms_active_kbps(SiteId(1)), 0.0);
}

TEST_F(SessionManagerTest, AdoptedPlanIsWhatResumeReadmits) {
  SessionId id = manager_.Start(ReservedRecord(Reserve(400.0)), 60.0);
  ASSERT_TRUE(manager_.Pause(id).ok());
  ASSERT_TRUE(
      manager_.AdoptRenegotiatedPlan(id, SiteId(1), Kbps(1, 100.0)).ok());
  ASSERT_TRUE(manager_.Resume(id).ok());
  // The re-admitted reservation is the adopted 100 KB/s on site 1, not
  // the original 400 KB/s on site 0.
  EXPECT_DOUBLE_EQ(pool_.Used({SiteId(1), ResourceKind::kNetworkBandwidth}),
                   100.0);
  EXPECT_DOUBLE_EQ(pool_.Used({SiteId(0), ResourceKind::kNetworkBandwidth}),
                   0.0);
  simulator_.RunAll();
  EXPECT_DOUBLE_EQ(pool_.MaxUtilization(), 0.0);
}

// Sharded session table: ID routing, cross-shard lookup and aggregation.
class ShardedSessionManagerTest : public ::testing::Test {
 protected:
  static constexpr int kShards = 4;
  static constexpr int kSites = 8;

  ShardedSessionManagerTest()
      : api_(&pool_), manager_(&simulator_, &api_, kShards) {
    for (int site = 0; site < kSites; ++site) {
      EXPECT_TRUE(pool_.DeclareBucket(
                          {SiteId(site), ResourceKind::kNetworkBandwidth},
                          1000.0)
                      .ok());
    }
  }

  SessionId StartOn(int site, double kbps = 100.0) {
    ResourceVector v;
    v.Add({SiteId(site), ResourceKind::kNetworkBandwidth}, kbps);
    Result<res::ReservationId> r = api_.Reserve(v);
    EXPECT_TRUE(r.ok());
    SessionManager::Record record;
    record.content = LogicalOid(site);
    record.site = SiteId(site);
    record.reservation = *r;
    return manager_.Start(std::move(record), 60.0);
  }

  sim::Simulator simulator_;
  res::ResourcePool pool_;
  res::CompositeQosApi api_;
  SessionManager manager_;
};

TEST_F(ShardedSessionManagerTest, SessionIdsEncodeTheOwningShard) {
  for (int site = 0; site < kSites; ++site) {
    SessionId id = StartOn(site);
    EXPECT_EQ(manager_.ShardOfSession(id), manager_.ShardOfSite(SiteId(site)))
        << "site " << site;
  }
}

TEST_F(ShardedSessionManagerTest, CrossShardLookupFindsEverySession) {
  std::vector<SessionId> ids;
  for (int site = 0; site < kSites; ++site) ids.push_back(StartOn(site));
  // IDs are distinct even though every shard runs its own sequence.
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      EXPECT_NE(ids[i], ids[j]);
    }
  }
  EXPECT_EQ(manager_.outstanding(), kSites);  // aggregated across shards
  for (int site = 0; site < kSites; ++site) {
    const SessionManager::Record* record = manager_.Find(ids[site]);
    ASSERT_NE(record, nullptr) << "site " << site;
    EXPECT_EQ(record->site, SiteId(site));
    std::optional<SessionManager::Record> copy =
        manager_.Snapshot(ids[site]);
    ASSERT_TRUE(copy.has_value());
    EXPECT_EQ(copy->content, LogicalOid(site));
  }
  // Lifecycle calls route by the ID's encoded shard, whatever site the
  // caller is on.
  ASSERT_TRUE(manager_.Pause(ids[3]).ok());
  ASSERT_TRUE(manager_.Resume(ids[3]).ok());
  ASSERT_TRUE(manager_.Cancel(ids[5]).ok());
  EXPECT_EQ(manager_.Find(ids[5]), nullptr);
  EXPECT_EQ(manager_.outstanding(), kSites - 1);
  simulator_.RunAll();
  EXPECT_EQ(manager_.completed(), static_cast<uint64_t>(kSites - 1));
  EXPECT_DOUBLE_EQ(pool_.MaxUtilization(), 0.0);
}

TEST_F(SessionManagerTest, ShardCountOneReproducesPreShardingIds) {
  // The default single-shard manager must hand out the dense 1, 2, 3...
  // sequence earlier releases did — harnesses key logs on those IDs.
  EXPECT_EQ(manager_.shard_count(), 1);
  EXPECT_EQ(manager_.Start(ReservedRecord(Reserve(10.0)), 60.0),
            SessionId(1));
  EXPECT_EQ(manager_.Start(ReservedRecord(Reserve(10.0)), 60.0),
            SessionId(2));
  EXPECT_EQ(manager_.Start(ReservedRecord(Reserve(10.0)), 60.0),
            SessionId(3));
}

// Interleavings through the facade: ChangeSessionQos against paused
// sessions, double-release hunting across the full QuaSAQ stack.
class SessionInterleavingTest : public ::testing::Test {
 protected:
  SessionInterleavingTest() {
    MediaDbSystem::Options options;
    options.kind = SystemKind::kVdbmsQuasaq;
    options.seed = 3;
    options.library.min_duration_seconds = 60.0;
    options.library.max_duration_seconds = 90.0;
    system_ = std::make_unique<MediaDbSystem>(&simulator_, options);
  }

  // A DVD-rate session: only satisfiable by the master replica.
  MediaDbSystem::DeliveryOutcome StartHighRate() {
    return system_->SubmitDelivery(SiteId(0), LogicalOid(0), HighRateQos());
  }

  query::QosRequirement HighRateQos() {
    query::QosRequirement qos;
    qos.range.min_resolution = media::kResolutionSvcd;
    qos.range.min_color_depth_bits = 24;
    qos.range.min_frame_rate = 20.0;
    return qos;
  }

  query::QosRequirement WideQos() {
    query::QosRequirement qos;
    qos.range.min_frame_rate = 1.0;
    return qos;
  }

  sim::Simulator simulator_;
  std::unique_ptr<MediaDbSystem> system_;
};

TEST_F(SessionInterleavingTest, MidPauseQosChangeAppliesOnResume) {
  MediaDbSystem::DeliveryOutcome outcome = StartHighRate();
  ASSERT_TRUE(outcome.status.ok());
  ASSERT_TRUE(system_->PauseSession(outcome.session).ok());
  EXPECT_DOUBLE_EQ(system_->pool().MaxUtilization(), 0.0);

  // Renegotiate downward while paused: the new plan is adopted but
  // nothing is acquired until the user hits play again.
  Result<MediaDbSystem::DeliveryOutcome> changed =
      system_->ChangeSessionQos(outcome.session, WideQos());
  ASSERT_TRUE(changed.ok()) << changed.status().ToString();
  EXPECT_TRUE(changed->renegotiated);
  EXPECT_LT(changed->wire_rate_kbps, outcome.wire_rate_kbps);
  EXPECT_DOUBLE_EQ(system_->pool().MaxUtilization(), 0.0);
  EXPECT_EQ(system_->outstanding_sessions(), 1);

  ASSERT_TRUE(system_->ResumeSession(outcome.session).ok());
  EXPECT_GT(system_->pool().MaxUtilization(), 0.0);
  simulator_.RunAll();
  EXPECT_EQ(system_->stats().completed, 1u);
  EXPECT_DOUBLE_EQ(system_->pool().MaxUtilization(), 0.0);
}

TEST_F(SessionInterleavingTest, CancelWhilePausedReleasesExactlyOnce) {
  MediaDbSystem::DeliveryOutcome outcome = StartHighRate();
  ASSERT_TRUE(outcome.status.ok());
  ASSERT_TRUE(system_->PauseSession(outcome.session).ok());
  uint64_t released_after_pause = system_->qos_api().stats().released;
  ASSERT_TRUE(system_->CancelSession(outcome.session).ok());
  EXPECT_EQ(system_->qos_api().stats().released, released_after_pause);
  EXPECT_EQ(system_->outstanding_sessions(), 0);
  EXPECT_DOUBLE_EQ(system_->pool().MaxUtilization(), 0.0);
}

TEST_F(SessionInterleavingTest, ResumeFailureAfterQosChangeStaysPaused) {
  MediaDbSystem::DeliveryOutcome outcome = StartHighRate();
  ASSERT_TRUE(outcome.status.ok());
  ASSERT_TRUE(system_->PauseSession(outcome.session).ok());
  Result<MediaDbSystem::DeliveryOutcome> changed =
      system_->ChangeSessionQos(outcome.session, HighRateQos());
  ASSERT_TRUE(changed.ok());

  // Occupy every link while the user is paused.
  for (int i = 0; i < 400; ++i) {
    system_->SubmitDelivery(SiteId(i % 3), LogicalOid(i % 15), HighRateQos());
  }
  uint64_t released_before = system_->qos_api().stats().released;
  EXPECT_EQ(system_->ResumeSession(outcome.session).code(),
            StatusCode::kResourceExhausted);
  // The failed resume neither acquired nor released anything.
  EXPECT_EQ(system_->qos_api().stats().released, released_before);

  simulator_.RunAll();  // the load drains; the session is still paused
  EXPECT_EQ(system_->outstanding_sessions(), 1);
  ASSERT_TRUE(system_->ResumeSession(outcome.session).ok());
  simulator_.RunAll();
  EXPECT_EQ(system_->outstanding_sessions(), 0);
  EXPECT_DOUBLE_EQ(system_->pool().MaxUtilization(), 0.0);
}

TEST_F(SessionInterleavingTest, QosChangeOnRunningSessionSwapsInPlace) {
  MediaDbSystem::DeliveryOutcome outcome = StartHighRate();
  ASSERT_TRUE(outcome.status.ok());
  double before = system_->pool().MaxUtilization();
  Result<MediaDbSystem::DeliveryOutcome> changed =
      system_->ChangeSessionQos(outcome.session, WideQos());
  ASSERT_TRUE(changed.ok()) << changed.status().ToString();
  EXPECT_LT(changed->wire_rate_kbps, outcome.wire_rate_kbps);
  EXPECT_LT(system_->pool().MaxUtilization(), before);
  simulator_.RunAll();
  EXPECT_EQ(system_->stats().completed, 1u);
  EXPECT_DOUBLE_EQ(system_->pool().MaxUtilization(), 0.0);
}

}  // namespace
}  // namespace quasaq::core
