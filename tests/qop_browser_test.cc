#include "core/qop_browser.h"

#include <gtest/gtest.h>

namespace quasaq::core {
namespace {

class QopBrowserTest : public ::testing::Test {
 protected:
  QopBrowserTest() {
    MediaDbSystem::Options options;
    options.kind = SystemKind::kVdbmsQuasaq;
    options.seed = 3;
    options.library.min_duration_seconds = 60.0;
    options.library.max_duration_seconds = 90.0;
    system_ = std::make_unique<MediaDbSystem>(&simulator_, options);
    browser_ = std::make_unique<QopBrowser>(
        system_.get(), UserProfile::Nurse(UserId(1)), SiteId(0));
  }

  query::ContentPredicate AnyNews() {
    query::ContentPredicate content;
    content.keywords = {"news"};
    return content;
  }

  sim::Simulator simulator_;
  std::unique_ptr<MediaDbSystem> system_;
  std::unique_ptr<QopBrowser> browser_;
};

TEST_F(QopBrowserTest, PresentStartsAPresentation) {
  Result<QopBrowser::Presentation> presentation =
      browser_->Present(AnyNews(), QopRequest{});
  ASSERT_TRUE(presentation.ok()) << presentation.status().ToString();
  EXPECT_TRUE(browser_->active());
  EXPECT_TRUE(presentation->delivery.status.ok());
  EXPECT_EQ(system_->outstanding_sessions(), 1);
  // The generated query text is exposed and well-formed.
  EXPECT_NE(browser_->last_query_text().find("SELECT video"),
            std::string::npos);
  EXPECT_NE(browser_->last_query_text().find("CONTAINS('news')"),
            std::string::npos);
  EXPECT_NE(browser_->last_query_text().find("WITH QOS"),
            std::string::npos);
}

TEST_F(QopBrowserTest, PresentingAgainSwitchesVideos) {
  ASSERT_TRUE(browser_->Present(AnyNews(), QopRequest{}).ok());
  query::ContentPredicate other;
  other.keywords = {"sunset"};
  Result<QopBrowser::Presentation> second =
      browser_->Present(other, QopRequest{});
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // The first session was stopped: only one outstanding.
  EXPECT_EQ(system_->outstanding_sessions(), 1);
}

TEST_F(QopBrowserTest, PresetLookup) {
  Result<QopBrowser::Presentation> presentation =
      browser_->PresentPreset(AnyNews(), "modem");
  ASSERT_TRUE(presentation.ok()) << presentation.status().ToString();
  // Modem preset = everything low: a thumbnail-class stream.
  EXPECT_LE(presentation->delivery.wire_rate_kbps, 40.0);
  Result<QopBrowser::Presentation> unknown =
      browser_->PresentPreset(AnyNews(), "imax");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  // The failed preset lookup must not have killed the active one.
  EXPECT_TRUE(browser_->active());
}

TEST_F(QopBrowserTest, NoMatchPropagatesNotFound) {
  query::ContentPredicate content;
  content.keywords = {"unobtainium"};
  Result<QopBrowser::Presentation> presentation =
      browser_->Present(content, QopRequest{});
  ASSERT_FALSE(presentation.ok());
  EXPECT_EQ(presentation.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(browser_->active());
}

TEST_F(QopBrowserTest, PauseResumeRoundTrip) {
  ASSERT_TRUE(browser_->Present(AnyNews(), QopRequest{}).ok());
  ASSERT_TRUE(browser_->Pause().ok());
  EXPECT_DOUBLE_EQ(system_->pool().MaxUtilization(), 0.0);
  ASSERT_TRUE(browser_->Resume().ok());
  EXPECT_GT(system_->pool().MaxUtilization(), 0.0);
}

TEST_F(QopBrowserTest, ChangeQualityMidPlayback) {
  QopRequest low;
  low.spatial = QopLevel::kLow;
  low.temporal = QopLevel::kLow;
  low.color = QopLevel::kLow;
  low.audio = QopLevel::kLow;
  ASSERT_TRUE(browser_->Present(AnyNews(), low).ok());
  double low_rate = browser_->presentation().delivery.wire_rate_kbps;

  QopRequest high;
  high.spatial = QopLevel::kHigh;
  high.temporal = QopLevel::kHigh;
  high.color = QopLevel::kHigh;
  high.audio = QopLevel::kHigh;
  Result<MediaDbSystem::DeliveryOutcome> upgraded =
      browser_->ChangeQuality(high);
  ASSERT_TRUE(upgraded.ok()) << upgraded.status().ToString();
  EXPECT_GT(upgraded->wire_rate_kbps, low_rate);
  EXPECT_GT(browser_->presentation().delivery.wire_rate_kbps, low_rate);
}

TEST_F(QopBrowserTest, StopEndsThePresentation) {
  ASSERT_TRUE(browser_->Present(AnyNews(), QopRequest{}).ok());
  ASSERT_TRUE(browser_->Stop().ok());
  EXPECT_FALSE(browser_->active());
  EXPECT_EQ(system_->outstanding_sessions(), 0);
  // Stop is idempotent.
  EXPECT_TRUE(browser_->Stop().ok());
}

TEST_F(QopBrowserTest, StopAfterNaturalCompletionIsClean) {
  ASSERT_TRUE(browser_->Present(AnyNews(), QopRequest{}).ok());
  simulator_.RunAll();  // the video plays out
  EXPECT_TRUE(browser_->Stop().ok());
}

TEST_F(QopBrowserTest, ActionsWithoutPresentationFail) {
  EXPECT_EQ(browser_->Pause().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(browser_->Resume().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(browser_->ChangeQuality(QopRequest{}).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace quasaq::core
