#include "common/status.h"

#include <gtest/gtest.h>

namespace quasaq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status status = Status::ResourceExhausted("bucket full");
  EXPECT_EQ(status.ToString(), "RESOURCE_EXHAUSTED: bucket full");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "RESOURCE_EXHAUSTED");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NOT_FOUND");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> result(std::string("hello"));
  EXPECT_EQ(result.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(*owned, 7);
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

}  // namespace
}  // namespace quasaq
