// Tracer unit tests plus the golden end-to-end trace: a full
// admit -> renegotiate -> complete delivery on a traced MediaDbSystem
// must produce per-track events that obey B/E stack discipline (which
// is what gives Perfetto correct span nesting).

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/system.h"
#include "obs/trace.h"

namespace quasaq::obs {
namespace {

TEST(TracerTest, SpansFollowStackDiscipline) {
  Tracer tracer;
  int64_t track = tracer.NewTrack("delivery content=0");
  ASSERT_NE(track, 0);
  tracer.Begin(track, "plan.enumerate", 10);
  tracer.Begin(track, "plan.reserve", 10, {{"site", "2"}});
  EXPECT_EQ(tracer.OpenSpans(track), 2);
  tracer.End(track, 10);  // closes plan.reserve
  EXPECT_EQ(tracer.OpenSpans(track), 1);
  tracer.End(track, 20);  // closes plan.enumerate
  EXPECT_EQ(tracer.OpenSpans(track), 0);
  EXPECT_EQ(tracer.unbalanced_ends(), 0u);

  std::vector<Tracer::Event> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[0].name, "plan.enumerate");
  EXPECT_EQ(events[0].category, "plan");
  EXPECT_EQ(events[1].phase, 'B');
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].first, "site");
  // 'E' events carry no name (the matching 'B' names the span) but do
  // carry the popped span's category.
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_TRUE(events[2].name.empty());
  EXPECT_EQ(events[2].category, "plan");
  EXPECT_EQ(events[3].ts, 20);
}

TEST(TracerTest, MismatchedEndIsCountedNotRecorded) {
  Tracer tracer;
  int64_t track = tracer.NewTrack("t");
  tracer.End(track, 5);
  EXPECT_EQ(tracer.unbalanced_ends(), 1u);
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(TracerTest, EndAllClosesEveryOpenSpan) {
  Tracer tracer;
  int64_t track = tracer.NewTrack("t");
  tracer.Begin(track, "delivery", 0);
  tracer.Begin(track, "session.stream", 1);
  tracer.Begin(track, "session.paused", 2);
  tracer.EndAll(track, 9);
  EXPECT_EQ(tracer.OpenSpans(track), 0);
  std::vector<Tracer::Event> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 6u);
  // Innermost first: paused, stream, delivery.
  EXPECT_EQ(events[3].category, "session");
  EXPECT_EQ(events[4].category, "session");
  EXPECT_EQ(events[5].category, "delivery");
  EXPECT_EQ(events[5].ts, 9);
}

TEST(TracerTest, InstantEventsRecordPointsInTime) {
  Tracer tracer;
  int64_t track = tracer.NewTrack("t");
  tracer.Instant(track, "plan.relax", 7, {{"round", "1"}});
  std::vector<Tracer::Event> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_EQ(events[0].name, "plan.relax");
  EXPECT_EQ(events[0].ts, 7);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer::Options options;
  options.enabled = false;
  Tracer tracer(options);
  int64_t track = tracer.NewTrack("t");
  EXPECT_EQ(track, 0);
  tracer.Begin(track, "delivery", 0);
  tracer.Instant(track, "plan.relax", 1);
  tracer.End(track, 2);
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.unbalanced_ends(), 0u);
}

// Past max_events, Begin/Instant drop (and count) but End still closes
// previously recorded spans so the exported trace stays balanced.
TEST(TracerTest, EventCapDropsBeginsButKeepsEnds) {
  Tracer::Options options;
  options.max_events = 3;
  Tracer tracer(options);
  int64_t track = tracer.NewTrack("t");
  tracer.Begin(track, "a", 1);
  tracer.Begin(track, "b", 2);
  tracer.Begin(track, "c", 3);
  tracer.Begin(track, "d", 4);  // over the cap: dropped
  tracer.Instant(track, "i", 5);  // dropped
  EXPECT_EQ(tracer.event_count(), 3u);
  EXPECT_EQ(tracer.dropped_events(), 2u);
  EXPECT_EQ(tracer.OpenSpans(track), 4);
  for (int i = 0; i < 4; ++i) tracer.End(track, 6);
  EXPECT_EQ(tracer.OpenSpans(track), 0);
  EXPECT_EQ(tracer.event_count(), 7u);  // the 4 Ends bypassed the cap
  EXPECT_EQ(tracer.unbalanced_ends(), 0u);
}

TEST(TracerTest, ChromeTraceJsonNamesTracksAndEvents) {
  Tracer tracer;
  int64_t track = tracer.NewTrack("delivery content=3 site=1");
  tracer.Begin(track, "delivery", 0, {{"content", "3"}});
  tracer.Instant(track, "delivery.rejected", 4);
  tracer.End(track, 4);
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("delivery content=3 site=1"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  // Instants are thread-scoped so Perfetto draws them on the track.
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
}

}  // namespace
}  // namespace quasaq::obs

namespace quasaq::core {
namespace {

// Replays a track's B/E events as a stack. Returns false (with a
// message in *why) when an End arrives with no open span or spans stay
// open at the end of the trace.
bool CheckStackDiscipline(const std::vector<obs::Tracer::Event>& events,
                          int64_t track, std::string* why) {
  std::vector<std::string> stack;
  SimTime last_ts = 0;
  for (const obs::Tracer::Event& event : events) {
    if (event.track != track) continue;
    if (event.ts < last_ts) {
      *why = "timestamps regress on track";
      return false;
    }
    last_ts = event.ts;
    if (event.phase == 'B') {
      stack.push_back(event.name);
    } else if (event.phase == 'E') {
      if (stack.empty()) {
        *why = "E with no open span";
        return false;
      }
      stack.pop_back();
    }
  }
  if (!stack.empty()) {
    *why = "span still open at end of trace: " + stack.back();
    return false;
  }
  return true;
}

TEST(TraceGoldenTest, AdmitRenegotiateCompleteProducesNestedSpans) {
  sim::Simulator simulator;
  MediaDbSystem::Options options;
  options.kind = SystemKind::kVdbmsQuasaq;
  options.seed = 3;
  options.library.max_duration_seconds = 90.0;
  options.observability.tracing = true;
  MediaDbSystem system(&simulator, options);

  query::QosRequirement low;
  low.range.min_frame_rate = 1.0;
  low.range.max_resolution = media::kResolutionSif;
  query::QosRequirement high;
  high.range.min_resolution = media::kResolutionSvcd;
  high.range.min_color_depth_bits = 24;
  high.range.min_frame_rate = 20.0;

  MediaDbSystem::DeliveryOutcome start =
      system.SubmitDelivery(SiteId(0), LogicalOid(0), low);
  ASSERT_TRUE(start.status.ok());
  Result<MediaDbSystem::DeliveryOutcome> upgraded =
      system.ChangeSessionQos(start.session, high);
  ASSERT_TRUE(upgraded.ok()) << upgraded.status().ToString();
  simulator.RunAll();

  const obs::Tracer& tracer = system.observability().tracer();
  EXPECT_EQ(tracer.dropped_events(), 0u);
  EXPECT_EQ(tracer.unbalanced_ends(), 0u);

  std::vector<obs::Tracer::Event> events = tracer.snapshot();
  ASSERT_FALSE(events.empty());

  // Every track must balance; every phase of the session's life must
  // appear as a span somewhere in the trace.
  std::set<int64_t> tracks;
  std::set<std::string> span_names;
  for (const obs::Tracer::Event& event : events) {
    tracks.insert(event.track);
    if (event.phase == 'B') span_names.insert(event.name);
  }
  for (int64_t track : tracks) {
    std::string why;
    EXPECT_TRUE(CheckStackDiscipline(events, track, &why))
        << "track " << track << ": " << why;
  }
  for (const char* required :
       {"delivery", "delivery.admit", "plan.enumerate", "plan.reserve",
        "session.stream", "session.renegotiate"}) {
    EXPECT_TRUE(span_names.count(required))
        << "missing span: " << required;
  }

  // The admit span is a sibling of the streaming span, not its parent:
  // admission fully closes before SessionManager starts the stream.
  // Verify on the (single) delivery track by replaying depths.
  ASSERT_EQ(tracks.size(), 1u);
  int depth = 0;
  int admit_close_depth = -1;
  int stream_open_depth = -1;
  std::vector<std::string> stack;
  for (const obs::Tracer::Event& event : events) {
    if (event.phase == 'B') {
      stack.push_back(event.name);
      ++depth;
      if (event.name == "session.stream") stream_open_depth = depth;
    } else if (event.phase == 'E') {
      if (!stack.empty() && stack.back() == "delivery.admit") {
        admit_close_depth = depth;
      }
      stack.pop_back();
      --depth;
    }
  }
  EXPECT_EQ(admit_close_depth, 2);   // delivery > delivery.admit
  EXPECT_EQ(stream_open_depth, 2);   // delivery > session.stream

  // The exported JSON is loadable structure-wise: it mentions the
  // track metadata and both span phases.
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);

  // The metrics side of the snapshot reconciles with the trace: one
  // session started and completed, at least one renegotiation round.
  MediaDbSystem::ObservabilitySnapshot snapshot =
      system.TakeObservabilitySnapshot();
  EXPECT_NE(snapshot.prometheus.find("quasaq_session_started_total 1"),
            std::string::npos);
  EXPECT_NE(snapshot.prometheus.find("quasaq_session_completed_total 1"),
            std::string::npos);
  EXPECT_NE(snapshot.metrics_json.find("quasaq_plan_queries_total"),
            std::string::npos);
  EXPECT_FALSE(snapshot.trace_json.empty());
}

// Regression: renegotiating a *paused* session plans against the pool
// but must not masquerade as a fresh query — before the fix it bumped
// quasaq_plan_queries_total and opened a delivery.admit span, so every
// paused renegotiation double-counted in the admission metrics. It is
// also counted exactly once per renegotiation call, no matter how many
// relaxation rounds the planner retries internally.
TEST(TraceGoldenTest, PausedRenegotiationCountsOnceAndNotAsQuery) {
  sim::Simulator simulator;
  MediaDbSystem::Options options;
  options.kind = SystemKind::kVdbmsQuasaq;
  options.seed = 3;
  options.library.max_duration_seconds = 90.0;
  options.observability.tracing = true;
  MediaDbSystem system(&simulator, options);

  query::QosRequirement low;
  low.range.min_frame_rate = 1.0;
  low.range.max_resolution = media::kResolutionSif;

  MediaDbSystem::DeliveryOutcome start =
      system.SubmitDelivery(SiteId(0), LogicalOid(0), low);
  ASSERT_TRUE(start.status.ok());
  ASSERT_TRUE(system.PauseSession(start.session).ok());

  query::QosRequirement high;
  high.range.min_resolution = media::kResolutionSvcd;
  high.range.min_color_depth_bits = 24;
  high.range.min_frame_rate = 20.0;
  Result<MediaDbSystem::DeliveryOutcome> replanned =
      system.ChangeSessionQos(start.session, high);
  ASSERT_TRUE(replanned.ok()) << replanned.status().ToString();

  ASSERT_TRUE(system.ResumeSession(start.session).ok());
  simulator.RunAll();

  // One admission, one renegotiation — the paused replan is neither a
  // second query nor a second admit span.
  MediaDbSystem::ObservabilitySnapshot snapshot =
      system.TakeObservabilitySnapshot();
  EXPECT_NE(snapshot.prometheus.find("quasaq_plan_queries_total 1"),
            std::string::npos);
  EXPECT_NE(snapshot.prometheus.find("quasaq_plan_renegotiations_total 1"),
            std::string::npos);

  int admit_begins = 0;
  int renegotiate_begins = 0;
  for (const obs::Tracer::Event& event :
       system.observability().tracer().snapshot()) {
    if (event.phase != 'B') continue;
    if (event.name == "delivery.admit") ++admit_begins;
    if (event.name == "session.renegotiate") ++renegotiate_begins;
  }
  EXPECT_EQ(admit_begins, 1);
  EXPECT_EQ(renegotiate_begins, 1);
}

TEST(TraceGoldenTest, TracingOffByDefaultRecordsNothing) {
  sim::Simulator simulator;
  MediaDbSystem::Options options;
  options.kind = SystemKind::kVdbmsQuasaq;
  MediaDbSystem system(&simulator, options);
  query::QosRequirement qos;
  ASSERT_TRUE(
      system.SubmitDelivery(SiteId(0), LogicalOid(0), qos).status.ok());
  simulator.RunAll();
  EXPECT_EQ(system.observability().tracer().event_count(), 0u);
}

}  // namespace
}  // namespace quasaq::core
