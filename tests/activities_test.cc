#include "media/activities.h"

#include <gtest/gtest.h>

namespace quasaq::media {
namespace {

TEST(FrameDropTest, NamesAreStable) {
  EXPECT_EQ(FrameDropStrategyName(FrameDropStrategy::kNone), "no-drop");
  EXPECT_EQ(FrameDropStrategyName(FrameDropStrategy::kHalfBFrames),
            "half-B");
  EXPECT_EQ(FrameDropStrategyName(FrameDropStrategy::kAllBFrames), "all-B");
  EXPECT_EQ(FrameDropStrategyName(FrameDropStrategy::kAllBAndPFrames),
            "all-B+P");
}

TEST(FrameDropTest, NoneKeepsEverything) {
  for (FrameType type : {FrameType::kI, FrameType::kP, FrameType::kB}) {
    EXPECT_TRUE(FrameSurvivesDrop(FrameDropStrategy::kNone, type, 0));
  }
}

TEST(FrameDropTest, HalfBDropsEveryOtherB) {
  EXPECT_TRUE(
      FrameSurvivesDrop(FrameDropStrategy::kHalfBFrames, FrameType::kB, 0));
  EXPECT_FALSE(
      FrameSurvivesDrop(FrameDropStrategy::kHalfBFrames, FrameType::kB, 1));
  EXPECT_TRUE(
      FrameSurvivesDrop(FrameDropStrategy::kHalfBFrames, FrameType::kB, 2));
  EXPECT_TRUE(
      FrameSurvivesDrop(FrameDropStrategy::kHalfBFrames, FrameType::kI, 0));
  EXPECT_TRUE(
      FrameSurvivesDrop(FrameDropStrategy::kHalfBFrames, FrameType::kP, 0));
}

TEST(FrameDropTest, AllBDropsOnlyB) {
  EXPECT_FALSE(
      FrameSurvivesDrop(FrameDropStrategy::kAllBFrames, FrameType::kB, 0));
  EXPECT_TRUE(
      FrameSurvivesDrop(FrameDropStrategy::kAllBFrames, FrameType::kP, 0));
  EXPECT_TRUE(
      FrameSurvivesDrop(FrameDropStrategy::kAllBFrames, FrameType::kI, 0));
}

TEST(FrameDropTest, AllBAndPKeepsOnlyI) {
  EXPECT_FALSE(FrameSurvivesDrop(FrameDropStrategy::kAllBAndPFrames,
                                 FrameType::kB, 0));
  EXPECT_FALSE(FrameSurvivesDrop(FrameDropStrategy::kAllBAndPFrames,
                                 FrameType::kP, 0));
  EXPECT_TRUE(FrameSurvivesDrop(FrameDropStrategy::kAllBAndPFrames,
                                FrameType::kI, 0));
}

TEST(FrameDropEffectTest, StandardPatternFactors) {
  GopPattern pattern = GopPattern::Standard();
  // Weights: I=5, 4 P=12, 10 B=10; total 27.
  FrameDropEffect none = ComputeFrameDropEffect(pattern,
                                                FrameDropStrategy::kNone);
  EXPECT_DOUBLE_EQ(none.bandwidth_factor, 1.0);
  EXPECT_DOUBLE_EQ(none.frame_rate_factor, 1.0);

  FrameDropEffect all_b =
      ComputeFrameDropEffect(pattern, FrameDropStrategy::kAllBFrames);
  EXPECT_NEAR(all_b.bandwidth_factor, 17.0 / 27.0, 1e-12);
  EXPECT_NEAR(all_b.frame_rate_factor, 5.0 / 15.0, 1e-12);

  FrameDropEffect i_only =
      ComputeFrameDropEffect(pattern, FrameDropStrategy::kAllBAndPFrames);
  EXPECT_NEAR(i_only.bandwidth_factor, 5.0 / 27.0, 1e-12);
  EXPECT_NEAR(i_only.frame_rate_factor, 1.0 / 15.0, 1e-12);

  FrameDropEffect half_b =
      ComputeFrameDropEffect(pattern, FrameDropStrategy::kHalfBFrames);
  // 5 of the 10 B frames survive.
  EXPECT_NEAR(half_b.bandwidth_factor, 22.0 / 27.0, 1e-12);
  EXPECT_NEAR(half_b.frame_rate_factor, 10.0 / 15.0, 1e-12);
}

TEST(FrameDropEffectTest, FactorsAreMonotoneInAggressiveness) {
  GopPattern pattern = GopPattern::Standard();
  double previous_bw = 2.0;
  for (FrameDropStrategy strategy :
       {FrameDropStrategy::kNone, FrameDropStrategy::kHalfBFrames,
        FrameDropStrategy::kAllBFrames,
        FrameDropStrategy::kAllBAndPFrames}) {
    FrameDropEffect effect = ComputeFrameDropEffect(pattern, strategy);
    EXPECT_LT(effect.bandwidth_factor, previous_bw);
    previous_bw = effect.bandwidth_factor;
  }
}

TEST(TranscodeTest, DisallowsUpscaling) {
  AppQos dvd{kResolutionDvd, 24, 23.97, VideoFormat::kMpeg2};
  AppQos vcd{kResolutionVcd, 24, 23.97, VideoFormat::kMpeg1};
  EXPECT_TRUE(TranscodeAllowed(dvd, vcd));
  EXPECT_FALSE(TranscodeAllowed(vcd, dvd));
}

TEST(TranscodeTest, DisallowsColorAndRateUpscaling) {
  AppQos base{kResolutionVcd, 12, 15.0, VideoFormat::kMpeg1};
  AppQos deeper = base;
  deeper.color_depth_bits = 24;
  EXPECT_FALSE(TranscodeAllowed(base, deeper));
  AppQos faster = base;
  faster.frame_rate = 23.97;
  EXPECT_FALSE(TranscodeAllowed(base, faster));
}

TEST(TranscodeTest, IdentityIsNotATranscode) {
  AppQos vcd{kResolutionVcd, 24, 23.97, VideoFormat::kMpeg1};
  EXPECT_FALSE(TranscodeAllowed(vcd, vcd));
}

TEST(TranscodeTest, FormatChangeAtSameQualityIsAllowed) {
  AppQos mpeg2{kResolutionVcd, 24, 23.97, VideoFormat::kMpeg2};
  AppQos mpeg1{kResolutionVcd, 24, 23.97, VideoFormat::kMpeg1};
  EXPECT_TRUE(TranscodeAllowed(mpeg2, mpeg1));
}

TEST(TranscodeTest, CpuCostScalesWithPixelRate) {
  AppQos dvd{kResolutionDvd, 24, 23.97, VideoFormat::kMpeg2};
  AppQos vcd{kResolutionVcd, 24, 23.97, VideoFormat::kMpeg1};
  AppQos qcif{kResolutionQcif, 12, 10.0, VideoFormat::kMpeg1};
  EXPECT_GT(TranscodeCpuMsPerSecond(dvd, vcd),
            TranscodeCpuMsPerSecond(dvd, qcif) * 0.9);
  EXPECT_GT(TranscodeCpuMsPerSecond(dvd, vcd),
            TranscodeCpuMsPerSecond(vcd, qcif));
}

TEST(EncryptionTest, StrengthOrdering) {
  EXPECT_EQ(EncryptionStrength(EncryptionAlgorithm::kNone),
            SecurityLevel::kNone);
  EXPECT_EQ(EncryptionStrength(EncryptionAlgorithm::kAlgorithm1),
            SecurityLevel::kStrong);
  EXPECT_EQ(EncryptionStrength(EncryptionAlgorithm::kAlgorithm2),
            SecurityLevel::kStandard);
  EXPECT_EQ(EncryptionStrength(EncryptionAlgorithm::kAlgorithm3),
            SecurityLevel::kStandard);
}

TEST(EncryptionTest, StrongerBlockCipherCostsMore) {
  EXPECT_DOUBLE_EQ(EncryptionCpuMsPerKb(EncryptionAlgorithm::kNone), 0.0);
  EXPECT_GT(EncryptionCpuMsPerKb(EncryptionAlgorithm::kAlgorithm1),
            EncryptionCpuMsPerKb(EncryptionAlgorithm::kAlgorithm2));
  EXPECT_GT(EncryptionCpuMsPerKb(EncryptionAlgorithm::kAlgorithm2),
            EncryptionCpuMsPerKb(EncryptionAlgorithm::kAlgorithm3));
}

TEST(StreamingCpuCostTest, FrameCostGrowsWithSize) {
  StreamingCpuCost cost;
  EXPECT_GT(cost.FrameMs(10.0), cost.FrameMs(1.0));
  EXPECT_NEAR(cost.FrameMs(0.0), cost.ms_per_frame_base, 1e-12);
}

}  // namespace
}  // namespace quasaq::media
