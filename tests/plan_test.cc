#include "core/plan.h"

#include <gtest/gtest.h>

#include "media/library.h"

namespace quasaq::core {
namespace {

media::ReplicaInfo MakeReplica(int level, int site) {
  media::ReplicaInfo replica;
  replica.id = PhysicalOid(level * 10 + site);
  replica.content = LogicalOid(0);
  replica.site = SiteId(site);
  replica.qos = media::QualityLadder::Standard().levels[
      static_cast<size_t>(level)];
  replica.duration_seconds = 60.0;
  replica.frame_seed = 1;
  media::FinalizeReplicaSizing(replica);
  return replica;
}

BucketId Bucket(int site, ResourceKind kind) {
  return {SiteId(site), kind};
}

TEST(PlanTest, LocalPlanTouchesOneSiteOnly) {
  media::ReplicaInfo replica = MakeReplica(1, 0);
  Plan plan;
  plan.replica_oid = replica.id;
  plan.source_site = replica.site;
  plan.delivery_site = replica.site;
  FinalizePlan(plan, replica, PlanCostConstants{});
  EXPECT_FALSE(plan.IsRelayed());
  for (const ResourceVector::Entry& e : plan.resources.entries()) {
    EXPECT_EQ(e.bucket.site, SiteId(0));
  }
  EXPECT_NEAR(plan.resources.Get(Bucket(0, ResourceKind::kNetworkBandwidth)),
              replica.bitrate_kbps, 1e-9);
  EXPECT_NEAR(plan.resources.Get(Bucket(0, ResourceKind::kDiskBandwidth)),
              replica.bitrate_kbps, 1e-9);
  EXPECT_GT(plan.resources.Get(Bucket(0, ResourceKind::kCpu)), 0.0);
  EXPECT_GT(plan.resources.Get(Bucket(0, ResourceKind::kMemory)), 0.0);
}

TEST(PlanTest, RelayedPlanChargesBothSites) {
  media::ReplicaInfo replica = MakeReplica(1, 1);
  Plan plan;
  plan.replica_oid = replica.id;
  plan.source_site = replica.site;
  plan.delivery_site = SiteId(0);
  FinalizePlan(plan, replica, PlanCostConstants{});
  EXPECT_TRUE(plan.IsRelayed());
  // Source pays disk + transfer bandwidth + relay CPU.
  EXPECT_GT(plan.resources.Get(Bucket(1, ResourceKind::kDiskBandwidth)), 0.0);
  EXPECT_NEAR(plan.resources.Get(Bucket(1, ResourceKind::kNetworkBandwidth)),
              replica.bitrate_kbps, 1e-9);
  EXPECT_GT(plan.resources.Get(Bucket(1, ResourceKind::kCpu)), 0.0);
  // Delivery pays streaming CPU + client bandwidth + buffers.
  EXPECT_GT(plan.resources.Get(Bucket(0, ResourceKind::kCpu)),
            plan.resources.Get(Bucket(1, ResourceKind::kCpu)));
  EXPECT_NEAR(plan.resources.Get(Bucket(0, ResourceKind::kNetworkBandwidth)),
              plan.wire_rate_kbps, 1e-9);
}

TEST(PlanTest, RelayedPlanCostsMoreThanLocal) {
  media::ReplicaInfo local = MakeReplica(1, 0);
  Plan local_plan;
  local_plan.replica_oid = local.id;
  local_plan.source_site = local.site;
  local_plan.delivery_site = SiteId(0);
  FinalizePlan(local_plan, local, PlanCostConstants{});

  media::ReplicaInfo remote = MakeReplica(1, 1);
  Plan relayed;
  relayed.replica_oid = remote.id;
  relayed.source_site = remote.site;
  relayed.delivery_site = SiteId(0);
  FinalizePlan(relayed, remote, PlanCostConstants{});

  double local_total = 0.0;
  for (const auto& e : local_plan.resources.entries()) {
    local_total += e.amount;
  }
  double relayed_total = 0.0;
  for (const auto& e : relayed.resources.entries()) {
    relayed_total += e.amount;
  }
  EXPECT_GT(relayed_total, local_total);
}

TEST(PlanTest, TranscodePlanReducesWireRateButAddsCpu) {
  media::ReplicaInfo replica = MakeReplica(0, 0);  // DVD master
  Plan plain;
  plain.replica_oid = replica.id;
  plain.source_site = replica.site;
  plain.delivery_site = replica.site;
  FinalizePlan(plain, replica, PlanCostConstants{});

  Plan transcoded = plain;
  transcoded.transform.transcode_target =
      media::QualityLadder::Standard().levels[1];
  FinalizePlan(transcoded, replica, PlanCostConstants{});

  EXPECT_LT(transcoded.wire_rate_kbps, plain.wire_rate_kbps);
  EXPECT_GT(transcoded.resources.Get(Bucket(0, ResourceKind::kCpu)),
            plain.resources.Get(Bucket(0, ResourceKind::kCpu)));
  EXPECT_EQ(transcoded.delivered_qos,
            media::QualityLadder::Standard().levels[1]);
}

TEST(PlanTest, DropPlanReducesDeliveredFrameRate) {
  media::ReplicaInfo replica = MakeReplica(1, 0);
  Plan plan;
  plan.replica_oid = replica.id;
  plan.source_site = replica.site;
  plan.delivery_site = replica.site;
  plan.transform.drop = media::FrameDropStrategy::kAllBFrames;
  FinalizePlan(plan, replica, PlanCostConstants{});
  EXPECT_NEAR(plan.delivered_qos.frame_rate,
              replica.qos.frame_rate / 3.0, 1e-9);
  EXPECT_LT(plan.wire_rate_kbps, replica.bitrate_kbps);
}

TEST(PlanTest, EncryptionAddsCpuOnly) {
  media::ReplicaInfo replica = MakeReplica(1, 0);
  Plan plain;
  plain.replica_oid = replica.id;
  plain.source_site = replica.site;
  plain.delivery_site = replica.site;
  FinalizePlan(plain, replica, PlanCostConstants{});

  Plan encrypted = plain;
  encrypted.transform.encryption = media::EncryptionAlgorithm::kAlgorithm1;
  FinalizePlan(encrypted, replica, PlanCostConstants{});

  EXPECT_GT(encrypted.resources.Get(Bucket(0, ResourceKind::kCpu)),
            plain.resources.Get(Bucket(0, ResourceKind::kCpu)));
  EXPECT_DOUBLE_EQ(encrypted.wire_rate_kbps, plain.wire_rate_kbps);
}

TEST(PlanTest, ToStringDescribesActivities) {
  media::ReplicaInfo replica = MakeReplica(0, 1);
  Plan plan;
  plan.replica_oid = replica.id;
  plan.source_site = replica.site;
  plan.delivery_site = SiteId(0);
  plan.transform.drop = media::FrameDropStrategy::kHalfBFrames;
  plan.transform.transcode_target =
      media::QualityLadder::Standard().levels[1];
  plan.transform.encryption = media::EncryptionAlgorithm::kAlgorithm2;
  FinalizePlan(plan, replica, PlanCostConstants{});
  std::string s = plan.ToString();
  EXPECT_NE(s.find("@site1"), std::string::npos);
  EXPECT_NE(s.find("->site0"), std::string::npos);
  EXPECT_NE(s.find("half-B"), std::string::npos);
  EXPECT_NE(s.find("transcode"), std::string::npos);
  EXPECT_NE(s.find("enc2"), std::string::npos);
}

TEST(PlanTest, BufferScalesWithWireRate) {
  media::ReplicaInfo replica = MakeReplica(1, 0);
  Plan plan;
  plan.replica_oid = replica.id;
  plan.source_site = replica.site;
  plan.delivery_site = replica.site;
  PlanCostConstants constants;
  constants.buffer_seconds = 4.0;
  FinalizePlan(plan, replica, constants);
  EXPECT_NEAR(plan.resources.Get(Bucket(0, ResourceKind::kMemory)),
              plan.wire_rate_kbps * 4.0, 1e-9);
}

}  // namespace
}  // namespace quasaq::core
