#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace quasaq {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.max(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats stats;
  stats.Add(-3.0);
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), -3.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 3.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  RunningStats a;
  RunningStats b;
  RunningStats combined;
  for (int i = 0; i < 50; ++i) {
    double x = 0.37 * i - 3.0;
    a.Add(x);
    combined.Add(x);
  }
  for (int i = 0; i < 80; ++i) {
    double x = 1.1 * i + 2.0;
    b.Add(x);
    combined.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a;
  RunningStats empty;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats a_copy = a;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.Merge(a_copy);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

// Regression: merging an empty accumulator must be a no-op — in
// particular it must not fold the empty side's zero-initialized
// min/max into a stream whose real extremes are both above (or both
// below) zero.
TEST(RunningStatsTest, MergeEmptyDoesNotClobberExtremes) {
  RunningStats positive;
  positive.Add(5.0);
  positive.Add(9.0);
  positive.Merge(RunningStats());
  EXPECT_DOUBLE_EQ(positive.min(), 5.0);
  EXPECT_DOUBLE_EQ(positive.max(), 9.0);

  RunningStats negative;
  negative.Add(-9.0);
  negative.Add(-5.0);
  negative.Merge(RunningStats());
  EXPECT_DOUBLE_EQ(negative.min(), -9.0);
  EXPECT_DOUBLE_EQ(negative.max(), -5.0);

  RunningStats empty;
  empty.Merge(positive);
  EXPECT_DOUBLE_EQ(empty.min(), 5.0);
  EXPECT_DOUBLE_EQ(empty.max(), 9.0);
}

TEST(TimeSeriesTest, MeanOverWindow) {
  TimeSeries series;
  series.Add(0, 10.0);
  series.Add(kSecond, 20.0);
  series.Add(2 * kSecond, 30.0);
  EXPECT_DOUBLE_EQ(series.MeanOver(0, 2 * kSecond), 20.0);
  EXPECT_DOUBLE_EQ(series.MeanOver(kSecond, 2 * kSecond), 25.0);
  EXPECT_DOUBLE_EQ(series.MeanOver(3 * kSecond, 4 * kSecond), 0.0);
}

TEST(TimeSeriesTest, MeanOverEmptySeriesIsZero) {
  TimeSeries series;
  EXPECT_TRUE(series.empty());
  EXPECT_DOUBLE_EQ(series.MeanOver(0, 10 * kSecond), 0.0);
  EXPECT_DOUBLE_EQ(series.ValueAt(5 * kSecond), 0.0);
}

TEST(TimeSeriesTest, MeanOverInvertedWindowIsZero) {
  TimeSeries series;
  series.Add(kSecond, 10.0);
  series.Add(2 * kSecond, 20.0);
  EXPECT_DOUBLE_EQ(series.MeanOver(2 * kSecond, kSecond), 0.0);
}

TEST(TimeSeriesTest, MeanOverIncludesBothClosedBoundaries) {
  TimeSeries series;
  series.Add(kSecond, 10.0);
  series.Add(2 * kSecond, 20.0);
  series.Add(3 * kSecond, 30.0);
  // [from, to] is closed: samples exactly at either boundary count.
  EXPECT_DOUBLE_EQ(series.MeanOver(kSecond, 3 * kSecond), 20.0);
  EXPECT_DOUBLE_EQ(series.MeanOver(2 * kSecond, 2 * kSecond), 20.0);
  // Just inside the boundaries excludes the edge samples.
  EXPECT_DOUBLE_EQ(
      series.MeanOver(kSecond + kMicrosecond, 3 * kSecond - kMicrosecond),
      20.0);
  EXPECT_DOUBLE_EQ(series.MeanOver(0, kSecond), 10.0);
}

TEST(TimeSeriesTest, ValueAtExactSampleTime) {
  TimeSeries series;
  series.Add(kSecond, 1.0);
  series.Add(3 * kSecond, 3.0);
  // A sample exactly at the query time is "at or before" — returned.
  EXPECT_DOUBLE_EQ(series.ValueAt(3 * kSecond), 3.0);
  EXPECT_DOUBLE_EQ(series.ValueAt(3 * kSecond - kMicrosecond), 1.0);
  EXPECT_DOUBLE_EQ(series.ValueAt(kSecond - kMicrosecond), 0.0);
}

TEST(TimeSeriesTest, ValueAtReturnsLatestSampleNotAfter) {
  TimeSeries series;
  series.Add(kSecond, 1.0);
  series.Add(3 * kSecond, 3.0);
  EXPECT_DOUBLE_EQ(series.ValueAt(0), 0.0);
  EXPECT_DOUBLE_EQ(series.ValueAt(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(series.ValueAt(2 * kSecond), 1.0);
  EXPECT_DOUBLE_EQ(series.ValueAt(10 * kSecond), 3.0);
}

TEST(TimeSeriesTest, DownsampleAveragesWithinBuckets) {
  TimeSeries series;
  for (int i = 0; i < 100; ++i) {
    series.Add(i * kSecond, static_cast<double>(i));
  }
  auto buckets = series.Downsample(100 * kSecond, 10);
  ASSERT_EQ(buckets.size(), 10u);
  // First bucket covers values 0..9 -> mean 4.5.
  EXPECT_NEAR(buckets.front().value, 4.5, 1e-9);
  EXPECT_NEAR(buckets.back().value, 94.5, 1e-9);
}

TEST(TimeSeriesTest, DownsampleSkipsEmptyBuckets) {
  TimeSeries series;
  series.Add(0, 1.0);
  series.Add(99 * kSecond, 2.0);
  auto buckets = series.Downsample(100 * kSecond, 10);
  EXPECT_EQ(buckets.size(), 2u);
}

// Regression: degenerate arguments return an empty result instead of
// dividing by a zero bucket width (which asserted in debug builds and
// was undefined behavior under NDEBUG).
TEST(TimeSeriesTest, DownsampleDegenerateArgumentsReturnEmpty) {
  TimeSeries series;
  series.Add(kSecond, 1.0);
  series.Add(2 * kSecond, 2.0);
  EXPECT_TRUE(series.Downsample(100 * kSecond, 0).empty());
  EXPECT_TRUE(series.Downsample(0, 10).empty());
  EXPECT_TRUE(series.Downsample(-kSecond, 10).empty());
}

TEST(WindowedRateTest, CountsEventsPerWindow) {
  WindowedRate rate(kMinute);
  rate.AddEvent(0);
  rate.AddEvent(30 * kSecond);
  rate.AddEvent(61 * kSecond);
  rate.AddEvent(200 * kSecond);  // beyond the horizon below
  auto rows = rate.Rates(2 * kMinute);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].value, 2.0);
  EXPECT_DOUBLE_EQ(rows[1].value, 1.0);
  EXPECT_EQ(rate.total_events(), 4u);
}

TEST(WindowedRateTest, OutOfOrderEventsAreAccepted) {
  WindowedRate rate(kSecond);
  rate.AddEvent(5 * kSecond);
  rate.AddEvent(kSecond);
  auto rows = rate.Rates(6 * kSecond);
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_DOUBLE_EQ(rows[1].value, 1.0);
  EXPECT_DOUBLE_EQ(rows[5].value, 1.0);
}

TEST(FormatStatsRowTest, ContainsLabelAndNumbers) {
  RunningStats stats;
  stats.Add(1.0);
  stats.Add(3.0);
  std::string row = FormatStatsRow("test-metric", stats);
  EXPECT_NE(row.find("test-metric"), std::string::npos);
  EXPECT_NE(row.find("2.00"), std::string::npos);
  EXPECT_NE(row.find("n=2"), std::string::npos);
}

}  // namespace
}  // namespace quasaq
