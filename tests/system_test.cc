#include "core/system.h"

#include <gtest/gtest.h>

namespace quasaq::core {
namespace {

class SystemTest : public ::testing::Test {
 protected:
  MediaDbSystem::Options BaseOptions(SystemKind kind) {
    MediaDbSystem::Options options;
    options.kind = kind;
    options.seed = 3;
    options.library.max_duration_seconds = 90.0;
    return options;
  }

  query::QosRequirement WideQos() {
    query::QosRequirement qos;
    qos.range.min_frame_rate = 1.0;
    return qos;
  }
};

TEST_F(SystemTest, KindNames) {
  EXPECT_EQ(SystemKindName(SystemKind::kVdbms), "VDBMS");
  EXPECT_EQ(SystemKindName(SystemKind::kVdbmsQosApi), "VDBMS+QoSAPI");
  EXPECT_EQ(SystemKindName(SystemKind::kVdbmsQuasaq), "VDBMS+QuaSAQ");
}

TEST_F(SystemTest, VdbmsAdmitsEverything) {
  sim::Simulator simulator;
  MediaDbSystem system(&simulator, BaseOptions(SystemKind::kVdbms));
  for (int i = 0; i < 100; ++i) {
    MediaDbSystem::DeliveryOutcome outcome = system.SubmitDelivery(
        SiteId(i % 3), LogicalOid(i % 15), WideQos());
    EXPECT_TRUE(outcome.status.ok());
    // VDBMS ignores QoS and serves the master quality.
    EXPECT_EQ(outcome.delivered_qos,
              media::QualityLadder::Standard().levels[0]);
  }
  EXPECT_EQ(system.outstanding_sessions(), 100);
  EXPECT_EQ(system.stats().rejected, 0u);
}

TEST_F(SystemTest, VdbmsSessionsCompleteAfterStretchedDuration) {
  sim::Simulator simulator;
  MediaDbSystem system(&simulator, BaseOptions(SystemKind::kVdbms));
  int completions = 0;
  system.set_on_session_complete(
      [&completions](SessionId, SimTime) { ++completions; });
  ASSERT_TRUE(
      system.SubmitDelivery(SiteId(0), LogicalOid(0), WideQos()).status.ok());
  simulator.RunAll();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(system.outstanding_sessions(), 0);
  EXPECT_EQ(system.stats().completed, 1u);
}

TEST_F(SystemTest, VdbmsOversubscriptionStretchesSessions) {
  sim::Simulator simulator;
  MediaDbSystem::Options options = BaseOptions(SystemKind::kVdbms);
  options.vdbms_max_stretch = 3.0;
  MediaDbSystem system(&simulator, options);
  // Pile enough DVD-rate sessions on one site to oversubscribe its
  // 3200 KB/s link (each master stream is ~300 KB/s).
  std::vector<SimTime> completions;
  system.set_on_session_complete(
      [&](SessionId, SimTime t) { completions.push_back(t); });
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(system
                    .SubmitDelivery(SiteId(0), LogicalOid(i % 15), WideQos())
                    .status.ok());
  }
  simulator.RunAll();
  ASSERT_EQ(completions.size(), 30u);
  // The last-admitted sessions saw demand ratio > 2 and must have been
  // stretched: completion beyond any raw video duration (<= 90 s).
  EXPECT_GT(completions.back(), SecondsToSimTime(90.0));
}

TEST_F(SystemTest, QosApiEnforcesAdmission) {
  sim::Simulator simulator;
  MediaDbSystem system(&simulator, BaseOptions(SystemKind::kVdbmsQosApi));
  int admitted = 0;
  int rejected = 0;
  for (int i = 0; i < 60; ++i) {
    MediaDbSystem::DeliveryOutcome outcome =
        system.SubmitDelivery(SiteId(0), LogicalOid(i % 15), WideQos());
    outcome.status.ok() ? ++admitted : ++rejected;
  }
  // One 3200 KB/s link serves ~10 master-rate (~300 KB/s) streams.
  EXPECT_GT(admitted, 5);
  EXPECT_LT(admitted, 15);
  EXPECT_GT(rejected, 0);
  EXPECT_GT(system.pool().Utilization(
                {SiteId(0), ResourceKind::kNetworkBandwidth}),
            0.85);
}

TEST_F(SystemTest, QosApiReleasesOnCompletion) {
  sim::Simulator simulator;
  MediaDbSystem system(&simulator, BaseOptions(SystemKind::kVdbmsQosApi));
  ASSERT_TRUE(
      system.SubmitDelivery(SiteId(0), LogicalOid(0), WideQos()).status.ok());
  EXPECT_GT(system.pool().MaxUtilization(), 0.0);
  simulator.RunAll();
  EXPECT_DOUBLE_EQ(system.pool().MaxUtilization(), 0.0);
}

TEST_F(SystemTest, QuasaqUsesQualityManager) {
  sim::Simulator simulator;
  MediaDbSystem system(&simulator, BaseOptions(SystemKind::kVdbmsQuasaq));
  ASSERT_NE(system.quality_manager(), nullptr);
  MediaDbSystem::DeliveryOutcome outcome =
      system.SubmitDelivery(SiteId(0), LogicalOid(0), WideQos());
  ASSERT_TRUE(outcome.status.ok());
  // LRB at wide-open QoS picks a low-rate replica, not the master.
  EXPECT_LT(outcome.wire_rate_kbps, 100.0);
  EXPECT_EQ(system.quality_manager()->stats().admitted, 1u);
}

TEST_F(SystemTest, QuasaqOutlastsQosApiUnderLoad) {
  sim::Simulator sim_a;
  sim::Simulator sim_b;
  MediaDbSystem qosapi(&sim_a, BaseOptions(SystemKind::kVdbmsQosApi));
  MediaDbSystem quasaq(&sim_b, BaseOptions(SystemKind::kVdbmsQuasaq));
  int qosapi_admitted = 0;
  int quasaq_admitted = 0;
  for (int i = 0; i < 120; ++i) {
    SiteId site(i % 3);
    LogicalOid video(i % 15);
    if (qosapi.SubmitDelivery(site, video, WideQos()).status.ok()) {
      ++qosapi_admitted;
    }
    if (quasaq.SubmitDelivery(site, video, WideQos()).status.ok()) {
      ++quasaq_admitted;
    }
  }
  EXPECT_GT(quasaq_admitted, qosapi_admitted);
}

TEST_F(SystemTest, CancelSessionFreesResources) {
  sim::Simulator simulator;
  MediaDbSystem system(&simulator, BaseOptions(SystemKind::kVdbmsQuasaq));
  MediaDbSystem::DeliveryOutcome outcome =
      system.SubmitDelivery(SiteId(0), LogicalOid(0), WideQos());
  ASSERT_TRUE(outcome.status.ok());
  ASSERT_TRUE(system.CancelSession(outcome.session).ok());
  EXPECT_EQ(system.outstanding_sessions(), 0);
  EXPECT_DOUBLE_EQ(system.pool().MaxUtilization(), 0.0);
  // The pending completion event must be a no-op.
  simulator.RunAll();
  EXPECT_EQ(system.stats().completed, 0u);
  EXPECT_EQ(system.CancelSession(outcome.session).code(),
            StatusCode::kNotFound);
}

TEST_F(SystemTest, ResolveContentByKeyword) {
  sim::Simulator simulator;
  MediaDbSystem system(&simulator, BaseOptions(SystemKind::kVdbmsQuasaq));
  query::ParsedQuery parsed;
  parsed.content.keywords = {system.library().contents[0].keywords[0]};
  std::vector<LogicalOid> matches = system.ResolveContent(parsed);
  ASSERT_FALSE(matches.empty());
}

TEST_F(SystemTest, TextQueryEndToEnd) {
  sim::Simulator simulator;
  MediaDbSystem system(&simulator, BaseOptions(SystemKind::kVdbmsQuasaq));
  const std::string keyword = system.library().contents[0].keywords[0];
  std::string text = "SELECT video FROM videos WHERE CONTAINS('" + keyword +
                     "') WITH QOS (framerate >= 5)";
  Result<MediaDbSystem::TextQueryOutcome> outcome =
      system.SubmitTextQuery(SiteId(0), text);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->delivery.status.ok());
}

TEST_F(SystemTest, TextQueryParseErrorPropagates) {
  sim::Simulator simulator;
  MediaDbSystem system(&simulator, BaseOptions(SystemKind::kVdbmsQuasaq));
  Result<MediaDbSystem::TextQueryOutcome> outcome =
      system.SubmitTextQuery(SiteId(0), "FROBNICATE the database");
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SystemTest, TextQueryNoMatchIsNotFound) {
  sim::Simulator simulator;
  MediaDbSystem system(&simulator, BaseOptions(SystemKind::kVdbmsQuasaq));
  Result<MediaDbSystem::TextQueryOutcome> outcome = system.SubmitTextQuery(
      SiteId(0), "SELECT video FROM videos WHERE CONTAINS('unobtainium')");
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);
}

TEST_F(SystemTest, SecureQueryGetsEncryptedPlan) {
  sim::Simulator simulator;
  MediaDbSystem system(&simulator, BaseOptions(SystemKind::kVdbmsQuasaq));
  query::QosRequirement qos = WideQos();
  qos.min_security = media::SecurityLevel::kStrong;
  MediaDbSystem::DeliveryOutcome outcome =
      system.SubmitDelivery(SiteId(0), LogicalOid(0), qos);
  ASSERT_TRUE(outcome.status.ok());
}

}  // namespace
}  // namespace quasaq::core
