#include "workload/traffic.h"

#include <set>

#include <gtest/gtest.h>

namespace quasaq::workload {
namespace {

std::vector<SiteId> ThreeSites() {
  return {SiteId(0), SiteId(1), SiteId(2)};
}

TEST(TrafficGeneratorTest, GapsFollowExponentialMean) {
  TrafficOptions options;
  options.mean_interarrival_seconds = 1.0;
  TrafficGenerator generator(options, 15, ThreeSites());
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += generator.NextGapSeconds();
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(TrafficGeneratorTest, VideosCoverTheWholeLibrary) {
  TrafficGenerator generator(TrafficOptions(), 15, ThreeSites());
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    QuerySpec spec = generator.Next();
    ASSERT_GE(spec.content.value(), 0);
    ASSERT_LT(spec.content.value(), 15);
    seen.insert(spec.content.value());
  }
  EXPECT_EQ(seen.size(), 15u);
}

TEST(TrafficGeneratorTest, UniformAccessIsRoughlyBalanced) {
  TrafficGenerator generator(TrafficOptions(), 5, ThreeSites());
  std::vector<int> counts(5, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<size_t>(generator.Next().content.value())];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.03);
  }
}

TEST(TrafficGeneratorTest, ZipfSkewsTowardFirstVideos) {
  TrafficOptions options;
  options.video_zipf_s = 1.2;
  TrafficGenerator generator(options, 10, ThreeSites());
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[static_cast<size_t>(generator.Next().content.value())];
  }
  EXPECT_GT(counts[0], counts[9] * 2);
}

TEST(TrafficGeneratorTest, ClientSitesCoverAllSites) {
  TrafficGenerator generator(TrafficOptions(), 15, ThreeSites());
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(generator.Next().client_site.value());
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(TrafficGeneratorTest, QosRangesAreAlwaysValid) {
  TrafficGenerator generator(TrafficOptions(), 15, ThreeSites());
  for (int i = 0; i < 2000; ++i) {
    QuerySpec spec = generator.Next();
    const media::AppQosRange& range = spec.qos.range;
    EXPECT_LE(range.min_resolution.PixelCount(),
              range.max_resolution.PixelCount());
    EXPECT_LE(range.min_frame_rate, range.max_frame_rate);
    EXPECT_LE(range.min_color_depth_bits, range.max_color_depth_bits);
    EXPECT_NE(range.accepted_formats, 0u);
  }
}

TEST(TrafficGeneratorTest, AllQopLevelsAppear) {
  TrafficGenerator generator(TrafficOptions(), 15, ThreeSites());
  std::set<int> spatial_levels;
  for (int i = 0; i < 500; ++i) {
    spatial_levels.insert(static_cast<int>(generator.Next().qop.spatial));
  }
  EXPECT_EQ(spatial_levels.size(), 3u);
}

TEST(TrafficGeneratorTest, NoSecurityByDefault) {
  TrafficGenerator generator(TrafficOptions(), 15, ThreeSites());
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(generator.Next().qos.min_security,
              media::SecurityLevel::kNone);
  }
}

TEST(TrafficGeneratorTest, SecureFractionProducesSecureQueries) {
  TrafficOptions options;
  options.fraction_secure = 0.5;
  TrafficGenerator generator(options, 15, ThreeSites());
  int secure = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (generator.Next().qos.min_security != media::SecurityLevel::kNone) {
      ++secure;
    }
  }
  EXPECT_NEAR(static_cast<double>(secure) / n, 0.5, 0.05);
}

TEST(TrafficGeneratorTest, DeterministicForSeed) {
  TrafficGenerator a(TrafficOptions(), 15, ThreeSites());
  TrafficGenerator b(TrafficOptions(), 15, ThreeSites());
  for (int i = 0; i < 100; ++i) {
    QuerySpec sa = a.Next();
    QuerySpec sb = b.Next();
    EXPECT_EQ(sa.content, sb.content);
    EXPECT_EQ(sa.client_site, sb.client_site);
    EXPECT_EQ(static_cast<int>(sa.qop.spatial),
              static_cast<int>(sb.qop.spatial));
    EXPECT_DOUBLE_EQ(a.NextGapSeconds(), b.NextGapSeconds());
  }
}

}  // namespace
}  // namespace quasaq::workload
