#include "simcore/fluid.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/sim_time.h"

namespace quasaq::sim {
namespace {

TEST(FluidServerTest, SingleFlowCompletesAtWorkOverRate) {
  Simulator simulator;
  FluidServer server(&simulator, 1000.0);
  SimTime completed_at = -1;
  server.AddFlow(100.0, 50.0, [&](FlowId) { completed_at = simulator.Now(); });
  simulator.RunAll();
  // 100 units at a 50/s cap on a 1000/s server -> 2 seconds.
  EXPECT_EQ(completed_at, 2 * kSecond);
}

TEST(FluidServerTest, UncappedFlowUsesFullCapacity) {
  Simulator simulator;
  FluidServer server(&simulator, 100.0);
  SimTime completed_at = -1;
  server.AddFlow(100.0, 1e9, [&](FlowId) { completed_at = simulator.Now(); });
  simulator.RunAll();
  EXPECT_EQ(completed_at, kSecond);
}

TEST(FluidServerTest, TwoEqualFlowsShareCapacity) {
  Simulator simulator;
  FluidServer server(&simulator, 100.0);
  std::vector<SimTime> completions;
  for (int i = 0; i < 2; ++i) {
    server.AddFlow(100.0, 1e9,
                   [&](FlowId) { completions.push_back(simulator.Now()); });
  }
  simulator.RunAll();
  ASSERT_EQ(completions.size(), 2u);
  // Each gets 50/s -> both finish at 2 s.
  EXPECT_EQ(completions[0], 2 * kSecond);
  EXPECT_EQ(completions[1], 2 * kSecond);
}

TEST(FluidServerTest, MaxMinFairnessRespectsCaps) {
  Simulator simulator;
  FluidServer server(&simulator, 100.0);
  // One flow capped at 10/s, one uncapped: rates should be 10 and 90.
  FlowId small = server.AddFlow(1000.0, 10.0, nullptr);
  FlowId big = server.AddFlow(1000.0, 1e9, nullptr);
  EXPECT_NEAR(server.CurrentRate(small), 10.0, 1e-9);
  EXPECT_NEAR(server.CurrentRate(big), 90.0, 1e-9);
}

TEST(FluidServerTest, RatesRecomputeOnDeparture) {
  Simulator simulator;
  FluidServer server(&simulator, 100.0);
  FlowId a = server.AddFlow(1000.0, 1e9, nullptr);
  FlowId b = server.AddFlow(1000.0, 1e9, nullptr);
  EXPECT_NEAR(server.CurrentRate(a), 50.0, 1e-9);
  EXPECT_TRUE(server.RemoveFlow(b));
  EXPECT_NEAR(server.CurrentRate(a), 100.0, 1e-9);
}

TEST(FluidServerTest, DepartureAccelerartesRemainingFlow) {
  Simulator simulator;
  FluidServer server(&simulator, 100.0);
  SimTime slow_done = -1;
  // Short flow finishes at t=1s (50/s each); long flow then speeds up.
  server.AddFlow(50.0, 1e9, nullptr);
  server.AddFlow(150.0, 1e9,
                 [&](FlowId) { slow_done = simulator.Now(); });
  simulator.RunAll();
  // Long flow: 50 units in the first second, the remaining 100 at 100/s.
  EXPECT_EQ(slow_done, 2 * kSecond);
}

TEST(FluidServerTest, RemainingWorkTracksProgress) {
  Simulator simulator;
  FluidServer server(&simulator, 100.0);
  FlowId id = server.AddFlow(100.0, 1e9, nullptr);
  simulator.RunUntil(kSecond / 2);
  EXPECT_NEAR(server.RemainingWork(id), 50.0, 1e-6);
}

TEST(FluidServerTest, UtilizationReflectsAllocatedRates) {
  Simulator simulator;
  FluidServer server(&simulator, 100.0);
  EXPECT_DOUBLE_EQ(server.utilization(), 0.0);
  server.AddFlow(1000.0, 30.0, nullptr);
  EXPECT_NEAR(server.utilization(), 0.3, 1e-9);
  server.AddFlow(1000.0, 1e9, nullptr);
  EXPECT_NEAR(server.utilization(), 1.0, 1e-9);
}

TEST(FluidServerTest, RemoveUnknownFlowFails) {
  Simulator simulator;
  FluidServer server(&simulator, 100.0);
  EXPECT_FALSE(server.RemoveFlow(42));
}

TEST(FluidServerTest, RemovedFlowNeverCompletes) {
  Simulator simulator;
  FluidServer server(&simulator, 100.0);
  bool completed = false;
  FlowId id = server.AddFlow(100.0, 1e9, [&](FlowId) { completed = true; });
  EXPECT_TRUE(server.RemoveFlow(id));
  simulator.RunAll();
  EXPECT_FALSE(completed);
  EXPECT_EQ(server.active_flows(), 0u);
}

TEST(FluidServerTest, ManyFlowsAllComplete) {
  Simulator simulator;
  FluidServer server(&simulator, 1000.0);
  int completions = 0;
  for (int i = 0; i < 50; ++i) {
    server.AddFlow(10.0 + i, 20.0, [&](FlowId) { ++completions; });
  }
  simulator.RunAll();
  EXPECT_EQ(completions, 50);
  EXPECT_EQ(server.active_flows(), 0u);
}

TEST(FluidServerTest, OversubscribedFlowsFinishLate) {
  Simulator simulator;
  FluidServer server(&simulator, 100.0);
  // 10 flows each wanting 20/s on a 100/s link: each gets 10/s.
  std::vector<SimTime> completions;
  for (int i = 0; i < 10; ++i) {
    server.AddFlow(100.0, 20.0,
                   [&](FlowId) { completions.push_back(simulator.Now()); });
  }
  simulator.RunAll();
  ASSERT_EQ(completions.size(), 10u);
  // At full rate they would finish in 5 s; shared, in 10 s.
  EXPECT_EQ(completions.back(), 10 * kSecond);
}

}  // namespace
}  // namespace quasaq::sim
