// Mid-playback renegotiation (paper §3.2's first scenario: the user
// modifies QoS during playback and the system renegotiates).

#include <gtest/gtest.h>

#include "core/system.h"

namespace quasaq::core {
namespace {

class MidPlaybackRenegotiationTest : public ::testing::Test {
 protected:
  MidPlaybackRenegotiationTest() {
    MediaDbSystem::Options options;
    options.kind = SystemKind::kVdbmsQuasaq;
    options.seed = 3;
    options.library.max_duration_seconds = 90.0;
    system_ = std::make_unique<MediaDbSystem>(&simulator_, options);
  }

  query::QosRequirement LowQos() {
    query::QosRequirement qos;
    qos.range.min_frame_rate = 1.0;
    qos.range.max_resolution = media::kResolutionSif;
    return qos;
  }

  query::QosRequirement HighQos() {
    query::QosRequirement qos;
    qos.range.min_resolution = media::kResolutionSvcd;
    qos.range.min_color_depth_bits = 24;
    qos.range.min_frame_rate = 20.0;
    return qos;
  }

  sim::Simulator simulator_;
  std::unique_ptr<MediaDbSystem> system_;
};

TEST_F(MidPlaybackRenegotiationTest, UpgradeQualityMidPlayback) {
  MediaDbSystem::DeliveryOutcome start =
      system_->SubmitDelivery(SiteId(0), LogicalOid(0), LowQos());
  ASSERT_TRUE(start.status.ok());
  double low_rate = start.wire_rate_kbps;

  Result<MediaDbSystem::DeliveryOutcome> upgraded =
      system_->ChangeSessionQos(start.session, HighQos());
  ASSERT_TRUE(upgraded.ok()) << upgraded.status().ToString();
  EXPECT_TRUE(upgraded->renegotiated);
  EXPECT_GT(upgraded->wire_rate_kbps, low_rate);
  EXPECT_GE(upgraded->delivered_qos.resolution.PixelCount(),
            media::kResolutionSvcd.PixelCount());
}

TEST_F(MidPlaybackRenegotiationTest, DowngradeReleasesResources) {
  MediaDbSystem::DeliveryOutcome start =
      system_->SubmitDelivery(SiteId(0), LogicalOid(0), HighQos());
  ASSERT_TRUE(start.status.ok());
  double before = system_->pool().MaxUtilization();

  Result<MediaDbSystem::DeliveryOutcome> downgraded =
      system_->ChangeSessionQos(start.session, LowQos());
  ASSERT_TRUE(downgraded.ok());
  EXPECT_LT(downgraded->wire_rate_kbps, start.wire_rate_kbps);
  EXPECT_LT(system_->pool().MaxUtilization(), before);
}

TEST_F(MidPlaybackRenegotiationTest, SessionStillCompletesOnce) {
  MediaDbSystem::DeliveryOutcome start =
      system_->SubmitDelivery(SiteId(0), LogicalOid(0), LowQos());
  ASSERT_TRUE(start.status.ok());
  ASSERT_TRUE(system_->ChangeSessionQos(start.session, HighQos()).ok());
  int completions = 0;
  system_->set_on_session_complete(
      [&completions](SessionId, SimTime) { ++completions; });
  simulator_.RunAll();
  EXPECT_EQ(completions, 1);
  EXPECT_DOUBLE_EQ(system_->pool().MaxUtilization(), 0.0);
}

TEST_F(MidPlaybackRenegotiationTest, UnknownSessionIsNotFound) {
  Result<MediaDbSystem::DeliveryOutcome> outcome =
      system_->ChangeSessionQos(SessionId(999), LowQos());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);
}

TEST_F(MidPlaybackRenegotiationTest, UnsatisfiableChangeKeepsOldPlan) {
  MediaDbSystem::DeliveryOutcome start =
      system_->SubmitDelivery(SiteId(0), LogicalOid(0), LowQos());
  ASSERT_TRUE(start.status.ok());
  double before = system_->pool().MaxUtilization();
  query::QosRequirement impossible;
  impossible.range.min_frame_rate = 60.0;
  Result<MediaDbSystem::DeliveryOutcome> outcome =
      system_->ChangeSessionQos(start.session, impossible);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);
  // Old reservation untouched.
  EXPECT_DOUBLE_EQ(system_->pool().MaxUtilization(), before);
}

TEST_F(MidPlaybackRenegotiationTest, UpgradeFailsWhenSystemIsFull) {
  MediaDbSystem::DeliveryOutcome start =
      system_->SubmitDelivery(SiteId(0), LogicalOid(0), LowQos());
  ASSERT_TRUE(start.status.ok());
  // Saturate all outbound links with high-rate sessions.
  for (int i = 0; i < 200; ++i) {
    system_->SubmitDelivery(SiteId(i % 3), LogicalOid(i % 15), HighQos());
  }
  Result<MediaDbSystem::DeliveryOutcome> outcome =
      system_->ChangeSessionQos(start.session, HighQos());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kResourceExhausted);
}

TEST(RenegotiationOnVdbmsTest, RequiresQuasaq) {
  sim::Simulator simulator;
  MediaDbSystem::Options options;
  options.kind = SystemKind::kVdbms;
  MediaDbSystem system(&simulator, options);
  query::QosRequirement qos;
  MediaDbSystem::DeliveryOutcome start =
      system.SubmitDelivery(SiteId(0), LogicalOid(0), qos);
  ASSERT_TRUE(start.status.ok());
  Result<MediaDbSystem::DeliveryOutcome> outcome =
      system.ChangeSessionQos(start.session, qos);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace quasaq::core
