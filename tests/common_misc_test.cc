// Small common-library pieces: simulated-time conversions, typed ids,
// and logging level gating.

#include <gtest/gtest.h>

#include "common/ids.h"
#include "common/logging.h"
#include "common/sim_time.h"

namespace quasaq {
namespace {

TEST(SimTimeTest, UnitRelations) {
  EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMinute, 60 * kSecond);
}

TEST(SimTimeTest, SecondsRoundTrip) {
  EXPECT_EQ(SecondsToSimTime(1.5), 1500 * kMillisecond);
  EXPECT_DOUBLE_EQ(SimTimeToSeconds(2 * kSecond + 500 * kMillisecond), 2.5);
  EXPECT_DOUBLE_EQ(SimTimeToSeconds(SecondsToSimTime(0.123456)), 0.123456);
}

TEST(SimTimeTest, MillisRoundingIsNearest) {
  EXPECT_EQ(MillisToSimTime(0.0004), 0);
  EXPECT_EQ(MillisToSimTime(0.0006), 1);
  EXPECT_DOUBLE_EQ(SimTimeToMillis(41720), 41.72);
}

TEST(TypedIdTest, DefaultIsInvalid) {
  LogicalOid id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), -1);
  EXPECT_TRUE(LogicalOid(0).valid());
}

TEST(TypedIdTest, ComparisonAndHash) {
  EXPECT_EQ(SiteId(2), SiteId(2));
  EXPECT_NE(SiteId(2), SiteId(3));
  EXPECT_LT(SiteId(2), SiteId(3));
  std::hash<SessionId> hasher;
  EXPECT_EQ(hasher(SessionId(5)), hasher(SessionId(5)));
}

TEST(TypedIdTest, DistinctTagTypesDoNotMix) {
  // Compile-time property: LogicalOid and PhysicalOid are different
  // types even with identical values.
  static_assert(!std::is_same_v<LogicalOid, PhysicalOid>);
  static_assert(!std::is_same_v<SiteId, SessionId>);
  SUCCEED();
}

TEST(LoggingTest, LevelGetSetRoundTrip) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Messages below the level are cheap no-ops; this must not crash or
  // emit (visually verified by quiet test output).
  QUASAQ_LOG(kDebug) << "suppressed " << 42;
  QUASAQ_LOG(kInfo) << "also suppressed";
  SetLogLevel(old_level);
}

TEST(LoggingTest, StreamsArbitraryTypes) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  QUASAQ_LOG(kWarning) << "x=" << 1.5 << " s=" << std::string("abc")
                       << " b=" << true;
  SetLogLevel(old_level);
  SUCCEED();
}

}  // namespace
}  // namespace quasaq
