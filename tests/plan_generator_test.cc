#include "core/plan_generator.h"

#include <gtest/gtest.h>

#include "media/library.h"

namespace quasaq::core {
namespace {

media::VideoContent MakeContent(int64_t oid) {
  media::VideoContent content;
  content.id = LogicalOid(oid);
  content.title = "video" + std::to_string(oid);
  content.duration_seconds = 60.0;
  content.master_quality = media::QualityLadder::Standard().levels[0];
  return content;
}

media::ReplicaInfo MakeReplica(int64_t oid, int64_t content, int site,
                               int level) {
  media::ReplicaInfo replica;
  replica.id = PhysicalOid(oid);
  replica.content = LogicalOid(content);
  replica.site = SiteId(site);
  replica.qos =
      media::QualityLadder::Standard().levels[static_cast<size_t>(level)];
  replica.duration_seconds = 60.0;
  replica.frame_seed = static_cast<uint64_t>(oid);
  media::FinalizeReplicaSizing(replica);
  return replica;
}

class PlanGeneratorTest : public ::testing::Test {
 protected:
  PlanGeneratorTest()
      : sites_({SiteId(0), SiteId(1)}),
        metadata_(sites_, meta::DistributedMetadataEngine::Options()) {
    EXPECT_TRUE(metadata_.InsertContent(MakeContent(0)).ok());
    // DVD master at both sites; VCD copy at site 0 only.
    EXPECT_TRUE(metadata_.InsertReplica(MakeReplica(0, 0, 0, 0)).ok());
    EXPECT_TRUE(metadata_.InsertReplica(MakeReplica(1, 0, 1, 0)).ok());
    EXPECT_TRUE(metadata_.InsertReplica(MakeReplica(2, 0, 0, 1)).ok());
  }

  PlanGenerator MakeGenerator(PlanGenerator::Options options = {}) {
    return PlanGenerator(&metadata_, sites_, options);
  }

  std::vector<SiteId> sites_;
  meta::DistributedMetadataEngine metadata_;
};

TEST_F(PlanGeneratorTest, UnknownContentIsNotFound) {
  PlanGenerator generator = MakeGenerator();
  Result<std::vector<Plan>> plans =
      generator.Generate(SiteId(0), LogicalOid(9), query::QosRequirement{});
  ASSERT_FALSE(plans.ok());
  EXPECT_EQ(plans.status().code(), StatusCode::kNotFound);
}

TEST_F(PlanGeneratorTest, EveryPlanSatisfiesTheQosBounds) {
  PlanGenerator generator = MakeGenerator();
  query::QosRequirement qos;
  qos.range.min_resolution = media::kResolutionVcd;
  qos.range.min_frame_rate = 15.0;
  Result<std::vector<Plan>> plans =
      generator.Generate(SiteId(0), LogicalOid(0), qos);
  ASSERT_TRUE(plans.ok());
  ASSERT_FALSE(plans->empty());
  for (const Plan& plan : *plans) {
    EXPECT_TRUE(qos.SatisfiedBy(plan.delivered_qos,
                                plan.transform.encryption))
        << plan.ToString();
  }
}

TEST_F(PlanGeneratorTest, NoEncryptionWhenSecurityNotRequested) {
  PlanGenerator generator = MakeGenerator();
  query::QosRequirement qos;  // security none
  qos.range.min_frame_rate = 1.0;
  Result<std::vector<Plan>> plans =
      generator.Generate(SiteId(0), LogicalOid(0), qos);
  ASSERT_TRUE(plans.ok());
  for (const Plan& plan : *plans) {
    EXPECT_EQ(plan.transform.encryption, media::EncryptionAlgorithm::kNone)
        << "encrypting an unprotected stream wastes CPU: "
        << plan.ToString();
  }
}

TEST_F(PlanGeneratorTest, StrongSecurityLimitsAlgorithms) {
  PlanGenerator generator = MakeGenerator();
  query::QosRequirement qos;
  qos.min_security = media::SecurityLevel::kStrong;
  qos.range.min_frame_rate = 1.0;
  Result<std::vector<Plan>> plans =
      generator.Generate(SiteId(0), LogicalOid(0), qos);
  ASSERT_TRUE(plans.ok());
  ASSERT_FALSE(plans->empty());
  for (const Plan& plan : *plans) {
    EXPECT_EQ(plan.transform.encryption,
              media::EncryptionAlgorithm::kAlgorithm1);
  }
}

TEST_F(PlanGeneratorTest, StandardSecurityAllowsThreeAlgorithms) {
  PlanGenerator generator = MakeGenerator();
  query::QosRequirement qos;
  qos.min_security = media::SecurityLevel::kStandard;
  qos.range.min_frame_rate = 1.0;
  Result<std::vector<Plan>> plans =
      generator.Generate(SiteId(0), LogicalOid(0), qos);
  ASSERT_TRUE(plans.ok());
  bool saw1 = false;
  bool saw2 = false;
  bool saw3 = false;
  for (const Plan& plan : *plans) {
    EXPECT_NE(plan.transform.encryption, media::EncryptionAlgorithm::kNone);
    saw1 |= plan.transform.encryption ==
            media::EncryptionAlgorithm::kAlgorithm1;
    saw2 |= plan.transform.encryption ==
            media::EncryptionAlgorithm::kAlgorithm2;
    saw3 |= plan.transform.encryption ==
            media::EncryptionAlgorithm::kAlgorithm3;
  }
  EXPECT_TRUE(saw1);
  EXPECT_TRUE(saw2);
  EXPECT_TRUE(saw3);
}

TEST_F(PlanGeneratorTest, NoUpTranscodingEverAppears) {
  PlanGenerator generator = MakeGenerator();
  query::QosRequirement qos;
  qos.range.min_frame_rate = 1.0;
  Result<std::vector<Plan>> plans =
      generator.Generate(SiteId(0), LogicalOid(0), qos);
  ASSERT_TRUE(plans.ok());
  for (const Plan& plan : *plans) {
    if (!plan.transform.transcode_target.has_value()) continue;
    // Find the source replica quality from its OID.
    media::AppQos source =
        plan.replica_oid == PhysicalOid(2)
            ? media::QualityLadder::Standard().levels[1]
            : media::QualityLadder::Standard().levels[0];
    EXPECT_TRUE(
        media::TranscodeAllowed(source, *plan.transform.transcode_target))
        << plan.ToString();
  }
}

TEST_F(PlanGeneratorTest, RelayDisabledKeepsDeliveryAtSource) {
  PlanGenerator::Options options;
  options.enable_relay = false;
  PlanGenerator generator = MakeGenerator(options);
  query::QosRequirement qos;
  qos.range.min_frame_rate = 1.0;
  Result<std::vector<Plan>> plans =
      generator.Generate(SiteId(0), LogicalOid(0), qos);
  ASSERT_TRUE(plans.ok());
  for (const Plan& plan : *plans) {
    EXPECT_FALSE(plan.IsRelayed());
  }
}

TEST_F(PlanGeneratorTest, DisablingActivitiesShrinksSpace) {
  query::QosRequirement qos;
  qos.range.min_frame_rate = 1.0;
  PlanGenerator full = MakeGenerator();
  size_t full_count =
      full.Generate(SiteId(0), LogicalOid(0), qos)->size();

  PlanGenerator::Options no_drop;
  no_drop.enable_frame_dropping = false;
  size_t no_drop_count =
      MakeGenerator(no_drop).Generate(SiteId(0), LogicalOid(0), qos)->size();

  PlanGenerator::Options no_transcode;
  no_transcode.enable_transcoding = false;
  size_t no_transcode_count = MakeGenerator(no_transcode)
                                  .Generate(SiteId(0), LogicalOid(0), qos)
                                  ->size();
  EXPECT_LT(no_drop_count, full_count);
  EXPECT_LT(no_transcode_count, full_count);
}

TEST_F(PlanGeneratorTest, RawSpaceIsLargerThanPrunedSpace) {
  query::QosRequirement qos;
  qos.range.min_resolution = media::kResolutionVcd;  // excludes some plans
  PlanGenerator pruned = MakeGenerator();
  PlanGenerator::Options raw_options;
  raw_options.apply_static_pruning = false;
  PlanGenerator raw = MakeGenerator(raw_options);
  size_t pruned_count =
      pruned.Generate(SiteId(0), LogicalOid(0), qos)->size();
  size_t raw_count = raw.Generate(SiteId(0), LogicalOid(0), qos)->size();
  EXPECT_GT(raw_count, pruned_count);
}

TEST_F(PlanGeneratorTest, TightQosCanYieldEmptySpace) {
  PlanGenerator generator = MakeGenerator();
  query::QosRequirement qos;
  // No stored or derived stream has > 60 fps.
  qos.range.min_frame_rate = 60.0;
  Result<std::vector<Plan>> plans =
      generator.Generate(SiteId(0), LogicalOid(0), qos);
  ASSERT_TRUE(plans.ok());
  EXPECT_TRUE(plans->empty());
}

TEST_F(PlanGeneratorTest, FrameDroppingUnlocksLowFrameRateWindows) {
  PlanGenerator generator = MakeGenerator();
  query::QosRequirement qos;
  // A 5-14 fps window at VCD-or-better resolution: no stored replica or
  // ladder transcode target fits, so only frame dropping can reach it.
  qos.range.min_frame_rate = 5.0;
  qos.range.max_frame_rate = 14.0;
  qos.range.min_resolution = media::kResolutionVcd;
  Result<std::vector<Plan>> plans =
      generator.Generate(SiteId(0), LogicalOid(0), qos);
  ASSERT_TRUE(plans.ok());
  ASSERT_FALSE(plans->empty());
  for (const Plan& plan : *plans) {
    EXPECT_NE(plan.transform.drop, media::FrameDropStrategy::kNone);
  }
}

TEST_F(PlanGeneratorTest, MetadataLatencyIsAccumulated) {
  PlanGenerator generator = MakeGenerator();
  query::QosRequirement qos;
  qos.range.min_frame_rate = 1.0;
  SimTime latency = 0;
  Result<std::vector<Plan>> plans =
      generator.Generate(SiteId(0), LogicalOid(0), qos, &latency);
  ASSERT_TRUE(plans.ok());
  EXPECT_GT(latency, 0);
}

}  // namespace
}  // namespace quasaq::core
