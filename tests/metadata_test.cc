#include "metadata/distributed_engine.h"

#include <gtest/gtest.h>

#include "media/library.h"
#include "metadata/metadata_store.h"

namespace quasaq::meta {
namespace {

media::VideoContent MakeContent(int64_t oid) {
  media::VideoContent content;
  content.id = LogicalOid(oid);
  content.title = "video" + std::to_string(oid);
  content.keywords = {"news"};
  content.duration_seconds = 60.0;
  content.master_quality = media::QualityLadder::Standard().levels[0];
  return content;
}

media::ReplicaInfo MakeReplica(int64_t oid, int64_t content, int64_t site) {
  media::ReplicaInfo replica;
  replica.id = PhysicalOid(oid);
  replica.content = LogicalOid(content);
  replica.site = SiteId(site);
  replica.qos = media::QualityLadder::Standard().levels[1];
  replica.duration_seconds = 60.0;
  media::FinalizeReplicaSizing(replica);
  return replica;
}

TEST(MetadataStoreTest, InsertAndFindContent) {
  MetadataStore store;
  ASSERT_TRUE(store.InsertContent(MakeContent(1)).ok());
  const media::VideoContent* content = store.FindContent(LogicalOid(1));
  ASSERT_NE(content, nullptr);
  EXPECT_EQ(content->title, "video1");
  EXPECT_EQ(store.FindContent(LogicalOid(2)), nullptr);
}

TEST(MetadataStoreTest, DuplicateContentRejected) {
  MetadataStore store;
  ASSERT_TRUE(store.InsertContent(MakeContent(1)).ok());
  EXPECT_EQ(store.InsertContent(MakeContent(1)).code(),
            StatusCode::kAlreadyExists);
}

TEST(MetadataStoreTest, InvalidOidRejected) {
  MetadataStore store;
  media::VideoContent content = MakeContent(1);
  content.id = LogicalOid();
  EXPECT_EQ(store.InsertContent(content).code(),
            StatusCode::kInvalidArgument);
}

TEST(MetadataStoreTest, ReplicaRequiresContent) {
  MetadataStore store;
  EXPECT_EQ(store.InsertReplica(MakeReplica(10, 1, 0)).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(store.InsertContent(MakeContent(1)).ok());
  EXPECT_TRUE(store.InsertReplica(MakeReplica(10, 1, 0)).ok());
}

TEST(MetadataStoreTest, ReplicasOfSortedByOid) {
  MetadataStore store;
  ASSERT_TRUE(store.InsertContent(MakeContent(1)).ok());
  ASSERT_TRUE(store.InsertReplica(MakeReplica(12, 1, 2)).ok());
  ASSERT_TRUE(store.InsertReplica(MakeReplica(10, 1, 0)).ok());
  ASSERT_TRUE(store.InsertReplica(MakeReplica(11, 1, 1)).ok());
  auto replicas = store.ReplicasOf(LogicalOid(1));
  ASSERT_EQ(replicas.size(), 3u);
  EXPECT_EQ(replicas[0]->id, PhysicalOid(10));
  EXPECT_EQ(replicas[2]->id, PhysicalOid(12));
}

TEST(MetadataStoreTest, QosProfileLifecycle) {
  MetadataStore store;
  ASSERT_TRUE(store.InsertContent(MakeContent(1)).ok());
  ASSERT_TRUE(store.InsertReplica(MakeReplica(10, 1, 0)).ok());
  EXPECT_EQ(store.FindQosProfile(PhysicalOid(10)), nullptr);
  QosProfile profile{0.02, 119.0, 119.0, 238.0};
  ASSERT_TRUE(store.SetQosProfile(PhysicalOid(10), profile).ok());
  const QosProfile* stored = store.FindQosProfile(PhysicalOid(10));
  ASSERT_NE(stored, nullptr);
  EXPECT_DOUBLE_EQ(stored->net_kbps, 119.0);
  EXPECT_EQ(store.SetQosProfile(PhysicalOid(99), profile).code(),
            StatusCode::kNotFound);
}

TEST(MetadataStoreTest, EraseReplicaRemovesEverything) {
  MetadataStore store;
  ASSERT_TRUE(store.InsertContent(MakeContent(1)).ok());
  ASSERT_TRUE(store.InsertReplica(MakeReplica(10, 1, 0)).ok());
  ASSERT_TRUE(
      store.SetQosProfile(PhysicalOid(10), QosProfile{}).ok());
  ASSERT_TRUE(store.EraseReplica(PhysicalOid(10)).ok());
  EXPECT_EQ(store.FindReplica(PhysicalOid(10)), nullptr);
  EXPECT_EQ(store.FindQosProfile(PhysicalOid(10)), nullptr);
  EXPECT_TRUE(store.ReplicasOf(LogicalOid(1)).empty());
  EXPECT_EQ(store.EraseReplica(PhysicalOid(10)).code(),
            StatusCode::kNotFound);
}

TEST(MetadataStoreTest, EraseContentCascades) {
  MetadataStore store;
  ASSERT_TRUE(store.InsertContent(MakeContent(1)).ok());
  ASSERT_TRUE(store.InsertReplica(MakeReplica(10, 1, 0)).ok());
  ASSERT_TRUE(store.InsertReplica(MakeReplica(11, 1, 1)).ok());
  ASSERT_TRUE(store.SetQosProfile(PhysicalOid(10), QosProfile{}).ok());
  ASSERT_TRUE(store.EraseContent(LogicalOid(1)).ok());
  EXPECT_EQ(store.FindContent(LogicalOid(1)), nullptr);
  EXPECT_EQ(store.FindReplica(PhysicalOid(10)), nullptr);
  EXPECT_EQ(store.FindReplica(PhysicalOid(11)), nullptr);
  EXPECT_EQ(store.FindQosProfile(PhysicalOid(10)), nullptr);
  EXPECT_EQ(store.EraseContent(LogicalOid(1)).code(),
            StatusCode::kNotFound);
}

class DistributedEngineTest : public ::testing::Test {
 protected:
  DistributedEngineTest()
      : sites_({SiteId(0), SiteId(1), SiteId(2)}),
        engine_(sites_, DistributedMetadataEngine::Options()) {}

  void Populate(int contents, int replicas_each) {
    for (int c = 0; c < contents; ++c) {
      ASSERT_TRUE(engine_.InsertContent(MakeContent(c)).ok());
      for (int r = 0; r < replicas_each; ++r) {
        ASSERT_TRUE(
            engine_.InsertReplica(MakeReplica(c * 10 + r, c, r % 3)).ok());
      }
    }
  }

  std::vector<SiteId> sites_;
  DistributedMetadataEngine engine_;
};

TEST_F(DistributedEngineTest, OwnershipPartitionsByOid) {
  EXPECT_EQ(engine_.OwnerOf(LogicalOid(0)), SiteId(0));
  EXPECT_EQ(engine_.OwnerOf(LogicalOid(1)), SiteId(1));
  EXPECT_EQ(engine_.OwnerOf(LogicalOid(2)), SiteId(2));
  EXPECT_EQ(engine_.OwnerOf(LogicalOid(3)), SiteId(0));
}

TEST_F(DistributedEngineTest, LocalAccessCountsAsLocal) {
  Populate(3, 2);
  SiteId owner = engine_.OwnerOf(LogicalOid(0));
  SimTime latency = 0;
  auto replicas = engine_.ReplicasOf(owner, LogicalOid(0), &latency);
  EXPECT_EQ(replicas.size(), 2u);
  EXPECT_EQ(engine_.stats_for(owner).local_accesses, 1u);
  EXPECT_EQ(engine_.stats_for(owner).remote_accesses, 0u);
  EXPECT_GT(latency, 0);
}

TEST_F(DistributedEngineTest, RemoteAccessThenCacheHit) {
  Populate(3, 2);
  SiteId other(1);  // content 0 is owned by site 0
  SimTime remote_latency = 0;
  engine_.ReplicasOf(other, LogicalOid(0), &remote_latency);
  EXPECT_EQ(engine_.stats_for(other).remote_accesses, 1u);
  SimTime hit_latency = 0;
  engine_.ReplicasOf(other, LogicalOid(0), &hit_latency);
  EXPECT_EQ(engine_.stats_for(other).cache_hits, 1u);
  EXPECT_LT(hit_latency, remote_latency);
}

TEST_F(DistributedEngineTest, InsertInvalidatesRemoteCaches) {
  Populate(1, 1);
  SiteId other(1);
  EXPECT_EQ(engine_.ReplicasOf(other, LogicalOid(0)).size(), 1u);
  // New replica registered at the owner must be visible through the
  // cache immediately.
  ASSERT_TRUE(engine_.InsertReplica(MakeReplica(5, 0, 2)).ok());
  EXPECT_EQ(engine_.ReplicasOf(other, LogicalOid(0)).size(), 2u);
}

TEST_F(DistributedEngineTest, FindContentAndMissingContent) {
  Populate(2, 1);
  auto found = engine_.FindContent(SiteId(2), LogicalOid(1));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->title, "video1");
  EXPECT_FALSE(engine_.FindContent(SiteId(2), LogicalOid(99)).has_value());
}

TEST_F(DistributedEngineTest, QosProfileVisibleFromEverySite) {
  Populate(1, 1);
  QosProfile profile{0.03, 100.0, 100.0, 200.0};
  ASSERT_TRUE(engine_.SetQosProfile(PhysicalOid(0), profile).ok());
  for (SiteId site : sites_) {
    auto found = engine_.FindQosProfile(site, PhysicalOid(0));
    ASSERT_TRUE(found.has_value());
    EXPECT_DOUBLE_EQ(found->cpu_fraction, 0.03);
  }
  EXPECT_FALSE(
      engine_.FindQosProfile(SiteId(0), PhysicalOid(77)).has_value());
}

TEST_F(DistributedEngineTest, AllContentIdsCoversEveryInsert) {
  Populate(7, 1);
  std::vector<LogicalOid> ids = engine_.AllContentIds();
  ASSERT_EQ(ids.size(), 7u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(ids[static_cast<size_t>(i)], LogicalOid(i));
  }
}

TEST_F(DistributedEngineTest, EraseContentRemovesEverythingEverywhere) {
  Populate(3, 2);
  SiteId other(1);  // content 0 owned by site 0
  // Warm the remote cache first.
  EXPECT_EQ(engine_.ReplicasOf(other, LogicalOid(0)).size(), 2u);
  ASSERT_TRUE(engine_.EraseContent(LogicalOid(0)).ok());
  EXPECT_FALSE(engine_.FindContent(other, LogicalOid(0)).has_value());
  EXPECT_TRUE(engine_.ReplicasOf(other, LogicalOid(0)).empty());
  EXPECT_FALSE(
      engine_.FindQosProfile(SiteId(0), PhysicalOid(0)).has_value());
  EXPECT_EQ(engine_.AllContentIds().size(), 2u);
  EXPECT_EQ(engine_.EraseContent(LogicalOid(0)).code(),
            StatusCode::kNotFound);
}

TEST_F(DistributedEngineTest, CacheEvictionUnderTinyCapacity) {
  DistributedMetadataEngine::Options options;
  options.cache_capacity = 1;
  DistributedMetadataEngine small(sites_, options);
  for (int c = 0; c < 4; ++c) {
    ASSERT_TRUE(small.InsertContent(MakeContent(c)).ok());
    ASSERT_TRUE(small.InsertReplica(MakeReplica(c * 10, c, 0)).ok());
  }
  SiteId site(1);
  // Contents 0 and 2 are remote to site 1; alternate to force eviction.
  small.ReplicasOf(site, LogicalOid(0));
  small.ReplicasOf(site, LogicalOid(2));
  small.ReplicasOf(site, LogicalOid(0));
  EXPECT_EQ(small.stats_for(site).remote_accesses, 3u);
  EXPECT_EQ(small.stats_for(site).cache_hits, 0u);
}

TEST(QosSamplerTest, AnalyticProfileMatchesCostModel) {
  media::ReplicaInfo replica = MakeReplica(1, 0, 0);
  QosSampler sampler;
  QosProfile profile = sampler.SampleStreaming(replica);
  EXPECT_NEAR(profile.net_kbps, replica.bitrate_kbps, 1e-9);
  EXPECT_NEAR(profile.disk_kbps, replica.bitrate_kbps, 1e-9);
  EXPECT_GT(profile.cpu_fraction, 0.0);
  EXPECT_LT(profile.cpu_fraction, 0.2);
  EXPECT_NEAR(profile.memory_kb, replica.bitrate_kbps * 2.0, 1e-9);
}

TEST(QosSamplerTest, MeasurementNoiseStaysBounded) {
  media::ReplicaInfo replica = MakeReplica(1, 0, 0);
  QosSampler::Options options;
  options.measurement_noise_sd = 0.1;
  QosSampler sampler(options, 5);
  for (int i = 0; i < 100; ++i) {
    QosProfile profile = sampler.SampleStreaming(replica);
    EXPECT_GE(profile.net_kbps, replica.bitrate_kbps * 0.5);
    EXPECT_LE(profile.net_kbps, replica.bitrate_kbps * 1.5);
  }
}

TEST(QosProfileTest, ToStringMentionsUnits) {
  QosProfile profile{0.02, 119.0, 119.0, 238.0};
  std::string s = profile.ToString();
  EXPECT_NE(s.find("cpu"), std::string::npos);
  EXPECT_NE(s.find("KB/s"), std::string::npos);
}

}  // namespace
}  // namespace quasaq::meta
