#ifndef QUASAQ_RESOURCE_TELEMETRY_H_
#define QUASAQ_RESOURCE_TELEMETRY_H_

#include <unordered_map>

#include "common/resource_vector.h"
#include "common/sim_time.h"
#include "obs/metrics.h"
#include "resource/pool.h"

// Resource telemetry exposition: samples every declared (site, kind)
// bucket's utilization U_i / R_i into a labeled gauge family, each
// series keeping its own bounded TimeSeries history. Sampling is
// event-driven — the facade samples on every session start and
// completion (the only moments utilization moves), and harnesses may
// additionally drive Sample() from a periodic simulator task. A
// free-running background sampler is deliberately not provided: the
// simulator's RunAll() runs until the event queue drains, so a
// self-rescheduling task would never let it terminate.

namespace quasaq::res {

class PoolTelemetry {
 public:
  /// Both pointers must outlive the telemetry object. Gauge series for
  /// every bucket already declared are resolved here (see Prime), so a
  /// telemetry object built after pool setup samples without ever
  /// touching the registry again.
  PoolTelemetry(const ResourcePool* pool, obs::MetricsRegistry* registry);

  /// Resolves the gauge series of every currently declared bucket.
  /// Call again after declaring buckets post-construction; afterwards
  /// Sample is read-only on the series map and therefore safe to call
  /// from concurrent admissions.
  void Prime();

  /// Records one utilization sample per declared bucket at `now`.
  void Sample(SimTime now);

  size_t tracked_buckets() const { return gauges_.size(); }

 private:
  // Resolves (declaring on first sight) the gauge series for `bucket`.
  obs::Gauge* GaugeFor(const BucketId& bucket);

  const ResourcePool* pool_;
  obs::MetricsRegistry* registry_;
  // Buckets are never undeclared, so resolved series pointers are
  // cached for the pool's lifetime. After Prime has seen every bucket,
  // Sample only reads this map (gauge updates are internally
  // synchronized), so concurrent samplers need no extra lock.
  std::unordered_map<BucketId, obs::Gauge*> gauges_;
};

}  // namespace quasaq::res

#endif  // QUASAQ_RESOURCE_TELEMETRY_H_
