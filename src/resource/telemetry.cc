#include "resource/telemetry.h"

#include <cassert>
#include <string>
#include <vector>

namespace quasaq::res {

PoolTelemetry::PoolTelemetry(const ResourcePool* pool,
                             obs::MetricsRegistry* registry)
    : pool_(pool), registry_(registry) {
  assert(pool_ != nullptr);
  assert(registry_ != nullptr);
  Prime();
}

void PoolTelemetry::Prime() {
  for (const BucketId& bucket : pool_->Buckets()) {
    GaugeFor(bucket);
  }
}

obs::Gauge* PoolTelemetry::GaugeFor(const BucketId& bucket) {
  auto it = gauges_.find(bucket);
  if (it != gauges_.end()) return it->second;
  obs::Gauge* gauge = registry_->GetGauge(
      "quasaq_resource_utilization_ratio",
      "Bucket fill U_i / R_i the LRB cost model reads",
      {{"site", std::to_string(bucket.site.value())},
       {"kind", std::string(ResourceKindName(bucket.kind))}});
  gauges_.emplace(bucket, gauge);
  return gauge;
}

void PoolTelemetry::Sample(SimTime now) {
  // One pool-lock acquisition for the whole sweep; after Prime the
  // gauges_ find below never mutates the map, so concurrent admissions
  // can sample without coordinating.
  for (const auto& [bucket, utilization] : pool_->UtilizationSnapshot()) {
    auto it = gauges_.find(bucket);
    obs::Gauge* gauge = it != gauges_.end() ? it->second : GaugeFor(bucket);
    gauge->Sample(now, utilization);
  }
}

}  // namespace quasaq::res
