#include "resource/telemetry.h"

#include <cassert>
#include <string>
#include <vector>

namespace quasaq::res {

PoolTelemetry::PoolTelemetry(const ResourcePool* pool,
                             obs::MetricsRegistry* registry)
    : pool_(pool), registry_(registry) {
  assert(pool_ != nullptr);
  assert(registry_ != nullptr);
}

obs::Gauge* PoolTelemetry::GaugeFor(const BucketId& bucket) {
  auto it = gauges_.find(bucket);
  if (it != gauges_.end()) return it->second;
  obs::Gauge* gauge = registry_->GetGauge(
      "quasaq_resource_utilization_ratio",
      "Bucket fill U_i / R_i the LRB cost model reads",
      {{"site", std::to_string(bucket.site.value())},
       {"kind", std::string(ResourceKindName(bucket.kind))}});
  gauges_.emplace(bucket, gauge);
  return gauge;
}

void PoolTelemetry::Sample(SimTime now) {
  for (const BucketId& bucket : pool_->Buckets()) {
    GaugeFor(bucket)->Sample(now, pool_->Utilization(bucket));
  }
}

}  // namespace quasaq::res
