#ifndef QUASAQ_RESOURCE_CPU_SCHEDULER_H_
#define QUASAQ_RESOURCE_CPU_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "simcore/simulator.h"

// Frame-level CPU scheduling models — the mechanism behind Figure 5.
//
// TimeSharingCpuScheduler models the stock Solaris 2.6 time-sharing
// scheduler the original VDBMS ran on: a round-robin run queue with a
// 10 ms quantum. A streaming job "waits for its turn of CPU utilization
// most of the time; upon getting control it processes all the frames
// that are overdue" (paper §5.1) — which is exactly what emerges here.
//
// ReservationCpuScheduler models the DSRT soft-real-time user-level
// scheduler (QualMan) that QuaSAQ's Composite QoS API reserves CPU
// through: admitted tasks hold a CPU fraction and their work is served
// promptly and in isolation, at the price of a fixed dispatch overhead
// (0.4–0.8 ms per 10 ms reported by DSRT; 0.16 ms measured on the
// paper's hardware).

namespace quasaq::res {

// A consumer of CPU time. Tasks accumulate pending work (CPU-ms) and the
// scheduler calls back as it executes that work.
class CpuTask {
 public:
  virtual ~CpuTask() = default;

  /// CPU milliseconds of work currently pending.
  virtual double PendingWorkMs() const = 0;

  /// Informs the task that `work_ms` of its pending work finished
  /// executing at simulated time `completion_time`.
  virtual void OnWorkExecuted(double work_ms, SimTime completion_time) = 0;
};

// Scheduler interface shared by both CPU models.
class CpuScheduler {
 public:
  virtual ~CpuScheduler() = default;

  /// Must be called whenever a task's PendingWorkMs() increased.
  virtual void NotifyWorkArrived(CpuTask* task) = 0;

  /// Detaches a task; the scheduler never touches it again.
  virtual void RemoveTask(CpuTask* task) = 0;
};

// Round-robin time-sharing CPU (the "VDBMS without QoS" CPU).
class TimeSharingCpuScheduler : public CpuScheduler {
 public:
  struct Options {
    // Default time slice (Solaris TS gives interactive processes 10 ms).
    double quantum_ms = 10.0;
    double context_switch_ms = 0.05;   // per dispatch
  };

  TimeSharingCpuScheduler(sim::Simulator* simulator, const Options& options);

  /// Adds a best-effort task to the run queue. `quantum_ms` overrides
  /// the default time slice for this task: Solaris TS hands CPU-bound,
  /// priority-decayed processes much longer quanta (up to 200 ms), which
  /// is what starves interactive streaming jobs under contention.
  void AddTask(CpuTask* task, double quantum_ms = 0.0);

  void NotifyWorkArrived(CpuTask* task) override;
  void RemoveTask(CpuTask* task) override;

  size_t task_count() const { return tasks_.size(); }
  /// Fraction of simulated time the CPU spent executing work so far.
  double BusyFraction() const;

 private:
  struct TaskEntry {
    CpuTask* task = nullptr;
    double quantum_ms = 10.0;
  };

  void Dispatch();

  sim::Simulator* simulator_;
  Options options_;
  std::vector<TaskEntry> tasks_;
  size_t cursor_ = 0;
  bool busy_ = false;
  SimTime busy_time_ = 0;
};

// Reservation-based CPU (the "QuaSAQ / DSRT" CPU). Each admitted task
// reserves a CPU fraction; admission keeps the sum within capacity net
// of the scheduler's own overhead. Admitted work is served eagerly with
// a small dispatch latency.
class ReservationCpuScheduler : public CpuScheduler {
 public:
  struct Options {
    // Fraction of the CPU the reservation scheduler may hand out.
    double reservable_fraction = 0.9;
    // The scheduler's own overhead, as a CPU fraction (paper: 1.6%).
    double scheduler_overhead_fraction = 0.016;
    // Dispatch latency per activation, uniform in [0, max].
    double max_dispatch_latency_ms = 0.2;
    uint64_t seed = 7;
  };

  ReservationCpuScheduler(sim::Simulator* simulator, const Options& options);

  /// Admits `task` with a reservation of `cpu_fraction` of the CPU.
  /// Fails with kResourceExhausted when the reservable capacity would be
  /// exceeded.
  Status AddReservedTask(CpuTask* task, double cpu_fraction);

  void NotifyWorkArrived(CpuTask* task) override;
  void RemoveTask(CpuTask* task) override;

  double reserved_fraction() const { return reserved_; }
  double reservable_fraction() const {
    return options_.reservable_fraction - options_.scheduler_overhead_fraction;
  }

 private:
  struct TaskState {
    CpuTask* task = nullptr;
    double fraction = 0.0;
    bool busy = false;
  };

  void Serve(size_t index);

  sim::Simulator* simulator_;
  Options options_;
  Rng rng_;
  std::vector<TaskState> tasks_;
  double reserved_ = 0.0;
};

// Helper CpuTask holding a FIFO of work items, each with a completion
// callback — the shape streaming sessions need (one item per frame).
// Partial execution is tracked across scheduler quanta.
class WorkQueueTask : public CpuTask {
 public:
  using CompletionCallback = std::function<void(SimTime)>;

  explicit WorkQueueTask(CpuScheduler* scheduler);
  ~WorkQueueTask() override;

  WorkQueueTask(const WorkQueueTask&) = delete;
  WorkQueueTask& operator=(const WorkQueueTask&) = delete;

  /// Enqueues `work_ms` of work; `on_complete` fires when the last of it
  /// has executed.
  void Submit(double work_ms, CompletionCallback on_complete);

  double PendingWorkMs() const override;
  void OnWorkExecuted(double work_ms, SimTime completion_time) override;

  size_t queued_items() const { return items_.size(); }

 private:
  struct Item {
    double remaining_ms = 0.0;
    CompletionCallback on_complete;
  };

  CpuScheduler* scheduler_;
  std::deque<Item> items_;
};

}  // namespace quasaq::res

#endif  // QUASAQ_RESOURCE_CPU_SCHEDULER_H_
