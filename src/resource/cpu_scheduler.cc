#include "resource/cpu_scheduler.h"

#include <algorithm>
#include <cassert>

namespace quasaq::res {

namespace {
// Work below this many CPU-ms counts as drained.
constexpr double kWorkEpsilonMs = 1e-9;
}  // namespace

// ---------------------------------------------------------------------------
// TimeSharingCpuScheduler

TimeSharingCpuScheduler::TimeSharingCpuScheduler(sim::Simulator* simulator,
                                                 const Options& options)
    : simulator_(simulator), options_(options) {
  assert(simulator_ != nullptr);
  assert(options_.quantum_ms > 0.0);
}

void TimeSharingCpuScheduler::AddTask(CpuTask* task, double quantum_ms) {
  assert(task != nullptr);
  tasks_.push_back(
      TaskEntry{task, quantum_ms > 0.0 ? quantum_ms : options_.quantum_ms});
}

void TimeSharingCpuScheduler::NotifyWorkArrived(CpuTask* task) {
  (void)task;  // round-robin does not prioritize the notifier
  if (!busy_) Dispatch();
}

void TimeSharingCpuScheduler::RemoveTask(CpuTask* task) {
  auto it = std::find_if(tasks_.begin(), tasks_.end(),
                         [task](const TaskEntry& e) { return e.task == task; });
  if (it == tasks_.end()) return;
  size_t index = static_cast<size_t>(it - tasks_.begin());
  tasks_.erase(it);
  if (cursor_ > index) --cursor_;
  if (!tasks_.empty()) cursor_ %= tasks_.size();
}

double TimeSharingCpuScheduler::BusyFraction() const {
  SimTime now = simulator_->Now();
  if (now <= 0) return 0.0;
  return static_cast<double>(busy_time_) / static_cast<double>(now);
}

void TimeSharingCpuScheduler::Dispatch() {
  const size_t n = tasks_.size();
  CpuTask* chosen = nullptr;
  double quantum_ms = options_.quantum_ms;
  for (size_t k = 0; k < n; ++k) {
    size_t index = (cursor_ + k) % n;
    if (tasks_[index].task->PendingWorkMs() > kWorkEpsilonMs) {
      chosen = tasks_[index].task;
      quantum_ms = tasks_[index].quantum_ms;
      cursor_ = (index + 1) % n;
      break;
    }
  }
  if (chosen == nullptr) {
    busy_ = false;
    return;
  }
  busy_ = true;
  double work_ms = std::min(quantum_ms, chosen->PendingWorkMs());
  SimTime duration =
      MillisToSimTime(work_ms + options_.context_switch_ms);
  busy_time_ += duration;
  simulator_->ScheduleAfter(duration, [this, chosen, work_ms] {
    // The task may have been removed while its quantum ran.
    bool present = std::find_if(tasks_.begin(), tasks_.end(),
                                [chosen](const TaskEntry& e) {
                                  return e.task == chosen;
                                }) != tasks_.end();
    if (present) chosen->OnWorkExecuted(work_ms, simulator_->Now());
    Dispatch();
  });
}

// ---------------------------------------------------------------------------
// ReservationCpuScheduler

ReservationCpuScheduler::ReservationCpuScheduler(sim::Simulator* simulator,
                                                 const Options& options)
    : simulator_(simulator), options_(options), rng_(options.seed) {
  assert(simulator_ != nullptr);
}

Status ReservationCpuScheduler::AddReservedTask(CpuTask* task,
                                                double cpu_fraction) {
  assert(task != nullptr);
  if (cpu_fraction <= 0.0) {
    return Status::InvalidArgument("non-positive CPU reservation");
  }
  if (reserved_ + cpu_fraction > reservable_fraction() + 1e-12) {
    return Status::ResourceExhausted("CPU reservation capacity exceeded");
  }
  reserved_ += cpu_fraction;
  tasks_.push_back(TaskState{task, cpu_fraction, false});
  return Status::Ok();
}

void ReservationCpuScheduler::NotifyWorkArrived(CpuTask* task) {
  for (size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].task == task) {
      Serve(i);
      return;
    }
  }
}

void ReservationCpuScheduler::RemoveTask(CpuTask* task) {
  for (auto it = tasks_.begin(); it != tasks_.end(); ++it) {
    if (it->task == task) {
      reserved_ -= it->fraction;
      if (reserved_ < 0.0) reserved_ = 0.0;
      tasks_.erase(it);
      return;
    }
  }
}

void ReservationCpuScheduler::Serve(size_t index) {
  TaskState& state = tasks_[index];
  if (state.busy) return;
  double pending = state.task->PendingWorkMs();
  if (pending <= kWorkEpsilonMs) return;
  state.busy = true;
  // Reserved work is served at full CPU speed after a bounded dispatch
  // latency; admission control guarantees global feasibility (fluid
  // approximation of DSRT's slice-per-period service).
  double latency_ms = rng_.Uniform(0.0, options_.max_dispatch_latency_ms);
  CpuTask* task = state.task;
  SimTime duration = MillisToSimTime(pending + latency_ms);
  simulator_->ScheduleAfter(duration, [this, task, pending] {
    for (size_t i = 0; i < tasks_.size(); ++i) {
      if (tasks_[i].task != task) continue;
      tasks_[i].busy = false;
      task->OnWorkExecuted(pending, simulator_->Now());
      // Work may have accumulated while this batch executed.
      Serve(i);
      return;
    }
  });
}

// ---------------------------------------------------------------------------
// WorkQueueTask

WorkQueueTask::WorkQueueTask(CpuScheduler* scheduler)
    : scheduler_(scheduler) {
  assert(scheduler_ != nullptr);
}

WorkQueueTask::~WorkQueueTask() { scheduler_->RemoveTask(this); }

void WorkQueueTask::Submit(double work_ms, CompletionCallback on_complete) {
  assert(work_ms > 0.0);
  items_.push_back(Item{work_ms, std::move(on_complete)});
  scheduler_->NotifyWorkArrived(this);
}

double WorkQueueTask::PendingWorkMs() const {
  double total = 0.0;
  for (const Item& item : items_) total += item.remaining_ms;
  return total;
}

void WorkQueueTask::OnWorkExecuted(double work_ms, SimTime completion_time) {
  while (work_ms > kWorkEpsilonMs && !items_.empty()) {
    Item& front = items_.front();
    double consumed = std::min(front.remaining_ms, work_ms);
    front.remaining_ms -= consumed;
    work_ms -= consumed;
    if (front.remaining_ms <= kWorkEpsilonMs) {
      CompletionCallback callback = std::move(front.on_complete);
      items_.pop_front();
      if (callback) callback(completion_time);
    }
  }
}

}  // namespace quasaq::res
