#ifndef QUASAQ_RESOURCE_POOL_H_
#define QUASAQ_RESOURCE_POOL_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/resource_vector.h"
#include "common/status.h"
#include "common/sync.h"

// Registry of the system's resource buckets: each (site, kind) bucket
// has a fixed capacity R_i and a current usage U_i. This is the state
// the LRB cost model reads ("the height of the filled part of bucket i
// is the percentage of resource i being used", paper §3.4) and the
// state admission control mutates.
//
// Thread-safe: one mutex guards the whole bucket table, so concurrent
// AdmitQuery calls cost plans against a consistent usage snapshot and
// Acquire stays all-or-nothing under contention. ResourcePool::mu_ is a
// leaf lock in the system's lock order (docs/ARCHITECTURE.md).

namespace quasaq::res {

class ResourcePool {
 public:
  /// Declares a bucket with capacity `capacity` (> 0). Re-declaring an
  /// existing bucket resets its capacity but keeps its usage. Fails
  /// with kInvalidArgument on a non-positive capacity (nothing is
  /// declared).
  Status DeclareBucket(const BucketId& bucket, double capacity)
      QUASAQ_EXCLUDES(mu_);

  bool HasBucket(const BucketId& bucket) const QUASAQ_EXCLUDES(mu_);
  double Capacity(const BucketId& bucket) const QUASAQ_EXCLUDES(mu_);
  double Used(const BucketId& bucket) const QUASAQ_EXCLUDES(mu_);

  /// U_i / R_i for one bucket, in [0, 1] under normal operation.
  double Utilization(const BucketId& bucket) const QUASAQ_EXCLUDES(mu_);

  /// True when every entry of `demand` fits: U_i + r_i <= R_i for all
  /// touched buckets (and every touched bucket is declared). Advisory
  /// under concurrency: usage may move between this check and a later
  /// Acquire, which re-validates atomically.
  bool Fits(const ResourceVector& demand) const QUASAQ_EXCLUDES(mu_);

  /// Atomically adds `demand` to usage. Fails with kResourceExhausted
  /// (nothing is changed) when any bucket would overflow, and
  /// kNotFound when `demand` touches an undeclared bucket.
  Status Acquire(const ResourceVector& demand) QUASAQ_EXCLUDES(mu_);

  /// Subtracts `demand` from usage. Usage never goes negative: an
  /// over-release is clamped to zero and reported as
  /// kFailedPrecondition (as is a release touching an undeclared
  /// bucket) so accounting bugs surface in release builds instead of
  /// silently corrupting the usage vectors the cost model reads.
  Status Release(const ResourceVector& demand) QUASAQ_EXCLUDES(mu_);

  /// All declared buckets in a stable order (sorted by id).
  std::vector<BucketId> Buckets() const QUASAQ_EXCLUDES(mu_);

  /// Overlay fill — the LRB inner loop: max over every declared bucket
  /// of (U_i + demand_i) / R_i, skipping non-positive capacities. One
  /// lock acquisition for the whole scan; calling Buckets() plus
  /// Used()/Capacity() per bucket computes the identical value (max is
  /// order-independent over the same per-bucket quotients) but costs
  /// ~2N mutex round-trips per plan costed, which is what serialized
  /// concurrent admissions before bulk reads existed.
  double OverlayMaxFill(const ResourceVector& demand) const
      QUASAQ_EXCLUDES(mu_);

  /// Overlay quadratic fill: sum over declared buckets — in sorted id
  /// order, so the floating-point accumulation is reproducible — of
  /// ((U_i + demand_i) / R_i)^2, skipping non-positive capacities.
  double OverlaySquaredFill(const ResourceVector& demand) const
      QUASAQ_EXCLUDES(mu_);

  /// Sum over `demand`'s entries (in entry order) of amount / capacity;
  /// undeclared or non-positive-capacity buckets contribute nothing.
  double FractionalDemand(const ResourceVector& demand) const
      QUASAQ_EXCLUDES(mu_);

  /// (bucket, U_i / R_i) for every declared bucket in sorted id order,
  /// read under one lock acquisition (telemetry's bulk Utilization).
  std::vector<std::pair<BucketId, double>> UtilizationSnapshot() const
      QUASAQ_EXCLUDES(mu_);

  /// The highest utilization across all declared buckets.
  double MaxUtilization() const QUASAQ_EXCLUDES(mu_);

  /// Renders a one-line fill report, e.g. "site0/cpu=0.42 ...".
  std::string DebugString() const QUASAQ_EXCLUDES(mu_);

 private:
  struct BucketState {
    double capacity = 0.0;
    double used = 0.0;
  };

  // Lock-assuming bodies of the public entry points above.
  bool FitsLocked(const ResourceVector& demand) const QUASAQ_REQUIRES(mu_);
  std::vector<BucketId> BucketsLocked() const QUASAQ_REQUIRES(mu_);

  mutable Mutex mu_;
  std::unordered_map<BucketId, BucketState> buckets_ QUASAQ_GUARDED_BY(mu_);
  // Bucket ids in sorted order, maintained by DeclareBucket (buckets
  // are never undeclared) so the ordered scans above never re-sort.
  std::vector<BucketId> ordered_buckets_ QUASAQ_GUARDED_BY(mu_);
};

}  // namespace quasaq::res

#endif  // QUASAQ_RESOURCE_POOL_H_
