#ifndef QUASAQ_RESOURCE_POOL_H_
#define QUASAQ_RESOURCE_POOL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/resource_vector.h"
#include "common/status.h"

// Registry of the system's resource buckets: each (site, kind) bucket
// has a fixed capacity R_i and a current usage U_i. This is the state
// the LRB cost model reads ("the height of the filled part of bucket i
// is the percentage of resource i being used", paper §3.4) and the
// state admission control mutates.

namespace quasaq::res {

class ResourcePool {
 public:
  /// Declares a bucket with capacity `capacity` (> 0). Re-declaring an
  /// existing bucket resets its capacity but keeps its usage.
  void DeclareBucket(const BucketId& bucket, double capacity);

  bool HasBucket(const BucketId& bucket) const;
  double Capacity(const BucketId& bucket) const;
  double Used(const BucketId& bucket) const;

  /// U_i / R_i for one bucket, in [0, 1] under normal operation.
  double Utilization(const BucketId& bucket) const;

  /// True when every entry of `demand` fits: U_i + r_i <= R_i for all
  /// touched buckets (and every touched bucket is declared).
  bool Fits(const ResourceVector& demand) const;

  /// Atomically adds `demand` to usage. Fails with kResourceExhausted
  /// (nothing is changed) when any bucket would overflow, and
  /// kNotFound when `demand` touches an undeclared bucket.
  Status Acquire(const ResourceVector& demand);

  /// Subtracts `demand` from usage (clamped at zero).
  void Release(const ResourceVector& demand);

  /// All declared buckets in a stable order (sorted by id).
  std::vector<BucketId> Buckets() const;

  /// The highest utilization across all declared buckets.
  double MaxUtilization() const;

  /// Renders a one-line fill report, e.g. "site0/cpu=0.42 ...".
  std::string DebugString() const;

 private:
  struct BucketState {
    double capacity = 0.0;
    double used = 0.0;
  };

  std::unordered_map<BucketId, BucketState> buckets_;
};

}  // namespace quasaq::res

#endif  // QUASAQ_RESOURCE_POOL_H_
