#include "resource/pool.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace quasaq::res {

namespace {
// Tolerance for floating-point accumulation when checking capacity.
constexpr double kSlack = 1e-9;
}  // namespace

void ResourcePool::DeclareBucket(const BucketId& bucket, double capacity) {
  assert(capacity > 0.0);
  buckets_[bucket].capacity = capacity;
}

bool ResourcePool::HasBucket(const BucketId& bucket) const {
  return buckets_.count(bucket) > 0;
}

double ResourcePool::Capacity(const BucketId& bucket) const {
  auto it = buckets_.find(bucket);
  return it == buckets_.end() ? 0.0 : it->second.capacity;
}

double ResourcePool::Used(const BucketId& bucket) const {
  auto it = buckets_.find(bucket);
  return it == buckets_.end() ? 0.0 : it->second.used;
}

double ResourcePool::Utilization(const BucketId& bucket) const {
  auto it = buckets_.find(bucket);
  if (it == buckets_.end() || it->second.capacity <= 0.0) return 0.0;
  return it->second.used / it->second.capacity;
}

bool ResourcePool::Fits(const ResourceVector& demand) const {
  for (const ResourceVector::Entry& e : demand.entries()) {
    auto it = buckets_.find(e.bucket);
    if (it == buckets_.end()) return false;
    if (it->second.used + e.amount > it->second.capacity * (1.0 + kSlack)) {
      return false;
    }
  }
  return true;
}

Status ResourcePool::Acquire(const ResourceVector& demand) {
  for (const ResourceVector::Entry& e : demand.entries()) {
    if (buckets_.count(e.bucket) == 0) {
      return Status::NotFound("undeclared bucket " +
                              BucketIdToString(e.bucket));
    }
  }
  if (!Fits(demand)) {
    return Status::ResourceExhausted("bucket would overflow");
  }
  for (const ResourceVector::Entry& e : demand.entries()) {
    buckets_[e.bucket].used += e.amount;
  }
  return Status::Ok();
}

void ResourcePool::Release(const ResourceVector& demand) {
  for (const ResourceVector::Entry& e : demand.entries()) {
    auto it = buckets_.find(e.bucket);
    if (it == buckets_.end()) continue;
    it->second.used = std::max(0.0, it->second.used - e.amount);
    // Snap accumulated floating-point residue to a clean zero; real
    // reservations are many orders of magnitude above this.
    if (it->second.used < it->second.capacity * 1e-9) {
      it->second.used = 0.0;
    }
  }
}

std::vector<BucketId> ResourcePool::Buckets() const {
  std::vector<BucketId> out;
  out.reserve(buckets_.size());
  for (const auto& [id, state] : buckets_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

double ResourcePool::MaxUtilization() const {
  double max_util = 0.0;
  for (const auto& [id, state] : buckets_) {
    if (state.capacity <= 0.0) continue;
    max_util = std::max(max_util, state.used / state.capacity);
  }
  return max_util;
}

std::string ResourcePool::DebugString() const {
  std::string out;
  for (const BucketId& id : Buckets()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%.2f ",
                  BucketIdToString(id).c_str(), Utilization(id));
    out += buf;
  }
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace quasaq::res
