#include "resource/pool.h"

#include <algorithm>
#include <cstdio>

namespace quasaq::res {

namespace {
// Tolerance for floating-point accumulation when checking capacity.
constexpr double kSlack = 1e-9;
}  // namespace

Status ResourcePool::DeclareBucket(const BucketId& bucket, double capacity) {
  if (capacity <= 0.0) {
    return Status::InvalidArgument("bucket " + BucketIdToString(bucket) +
                                   " declared with non-positive capacity");
  }
  MutexLock lock(&mu_);
  auto [it, inserted] = buckets_.try_emplace(bucket);
  it->second.capacity = capacity;
  if (inserted) {
    ordered_buckets_.insert(std::lower_bound(ordered_buckets_.begin(),
                                             ordered_buckets_.end(), bucket),
                            bucket);
  }
  return Status::Ok();
}

double ResourcePool::OverlayMaxFill(const ResourceVector& demand) const {
  MutexLock lock(&mu_);
  double max_fill = 0.0;
  for (const auto& [bucket, state] : buckets_) {
    if (state.capacity <= 0.0) continue;
    double fill = (state.used + demand.Get(bucket)) / state.capacity;
    max_fill = std::max(max_fill, fill);
  }
  return max_fill;
}

double ResourcePool::OverlaySquaredFill(const ResourceVector& demand) const {
  MutexLock lock(&mu_);
  double total = 0.0;
  for (const BucketId& bucket : ordered_buckets_) {
    const BucketState& state = buckets_.find(bucket)->second;
    if (state.capacity <= 0.0) continue;
    double fill = (state.used + demand.Get(bucket)) / state.capacity;
    total += fill * fill;
  }
  return total;
}

double ResourcePool::FractionalDemand(const ResourceVector& demand) const {
  MutexLock lock(&mu_);
  double total = 0.0;
  for (const ResourceVector::Entry& e : demand.entries()) {
    auto it = buckets_.find(e.bucket);
    if (it == buckets_.end() || it->second.capacity <= 0.0) continue;
    total += e.amount / it->second.capacity;
  }
  return total;
}

std::vector<std::pair<BucketId, double>> ResourcePool::UtilizationSnapshot()
    const {
  MutexLock lock(&mu_);
  std::vector<std::pair<BucketId, double>> out;
  out.reserve(ordered_buckets_.size());
  for (const BucketId& bucket : ordered_buckets_) {
    const BucketState& state = buckets_.find(bucket)->second;
    out.emplace_back(bucket, state.capacity > 0.0
                                 ? state.used / state.capacity
                                 : 0.0);
  }
  return out;
}

bool ResourcePool::HasBucket(const BucketId& bucket) const {
  MutexLock lock(&mu_);
  return buckets_.count(bucket) > 0;
}

double ResourcePool::Capacity(const BucketId& bucket) const {
  MutexLock lock(&mu_);
  auto it = buckets_.find(bucket);
  return it == buckets_.end() ? 0.0 : it->second.capacity;
}

double ResourcePool::Used(const BucketId& bucket) const {
  MutexLock lock(&mu_);
  auto it = buckets_.find(bucket);
  return it == buckets_.end() ? 0.0 : it->second.used;
}

double ResourcePool::Utilization(const BucketId& bucket) const {
  MutexLock lock(&mu_);
  auto it = buckets_.find(bucket);
  if (it == buckets_.end() || it->second.capacity <= 0.0) return 0.0;
  return it->second.used / it->second.capacity;
}

bool ResourcePool::FitsLocked(const ResourceVector& demand) const {
  for (const ResourceVector::Entry& e : demand.entries()) {
    auto it = buckets_.find(e.bucket);
    if (it == buckets_.end()) return false;
    if (it->second.used + e.amount > it->second.capacity * (1.0 + kSlack)) {
      return false;
    }
  }
  return true;
}

bool ResourcePool::Fits(const ResourceVector& demand) const {
  MutexLock lock(&mu_);
  return FitsLocked(demand);
}

Status ResourcePool::Acquire(const ResourceVector& demand) {
  MutexLock lock(&mu_);
  for (const ResourceVector::Entry& e : demand.entries()) {
    if (buckets_.count(e.bucket) == 0) {
      return Status::NotFound("undeclared bucket " +
                              BucketIdToString(e.bucket));
    }
  }
  if (!FitsLocked(demand)) {
    return Status::ResourceExhausted("bucket would overflow");
  }
  for (const ResourceVector::Entry& e : demand.entries()) {
    buckets_[e.bucket].used += e.amount;
  }
  return Status::Ok();
}

Status ResourcePool::Release(const ResourceVector& demand) {
  MutexLock lock(&mu_);
  Status status = Status::Ok();
  for (const ResourceVector::Entry& e : demand.entries()) {
    auto it = buckets_.find(e.bucket);
    if (it == buckets_.end()) {
      status = Status::FailedPrecondition("release touches undeclared bucket " +
                                          BucketIdToString(e.bucket));
      continue;
    }
    if (e.amount > it->second.used + it->second.capacity * kSlack) {
      status = Status::FailedPrecondition(
          "over-release on bucket " + BucketIdToString(e.bucket) +
          " (usage clamped to zero)");
    }
    it->second.used = std::max(0.0, it->second.used - e.amount);
    // Snap accumulated floating-point residue to a clean zero; real
    // reservations are many orders of magnitude above this.
    if (it->second.used < it->second.capacity * 1e-9) {
      it->second.used = 0.0;
    }
  }
  return status;
}

std::vector<BucketId> ResourcePool::BucketsLocked() const {
  return ordered_buckets_;
}

std::vector<BucketId> ResourcePool::Buckets() const {
  MutexLock lock(&mu_);
  return BucketsLocked();
}

double ResourcePool::MaxUtilization() const {
  MutexLock lock(&mu_);
  double max_util = 0.0;
  for (const auto& [id, state] : buckets_) {
    if (state.capacity <= 0.0) continue;
    max_util = std::max(max_util, state.used / state.capacity);
  }
  return max_util;
}

std::string ResourcePool::DebugString() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const BucketId& id : BucketsLocked()) {
    auto it = buckets_.find(id);
    double util = it->second.capacity > 0.0
                      ? it->second.used / it->second.capacity
                      : 0.0;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%.2f ",
                  BucketIdToString(id).c_str(), util);
    out += buf;
  }
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace quasaq::res
