#include "resource/pool.h"

#include <algorithm>
#include <cstdio>

namespace quasaq::res {

namespace {
// Tolerance for floating-point accumulation when checking capacity.
constexpr double kSlack = 1e-9;
}  // namespace

Status ResourcePool::DeclareBucket(const BucketId& bucket, double capacity) {
  if (capacity <= 0.0) {
    return Status::InvalidArgument("bucket " + BucketIdToString(bucket) +
                                   " declared with non-positive capacity");
  }
  MutexLock lock(&mu_);
  buckets_[bucket].capacity = capacity;
  return Status::Ok();
}

bool ResourcePool::HasBucket(const BucketId& bucket) const {
  MutexLock lock(&mu_);
  return buckets_.count(bucket) > 0;
}

double ResourcePool::Capacity(const BucketId& bucket) const {
  MutexLock lock(&mu_);
  auto it = buckets_.find(bucket);
  return it == buckets_.end() ? 0.0 : it->second.capacity;
}

double ResourcePool::Used(const BucketId& bucket) const {
  MutexLock lock(&mu_);
  auto it = buckets_.find(bucket);
  return it == buckets_.end() ? 0.0 : it->second.used;
}

double ResourcePool::Utilization(const BucketId& bucket) const {
  MutexLock lock(&mu_);
  auto it = buckets_.find(bucket);
  if (it == buckets_.end() || it->second.capacity <= 0.0) return 0.0;
  return it->second.used / it->second.capacity;
}

bool ResourcePool::FitsLocked(const ResourceVector& demand) const {
  for (const ResourceVector::Entry& e : demand.entries()) {
    auto it = buckets_.find(e.bucket);
    if (it == buckets_.end()) return false;
    if (it->second.used + e.amount > it->second.capacity * (1.0 + kSlack)) {
      return false;
    }
  }
  return true;
}

bool ResourcePool::Fits(const ResourceVector& demand) const {
  MutexLock lock(&mu_);
  return FitsLocked(demand);
}

Status ResourcePool::Acquire(const ResourceVector& demand) {
  MutexLock lock(&mu_);
  for (const ResourceVector::Entry& e : demand.entries()) {
    if (buckets_.count(e.bucket) == 0) {
      return Status::NotFound("undeclared bucket " +
                              BucketIdToString(e.bucket));
    }
  }
  if (!FitsLocked(demand)) {
    return Status::ResourceExhausted("bucket would overflow");
  }
  for (const ResourceVector::Entry& e : demand.entries()) {
    buckets_[e.bucket].used += e.amount;
  }
  return Status::Ok();
}

Status ResourcePool::Release(const ResourceVector& demand) {
  MutexLock lock(&mu_);
  Status status = Status::Ok();
  for (const ResourceVector::Entry& e : demand.entries()) {
    auto it = buckets_.find(e.bucket);
    if (it == buckets_.end()) {
      status = Status::FailedPrecondition("release touches undeclared bucket " +
                                          BucketIdToString(e.bucket));
      continue;
    }
    if (e.amount > it->second.used + it->second.capacity * kSlack) {
      status = Status::FailedPrecondition(
          "over-release on bucket " + BucketIdToString(e.bucket) +
          " (usage clamped to zero)");
    }
    it->second.used = std::max(0.0, it->second.used - e.amount);
    // Snap accumulated floating-point residue to a clean zero; real
    // reservations are many orders of magnitude above this.
    if (it->second.used < it->second.capacity * 1e-9) {
      it->second.used = 0.0;
    }
  }
  return status;
}

std::vector<BucketId> ResourcePool::BucketsLocked() const {
  std::vector<BucketId> out;
  out.reserve(buckets_.size());
  for (const auto& [id, state] : buckets_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<BucketId> ResourcePool::Buckets() const {
  MutexLock lock(&mu_);
  return BucketsLocked();
}

double ResourcePool::MaxUtilization() const {
  MutexLock lock(&mu_);
  double max_util = 0.0;
  for (const auto& [id, state] : buckets_) {
    if (state.capacity <= 0.0) continue;
    max_util = std::max(max_util, state.used / state.capacity);
  }
  return max_util;
}

std::string ResourcePool::DebugString() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const BucketId& id : BucketsLocked()) {
    auto it = buckets_.find(id);
    double util = it->second.capacity > 0.0
                      ? it->second.used / it->second.capacity
                      : 0.0;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%.2f ",
                  BucketIdToString(id).c_str(), util);
    out += buf;
  }
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace quasaq::res
