#include "resource/composite_api.h"

#include <cassert>
#include <cstdio>

namespace quasaq::res {

void CompositeQosApi::AccountAttempt(const ResourceVector& demand,
                                     bool admitted) {
  for (const ResourceVector::Entry& e : demand.entries()) {
    KindStats& kind = kind_stats_[static_cast<size_t>(e.bucket.kind)];
    ++kind.requests;
    if (!admitted) {
      // Charge the denial to every kind whose bucket would overflow.
      double capacity = pool_->Capacity(e.bucket);
      if (capacity > 0.0 &&
          pool_->Used(e.bucket) + e.amount > capacity * (1.0 + 1e-9)) {
        ++kind.denials;
      }
    }
  }
}

std::string CompositeQosApi::BottleneckReport() const {
  MutexLock lock(&mu_);
  const char* worst = nullptr;
  uint64_t worst_denials = 0;
  uint64_t total_denials = 0;
  for (int i = 0; i < kNumResourceKinds; ++i) {
    total_denials += kind_stats_[i].denials;
    if (kind_stats_[i].denials > worst_denials) {
      worst_denials = kind_stats_[i].denials;
      worst = ResourceKindName(static_cast<ResourceKind>(i)).data();
    }
  }
  if (worst == nullptr) return "";
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "bottleneck: %s (%llu of %llu denials)", worst,
                static_cast<unsigned long long>(worst_denials),
                static_cast<unsigned long long>(total_denials));
  return std::string(buf);
}

CompositeQosApi::CompositeQosApi(ResourcePool* pool) : pool_(pool) {
  assert(pool_ != nullptr);
}

void CompositeQosApi::set_metrics(obs::MetricsRegistry* registry) {
  MutexLock lock(&mu_);
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.reserve_accepted =
      registry->GetCounter("quasaq_resource_reserve_accepted_total",
                           "Reservations admission control granted");
  metrics_.reserve_rejected =
      registry->GetCounter("quasaq_resource_reserve_rejected_total",
                           "Reservations admission control denied");
  metrics_.released = registry->GetCounter(
      "quasaq_resource_released_total", "Reservations released");
  metrics_.renegotiate_accepted =
      registry->GetCounter("quasaq_resource_renegotiate_accepted_total",
                           "In-place reservation swaps that fit");
  metrics_.renegotiate_rejected =
      registry->GetCounter("quasaq_resource_renegotiate_rejected_total",
                           "In-place reservation swaps that did not fit");
}

bool CompositeQosApi::Admissible(const ResourceVector& demand) const {
  return pool_->Fits(demand);
}

Result<ReservationId> CompositeQosApi::Reserve(const ResourceVector& demand) {
  MutexLock lock(&mu_);
  Status status = pool_->Acquire(demand);
  AccountAttempt(demand, status.ok());
  if (!status.ok()) {
    ++stats_.rejected;
    if (metrics_.reserve_rejected != nullptr) {
      metrics_.reserve_rejected->Increment();
    }
    return status;
  }
  ++stats_.admitted;
  if (metrics_.reserve_accepted != nullptr) {
    metrics_.reserve_accepted->Increment();
  }
  ReservationId id = next_id_++;
  reservations_.emplace(id, demand);
  return id;
}

Status CompositeQosApi::Release(ReservationId id) {
  MutexLock lock(&mu_);
  auto it = reservations_.find(id);
  if (it == reservations_.end()) {
    return Status::NotFound("unknown reservation");
  }
  // A failed pool release means the reservation table and the usage
  // vectors disagree — surface it instead of reporting a clean release.
  Status released = pool_->Release(it->second);
  reservations_.erase(it);
  ++stats_.released;
  if (metrics_.released != nullptr) metrics_.released->Increment();
  return released;
}

Status CompositeQosApi::Renegotiate(ReservationId id,
                                    const ResourceVector& new_demand) {
  MutexLock lock(&mu_);
  auto it = reservations_.find(id);
  if (it == reservations_.end()) {
    return Status::NotFound("unknown reservation");
  }
  // Tentatively release the old demand, then try the new one; restore on
  // failure so a failed renegotiation leaves the session running at its
  // previously agreed quality. mu_ is held throughout, so no other
  // reservation can slip into the momentarily freed capacity.
  Status freed = pool_->Release(it->second);
  assert(freed.ok());
  (void)freed;
  Status status = pool_->Acquire(new_demand);
  if (!status.ok()) {
    Status restored = pool_->Acquire(it->second);
    assert(restored.ok());
    (void)restored;
    ++stats_.renegotiation_failures;
    if (metrics_.renegotiate_rejected != nullptr) {
      metrics_.renegotiate_rejected->Increment();
    }
    return status;
  }
  it->second = new_demand;
  ++stats_.renegotiations;
  if (metrics_.renegotiate_accepted != nullptr) {
    metrics_.renegotiate_accepted->Increment();
  }
  return Status::Ok();
}

const ResourceVector* CompositeQosApi::Find(ReservationId id) const {
  MutexLock lock(&mu_);
  auto it = reservations_.find(id);
  return it == reservations_.end() ? nullptr : &it->second;
}

}  // namespace quasaq::res
