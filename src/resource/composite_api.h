#ifndef QUASAQ_RESOURCE_COMPOSITE_API_H_
#define QUASAQ_RESOURCE_COMPOSITE_API_H_

#include <cstdint>
#include <unordered_map>

#include "common/resource_vector.h"
#include "common/status.h"
#include "resource/pool.h"

// Composite QoS API (paper §3.5): the single entry point that hides the
// per-resource managers (CPU / network / disk, GARA-style) behind one
// interface offering the three operations QoS control needs —
// admission control, resource reservation, and renegotiation.
// Reservations are all-or-nothing across every bucket a plan touches.

namespace quasaq::res {

using ReservationId = int64_t;
inline constexpr ReservationId kInvalidReservationId = 0;

class CompositeQosApi {
 public:
  struct Stats {
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t released = 0;
    uint64_t renegotiations = 0;
    uint64_t renegotiation_failures = 0;
  };

  // Per-resource-kind accounting, mirroring GARA's per-resource managers
  // (CPU / network / disk / memory each with its own manager): how often
  // each kind was requested and how often it was the one that vetoed an
  // admission — i.e. which resource is the system's bottleneck.
  struct KindStats {
    uint64_t requests = 0;
    uint64_t denials = 0;
  };

  /// `pool` must outlive the API object.
  explicit CompositeQosApi(ResourcePool* pool);

  /// Admission control: true when `demand` fits the current system
  /// status without reserving anything.
  bool Admissible(const ResourceVector& demand) const;

  /// Reserves `demand` for the lifetime of a delivery job. On success
  /// the buckets are charged and a reservation handle is returned.
  Result<ReservationId> Reserve(const ResourceVector& demand);

  /// Releases a reservation completely.
  Status Release(ReservationId id);

  /// Renegotiation: atomically replaces the reservation's demand with
  /// `new_demand` (used when the user changes QoS mid-playback or a
  /// degraded plan is adopted). On failure the old reservation stands.
  Status Renegotiate(ReservationId id, const ResourceVector& new_demand);

  /// Returns the reserved vector for `id`, or nullptr.
  const ResourceVector* Find(ReservationId id) const;

  size_t active_reservations() const { return reservations_.size(); }
  const Stats& stats() const { return stats_; }
  const KindStats& kind_stats(ResourceKind kind) const {
    return kind_stats_[static_cast<size_t>(kind)];
  }
  const ResourcePool& pool() const { return *pool_; }

  /// The resource kind that vetoed the most reservations so far, or
  /// empty when nothing has been denied — the operator's first answer
  /// to "what do we buy more of?".
  std::string BottleneckReport() const;

 private:
  // Charges per-kind request/denial accounting for one attempt.
  void AccountAttempt(const ResourceVector& demand, bool admitted);

  ResourcePool* pool_;
  ReservationId next_id_ = 1;
  std::unordered_map<ReservationId, ResourceVector> reservations_;
  Stats stats_;
  KindStats kind_stats_[kNumResourceKinds] = {};
};

}  // namespace quasaq::res

#endif  // QUASAQ_RESOURCE_COMPOSITE_API_H_
