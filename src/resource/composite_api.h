#ifndef QUASAQ_RESOURCE_COMPOSITE_API_H_
#define QUASAQ_RESOURCE_COMPOSITE_API_H_

#include <cstdint>
#include <unordered_map>

#include "common/resource_vector.h"
#include "common/status.h"
#include "common/sync.h"
#include "obs/metrics.h"
#include "resource/pool.h"

// Composite QoS API (paper §3.5): the single entry point that hides the
// per-resource managers (CPU / network / disk, GARA-style) behind one
// interface offering the three operations QoS control needs —
// admission control, resource reservation, and renegotiation.
// Reservations are all-or-nothing across every bucket a plan touches.
//
// Thread-safe: one mutex guards the reservation table and the
// admission/denial statistics. The pool's own leaf lock is acquired
// while this one is held (lock order: CompositeQosApi::mu_ →
// ResourcePool::mu_, see docs/ARCHITECTURE.md), which keeps
// release-then-acquire renegotiation atomic with respect to other
// reservations.

namespace quasaq::res {

using ReservationId = int64_t;
inline constexpr ReservationId kInvalidReservationId = 0;

class CompositeQosApi {
 public:
  struct Stats {
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t released = 0;
    uint64_t renegotiations = 0;
    uint64_t renegotiation_failures = 0;
  };

  // Per-resource-kind accounting, mirroring GARA's per-resource managers
  // (CPU / network / disk / memory each with its own manager): how often
  // each kind was requested and how often it was the one that vetoed an
  // admission — i.e. which resource is the system's bottleneck.
  struct KindStats {
    uint64_t requests = 0;
    uint64_t denials = 0;
  };

  /// `pool` must outlive the API object.
  explicit CompositeQosApi(ResourcePool* pool);

  /// Admission control: true when `demand` fits the current system
  /// status without reserving anything.
  bool Admissible(const ResourceVector& demand) const;

  /// Reserves `demand` for the lifetime of a delivery job. On success
  /// the buckets are charged and a reservation handle is returned.
  Result<ReservationId> Reserve(const ResourceVector& demand)
      QUASAQ_EXCLUDES(mu_);

  /// Releases a reservation completely.
  Status Release(ReservationId id) QUASAQ_EXCLUDES(mu_);

  /// Renegotiation: atomically replaces the reservation's demand with
  /// `new_demand` (used when the user changes QoS mid-playback or a
  /// degraded plan is adopted). On failure the old reservation stands.
  Status Renegotiate(ReservationId id, const ResourceVector& new_demand)
      QUASAQ_EXCLUDES(mu_);

  /// Returns the reserved vector for `id`, or nullptr. The pointee is
  /// stable until the reservation is released or renegotiated; callers
  /// that cannot rule out a concurrent release must copy immediately.
  const ResourceVector* Find(ReservationId id) const QUASAQ_EXCLUDES(mu_);

  size_t active_reservations() const QUASAQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return reservations_.size();
  }
  Stats stats() const QUASAQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }
  KindStats kind_stats(ResourceKind kind) const QUASAQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return kind_stats_[static_cast<size_t>(kind)];
  }
  const ResourcePool& pool() const { return *pool_; }

  /// The resource kind that vetoed the most reservations so far, or
  /// empty when nothing has been denied — the operator's first answer
  /// to "what do we buy more of?".
  std::string BottleneckReport() const QUASAQ_EXCLUDES(mu_);

  /// Mirrors reservation accept/reject/release/renegotiate accounting
  /// into `registry` (nullptr detaches). The registry must outlive the
  /// API object; call before the first Reserve.
  void set_metrics(obs::MetricsRegistry* registry) QUASAQ_EXCLUDES(mu_);

 private:
  // Registry handles resolved once in set_metrics; all nullptr when
  // unobserved. Emitted under mu_ — the registry's locks are leaves.
  struct Metrics {
    obs::Counter* reserve_accepted = nullptr;
    obs::Counter* reserve_rejected = nullptr;
    obs::Counter* released = nullptr;
    obs::Counter* renegotiate_accepted = nullptr;
    obs::Counter* renegotiate_rejected = nullptr;
  };

  // Charges per-kind request/denial accounting for one attempt.
  void AccountAttempt(const ResourceVector& demand, bool admitted)
      QUASAQ_REQUIRES(mu_);

  ResourcePool* pool_;  // set at construction, never reassigned
  mutable Mutex mu_;
  ReservationId next_id_ QUASAQ_GUARDED_BY(mu_) = 1;
  std::unordered_map<ReservationId, ResourceVector> reservations_
      QUASAQ_GUARDED_BY(mu_);
  Stats stats_ QUASAQ_GUARDED_BY(mu_);
  KindStats kind_stats_[kNumResourceKinds] QUASAQ_GUARDED_BY(mu_) = {};
  Metrics metrics_ QUASAQ_GUARDED_BY(mu_);
};

}  // namespace quasaq::res

#endif  // QUASAQ_RESOURCE_COMPOSITE_API_H_
