#include "storage/disk_model.h"

#include <cassert>

namespace quasaq::storage {

DiskModel::DiskModel(const Options& options) : options_(options) {
  assert(options_.transfer_kbps > 0.0);
  assert(options_.page_kb > 0.0);
}

SimTime DiskModel::ReadPages(int64_t first_page, int pages) {
  assert(pages > 0);
  ++total_reads_;
  double ms = 0.0;
  if (first_page == next_sequential_page_) {
    ++sequential_reads_;
  } else {
    ms += options_.avg_seek_ms + options_.avg_rotational_ms;
  }
  ms += static_cast<double>(pages) * options_.page_kb /
        options_.transfer_kbps * 1000.0;
  next_sequential_page_ = first_page + pages;
  return MillisToSimTime(ms);
}

BufferPool::BufferPool(DiskModel* disk, size_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  assert(disk_ != nullptr);
  assert(capacity_ > 0);
}

void BufferPool::Touch(int64_t page_key) {
  auto it = entries_.find(page_key);
  assert(it != entries_.end());
  lru_.erase(it->second);
  lru_.push_front(page_key);
  it->second = lru_.begin();
}

void BufferPool::Insert(int64_t page_key) {
  while (entries_.size() >= capacity_) {
    int64_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
  }
  lru_.push_front(page_key);
  entries_[page_key] = lru_.begin();
}

SimTime BufferPool::ReadPage(int64_t page_key) {
  if (entries_.count(page_key) > 0) {
    ++stats_.hits;
    Touch(page_key);
    return 0;
  }
  ++stats_.misses;
  SimTime latency = disk_->ReadPages(page_key, 1);
  Insert(page_key);
  return latency;
}

SimTime BufferPool::ReadRange(int64_t first_key, int pages) {
  assert(pages > 0);
  SimTime latency = 0;
  int run_start = -1;  // index into the range of the first missed page
  for (int i = 0; i <= pages; ++i) {
    bool miss = i < pages && entries_.count(first_key + i) == 0;
    if (miss) {
      ++stats_.misses;
      if (run_start < 0) run_start = i;
    } else {
      if (i < pages) {
        ++stats_.hits;
        Touch(first_key + i);
      }
      if (run_start >= 0) {
        // Coalesce the miss run into one sequential disk read.
        latency += disk_->ReadPages(first_key + run_start, i - run_start);
        for (int j = run_start; j < i; ++j) Insert(first_key + j);
        run_start = -1;
      }
    }
  }
  return latency;
}

}  // namespace quasaq::storage
