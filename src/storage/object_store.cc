#include "storage/object_store.h"

namespace quasaq::storage {

ObjectStore::ObjectStore(SiteId site, double capacity_kb)
    : site_(site), capacity_kb_(capacity_kb) {}

Status ObjectStore::Put(const media::ReplicaInfo& replica) {
  if (replica.site != site_) {
    return Status::InvalidArgument("replica belongs to another site");
  }
  if (objects_.count(replica.id) > 0) {
    return Status::AlreadyExists("physical OID already stored");
  }
  if (capacity_kb_ > 0.0 && used_kb_ + replica.size_kb > capacity_kb_) {
    return Status::ResourceExhausted("storage space exhausted");
  }
  used_kb_ += replica.size_kb;
  objects_.emplace(replica.id, replica);
  return Status::Ok();
}

Status ObjectStore::Delete(PhysicalOid id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status::NotFound("no such physical OID");
  used_kb_ -= it->second.size_kb;
  if (used_kb_ < 0.0) used_kb_ = 0.0;
  objects_.erase(it);
  return Status::Ok();
}

const media::ReplicaInfo* ObjectStore::Get(PhysicalOid id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

std::vector<const media::ReplicaInfo*> ObjectStore::ReplicasOf(
    LogicalOid content) const {
  std::vector<const media::ReplicaInfo*> out;
  for (const auto& [id, replica] : objects_) {
    if (replica.content == content) out.push_back(&replica);
  }
  return out;
}

}  // namespace quasaq::storage
