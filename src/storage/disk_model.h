#ifndef QUASAQ_STORAGE_DISK_MODEL_H_
#define QUASAQ_STORAGE_DISK_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/sim_time.h"

// Block-level disk and buffer-pool models — the Shore-like storage
// substrate underneath the object store. The disk model charges seek +
// rotational + transfer time per request, distinguishing sequential
// from random access; the buffer pool is a pinned-page LRU cache in
// front of it. Streaming reads are sequential and mostly buffered,
// which is why disk bandwidth is rarely the LRB bottleneck — but the
// model lets experiments verify that instead of assuming it.

namespace quasaq::storage {

// One spinning disk (2003-class: ~8 ms seek, ~60 MB/s transfer).
class DiskModel {
 public:
  struct Options {
    double avg_seek_ms = 8.0;
    double avg_rotational_ms = 4.0;
    double transfer_kbps = 60000.0;
    double page_kb = 8.0;
  };

  DiskModel() : DiskModel(Options()) {}
  explicit DiskModel(const Options& options);

  /// Time to read `pages` pages starting at `first_page`. Consecutive
  /// calls that continue where the previous read ended skip the seek.
  SimTime ReadPages(int64_t first_page, int pages);

  double page_kb() const { return options_.page_kb; }
  uint64_t total_reads() const { return total_reads_; }
  uint64_t sequential_reads() const { return sequential_reads_; }

 private:
  Options options_;
  int64_t next_sequential_page_ = -1;
  uint64_t total_reads_ = 0;
  uint64_t sequential_reads_ = 0;
};

// Pinned-page LRU buffer pool over a DiskModel. Pages are identified by
// (object, page index) flattened into one 64-bit key by the caller.
class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;

    double HitRate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) / total;
    }
  };

  /// `capacity_pages` must be positive.
  BufferPool(DiskModel* disk, size_t capacity_pages);

  /// Reads one page, through the cache. Returns the simulated latency
  /// (0 for hits).
  SimTime ReadPage(int64_t page_key);

  /// Reads `pages` consecutive pages starting at `first_key`; misses
  /// are coalesced into sequential disk reads.
  SimTime ReadRange(int64_t first_key, int pages);

  bool Contains(int64_t page_key) const {
    return entries_.count(page_key) > 0;
  }
  size_t resident_pages() const { return entries_.size(); }
  size_t capacity_pages() const { return capacity_; }
  const Stats& stats() const { return stats_; }

 private:
  void Touch(int64_t page_key);
  void Insert(int64_t page_key);

  DiskModel* disk_;
  size_t capacity_;
  Stats stats_;
  std::list<int64_t> lru_;  // front = most recent
  std::unordered_map<int64_t, std::list<int64_t>::iterator> entries_;
};

}  // namespace quasaq::storage

#endif  // QUASAQ_STORAGE_DISK_MODEL_H_
