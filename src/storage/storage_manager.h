#ifndef QUASAQ_STORAGE_STORAGE_MANAGER_H_
#define QUASAQ_STORAGE_STORAGE_MANAGER_H_

#include <memory>

#include "cache/segment_cache.h"
#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "storage/disk_model.h"
#include "storage/object_store.h"

// Site storage manager: the object store plus the disk-bandwidth model.
// Streaming a replica continuously reads it from disk at its bitrate;
// the manager tracks how much sequential read bandwidth is committed so
// that admission control can treat disk bandwidth as a resource bucket.
// When a segment cache is attached, block reads that fall entirely
// inside cached segments are served from memory instead of the disk
// path (and misses warm the cache through its eviction policy).

namespace quasaq::storage {

// One site's storage subsystem ("Shore" stand-in).
class StorageManager {
 public:
  struct Options {
    // Sustained sequential read bandwidth of the site's disks, KB/s
    // (the admission-control budget; the block-level DiskModel below
    // models per-request latency).
    double disk_bandwidth_kbps = 20000.0;
    // Storage space budget; <= 0 means unlimited.
    double capacity_kb = 0.0;
    // Buffer pool size in pages (DiskModel::Options::page_kb each).
    size_t buffer_pool_pages = 4096;
    // Read bandwidth of the attached segment cache, KB/s (the simulated
    // latency of cache-served block reads).
    double memory_read_kbps = 200000.0;
    cache::SegmentLayout::Options segment_layout;
    DiskModel::Options disk;
  };

  StorageManager(SiteId site, const Options& options);

  SiteId site() const { return store_.site(); }
  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }

  double disk_bandwidth_kbps() const { return options_.disk_bandwidth_kbps; }
  double committed_read_kbps() const { return committed_read_kbps_; }
  double available_read_kbps() const {
    return options_.disk_bandwidth_kbps - committed_read_kbps_;
  }

  /// Commits `kbps` of sequential read bandwidth for the lifetime of a
  /// streaming session. Fails with kResourceExhausted when the disk is
  /// fully committed, kNotFound when the object is not stored here.
  Status CommitRead(PhysicalOid id, double kbps);

  /// Releases bandwidth committed via CommitRead.
  void ReleaseRead(double kbps);

  /// Block-level read of `pages` pages of object `id` starting at page
  /// `first_page`. When the whole range lies in cached segments it is
  /// served from memory at `memory_read_kbps`; otherwise it goes through
  /// the buffer pool and the touched segments are filled into the cache.
  /// Returns the simulated I/O latency (`now` feeds the cache's
  /// recency/popularity state). Fails with kNotFound for objects not
  /// stored here and kInvalidArgument for out-of-range pages.
  Result<SimTime> ReadObjectPages(PhysicalOid id, int64_t first_page,
                                  int pages, SimTime now = 0);

  /// Attaches the site's segment cache (non-owning; may be nullptr to
  /// detach). The cache must outlive the manager.
  void AttachCache(cache::SegmentCache* cache) { cache_ = cache; }
  cache::SegmentCache* cache() { return cache_; }

  const BufferPool& buffer_pool() const { return buffer_pool_; }
  const DiskModel& disk_model() const { return disk_; }

 private:
  Options options_;
  ObjectStore store_;
  DiskModel disk_;
  BufferPool buffer_pool_;
  cache::SegmentCache* cache_ = nullptr;
  double committed_read_kbps_ = 0.0;
};

}  // namespace quasaq::storage

#endif  // QUASAQ_STORAGE_STORAGE_MANAGER_H_
