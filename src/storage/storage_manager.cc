#include "storage/storage_manager.h"

#include <algorithm>
#include <cmath>

#include "cache/segment.h"

namespace quasaq::storage {

StorageManager::StorageManager(SiteId site, const Options& options)
    : options_(options),
      store_(site, options.capacity_kb),
      disk_(options.disk),
      buffer_pool_(&disk_, options.buffer_pool_pages) {}

Result<SimTime> StorageManager::ReadObjectPages(PhysicalOid id,
                                                int64_t first_page,
                                                int pages, SimTime now) {
  const media::ReplicaInfo* replica = store_.Get(id);
  if (replica == nullptr) {
    return Status::NotFound("object not stored at this site");
  }
  if (pages <= 0 || first_page < 0) {
    return Status::InvalidArgument("bad page range");
  }
  int64_t total_pages = static_cast<int64_t>(
      replica->size_kb / disk_.page_kb() + 1.0);
  if (first_page + pages > total_pages) {
    return Status::InvalidArgument("page range beyond object end");
  }
  if (cache_ != nullptr) {
    // Map the page range onto GOP-aligned segments and probe each one.
    // All hits -> memory-speed read, any miss -> disk path (the misses
    // are filled so a re-read of the same range becomes memory-served).
    cache::SegmentLayout layout =
        cache::SegmentLayout::For(*replica, options_.segment_layout);
    double begin_kb = static_cast<double>(first_page) * disk_.page_kb();
    double end_kb = static_cast<double>(first_page + pages) * disk_.page_kb();
    int first_seg = layout.SegmentAtOffsetKb(begin_kb);
    int last_seg = layout.SegmentAtOffsetKb(
        std::min(end_kb, layout.total_kb()) - 1e-9);
    last_seg = std::max(last_seg, first_seg);
    bool all_hits = true;
    for (int seg = first_seg; seg <= last_seg; ++seg) {
      bool hit = cache_->Access(cache::SegmentKey{id, seg},
                                layout.SegmentKb(seg), now);
      all_hits = all_hits && hit;
    }
    if (all_hits && options_.memory_read_kbps > 0.0) {
      double kb = static_cast<double>(pages) * disk_.page_kb();
      return SecondsToSimTime(kb / options_.memory_read_kbps);
    }
  }
  // Flatten (object, page) into the pool's global key space. 16M pages
  // per object (128 GB at 8 KB pages) is far beyond any media object.
  int64_t key = id.value() * (int64_t{1} << 24) + first_page;
  return buffer_pool_.ReadRange(key, pages);
}

Status StorageManager::CommitRead(PhysicalOid id, double kbps) {
  if (!store_.Contains(id)) {
    return Status::NotFound("object not stored at this site");
  }
  if (kbps < 0.0) return Status::InvalidArgument("negative bandwidth");
  if (committed_read_kbps_ + kbps > options_.disk_bandwidth_kbps) {
    return Status::ResourceExhausted("disk read bandwidth exhausted");
  }
  committed_read_kbps_ += kbps;
  return Status::Ok();
}

void StorageManager::ReleaseRead(double kbps) {
  committed_read_kbps_ -= kbps;
  if (committed_read_kbps_ < 0.0) committed_read_kbps_ = 0.0;
}

}  // namespace quasaq::storage
