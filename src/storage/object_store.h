#ifndef QUASAQ_STORAGE_OBJECT_STORE_H_
#define QUASAQ_STORAGE_OBJECT_STORE_H_

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "media/video.h"

// Per-site media object store — the stand-in for the Shore storage
// manager underneath VDBMS. Stores physical replicas keyed by physical
// OID and enforces a storage-space budget (replication is constrained by
// disk space; paper §2 item 1).

namespace quasaq::storage {

// One site's replica store. Owns the ReplicaInfo records for objects
// physically present at the site.
class ObjectStore {
 public:
  /// `capacity_kb` <= 0 means unlimited space.
  explicit ObjectStore(SiteId site, double capacity_kb = 0.0);

  SiteId site() const { return site_; }

  /// Stores a replica. Fails with kInvalidArgument if the replica's site
  /// does not match, kAlreadyExists on duplicate OID, and
  /// kResourceExhausted when space would be exceeded.
  Status Put(const media::ReplicaInfo& replica);

  /// Removes a replica, reclaiming its space.
  Status Delete(PhysicalOid id);

  /// Returns the replica record, or nullptr when not stored here.
  const media::ReplicaInfo* Get(PhysicalOid id) const;

  bool Contains(PhysicalOid id) const { return Get(id) != nullptr; }

  /// Returns every replica of `content` stored at this site.
  std::vector<const media::ReplicaInfo*> ReplicasOf(LogicalOid content) const;

  size_t object_count() const { return objects_.size(); }
  double used_kb() const { return used_kb_; }
  double capacity_kb() const { return capacity_kb_; }

 private:
  SiteId site_;
  double capacity_kb_;
  double used_kb_ = 0.0;
  std::unordered_map<PhysicalOid, media::ReplicaInfo> objects_;
};

}  // namespace quasaq::storage

#endif  // QUASAQ_STORAGE_OBJECT_STORE_H_
