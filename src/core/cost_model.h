#ifndef QUASAQ_CORE_COST_MODEL_H_
#define QUASAQ_CORE_COST_MODEL_H_

#include <memory>
#include <string_view>

#include "common/resource_vector.h"
#include "common/rng.h"
#include "resource/pool.h"

// Cost models for QoS-aware plans (paper §3.4). A cost model maps a
// plan's resource vector — under the *current* system status — to a
// scalar; the Runtime Cost Evaluator ranks plans by it (lower is
// better). The paper's proposal is the Lowest Resource Bucket model;
// Random is the baseline it is evaluated against (Fig. 7), and the
// others are ablations of the design space.

namespace quasaq::core {

class CostModel {
 public:
  virtual ~CostModel() = default;

  virtual std::string_view name() const = 0;

  /// Cost of adding `demand` on top of the usage recorded in `pool`.
  /// Lower is better. Models may be stateful (Random), hence non-const.
  virtual double Cost(const ResourceVector& demand,
                      const res::ResourcePool& pool) = 0;
};

// Lowest Resource Bucket (the paper's model): fill every bucket with the
// plan's demand and return the largest resulting fill height,
//   f(r) = max_i (U_i + r_i) / R_i,
// keeping all buckets growing evenly so no single resource overflows
// early.
class LrbCostModel : public CostModel {
 public:
  std::string_view name() const override { return "LRB"; }
  double Cost(const ResourceVector& demand,
              const res::ResourcePool& pool) override;
};

// Randomized plan choice: assigns each plan a uniform random cost. A
// frequently-used query-optimization strategy with fair performance,
// used as the baseline in Fig. 7.
class RandomCostModel : public CostModel {
 public:
  explicit RandomCostModel(uint64_t seed) : rng_(seed) {}

  std::string_view name() const override { return "Random"; }
  double Cost(const ResourceVector& demand,
              const res::ResourcePool& pool) override;

 private:
  Rng rng_;
};

// Static minimum-total-resources: sum of normalized demands, ignoring
// current usage. Picks the globally cheapest plan even when it piles
// onto an already-hot bucket (ablation).
class MinTotalCostModel : public CostModel {
 public:
  std::string_view name() const override { return "MinTotal"; }
  double Cost(const ResourceVector& demand,
              const res::ResourcePool& pool) override;
};

// Weighted sum of post-admission fill levels across all buckets —
// a smoother load-balancing objective than LRB's max (ablation).
class WeightedSumCostModel : public CostModel {
 public:
  std::string_view name() const override { return "WeightedSum"; }
  double Cost(const ResourceVector& demand,
              const res::ResourcePool& pool) override;
};

/// Factory by name ("lrb", "random", "mintotal", "weightedsum");
/// nullptr for unknown names. Matching is case-insensitive.
std::unique_ptr<CostModel> MakeCostModel(std::string_view name,
                                         uint64_t seed = 1);

}  // namespace quasaq::core

#endif  // QUASAQ_CORE_COST_MODEL_H_
