#include "core/qop.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace quasaq::core {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

// Descending ladders used when relaxing minimum bounds.
constexpr std::array<media::Resolution, 5> kResolutionSteps = {
    media::kResolutionDvd, media::kResolutionSvcd, media::kResolutionVcd,
    media::kResolutionSif, media::kResolutionQcif};
constexpr std::array<double, 6> kFrameRateSteps = {60.0, 24.0, 20.0,
                                                   15.0, 10.0, 5.0};
constexpr std::array<int, 2> kColorSteps = {24, 12};
constexpr std::array<media::AudioQuality, 4> kAudioSteps = {
    media::AudioQuality::kCd, media::AudioQuality::kFm,
    media::AudioQuality::kPhone, media::AudioQuality::kNone};

}  // namespace

std::string_view QopLevelName(QopLevel level) {
  switch (level) {
    case QopLevel::kLow:
      return "low";
    case QopLevel::kMedium:
      return "medium";
    case QopLevel::kHigh:
      return "high";
  }
  return "unknown";
}

std::string QopRequest::ToString() const {
  std::string out = "spatial=" + std::string(QopLevelName(spatial));
  out += " temporal=" + std::string(QopLevelName(temporal));
  out += " color=" + std::string(QopLevelName(color));
  out += " audio=" + std::string(QopLevelName(audio));
  switch (security) {
    case media::SecurityLevel::kNone:
      out += " security=none";
      break;
    case media::SecurityLevel::kStandard:
      out += " security=standard";
      break;
    case media::SecurityLevel::kStrong:
      out += " security=strong";
      break;
  }
  return out;
}

std::optional<QopRequest> QopPresetByName(std::string_view name) {
  QopRequest request;
  if (EqualsIgnoreCase(name, "dvd") || EqualsIgnoreCase(name, "dvd-quality")) {
    request.spatial = QopLevel::kHigh;
    request.temporal = QopLevel::kHigh;
    request.color = QopLevel::kHigh;
    request.audio = QopLevel::kHigh;
    return request;
  }
  if (EqualsIgnoreCase(name, "vcd") || EqualsIgnoreCase(name, "vcd-like")) {
    request.spatial = QopLevel::kMedium;
    request.temporal = QopLevel::kHigh;
    request.color = QopLevel::kHigh;
    request.audio = QopLevel::kHigh;
    return request;
  }
  if (EqualsIgnoreCase(name, "low-bandwidth") ||
      EqualsIgnoreCase(name, "modem")) {
    request.spatial = QopLevel::kLow;
    request.temporal = QopLevel::kLow;
    request.color = QopLevel::kLow;
    request.audio = QopLevel::kLow;
    return request;
  }
  return std::nullopt;
}

UserProfile::UserProfile(UserId id, std::string name)
    : id_(id), name_(std::move(name)) {}

UserProfile UserProfile::Physician(UserId id) {
  UserProfile profile(id, "physician");
  profile.weights_ = RenegotiationWeights{3.0, 2.0, 1.5, 1.0};
  return profile;
}

UserProfile UserProfile::Nurse(UserId id) {
  UserProfile profile(id, "nurse");
  profile.weights_ = RenegotiationWeights{1.0, 2.0, 0.5, 0.4};
  return profile;
}

media::AppQosRange UserProfile::Translate(const QopRequest& request) const {
  media::AppQosRange range;
  switch (request.spatial) {
    case QopLevel::kLow:
      range.min_resolution = media::kResolutionQcif;
      range.max_resolution = media::kResolutionSif;
      break;
    case QopLevel::kMedium:
      range.min_resolution = media::kResolutionSif;
      range.max_resolution = media::kResolutionSvcd;
      break;
    case QopLevel::kHigh:
      range.min_resolution = media::kResolutionSvcd;
      range.max_resolution = media::kResolutionDvd;
      break;
  }
  switch (request.temporal) {
    case QopLevel::kLow:
      range.min_frame_rate = 5.0;
      range.max_frame_rate = 15.0;
      break;
    case QopLevel::kMedium:
      range.min_frame_rate = 15.0;
      range.max_frame_rate = 30.0;
      break;
    case QopLevel::kHigh:
      range.min_frame_rate = 20.0;
      range.max_frame_rate = 60.0;
      break;
  }
  switch (request.color) {
    case QopLevel::kLow:
      range.min_color_depth_bits = 12;
      range.max_color_depth_bits = 16;
      break;
    case QopLevel::kMedium:
      range.min_color_depth_bits = 12;
      range.max_color_depth_bits = 24;
      break;
    case QopLevel::kHigh:
      range.min_color_depth_bits = 24;
      range.max_color_depth_bits = 24;
      break;
  }
  switch (request.audio) {
    case QopLevel::kLow:
      range.min_audio = media::AudioQuality::kNone;
      range.max_audio = media::AudioQuality::kFm;
      break;
    case QopLevel::kMedium:
      range.min_audio = media::AudioQuality::kFm;
      range.max_audio = media::AudioQuality::kCd;
      break;
    case QopLevel::kHigh:
      range.min_audio = media::AudioQuality::kCd;
      range.max_audio = media::AudioQuality::kCd;
      break;
  }
  return range;
}

bool UserProfile::RelaxForRenegotiation(media::AppQosRange& range) const {
  struct Axis {
    double weight;
    int which;  // 0 = spatial, 1 = temporal, 2 = color, 3 = audio
  };
  std::array<Axis, 4> axes = {
      Axis{weights_.spatial, 0}, Axis{weights_.temporal, 1},
      Axis{weights_.color, 2}, Axis{weights_.audio, 3}};
  std::sort(axes.begin(), axes.end(),
            [](const Axis& a, const Axis& b) { return a.weight < b.weight; });

  for (const Axis& axis : axes) {
    if (axis.which == 0) {
      // Lower min_resolution one ladder step.
      for (const media::Resolution& step : kResolutionSteps) {
        if (step.PixelCount() < range.min_resolution.PixelCount()) {
          range.min_resolution = step;
          return true;
        }
      }
    } else if (axis.which == 1) {
      for (double step : kFrameRateSteps) {
        if (step < range.min_frame_rate) {
          range.min_frame_rate = step;
          return true;
        }
      }
    } else if (axis.which == 2) {
      for (int step : kColorSteps) {
        if (step < range.min_color_depth_bits) {
          range.min_color_depth_bits = step;
          return true;
        }
      }
    } else {
      for (media::AudioQuality step : kAudioSteps) {
        if (step < range.min_audio) {
          range.min_audio = step;
          return true;
        }
      }
    }
  }
  return false;
}

}  // namespace quasaq::core
