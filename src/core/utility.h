#ifndef QUASAQ_CORE_UTILITY_H_
#define QUASAQ_CORE_UTILITY_H_

#include "core/cost_evaluator.h"
#include "media/quality.h"

// Utility functions mapping delivered quality to user satisfaction —
// the gain term G of the paper's cost efficiency E = G / C(r). The
// paper's simple model maximizes throughput (G = 1); this module
// implements the "maximized user satisfaction" goal it mentions,
// following the QoS-as-distance view of Walpole et al. [8]: each QoS
// axis contributes a normalized position of the delivered value inside
// the user's acceptable window, combined by per-user weights.

namespace quasaq::core {

// Relative importance of the axes when scoring satisfaction.
struct UtilityWeights {
  double spatial = 1.0;
  double temporal = 1.0;
  double color = 1.0;
  double audio = 0.5;
};

/// Position of `delivered` within [min, max], clipped to [0, 1]; a
/// degenerate window (min == max) scores 1 when met.
double AxisUtility(double delivered, double min_value, double max_value);

/// Satisfaction in [0, 1] of presenting `delivered` against the
/// acceptable window `requested`: the weighted mean of the per-axis
/// utilities. Values outside the window clamp to the window edges (the
/// planner never delivers out of range; renegotiated windows are
/// re-scored against the relaxed range).
double PresentationUtility(const media::AppQos& delivered,
                           const media::AppQosRange& requested,
                           const UtilityWeights& weights = {});

/// Gain function for the Runtime Cost Evaluator under the
/// user-satisfaction goal: gain in [0.1, 1.0] so cost efficiency stays
/// finite and throughput still matters as a tie-breaker.
RuntimeCostEvaluator::GainFunction MakeSatisfactionGain(
    media::AppQosRange requested, UtilityWeights weights = {});

}  // namespace quasaq::core

#endif  // QUASAQ_CORE_UTILITY_H_
