#include "core/quality_manager.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <optional>
#include <thread>

namespace quasaq::core {

QualityManager::QualityManager(meta::DistributedMetadataEngine* metadata,
                               res::CompositeQosApi* qos_api,
                               CostModel* cost_model,
                               std::vector<SiteId> sites,
                               const Options& options)
    : qos_api_(qos_api),
      generator_(metadata, std::move(sites), options.generator),
      evaluator_(cost_model),
      options_(options) {
  assert(qos_api_ != nullptr);
  if (options_.generator.parallel_costing) {
    int threads = options_.generator.costing_threads;
    if (threads <= 0) {
      // A small pool: group expansion is short work and the merge is
      // serial, so a handful of workers saturates the win.
      threads = static_cast<int>(std::thread::hardware_concurrency());
    }
    threads = std::clamp(threads, 1, 8);
    costing_pool_ = std::make_unique<ThreadPool>(threads);
  }
}

QualityManager::Stats QualityManager::stats() const {
  Stats snapshot;
  snapshot.queries = stats_.queries.load(std::memory_order_relaxed);
  snapshot.admitted = stats_.admitted.load(std::memory_order_relaxed);
  snapshot.rejected_no_plan =
      stats_.rejected_no_plan.load(std::memory_order_relaxed);
  snapshot.rejected_no_resources =
      stats_.rejected_no_resources.load(std::memory_order_relaxed);
  snapshot.renegotiated = stats_.renegotiated.load(std::memory_order_relaxed);
  snapshot.plans_generated =
      stats_.plans_generated.load(std::memory_order_relaxed);
  snapshot.groups_pruned =
      stats_.groups_pruned.load(std::memory_order_relaxed);
  return snapshot;
}

void QualityManager::set_observability(obs::Observability* observability) {
  if (observability == nullptr) {
    metrics_ = Metrics{};
    tracer_ = nullptr;
    return;
  }
  obs::MetricsRegistry& reg = observability->metrics();
  metrics_.queries = reg.GetCounter("quasaq_plan_queries_total",
                                    "Delivery queries planned");
  metrics_.admitted = reg.GetCounter("quasaq_plan_admitted_total",
                                     "Queries that passed admission control");
  metrics_.rejected_no_plan =
      reg.GetCounter("quasaq_plan_rejected_no_plan_total",
                     "Queries whose QoS no stored replica satisfies");
  metrics_.rejected_no_resources =
      reg.GetCounter("quasaq_plan_rejected_no_resources_total",
                     "Queries whose every plan failed admission");
  metrics_.relaxations =
      reg.GetCounter("quasaq_plan_relaxations_total",
                     "Second-chance QoS relaxation rounds attempted");
  metrics_.renegotiations =
      reg.GetCounter("quasaq_plan_renegotiations_total",
                     "Mid-playback renegotiations planned (counted once "
                     "per renegotiation, however many relaxation rounds "
                     "it retried)");
  metrics_.generated = reg.GetCounter("quasaq_plan_generated_total",
                                      "Plans materialized and costed");
  metrics_.groups_pruned =
      reg.GetCounter("quasaq_plan_groups_pruned_total",
                     "Search branches the LRB lower bound cut off");
  metrics_.per_query = reg.GetHistogram(
      "quasaq_plan_generated_per_query_count",
      "Plans materialized per query (prefix the admission walk expanded)",
      obs::HistogramOptions{/*first_bound=*/1.0, /*growth=*/2.0,
                            /*bucket_count=*/12});
  metrics_.cutoff_margin = reg.GetHistogram(
      "quasaq_plan_cutoff_margin_ratio",
      "Frontier lower bound over admitted cost when enumeration stopped",
      obs::HistogramOptions{/*first_bound=*/0.25, /*growth=*/1.5,
                            /*bucket_count=*/12});
  tracer_ = &observability->tracer();
}

void QualityManager::TraceBegin(const char* name, obs::Tracer::Args args) {
  if (tracer_ == nullptr || trace_track_ == 0) return;
  tracer_->Begin(trace_track_, name, trace_now_, std::move(args));
}

void QualityManager::TraceEnd(obs::Tracer::Args args) {
  if (tracer_ == nullptr || trace_track_ == 0) return;
  tracer_->End(trace_track_, trace_now_, std::move(args));
}

void QualityManager::TraceInstant(const char* name) {
  if (tracer_ == nullptr || trace_track_ == 0) return;
  tracer_->Instant(trace_track_, name, trace_now_);
}

void QualityManager::PopulateDefaultTranscodeTargets(
    PlanGenerator::Options& options) {
  if (!options.transcode_targets.empty()) return;
  for (const media::AppQos& level :
       media::QualityLadder::Standard().levels) {
    options.transcode_targets.push_back(level);
    media::AppQos variant = level;
    if (level.color_depth_bits > 12) {
      variant.color_depth_bits = 12;
      options.transcode_targets.push_back(variant);
    }
    if (level.audio > media::AudioQuality::kFm) {
      variant = level;
      variant.audio = media::AudioQuality::kFm;
      options.transcode_targets.push_back(variant);
      if (level.color_depth_bits > 12) {
        variant.color_depth_bits = 12;
        options.transcode_targets.push_back(variant);
      }
    }
  }
}

void QualityManager::ConfigureGain(const query::QosRequirement& qos) {
  if (options_.goal == OptimizationGoal::kUserSatisfaction) {
    evaluator_.set_gain_function(
        MakeSatisfactionGain(qos.range, options_.utility_weights));
  } else if (evaluator_.has_gain_function()) {
    // Throughput goal: the gain stays null. Skipping the redundant
    // clear keeps concurrent throughput-goal admissions write-free on
    // the evaluator.
    evaluator_.set_gain_function(nullptr);
  }
}

Result<QualityManager::Admitted> QualityManager::TryAdmitEager(
    SiteId query_site, LogicalOid content, const query::QosRequirement& qos,
    bool* had_plans) {
  TraceBegin("plan.enumerate");
  Result<std::vector<Plan>> plans =
      generator_.Generate(query_site, content, qos);
  if (!plans.ok()) {
    TraceEnd();
    return plans.status();
  }
  stats_.plans_generated += plans->size();
  if (metrics_.generated != nullptr) {
    metrics_.generated->Increment(static_cast<double>(plans->size()));
  }
  TraceEnd({{"plans", std::to_string(plans->size())}});
  *had_plans = !plans->empty();
  if (plans->empty()) {
    return Status::NotFound("no plan satisfies the QoS bounds");
  }
  evaluator_.Rank(*plans, qos_api_->pool());
  TraceBegin("plan.reserve");
  int attempts = 0;
  for (Plan& plan : *plans) {
    if (options_.max_admission_attempts > 0 &&
        attempts >= options_.max_admission_attempts) {
      break;
    }
    ++attempts;
    if (!qos_api_->Admissible(plan.resources)) continue;
    Result<res::ReservationId> reservation =
        qos_api_->Reserve(plan.resources);
    if (!reservation.ok()) continue;  // raced/edge: try the next plan
    Admitted admitted;
    admitted.plan = std::move(plan);
    admitted.reservation = *reservation;
    TraceEnd({{"attempts", std::to_string(attempts)},
              {"site", std::to_string(admitted.plan.delivery_site.value())}});
    return admitted;
  }
  TraceEnd({{"attempts", std::to_string(attempts)},
            {"outcome", "rejected"}});
  return Status::ResourceExhausted("no admittable plan");
}

Result<QualityManager::Admitted> QualityManager::TryAdmitWithStream(
    PlanStream& stream, bool* had_plans) {
  const size_t generated_before = stream.stats().plans_generated;
  // On the streamed path enumeration and admission interleave, so one
  // plan.enumerate span covers the whole walk; reservation of the
  // winning plan still gets its own nested plan.reserve span.
  TraceBegin("plan.enumerate");
  Result<Admitted> result =
      Status::ResourceExhausted("no admittable plan");
  double admitted_cost = 0.0;
  int attempts = 0;
  while (std::optional<PlanStream::Ranked> ranked = stream.Next()) {
    *had_plans = true;
    if (options_.max_admission_attempts > 0 &&
        attempts >= options_.max_admission_attempts) {
      break;
    }
    ++attempts;
    if (!qos_api_->Admissible(ranked->plan.resources)) continue;
    TraceBegin("plan.reserve");
    Result<res::ReservationId> reservation =
        qos_api_->Reserve(ranked->plan.resources);
    if (!reservation.ok()) {  // raced/edge: try the next plan
      TraceEnd({{"outcome", "rejected"}});
      continue;
    }
    Admitted admitted;
    admitted.plan = std::move(ranked->plan);
    admitted.reservation = *reservation;
    admitted_cost = ranked->cost;
    TraceEnd({{"attempts", std::to_string(attempts)},
              {"site", std::to_string(admitted.plan.delivery_site.value())}});
    result = std::move(admitted);
    break;
  }
  const size_t generated =
      stream.stats().plans_generated - generated_before;
  stats_.plans_generated += generated;
  if (metrics_.generated != nullptr) {
    metrics_.generated->Increment(static_cast<double>(generated));
    // How decisively the lower bound cut the rest of the space off: the
    // frontier's best remaining bound relative to the admitted cost.
    std::optional<double> bound = stream.FrontierBound();
    if (result.ok() && bound.has_value() && admitted_cost > 0.0) {
      metrics_.cutoff_margin->Observe(*bound / admitted_cost);
    }
  }
  TraceEnd({{"plans", std::to_string(generated)},
            {"pruned", std::to_string(stream.groups_pruned())}});
  return result;
}

void QualityManager::AccountStreamPruning(const PlanStream& stream) {
  if (!stream.status().ok()) return;
  stats_.groups_pruned += stream.groups_pruned();
  if (metrics_.groups_pruned != nullptr) {
    metrics_.groups_pruned->Increment(
        static_cast<double>(stream.groups_pruned()));
  }
}

Result<QualityManager::Admitted> QualityManager::AdmitQuery(
    SiteId query_site, LogicalOid content, const query::QosRequirement& qos,
    const UserProfile* profile) {
  ++stats_.queries;
  if (metrics_.queries != nullptr) metrics_.queries->Increment();
  TraceBegin("delivery.admit");
  const uint64_t generated_before =
      stats_.plans_generated.load(std::memory_order_relaxed);
  auto observe_per_query = [&] {
    if (metrics_.per_query != nullptr) {
      metrics_.per_query->Observe(static_cast<double>(
          stats_.plans_generated.load(std::memory_order_relaxed) -
          generated_before));
    }
  };
  ConfigureGain(qos);
  const bool lazy = generator_.options().lazy_enumeration;
  // The streamed path opens one PlanStream for the whole admission —
  // relaxation rounds Reset() it over the already-enumerated groups
  // instead of re-fetching metadata and re-seeding per round.
  std::optional<PlanStream> stream;
  bool had_plans = false;
  Result<Admitted> attempt = Status::ResourceExhausted("unreached");
  if (lazy) {
    stream.emplace(&generator_, &evaluator_, &qos_api_->pool(), query_site,
                   content, qos, nullptr, costing_pool());
    attempt = stream->status().ok() ? TryAdmitWithStream(*stream, &had_plans)
                                    : Result<Admitted>(stream->status());
  } else {
    attempt = TryAdmitEager(query_site, content, qos, &had_plans);
  }
  if (attempt.ok()) {
    ++stats_.admitted;
    if (metrics_.admitted != nullptr) metrics_.admitted->Increment();
    if (stream.has_value()) AccountStreamPruning(*stream);
    observe_per_query();
    TraceEnd({{"outcome", "admitted"}});
    return attempt;
  }

  // Second chance: relax the QoS bounds along the axis this user values
  // least and retry (paper §3.2's renegotiation on admission failure).
  bool any_plans_seen = had_plans;
  if (options_.enable_renegotiation && profile != nullptr) {
    query::QosRequirement relaxed = qos;
    for (int round = 0; round < options_.max_renegotiation_rounds; ++round) {
      if (!profile->RelaxForRenegotiation(relaxed.range)) break;
      if (metrics_.relaxations != nullptr) metrics_.relaxations->Increment();
      TraceInstant("plan.relax");
      ConfigureGain(relaxed);
      had_plans = false;
      Result<Admitted> retry = Status::ResourceExhausted("unreached");
      if (stream.has_value() && stream->status().ok()) {
        stream->Reset(relaxed);
        retry = TryAdmitWithStream(*stream, &had_plans);
      } else {
        retry = TryAdmitEager(query_site, content, relaxed, &had_plans);
      }
      any_plans_seen = any_plans_seen || had_plans;
      if (retry.ok()) {
        ++stats_.admitted;
        ++stats_.renegotiated;
        if (metrics_.admitted != nullptr) metrics_.admitted->Increment();
        if (stream.has_value()) AccountStreamPruning(*stream);
        observe_per_query();
        retry->renegotiated = true;
        TraceEnd({{"outcome", "admitted_relaxed"},
                  {"rounds", std::to_string(round + 1)}});
        return retry;
      }
    }
  }

  if (stream.has_value()) AccountStreamPruning(*stream);
  observe_per_query();
  if (any_plans_seen) {
    ++stats_.rejected_no_resources;
    if (metrics_.rejected_no_resources != nullptr) {
      metrics_.rejected_no_resources->Increment();
    }
    TraceEnd({{"outcome", "rejected_no_resources"}});
    return Status::ResourceExhausted("no admittable plan after " +
                                     std::string(profile != nullptr
                                                     ? "renegotiation"
                                                     : "admission control"));
  }
  ++stats_.rejected_no_plan;
  if (metrics_.rejected_no_plan != nullptr) {
    metrics_.rejected_no_plan->Increment();
  }
  TraceEnd({{"outcome", "rejected_no_plan"}});
  return Status::NotFound("no plan satisfies the QoS bounds");
}

Status QualityManager::CompleteDelivery(const Admitted& admitted) {
  return qos_api_->Release(admitted.reservation);
}

Result<std::vector<QualityManager::RankedPlan>> QualityManager::ExplainPlans(
    SiteId query_site, LogicalOid content, const query::QosRequirement& qos,
    size_t limit) {
  ConfigureGain(qos);
  if (generator_.options().lazy_enumeration) {
    PlanStream stream(&generator_, &evaluator_, &qos_api_->pool(),
                      query_site, content, qos, nullptr, costing_pool());
    if (!stream.status().ok()) return stream.status();
    std::vector<RankedPlan> ranked;
    while (ranked.size() < limit) {
      std::optional<PlanStream::Ranked> next = stream.Next();
      if (!next.has_value()) break;
      RankedPlan entry;
      entry.cost =
          evaluator_.model().Cost(next->plan.resources, qos_api_->pool());
      entry.admissible = qos_api_->Admissible(next->plan.resources);
      entry.plan = std::move(next->plan);
      ranked.push_back(std::move(entry));
    }
    stats_.plans_generated += stream.stats().plans_generated;
    stats_.groups_pruned += stream.groups_pruned();
    return ranked;
  }

  Result<std::vector<Plan>> plans =
      generator_.Generate(query_site, content, qos);
  if (!plans.ok()) return plans.status();
  stats_.plans_generated += plans->size();
  evaluator_.Rank(*plans, qos_api_->pool());
  std::vector<RankedPlan> ranked;
  ranked.reserve(std::min(limit, plans->size()));
  for (Plan& plan : *plans) {
    if (ranked.size() >= limit) break;
    RankedPlan entry;
    entry.cost = evaluator_.model().Cost(plan.resources, qos_api_->pool());
    entry.admissible = qos_api_->Admissible(plan.resources);
    entry.plan = std::move(plan);
    ranked.push_back(std::move(entry));
  }
  return ranked;
}

std::string QualityManager::FormatPlanListing(
    LogicalOid content, const std::vector<RankedPlan>& plans) {
  std::string out = "EXPLAIN: " + std::to_string(plans.size()) +
                    " plans for logical OID " +
                    std::to_string(content.value()) + "\n";
  char buf[160];
  int rank = 1;
  for (const RankedPlan& entry : plans) {
    std::snprintf(buf, sizeof(buf),
                  "  %2d. cost=%.4f %-9s %6.1f KB/s  startup=%.1fs  %s\n",
                  rank++, entry.cost,
                  entry.admissible ? "admit" : "reject",
                  entry.plan.wire_rate_kbps, entry.plan.startup_seconds,
                  entry.plan.ToString().c_str());
    out += buf;
  }
  return out;
}

Result<QualityManager::Admitted> QualityManager::RenegotiateImpl(
    SiteId query_site, LogicalOid content, const query::QosRequirement& qos,
    const UserProfile* profile,
    const std::function<Status(const ResourceVector&)>& adopt,
    res::ReservationId reservation) {
  // One renegotiation — however many relaxation rounds it retries below
  // — counts once. Counting per round double-counted retried
  // renegotiations in the exposition.
  if (metrics_.renegotiations != nullptr) {
    metrics_.renegotiations->Increment();
  }
  ConfigureGain(qos);

  // One admission walk at fixed bounds; used per relaxation round.
  auto walk = [&](PlanStream& stream, bool* had_plans) -> Result<Admitted> {
    const size_t generated_before = stream.stats().plans_generated;
    TraceBegin("plan.enumerate");
    Result<Admitted> result = Status::ResourceExhausted(
        "no admittable plan for the renegotiated QoS");
    while (std::optional<PlanStream::Ranked> ranked = stream.Next()) {
      *had_plans = true;
      TraceBegin("plan.reserve");
      Status status = adopt(ranked->plan.resources);
      if (!status.ok()) {
        TraceEnd({{"outcome", "rejected"}});
        continue;
      }
      Admitted admitted;
      admitted.plan = std::move(ranked->plan);
      admitted.reservation = reservation;
      admitted.renegotiated = true;
      TraceEnd({{"site",
                 std::to_string(admitted.plan.delivery_site.value())}});
      result = std::move(admitted);
      break;
    }
    const size_t generated =
        stream.stats().plans_generated - generated_before;
    stats_.plans_generated += generated;
    if (metrics_.generated != nullptr) {
      metrics_.generated->Increment(static_cast<double>(generated));
    }
    TraceEnd({{"plans", std::to_string(generated)}});
    return result;
  };

  if (generator_.options().lazy_enumeration) {
    PlanStream stream(&generator_, &evaluator_, &qos_api_->pool(),
                      query_site, content, qos, nullptr, costing_pool());
    if (!stream.status().ok()) return stream.status();
    bool had_plans = false;
    Result<Admitted> result = walk(stream, &had_plans);
    bool any_plans_seen = had_plans;
    if (!result.ok() && options_.enable_renegotiation &&
        profile != nullptr) {
      // Relaxation rounds reuse the session's still-open stream: the
      // (replica, site) groups stay enumerated, only the QoS window
      // and the frontier re-arm.
      query::QosRequirement relaxed = qos;
      for (int round = 0; round < options_.max_renegotiation_rounds;
           ++round) {
        if (!profile->RelaxForRenegotiation(relaxed.range)) break;
        if (metrics_.relaxations != nullptr) {
          metrics_.relaxations->Increment();
        }
        TraceInstant("plan.relax");
        ConfigureGain(relaxed);
        stream.Reset(relaxed);
        had_plans = false;
        result = walk(stream, &had_plans);
        any_plans_seen = any_plans_seen || had_plans;
        if (result.ok()) break;
      }
    }
    AccountStreamPruning(stream);
    if (!result.ok() && !any_plans_seen) {
      return Status::NotFound("no plan satisfies the new QoS bounds");
    }
    return result;
  }

  // Eager ablation path: regenerate per round.
  query::QosRequirement bounds = qos;
  bool any_plans_seen = false;
  Result<Admitted> result = Status::ResourceExhausted(
      "no admittable plan for the renegotiated QoS");
  for (int round = 0; round <= options_.max_renegotiation_rounds; ++round) {
    if (round > 0) {
      if (!options_.enable_renegotiation || profile == nullptr ||
          !profile->RelaxForRenegotiation(bounds.range)) {
        break;
      }
      if (metrics_.relaxations != nullptr) metrics_.relaxations->Increment();
      TraceInstant("plan.relax");
      ConfigureGain(bounds);
    }
    TraceBegin("plan.enumerate");
    Result<std::vector<Plan>> plans =
        generator_.Generate(query_site, content, bounds);
    if (!plans.ok()) {
      TraceEnd();
      return plans.status();
    }
    stats_.plans_generated += plans->size();
    if (metrics_.generated != nullptr) {
      metrics_.generated->Increment(static_cast<double>(plans->size()));
    }
    TraceEnd({{"plans", std::to_string(plans->size())}});
    any_plans_seen = any_plans_seen || !plans->empty();
    if (plans->empty()) continue;
    evaluator_.Rank(*plans, qos_api_->pool());
    for (Plan& plan : *plans) {
      Status status = adopt(plan.resources);
      if (!status.ok()) continue;
      Admitted admitted;
      admitted.plan = std::move(plan);
      admitted.reservation = reservation;
      admitted.renegotiated = true;
      result = std::move(admitted);
      break;
    }
    if (result.ok()) break;
  }
  if (!result.ok() && !any_plans_seen) {
    return Status::NotFound("no plan satisfies the new QoS bounds");
  }
  return result;
}

Result<QualityManager::Admitted> QualityManager::RenegotiateDelivery(
    res::ReservationId id, SiteId query_site, LogicalOid content,
    const query::QosRequirement& qos, const UserProfile* profile) {
  if (qos_api_->Find(id) == nullptr) {
    return Status::NotFound("unknown reservation");
  }
  return RenegotiateImpl(
      query_site, content, qos, profile,
      [this, id](const ResourceVector& resources) {
        return qos_api_->Renegotiate(id, resources);
      },
      id);
}

Result<QualityManager::Admitted> QualityManager::PlanPausedRenegotiation(
    SiteId query_site, LogicalOid content, const query::QosRequirement& qos,
    const UserProfile* profile) {
  return RenegotiateImpl(
      query_site, content, qos, profile,
      [this](const ResourceVector& resources) {
        // Admission probe: the paused session must be able to carry the
        // plan *now*, but nothing may stay held — Resume re-admits the
        // adopted vector when playback actually restarts.
        Result<res::ReservationId> probe = qos_api_->Reserve(resources);
        if (!probe.ok()) return probe.status();
        Status released = qos_api_->Release(*probe);
        assert(released.ok());
        return released;
      },
      res::kInvalidReservationId);
}

}  // namespace quasaq::core
