#include "core/quality_manager.h"

#include <cassert>
#include <cstdio>

namespace quasaq::core {

QualityManager::QualityManager(meta::DistributedMetadataEngine* metadata,
                               res::CompositeQosApi* qos_api,
                               CostModel* cost_model,
                               std::vector<SiteId> sites,
                               const Options& options)
    : qos_api_(qos_api),
      generator_(metadata, std::move(sites), options.generator),
      evaluator_(cost_model),
      options_(options) {
  assert(qos_api_ != nullptr);
}

void QualityManager::PopulateDefaultTranscodeTargets(
    PlanGenerator::Options& options) {
  if (!options.transcode_targets.empty()) return;
  for (const media::AppQos& level :
       media::QualityLadder::Standard().levels) {
    options.transcode_targets.push_back(level);
    media::AppQos variant = level;
    if (level.color_depth_bits > 12) {
      variant.color_depth_bits = 12;
      options.transcode_targets.push_back(variant);
    }
    if (level.audio > media::AudioQuality::kFm) {
      variant = level;
      variant.audio = media::AudioQuality::kFm;
      options.transcode_targets.push_back(variant);
      if (level.color_depth_bits > 12) {
        variant.color_depth_bits = 12;
        options.transcode_targets.push_back(variant);
      }
    }
  }
}

void QualityManager::ConfigureGain(const query::QosRequirement& qos) {
  if (options_.goal == OptimizationGoal::kUserSatisfaction) {
    evaluator_.set_gain_function(
        MakeSatisfactionGain(qos.range, options_.utility_weights));
  } else {
    evaluator_.set_gain_function(nullptr);
  }
}

Result<QualityManager::Admitted> QualityManager::TryAdmit(
    SiteId query_site, LogicalOid content, const query::QosRequirement& qos,
    bool* had_plans) {
  ConfigureGain(qos);
  if (generator_.options().lazy_enumeration) {
    return TryAdmitStreamed(query_site, content, qos, had_plans);
  }
  return TryAdmitEager(query_site, content, qos, had_plans);
}

Result<QualityManager::Admitted> QualityManager::TryAdmitEager(
    SiteId query_site, LogicalOid content, const query::QosRequirement& qos,
    bool* had_plans) {
  Result<std::vector<Plan>> plans =
      generator_.Generate(query_site, content, qos);
  if (!plans.ok()) return plans.status();
  stats_.plans_generated += plans->size();
  *had_plans = !plans->empty();
  if (plans->empty()) {
    return Status::NotFound("no plan satisfies the QoS bounds");
  }
  evaluator_.Rank(*plans, qos_api_->pool());
  int attempts = 0;
  for (Plan& plan : *plans) {
    if (options_.max_admission_attempts > 0 &&
        attempts >= options_.max_admission_attempts) {
      break;
    }
    ++attempts;
    if (!qos_api_->Admissible(plan.resources)) continue;
    Result<res::ReservationId> reservation =
        qos_api_->Reserve(plan.resources);
    if (!reservation.ok()) continue;  // raced/edge: try the next plan
    Admitted admitted;
    admitted.plan = std::move(plan);
    admitted.reservation = *reservation;
    return admitted;
  }
  return Status::ResourceExhausted("no admittable plan");
}

Result<QualityManager::Admitted> QualityManager::TryAdmitStreamed(
    SiteId query_site, LogicalOid content, const query::QosRequirement& qos,
    bool* had_plans) {
  PlanStream stream(&generator_, &evaluator_, &qos_api_->pool(), query_site,
                    content, qos);
  if (!stream.status().ok()) return stream.status();
  Result<Admitted> result =
      Status::ResourceExhausted("no admittable plan");
  int attempts = 0;
  while (std::optional<PlanStream::Ranked> ranked = stream.Next()) {
    *had_plans = true;
    if (options_.max_admission_attempts > 0 &&
        attempts >= options_.max_admission_attempts) {
      break;
    }
    ++attempts;
    if (!qos_api_->Admissible(ranked->plan.resources)) continue;
    Result<res::ReservationId> reservation =
        qos_api_->Reserve(ranked->plan.resources);
    if (!reservation.ok()) continue;  // raced/edge: try the next plan
    Admitted admitted;
    admitted.plan = std::move(ranked->plan);
    admitted.reservation = *reservation;
    result = std::move(admitted);
    break;
  }
  stats_.plans_generated += stream.stats().plans_generated;
  stats_.groups_pruned += stream.groups_pruned();
  if (!result.ok() && !*had_plans) {
    return Status::NotFound("no plan satisfies the QoS bounds");
  }
  return result;
}

Result<QualityManager::Admitted> QualityManager::AdmitQuery(
    SiteId query_site, LogicalOid content, const query::QosRequirement& qos,
    const UserProfile* profile) {
  ++stats_.queries;
  bool had_plans = false;
  Result<Admitted> attempt = TryAdmit(query_site, content, qos, &had_plans);
  if (attempt.ok()) {
    ++stats_.admitted;
    return attempt;
  }

  // Second chance: relax the QoS bounds along the axis this user values
  // least and retry (paper §3.2's renegotiation on admission failure).
  bool any_plans_seen = had_plans;
  if (options_.enable_renegotiation && profile != nullptr) {
    query::QosRequirement relaxed = qos;
    for (int round = 0; round < options_.max_renegotiation_rounds; ++round) {
      if (!profile->RelaxForRenegotiation(relaxed.range)) break;
      had_plans = false;
      Result<Admitted> retry =
          TryAdmit(query_site, content, relaxed, &had_plans);
      any_plans_seen = any_plans_seen || had_plans;
      if (retry.ok()) {
        ++stats_.admitted;
        ++stats_.renegotiated;
        retry->renegotiated = true;
        return retry;
      }
    }
  }

  if (any_plans_seen) {
    ++stats_.rejected_no_resources;
    return Status::ResourceExhausted("no admittable plan after " +
                                     std::string(profile != nullptr
                                                     ? "renegotiation"
                                                     : "admission control"));
  }
  ++stats_.rejected_no_plan;
  return Status::NotFound("no plan satisfies the QoS bounds");
}

Status QualityManager::CompleteDelivery(const Admitted& admitted) {
  return qos_api_->Release(admitted.reservation);
}

Result<std::vector<QualityManager::RankedPlan>> QualityManager::ExplainPlans(
    SiteId query_site, LogicalOid content, const query::QosRequirement& qos,
    size_t limit) {
  ConfigureGain(qos);
  if (generator_.options().lazy_enumeration) {
    PlanStream stream(&generator_, &evaluator_, &qos_api_->pool(),
                      query_site, content, qos);
    if (!stream.status().ok()) return stream.status();
    std::vector<RankedPlan> ranked;
    while (ranked.size() < limit) {
      std::optional<PlanStream::Ranked> next = stream.Next();
      if (!next.has_value()) break;
      RankedPlan entry;
      entry.cost =
          evaluator_.model().Cost(next->plan.resources, qos_api_->pool());
      entry.admissible = qos_api_->Admissible(next->plan.resources);
      entry.plan = std::move(next->plan);
      ranked.push_back(std::move(entry));
    }
    stats_.plans_generated += stream.stats().plans_generated;
    stats_.groups_pruned += stream.groups_pruned();
    return ranked;
  }

  Result<std::vector<Plan>> plans =
      generator_.Generate(query_site, content, qos);
  if (!plans.ok()) return plans.status();
  stats_.plans_generated += plans->size();
  evaluator_.Rank(*plans, qos_api_->pool());
  std::vector<RankedPlan> ranked;
  ranked.reserve(std::min(limit, plans->size()));
  for (Plan& plan : *plans) {
    if (ranked.size() >= limit) break;
    RankedPlan entry;
    entry.cost = evaluator_.model().Cost(plan.resources, qos_api_->pool());
    entry.admissible = qos_api_->Admissible(plan.resources);
    entry.plan = std::move(plan);
    ranked.push_back(std::move(entry));
  }
  return ranked;
}

std::string QualityManager::FormatPlanListing(
    LogicalOid content, const std::vector<RankedPlan>& plans) {
  std::string out = "EXPLAIN: " + std::to_string(plans.size()) +
                    " plans for logical OID " +
                    std::to_string(content.value()) + "\n";
  char buf[160];
  int rank = 1;
  for (const RankedPlan& entry : plans) {
    std::snprintf(buf, sizeof(buf),
                  "  %2d. cost=%.4f %-9s %6.1f KB/s  startup=%.1fs  %s\n",
                  rank++, entry.cost,
                  entry.admissible ? "admit" : "reject",
                  entry.plan.wire_rate_kbps, entry.plan.startup_seconds,
                  entry.plan.ToString().c_str());
    out += buf;
  }
  return out;
}

Result<QualityManager::Admitted> QualityManager::RenegotiateDelivery(
    res::ReservationId id, SiteId query_site, LogicalOid content,
    const query::QosRequirement& qos) {
  if (qos_api_->Find(id) == nullptr) {
    return Status::NotFound("unknown reservation");
  }
  ConfigureGain(qos);
  if (generator_.options().lazy_enumeration) {
    PlanStream stream(&generator_, &evaluator_, &qos_api_->pool(),
                      query_site, content, qos);
    if (!stream.status().ok()) return stream.status();
    bool had_plans = false;
    Result<Admitted> result = Status::ResourceExhausted(
        "no admittable plan for the renegotiated QoS");
    while (std::optional<PlanStream::Ranked> ranked = stream.Next()) {
      had_plans = true;
      Status status = qos_api_->Renegotiate(id, ranked->plan.resources);
      if (!status.ok()) continue;
      Admitted admitted;
      admitted.plan = std::move(ranked->plan);
      admitted.reservation = id;
      admitted.renegotiated = true;
      result = std::move(admitted);
      break;
    }
    stats_.plans_generated += stream.stats().plans_generated;
    stats_.groups_pruned += stream.groups_pruned();
    if (!result.ok() && !had_plans) {
      return Status::NotFound("no plan satisfies the new QoS bounds");
    }
    return result;
  }

  Result<std::vector<Plan>> plans =
      generator_.Generate(query_site, content, qos);
  if (!plans.ok()) return plans.status();
  stats_.plans_generated += plans->size();
  if (plans->empty()) {
    return Status::NotFound("no plan satisfies the new QoS bounds");
  }
  evaluator_.Rank(*plans, qos_api_->pool());
  for (Plan& plan : *plans) {
    Status status = qos_api_->Renegotiate(id, plan.resources);
    if (!status.ok()) continue;
    Admitted admitted;
    admitted.plan = std::move(plan);
    admitted.reservation = id;
    admitted.renegotiated = true;
    return admitted;
  }
  return Status::ResourceExhausted(
      "no admittable plan for the renegotiated QoS");
}

}  // namespace quasaq::core
