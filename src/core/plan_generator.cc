#include "core/plan_generator.h"

#include <cassert>
#include <optional>

namespace quasaq::core {

PlanGenerator::PlanGenerator(meta::DistributedMetadataEngine* metadata,
                             std::vector<SiteId> sites,
                             const Options& options)
    : metadata_(metadata), sites_(std::move(sites)), options_(options) {
  assert(metadata_ != nullptr);
  assert(!sites_.empty());
  if (options_.transcode_targets.empty()) {
    options_.transcode_targets = media::QualityLadder::Standard().levels;
  }

  // A3 candidates depend only on the options — fixed once.
  drop_choices_.push_back(media::FrameDropStrategy::kNone);
  if (options_.enable_frame_dropping) {
    drop_choices_.push_back(media::FrameDropStrategy::kHalfBFrames);
    drop_choices_.push_back(media::FrameDropStrategy::kAllBFrames);
    drop_choices_.push_back(media::FrameDropStrategy::kAllBAndPFrames);
  }

  // A5 candidates per minimum security level (one table entry per
  // SecurityLevel value; a single raw-space entry when pruning is off).
  if (!options_.apply_static_pruning) {
    // Raw space: every algorithm, including none.
    std::vector<media::EncryptionAlgorithm> raw;
    for (int i = 0; i < media::kNumEncryptionAlgorithms; ++i) {
      raw.push_back(static_cast<media::EncryptionAlgorithm>(i));
    }
    encryption_choices_.push_back(std::move(raw));
  } else {
    for (int level = 0;
         level <= static_cast<int>(media::SecurityLevel::kStrong); ++level) {
      std::vector<media::EncryptionAlgorithm> choices;
      if (static_cast<media::SecurityLevel>(level) ==
          media::SecurityLevel::kNone) {
        // Encrypting an unprotected stream wastes CPU cycles — pruned.
        choices.push_back(media::EncryptionAlgorithm::kNone);
      } else {
        for (int i = 0; i < media::kNumEncryptionAlgorithms; ++i) {
          auto algorithm = static_cast<media::EncryptionAlgorithm>(i);
          if (media::EncryptionStrength(algorithm) >=
              static_cast<media::SecurityLevel>(level)) {
            choices.push_back(algorithm);
          }
        }
      }
      encryption_choices_.push_back(std::move(choices));
    }
  }
}

const std::vector<media::EncryptionAlgorithm>&
PlanGenerator::EncryptionChoices(const query::QosRequirement& qos) const {
  if (!options_.apply_static_pruning) return encryption_choices_.front();
  return encryption_choices_[static_cast<size_t>(qos.min_security)];
}

Result<std::vector<PlanGenerator::GroupSeed>> PlanGenerator::EnumerateGroups(
    SiteId query_site, LogicalOid content, SimTime* metadata_latency) const {
  std::vector<media::ReplicaInfo> replicas =
      metadata_->ReplicasOf(query_site, content, metadata_latency);
  if (replicas.empty()) {
    return Status::NotFound("no replicas registered for logical OID " +
                            std::to_string(content.value()));
  }
  std::vector<GroupSeed> groups;
  for (media::ReplicaInfo& replica : replicas) {
    // Cache warmth of this replica at its source site: a positive
    // fraction yields a cache-served twin of every plan in the group.
    double cache_fraction = 0.0;
    if (cache_view_ != nullptr && options_.enable_cache_plans) {
      cache_fraction = cache_view_->CachedFraction(replica.site, replica);
      if (cache_fraction < options_.min_cache_fraction) cache_fraction = 0.0;
    }
    for (SiteId delivery : sites_) {
      if (!options_.enable_relay && delivery != replica.site) continue;
      GroupSeed seed;
      seed.replica = replica;
      seed.delivery_site = delivery;
      seed.cache_fraction = cache_fraction;
      groups.push_back(std::move(seed));
    }
  }
  return groups;
}

void PlanGenerator::ExpandGroup(const GroupSeed& seed,
                                const query::QosRequirement& qos,
                                std::vector<Plan>& out) const {
  const media::ReplicaInfo& replica = seed.replica;

  const std::vector<media::FrameDropStrategy>& drops = drop_choices_;
  const std::vector<media::EncryptionAlgorithm>& encryptions =
      EncryptionChoices(qos);

  // A4 candidates for this replica: stay at stored quality, or any
  // target the source quality can be down-converted to.
  std::vector<std::optional<media::AppQos>> targets;
  targets.reserve(1 + options_.transcode_targets.size());
  targets.push_back(std::nullopt);
  if (options_.enable_transcoding) {
    for (const media::AppQos& target : options_.transcode_targets) {
      if (options_.apply_static_pruning &&
          !media::TranscodeAllowed(replica.qos, target)) {
        continue;
      }
      if (!options_.apply_static_pruning && target == replica.qos) {
        continue;  // identity transcode is meaningless in any mode
      }
      targets.push_back(target);
    }
  }

  // Upper bound on this group's yield: the full cross product, doubled
  // when every plan gets a cache-served twin. One reservation instead
  // of a reallocation per surviving candidate.
  out.reserve(out.size() + targets.size() * drops.size() *
                               encryptions.size() *
                               (seed.cache_fraction > 0.0 ? 2 : 1));

  for (const std::optional<media::AppQos>& target : targets) {
    for (media::FrameDropStrategy drop : drops) {
      for (media::EncryptionAlgorithm encryption : encryptions) {
        Plan plan;
        plan.replica_oid = replica.id;
        plan.source_site = replica.site;
        plan.delivery_site = seed.delivery_site;
        plan.transform.transcode_target = target;
        plan.transform.drop = drop;
        plan.transform.encryption = encryption;
        FinalizePlan(plan, replica, options_.constants);
        if (options_.apply_static_pruning &&
            !qos.SatisfiedBy(plan.delivered_qos,
                             plan.transform.encryption)) {
          continue;
        }
        // Time Guarantee: drop plans that cannot start in time.
        if (options_.apply_static_pruning &&
            qos.max_startup_seconds > 0.0 &&
            plan.startup_seconds > qos.max_startup_seconds) {
          continue;
        }
        if (seed.cache_fraction > 0.0) {
          // The delivered quality is unchanged and startup only
          // improves, so the variant passes the same static rules.
          Plan cached = plan;
          cached.cache_fraction = seed.cache_fraction;
          FinalizePlan(cached, replica, options_.constants);
          out.push_back(std::move(cached));
        }
        out.push_back(std::move(plan));
      }
    }
  }
}

ResourceVector PlanGenerator::RetrievalTransferDemand(
    const GroupSeed& seed) const {
  const media::ReplicaInfo& replica = seed.replica;
  ResourceVector demand;
  // Retrieval floor: when the group carries cache-served twins, the
  // cached variant reads only (1 - fraction) of the bytes from disk —
  // the component-wise minimum over both twins, so the bound stays
  // admissible for either. (The cached twin's memory-bandwidth share is
  // zero on the disk twin, so it cannot be part of the floor.)
  double disk_kbps = replica.bitrate_kbps * (1.0 - seed.cache_fraction);
  if (disk_kbps > 0.0) {
    demand.Add({replica.site, ResourceKind::kDiskBandwidth}, disk_kbps);
  }
  if (seed.delivery_site != replica.site) {
    // Server-to-server transfer of the stored stream, exactly as
    // FinalizePlan charges it for every relayed plan.
    demand.Add({replica.site, ResourceKind::kNetworkBandwidth},
               replica.bitrate_kbps);
    net::StreamTransform plain;
    double forward_cpu = net::StreamCpuFraction(replica, plain,
                                                options_.constants
                                                    .streaming_cost) *
                         options_.constants.relay_cpu_factor;
    demand.Add({replica.site, ResourceKind::kCpu}, forward_cpu);
    demand.Add({seed.delivery_site, ResourceKind::kCpu}, forward_cpu);
  }
  return demand;
}

Result<std::vector<Plan>> PlanGenerator::Generate(
    SiteId query_site, LogicalOid content, const query::QosRequirement& qos,
    SimTime* metadata_latency) {
  Result<std::vector<GroupSeed>> groups =
      EnumerateGroups(query_site, content, metadata_latency);
  if (!groups.ok()) return groups.status();
  std::vector<Plan> plans;
  for (const GroupSeed& seed : *groups) {
    ExpandGroup(seed, qos, plans);
  }
  return plans;
}

}  // namespace quasaq::core
