#ifndef QUASAQ_CORE_PLAN_GENERATOR_H_
#define QUASAQ_CORE_PLAN_GENERATOR_H_

#include <vector>

#include "cache/cache_manager.h"
#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "core/plan.h"
#include "media/library.h"
#include "metadata/distributed_engine.h"
#include "query/ast.h"

// Plan Generator (paper §3.4): enumerates the search space of delivery
// plans for a logical object — all admissible combinations of physical
// replica (A1), delivery site (A2), frame-dropping strategy (A3),
// transcoding target (A4) and encryption algorithm (A5), with the
// activity order fixed (retrieval -> transfer -> transcode -> drop ->
// encrypt), which reduces the space from O(n! d^n) to O(d^n).
//
// Static rules drop plans that can never satisfy the query's QoS
// (up-transcoding, out-of-range delivered quality) and obvious
// performance pitfalls (encrypting when no security is requested —
// encryption always follows dropping by construction).

namespace quasaq::core {

class PlanGenerator {
 public:
  struct Options {
    // Activity sets that may appear in plans.
    bool enable_frame_dropping = true;
    bool enable_transcoding = true;
    bool enable_relay = true;  // delivery site != source site
    // When false, QoS-satisfaction filtering and the wasteful-plan rules
    // are skipped (the raw combinatorial space; ablation only — such
    // plans must not be executed).
    bool apply_static_pruning = true;
    // Candidate transcode targets (defaults to the standard ladder).
    std::vector<media::AppQos> transcode_targets;
    // Cache-served plan variants (requires a cache view, see below):
    // when a replica's source site has at least `min_cache_fraction` of
    // the object resident in its segment cache, every plan for that
    // replica is additionally emitted as a cache-served variant whose
    // resource vector swaps that share of disk bandwidth for memory
    // bandwidth.
    bool enable_cache_plans = true;
    double min_cache_fraction = 0.05;
    PlanCostConstants constants;
  };

  /// `metadata` must outlive the generator. `sites` is the set of
  /// candidate delivery sites.
  PlanGenerator(meta::DistributedMetadataEngine* metadata,
                std::vector<SiteId> sites, const Options& options);

  /// Enumerates plans for delivering `content` under `qos`, as seen from
  /// `query_site` (metadata access latency is accumulated into
  /// `metadata_latency` when non-null). The result can be empty: no
  /// replica/activity combination satisfies the QoS bounds.
  Result<std::vector<Plan>> Generate(SiteId query_site, LogicalOid content,
                                     const query::QosRequirement& qos,
                                     SimTime* metadata_latency = nullptr);

  const Options& options() const { return options_; }

  /// Attaches the cache state consulted for cache-served plan variants
  /// (nullptr detaches; the view must outlive the generator). Lookups
  /// happen at generation time, so each query sees current warmth.
  void set_cache_view(const cache::CacheView* view) { cache_view_ = view; }
  const cache::CacheView* cache_view() const { return cache_view_; }

 private:
  std::vector<media::EncryptionAlgorithm> EncryptionChoices(
      const query::QosRequirement& qos) const;

  meta::DistributedMetadataEngine* metadata_;
  std::vector<SiteId> sites_;
  Options options_;
  const cache::CacheView* cache_view_ = nullptr;
};

}  // namespace quasaq::core

#endif  // QUASAQ_CORE_PLAN_GENERATOR_H_
