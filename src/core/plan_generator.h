#ifndef QUASAQ_CORE_PLAN_GENERATOR_H_
#define QUASAQ_CORE_PLAN_GENERATOR_H_

#include <vector>

#include "cache/cache_manager.h"
#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "core/plan.h"
#include "media/library.h"
#include "metadata/distributed_engine.h"
#include "query/ast.h"

// Plan Generator (paper §3.4): enumerates the search space of delivery
// plans for a logical object — all admissible combinations of physical
// replica (A1), delivery site (A2), frame-dropping strategy (A3),
// transcoding target (A4) and encryption algorithm (A5), with the
// activity order fixed (retrieval -> transfer -> transcode -> drop ->
// encrypt), which reduces the space from O(n! d^n) to O(d^n).
//
// Static rules drop plans that can never satisfy the query's QoS
// (up-transcoding, out-of-range delivered quality) and obvious
// performance pitfalls (encrypting when no security is requested —
// encryption always follows dropping by construction).
//
// The enumeration is factored into two stages so core/plan_stream.h can
// search the space lazily: EnumerateGroups fixes the (A1, A2) prefix —
// one GroupSeed per (replica, delivery site) pair — and ExpandGroup
// materializes the activity combinations (A3–A5) of one group. The
// eager Generate() is the composition of the two and remains available
// for the ablation benches.

namespace quasaq::core {

class PlanGenerator {
 public:
  struct Options {
    // Activity sets that may appear in plans.
    bool enable_frame_dropping = true;
    bool enable_transcoding = true;
    bool enable_relay = true;  // delivery site != source site
    // When false, QoS-satisfaction filtering and the wasteful-plan rules
    // are skipped (the raw combinatorial space; ablation only — such
    // plans must not be executed).
    bool apply_static_pruning = true;
    // When true the Quality Manager searches the plan space lazily
    // through a best-first PlanStream (core/plan_stream.h) instead of
    // materializing and ranking every plan. The ranking order is
    // identical either way; set to false to benchmark the eager path.
    bool lazy_enumeration = true;
    // Parallel plan costing (lazy path only): PlanStream expands and
    // costs (replica, site) groups concurrently on a small worker pool
    // instead of one group at a time. Yield order stays bit-identical
    // to the serial walk — extra early expansions only turn admissible
    // lower bounds into exact keys — but only when the cost model
    // supports a sound lower bound (pure LRB, no gain function);
    // stateful models fall back to the serial walk so their per-plan
    // call order is preserved.
    bool parallel_costing = false;
    // Worker threads for parallel costing; 0 picks a small default from
    // the hardware concurrency.
    int costing_threads = 0;
    // Candidate transcode targets (defaults to the standard ladder).
    std::vector<media::AppQos> transcode_targets;
    // Cache-served plan variants (requires a cache view, see below):
    // when a replica's source site has at least `min_cache_fraction` of
    // the object resident in its segment cache, every plan for that
    // replica is additionally emitted as a cache-served variant whose
    // resource vector swaps that share of disk bandwidth for memory
    // bandwidth.
    bool enable_cache_plans = true;
    double min_cache_fraction = 0.05;
    PlanCostConstants constants;
  };

  // One (A1, A2) prefix of the enumeration: the physical replica and the
  // delivery site are fixed, the activity choices (A3–A5) are still
  // open. Groups are ordered replica-major / delivery-site-minor, which
  // is exactly the eager enumeration order.
  struct GroupSeed {
    media::ReplicaInfo replica;
    SiteId delivery_site;
    // Cache warmth of the replica at its source site at enumeration
    // time; > 0 means every plan of the group gets a cache-served twin.
    double cache_fraction = 0.0;
  };

  /// `metadata` must outlive the generator. `sites` is the set of
  /// candidate delivery sites.
  PlanGenerator(meta::DistributedMetadataEngine* metadata,
                std::vector<SiteId> sites, const Options& options);

  /// Enumerates plans for delivering `content` under `qos`, as seen from
  /// `query_site` (metadata access latency is accumulated into
  /// `metadata_latency` when non-null). The result can be empty: no
  /// replica/activity combination satisfies the QoS bounds.
  Result<std::vector<Plan>> Generate(SiteId query_site, LogicalOid content,
                                     const query::QosRequirement& qos,
                                     SimTime* metadata_latency = nullptr);

  /// Stage 1 of the factored enumeration: the (replica, delivery site)
  /// prefixes for `content`, in eager enumeration order. Fails with
  /// kNotFound when no replica is registered.
  Result<std::vector<GroupSeed>> EnumerateGroups(
      SiteId query_site, LogicalOid content,
      SimTime* metadata_latency = nullptr) const;

  /// Stage 2: appends every surviving plan of `seed` to `out`, in eager
  /// enumeration order (cache-served twin immediately before its disk
  /// twin, matching Generate()).
  void ExpandGroup(const GroupSeed& seed, const query::QosRequirement& qos,
                   std::vector<Plan>& out) const;

  /// The retrieval + transfer demand every plan of `seed` carries at
  /// minimum, before any activity choice is fixed: disk bandwidth at the
  /// source (the cache-served floor when the group has cached twins) and,
  /// for relayed groups, the server-to-server transfer share. Overlaying
  /// this vector on the pool lower-bounds the LRB cost of every plan in
  /// the group — the admissible bound PlanStream prunes with.
  ResourceVector RetrievalTransferDemand(const GroupSeed& seed) const;

  const Options& options() const { return options_; }

  /// Attaches the cache state consulted for cache-served plan variants
  /// (nullptr detaches; the view must outlive the generator). Lookups
  /// happen at generation time, so each query sees current warmth.
  void set_cache_view(const cache::CacheView* view) { cache_view_ = view; }
  const cache::CacheView* cache_view() const { return cache_view_; }

 private:
  // The A5 candidates for a query's minimum security level, served from
  // a table precomputed at construction — ExpandGroup runs once per
  // (replica, site) group per query, so rebuilding these per call was
  // measurable allocator traffic on the admission hot path.
  const std::vector<media::EncryptionAlgorithm>& EncryptionChoices(
      const query::QosRequirement& qos) const;

  meta::DistributedMetadataEngine* metadata_;
  std::vector<SiteId> sites_;
  Options options_;
  const cache::CacheView* cache_view_ = nullptr;
  // Immutable after construction (thread-compatible with concurrent
  // ExpandGroup calls).
  std::vector<media::FrameDropStrategy> drop_choices_;
  // Indexed by static_cast<int>(SecurityLevel); raw space at slot 0
  // when static pruning is off.
  std::vector<std::vector<media::EncryptionAlgorithm>> encryption_choices_;
};

}  // namespace quasaq::core

#endif  // QUASAQ_CORE_PLAN_GENERATOR_H_
