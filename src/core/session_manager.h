#ifndef QUASAQ_CORE_SESSION_MANAGER_H_
#define QUASAQ_CORE_SESSION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/resource_vector.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/sync.h"
#include "obs/observability.h"
#include "resource/composite_api.h"
#include "simcore/simulator.h"

// Session lifecycle layer, extracted from the MediaDbSystem facade: owns
// the session table and every piece of per-session bookkeeping —
// timed completion events, expected-end times, reservation handles and
// their resource vectors (for re-admission on resume), pause/resume
// state, and the per-site bitrate pinning the plain-VDBMS configuration
// uses in place of reservations. The facade decides *what* to deliver
// (per system kind) and hands the resulting record to this manager,
// which alone decides *when* resources are released: exactly once, at
// completion, cancellation, or pause.
//
// Sharded for the admission hot path: the table splits into
// `shard_count` shards, sessions routed to the shard of their delivery
// site (site-hashed), each shard under its own annotated Mutex —
// concurrent Start/Pause/Resume/Cancel on different sites never touch
// the same lock. Routing is lock-free: a session ID encodes its shard
// (value = seq * shard_count + shard_index), so Find/Cancel/... go
// straight to the owning shard without a directory lookup, and
// renegotiating a session to a new delivery site never re-homes it.
// Cross-shard aggregation (outstanding(), completed()) walks the shards
// on demand. The default shard_count of 1 reproduces the pre-sharding
// behavior exactly, session IDs included.
//
// Thread-safe: concurrent lifecycle calls serialize per shard and the
// release-exactly-once invariant holds under any interleaving. The
// simulator's event queue is mutated only under the dedicated sim_mu_
// leaf lock, which makes ScheduleAt/Cancel safe against concurrent
// session mutations on other shards — but *driving* the simulator
// (Step/RunAll) must not overlap with session calls from other threads;
// the clock itself stays single-threaded. Lock order:
// SessionShard::mu → CompositeQosApi::mu_ → ResourcePool::mu_, and
// SessionShard::mu → sim_mu_ (docs/ARCHITECTURE.md "Threading model").
// set_observability/set_on_complete are configuration: call them before
// lifecycle calls run concurrently.

namespace quasaq::core {

class SessionManager {
 public:
  struct Record {
    LogicalOid content;
    SimTime start = 0;
    res::ReservationId reservation = res::kInvalidReservationId;
    double vdbms_kbps = 0.0;  // bitrate pinned on `site` (VDBMS only)
    SiteId site;
    // Pause/resume bookkeeping.
    sim::EventId completion_event = sim::kInvalidEventId;
    SimTime expected_end = 0;
    bool paused = false;
    SimTime remaining_at_pause = 0;
    ResourceVector reserved_vector;  // for re-admission on resume
    // Trace track (Tracer::NewTrack) this delivery's spans render on;
    // 0 when tracing is off.
    int64_t trace_track = 0;
  };

  using CompleteCallback = std::function<void(SessionId, SimTime)>;

  /// Both pointers must outlive the manager. `shard_count` fixes the
  /// number of session-table shards for the manager's lifetime (>= 1).
  SessionManager(sim::Simulator* simulator, res::CompositeQosApi* qos_api,
                 int shard_count = 1);

  /// Registers a delivery and schedules its completion. Captures the
  /// reservation's resource vector (when one is held) so resume can
  /// re-admit it, and pins `record.vdbms_kbps` on the record's site.
  /// The returned ID encodes the owning shard (site-hashed).
  SessionId Start(Record record, double duration_seconds);

  /// Pauses a running session. Its reserved resources are released
  /// while paused (a paused stream sends nothing); playback time stops
  /// accruing.
  Status Pause(SessionId session);

  /// Resumes a paused session — effectively a renegotiation, since the
  /// released resources must be re-admitted. Fails with
  /// kResourceExhausted when the system can no longer carry the stream;
  /// the session then stays paused, its resources still released.
  Status Resume(SessionId session);

  /// Aborts a session early, releasing whatever it still holds.
  Status Cancel(SessionId session);

  /// Re-points a session at a renegotiated delivery: the new delivery
  /// site and the resource vector resume must re-admit. The reservation
  /// handle itself is unchanged (renegotiation swaps it in place); for
  /// paused sessions nothing is acquired until Resume. The session
  /// stays in its original shard — routing is by ID, not site.
  Status AdoptRenegotiatedPlan(SessionId session, SiteId delivery_site,
                               const ResourceVector& resources);

  /// The session's record, or nullptr. Invalidated by any mutation, so
  /// only serialized callers (the single-threaded driver, tests) may
  /// hold the pointer; concurrent observers must use Snapshot().
  const Record* Find(SessionId session) const;

  /// Copy of the session's record, or nullopt — the concurrency-safe
  /// flavor of Find().
  std::optional<Record> Snapshot(SessionId session) const;

  /// Active VDBMS-pinned bitrate currently streaming from `site`.
  double vdbms_active_kbps(SiteId site) const;

  /// Sessions currently streaming or paused, summed over all shards.
  int outstanding() const;
  /// Sessions that ran to completion, summed over all shards.
  uint64_t completed() const;

  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// Shard index sessions started on `site` land in.
  int ShardOfSite(SiteId site) const {
    return static_cast<int>(ShardIndexOfSite(site));
  }
  /// Shard index encoded in a session ID.
  int ShardOfSession(SessionId session) const {
    return static_cast<int>(ShardIndexOfSession(session));
  }

  void set_on_complete(CompleteCallback callback) {
    MutexLock lock(&config_mu_);
    on_complete_ = std::move(callback);
  }

  /// Attaches lifecycle counters, active/peak gauges, the duration
  /// histogram, and span emission to `observability` (nullptr
  /// detaches). When `observability` carries at least shard_count()
  /// shard registries and the table is sharded, each shard resolves its
  /// counters and duration histogram from its own registry (the
  /// active/peak gauges stay in the main registry); otherwise every
  /// shard reports into the main registry. Call before the first Start;
  /// the pointer must outlive the manager.
  void set_observability(obs::Observability* observability);

 private:
  // Registry handles resolved once in set_observability; all nullptr
  // when unobserved.
  struct Metrics {
    obs::Counter* started = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* paused = nullptr;
    obs::Counter* resumed = nullptr;
    obs::Counter* resume_failed = nullptr;
    obs::Histogram* duration_seconds = nullptr;
  };

  // One session-table shard. heap-allocated so Mutex addresses stay
  // stable in the shards_ vector.
  struct Shard {
    mutable Mutex mu;
    int64_t next_seq QUASAQ_GUARDED_BY(mu) = 1;
    int outstanding QUASAQ_GUARDED_BY(mu) = 0;
    uint64_t completed QUASAQ_GUARDED_BY(mu) = 0;
    std::unordered_map<SessionId, Record> sessions QUASAQ_GUARDED_BY(mu);
    std::unordered_map<SiteId, double> vdbms_site_kbps QUASAQ_GUARDED_BY(mu);
    // Observability is emitted while mu is held; the obs mutexes are
    // strict leaves in the lock order, below ResourcePool::mu_.
    Metrics metrics QUASAQ_GUARDED_BY(mu);
    obs::Tracer* tracer QUASAQ_GUARDED_BY(mu) = nullptr;
  };

  size_t ShardIndexOfSite(SiteId site) const {
    return static_cast<size_t>(
               std::hash<int64_t>{}(site.value())) %
           shards_.size();
  }
  size_t ShardIndexOfSession(SessionId session) const {
    return static_cast<size_t>(session.value()) % shards_.size();
  }

  // Samples the active-session gauge (and bumps the peak) after the
  // global active count changed by `delta`. `sample` mirrors the
  // pre-sharding cadence: Start and Cancel sample, Complete only
  // adjusts the count.
  void NoteActiveDelta(SimTime now, int delta, bool sample);
  void Complete(SessionId id);
  // Returns the session's pinned VDBMS bitrate to its site (no-op for
  // reservation-backed sessions).
  static void UnpinVdbms(Shard& shard, const Record& record)
      QUASAQ_REQUIRES(shard.mu);
  // Simulator event-queue access, serialized across shards (sim_mu_ is
  // a leaf under every Shard::mu).
  sim::EventId ScheduleCompletion(SimTime at, SessionId id)
      QUASAQ_EXCLUDES(sim_mu_);
  void CancelCompletion(sim::EventId event) QUASAQ_EXCLUDES(sim_mu_);

  sim::Simulator* simulator_;      // set at construction, never reassigned
  res::CompositeQosApi* qos_api_;  // likewise
  std::vector<std::unique_ptr<Shard>> shards_;  // immutable layout
  // Serializes simulator event-queue mutations from concurrent shards.
  mutable Mutex sim_mu_;
  mutable Mutex config_mu_;
  CompleteCallback on_complete_ QUASAQ_GUARDED_BY(config_mu_);
  // Global active count + gauges (main registry): written by every
  // shard, so they stay out of the per-shard registries by design.
  std::atomic<int> total_active_{0};
  obs::Gauge* active_gauge_ = nullptr;  // set_observability, pre-threading
  obs::Gauge* peak_gauge_ = nullptr;    // likewise
};

}  // namespace quasaq::core

#endif  // QUASAQ_CORE_SESSION_MANAGER_H_
