#ifndef QUASAQ_CORE_SESSION_MANAGER_H_
#define QUASAQ_CORE_SESSION_MANAGER_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/ids.h"
#include "common/resource_vector.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/sync.h"
#include "obs/observability.h"
#include "resource/composite_api.h"
#include "simcore/simulator.h"

// Session lifecycle layer, extracted from the MediaDbSystem facade: owns
// the session table and every piece of per-session bookkeeping —
// timed completion events, expected-end times, reservation handles and
// their resource vectors (for re-admission on resume), pause/resume
// state, and the per-site bitrate pinning the plain-VDBMS configuration
// uses in place of reservations. The facade decides *what* to deliver
// (per system kind) and hands the resulting record to this manager,
// which alone decides *when* resources are released: exactly once, at
// completion, cancellation, or pause.
//
// Isolating this bookkeeping from placement/planning logic is the
// prerequisite for sharding the session table (see docs/ARCHITECTURE.md
// and ROADMAP.md).
//
// Thread-safe: one annotated mutex guards the session table and every
// piece of bookkeeping, so concurrent Start/Pause/Resume/Cancel calls
// serialize and the release-exactly-once invariant holds under any
// interleaving. The simulator is only touched while mu_ is held, which
// makes its event queue safe against concurrent session mutations — but
// *driving* the simulator (Step/RunAll) must not overlap with session
// calls from other threads; the clock itself stays single-threaded.
// Lock order: SessionManager::mu_ → CompositeQosApi::mu_ →
// ResourcePool::mu_ (docs/ARCHITECTURE.md "Threading model"). The one
// mutex is the seam for per-site sharding: Record is keyed by SiteId,
// so splitting the table into per-site shards each with this lock is a
// local change.

namespace quasaq::core {

class SessionManager {
 public:
  struct Record {
    LogicalOid content;
    SimTime start = 0;
    res::ReservationId reservation = res::kInvalidReservationId;
    double vdbms_kbps = 0.0;  // bitrate pinned on `site` (VDBMS only)
    SiteId site;
    // Pause/resume bookkeeping.
    sim::EventId completion_event = sim::kInvalidEventId;
    SimTime expected_end = 0;
    bool paused = false;
    SimTime remaining_at_pause = 0;
    ResourceVector reserved_vector;  // for re-admission on resume
    // Trace track (Tracer::NewTrack) this delivery's spans render on;
    // 0 when tracing is off.
    int64_t trace_track = 0;
  };

  using CompleteCallback = std::function<void(SessionId, SimTime)>;

  /// Both pointers must outlive the manager.
  SessionManager(sim::Simulator* simulator, res::CompositeQosApi* qos_api);

  /// Registers a delivery and schedules its completion. Captures the
  /// reservation's resource vector (when one is held) so resume can
  /// re-admit it, and pins `record.vdbms_kbps` on the record's site.
  SessionId Start(Record record, double duration_seconds)
      QUASAQ_EXCLUDES(mu_);

  /// Pauses a running session. Its reserved resources are released
  /// while paused (a paused stream sends nothing); playback time stops
  /// accruing.
  Status Pause(SessionId session) QUASAQ_EXCLUDES(mu_);

  /// Resumes a paused session — effectively a renegotiation, since the
  /// released resources must be re-admitted. Fails with
  /// kResourceExhausted when the system can no longer carry the stream;
  /// the session then stays paused, its resources still released.
  Status Resume(SessionId session) QUASAQ_EXCLUDES(mu_);

  /// Aborts a session early, releasing whatever it still holds.
  Status Cancel(SessionId session) QUASAQ_EXCLUDES(mu_);

  /// Re-points a session at a renegotiated delivery: the new delivery
  /// site and the resource vector resume must re-admit. The reservation
  /// handle itself is unchanged (renegotiation swaps it in place); for
  /// paused sessions nothing is acquired until Resume.
  Status AdoptRenegotiatedPlan(SessionId session, SiteId delivery_site,
                               const ResourceVector& resources)
      QUASAQ_EXCLUDES(mu_);

  /// The session's record, or nullptr. Invalidated by any mutation, so
  /// only serialized callers (the single-threaded driver, tests) may
  /// hold the pointer; concurrent observers must copy what they need.
  const Record* Find(SessionId session) const QUASAQ_EXCLUDES(mu_);

  /// Active VDBMS-pinned bitrate currently streaming from `site`.
  double vdbms_active_kbps(SiteId site) const QUASAQ_EXCLUDES(mu_);

  int outstanding() const QUASAQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return outstanding_;
  }
  uint64_t completed() const QUASAQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return completed_;
  }

  void set_on_complete(CompleteCallback callback) QUASAQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    on_complete_ = std::move(callback);
  }

  /// Attaches lifecycle counters, active/peak gauges, the duration
  /// histogram, and span emission to `observability` (nullptr detaches).
  /// Call before the first Start; the pointer must outlive the manager.
  void set_observability(obs::Observability* observability)
      QUASAQ_EXCLUDES(mu_);

 private:
  // Registry handles resolved once in set_observability; all nullptr
  // when unobserved.
  struct Metrics {
    obs::Counter* started = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* paused = nullptr;
    obs::Counter* resumed = nullptr;
    obs::Counter* resume_failed = nullptr;
    obs::Gauge* active = nullptr;
    obs::Gauge* peak = nullptr;
    obs::Histogram* duration_seconds = nullptr;
  };

  // Samples the active-session gauge (and bumps the peak) after
  // outstanding_ changed.
  void SampleActive() QUASAQ_REQUIRES(mu_);
  void Complete(SessionId id) QUASAQ_EXCLUDES(mu_);
  // Returns the session's pinned VDBMS bitrate to its site (no-op for
  // reservation-backed sessions).
  void UnpinVdbms(const Record& record) QUASAQ_REQUIRES(mu_);

  sim::Simulator* simulator_;    // set at construction, never reassigned
  res::CompositeQosApi* qos_api_;  // likewise
  mutable Mutex mu_;
  int64_t next_session_ QUASAQ_GUARDED_BY(mu_) = 1;
  int outstanding_ QUASAQ_GUARDED_BY(mu_) = 0;
  uint64_t completed_ QUASAQ_GUARDED_BY(mu_) = 0;
  std::unordered_map<SessionId, Record> sessions_ QUASAQ_GUARDED_BY(mu_);
  std::unordered_map<SiteId, double> vdbms_site_kbps_ QUASAQ_GUARDED_BY(mu_);
  CompleteCallback on_complete_ QUASAQ_GUARDED_BY(mu_);
  // Observability is emitted while mu_ is held; the obs mutexes are
  // strict leaves in the lock order, below ResourcePool::mu_.
  Metrics metrics_ QUASAQ_GUARDED_BY(mu_);
  obs::Tracer* tracer_ QUASAQ_GUARDED_BY(mu_) = nullptr;
};

}  // namespace quasaq::core

#endif  // QUASAQ_CORE_SESSION_MANAGER_H_
