#ifndef QUASAQ_CORE_QUALITY_MANAGER_H_
#define QUASAQ_CORE_QUALITY_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/cost_evaluator.h"
#include "core/plan_generator.h"
#include "core/plan_stream.h"
#include "core/qop.h"
#include "core/utility.h"
#include "metadata/distributed_engine.h"
#include "obs/observability.h"
#include "query/ast.h"
#include "resource/composite_api.h"

// Quality Manager (paper §3.4): the focal point of QuaSAQ. For a query
// that phase 1 resolved to a logical OID, it generates delivery plans,
// ranks them with the Runtime Cost Evaluator, and walks the ranking
// through admission control — the first admittable plan is reserved and
// executed. When nothing is admittable and the user profile allows it,
// the QoS bounds are relaxed along the user's least-valued axis and the
// query gets a "second chance" (renegotiation).
//
// By default the ranking is walked through a lazy best-first PlanStream
// (core/plan_stream.h): plans are materialized only as far as admission
// control actually looks, and branches whose LRB lower bound exceeds
// the first admitted cost are never generated. Relaxation rounds reuse
// the query's still-open stream (PlanStream::Reset) instead of
// re-seeding enumeration — and so do mid-playback renegotiations. The
// eager materialize-and-sort path is kept behind
// PlanGenerator::Options::lazy_enumeration for the ablation benches;
// both paths admit the identical plan.
//
// Thread-safety: Admit/Renegotiate/Explain may run concurrently from
// many threads when (a) the optimization goal is kThroughput (a gain
// function is per-query evaluator state) and (b) configuration calls
// (set_observability, set_trace_context with a non-zero track) happen
// before threads fan out. Statistics are atomic; the planner state
// (generator, evaluator, metadata read path) is either immutable or
// internally synchronized. Traced (non-zero track) admissions remain
// single-threaded — the trace context is shared state by design.

namespace quasaq::core {

class QualityManager {
 public:
  // Optimization goal of the configurable cost model (paper §3.4,
  // E = G / C(r)): maximize system throughput (G = 1, the paper's
  // evaluated model) or maximize user satisfaction (G = presentation
  // utility of the delivered quality).
  enum class OptimizationGoal {
    kThroughput = 0,
    kUserSatisfaction,
  };

  struct Options {
    PlanGenerator::Options generator;
    bool enable_renegotiation = true;
    int max_renegotiation_rounds = 2;
    // How many plans of the ranking admission control may try before the
    // query is rejected. 0 = walk the entire ranking (engineering
    // improvement); 1 = the paper's semantics, where only the first plan
    // in ascending cost order is submitted for admission.
    int max_admission_attempts = 0;
    OptimizationGoal goal = OptimizationGoal::kThroughput;
    // Axis weights when goal == kUserSatisfaction.
    UtilityWeights utility_weights;
  };

  struct Stats {
    uint64_t queries = 0;
    uint64_t admitted = 0;
    uint64_t rejected_no_plan = 0;      // QoS unsatisfiable from storage
    uint64_t rejected_no_resources = 0; // all plans failed admission
    uint64_t renegotiated = 0;          // admitted at relaxed QoS
    // Plans materialized and costed. On the eager path this is the full
    // search space per query; on the streamed path only the expanded
    // prefix, so the difference is the pruning win.
    uint64_t plans_generated = 0;
    uint64_t groups_pruned = 0;  // streamed path: branches never expanded
  };

  // A successfully admitted query.
  struct Admitted {
    Plan plan;
    res::ReservationId reservation = res::kInvalidReservationId;
    bool renegotiated = false;
  };

  /// All pointers must outlive the manager.
  QualityManager(meta::DistributedMetadataEngine* metadata,
                 res::CompositeQosApi* qos_api, CostModel* cost_model,
                 std::vector<SiteId> sites, const Options& options);

  /// Populates `options.transcode_targets` (when empty) with the
  /// standard ladder plus reduced-color and reduced-audio variants so
  /// color-only or audio-only degradations are plannable — the default
  /// activity set of the full-stack system configuration.
  static void PopulateDefaultTranscodeTargets(PlanGenerator::Options& options);

  /// Plans, ranks and reserves the delivery of `content` under `qos`.
  /// `profile` enables renegotiation (nullptr = none). Fails with
  /// kNotFound when no plan satisfies the QoS from storage and
  /// kResourceExhausted when no satisfying plan passes admission.
  Result<Admitted> AdmitQuery(SiteId query_site, LogicalOid content,
                              const query::QosRequirement& qos,
                              const UserProfile* profile = nullptr);

  /// Releases the resources of a finished (or aborted) delivery.
  Status CompleteDelivery(const Admitted& admitted);

  /// Mid-playback renegotiation (paper §3.2's first scenario: "QoS
  /// requirements are allowed to be modified during media playback"):
  /// re-plans `content` under `qos` and atomically swaps the running
  /// reservation `id` to the best admittable new plan. On failure the
  /// old reservation stands untouched. When `profile` is non-null and
  /// renegotiation is enabled, an unservable `qos` is relaxed along the
  /// profile's least-valued axis for up to max_renegotiation_rounds
  /// retries — each round reusing the same still-open plan stream.
  Result<Admitted> RenegotiateDelivery(res::ReservationId id,
                                       SiteId query_site, LogicalOid content,
                                       const query::QosRequirement& qos,
                                       const UserProfile* profile = nullptr);

  /// Renegotiation flavor for *paused* sessions, which hold no
  /// reservation to swap: plans `qos`, admission-probes the best plan
  /// (reserve + immediate release, so nothing stays held — Resume
  /// re-admits the adopted vector when playback restarts) and returns
  /// it with an invalid reservation id. Counts as a renegotiation, not
  /// as a fresh query: the plan.queries/admitted counters and the
  /// delivery.admit span stay untouched.
  Result<Admitted> PlanPausedRenegotiation(SiteId query_site,
                                           LogicalOid content,
                                           const query::QosRequirement& qos,
                                           const UserProfile* profile =
                                               nullptr);

  // One entry of an EXPLAIN listing: a ranked plan, its cost under the
  // current system status, and whether admission control would take it.
  struct RankedPlan {
    Plan plan;
    double cost = 0.0;
    bool admissible = false;
  };

  /// Enumerates and ranks the plans for `content` under `qos` without
  /// reserving anything — the EXPLAIN path. At most `limit` entries; on
  /// the streamed path enumeration stops as soon as `limit` plans have
  /// been yielded instead of ranking the whole space first.
  Result<std::vector<RankedPlan>> ExplainPlans(
      SiteId query_site, LogicalOid content,
      const query::QosRequirement& qos, size_t limit = 10);

  /// Renders an EXPLAIN listing for `content`, one plan per line with
  /// its cost, wire rate, startup latency and admissibility.
  static std::string FormatPlanListing(LogicalOid content,
                                       const std::vector<RankedPlan>& plans);

  /// Consistent snapshot of the counters (fields are accumulated
  /// atomically, so concurrent admissions never tear it).
  Stats stats() const;
  res::CompositeQosApi& qos_api() { return *qos_api_; }
  PlanGenerator& generator() { return generator_; }

  /// The worker pool parallel plan costing runs on; nullptr unless
  /// PlanGenerator::Options::parallel_costing is set.
  ThreadPool* costing_pool() const { return costing_pool_.get(); }

  /// Attaches plan-search counters/histograms and span emission
  /// (nullptr detaches). The pointer must outlive the manager.
  void set_observability(obs::Observability* observability);

  /// Trace context for the next Admit/Renegotiate call: the owning
  /// delivery's track and the sim time to stamp spans with (the sim
  /// clock does not advance during admission, so every span of one
  /// admission shares a timestamp). track 0 disables span emission.
  /// Not thread-safe: traced admissions belong to the single-threaded
  /// driver; concurrent callers must leave the context untouched at its
  /// default of 0 (docs/ARCHITECTURE.md).
  void set_trace_context(int64_t track, SimTime now) {
    trace_track_ = track;
    trace_now_ = now;
  }

 private:
  // Registry handles resolved once in set_observability; all nullptr
  // when unobserved.
  struct Metrics {
    obs::Counter* queries = nullptr;
    obs::Counter* admitted = nullptr;
    obs::Counter* rejected_no_plan = nullptr;
    obs::Counter* rejected_no_resources = nullptr;
    obs::Counter* relaxations = nullptr;
    obs::Counter* renegotiations = nullptr;
    obs::Counter* generated = nullptr;
    obs::Counter* groups_pruned = nullptr;
    obs::Histogram* per_query = nullptr;
    obs::Histogram* cutoff_margin = nullptr;
  };

  // The Stats fields, accumulated with relaxed atomics so concurrent
  // admissions from many threads never race; stats() snapshots them
  // into the plain public struct.
  struct AtomicStats {
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> rejected_no_plan{0};
    std::atomic<uint64_t> rejected_no_resources{0};
    std::atomic<uint64_t> renegotiated{0};
    std::atomic<uint64_t> plans_generated{0};
    std::atomic<uint64_t> groups_pruned{0};
  };

  void TraceBegin(const char* name, obs::Tracer::Args args = {});
  void TraceEnd(obs::Tracer::Args args = {});
  void TraceInstant(const char* name);
  // Installs the gain function matching the optimization goal for a
  // query's QoS window. Write-free for the kThroughput goal (after the
  // first call), so concurrent throughput-goal admissions do not race
  // on the evaluator.
  void ConfigureGain(const query::QosRequirement& qos);
  // One plan-and-admit attempt at fixed QoS bounds against an open
  // stream (create or Reset it first). Fills `had_plans`; accounts the
  // round's generated-plan delta. Does NOT account groups_pruned —
  // that is cumulative stream state, accounted once per stream by
  // AccountStreamPruning.
  Result<Admitted> TryAdmitWithStream(PlanStream& stream, bool* had_plans);
  Result<Admitted> TryAdmitEager(SiteId query_site, LogicalOid content,
                                 const query::QosRequirement& qos,
                                 bool* had_plans);
  // Folds the finished stream's pruning win into stats/metrics.
  void AccountStreamPruning(const PlanStream& stream);
  // Shared renegotiation walk: streamed (with relaxation rounds reusing
  // the stream) or eager; `adopt` applies an admittable resource vector
  // (swap-in-place for live sessions, reserve-probe for paused ones)
  // and `reservation` is what the returned Admitted carries.
  Result<Admitted> RenegotiateImpl(
      SiteId query_site, LogicalOid content,
      const query::QosRequirement& qos, const UserProfile* profile,
      const std::function<Status(const ResourceVector&)>& adopt,
      res::ReservationId reservation);

  res::CompositeQosApi* qos_api_;
  PlanGenerator generator_;
  RuntimeCostEvaluator evaluator_;
  Options options_;
  AtomicStats stats_;
  Metrics metrics_;
  std::unique_ptr<ThreadPool> costing_pool_;  // non-null iff parallel
  obs::Tracer* tracer_ = nullptr;
  int64_t trace_track_ = 0;
  SimTime trace_now_ = 0;
};

}  // namespace quasaq::core

#endif  // QUASAQ_CORE_QUALITY_MANAGER_H_
