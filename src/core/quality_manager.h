#ifndef QUASAQ_CORE_QUALITY_MANAGER_H_
#define QUASAQ_CORE_QUALITY_MANAGER_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "core/cost_evaluator.h"
#include "core/plan_generator.h"
#include "core/qop.h"
#include "core/utility.h"
#include "metadata/distributed_engine.h"
#include "query/ast.h"
#include "resource/composite_api.h"

// Quality Manager (paper §3.4): the focal point of QuaSAQ. For a query
// that phase 1 resolved to a logical OID, it generates delivery plans,
// ranks them with the Runtime Cost Evaluator, and walks the ranking
// through admission control — the first admittable plan is reserved and
// executed. When nothing is admittable and the user profile allows it,
// the QoS bounds are relaxed along the user's least-valued axis and the
// query gets a "second chance" (renegotiation).

namespace quasaq::core {

class QualityManager {
 public:
  // Optimization goal of the configurable cost model (paper §3.4,
  // E = G / C(r)): maximize system throughput (G = 1, the paper's
  // evaluated model) or maximize user satisfaction (G = presentation
  // utility of the delivered quality).
  enum class OptimizationGoal {
    kThroughput = 0,
    kUserSatisfaction,
  };

  struct Options {
    PlanGenerator::Options generator;
    bool enable_renegotiation = true;
    int max_renegotiation_rounds = 2;
    // How many plans of the ranking admission control may try before the
    // query is rejected. 0 = walk the entire ranking (engineering
    // improvement); 1 = the paper's semantics, where only the first plan
    // in ascending cost order is submitted for admission.
    int max_admission_attempts = 0;
    OptimizationGoal goal = OptimizationGoal::kThroughput;
    // Axis weights when goal == kUserSatisfaction.
    UtilityWeights utility_weights;
  };

  struct Stats {
    uint64_t queries = 0;
    uint64_t admitted = 0;
    uint64_t rejected_no_plan = 0;      // QoS unsatisfiable from storage
    uint64_t rejected_no_resources = 0; // all plans failed admission
    uint64_t renegotiated = 0;          // admitted at relaxed QoS
    uint64_t plans_generated = 0;
  };

  // A successfully admitted query.
  struct Admitted {
    Plan plan;
    res::ReservationId reservation = res::kInvalidReservationId;
    bool renegotiated = false;
  };

  /// All pointers must outlive the manager.
  QualityManager(meta::DistributedMetadataEngine* metadata,
                 res::CompositeQosApi* qos_api, CostModel* cost_model,
                 std::vector<SiteId> sites, const Options& options);

  /// Plans, ranks and reserves the delivery of `content` under `qos`.
  /// `profile` enables renegotiation (nullptr = none). Fails with
  /// kNotFound when no plan satisfies the QoS from storage and
  /// kResourceExhausted when no satisfying plan passes admission.
  Result<Admitted> AdmitQuery(SiteId query_site, LogicalOid content,
                              const query::QosRequirement& qos,
                              const UserProfile* profile = nullptr);

  /// Releases the resources of a finished (or aborted) delivery.
  Status CompleteDelivery(const Admitted& admitted);

  /// Mid-playback renegotiation (paper §3.2's first scenario: "QoS
  /// requirements are allowed to be modified during media playback"):
  /// re-plans `content` under `qos` and atomically swaps the running
  /// reservation `id` to the best admittable new plan. On failure the
  /// old reservation stands untouched.
  Result<Admitted> RenegotiateDelivery(res::ReservationId id,
                                       SiteId query_site, LogicalOid content,
                                       const query::QosRequirement& qos);

  // One entry of an EXPLAIN listing: a ranked plan, its cost under the
  // current system status, and whether admission control would take it.
  struct RankedPlan {
    Plan plan;
    double cost = 0.0;
    bool admissible = false;
  };

  /// Enumerates and ranks the plans for `content` under `qos` without
  /// reserving anything — the EXPLAIN path. At most `limit` entries.
  Result<std::vector<RankedPlan>> ExplainPlans(
      SiteId query_site, LogicalOid content,
      const query::QosRequirement& qos, size_t limit = 10);

  const Stats& stats() const { return stats_; }
  res::CompositeQosApi& qos_api() { return *qos_api_; }
  PlanGenerator& generator() { return generator_; }

 private:
  // One plan-and-admit attempt at fixed QoS bounds. Fills `had_plans`.
  Result<Admitted> TryAdmit(SiteId query_site, LogicalOid content,
                            const query::QosRequirement& qos,
                            bool* had_plans);

  res::CompositeQosApi* qos_api_;
  PlanGenerator generator_;
  RuntimeCostEvaluator evaluator_;
  Options options_;
  Stats stats_;
};

}  // namespace quasaq::core

#endif  // QUASAQ_CORE_QUALITY_MANAGER_H_
