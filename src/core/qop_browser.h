#ifndef QUASAQ_CORE_QOP_BROWSER_H_
#define QUASAQ_CORE_QOP_BROWSER_H_

#include <string>
#include <string_view>

#include "core/qop.h"
#include "core/query_producer.h"
#include "core/system.h"

// QoP Browser (paper §3.2): "the user interface to the underlying
// storage, processing and retrieval system. It enables certain QoP
// parameter control, generation of QoS-aware queries, and execution of
// the resulting presentation plans." One browser = one user at one
// client site, holding at most one active presentation. The browser owns
// the user's profile, turns qualitative requests into query text through
// the Query Producer, and forwards playback-time user actions (pause,
// resume, quality change) as renegotiations.

namespace quasaq::core {

class QopBrowser {
 public:
  struct Presentation {
    LogicalOid content;
    MediaDbSystem::DeliveryOutcome delivery;
  };

  /// `system` must outlive the browser.
  QopBrowser(MediaDbSystem* system, UserProfile profile, SiteId client_site);

  /// Finds and starts presenting the best content match under the
  /// qualitative `request`. An already-active presentation is stopped
  /// first (the user switched videos). On failure nothing is playing.
  Result<Presentation> Present(const query::ContentPredicate& content,
                               const QopRequest& request);

  /// Present with a named preset ("dvd", "vcd", "modem", ...).
  Result<Presentation> PresentPreset(const query::ContentPredicate& content,
                                     std::string_view preset_name);

  // --- user actions during playback ----------------------------------

  Status Pause();
  Status Resume();

  /// The user moves the quality sliders mid-playback; the delivery is
  /// renegotiated under the new translation of `request`.
  Result<MediaDbSystem::DeliveryOutcome> ChangeQuality(
      const QopRequest& request);

  /// Stops the active presentation (no-op Status if none).
  Status Stop();

  bool active() const { return active_; }
  const Presentation& presentation() const { return presentation_; }
  /// The query text the producer generated for the last Present call —
  /// what a GUI would show in its "advanced" box.
  const std::string& last_query_text() const { return last_query_text_; }
  const UserProfile& profile() const { return profile_; }

 private:
  MediaDbSystem* system_;
  UserProfile profile_;
  QueryProducer producer_;
  SiteId client_site_;
  bool active_ = false;
  Presentation presentation_;
  std::string last_query_text_;
};

}  // namespace quasaq::core

#endif  // QUASAQ_CORE_QOP_BROWSER_H_
