#include "core/plan.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace quasaq::core {

std::string Plan::ToString() const {
  std::string out = "oid" + std::to_string(replica_oid.value()) + "@site" +
                    std::to_string(source_site.value());
  if (IsRelayed()) {
    out += "->site" + std::to_string(delivery_site.value());
  }
  out += " ";
  out += media::FrameDropStrategyName(transform.drop);
  if (transform.transcode_target.has_value()) {
    out += " transcode(" +
           media::AppQosToString(*transform.transcode_target) + ")";
  }
  if (transform.encryption != media::EncryptionAlgorithm::kNone) {
    out += " ";
    out += media::EncryptionAlgorithmName(transform.encryption);
  }
  if (IsCacheServed()) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), " cache(%.0f%%)", cache_fraction * 100.0);
    out += buf;
  }
  return out;
}

void FinalizePlan(Plan& plan, const media::ReplicaInfo& replica,
                  const PlanCostConstants& constants) {
  assert(replica.id == plan.replica_oid);
  assert(replica.site == plan.source_site);

  assert(plan.cache_fraction >= 0.0 && plan.cache_fraction <= 1.0);

  plan.delivered_qos = net::StreamDeliveredQos(replica, plan.transform);
  plan.wire_rate_kbps = net::StreamWireRateKbps(replica, plan.transform);
  plan.startup_seconds = constants.startup_base_seconds +
                         constants.buffer_seconds;
  if (plan.IsRelayed()) {
    plan.startup_seconds += constants.startup_relay_seconds;
  }
  if (plan.transform.transcode_target.has_value()) {
    plan.startup_seconds += constants.startup_transcode_seconds;
  }
  if (plan.IsCacheServed()) {
    plan.startup_seconds = std::max(
        plan.startup_seconds -
            constants.startup_cache_seconds * plan.cache_fraction,
        0.0);
  }

  ResourceVector resources;
  // Retrieval: sequential disk read at the stored bitrate, minus the
  // share served from the source site's segment cache — those bytes are
  // charged to the memory-bandwidth bucket instead.
  double disk_kbps = replica.bitrate_kbps * (1.0 - plan.cache_fraction);
  if (disk_kbps > 0.0) {
    resources.Add({plan.source_site, ResourceKind::kDiskBandwidth},
                  disk_kbps);
  }
  if (plan.IsCacheServed()) {
    resources.Add({plan.source_site, ResourceKind::kMemoryBandwidth},
                  replica.bitrate_kbps * plan.cache_fraction);
  }

  if (plan.IsRelayed()) {
    // Server-to-server transfer of the stored stream: outbound bandwidth
    // at the source plus a (cheaper) relay CPU share at both ends.
    resources.Add({plan.source_site, ResourceKind::kNetworkBandwidth},
                  replica.bitrate_kbps);
    net::StreamTransform plain;  // forwarding the stored bytes untouched
    double forward_cpu = net::StreamCpuFraction(replica, plain,
                                                constants.streaming_cost) *
                         constants.relay_cpu_factor;
    resources.Add({plan.source_site, ResourceKind::kCpu}, forward_cpu);
    resources.Add({plan.delivery_site, ResourceKind::kCpu}, forward_cpu);
  }

  // Server activities + packetization run at the delivery site.
  resources.Add({plan.delivery_site, ResourceKind::kCpu},
                net::StreamCpuFraction(replica, plan.transform,
                                       constants.streaming_cost));
  // Client-facing stream leaves the delivery site.
  resources.Add({plan.delivery_site, ResourceKind::kNetworkBandwidth},
                plan.wire_rate_kbps);
  // Staging buffers.
  resources.Add({plan.delivery_site, ResourceKind::kMemory},
                plan.wire_rate_kbps * constants.buffer_seconds);

  plan.resources = std::move(resources);
}

}  // namespace quasaq::core
