#include "core/session_manager.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace quasaq::core {

SessionManager::SessionManager(sim::Simulator* simulator,
                               res::CompositeQosApi* qos_api)
    : simulator_(simulator), qos_api_(qos_api) {
  assert(simulator_ != nullptr);
  assert(qos_api_ != nullptr);
}

SessionId SessionManager::Start(Record record, double duration_seconds) {
  MutexLock lock(&mu_);
  SessionId id(next_session_++);
  record.start = simulator_->Now();
  record.expected_end =
      simulator_->Now() + SecondsToSimTime(duration_seconds);
  if (record.reservation != res::kInvalidReservationId) {
    const ResourceVector* vector = qos_api_->Find(record.reservation);
    assert(vector != nullptr);
    record.reserved_vector = *vector;
  }
  if (record.vdbms_kbps > 0.0) {
    vdbms_site_kbps_[record.site] += record.vdbms_kbps;
  }
  record.completion_event = simulator_->ScheduleAt(
      record.expected_end, [this, id] { Complete(id); });
  sessions_.emplace(id, std::move(record));
  ++outstanding_;
  return id;
}

const SessionManager::Record* SessionManager::Find(SessionId session) const {
  MutexLock lock(&mu_);
  auto it = sessions_.find(session);
  return it == sessions_.end() ? nullptr : &it->second;
}

double SessionManager::vdbms_active_kbps(SiteId site) const {
  MutexLock lock(&mu_);
  auto it = vdbms_site_kbps_.find(site);
  return it == vdbms_site_kbps_.end() ? 0.0 : it->second;
}

void SessionManager::UnpinVdbms(const Record& record) {
  if (record.vdbms_kbps <= 0.0) return;
  double& active = vdbms_site_kbps_[record.site];
  active = std::max(0.0, active - record.vdbms_kbps);
}

Status SessionManager::Pause(SessionId session) {
  MutexLock lock(&mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  Record& record = it->second;
  if (record.paused) {
    return Status::FailedPrecondition("session already paused");
  }
  // A paused stream sends nothing: give its resources back.
  if (record.reservation != res::kInvalidReservationId) {
    Status status = qos_api_->Release(record.reservation);
    assert(status.ok());
    (void)status;
    record.reservation = res::kInvalidReservationId;
  }
  UnpinVdbms(record);
  simulator_->Cancel(record.completion_event);
  record.completion_event = sim::kInvalidEventId;
  record.remaining_at_pause = record.expected_end - simulator_->Now();
  record.paused = true;
  return Status::Ok();
}

Status SessionManager::Resume(SessionId session) {
  MutexLock lock(&mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  Record& record = it->second;
  if (!record.paused) {
    return Status::FailedPrecondition("session is not paused");
  }
  // Re-admission: the released resources must still be available.
  if (!record.reserved_vector.empty()) {
    Result<res::ReservationId> reservation =
        qos_api_->Reserve(record.reserved_vector);
    if (!reservation.ok()) return reservation.status();
    record.reservation = *reservation;
  }
  if (record.vdbms_kbps > 0.0) {
    vdbms_site_kbps_[record.site] += record.vdbms_kbps;
  }
  record.paused = false;
  record.expected_end = simulator_->Now() + record.remaining_at_pause;
  SessionId id = session;
  record.completion_event = simulator_->ScheduleAt(
      record.expected_end, [this, id] { Complete(id); });
  return Status::Ok();
}

Status SessionManager::Cancel(SessionId session) {
  MutexLock lock(&mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  const Record& record = it->second;
  if (record.reservation != res::kInvalidReservationId) {
    Status status = qos_api_->Release(record.reservation);
    assert(status.ok());
    (void)status;
  }
  // Paused sessions already returned their resources.
  if (!record.paused) UnpinVdbms(record);
  sessions_.erase(it);
  --outstanding_;
  return Status::Ok();
}

Status SessionManager::AdoptRenegotiatedPlan(SessionId session,
                                             SiteId delivery_site,
                                             const ResourceVector& resources) {
  MutexLock lock(&mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  Record& record = it->second;
  record.site = delivery_site;
  record.reserved_vector = resources;
  return Status::Ok();
}

void SessionManager::Complete(SessionId id) {
  CompleteCallback callback;
  SimTime completed_at = 0;
  {
    MutexLock lock(&mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;  // cancelled earlier
    const Record& record = it->second;
    if (record.reservation != res::kInvalidReservationId) {
      Status status = qos_api_->Release(record.reservation);
      assert(status.ok());
      (void)status;
    }
    UnpinVdbms(record);
    sessions_.erase(it);
    --outstanding_;
    ++completed_;
    callback = on_complete_;
    completed_at = simulator_->Now();
  }
  // Invoke outside the lock: the facade's completion hook (and user
  // callbacks behind it) may re-enter this manager, e.g. to cancel or
  // start a follow-up session.
  if (callback) callback(id, completed_at);
}

}  // namespace quasaq::core
