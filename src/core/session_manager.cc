#include "core/session_manager.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

namespace quasaq::core {

SessionManager::SessionManager(sim::Simulator* simulator,
                               res::CompositeQosApi* qos_api,
                               int shard_count)
    : simulator_(simulator), qos_api_(qos_api) {
  assert(simulator_ != nullptr);
  assert(qos_api_ != nullptr);
  assert(shard_count >= 1);
  shards_.reserve(static_cast<size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void SessionManager::set_observability(obs::Observability* observability) {
  const bool per_shard =
      observability != nullptr && shards_.size() > 1 &&
      observability->shard_registry_count() >= shard_count();
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    MutexLock lock(&shard.mu);
    if (observability == nullptr) {
      shard.metrics = Metrics{};
      shard.tracer = nullptr;
      continue;
    }
    obs::MetricsRegistry& reg =
        per_shard ? observability->shard_metrics(static_cast<int>(i))
                  : observability->metrics();
    shard.metrics.started =
        reg.GetCounter("quasaq_session_started_total",
                       "Deliveries admitted and started");
    shard.metrics.completed =
        reg.GetCounter("quasaq_session_completed_total",
                       "Sessions that played to the end");
    shard.metrics.cancelled =
        reg.GetCounter("quasaq_session_cancelled_total",
                       "Sessions aborted before completion");
    shard.metrics.paused =
        reg.GetCounter("quasaq_session_paused_total", "Pause operations");
    shard.metrics.resumed = reg.GetCounter("quasaq_session_resumed_total",
                                           "Successful resume operations");
    shard.metrics.resume_failed =
        reg.GetCounter("quasaq_session_resume_failed_total",
                       "Resumes rejected by re-admission");
    shard.metrics.duration_seconds = reg.GetHistogram(
        "quasaq_session_duration_seconds",
        "Wall-clock (simulated) session length from start to completion",
        obs::HistogramOptions{/*first_bound=*/1.0, /*growth=*/2.0,
                              /*bucket_count=*/16});
    shard.tracer = &observability->tracer();
  }
  if (observability == nullptr) {
    active_gauge_ = nullptr;
    peak_gauge_ = nullptr;
    return;
  }
  obs::MetricsRegistry& main = observability->metrics();
  active_gauge_ = main.GetGauge("quasaq_session_active_count",
                                "Sessions currently streaming or paused");
  peak_gauge_ = main.GetGauge("quasaq_session_peak_count",
                              "High-water mark of concurrent sessions");
}

void SessionManager::NoteActiveDelta(SimTime now, int delta, bool sample) {
  const int active =
      total_active_.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (!sample || active_gauge_ == nullptr) return;
  active_gauge_->Sample(now, active);
  peak_gauge_->SampleMax(now, active);
}

sim::EventId SessionManager::ScheduleCompletion(SimTime at, SessionId id) {
  MutexLock lock(&sim_mu_);
  return simulator_->ScheduleAt(at, [this, id] { Complete(id); });
}

void SessionManager::CancelCompletion(sim::EventId event) {
  MutexLock lock(&sim_mu_);
  simulator_->Cancel(event);
}

SessionId SessionManager::Start(Record record, double duration_seconds) {
  const size_t shard_index = ShardIndexOfSite(record.site);
  Shard& shard = *shards_[shard_index];
  const SimTime now = simulator_->Now();
  record.start = now;
  record.expected_end = now + SecondsToSimTime(duration_seconds);
  if (record.reservation != res::kInvalidReservationId) {
    const ResourceVector* vector = qos_api_->Find(record.reservation);
    assert(vector != nullptr);
    record.reserved_vector = *vector;
  }
  SessionId id;
  {
    MutexLock lock(&shard.mu);
    id = SessionId(shard.next_seq++ * shard_count() +
                   static_cast<int64_t>(shard_index));
    if (record.vdbms_kbps > 0.0) {
      shard.vdbms_site_kbps[record.site] += record.vdbms_kbps;
    }
    record.completion_event = ScheduleCompletion(record.expected_end, id);
    if (shard.tracer != nullptr && record.trace_track != 0) {
      shard.tracer->Begin(record.trace_track, "session.stream", now,
                          {{"session", std::to_string(id.value())},
                           {"site", std::to_string(record.site.value())}});
    }
    shard.sessions.emplace(id, std::move(record));
    ++shard.outstanding;
    if (shard.metrics.started != nullptr) shard.metrics.started->Increment();
  }
  NoteActiveDelta(now, +1, /*sample=*/true);
  return id;
}

const SessionManager::Record* SessionManager::Find(SessionId session) const {
  Shard& shard = *shards_[ShardIndexOfSession(session)];
  MutexLock lock(&shard.mu);
  auto it = shard.sessions.find(session);
  return it == shard.sessions.end() ? nullptr : &it->second;
}

std::optional<SessionManager::Record> SessionManager::Snapshot(
    SessionId session) const {
  Shard& shard = *shards_[ShardIndexOfSession(session)];
  MutexLock lock(&shard.mu);
  auto it = shard.sessions.find(session);
  if (it == shard.sessions.end()) return std::nullopt;
  return it->second;
}

double SessionManager::vdbms_active_kbps(SiteId site) const {
  Shard& shard = *shards_[ShardIndexOfSite(site)];
  MutexLock lock(&shard.mu);
  auto it = shard.vdbms_site_kbps.find(site);
  return it == shard.vdbms_site_kbps.end() ? 0.0 : it->second;
}

int SessionManager::outstanding() const {
  int total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->outstanding;
  }
  return total;
}

uint64_t SessionManager::completed() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->completed;
  }
  return total;
}

void SessionManager::UnpinVdbms(Shard& shard, const Record& record) {
  if (record.vdbms_kbps <= 0.0) return;
  double& active = shard.vdbms_site_kbps[record.site];
  active = std::max(0.0, active - record.vdbms_kbps);
}

Status SessionManager::Pause(SessionId session) {
  Shard& shard = *shards_[ShardIndexOfSession(session)];
  MutexLock lock(&shard.mu);
  auto it = shard.sessions.find(session);
  if (it == shard.sessions.end()) return Status::NotFound("no such session");
  Record& record = it->second;
  if (record.paused) {
    return Status::FailedPrecondition("session already paused");
  }
  // A paused stream sends nothing: give its resources back.
  if (record.reservation != res::kInvalidReservationId) {
    Status status = qos_api_->Release(record.reservation);
    assert(status.ok());
    (void)status;
    record.reservation = res::kInvalidReservationId;
  }
  UnpinVdbms(shard, record);
  CancelCompletion(record.completion_event);
  record.completion_event = sim::kInvalidEventId;
  record.remaining_at_pause = record.expected_end - simulator_->Now();
  record.paused = true;
  if (shard.metrics.paused != nullptr) shard.metrics.paused->Increment();
  if (shard.tracer != nullptr && record.trace_track != 0) {
    shard.tracer->Begin(record.trace_track, "session.paused",
                        simulator_->Now());
  }
  return Status::Ok();
}

Status SessionManager::Resume(SessionId session) {
  Shard& shard = *shards_[ShardIndexOfSession(session)];
  MutexLock lock(&shard.mu);
  auto it = shard.sessions.find(session);
  if (it == shard.sessions.end()) return Status::NotFound("no such session");
  Record& record = it->second;
  if (!record.paused) {
    return Status::FailedPrecondition("session is not paused");
  }
  // Re-admission: the released resources must still be available.
  if (!record.reserved_vector.empty()) {
    Result<res::ReservationId> reservation =
        qos_api_->Reserve(record.reserved_vector);
    if (!reservation.ok()) {
      if (shard.metrics.resume_failed != nullptr) {
        shard.metrics.resume_failed->Increment();
      }
      if (shard.tracer != nullptr && record.trace_track != 0) {
        shard.tracer->Instant(record.trace_track, "session.resume_failed",
                              simulator_->Now());
      }
      return reservation.status();
    }
    record.reservation = *reservation;
  }
  if (record.vdbms_kbps > 0.0) {
    shard.vdbms_site_kbps[record.site] += record.vdbms_kbps;
  }
  record.paused = false;
  record.expected_end = simulator_->Now() + record.remaining_at_pause;
  record.completion_event = ScheduleCompletion(record.expected_end, session);
  if (shard.metrics.resumed != nullptr) shard.metrics.resumed->Increment();
  if (shard.tracer != nullptr && record.trace_track != 0) {
    // Closes the session.paused span opened by Pause.
    shard.tracer->End(record.trace_track, simulator_->Now());
  }
  return Status::Ok();
}

Status SessionManager::Cancel(SessionId session) {
  Shard& shard = *shards_[ShardIndexOfSession(session)];
  SimTime now = 0;
  {
    MutexLock lock(&shard.mu);
    auto it = shard.sessions.find(session);
    if (it == shard.sessions.end()) {
      return Status::NotFound("no such session");
    }
    const Record& record = it->second;
    if (record.reservation != res::kInvalidReservationId) {
      Status status = qos_api_->Release(record.reservation);
      assert(status.ok());
      (void)status;
    }
    // Paused sessions already returned their resources.
    if (!record.paused) UnpinVdbms(shard, record);
    now = simulator_->Now();
    if (shard.tracer != nullptr && record.trace_track != 0) {
      shard.tracer->Instant(record.trace_track, "session.cancelled", now);
      shard.tracer->EndAll(record.trace_track, now);
    }
    shard.sessions.erase(it);
    --shard.outstanding;
    if (shard.metrics.cancelled != nullptr) {
      shard.metrics.cancelled->Increment();
    }
  }
  NoteActiveDelta(now, -1, /*sample=*/true);
  return Status::Ok();
}

Status SessionManager::AdoptRenegotiatedPlan(SessionId session,
                                             SiteId delivery_site,
                                             const ResourceVector& resources) {
  Shard& shard = *shards_[ShardIndexOfSession(session)];
  MutexLock lock(&shard.mu);
  auto it = shard.sessions.find(session);
  if (it == shard.sessions.end()) return Status::NotFound("no such session");
  Record& record = it->second;
  record.site = delivery_site;
  record.reserved_vector = resources;
  return Status::Ok();
}

void SessionManager::Complete(SessionId id) {
  Shard& shard = *shards_[ShardIndexOfSession(id)];
  SimTime completed_at = 0;
  {
    MutexLock lock(&shard.mu);
    auto it = shard.sessions.find(id);
    if (it == shard.sessions.end()) return;  // cancelled earlier
    const Record& record = it->second;
    if (record.reservation != res::kInvalidReservationId) {
      Status status = qos_api_->Release(record.reservation);
      assert(status.ok());
      (void)status;
    }
    UnpinVdbms(shard, record);
    completed_at = simulator_->Now();
    if (shard.metrics.completed != nullptr) {
      shard.metrics.completed->Increment();
      shard.metrics.duration_seconds->Observe(
          SimTimeToSeconds(completed_at - record.start));
    }
    if (shard.tracer != nullptr && record.trace_track != 0) {
      // Closes session.stream (and a dangling session.paused, if the
      // caller completed a paused session) plus the delivery root span.
      shard.tracer->EndAll(record.trace_track, completed_at);
    }
    shard.sessions.erase(it);
    --shard.outstanding;
    ++shard.completed;
  }
  NoteActiveDelta(completed_at, -1, /*sample=*/false);
  CompleteCallback callback;
  {
    MutexLock lock(&config_mu_);
    callback = on_complete_;
  }
  // Invoke outside every lock: the facade's completion hook (and user
  // callbacks behind it) may re-enter this manager, e.g. to cancel or
  // start a follow-up session.
  if (callback) callback(id, completed_at);
}

}  // namespace quasaq::core
