#include "core/session_manager.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace quasaq::core {

SessionManager::SessionManager(sim::Simulator* simulator,
                               res::CompositeQosApi* qos_api)
    : simulator_(simulator), qos_api_(qos_api) {
  assert(simulator_ != nullptr);
  assert(qos_api_ != nullptr);
}

void SessionManager::set_observability(obs::Observability* observability) {
  MutexLock lock(&mu_);
  if (observability == nullptr) {
    metrics_ = Metrics{};
    tracer_ = nullptr;
    return;
  }
  obs::MetricsRegistry& reg = observability->metrics();
  metrics_.started = reg.GetCounter("quasaq_session_started_total",
                                    "Deliveries admitted and started");
  metrics_.completed = reg.GetCounter("quasaq_session_completed_total",
                                      "Sessions that played to the end");
  metrics_.cancelled = reg.GetCounter("quasaq_session_cancelled_total",
                                      "Sessions aborted before completion");
  metrics_.paused =
      reg.GetCounter("quasaq_session_paused_total", "Pause operations");
  metrics_.resumed = reg.GetCounter("quasaq_session_resumed_total",
                                    "Successful resume operations");
  metrics_.resume_failed =
      reg.GetCounter("quasaq_session_resume_failed_total",
                     "Resumes rejected by re-admission");
  metrics_.active = reg.GetGauge("quasaq_session_active_count",
                                 "Sessions currently streaming or paused");
  metrics_.peak = reg.GetGauge("quasaq_session_peak_count",
                               "High-water mark of concurrent sessions");
  metrics_.duration_seconds = reg.GetHistogram(
      "quasaq_session_duration_seconds",
      "Wall-clock (simulated) session length from start to completion",
      obs::HistogramOptions{/*first_bound=*/1.0, /*growth=*/2.0,
                            /*bucket_count=*/16});
  tracer_ = &observability->tracer();
}

void SessionManager::SampleActive() {
  if (metrics_.active == nullptr) return;
  const SimTime now = simulator_->Now();
  metrics_.active->Sample(now, outstanding_);
  if (outstanding_ > metrics_.peak->value()) {
    metrics_.peak->Sample(now, outstanding_);
  }
}

SessionId SessionManager::Start(Record record, double duration_seconds) {
  MutexLock lock(&mu_);
  SessionId id(next_session_++);
  record.start = simulator_->Now();
  record.expected_end =
      simulator_->Now() + SecondsToSimTime(duration_seconds);
  if (record.reservation != res::kInvalidReservationId) {
    const ResourceVector* vector = qos_api_->Find(record.reservation);
    assert(vector != nullptr);
    record.reserved_vector = *vector;
  }
  if (record.vdbms_kbps > 0.0) {
    vdbms_site_kbps_[record.site] += record.vdbms_kbps;
  }
  record.completion_event = simulator_->ScheduleAt(
      record.expected_end, [this, id] { Complete(id); });
  if (tracer_ != nullptr && record.trace_track != 0) {
    tracer_->Begin(record.trace_track, "session.stream", simulator_->Now(),
                   {{"session", std::to_string(id.value())},
                    {"site", std::to_string(record.site.value())}});
  }
  sessions_.emplace(id, std::move(record));
  ++outstanding_;
  if (metrics_.started != nullptr) metrics_.started->Increment();
  SampleActive();
  return id;
}

const SessionManager::Record* SessionManager::Find(SessionId session) const {
  MutexLock lock(&mu_);
  auto it = sessions_.find(session);
  return it == sessions_.end() ? nullptr : &it->second;
}

double SessionManager::vdbms_active_kbps(SiteId site) const {
  MutexLock lock(&mu_);
  auto it = vdbms_site_kbps_.find(site);
  return it == vdbms_site_kbps_.end() ? 0.0 : it->second;
}

void SessionManager::UnpinVdbms(const Record& record) {
  if (record.vdbms_kbps <= 0.0) return;
  double& active = vdbms_site_kbps_[record.site];
  active = std::max(0.0, active - record.vdbms_kbps);
}

Status SessionManager::Pause(SessionId session) {
  MutexLock lock(&mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  Record& record = it->second;
  if (record.paused) {
    return Status::FailedPrecondition("session already paused");
  }
  // A paused stream sends nothing: give its resources back.
  if (record.reservation != res::kInvalidReservationId) {
    Status status = qos_api_->Release(record.reservation);
    assert(status.ok());
    (void)status;
    record.reservation = res::kInvalidReservationId;
  }
  UnpinVdbms(record);
  simulator_->Cancel(record.completion_event);
  record.completion_event = sim::kInvalidEventId;
  record.remaining_at_pause = record.expected_end - simulator_->Now();
  record.paused = true;
  if (metrics_.paused != nullptr) metrics_.paused->Increment();
  if (tracer_ != nullptr && record.trace_track != 0) {
    tracer_->Begin(record.trace_track, "session.paused", simulator_->Now());
  }
  return Status::Ok();
}

Status SessionManager::Resume(SessionId session) {
  MutexLock lock(&mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  Record& record = it->second;
  if (!record.paused) {
    return Status::FailedPrecondition("session is not paused");
  }
  // Re-admission: the released resources must still be available.
  if (!record.reserved_vector.empty()) {
    Result<res::ReservationId> reservation =
        qos_api_->Reserve(record.reserved_vector);
    if (!reservation.ok()) {
      if (metrics_.resume_failed != nullptr) {
        metrics_.resume_failed->Increment();
      }
      if (tracer_ != nullptr && record.trace_track != 0) {
        tracer_->Instant(record.trace_track, "session.resume_failed",
                         simulator_->Now());
      }
      return reservation.status();
    }
    record.reservation = *reservation;
  }
  if (record.vdbms_kbps > 0.0) {
    vdbms_site_kbps_[record.site] += record.vdbms_kbps;
  }
  record.paused = false;
  record.expected_end = simulator_->Now() + record.remaining_at_pause;
  SessionId id = session;
  record.completion_event = simulator_->ScheduleAt(
      record.expected_end, [this, id] { Complete(id); });
  if (metrics_.resumed != nullptr) metrics_.resumed->Increment();
  if (tracer_ != nullptr && record.trace_track != 0) {
    // Closes the session.paused span opened by Pause.
    tracer_->End(record.trace_track, simulator_->Now());
  }
  return Status::Ok();
}

Status SessionManager::Cancel(SessionId session) {
  MutexLock lock(&mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  const Record& record = it->second;
  if (record.reservation != res::kInvalidReservationId) {
    Status status = qos_api_->Release(record.reservation);
    assert(status.ok());
    (void)status;
  }
  // Paused sessions already returned their resources.
  if (!record.paused) UnpinVdbms(record);
  if (tracer_ != nullptr && record.trace_track != 0) {
    const SimTime now = simulator_->Now();
    tracer_->Instant(record.trace_track, "session.cancelled", now);
    tracer_->EndAll(record.trace_track, now);
  }
  sessions_.erase(it);
  --outstanding_;
  if (metrics_.cancelled != nullptr) metrics_.cancelled->Increment();
  SampleActive();
  return Status::Ok();
}

Status SessionManager::AdoptRenegotiatedPlan(SessionId session,
                                             SiteId delivery_site,
                                             const ResourceVector& resources) {
  MutexLock lock(&mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  Record& record = it->second;
  record.site = delivery_site;
  record.reserved_vector = resources;
  return Status::Ok();
}

void SessionManager::Complete(SessionId id) {
  CompleteCallback callback;
  SimTime completed_at = 0;
  {
    MutexLock lock(&mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;  // cancelled earlier
    const Record& record = it->second;
    if (record.reservation != res::kInvalidReservationId) {
      Status status = qos_api_->Release(record.reservation);
      assert(status.ok());
      (void)status;
    }
    UnpinVdbms(record);
    completed_at = simulator_->Now();
    if (metrics_.completed != nullptr) {
      metrics_.completed->Increment();
      metrics_.duration_seconds->Observe(
          SimTimeToSeconds(completed_at - record.start));
    }
    if (tracer_ != nullptr && record.trace_track != 0) {
      // Closes session.stream (and a dangling session.paused, if the
      // caller completed a paused session) plus the delivery root span.
      tracer_->EndAll(record.trace_track, completed_at);
    }
    sessions_.erase(it);
    --outstanding_;
    ++completed_;
    callback = on_complete_;
  }
  // Invoke outside the lock: the facade's completion hook (and user
  // callbacks behind it) may re-enter this manager, e.g. to cancel or
  // start a follow-up session.
  if (callback) callback(id, completed_at);
}

}  // namespace quasaq::core
