#ifndef QUASAQ_CORE_COST_EVALUATOR_H_
#define QUASAQ_CORE_COST_EVALUATOR_H_

#include <functional>
#include <vector>

#include "core/cost_model.h"
#include "core/plan.h"
#include "resource/pool.h"

// Runtime Cost Evaluator (paper §3.4): costs every generated plan under
// the current system status and sorts them in ascending cost order; the
// first plan in this order that passes admission control services the
// query. Plans can additionally carry a gain G (paper's cost efficiency
// E = G / C(r)); the default gain of 1 reduces ranking to pure cost.

namespace quasaq::core {

class RuntimeCostEvaluator {
 public:
  // Optional gain function; larger gain ranks a plan earlier at equal
  // cost-efficiency. Must return positive values.
  using GainFunction = std::function<double(const Plan&)>;

  /// `model` must outlive the evaluator.
  explicit RuntimeCostEvaluator(CostModel* model);

  void set_gain_function(GainFunction gain) { gain_ = std::move(gain); }
  /// Whether a gain function is currently installed. Lets callers skip
  /// a redundant set_gain_function(nullptr) — the write matters under
  /// concurrent ranking, where an unconditional clear would race.
  bool has_gain_function() const { return static_cast<bool>(gain_); }

  /// The ranking key of one plan: C(r)/G under `pool`'s current usage.
  /// Exposed so EXPLAIN paths and benchmarks cost plans exactly as the
  /// ranking does. Note that for cache-served plan variants the C(r)
  /// side already reflects the disk->memory-bandwidth resource swap
  /// performed by FinalizePlan — no cache special-casing happens here.
  double EfficiencyCost(const Plan& plan, const res::ResourcePool& pool) const;

  /// The first tie-break of Rank(): the plan's total normalized demand
  /// (sum of amount/capacity over the buckets it touches). Exposed so
  /// PlanStream breaks ties exactly as the eager ranking does.
  static double NormalizedDemand(const Plan& plan,
                                 const res::ResourcePool& pool);

  /// True when EfficiencyCost can be lower-bounded from a partial
  /// resource vector: the pure LRB model with no gain function. Any
  /// gain reshapes the key per plan and the other models are either
  /// stateful (Random) or not monotone maxima, so PlanStream falls back
  /// to exhaustive (but still lazily ordered) search for them.
  bool SupportsCostLowerBound() const;

  /// Sorts `plans` by ascending C(r)/G under `pool`'s current usage.
  /// Ties break toward the plan with the smaller total normalized
  /// demand — which is what lets a cache-served variant overtake its
  /// disk twin when neither resource is the LRB-hot bucket — then
  /// toward enumeration order (deterministic).
  void Rank(std::vector<Plan>& plans, const res::ResourcePool& pool) const;

  CostModel& model() const { return *model_; }

 private:
  CostModel* model_;
  GainFunction gain_;
};

}  // namespace quasaq::core

#endif  // QUASAQ_CORE_COST_EVALUATOR_H_
