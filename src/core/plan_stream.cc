#include "core/plan_stream.h"

#include <cassert>
#include <utility>

namespace quasaq::core {

PlanStream::PlanStream(const PlanGenerator* generator,
                       const RuntimeCostEvaluator* evaluator,
                       const res::ResourcePool* pool, SiteId query_site,
                       LogicalOid content, const query::QosRequirement& qos,
                       SimTime* metadata_latency)
    : generator_(generator),
      evaluator_(evaluator),
      pool_(pool),
      qos_(qos) {
  assert(generator_ != nullptr);
  assert(evaluator_ != nullptr);
  assert(pool_ != nullptr);
  Result<std::vector<PlanGenerator::GroupSeed>> groups =
      generator_->EnumerateGroups(query_site, content, metadata_latency);
  if (!groups.ok()) {
    status_ = groups.status();
    return;
  }
  groups_ = std::move(*groups);
  stats_.groups = groups_.size();
  const bool bounded = evaluator_->SupportsCostLowerBound();
  for (size_t i = 0; i < groups_.size(); ++i) {
    Entry entry;
    // Without a sound bound every group enters at 0: nothing can be
    // yielded before the whole space is expanded, which reproduces the
    // eager evaluator exactly (including the per-plan cost-model call
    // order the Random model's RNG stream depends on).
    entry.cost = bounded
                     ? evaluator_->model().Cost(
                           generator_->RetrievalTransferDemand(groups_[i]),
                           *pool_)
                     : 0.0;
    entry.demand = -1.0;
    entry.group_index = i;
    frontier_.push(entry);
  }
}

void PlanStream::ExpandGroup(size_t group_index) {
  std::vector<Plan> expanded;
  generator_->ExpandGroup(groups_[group_index], qos_, expanded);
  ++stats_.groups_expanded;
  stats_.plans_generated += expanded.size();
  size_t within = 0;
  for (Plan& plan : expanded) {
    Ranked ranked;
    ranked.cost = evaluator_->EfficiencyCost(plan, *pool_);
    ranked.demand = RuntimeCostEvaluator::NormalizedDemand(plan, *pool_);
    ranked.plan = std::move(plan);
    plans_.push_back(std::move(ranked));

    Entry entry;
    entry.cost = plans_.back().cost;
    entry.demand = plans_.back().demand;
    entry.group_index = group_index;
    entry.within_index = within++;
    entry.plan_slot = static_cast<int>(plans_.size()) - 1;
    frontier_.push(entry);
  }
}

std::optional<PlanStream::Ranked> PlanStream::Next() {
  while (!frontier_.empty()) {
    Entry top = frontier_.top();
    frontier_.pop();
    if (top.plan_slot < 0) {
      ExpandGroup(top.group_index);
      continue;
    }
    // Every remaining frontier entry — group bound or exact key — is
    // ordered after this plan, so it is the global minimum.
    ++stats_.plans_yielded;
    return std::move(plans_[static_cast<size_t>(top.plan_slot)]);
  }
  return std::nullopt;
}

}  // namespace quasaq::core
