#include "core/plan_stream.h"

#include <cassert>
#include <utility>

namespace quasaq::core {

PlanStream::PlanStream(const PlanGenerator* generator,
                       const RuntimeCostEvaluator* evaluator,
                       const res::ResourcePool* pool, SiteId query_site,
                       LogicalOid content, const query::QosRequirement& qos,
                       SimTime* metadata_latency, ThreadPool* costing_pool)
    : generator_(generator),
      evaluator_(evaluator),
      pool_(pool),
      costing_pool_(costing_pool),
      qos_(qos) {
  assert(generator_ != nullptr);
  assert(evaluator_ != nullptr);
  assert(pool_ != nullptr);
  Result<std::vector<PlanGenerator::GroupSeed>> groups =
      generator_->EnumerateGroups(query_site, content, metadata_latency);
  if (!groups.ok()) {
    status_ = groups.status();
    return;
  }
  groups_ = std::move(*groups);
  stats_.groups = groups_.size();
  SeedFrontier();
}

void PlanStream::SeedFrontier() {
  const bool bounded = evaluator_->SupportsCostLowerBound();
  // Fan out only when the bound is sound: without it every group enters
  // at cost 0 and is expanded serially anyway (preserving the per-plan
  // cost-model call order the Random model's RNG stream depends on).
  parallel_ = costing_pool_ != nullptr && bounded;
  for (size_t i = 0; i < groups_.size(); ++i) {
    Entry entry;
    // Without a sound bound every group enters at 0: nothing can be
    // yielded before the whole space is expanded, which reproduces the
    // eager evaluator exactly (including the per-plan cost-model call
    // order the Random model's RNG stream depends on).
    entry.cost = bounded
                     ? evaluator_->model().Cost(
                           generator_->RetrievalTransferDemand(groups_[i]),
                           *pool_)
                     : 0.0;
    entry.demand = -1.0;
    entry.group_index = i;
    frontier_.push(entry);
  }
}

void PlanStream::Reset(const query::QosRequirement& qos) {
  if (!status_.ok()) return;
  qos_ = qos;
  plans_.clear();
  frontier_ = {};
  // Each round enters every group again; groups_expanded keeps
  // accumulating, so groups_pruned() stays the cumulative count of
  // branches never expanded across rounds.
  stats_.groups += groups_.size();
  SeedFrontier();
}

void PlanStream::ExpandGroup(size_t group_index) {
  std::vector<Plan> expanded;
  generator_->ExpandGroup(groups_[group_index], qos_, expanded);
  ++stats_.groups_expanded;
  stats_.plans_generated += expanded.size();
  size_t within = 0;
  for (Plan& plan : expanded) {
    Ranked ranked;
    ranked.cost = evaluator_->EfficiencyCost(plan, *pool_);
    ranked.demand = RuntimeCostEvaluator::NormalizedDemand(plan, *pool_);
    ranked.plan = std::move(plan);
    plans_.push_back(std::move(ranked));

    Entry entry;
    entry.cost = plans_.back().cost;
    entry.demand = plans_.back().demand;
    entry.group_index = group_index;
    entry.within_index = within++;
    entry.plan_slot = static_cast<int>(plans_.size()) - 1;
    frontier_.push(entry);
  }
}

void PlanStream::ExpandGroupBatch(const std::vector<size_t>& batch) {
  // Workers expand and cost into private vectors; the merge below runs
  // on the calling thread only after every worker finished, so no
  // member of the stream is touched concurrently.
  std::vector<std::vector<Ranked>> results(batch.size());
  BlockingCounter done(static_cast<int>(batch.size()));
  for (size_t i = 0; i < batch.size(); ++i) {
    costing_pool_->Submit([this, &batch, &results, &done, i] {
      std::vector<Plan> expanded;
      generator_->ExpandGroup(groups_[batch[i]], qos_, expanded);
      std::vector<Ranked>& out = results[i];
      out.reserve(expanded.size());
      for (Plan& plan : expanded) {
        Ranked ranked;
        ranked.cost = evaluator_->EfficiencyCost(plan, *pool_);
        ranked.demand = RuntimeCostEvaluator::NormalizedDemand(plan, *pool_);
        ranked.plan = std::move(plan);
        out.push_back(std::move(ranked));
      }
      done.DecrementCount();
    });
  }
  done.Wait();
  // Merge in pop order: slots, within-group indices and stats land
  // exactly as a serial expansion of the same groups would have left
  // them, so the frontier's tie-breaks are unchanged.
  for (size_t i = 0; i < batch.size(); ++i) {
    ++stats_.groups_expanded;
    stats_.plans_generated += results[i].size();
    size_t within = 0;
    for (Ranked& ranked : results[i]) {
      plans_.push_back(std::move(ranked));
      Entry entry;
      entry.cost = plans_.back().cost;
      entry.demand = plans_.back().demand;
      entry.group_index = batch[i];
      entry.within_index = within++;
      entry.plan_slot = static_cast<int>(plans_.size()) - 1;
      frontier_.push(entry);
    }
  }
}

std::optional<PlanStream::Ranked> PlanStream::Next() {
  while (!frontier_.empty()) {
    Entry top = frontier_.top();
    if (top.plan_slot >= 0) {
      // Every remaining frontier entry — group bound or exact key — is
      // ordered after this plan, so it is the global minimum.
      frontier_.pop();
      ++stats_.plans_yielded;
      return std::move(plans_[static_cast<size_t>(top.plan_slot)]);
    }
    if (!parallel_) {
      frontier_.pop();
      ExpandGroup(top.group_index);
      continue;
    }
    // The frontier's top run of unexpanded groups, up to one per
    // worker. Expanding a group past the serial cutoff only converts
    // its bound into exact keys >= the bound, so the batch never
    // changes which plan surfaces next — it just costs groups the
    // serial walk would have expanded one wake-up later (or, at the
    // tail, not at all).
    std::vector<size_t> batch;
    const size_t max_batch =
        static_cast<size_t>(costing_pool_->worker_count());
    while (!frontier_.empty() && frontier_.top().plan_slot < 0 &&
           batch.size() < max_batch) {
      batch.push_back(frontier_.top().group_index);
      frontier_.pop();
    }
    if (batch.size() == 1) {
      ExpandGroup(batch.front());
    } else {
      ExpandGroupBatch(batch);
    }
  }
  return std::nullopt;
}

}  // namespace quasaq::core
