#include "core/cost_evaluator.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace quasaq::core {

RuntimeCostEvaluator::RuntimeCostEvaluator(CostModel* model) : model_(model) {
  assert(model_ != nullptr);
}

double RuntimeCostEvaluator::EfficiencyCost(
    const Plan& plan, const res::ResourcePool& pool) const {
  double cost = model_->Cost(plan.resources, pool);
  double gain = gain_ ? gain_(plan) : 1.0;
  assert(gain > 0.0);
  return cost / gain;
}

double RuntimeCostEvaluator::NormalizedDemand(const Plan& plan,
                                              const res::ResourcePool& pool) {
  return pool.FractionalDemand(plan.resources);
}

bool RuntimeCostEvaluator::SupportsCostLowerBound() const {
  return !gain_ && model_->name() == "LRB";
}

void RuntimeCostEvaluator::Rank(std::vector<Plan>& plans,
                                const res::ResourcePool& pool) const {
  struct Key {
    double efficiency_cost;  // C(r) / G
    double demand;           // total normalized demand (tie-break)
    size_t index;            // enumeration order (final tie-break)
  };
  std::vector<Key> keys;
  keys.reserve(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    keys.push_back(Key{EfficiencyCost(plans[i], pool),
                       NormalizedDemand(plans[i], pool), i});
  }
  std::vector<size_t> order(plans.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&keys](size_t a, size_t b) {
    const Key& ka = keys[a];
    const Key& kb = keys[b];
    if (ka.efficiency_cost != kb.efficiency_cost) {
      return ka.efficiency_cost < kb.efficiency_cost;
    }
    if (ka.demand != kb.demand) return ka.demand < kb.demand;
    return ka.index < kb.index;
  });
  std::vector<Plan> sorted;
  sorted.reserve(plans.size());
  for (size_t i : order) sorted.push_back(std::move(plans[i]));
  plans = std::move(sorted);
}

}  // namespace quasaq::core
