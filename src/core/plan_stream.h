#ifndef QUASAQ_CORE_PLAN_STREAM_H_
#define QUASAQ_CORE_PLAN_STREAM_H_

#include <optional>
#include <queue>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/cost_evaluator.h"
#include "core/plan.h"
#include "core/plan_generator.h"
#include "query/ast.h"
#include "resource/pool.h"

// Lazy best-first enumeration of the plan search space (paper §3.4).
//
// The eager pipeline materializes every plan, ranks the full vector and
// walks it — O(d^n) work even when the very first plan is admitted,
// which is the common case the throughput experiments depend on. The
// PlanStream instead yields plans one at a time in exactly the ranking
// order of RuntimeCostEvaluator::Rank (same cost key, same tie-breaks),
// expanding the search space only as far as the consumer pulls.
//
// The search is organized over (replica, delivery-site) groups — the
// (A1, A2) prefixes of the enumeration. Each group carries an
// admissible lower bound on the LRB cost f(r) = max_i (U_i + r_i)/R_i
// of every plan it contains: the bound overlays only the group's
// retrieval + transfer demand, which every activity combination (A3–A5)
// of the group must carry, so bound <= true cost always holds. A
// best-first frontier mixes unexpanded groups (keyed by their bound)
// with already-costed plans (keyed by their exact ranking key); a plan
// is yielded only once no group that could still beat it remains, so
// groups whose bound exceeds the cost of the plan the consumer stops at
// are never expanded at all. For cost models without a sound bound
// (Random, the ablation models, or a gain function) every group bound
// is zero: the stream degenerates to full enumeration — still in
// bit-identical ranking order, just without pruning.

namespace quasaq::core {

class PlanStream {
 public:
  // One yielded plan with the key it was ordered by (cost = C(r)/G,
  // demand = the tie-break of RuntimeCostEvaluator::Rank).
  struct Ranked {
    Plan plan;
    double cost = 0.0;
    double demand = 0.0;
  };

  struct Stats {
    // (replica, delivery-site) prefixes the space decomposes into.
    size_t groups = 0;
    size_t groups_expanded = 0;
    // Plans materialized and costed (the work the eager path always
    // pays for the whole space).
    size_t plans_generated = 0;
    size_t plans_yielded = 0;
  };

  /// All pointers must outlive the stream. The stream captures the
  /// search space of `content` under `qos` as seen from `query_site`;
  /// costs are evaluated against `pool`'s usage at expansion time, so a
  /// stream must be consumed before reservations move the pool.
  ///
  /// When `costing_pool` is non-null and the evaluator supports a sound
  /// cost lower bound, group expansion + costing fans out over the pool
  /// (see PlanGenerator::Options::parallel_costing): the top run of
  /// unexpanded groups on the frontier is costed concurrently, one
  /// group per worker, and merged back in frontier order. Yield order
  /// is bit-identical to the serial walk — a plan is yielded only when
  /// its exact key beats every remaining bound, and eagerly expanding a
  /// group only replaces its bound with exact keys that are >= it.
  /// Pruning statistics may count fewer pruned groups (the batch
  /// expands groups the serial walk might never have touched).
  PlanStream(const PlanGenerator* generator,
             const RuntimeCostEvaluator* evaluator,
             const res::ResourcePool* pool, SiteId query_site,
             LogicalOid content, const query::QosRequirement& qos,
             SimTime* metadata_latency = nullptr,
             ThreadPool* costing_pool = nullptr);

  /// Construction failure (kNotFound when no replica exists). A failed
  /// stream yields nothing.
  const Status& status() const { return status_; }

  /// Re-arms the stream over the already-enumerated (replica, site)
  /// groups for a new QoS window: pending plans and frontier state are
  /// discarded, group bounds are recomputed against the pool's current
  /// usage, and enumeration restarts from scratch — without re-fetching
  /// metadata. This is how a renegotiation's relaxation rounds reuse
  /// one stream instead of re-seeding enumeration per round. The
  /// cumulative stats keep counting across rounds (groups grows by the
  /// group count per round, so groups_pruned() stays consistent).
  /// No-op on a failed stream.
  void Reset(const query::QosRequirement& qos);

  /// The next plan in ranking order, or nullopt when the space is
  /// exhausted.
  std::optional<Ranked> Next();

  /// Number of unexpanded groups — the branches pruning saved so far.
  size_t groups_pruned() const { return stats_.groups - stats_.groups_expanded; }

  /// Ranking key at the head of the frontier: the lower bound every
  /// not-yet-yielded plan must meet or exceed. When a consumer stops
  /// pulling after an admitted plan, `FrontierBound() / admitted_cost`
  /// is the margin by which the remaining search space lost — the
  /// cutoff telemetry the observability layer histograms. nullopt once
  /// the space is exhausted.
  std::optional<double> FrontierBound() const {
    if (frontier_.empty()) return std::nullopt;
    return frontier_.top().cost;
  }

  const Stats& stats() const { return stats_; }

 private:
  // Frontier entry: a group awaiting expansion (plan_slot < 0, cost =
  // lower bound) or a materialized plan (cost = exact ranking key).
  // Groups carry demand -1 so they expand before any plan of equal
  // cost — required for the bound to stay sound on exact ties.
  struct Entry {
    double cost = 0.0;
    double demand = 0.0;
    size_t group_index = 0;
    size_t within_index = 0;
    int plan_slot = -1;
  };
  struct EntryAfter {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.cost != b.cost) return a.cost > b.cost;
      if (a.demand != b.demand) return a.demand > b.demand;
      if (a.group_index != b.group_index) return a.group_index > b.group_index;
      return a.within_index > b.within_index;
    }
  };

  // Pushes every group's lower-bound entry onto the frontier and
  // refreshes the parallel-costing decision for the current evaluator
  // state (a gain function installed since the last round disables the
  // bound, and with it the fan-out).
  void SeedFrontier();
  void ExpandGroup(size_t group_index);
  // Expands and costs `batch` concurrently on costing_pool_, then
  // merges the results in batch (= frontier pop) order.
  void ExpandGroupBatch(const std::vector<size_t>& batch);

  const PlanGenerator* generator_;
  const RuntimeCostEvaluator* evaluator_;
  const res::ResourcePool* pool_;
  ThreadPool* costing_pool_;
  query::QosRequirement qos_;
  Status status_;
  std::vector<PlanGenerator::GroupSeed> groups_;
  std::vector<Ranked> plans_;  // materialized plans, stable slots
  std::priority_queue<Entry, std::vector<Entry>, EntryAfter> frontier_;
  Stats stats_;
  bool parallel_ = false;  // recomputed by SeedFrontier
};

}  // namespace quasaq::core

#endif  // QUASAQ_CORE_PLAN_STREAM_H_
