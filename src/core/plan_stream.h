#ifndef QUASAQ_CORE_PLAN_STREAM_H_
#define QUASAQ_CORE_PLAN_STREAM_H_

#include <optional>
#include <queue>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "core/cost_evaluator.h"
#include "core/plan.h"
#include "core/plan_generator.h"
#include "query/ast.h"
#include "resource/pool.h"

// Lazy best-first enumeration of the plan search space (paper §3.4).
//
// The eager pipeline materializes every plan, ranks the full vector and
// walks it — O(d^n) work even when the very first plan is admitted,
// which is the common case the throughput experiments depend on. The
// PlanStream instead yields plans one at a time in exactly the ranking
// order of RuntimeCostEvaluator::Rank (same cost key, same tie-breaks),
// expanding the search space only as far as the consumer pulls.
//
// The search is organized over (replica, delivery-site) groups — the
// (A1, A2) prefixes of the enumeration. Each group carries an
// admissible lower bound on the LRB cost f(r) = max_i (U_i + r_i)/R_i
// of every plan it contains: the bound overlays only the group's
// retrieval + transfer demand, which every activity combination (A3–A5)
// of the group must carry, so bound <= true cost always holds. A
// best-first frontier mixes unexpanded groups (keyed by their bound)
// with already-costed plans (keyed by their exact ranking key); a plan
// is yielded only once no group that could still beat it remains, so
// groups whose bound exceeds the cost of the plan the consumer stops at
// are never expanded at all. For cost models without a sound bound
// (Random, the ablation models, or a gain function) every group bound
// is zero: the stream degenerates to full enumeration — still in
// bit-identical ranking order, just without pruning.

namespace quasaq::core {

class PlanStream {
 public:
  // One yielded plan with the key it was ordered by (cost = C(r)/G,
  // demand = the tie-break of RuntimeCostEvaluator::Rank).
  struct Ranked {
    Plan plan;
    double cost = 0.0;
    double demand = 0.0;
  };

  struct Stats {
    // (replica, delivery-site) prefixes the space decomposes into.
    size_t groups = 0;
    size_t groups_expanded = 0;
    // Plans materialized and costed (the work the eager path always
    // pays for the whole space).
    size_t plans_generated = 0;
    size_t plans_yielded = 0;
  };

  /// All pointers must outlive the stream. The stream captures the
  /// search space of `content` under `qos` as seen from `query_site`;
  /// costs are evaluated against `pool`'s usage at expansion time, so a
  /// stream must be consumed before reservations move the pool.
  PlanStream(const PlanGenerator* generator,
             const RuntimeCostEvaluator* evaluator,
             const res::ResourcePool* pool, SiteId query_site,
             LogicalOid content, const query::QosRequirement& qos,
             SimTime* metadata_latency = nullptr);

  /// Construction failure (kNotFound when no replica exists). A failed
  /// stream yields nothing.
  const Status& status() const { return status_; }

  /// The next plan in ranking order, or nullopt when the space is
  /// exhausted.
  std::optional<Ranked> Next();

  /// Number of unexpanded groups — the branches pruning saved so far.
  size_t groups_pruned() const { return stats_.groups - stats_.groups_expanded; }

  /// Ranking key at the head of the frontier: the lower bound every
  /// not-yet-yielded plan must meet or exceed. When a consumer stops
  /// pulling after an admitted plan, `FrontierBound() / admitted_cost`
  /// is the margin by which the remaining search space lost — the
  /// cutoff telemetry the observability layer histograms. nullopt once
  /// the space is exhausted.
  std::optional<double> FrontierBound() const {
    if (frontier_.empty()) return std::nullopt;
    return frontier_.top().cost;
  }

  const Stats& stats() const { return stats_; }

 private:
  // Frontier entry: a group awaiting expansion (plan_slot < 0, cost =
  // lower bound) or a materialized plan (cost = exact ranking key).
  // Groups carry demand -1 so they expand before any plan of equal
  // cost — required for the bound to stay sound on exact ties.
  struct Entry {
    double cost = 0.0;
    double demand = 0.0;
    size_t group_index = 0;
    size_t within_index = 0;
    int plan_slot = -1;
  };
  struct EntryAfter {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.cost != b.cost) return a.cost > b.cost;
      if (a.demand != b.demand) return a.demand > b.demand;
      if (a.group_index != b.group_index) return a.group_index > b.group_index;
      return a.within_index > b.within_index;
    }
  };

  void ExpandGroup(size_t group_index);

  const PlanGenerator* generator_;
  const RuntimeCostEvaluator* evaluator_;
  const res::ResourcePool* pool_;
  query::QosRequirement qos_;
  Status status_;
  std::vector<PlanGenerator::GroupSeed> groups_;
  std::vector<Ranked> plans_;  // materialized plans, stable slots
  std::priority_queue<Entry, std::vector<Entry>, EntryAfter> frontier_;
  Stats stats_;
};

}  // namespace quasaq::core

#endif  // QUASAQ_CORE_PLAN_STREAM_H_
