#include "core/plan_executor.h"

#include <cassert>

namespace quasaq::core {

RunningDelivery::RunningDelivery(
    std::unique_ptr<net::RtpStreamingSession> session, Plan plan)
    : session_(std::move(session)), plan_(std::move(plan)) {}

PlanExecutor::PlanExecutor(sim::Simulator* simulator, const Options& options)
    : simulator_(simulator), options_(options) {
  assert(simulator_ != nullptr);
}

res::ReservationCpuScheduler& PlanExecutor::SchedulerFor(SiteId site) {
  auto it = schedulers_.find(site);
  if (it == schedulers_.end()) {
    it = schedulers_
             .emplace(site, std::make_unique<res::ReservationCpuScheduler>(
                                simulator_,
                                res::ReservationCpuScheduler::Options()))
             .first;
  }
  return *it->second;
}

Result<std::unique_ptr<RunningDelivery>> PlanExecutor::Execute(
    const Plan& plan, const media::ReplicaInfo& replica,
    net::RtpStreamingSession::FinishedCallback on_finished) {
  if (replica.id != plan.replica_oid) {
    return Status::InvalidArgument("replica does not match the plan");
  }
  auto session = std::make_unique<net::RtpStreamingSession>(
      simulator_, replica, plan.transform, options_.session);
  double cpu_demand =
      session->CpuDemandFraction() * options_.cpu_reservation_factor;
  Status status = session->AttachReserved(
      &SchedulerFor(plan.delivery_site), cpu_demand);
  if (!status.ok()) return status;
  if (plan.IsRelayed()) {
    // Reserve the forwarding share the plan charged to the source CPU.
    double relay_cpu = plan.resources.Get(
        {plan.source_site, ResourceKind::kCpu});
    status = session->AttachRelay(&SchedulerFor(plan.source_site),
                                  relay_cpu * options_.cpu_reservation_factor,
                                  options_.relay_hop_latency);
    if (!status.ok()) return status;
  }
  if (cache_ != nullptr) {
    cache_->OnStream(plan.source_site, replica, simulator_->Now());
  }
  session->Start(std::move(on_finished));
  return std::make_unique<RunningDelivery>(std::move(session), plan);
}

}  // namespace quasaq::core
