#include "core/cost_model.h"

#include <algorithm>
#include <cctype>

namespace quasaq::core {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

double LrbCostModel::Cost(const ResourceVector& demand,
                          const res::ResourcePool& pool) {
  // Fullest bucket once the demand is overlaid. The bulk read keeps
  // the whole scan inside one pool-lock acquisition, so concurrent
  // admissions costing hundreds of plans don't serialize on per-bucket
  // getters.
  return pool.OverlayMaxFill(demand);
}

double RandomCostModel::Cost(const ResourceVector& demand,
                             const res::ResourcePool& pool) {
  (void)demand;
  (void)pool;
  return rng_.NextDouble();
}

double MinTotalCostModel::Cost(const ResourceVector& demand,
                               const res::ResourcePool& pool) {
  return pool.FractionalDemand(demand);
}

double WeightedSumCostModel::Cost(const ResourceVector& demand,
                                  const res::ResourcePool& pool) {
  // Quadratic fill penalty: loading an already-hot bucket costs more
  // than the same demand on a cold one.
  return pool.OverlaySquaredFill(demand);
}

std::unique_ptr<CostModel> MakeCostModel(std::string_view name,
                                         uint64_t seed) {
  if (EqualsIgnoreCase(name, "lrb")) {
    return std::make_unique<LrbCostModel>();
  }
  if (EqualsIgnoreCase(name, "random")) {
    return std::make_unique<RandomCostModel>(seed);
  }
  if (EqualsIgnoreCase(name, "mintotal")) {
    return std::make_unique<MinTotalCostModel>();
  }
  if (EqualsIgnoreCase(name, "weightedsum")) {
    return std::make_unique<WeightedSumCostModel>();
  }
  return nullptr;
}

}  // namespace quasaq::core
