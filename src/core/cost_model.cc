#include "core/cost_model.h"

#include <algorithm>
#include <cctype>

namespace quasaq::core {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

double LrbCostModel::Cost(const ResourceVector& demand,
                          const res::ResourcePool& pool) {
  // Start from the fullest untouched bucket, then overlay the demand.
  double max_fill = 0.0;
  for (const BucketId& bucket : pool.Buckets()) {
    double capacity = pool.Capacity(bucket);
    if (capacity <= 0.0) continue;
    double fill = (pool.Used(bucket) + demand.Get(bucket)) / capacity;
    max_fill = std::max(max_fill, fill);
  }
  return max_fill;
}

double RandomCostModel::Cost(const ResourceVector& demand,
                             const res::ResourcePool& pool) {
  (void)demand;
  (void)pool;
  return rng_.NextDouble();
}

double MinTotalCostModel::Cost(const ResourceVector& demand,
                               const res::ResourcePool& pool) {
  double total = 0.0;
  for (const ResourceVector::Entry& e : demand.entries()) {
    double capacity = pool.Capacity(e.bucket);
    if (capacity <= 0.0) continue;
    total += e.amount / capacity;
  }
  return total;
}

double WeightedSumCostModel::Cost(const ResourceVector& demand,
                                  const res::ResourcePool& pool) {
  // Quadratic fill penalty: loading an already-hot bucket costs more
  // than the same demand on a cold one.
  double total = 0.0;
  for (const BucketId& bucket : pool.Buckets()) {
    double capacity = pool.Capacity(bucket);
    if (capacity <= 0.0) continue;
    double fill = (pool.Used(bucket) + demand.Get(bucket)) / capacity;
    total += fill * fill;
  }
  return total;
}

std::unique_ptr<CostModel> MakeCostModel(std::string_view name,
                                         uint64_t seed) {
  if (EqualsIgnoreCase(name, "lrb")) {
    return std::make_unique<LrbCostModel>();
  }
  if (EqualsIgnoreCase(name, "random")) {
    return std::make_unique<RandomCostModel>(seed);
  }
  if (EqualsIgnoreCase(name, "mintotal")) {
    return std::make_unique<MinTotalCostModel>();
  }
  if (EqualsIgnoreCase(name, "weightedsum")) {
    return std::make_unique<WeightedSumCostModel>();
  }
  return nullptr;
}

}  // namespace quasaq::core
