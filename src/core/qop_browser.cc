#include "core/qop_browser.h"

#include <cassert>

namespace quasaq::core {

QopBrowser::QopBrowser(MediaDbSystem* system, UserProfile profile,
                       SiteId client_site)
    : system_(system),
      profile_(std::move(profile)),
      producer_(&profile_),
      client_site_(client_site) {
  assert(system_ != nullptr);
}

Result<QopBrowser::Presentation> QopBrowser::Present(
    const query::ContentPredicate& content, const QopRequest& request) {
  if (active_) {
    Status status = Stop();
    assert(status.ok());
    (void)status;
  }
  last_query_text_ = producer_.ProduceText(content, request);
  Result<MediaDbSystem::TextQueryOutcome> outcome =
      system_->SubmitTextQuery(client_site_, last_query_text_, &profile_);
  if (!outcome.ok()) return outcome.status();
  if (!outcome->delivery.status.ok()) return outcome->delivery.status;
  presentation_ = Presentation{outcome->content, outcome->delivery};
  active_ = true;
  return presentation_;
}

Result<QopBrowser::Presentation> QopBrowser::PresentPreset(
    const query::ContentPredicate& content, std::string_view preset_name) {
  std::optional<QopRequest> preset = QopPresetByName(preset_name);
  if (!preset.has_value()) {
    return Status::InvalidArgument("unknown QoP preset '" +
                                   std::string(preset_name) + "'");
  }
  return Present(content, *preset);
}

Status QopBrowser::Pause() {
  if (!active_) return Status::FailedPrecondition("nothing is playing");
  return system_->PauseSession(presentation_.delivery.session);
}

Status QopBrowser::Resume() {
  if (!active_) return Status::FailedPrecondition("nothing is playing");
  return system_->ResumeSession(presentation_.delivery.session);
}

Result<MediaDbSystem::DeliveryOutcome> QopBrowser::ChangeQuality(
    const QopRequest& request) {
  if (!active_) return Status::FailedPrecondition("nothing is playing");
  query::QosRequirement qos;
  qos.range = profile_.Translate(request);
  qos.min_security = request.security;
  Result<MediaDbSystem::DeliveryOutcome> outcome =
      system_->ChangeSessionQos(presentation_.delivery.session, qos,
                                &profile_);
  if (outcome.ok()) presentation_.delivery = *outcome;
  return outcome;
}

Status QopBrowser::Stop() {
  if (!active_) return Status::Ok();
  active_ = false;
  Status status = system_->CancelSession(presentation_.delivery.session);
  // The session may have completed on its own; that is not an error
  // from the user's point of view.
  if (status.code() == StatusCode::kNotFound) return Status::Ok();
  return status;
}

}  // namespace quasaq::core
