#include "core/query_producer.h"

#include <cassert>
#include <cstdio>

namespace quasaq::core {

QueryProducer::QueryProducer(const UserProfile* profile) : profile_(profile) {
  assert(profile_ != nullptr);
}

query::ParsedQuery QueryProducer::Produce(
    const query::ContentPredicate& content, const QopRequest& request) const {
  query::ParsedQuery parsed;
  parsed.target = "videos";
  parsed.content = content;
  parsed.qos.range = profile_->Translate(request);
  parsed.qos.min_security = request.security;
  parsed.has_qos_clause = true;
  return parsed;
}

std::string QueryProducer::ProduceText(const query::ContentPredicate& content,
                                       const QopRequest& request) const {
  std::string text = "SELECT video FROM videos";
  bool first_term = true;
  auto add_term = [&](const std::string& term) {
    text += first_term ? " WHERE " : " AND ";
    first_term = false;
    text += term;
  };
  if (content.title.has_value()) {
    add_term("TITLE = '" + *content.title + "'");
  }
  for (const std::string& keyword : content.keywords) {
    add_term("CONTAINS('" + keyword + "')");
  }
  if (content.similar_to.has_value()) {
    std::string term = "SIMILAR(";
    for (size_t i = 0; i < content.similar_to->size(); ++i) {
      if (i > 0) term += ", ";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", (*content.similar_to)[i]);
      term += buf;
    }
    term += ")";
    if (content.top_k != 1) {
      term += " TOP " + std::to_string(content.top_k);
    }
    add_term(term);
  }

  media::AppQosRange range = profile_->Translate(request);
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      " WITH QOS (resolution >= %dx%d, resolution <= %dx%d,"
      " framerate >= %g, framerate <= %g, color >= %d, color <= %d",
      range.min_resolution.width, range.min_resolution.height,
      range.max_resolution.width, range.max_resolution.height,
      range.min_frame_rate, range.max_frame_rate,
      range.min_color_depth_bits, range.max_color_depth_bits);
  text += buf;
  text += ", audio >= ";
  text += media::AudioQualityName(range.min_audio);
  text += ", audio <= ";
  text += media::AudioQualityName(range.max_audio);
  switch (request.security) {
    case media::SecurityLevel::kNone:
      break;
    case media::SecurityLevel::kStandard:
      text += ", security >= standard";
      break;
    case media::SecurityLevel::kStrong:
      text += ", security >= strong";
      break;
  }
  text += ")";
  return text;
}

}  // namespace quasaq::core
