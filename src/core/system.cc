#include "core/system.h"

#include <algorithm>
#include <cassert>
#include <optional>

namespace quasaq::core {

std::string_view SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kVdbms:
      return "VDBMS";
    case SystemKind::kVdbmsQosApi:
      return "VDBMS+QoSAPI";
    case SystemKind::kVdbmsQuasaq:
      return "VDBMS+QuaSAQ";
  }
  return "unknown";
}

MediaDbSystem::MediaDbSystem(sim::Simulator* simulator,
                             const Options& options)
    : simulator_(simulator),
      options_(options),
      observability_(obs::Tracer::Options{
          options.observability.tracing,
          options.observability.trace_max_events}),
      library_(media::BuildExperimentLibrary(options.library,
                                             options.topology.SiteIds())),
      qos_api_(&pool_),
      session_manager_(simulator, &qos_api_,
                       std::max(1, options.session_shards)) {
  assert(simulator_ != nullptr);
  std::vector<SiteId> sites = options_.topology.SiteIds();
  if (session_manager_.shard_count() > 1) {
    // Per-shard registries: session counters (and, below, the per-site
    // cache counters) report shard-locally; TakeObservabilitySnapshot
    // merges them back into one document.
    observability_.AllocateShardRegistries(session_manager_.shard_count());
  }
  session_manager_.set_observability(&observability_);
  qos_api_.set_metrics(&observability_.metrics());
  session_manager_.set_on_complete([this](SessionId id, SimTime now) {
    ++stats_.completed;
    SampleResourceTelemetry();
    if (on_session_complete_) on_session_complete_(id, now);
  });

  // Resource buckets: one CPU / net / disk / memory bucket per server.
  // Topology validation guarantees positive capacities; a violation here
  // is a construction bug, not a runtime condition.
  auto declare = [this](const BucketId& bucket, double capacity) {
    Status declared = pool_.DeclareBucket(bucket, capacity);
    assert(declared.ok());
    (void)declared;
  };
  for (const net::ServerSpec& server : options_.topology.servers) {
    declare({server.id, ResourceKind::kCpu}, options_.cpu_capacity);
    declare({server.id, ResourceKind::kNetworkBandwidth},
            server.outbound_kbps);
    declare({server.id, ResourceKind::kDiskBandwidth}, server.disk_kbps);
    declare({server.id, ResourceKind::kMemory}, server.memory_kb);
    declare({server.id, ResourceKind::kMemoryBandwidth},
            server.memory_bandwidth_kbps);
  }
  pool_telemetry_ = std::make_unique<res::PoolTelemetry>(
      &pool_, &observability_.metrics());

  // Metadata: contents, replicas and sampled QoS profiles.
  metadata_ = std::make_unique<meta::DistributedMetadataEngine>(
      sites, meta::DistributedMetadataEngine::Options());
  meta::QosSampler sampler(options_.sampler, options_.seed);
  for (const media::VideoContent& content : library_.contents) {
    Status status = metadata_->InsertContent(content);
    assert(status.ok());
    (void)status;
    content_index_.Add(content);
  }
  for (const media::ReplicaInfo& replica : library_.replicas) {
    Status status = metadata_->InsertReplica(replica);
    assert(status.ok());
    status = metadata_->SetQosProfile(replica.id,
                                      sampler.SampleStreaming(replica));
    assert(status.ok());
    (void)status;
  }

  if (options_.kind == SystemKind::kVdbmsQuasaq) {
    cost_model_ = MakeCostModel(options_.cost_model, options_.seed);
    assert(cost_model_ != nullptr && "unknown cost model name");
    QualityManager::Options quality = options_.quality;
    QualityManager::PopulateDefaultTranscodeTargets(quality.generator);
    if (options_.cache.enabled) {
      quality.generator.min_cache_fraction = options_.cache.min_plan_fraction;
    }
    quality_manager_ = std::make_unique<QualityManager>(
        metadata_.get(), &qos_api_, cost_model_.get(), sites, quality);
    quality_manager_->set_observability(&observability_);
    if (options_.cache.enabled) {
      cache_manager_ = std::make_unique<cache::CacheManager>(
          sites, options_.cache.manager);
      if (session_manager_.shard_count() > 1) {
        // Each site's cache reports into the same shard-local registry
        // its sessions land in, so a busy site never contends with the
        // others on a counter cache line.
        cache_manager_->set_metrics([this](SiteId site) {
          return &observability_.shard_metrics(
              session_manager_.ShardOfSite(site));
        });
      } else {
        cache_manager_->set_metrics(&observability_.metrics());
      }
      quality_manager_->generator().set_cache_view(cache_manager_.get());
    }

    if (options_.replication.enabled) {
      int64_t max_oid = 0;
      std::vector<storage::StorageManager*> raw_stores;
      for (const net::ServerSpec& server : options_.topology.servers) {
        storage::StorageManager::Options store_options;
        store_options.disk_bandwidth_kbps = server.disk_kbps;
        store_options.capacity_kb = options_.replication.storage_capacity_kb;
        if (cache_manager_ != nullptr) {
          store_options.segment_layout = options_.cache.manager.layout;
        }
        storage_.push_back(std::make_unique<storage::StorageManager>(
            server.id, store_options));
        if (cache_manager_ != nullptr) {
          storage_.back()->AttachCache(cache_manager_->at(server.id));
        }
        raw_stores.push_back(storage_.back().get());
      }
      for (const media::ReplicaInfo& replica : library_.replicas) {
        Status status = storage_at(replica.site)->store().Put(replica);
        assert(status.ok());
        (void)status;
        max_oid = std::max(max_oid, replica.id.value());
      }
      replication_manager_ = std::make_unique<repl::ReplicationManager>(
          simulator_, metadata_.get(), std::move(raw_stores),
          media::QualityLadder::Standard(), max_oid + 1,
          options_.replication.manager);
      if (cache_manager_ != nullptr) {
        replication_manager_->set_cache(cache_manager_.get());
      }
      replication_manager_->Start();
    }
  }
}

std::vector<LogicalOid> MediaDbSystem::ResolveContent(
    const query::ParsedQuery& parsed) const {
  return content_index_.Search(parsed.content);
}

MediaDbSystem::DeliveryOutcome MediaDbSystem::SubmitDelivery(
    SiteId client_site, LogicalOid content, const query::QosRequirement& qos,
    const UserProfile* profile) {
  ++stats_.submitted;
  obs::Tracer& tracer = observability_.tracer();
  const SimTime now = simulator_->Now();
  // The trace context (tracer track + quality-manager span state) is
  // only touched when tracing is on; untraced submissions stay free of
  // shared facade writes, which is what lets them run concurrently.
  int64_t trace_track = 0;
  if (options_.observability.tracing) {
    trace_track = tracer.NewTrack(
        "delivery content=" + std::to_string(content.value()) + " site=" +
        std::to_string(client_site.value()));
    tracer.Begin(trace_track, "delivery", now,
                 {{"content", std::to_string(content.value())},
                  {"client_site", std::to_string(client_site.value())},
                  {"kind", std::string(SystemKindName(options_.kind))}});
    if (quality_manager_ != nullptr) {
      quality_manager_->set_trace_context(trace_track, now);
    }
  }
  DeliveryOutcome outcome;
  switch (options_.kind) {
    case SystemKind::kVdbms:
      outcome = DeliverVdbms(client_site, content, trace_track);
      break;
    case SystemKind::kVdbmsQosApi:
      outcome = DeliverQosApi(client_site, content, trace_track);
      break;
    case SystemKind::kVdbmsQuasaq:
      outcome = DeliverQuasaq(client_site, content, qos, profile,
                              trace_track);
      break;
  }
  if (outcome.status.ok()) {
    ++stats_.admitted;
    // The new reservation moved utilization; record the step.
    SampleResourceTelemetry();
  } else {
    ++stats_.rejected;
    if (trace_track != 0) {
      // A rejected delivery never reaches the session layer; close the
      // root span here so the track is complete.
      tracer.Instant(trace_track, "delivery.rejected", now);
      tracer.EndAll(trace_track, now);
    }
  }
  if (options_.observability.tracing && quality_manager_ != nullptr) {
    quality_manager_->set_trace_context(0, now);
  }
  return outcome;
}

MediaDbSystem::DeliveryOutcome MediaDbSystem::DeliverVdbms(
    SiteId site, LogicalOid content, int64_t trace_track) {
  DeliveryOutcome outcome;
  const media::ReplicaInfo* replica = library_.MasterReplicaAt(content, site);
  if (replica == nullptr) {
    outcome.status = Status::NotFound("no replica at receiving site");
    return outcome;
  }
  // No QoS control: the job always starts. When the outbound link is
  // oversubscribed the effective delivery slows down; we model that as a
  // bounded stretch of the session time by the link's demand ratio at
  // admission (retransmissions/late frames — the Fig 5c pathology).
  const net::ServerSpec* spec = options_.topology.Find(site);
  assert(spec != nullptr);
  double active_kbps = session_manager_.vdbms_active_kbps(site);
  double demand_ratio =
      (active_kbps + replica->bitrate_kbps) / spec->outbound_kbps;
  double stretch =
      std::clamp(demand_ratio, 1.0, options_.vdbms_max_stretch);

  if (trace_track != 0) {
    // VDBMS has no admission control: a zero-width span records that
    // the query passed straight through.
    const SimTime now = simulator_->Now();
    observability_.tracer().Begin(trace_track, "delivery.admit", now,
                                  {{"control", "none"}});
    observability_.tracer().End(trace_track, now);
  }
  SessionManager::Record record;
  record.content = content;
  record.site = site;
  record.vdbms_kbps = replica->bitrate_kbps;
  record.trace_track = trace_track;

  outcome.status = Status::Ok();
  outcome.delivered_qos = replica->qos;
  outcome.wire_rate_kbps = replica->bitrate_kbps;
  outcome.session = session_manager_.Start(std::move(record),
                                           replica->duration_seconds * stretch);
  return outcome;
}

MediaDbSystem::DeliveryOutcome MediaDbSystem::DeliverQosApi(
    SiteId site, LogicalOid content, int64_t trace_track) {
  DeliveryOutcome outcome;
  const media::ReplicaInfo* replica = library_.MasterReplicaAt(content, site);
  if (replica == nullptr) {
    outcome.status = Status::NotFound("no replica at receiving site");
    return outcome;
  }
  // Admission + reservation on the master-quality stream from the
  // receiving site; no plan alternatives exist in this configuration.
  Plan plan;
  plan.replica_oid = replica->id;
  plan.source_site = replica->site;
  plan.delivery_site = site;
  FinalizePlan(plan, *replica, options_.quality.generator.constants);
  if (trace_track != 0) {
    observability_.tracer().Begin(trace_track, "delivery.admit",
                                  simulator_->Now());
  }
  Result<res::ReservationId> reservation = qos_api_.Reserve(plan.resources);
  if (trace_track != 0) {
    observability_.tracer().End(
        trace_track, simulator_->Now(),
        {{"outcome", reservation.ok() ? "admitted" : "rejected"}});
  }
  if (!reservation.ok()) {
    outcome.status = reservation.status();
    return outcome;
  }
  SessionManager::Record record;
  record.content = content;
  record.site = site;
  record.reservation = *reservation;
  record.trace_track = trace_track;
  outcome.status = Status::Ok();
  outcome.delivered_qos = replica->qos;
  outcome.wire_rate_kbps = plan.wire_rate_kbps;
  outcome.session =
      session_manager_.Start(std::move(record), replica->duration_seconds);
  return outcome;
}

MediaDbSystem::DeliveryOutcome MediaDbSystem::DeliverQuasaq(
    SiteId site, LogicalOid content, const query::QosRequirement& qos,
    const UserProfile* profile, int64_t trace_track) {
  DeliveryOutcome outcome;
  if (replication_manager_ != nullptr) {
    int level =
        media::QualityLadder::Standard().CheapestSatisfyingLevel(qos.range);
    if (level >= 0) replication_manager_->RecordDemand(content, level);
  }
  Result<QualityManager::Admitted> admitted =
      quality_manager_->AdmitQuery(site, content, qos, profile);
  if (!admitted.ok()) {
    outcome.status = admitted.status();
    return outcome;
  }
  // Every replica of an object shares the content's duration; look it
  // up through metadata so dynamically created replicas work too.
  auto content_info = metadata_->FindContent(site, content);
  assert(content_info.has_value());
  if (cache_manager_ != nullptr) {
    // Stream the replica through its source site's cache: hits are
    // served from memory, misses warm the cache for later sessions.
    for (const media::ReplicaInfo& replica :
         metadata_->ReplicasOf(site, content)) {
      if (replica.id == admitted->plan.replica_oid) {
        cache_manager_->OnStream(admitted->plan.source_site, replica,
                                 simulator_->Now());
        break;
      }
    }
  }
  SessionManager::Record record;
  record.content = content;
  record.site = admitted->plan.delivery_site;
  record.reservation = admitted->reservation;
  record.trace_track = trace_track;
  outcome.status = Status::Ok();
  outcome.renegotiated = admitted->renegotiated;
  outcome.delivered_qos = admitted->plan.delivered_qos;
  outcome.wire_rate_kbps = admitted->plan.wire_rate_kbps;
  outcome.session = session_manager_.Start(std::move(record),
                                           content_info->duration_seconds);
  return outcome;
}

Result<MediaDbSystem::DeliveryOutcome> MediaDbSystem::ChangeSessionQos(
    SessionId session, const query::QosRequirement& new_qos,
    const UserProfile* profile) {
  if (options_.kind != SystemKind::kVdbmsQuasaq) {
    return Status::FailedPrecondition(
        "mid-playback renegotiation requires QuaSAQ");
  }
  std::optional<SessionManager::Record> record =
      session_manager_.Snapshot(session);
  if (!record.has_value()) return Status::NotFound("no such session");
  obs::Tracer& tracer = observability_.tracer();
  const int64_t track = record->trace_track;
  const SimTime now = simulator_->Now();
  if (track != 0) {
    tracer.Begin(track, "session.renegotiate", now,
                 {{"session", std::to_string(session.value())}});
  }
  if (options_.observability.tracing) {
    quality_manager_->set_trace_context(track, now);
  }
  // A paused session holds no reservation to renegotiate in place: the
  // quality manager admission-probes the new plan (reserve + immediate
  // release, nothing stays held) — Resume re-admits the adopted vector
  // when playback actually restarts.
  Result<QualityManager::Admitted> admitted =
      record->paused
          ? quality_manager_->PlanPausedRenegotiation(
                record->site, record->content, new_qos, profile)
          : quality_manager_->RenegotiateDelivery(record->reservation,
                                                  record->site,
                                                  record->content, new_qos,
                                                  profile);
  if (options_.observability.tracing) {
    quality_manager_->set_trace_context(0, now);
  }
  if (track != 0) {
    tracer.End(track, now,
               {{"outcome", admitted.ok() ? "adopted" : "rejected"}});
  }
  if (!admitted.ok()) return admitted.status();
  SampleResourceTelemetry();
  Status adopted = session_manager_.AdoptRenegotiatedPlan(
      session, admitted->plan.delivery_site, admitted->plan.resources);
  // The session can only disappear between the snapshot above and the
  // adoption if the caller raced its own cancel/complete; surface that
  // instead of silently keeping the renegotiated reservation unadopted.
  if (!adopted.ok()) return adopted;
  DeliveryOutcome outcome;
  outcome.status = Status::Ok();
  outcome.session = session;
  outcome.renegotiated = true;
  outcome.delivered_qos = admitted->plan.delivered_qos;
  outcome.wire_rate_kbps = admitted->plan.wire_rate_kbps;
  return outcome;
}

MediaDbSystem::ObservabilitySnapshot
MediaDbSystem::TakeObservabilitySnapshot() const {
  ObservabilitySnapshot snapshot;
  // Merged exposition: with per-shard registries (session_shards > 1)
  // the main + shard registries render as one document; unsharded this
  // is byte-identical to the plain exposition.
  snapshot.prometheus = observability_.MergedPrometheusText();
  snapshot.metrics_json = observability_.MergedJsonSnapshot();
  if (options_.observability.tracing) {
    snapshot.trace_json = observability_.tracer().ChromeTraceJson();
  }
  return snapshot;
}

MediaDbSystem::Stats MediaDbSystem::stats() const {
  Stats snapshot;
  snapshot.submitted = stats_.submitted.load(std::memory_order_relaxed);
  snapshot.admitted = stats_.admitted.load(std::memory_order_relaxed);
  snapshot.rejected = stats_.rejected.load(std::memory_order_relaxed);
  snapshot.completed = stats_.completed.load(std::memory_order_relaxed);
  return snapshot;
}

void MediaDbSystem::SampleResourceTelemetry() {
  pool_telemetry_->Sample(simulator_->Now());
}

std::string MediaDbSystem::ReportString() const {
  const Stats totals = stats();
  char buf[160];
  std::snprintf(
      buf, sizeof(buf),
      "%s: submitted=%llu admitted=%llu rejected=%llu completed=%llu "
      "outstanding=%d",
      std::string(SystemKindName(options_.kind)).c_str(),
      static_cast<unsigned long long>(totals.submitted),
      static_cast<unsigned long long>(totals.admitted),
      static_cast<unsigned long long>(totals.rejected),
      static_cast<unsigned long long>(totals.completed),
      session_manager_.outstanding());
  std::string out(buf);
  out += "\nbuckets: " + pool_.DebugString();
  std::string bottleneck = qos_api_.BottleneckReport();
  if (!bottleneck.empty()) out += "\n" + bottleneck;
  if (replication_manager_ != nullptr) {
    const repl::ReplicationManager::Stats& repl =
        replication_manager_->stats();
    std::snprintf(buf, sizeof(buf),
                  "\nreplication: cycles=%llu created=%llu dropped=%llu",
                  static_cast<unsigned long long>(repl.cycles),
                  static_cast<unsigned long long>(repl.created),
                  static_cast<unsigned long long>(repl.dropped));
    out += buf;
  }
  if (cache_manager_ != nullptr) {
    out += "\n" + cache_manager_->ReportString();
  }
  return out;
}

std::string MediaDbSystem::Explanation::ToString() const {
  return QualityManager::FormatPlanListing(content, plans);
}

Result<query::ParsedQuery> MediaDbSystem::ParseAndResolve(
    std::string_view text, LogicalOid* content) const {
  Result<query::ParsedQuery> parsed = query::ParseQuery(text);
  if (!parsed.ok()) return parsed;
  std::vector<LogicalOid> matches = ResolveContent(*parsed);
  if (matches.empty()) {
    return Status::NotFound("no video matches the content predicate");
  }
  *content = matches.front();
  return parsed;
}

Result<MediaDbSystem::Explanation> MediaDbSystem::ExplainTextQuery(
    SiteId client_site, std::string_view text, size_t max_plans) {
  if (quality_manager_ == nullptr) {
    return Status::FailedPrecondition("EXPLAIN requires QuaSAQ");
  }
  Explanation explanation;
  Result<query::ParsedQuery> parsed =
      ParseAndResolve(text, &explanation.content);
  if (!parsed.ok()) return parsed.status();
  Result<std::vector<QualityManager::RankedPlan>> plans =
      quality_manager_->ExplainPlans(client_site, explanation.content,
                                     parsed->qos, max_plans);
  if (!plans.ok()) return plans.status();
  explanation.plans = std::move(*plans);
  return explanation;
}

Result<MediaDbSystem::TextQueryOutcome> MediaDbSystem::SubmitTextQuery(
    SiteId client_site, std::string_view text, const UserProfile* profile) {
  TextQueryOutcome outcome;
  Result<query::ParsedQuery> parsed = ParseAndResolve(text, &outcome.content);
  if (!parsed.ok()) return parsed.status();
  if (parsed->explain) {
    return Status::FailedPrecondition(
        "EXPLAIN queries must go through ExplainTextQuery");
  }
  outcome.delivery =
      SubmitDelivery(client_site, outcome.content, parsed->qos, profile);
  return outcome;
}

}  // namespace quasaq::core
