#include "core/system.h"

#include <algorithm>
#include <cassert>

namespace quasaq::core {

std::string_view SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kVdbms:
      return "VDBMS";
    case SystemKind::kVdbmsQosApi:
      return "VDBMS+QoSAPI";
    case SystemKind::kVdbmsQuasaq:
      return "VDBMS+QuaSAQ";
  }
  return "unknown";
}

MediaDbSystem::MediaDbSystem(sim::Simulator* simulator,
                             const Options& options)
    : simulator_(simulator),
      options_(options),
      library_(media::BuildExperimentLibrary(options.library,
                                             options.topology.SiteIds())),
      qos_api_(&pool_) {
  assert(simulator_ != nullptr);
  std::vector<SiteId> sites = options_.topology.SiteIds();

  // Resource buckets: one CPU / net / disk / memory bucket per server.
  for (const net::ServerSpec& server : options_.topology.servers) {
    pool_.DeclareBucket({server.id, ResourceKind::kCpu},
                        options_.cpu_capacity);
    pool_.DeclareBucket({server.id, ResourceKind::kNetworkBandwidth},
                        server.outbound_kbps);
    pool_.DeclareBucket({server.id, ResourceKind::kDiskBandwidth},
                        server.disk_kbps);
    pool_.DeclareBucket({server.id, ResourceKind::kMemory},
                        server.memory_kb);
    pool_.DeclareBucket({server.id, ResourceKind::kMemoryBandwidth},
                        server.memory_bandwidth_kbps);
  }

  // Metadata: contents, replicas and sampled QoS profiles.
  metadata_ = std::make_unique<meta::DistributedMetadataEngine>(
      sites, meta::DistributedMetadataEngine::Options());
  meta::QosSampler sampler(options_.sampler, options_.seed);
  for (const media::VideoContent& content : library_.contents) {
    Status status = metadata_->InsertContent(content);
    assert(status.ok());
    (void)status;
    content_index_.Add(content);
  }
  for (const media::ReplicaInfo& replica : library_.replicas) {
    Status status = metadata_->InsertReplica(replica);
    assert(status.ok());
    status = metadata_->SetQosProfile(replica.id,
                                      sampler.SampleStreaming(replica));
    assert(status.ok());
    (void)status;
  }

  if (options_.kind == SystemKind::kVdbmsQuasaq) {
    cost_model_ = MakeCostModel(options_.cost_model, options_.seed);
    assert(cost_model_ != nullptr && "unknown cost model name");
    // Offer reduced-color and reduced-audio transcode variants in
    // addition to the standard ladder so color-only or audio-only
    // degradations are plannable.
    QualityManager::Options quality = options_.quality;
    if (quality.generator.transcode_targets.empty()) {
      for (const media::AppQos& level :
           media::QualityLadder::Standard().levels) {
        quality.generator.transcode_targets.push_back(level);
        media::AppQos variant = level;
        if (level.color_depth_bits > 12) {
          variant.color_depth_bits = 12;
          quality.generator.transcode_targets.push_back(variant);
        }
        if (level.audio > media::AudioQuality::kFm) {
          variant = level;
          variant.audio = media::AudioQuality::kFm;
          quality.generator.transcode_targets.push_back(variant);
          if (level.color_depth_bits > 12) {
            variant.color_depth_bits = 12;
            quality.generator.transcode_targets.push_back(variant);
          }
        }
      }
    }
    if (options_.cache.enabled) {
      quality.generator.min_cache_fraction = options_.cache.min_plan_fraction;
    }
    quality_manager_ = std::make_unique<QualityManager>(
        metadata_.get(), &qos_api_, cost_model_.get(), sites, quality);
    if (options_.cache.enabled) {
      cache_manager_ = std::make_unique<cache::CacheManager>(
          sites, options_.cache.manager);
      quality_manager_->generator().set_cache_view(cache_manager_.get());
    }

    if (options_.replication.enabled) {
      int64_t max_oid = 0;
      std::vector<storage::StorageManager*> raw_stores;
      for (const net::ServerSpec& server : options_.topology.servers) {
        storage::StorageManager::Options store_options;
        store_options.disk_bandwidth_kbps = server.disk_kbps;
        store_options.capacity_kb = options_.replication.storage_capacity_kb;
        if (cache_manager_ != nullptr) {
          store_options.segment_layout = options_.cache.manager.layout;
        }
        storage_.push_back(std::make_unique<storage::StorageManager>(
            server.id, store_options));
        if (cache_manager_ != nullptr) {
          storage_.back()->AttachCache(cache_manager_->at(server.id));
        }
        raw_stores.push_back(storage_.back().get());
      }
      for (const media::ReplicaInfo& replica : library_.replicas) {
        Status status = storage_at(replica.site)->store().Put(replica);
        assert(status.ok());
        (void)status;
        max_oid = std::max(max_oid, replica.id.value());
      }
      replication_manager_ = std::make_unique<repl::ReplicationManager>(
          simulator_, metadata_.get(), std::move(raw_stores),
          media::QualityLadder::Standard(), max_oid + 1,
          options_.replication.manager);
      if (cache_manager_ != nullptr) {
        replication_manager_->set_cache(cache_manager_.get());
      }
      replication_manager_->Start();
    }
  }
}

storage::StorageManager* MediaDbSystem::storage_at(SiteId site) {
  for (auto& store : storage_) {
    if (store->site() == site) return store.get();
  }
  return nullptr;
}

int MediaDbSystem::DesiredLadderLevel(
    const media::AppQosRange& range) const {
  const std::vector<media::AppQos>& levels =
      media::QualityLadder::Standard().levels;
  for (int level = static_cast<int>(levels.size()) - 1; level >= 0;
       --level) {
    if (range.Contains(levels[static_cast<size_t>(level)])) return level;
  }
  return -1;
}

std::vector<LogicalOid> MediaDbSystem::ResolveContent(
    const query::ParsedQuery& parsed) const {
  return content_index_.Search(parsed.content);
}

const media::ReplicaInfo* MediaDbSystem::MasterReplicaAt(
    LogicalOid content, SiteId site) const {
  const media::ReplicaInfo* best = nullptr;
  for (const media::ReplicaInfo& replica : library_.replicas) {
    if (replica.content != content || replica.site != site) continue;
    if (best == nullptr || best->qos.resolution.PixelCount() <
                               replica.qos.resolution.PixelCount()) {
      best = &replica;
    }
  }
  return best;
}

MediaDbSystem::DeliveryOutcome MediaDbSystem::SubmitDelivery(
    SiteId client_site, LogicalOid content, const query::QosRequirement& qos,
    const UserProfile* profile) {
  ++stats_.submitted;
  DeliveryOutcome outcome;
  switch (options_.kind) {
    case SystemKind::kVdbms:
      outcome = DeliverVdbms(client_site, content);
      break;
    case SystemKind::kVdbmsQosApi:
      outcome = DeliverQosApi(client_site, content);
      break;
    case SystemKind::kVdbmsQuasaq:
      outcome = DeliverQuasaq(client_site, content, qos, profile);
      break;
  }
  if (outcome.status.ok()) {
    ++stats_.admitted;
  } else {
    ++stats_.rejected;
  }
  return outcome;
}

MediaDbSystem::DeliveryOutcome MediaDbSystem::DeliverVdbms(
    SiteId site, LogicalOid content) {
  DeliveryOutcome outcome;
  const media::ReplicaInfo* replica = MasterReplicaAt(content, site);
  if (replica == nullptr) {
    outcome.status = Status::NotFound("no replica at receiving site");
    return outcome;
  }
  // No QoS control: the job always starts. When the outbound link is
  // oversubscribed the effective delivery slows down; we model that as a
  // bounded stretch of the session time by the link's demand ratio at
  // admission (retransmissions/late frames — the Fig 5c pathology).
  const net::ServerSpec* spec = options_.topology.Find(site);
  assert(spec != nullptr);
  double active_kbps = vdbms_site_kbps_[site.value()];
  double demand_ratio =
      (active_kbps + replica->bitrate_kbps) / spec->outbound_kbps;
  double stretch =
      std::clamp(demand_ratio, 1.0, options_.vdbms_max_stretch);

  SessionRecord record;
  record.content = content;
  record.site = site;
  record.vdbms_kbps = replica->bitrate_kbps;
  vdbms_site_kbps_[site.value()] += replica->bitrate_kbps;

  outcome.status = Status::Ok();
  outcome.delivered_qos = replica->qos;
  outcome.wire_rate_kbps = replica->bitrate_kbps;
  outcome.session =
      StartSession(record, replica->duration_seconds * stretch);
  return outcome;
}

MediaDbSystem::DeliveryOutcome MediaDbSystem::DeliverQosApi(
    SiteId site, LogicalOid content) {
  DeliveryOutcome outcome;
  const media::ReplicaInfo* replica = MasterReplicaAt(content, site);
  if (replica == nullptr) {
    outcome.status = Status::NotFound("no replica at receiving site");
    return outcome;
  }
  // Admission + reservation on the master-quality stream from the
  // receiving site; no plan alternatives exist in this configuration.
  Plan plan;
  plan.replica_oid = replica->id;
  plan.source_site = replica->site;
  plan.delivery_site = site;
  FinalizePlan(plan, *replica, options_.quality.generator.constants);
  Result<res::ReservationId> reservation = qos_api_.Reserve(plan.resources);
  if (!reservation.ok()) {
    outcome.status = reservation.status();
    return outcome;
  }
  SessionRecord record;
  record.content = content;
  record.site = site;
  record.reservation = *reservation;
  outcome.status = Status::Ok();
  outcome.delivered_qos = replica->qos;
  outcome.wire_rate_kbps = plan.wire_rate_kbps;
  outcome.session = StartSession(record, replica->duration_seconds);
  return outcome;
}

MediaDbSystem::DeliveryOutcome MediaDbSystem::DeliverQuasaq(
    SiteId site, LogicalOid content, const query::QosRequirement& qos,
    const UserProfile* profile) {
  DeliveryOutcome outcome;
  if (replication_manager_ != nullptr) {
    int level = DesiredLadderLevel(qos.range);
    if (level >= 0) replication_manager_->RecordDemand(content, level);
  }
  Result<QualityManager::Admitted> admitted =
      quality_manager_->AdmitQuery(site, content, qos, profile);
  if (!admitted.ok()) {
    outcome.status = admitted.status();
    return outcome;
  }
  // Every replica of an object shares the content's duration; look it
  // up through metadata so dynamically created replicas work too.
  auto content_info = metadata_->FindContent(site, content);
  assert(content_info.has_value());
  if (cache_manager_ != nullptr) {
    // Stream the replica through its source site's cache: hits are
    // served from memory, misses warm the cache for later sessions.
    for (const media::ReplicaInfo& replica :
         metadata_->ReplicasOf(site, content)) {
      if (replica.id == admitted->plan.replica_oid) {
        cache_manager_->OnStream(admitted->plan.source_site, replica,
                                 simulator_->Now());
        break;
      }
    }
  }
  SessionRecord record;
  record.content = content;
  record.site = admitted->plan.delivery_site;
  record.reservation = admitted->reservation;
  outcome.status = Status::Ok();
  outcome.renegotiated = admitted->renegotiated;
  outcome.delivered_qos = admitted->plan.delivered_qos;
  outcome.wire_rate_kbps = admitted->plan.wire_rate_kbps;
  outcome.session = StartSession(record, content_info->duration_seconds);
  return outcome;
}

SessionId MediaDbSystem::StartSession(SessionRecord record,
                                      double duration_seconds) {
  SessionId id(next_session_++);
  record.start = simulator_->Now();
  record.expected_end =
      simulator_->Now() + SecondsToSimTime(duration_seconds);
  if (record.reservation != res::kInvalidReservationId) {
    const ResourceVector* vector = qos_api_.Find(record.reservation);
    assert(vector != nullptr);
    record.reserved_vector = *vector;
  }
  record.completion_event = simulator_->ScheduleAt(
      record.expected_end, [this, id] { CompleteSession(id); });
  sessions_.emplace(id, record);
  ++outstanding_;
  return id;
}

Status MediaDbSystem::PauseSession(SessionId session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  SessionRecord& record = it->second;
  if (record.paused) {
    return Status::FailedPrecondition("session already paused");
  }
  // A paused stream sends nothing: give its resources back.
  if (record.reservation != res::kInvalidReservationId) {
    Status status = qos_api_.Release(record.reservation);
    assert(status.ok());
    (void)status;
    record.reservation = res::kInvalidReservationId;
  }
  if (record.vdbms_kbps > 0.0) {
    double& active = vdbms_site_kbps_[record.site.value()];
    active = std::max(0.0, active - record.vdbms_kbps);
  }
  simulator_->Cancel(record.completion_event);
  record.completion_event = sim::kInvalidEventId;
  record.remaining_at_pause = record.expected_end - simulator_->Now();
  record.paused = true;
  return Status::Ok();
}

Status MediaDbSystem::ResumeSession(SessionId session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  SessionRecord& record = it->second;
  if (!record.paused) {
    return Status::FailedPrecondition("session is not paused");
  }
  // Re-admission: the released resources must still be available.
  if (!record.reserved_vector.empty()) {
    Result<res::ReservationId> reservation =
        qos_api_.Reserve(record.reserved_vector);
    if (!reservation.ok()) return reservation.status();
    record.reservation = *reservation;
  }
  if (record.vdbms_kbps > 0.0) {
    vdbms_site_kbps_[record.site.value()] += record.vdbms_kbps;
  }
  record.paused = false;
  record.expected_end = simulator_->Now() + record.remaining_at_pause;
  SessionId id = session;
  record.completion_event = simulator_->ScheduleAt(
      record.expected_end, [this, id] { CompleteSession(id); });
  return Status::Ok();
}

void MediaDbSystem::CompleteSession(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;  // cancelled earlier
  const SessionRecord& record = it->second;
  if (record.reservation != res::kInvalidReservationId) {
    Status status = qos_api_.Release(record.reservation);
    assert(status.ok());
    (void)status;
  }
  if (record.vdbms_kbps > 0.0) {
    double& active = vdbms_site_kbps_[record.site.value()];
    active = std::max(0.0, active - record.vdbms_kbps);
  }
  sessions_.erase(it);
  --outstanding_;
  ++stats_.completed;
  if (on_session_complete_) on_session_complete_(id, simulator_->Now());
}

Status MediaDbSystem::CancelSession(SessionId session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  const SessionRecord& record = it->second;
  if (record.reservation != res::kInvalidReservationId) {
    Status status = qos_api_.Release(record.reservation);
    assert(status.ok());
    (void)status;
  }
  // Paused sessions already returned their resources.
  if (record.vdbms_kbps > 0.0 && !record.paused) {
    double& active = vdbms_site_kbps_[record.site.value()];
    active = std::max(0.0, active - record.vdbms_kbps);
  }
  sessions_.erase(it);
  --outstanding_;
  return Status::Ok();
}

Result<MediaDbSystem::DeliveryOutcome> MediaDbSystem::ChangeSessionQos(
    SessionId session, const query::QosRequirement& new_qos) {
  if (options_.kind != SystemKind::kVdbmsQuasaq) {
    return Status::FailedPrecondition(
        "mid-playback renegotiation requires QuaSAQ");
  }
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return Status::NotFound("no such session");
  SessionRecord& record = it->second;
  Result<QualityManager::Admitted> renegotiated =
      quality_manager_->RenegotiateDelivery(record.reservation, record.site,
                                            record.content, new_qos);
  if (!renegotiated.ok()) return renegotiated.status();
  record.site = renegotiated->plan.delivery_site;
  record.reserved_vector = renegotiated->plan.resources;
  DeliveryOutcome outcome;
  outcome.status = Status::Ok();
  outcome.session = session;
  outcome.renegotiated = true;
  outcome.delivered_qos = renegotiated->plan.delivered_qos;
  outcome.wire_rate_kbps = renegotiated->plan.wire_rate_kbps;
  return outcome;
}

std::string MediaDbSystem::ReportString() const {
  char buf[160];
  std::snprintf(
      buf, sizeof(buf),
      "%s: submitted=%llu admitted=%llu rejected=%llu completed=%llu "
      "outstanding=%d",
      std::string(SystemKindName(options_.kind)).c_str(),
      static_cast<unsigned long long>(stats_.submitted),
      static_cast<unsigned long long>(stats_.admitted),
      static_cast<unsigned long long>(stats_.rejected),
      static_cast<unsigned long long>(stats_.completed), outstanding_);
  std::string out(buf);
  out += "\nbuckets: " + pool_.DebugString();
  std::string bottleneck = qos_api_.BottleneckReport();
  if (!bottleneck.empty()) out += "\n" + bottleneck;
  if (replication_manager_ != nullptr) {
    const repl::ReplicationManager::Stats& repl =
        replication_manager_->stats();
    std::snprintf(buf, sizeof(buf),
                  "\nreplication: cycles=%llu created=%llu dropped=%llu",
                  static_cast<unsigned long long>(repl.cycles),
                  static_cast<unsigned long long>(repl.created),
                  static_cast<unsigned long long>(repl.dropped));
    out += buf;
  }
  if (cache_manager_ != nullptr) {
    out += "\n" + cache_manager_->ReportString();
  }
  return out;
}

std::string MediaDbSystem::Explanation::ToString() const {
  std::string out = "EXPLAIN: " + std::to_string(plans.size()) +
                    " plans for logical OID " +
                    std::to_string(content.value()) + "\n";
  char buf[160];
  int rank = 1;
  for (const QualityManager::RankedPlan& entry : plans) {
    std::snprintf(buf, sizeof(buf),
                  "  %2d. cost=%.4f %-9s %6.1f KB/s  startup=%.1fs  %s\n",
                  rank++, entry.cost,
                  entry.admissible ? "admit" : "reject",
                  entry.plan.wire_rate_kbps, entry.plan.startup_seconds,
                  entry.plan.ToString().c_str());
    out += buf;
  }
  return out;
}

Result<MediaDbSystem::Explanation> MediaDbSystem::ExplainTextQuery(
    SiteId client_site, std::string_view text, size_t max_plans) {
  if (quality_manager_ == nullptr) {
    return Status::FailedPrecondition("EXPLAIN requires QuaSAQ");
  }
  Result<query::ParsedQuery> parsed = query::ParseQuery(text);
  if (!parsed.ok()) return parsed.status();
  std::vector<LogicalOid> matches = ResolveContent(*parsed);
  if (matches.empty()) {
    return Status::NotFound("no video matches the content predicate");
  }
  Explanation explanation;
  explanation.content = matches.front();
  Result<std::vector<QualityManager::RankedPlan>> plans =
      quality_manager_->ExplainPlans(client_site, explanation.content,
                                     parsed->qos, max_plans);
  if (!plans.ok()) return plans.status();
  explanation.plans = std::move(*plans);
  return explanation;
}

Result<MediaDbSystem::TextQueryOutcome> MediaDbSystem::SubmitTextQuery(
    SiteId client_site, std::string_view text, const UserProfile* profile) {
  Result<query::ParsedQuery> parsed = query::ParseQuery(text);
  if (!parsed.ok()) return parsed.status();
  if (parsed->explain) {
    return Status::FailedPrecondition(
        "EXPLAIN queries must go through ExplainTextQuery");
  }
  std::vector<LogicalOid> matches = ResolveContent(*parsed);
  if (matches.empty()) {
    return Status::NotFound("no video matches the content predicate");
  }
  TextQueryOutcome outcome;
  outcome.content = matches.front();
  outcome.delivery =
      SubmitDelivery(client_site, outcome.content, parsed->qos, profile);
  return outcome;
}

}  // namespace quasaq::core
