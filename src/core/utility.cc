#include "core/utility.h"

#include <algorithm>

namespace quasaq::core {

double AxisUtility(double delivered, double min_value, double max_value) {
  if (max_value <= min_value) {
    return delivered >= min_value ? 1.0 : 0.0;
  }
  return std::clamp((delivered - min_value) / (max_value - min_value), 0.0,
                    1.0);
}

double PresentationUtility(const media::AppQos& delivered,
                           const media::AppQosRange& requested,
                           const UtilityWeights& weights) {
  double spatial = AxisUtility(
      static_cast<double>(delivered.resolution.PixelCount()),
      static_cast<double>(requested.min_resolution.PixelCount()),
      static_cast<double>(requested.max_resolution.PixelCount()));
  double temporal = AxisUtility(delivered.frame_rate,
                                requested.min_frame_rate,
                                requested.max_frame_rate);
  double color = AxisUtility(
      static_cast<double>(delivered.color_depth_bits),
      static_cast<double>(requested.min_color_depth_bits),
      static_cast<double>(requested.max_color_depth_bits));
  double audio = AxisUtility(static_cast<double>(delivered.audio),
                             static_cast<double>(requested.min_audio),
                             static_cast<double>(requested.max_audio));
  double total_weight = weights.spatial + weights.temporal +
                        weights.color + weights.audio;
  if (total_weight <= 0.0) return 0.0;
  return (spatial * weights.spatial + temporal * weights.temporal +
          color * weights.color + audio * weights.audio) /
         total_weight;
}

RuntimeCostEvaluator::GainFunction MakeSatisfactionGain(
    media::AppQosRange requested, UtilityWeights weights) {
  return [requested, weights](const Plan& plan) {
    return 0.1 +
           0.9 * PresentationUtility(plan.delivered_qos, requested, weights);
  };
}

}  // namespace quasaq::core
