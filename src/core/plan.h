#ifndef QUASAQ_CORE_PLAN_H_
#define QUASAQ_CORE_PLAN_H_

#include <string>

#include "common/ids.h"
#include "common/resource_vector.h"
#include "media/video.h"
#include "net/rtp.h"

// QoS-aware execution plans (paper §3.4). A plan is one ordered choice
// from the disjoint activity sets:
//   A1 object retrieval — which physical replica,
//   A2 target site      — which server streams to the client,
//   A3 frame dropping   — runtime adaptation strategy,
//   A4 transcoding      — online format/quality conversion,
//   A5 encryption       — stream protection.
// Each plan carries the resource vector the Plan Generator computed for
// it; the Runtime Cost Evaluator ranks plans by costing that vector
// against current bucket usage.

namespace quasaq::core {

struct Plan {
  // A1: the chosen physical copy and the site storing it.
  PhysicalOid replica_oid;
  SiteId source_site;
  // A2: the site that performs the server activities and streams to the
  // client. When it differs from source_site the object is relayed
  // across the server network first (Fig. 2's solid-line example).
  SiteId delivery_site;
  // A3–A5.
  net::StreamTransform transform;
  // Fraction of the replica's bytes retrieved from the source site's
  // in-memory segment cache instead of disk (src/cache/). Plan variants
  // with a positive fraction swap that share of disk bandwidth for the
  // (far larger) memory-bandwidth bucket, so the cost evaluator ranks
  // them ahead of disk-bound plans whenever the disk is the hot bucket.
  double cache_fraction = 0.0;

  // --- Derived by FinalizePlan ---------------------------------------
  // Quality the client observes (after transcode and frame dropping).
  media::AppQos delivered_qos;
  // Average bytes/second on the client-facing wire.
  double wire_rate_kbps = 0.0;
  // Estimated startup latency before the first frame plays at the
  // client — the plan-dependent part of Table 1's Time Guarantee.
  double startup_seconds = 0.0;
  // Everything the plan consumes while it runs.
  ResourceVector resources;

  bool IsRelayed() const { return source_site != delivery_site; }
  bool IsCacheServed() const { return cache_fraction > 0.0; }

  /// Renders e.g. "oid7@site1 ->site0 half-B transcode(352x288/...) enc2".
  std::string ToString() const;
};

// Cost-model constants shared by plan finalization and execution.
struct PlanCostConstants {
  media::StreamingCpuCost streaming_cost;
  // CPU of relaying a stream between servers, as a fraction of the
  // plain streaming cost of the same bytes.
  double relay_cpu_factor = 0.25;
  // Staging buffer at the delivery site, seconds of wire rate.
  double buffer_seconds = 2.0;
  // Startup-latency model: fixed session setup, extra setup per relay
  // hop, online-transcoder pipeline warmup, and the client's startup
  // buffer (one buffer_seconds' worth of media must arrive first).
  double startup_base_seconds = 0.5;
  double startup_relay_seconds = 0.3;
  double startup_transcode_seconds = 1.0;
  // Startup saved by a fully cache-served retrieval (no disk seek /
  // read-ahead before the first frame); scaled by the cache fraction.
  double startup_cache_seconds = 0.2;
};

/// Fills the derived fields of `plan` (delivered_qos, wire_rate_kbps,
/// resources) from the replica it serves. `replica` must match
/// `plan.replica_oid`.
void FinalizePlan(Plan& plan, const media::ReplicaInfo& replica,
                  const PlanCostConstants& constants);

}  // namespace quasaq::core

#endif  // QUASAQ_CORE_PLAN_H_
