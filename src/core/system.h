#ifndef QUASAQ_CORE_SYSTEM_H_
#define QUASAQ_CORE_SYSTEM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cache/cache_manager.h"
#include "common/ids.h"
#include "common/status.h"
#include "core/cost_model.h"
#include "core/qop.h"
#include "core/quality_manager.h"
#include "core/session_manager.h"
#include "media/library.h"
#include "metadata/distributed_engine.h"
#include "net/topology.h"
#include "obs/observability.h"
#include "query/content_search.h"
#include "query/parser.h"
#include "replication/manager.h"
#include "resource/composite_api.h"
#include "resource/pool.h"
#include "resource/telemetry.h"
#include "simcore/simulator.h"
#include "storage/storage_manager.h"

// End-to-end system facades for the three configurations the paper
// evaluates (Figures 6 and 7):
//
//  * kVdbms        — the original system: no QoS control at all. Every
//                    query is admitted and served the master-quality
//                    object from the receiving site; oversubscribed
//                    links stretch job completion ("it took much longer
//                    time to finish each job").
//  * kVdbmsQosApi  — VDBMS + the low-level QoS APIs only: admission
//                    control and reservation on the master-quality
//                    stream, but no replication awareness, no plan
//                    choice, no cost model.
//  * kVdbmsQuasaq  — the full QuaSAQ stack: QoS-specific replicas,
//                    plan generation, runtime cost evaluation, and
//                    reservation through the Composite QoS API.
//
// MediaDbSystem is a thin facade: it translates each query into a
// delivery decision for its configuration kind and delegates everything
// else to the two layers below it — the planning stream inside
// QualityManager (core/plan_stream.h) and the session lifecycle in
// SessionManager (core/session_manager.h). See docs/ARCHITECTURE.md.
//
// Sessions are modeled at the session level here (admission +
// timed completion); the frame-level QoS path of Figure 5 uses
// net::RtpStreamingSession with the CPU schedulers directly.

namespace quasaq::core {

enum class SystemKind {
  kVdbms = 0,
  kVdbmsQosApi,
  kVdbmsQuasaq,
};

/// Returns "VDBMS", "VDBMS+QoSAPI" or "VDBMS+QuaSAQ".
std::string_view SystemKindName(SystemKind kind);

class MediaDbSystem {
 public:
  struct Options {
    SystemKind kind = SystemKind::kVdbmsQuasaq;
    net::Topology topology = net::Topology::PaperTestbed();
    media::LibraryOptions library;
    // Cost model name for the QuaSAQ configuration (cost_model.h).
    std::string cost_model = "lrb";
    uint64_t seed = 1;
    QualityManager::Options quality;
    // Number of session-table shards (core/session_manager.h). 1 (the
    // default) reproduces the unsharded behavior exactly, session IDs
    // included. > 1 also gives each shard its own metrics registry
    // (merged on snapshot) so concurrent admissions on different sites
    // never contend on a session-table lock or a counter cache line.
    int session_shards = 1;
    // CPU capacity of one server, as a fraction (1.0 = one CPU).
    double cpu_capacity = 1.0;
    // Oversubscribed VDBMS links stretch session time up to this factor.
    double vdbms_max_stretch = 2.5;
    meta::QosSampler::Options sampler;

    // Dynamic online replication (QuaSAQ only). When enabled the system
    // instantiates per-site storage managers, tracks per-(content,
    // quality) demand and lets a ReplicationManager materialize/evict
    // replicas at runtime.
    struct DynamicReplication {
      bool enabled = false;
      repl::ReplicationManager::Options manager;
      // Per-site storage budget; 0 = unlimited.
      double storage_capacity_kb = 0.0;
    };
    DynamicReplication replication;

    // Per-site segment caching (QuaSAQ only). When enabled each site
    // gets a SegmentCache; admitted sessions stream their replica
    // through the source site's cache, and the Plan Generator emits
    // cache-served plan variants that swap the cached share of disk
    // bandwidth for memory bandwidth.
    struct Cache {
      bool enabled = false;
      cache::CacheManager::Options manager;
      // Minimum cached fraction for a cache-served plan variant to be
      // worth emitting.
      double min_plan_fraction = 0.05;
    };
    Cache cache;

    // End-to-end observability (src/obs/). The metrics registry is
    // always on — counters are lock-free and gauges/histograms cost one
    // leaf lock, so instrumentation overhead is negligible next to
    // planning. Per-session trace recording is opt-in.
    struct Observability {
      // Record per-delivery spans (admit → plan → stream →
      // renegotiate → complete) for Chrome trace-event export.
      bool tracing = false;
      // Cap on buffered trace events; Begin/Instant past the cap are
      // dropped (counted), End is always kept so spans stay closed.
      size_t trace_max_events = 1 << 20;
    };
    Observability observability;
  };

  struct DeliveryOutcome {
    Status status;  // OK = admitted; the session is now streaming
    SessionId session;
    bool renegotiated = false;
    media::AppQos delivered_qos;   // valid when admitted
    double wire_rate_kbps = 0.0;   // valid when admitted
  };

  struct Stats {
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;
  };

  using SessionCompleteCallback = SessionManager::CompleteCallback;

  MediaDbSystem(sim::Simulator* simulator, const Options& options);

  /// Phase 1: resolves the content component of a parsed query to
  /// logical OIDs via the content index.
  std::vector<LogicalOid> ResolveContent(
      const query::ParsedQuery& parsed) const;

  /// Phase 2: admits and starts the delivery of `content` under `qos`
  /// for a client attached to `client_site`. Depending on the system
  /// kind this performs no control (VDBMS), plain admission
  /// (VDBMS+QoSAPI) or full QuaSAQ planning.
  DeliveryOutcome SubmitDelivery(SiteId client_site, LogicalOid content,
                                 const query::QosRequirement& qos,
                                 const UserProfile* profile = nullptr);

  struct TextQueryOutcome {
    LogicalOid content;
    DeliveryOutcome delivery;
  };

  /// Full path: parse `text`, resolve content, deliver the first match.
  /// Queries prefixed with EXPLAIN are rejected with
  /// kFailedPrecondition — route them to ExplainTextQuery.
  Result<TextQueryOutcome> SubmitTextQuery(SiteId client_site,
                                           std::string_view text,
                                           const UserProfile* profile =
                                               nullptr);

  struct Explanation {
    LogicalOid content;
    std::vector<QualityManager::RankedPlan> plans;

    /// Renders the EXPLAIN listing, one plan per line with its cost,
    /// wire rate and admissibility.
    std::string ToString() const;
  };

  /// EXPLAIN path (QuaSAQ only): parse, resolve content, enumerate and
  /// rank the delivery plans without executing anything. Accepts the
  /// query with or without the EXPLAIN prefix. Enumeration stops once
  /// `max_plans` entries have been yielded from the plan stream.
  Result<Explanation> ExplainTextQuery(SiteId client_site,
                                       std::string_view text,
                                       size_t max_plans = 10);

  /// Aborts a running session early, releasing its resources.
  Status CancelSession(SessionId session) {
    return session_manager_.Cancel(session);
  }

  /// Mid-playback QoS change (QuaSAQ only): re-plans the session's
  /// content under `new_qos` and renegotiates its reservation. The
  /// playback schedule is unchanged; only the delivered quality and the
  /// reserved resources move. A paused session can be re-planned too:
  /// nothing is acquired until resume, which then re-admits the new
  /// plan's resources. Fails with kFailedPrecondition on non-QuaSAQ
  /// systems, kNotFound for unknown sessions; planner and admission
  /// errors propagate, leaving the old reservation intact.
  Result<DeliveryOutcome> ChangeSessionQos(
      SessionId session, const query::QosRequirement& new_qos,
      const UserProfile* profile = nullptr);

  /// User action: pauses a running session. Its reserved resources are
  /// released while paused (a paused stream sends nothing); playback
  /// time stops accruing.
  Status PauseSession(SessionId session) {
    return session_manager_.Pause(session);
  }

  /// User action: resumes a paused session — effectively a
  /// renegotiation, since the released resources must be re-admitted.
  /// Fails with kResourceExhausted when the system can no longer carry
  /// the stream; the session then stays paused.
  Status ResumeSession(SessionId session) {
    return session_manager_.Resume(session);
  }

  void set_on_session_complete(SessionCompleteCallback callback) {
    on_session_complete_ = std::move(callback);
  }

  int outstanding_sessions() const { return session_manager_.outstanding(); }
  /// Consistent snapshot of the query counters (accumulated with
  /// relaxed atomics, so concurrent submissions never tear it).
  Stats stats() const;
  SystemKind kind() const { return options_.kind; }

  const media::VideoLibrary& library() const { return library_; }
  const net::Topology& topology() const { return options_.topology; }
  res::ResourcePool& pool() { return pool_; }
  const res::CompositeQosApi& qos_api() const { return qos_api_; }

  /// Multi-line operator report: query counters, bucket fill, bottleneck
  /// resource, and (when enabled) replication activity.
  std::string ReportString() const;
  meta::DistributedMetadataEngine& metadata() { return *metadata_; }
  QualityManager* quality_manager() { return quality_manager_.get(); }
  /// The session lifecycle layer (session table, pause/resume state).
  const SessionManager& session_manager() const { return session_manager_; }
  /// Non-null only when dynamic replication is enabled.
  repl::ReplicationManager* replication_manager() {
    return replication_manager_.get();
  }
  /// The storage manager of `site`; non-null only with replication on.
  storage::StorageManager* storage_at(SiteId site) {
    for (auto& store : storage_) {
      if (store->site() == site) return store.get();
    }
    return nullptr;
  }
  /// Non-null only when segment caching is enabled (QuaSAQ only).
  cache::CacheManager* cache_manager() { return cache_manager_.get(); }

  /// The live observability context all layers report into.
  obs::Observability& observability() { return observability_; }
  const obs::Observability& observability() const { return observability_; }

  // Serialized exposition of the observability state: the Prometheus
  // text dump and the JSON snapshot of every metric, plus the Chrome
  // trace-event JSON (empty when tracing is off).
  struct ObservabilitySnapshot {
    std::string prometheus;
    std::string metrics_json;
    std::string trace_json;
  };
  ObservabilitySnapshot TakeObservabilitySnapshot() const;

  /// Records one utilization sample per resource bucket at the current
  /// sim time. The facade calls this whenever utilization moves (session
  /// start and completion); harnesses wanting a fixed cadence can drive
  /// it from a periodic simulator task.
  void SampleResourceTelemetry();

 private:
  /// Parses `text` and resolves its content predicate to the first
  /// matching logical OID (stored into `content`).
  Result<query::ParsedQuery> ParseAndResolve(std::string_view text,
                                             LogicalOid* content) const;
  // `trace_track` is the delivery's span track (0 = untraced); it is a
  // parameter, not a member, so concurrent (untraced) submissions never
  // share mutable facade state.
  DeliveryOutcome DeliverVdbms(SiteId site, LogicalOid content,
                               int64_t trace_track);
  DeliveryOutcome DeliverQosApi(SiteId site, LogicalOid content,
                                int64_t trace_track);
  DeliveryOutcome DeliverQuasaq(SiteId site, LogicalOid content,
                                const query::QosRequirement& qos,
                                const UserProfile* profile,
                                int64_t trace_track);

  sim::Simulator* simulator_;
  Options options_;
  obs::Observability observability_;
  media::VideoLibrary library_;
  std::unique_ptr<meta::DistributedMetadataEngine> metadata_;
  query::ContentIndex content_index_;
  res::ResourcePool pool_;
  res::CompositeQosApi qos_api_;
  SessionManager session_manager_;
  std::unique_ptr<CostModel> cost_model_;
  std::unique_ptr<QualityManager> quality_manager_;
  std::vector<std::unique_ptr<storage::StorageManager>> storage_;
  std::unique_ptr<repl::ReplicationManager> replication_manager_;
  std::unique_ptr<cache::CacheManager> cache_manager_;
  std::unique_ptr<res::PoolTelemetry> pool_telemetry_;

  // The Stats fields, accumulated with relaxed atomics (stats()
  // snapshots them) so concurrent submissions never race.
  struct AtomicStats {
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> completed{0};
  };
  AtomicStats stats_;
  SessionCompleteCallback on_session_complete_;
};

}  // namespace quasaq::core

#endif  // QUASAQ_CORE_SYSTEM_H_
