#ifndef QUASAQ_CORE_QUERY_PRODUCER_H_
#define QUASAQ_CORE_QUERY_PRODUCER_H_

#include <string>

#include "core/qop.h"
#include "query/ast.h"

// Query Producer (paper §3.2): turns user actions — a content request
// plus QoP inputs — and the current User Profile settings into a
// QoS-aware query. We emit the textual query language (query/parser.h)
// so the whole user-to-engine path is exercised end to end.

namespace quasaq::core {

class QueryProducer {
 public:
  /// `profile` must outlive the producer.
  explicit QueryProducer(const UserProfile* profile);

  /// Renders the QoS-aware query text for `content` with the
  /// application-QoS translation of `request`.
  std::string ProduceText(const query::ContentPredicate& content,
                          const QopRequest& request) const;

  /// Builds the parsed query directly (what ProduceText parses to).
  query::ParsedQuery Produce(const query::ContentPredicate& content,
                             const QopRequest& request) const;

  const UserProfile& profile() const { return *profile_; }

 private:
  const UserProfile* profile_;
};

}  // namespace quasaq::core

#endif  // QUASAQ_CORE_QUERY_PRODUCER_H_
