#ifndef QUASAQ_CORE_PLAN_EXECUTOR_H_
#define QUASAQ_CORE_PLAN_EXECUTOR_H_

#include <functional>
#include <memory>
#include <unordered_map>

#include "cache/cache_manager.h"
#include "core/quality_manager.h"
#include "net/rtp.h"
#include "resource/cpu_scheduler.h"
#include "simcore/simulator.h"

// Plan Executor (paper §3.2): "actually runs the chosen plan... performs
// actual presentation, synchronization as well as runtime maintenance of
// underlying QoS parameters". This is the frame-level execution path:
// an admitted plan becomes an RTP streaming session whose server
// activities follow the plan's transform and whose CPU work runs under a
// DSRT-style reservation at the delivery site. (The session-level
// facades in core/system.h use timed completion instead; this executor
// backs the QoS experiments and the examples that want real frames.)

namespace quasaq::core {

// One frame-level delivery in flight.
class RunningDelivery {
 public:
  RunningDelivery(std::unique_ptr<net::RtpStreamingSession> session,
                  Plan plan);

  net::RtpStreamingSession& session() { return *session_; }
  const Plan& plan() const { return plan_; }

 private:
  std::unique_ptr<net::RtpStreamingSession> session_;
  Plan plan_;
};

class PlanExecutor {
 public:
  struct Options {
    net::RtpSessionOptions session;
    // Reservation headroom: reserve demand * this factor of CPU.
    double cpu_reservation_factor = 1.2;
    // Server-to-server hop latency for relayed plans.
    SimTime relay_hop_latency = 5 * kMillisecond;
  };

  /// `simulator` must outlive the executor. One reservation scheduler is
  /// created per delivery site on demand.
  PlanExecutor(sim::Simulator* simulator, const Options& options);

  /// Starts executing `plan` streaming `replica` (must match the plan's
  /// replica OID). Fails with kResourceExhausted when the delivery
  /// site's CPU cannot take the stream's reservation. The executor only
  /// needs the plan itself — admission bookkeeping (reservation handle,
  /// renegotiation flag) stays in the layers above.
  Result<std::unique_ptr<RunningDelivery>> Execute(
      const Plan& plan, const media::ReplicaInfo& replica,
      net::RtpStreamingSession::FinishedCallback on_finished = nullptr);

  /// Convenience overload for QualityManager admission results.
  Result<std::unique_ptr<RunningDelivery>> Execute(
      const QualityManager::Admitted& admitted,
      const media::ReplicaInfo& replica,
      net::RtpStreamingSession::FinishedCallback on_finished = nullptr) {
    return Execute(admitted.plan, replica, std::move(on_finished));
  }

  /// The reservation scheduler of `site` (created on first use).
  res::ReservationCpuScheduler& SchedulerFor(SiteId site);

  /// Attaches the per-site segment caches (non-owning; nullptr
  /// detaches). Executed plans then stream their replica through the
  /// source site's cache at start time, mirroring the session-level
  /// delivery path in core/system.h.
  void set_cache(cache::CacheManager* cache) { cache_ = cache; }

 private:
  sim::Simulator* simulator_;
  Options options_;
  cache::CacheManager* cache_ = nullptr;
  std::unordered_map<SiteId, std::unique_ptr<res::ReservationCpuScheduler>>
      schedulers_;
};

}  // namespace quasaq::core

#endif  // QUASAQ_CORE_PLAN_EXECUTOR_H_
