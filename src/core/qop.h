#ifndef QUASAQ_CORE_QOP_H_
#define QUASAQ_CORE_QOP_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/ids.h"
#include "media/activities.h"
#include "media/quality.h"

// Quality of Presentation (paper §3.2): the user-facing, qualitative
// side of QoS. Users pick levels like "high spatial resolution" or named
// presets like "DVD quality"; the User Profile translates those into
// quantitative application-QoS ranges, and per-user weights record which
// axes the user prefers to protect during renegotiation.

namespace quasaq::core {

// Qualitative level of one QoP axis.
enum class QopLevel { kLow = 0, kMedium, kHigh };

/// Returns "low" / "medium" / "high".
std::string_view QopLevelName(QopLevel level);

// A user's qualitative quality request.
struct QopRequest {
  QopLevel spatial = QopLevel::kMedium;    // spatial resolution
  QopLevel temporal = QopLevel::kMedium;   // frame rate
  QopLevel color = QopLevel::kMedium;      // color depth
  QopLevel audio = QopLevel::kMedium;      // audio quality
  media::SecurityLevel security = media::SecurityLevel::kNone;

  std::string ToString() const;
};

/// Maps a named preset ("dvd", "vcd", "low-bandwidth") to a QopRequest;
/// empty for unknown names. Matching is case-insensitive.
std::optional<QopRequest> QopPresetByName(std::string_view name);

// Relative importance of the QoP axes to one user; used to decide which
// axis to degrade first when renegotiation is needed (paper §3.2:
// "per-user weighting of the quality parameters"). Higher = the user
// cares more, degrade later.
struct RenegotiationWeights {
  double spatial = 1.0;
  double temporal = 1.0;
  double color = 1.0;
  double audio = 0.8;
};

// Per-user QoP-to-QoS mapping plus renegotiation preferences.
class UserProfile {
 public:
  UserProfile(UserId id, std::string name);

  /// A physician reviewing diagnostic video: everything high, strong
  /// security, and spatial quality protected during renegotiation.
  static UserProfile Physician(UserId id);

  /// A nurse organizing records: medium quality, standard security,
  /// temporal quality degraded last.
  static UserProfile Nurse(UserId id);

  UserId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Translates a qualitative request into the quantitative
  /// application-QoS window this user associates with those levels.
  media::AppQosRange Translate(const QopRequest& request) const;

  const RenegotiationWeights& weights() const { return weights_; }
  void set_weights(const RenegotiationWeights& weights) {
    weights_ = weights;
  }

  /// Relaxes `range` one step along the axis this user is most willing
  /// to degrade that is not yet fully relaxed (lowering that axis's
  /// minimum bound). Returns false when nothing is left to relax.
  bool RelaxForRenegotiation(media::AppQosRange& range) const;

 private:
  UserId id_;
  std::string name_;
  RenegotiationWeights weights_;
};

}  // namespace quasaq::core

#endif  // QUASAQ_CORE_QOP_H_
