#include "workload/interframe.h"

#include <cassert>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "media/library.h"
#include "media/video.h"
#include "net/rtp.h"
#include "resource/cpu_scheduler.h"
#include "simcore/simulator.h"

namespace quasaq::workload {

namespace {

// Builds a VCD-class MPEG-1 replica (the shape of the paper's sample
// video with frame rate 23.97 fps) long enough for the experiment.
media::ReplicaInfo MakeReplica(int64_t oid, double duration_seconds,
                               uint64_t frame_seed) {
  media::ReplicaInfo replica;
  replica.id = PhysicalOid(oid);
  replica.content = LogicalOid(oid);
  replica.site = SiteId(0);
  replica.qos = media::QualityLadder::Standard().levels[1];  // VCD class
  replica.duration_seconds = duration_seconds;
  replica.frame_seed = frame_seed;
  media::FinalizeReplicaSizing(replica);
  return replica;
}

}  // namespace

InterframeResult RunInterframeExperiment(const InterframeOptions& options) {
  sim::Simulator simulator;
  Rng rng(options.seed);

  const ContentionLevel& level =
      options.high_contention ? options.high : options.low;

  // Both schedulers model the same physical CPU: DSRT-reserved work has
  // strict priority, so in QuaSAQ mode the time-sharing load only eats
  // what the reservations leave over and never delays them.
  res::TimeSharingCpuScheduler time_sharing(
      &simulator, res::TimeSharingCpuScheduler::Options());
  res::ReservationCpuScheduler reservation(
      &simulator, res::ReservationCpuScheduler::Options{
                      .reservable_fraction = 0.9,
                      .scheduler_overhead_fraction = 0.016,
                      .max_dispatch_latency_ms = 0.2,
                      .seed = options.seed * 13 + 1,
                  });

  const double fps = media::QualityLadder::Standard().levels[1].frame_rate;
  const double measured_seconds =
      static_cast<double>(options.measured_frames) / fps + 5.0;
  const double horizon_seconds = measured_seconds * 4.0;

  // Measured stream.
  media::ReplicaInfo measured_replica =
      MakeReplica(0, measured_seconds, options.seed * 7 + 3);
  net::RtpSessionOptions measured_options;
  measured_options.max_source_frames = options.measured_frames;
  measured_options.record_limit =
      static_cast<size_t>(options.measured_frames);
  net::RtpStreamingSession measured(&simulator, measured_replica,
                                    net::StreamTransform{},
                                    measured_options);

  // Background streams, started at staggered offsets.
  std::vector<std::unique_ptr<net::RtpStreamingSession>> background;
  for (int i = 0; i < level.background_streams; ++i) {
    media::ReplicaInfo replica =
        MakeReplica(100 + i, horizon_seconds, options.seed * 31 + i);
    net::RtpSessionOptions bg_options;
    bg_options.record_limit = 0;  // metrics not needed
    background.push_back(std::make_unique<net::RtpStreamingSession>(
        &simulator, replica, net::StreamTransform{}, bg_options));
  }

  if (options.quasaq) {
    double demand = measured.CpuDemandFraction() * 1.2;
    Status status = measured.AttachReserved(&reservation, demand);
    assert(status.ok());
    (void)status;
    for (auto& session : background) {
      // Ignore reservation failures: admission control simply stops
      // adding background load once the CPU is fully reserved.
      (void)session->AttachReserved(&reservation,
                                    session->CpuDemandFraction() * 1.2);
    }
  } else {
    measured.AttachTimeSharing(&time_sharing);
    for (auto& session : background) {
      session->AttachTimeSharing(&time_sharing);
    }
  }

  // Best-effort CPU load on the time-sharing scheduler. Each worker
  // task receives its own Poisson job stream; one self-rescheduling
  // arrival closure per worker.
  std::vector<std::unique_ptr<res::WorkQueueTask>> cpu_load;
  std::vector<std::function<void()>> arrival_closures;
  auto add_load = [&](int tasks, double jobs_per_second, double work_min_ms,
                      double work_max_ms, double quantum_ms) {
    if (tasks <= 0 || jobs_per_second <= 0.0) return;
    for (int i = 0; i < tasks; ++i) {
      auto task = std::make_unique<res::WorkQueueTask>(&time_sharing);
      time_sharing.AddTask(task.get(), quantum_ms);
      res::WorkQueueTask* raw = task.get();
      cpu_load.push_back(std::move(task));
      size_t slot = arrival_closures.size();
      arrival_closures.push_back({});
      arrival_closures[slot] = [&, raw, jobs_per_second, work_min_ms,
                                work_max_ms, slot] {
        raw->Submit(rng.Uniform(work_min_ms, work_max_ms), nullptr);
        double gap = rng.Exponential(1.0 / jobs_per_second);
        if (SimTimeToSeconds(simulator.Now()) + gap < horizon_seconds) {
          simulator.ScheduleAfter(SecondsToSimTime(gap),
                                  [&, slot] { arrival_closures[slot](); });
        }
      };
      simulator.ScheduleAfter(
          SecondsToSimTime(rng.Exponential(1.0 / jobs_per_second)),
          [&, slot] { arrival_closures[slot](); });
    }
  };
  add_load(level.query_tasks, level.query_jobs_per_second,
           level.query_work_min_ms, level.query_work_max_ms,
           /*quantum_ms=*/0.0);
  add_load(level.hog_tasks, level.hog_jobs_per_second, level.hog_work_min_ms,
           level.hog_work_max_ms, options.hog_quantum_ms);

  for (auto& session : background) {
    SimTime offset = SecondsToSimTime(rng.Uniform(0.0, 2.0));
    net::RtpStreamingSession* raw = session.get();
    simulator.ScheduleAfter(offset, [raw] { raw->Start(); });
  }
  measured.Start();

  const SimTime horizon = SecondsToSimTime(horizon_seconds);
  while (!measured.finished() && simulator.Now() < horizon &&
         simulator.Step()) {
  }

  InterframeResult result;
  result.frame_times = measured.frame_completion_times();
  result.interframe_ms = measured.InterFrameDelayStats();
  result.intergop_ms = measured.InterGopDelayStats();
  result.ideal_interframe_ms = 1000.0 / fps;
  result.measured_finished = measured.finished();
  return result;
}

}  // namespace quasaq::workload
