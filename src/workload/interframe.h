#ifndef QUASAQ_WORKLOAD_INTERFRAME_H_
#define QUASAQ_WORKLOAD_INTERFRAME_H_

#include <vector>

#include "common/sim_time.h"
#include "common/stats.h"

// Frame-level QoS experiment driver (Figure 5 / Table 2): streams one
// measured video while a configurable contention level competes for the
// server CPU. Contention has three ingredients, mirroring a loaded
// VDBMS server:
//   * concurrent streaming sessions (per-frame work, 10 ms quanta),
//   * query-processing tasks — content-based search, shot detection —
//     that keep several run-queue slots busy (10 ms quanta),
//   * occasional CPU hogs whose decayed Solaris TS priority earns them
//     long (200 ms) quanta, starving interactive jobs for up to ~1 s.
// In VDBMS mode everything shares the time-sharing scheduler; in QuaSAQ
// mode the streams hold DSRT-style reservations with strict priority and
// the time-sharing load only gets leftovers.

namespace quasaq::workload {

// Background load of one contention level.
struct ContentionLevel {
  int background_streams = 0;
  // Query-processing load: `query_tasks` workers, each receiving Poisson
  // jobs at `query_jobs_per_second` with uniform work in [min, max] ms.
  int query_tasks = 0;
  double query_jobs_per_second = 0.0;
  double query_work_min_ms = 0.0;
  double query_work_max_ms = 0.0;
  // CPU-hog load (long-quantum batch processes).
  int hog_tasks = 0;
  double hog_jobs_per_second = 0.0;
  double hog_work_min_ms = 0.0;
  double hog_work_max_ms = 0.0;
};

struct InterframeOptions {
  bool quasaq = false;           // false = original VDBMS CPU path
  bool high_contention = false;
  int measured_frames = 1050;
  ContentionLevel low{
      .background_streams = 2,
      .query_tasks = 3,
      .query_jobs_per_second = 2.0,
      .query_work_min_ms = 20.0,
      .query_work_max_ms = 120.0,
      .hog_tasks = 1,
      .hog_jobs_per_second = 0.30,
      .hog_work_min_ms = 100.0,
      .hog_work_max_ms = 350.0,
  };
  ContentionLevel high{
      .background_streams = 10,
      .query_tasks = 5,
      .query_jobs_per_second = 7.0,
      .query_work_min_ms = 50.0,
      .query_work_max_ms = 200.0,
      .hog_tasks = 2,
      .hog_jobs_per_second = 1.0,
      .hog_work_min_ms = 800.0,
      .hog_work_max_ms = 1200.0,
  };
  double hog_quantum_ms = 200.0;
  uint64_t seed = 11;
};

struct InterframeResult {
  // Server-side completion time of each delivered frame of the
  // measured stream.
  std::vector<SimTime> frame_times;
  RunningStats interframe_ms;
  RunningStats intergop_ms;
  double ideal_interframe_ms = 0.0;  // 1000 / frame rate
  bool measured_finished = false;
};

InterframeResult RunInterframeExperiment(const InterframeOptions& options);

}  // namespace quasaq::workload

#endif  // QUASAQ_WORKLOAD_INTERFRAME_H_
