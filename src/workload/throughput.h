#ifndef QUASAQ_WORKLOAD_THROUGHPUT_H_
#define QUASAQ_WORKLOAD_THROUGHPUT_H_

#include "common/stats.h"
#include "core/system.h"
#include "workload/traffic.h"

// Session-level throughput experiment driver, shared by the Figure 6
// (system comparison) and Figure 7 (cost-model comparison) harnesses.
// Feeds a Poisson query stream into one MediaDbSystem and samples
// outstanding sessions, accomplished jobs per minute, and cumulative
// rejects over simulated time.

namespace quasaq::workload {

struct ThroughputOptions {
  core::MediaDbSystem::Options system;
  TrafficOptions traffic;
  SimTime horizon = 1000 * kSecond;
  SimTime sample_period = 5 * kSecond;
  bool enable_renegotiation_profile = true;
};

struct ThroughputResult {
  TimeSeries outstanding;        // sessions over time
  TimeSeries cumulative_rejects; // rejected queries over time
  WindowedRate completions{kMinute};  // accomplished jobs per minute
  core::MediaDbSystem::Stats system_stats;
  core::QualityManager::Stats quality_stats;  // zero for non-QuaSAQ
  double mean_delivered_kbps = 0.0;  // average admitted wire rate
  // Average presentation utility of admitted sessions (delivered quality
  // scored against the query's acceptable window).
  double mean_utility = 0.0;
};

/// Runs one experiment to `options.horizon` and returns its metrics.
ThroughputResult RunThroughputExperiment(const ThroughputOptions& options);

}  // namespace quasaq::workload

#endif  // QUASAQ_WORKLOAD_THROUGHPUT_H_
