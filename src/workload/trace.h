#ifndef QUASAQ_WORKLOAD_TRACE_H_
#define QUASAQ_WORKLOAD_TRACE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/system.h"
#include "workload/traffic.h"

// Trace-driven workloads: a recorded query stream that can be replayed
// bit-identically against any system configuration. Traces make
// cross-configuration comparisons airtight (every system sees the same
// queries at the same instants) and let external workloads be plugged
// into the harnesses.
//
// Text format, one query per line ('#' starts a comment):
//
//   arrival_seconds,video,client_site,spatial,temporal,color,audio,security
//   12.5,3,0,high,medium,low,medium,none

namespace quasaq::workload {

struct TraceEntry {
  double arrival_seconds = 0.0;
  QuerySpec spec;
};

/// Parses a trace from text. QoP levels are translated to application
/// QoS through `profile`. Fails with kInvalidArgument naming the bad
/// line.
Result<std::vector<TraceEntry>> ParseTrace(
    std::string_view text, const core::UserProfile& profile);

/// Renders entries in the canonical text format (ParseTrace's inverse).
std::string FormatTrace(const std::vector<TraceEntry>& entries);

/// Records `count` queries from a generator as a trace (arrival times
/// accumulate the generator's gaps).
std::vector<TraceEntry> RecordTrace(TrafficGenerator& generator, int count);

struct TraceReplayResult {
  core::MediaDbSystem::Stats stats;
  int admitted = 0;
  int rejected = 0;
};

/// Replays a trace against `system` on `simulator`, then runs the
/// simulation to completion. `profile` enables renegotiation.
TraceReplayResult ReplayTrace(const std::vector<TraceEntry>& entries,
                              core::MediaDbSystem& system,
                              sim::Simulator& simulator,
                              const core::UserProfile* profile = nullptr);

}  // namespace quasaq::workload

#endif  // QUASAQ_WORKLOAD_TRACE_H_
