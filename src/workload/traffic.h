#ifndef QUASAQ_WORKLOAD_TRAFFIC_H_
#define QUASAQ_WORKLOAD_TRAFFIC_H_

#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "core/qop.h"
#include "query/ast.h"

// Traffic generator (paper §5: "the queries for the experiments are from
// a traffic generator"): Poisson arrivals with mean inter-arrival 1 s,
// uniform access over the videos, and QoS parameters uniformly
// distributed in their valid range. Zipf skew and a secure-query
// fraction are available as extensions beyond the paper's setup.

namespace quasaq::workload {

struct TrafficOptions {
  double mean_interarrival_seconds = 1.0;
  // 0 = uniform video popularity (the paper's setting).
  double video_zipf_s = 0.0;
  // Fraction of queries requesting standard/strong security.
  double fraction_secure = 0.0;
  uint64_t seed = 42;
};

// One generated QoS-aware query.
struct QuerySpec {
  LogicalOid content;
  SiteId client_site;
  core::QopRequest qop;           // the qualitative request
  query::QosRequirement qos;      // its application-QoS translation
};

class TrafficGenerator {
 public:
  TrafficGenerator(const TrafficOptions& options, int num_videos,
                   std::vector<SiteId> sites);

  /// Draws the gap to the next query arrival (exponential).
  double NextGapSeconds();

  /// Draws the next query: uniform (or Zipf) video, uniform client
  /// site, uniform QoP level per axis translated through the default
  /// profile.
  QuerySpec Next();

  /// The profile used for QoP translation and renegotiation weights.
  const core::UserProfile& profile() const { return profile_; }

 private:
  TrafficOptions options_;
  int num_videos_;
  std::vector<SiteId> sites_;
  Rng rng_;
  core::UserProfile profile_;
};

}  // namespace quasaq::workload

#endif  // QUASAQ_WORKLOAD_TRAFFIC_H_
