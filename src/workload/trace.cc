#include "workload/trace.h"

#include <cctype>
#include <cstdlib>
#include <cstdio>
#include <sstream>

namespace quasaq::workload {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

Result<core::QopLevel> ParseLevel(std::string_view text) {
  if (text == "low") return core::QopLevel::kLow;
  if (text == "medium") return core::QopLevel::kMedium;
  if (text == "high") return core::QopLevel::kHigh;
  return Status::InvalidArgument("bad QoP level '" + std::string(text) +
                                 "'");
}

std::string_view LevelName(core::QopLevel level) {
  return core::QopLevelName(level);
}

Result<media::SecurityLevel> ParseSecurity(std::string_view text) {
  if (text == "none") return media::SecurityLevel::kNone;
  if (text == "standard") return media::SecurityLevel::kStandard;
  if (text == "strong") return media::SecurityLevel::kStrong;
  return Status::InvalidArgument("bad security level '" +
                                 std::string(text) + "'");
}

std::string_view SecurityName(media::SecurityLevel level) {
  switch (level) {
    case media::SecurityLevel::kNone:
      return "none";
    case media::SecurityLevel::kStandard:
      return "standard";
    case media::SecurityLevel::kStrong:
      return "strong";
  }
  return "none";
}

}  // namespace

Result<std::vector<TraceEntry>> ParseTrace(
    std::string_view text, const core::UserProfile& profile) {
  std::vector<TraceEntry> entries;
  size_t line_number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = Trim(text.substr(start, end - start));
    start = end + 1;
    ++line_number;
    if (line.empty() || line.front() == '#') continue;

    std::vector<std::string_view> fields;
    size_t field_start = 0;
    while (field_start <= line.size()) {
      size_t comma = line.find(',', field_start);
      if (comma == std::string_view::npos) comma = line.size();
      fields.push_back(Trim(line.substr(field_start, comma - field_start)));
      field_start = comma + 1;
    }
    if (fields.size() != 8) {
      return Status::InvalidArgument(
          "trace line " + std::to_string(line_number) + ": expected 8 "
          "fields, got " + std::to_string(fields.size()));
    }
    TraceEntry entry;
    char* parse_end = nullptr;
    std::string arrival(fields[0]);
    entry.arrival_seconds = std::strtod(arrival.c_str(), &parse_end);
    if (parse_end == arrival.c_str() || entry.arrival_seconds < 0.0) {
      return Status::InvalidArgument("trace line " +
                                     std::to_string(line_number) +
                                     ": bad arrival time");
    }
    entry.spec.content = LogicalOid(std::atoll(std::string(fields[1]).c_str()));
    entry.spec.client_site =
        SiteId(std::atoll(std::string(fields[2]).c_str()));
    if (!entry.spec.content.valid() || !entry.spec.client_site.valid()) {
      return Status::InvalidArgument("trace line " +
                                     std::to_string(line_number) +
                                     ": bad video/site id");
    }
    Result<core::QopLevel> spatial = ParseLevel(fields[3]);
    Result<core::QopLevel> temporal = ParseLevel(fields[4]);
    Result<core::QopLevel> color = ParseLevel(fields[5]);
    Result<core::QopLevel> audio = ParseLevel(fields[6]);
    Result<media::SecurityLevel> security = ParseSecurity(fields[7]);
    for (const Status& status :
         {spatial.status(), temporal.status(), color.status(),
          audio.status(), security.status()}) {
      if (!status.ok()) {
        return Status::InvalidArgument(
            "trace line " + std::to_string(line_number) + ": " +
            status.message());
      }
    }
    entry.spec.qop.spatial = *spatial;
    entry.spec.qop.temporal = *temporal;
    entry.spec.qop.color = *color;
    entry.spec.qop.audio = *audio;
    entry.spec.qop.security = *security;
    entry.spec.qos.range = profile.Translate(entry.spec.qop);
    entry.spec.qos.min_security = *security;
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string FormatTrace(const std::vector<TraceEntry>& entries) {
  std::ostringstream out;
  out << "# arrival_seconds,video,client_site,spatial,temporal,color,"
         "audio,security\n";
  for (const TraceEntry& entry : entries) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", entry.arrival_seconds);
    out << buf << ',' << entry.spec.content.value() << ','
        << entry.spec.client_site.value() << ','
        << LevelName(entry.spec.qop.spatial) << ','
        << LevelName(entry.spec.qop.temporal) << ','
        << LevelName(entry.spec.qop.color) << ','
        << LevelName(entry.spec.qop.audio) << ','
        << SecurityName(entry.spec.qop.security) << '\n';
  }
  return out.str();
}

std::vector<TraceEntry> RecordTrace(TrafficGenerator& generator, int count) {
  std::vector<TraceEntry> entries;
  entries.reserve(static_cast<size_t>(count));
  double clock = 0.0;
  for (int i = 0; i < count; ++i) {
    clock += generator.NextGapSeconds();
    TraceEntry entry;
    entry.arrival_seconds = clock;
    entry.spec = generator.Next();
    entries.push_back(std::move(entry));
  }
  return entries;
}

TraceReplayResult ReplayTrace(const std::vector<TraceEntry>& entries,
                              core::MediaDbSystem& system,
                              sim::Simulator& simulator,
                              const core::UserProfile* profile) {
  TraceReplayResult result;
  for (const TraceEntry& entry : entries) {
    simulator.ScheduleAt(
        SecondsToSimTime(entry.arrival_seconds),
        [&system, &result, &entry, profile] {
          core::MediaDbSystem::DeliveryOutcome outcome =
              system.SubmitDelivery(entry.spec.client_site,
                                    entry.spec.content, entry.spec.qos,
                                    profile);
          outcome.status.ok() ? ++result.admitted : ++result.rejected;
        });
  }
  simulator.RunAll();
  result.stats = system.stats();
  return result;
}

}  // namespace quasaq::workload
