#include "workload/throughput.h"

#include <memory>

#include "core/utility.h"

namespace quasaq::workload {

ThroughputResult RunThroughputExperiment(const ThroughputOptions& options) {
  sim::Simulator simulator;
  core::MediaDbSystem system(&simulator, options.system);
  TrafficGenerator traffic(options.traffic, options.system.library.num_videos,
                           options.system.topology.SiteIds());

  ThroughputResult result;
  RunningStats delivered_kbps;
  RunningStats utility;

  system.set_on_session_complete(
      [&result](SessionId, SimTime when) { result.completions.AddEvent(when); });

  const core::UserProfile* profile =
      options.enable_renegotiation_profile ? &traffic.profile() : nullptr;

  // Recursive arrival event: submit one query, schedule the next.
  std::function<void()> arrive = [&] {
    QuerySpec spec = traffic.Next();
    core::MediaDbSystem::DeliveryOutcome outcome =
        system.SubmitDelivery(spec.client_site, spec.content, spec.qos,
                              profile);
    if (outcome.status.ok()) {
      delivered_kbps.Add(outcome.wire_rate_kbps);
      utility.Add(core::PresentationUtility(outcome.delivered_qos,
                                            spec.qos.range));
    }
    SimTime gap = SecondsToSimTime(traffic.NextGapSeconds());
    if (simulator.Now() + gap < options.horizon) {
      simulator.ScheduleAfter(gap, arrive);
    }
  };
  simulator.ScheduleAfter(SecondsToSimTime(traffic.NextGapSeconds()), arrive);

  sim::PeriodicTask sampler(&simulator, options.sample_period, [&] {
    result.outstanding.Add(simulator.Now(),
                           system.outstanding_sessions());
    result.cumulative_rejects.Add(
        simulator.Now(), static_cast<double>(system.stats().rejected));
  });

  simulator.RunUntil(options.horizon);
  sampler.Stop();

  result.system_stats = system.stats();
  if (system.quality_manager() != nullptr) {
    result.quality_stats = system.quality_manager()->stats();
  }
  result.mean_delivered_kbps = delivered_kbps.mean();
  result.mean_utility = utility.mean();
  return result;
}

}  // namespace quasaq::workload
