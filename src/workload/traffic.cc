#include "workload/traffic.h"

#include <cassert>

namespace quasaq::workload {

TrafficGenerator::TrafficGenerator(const TrafficOptions& options,
                                   int num_videos, std::vector<SiteId> sites)
    : options_(options),
      num_videos_(num_videos),
      sites_(std::move(sites)),
      rng_(options.seed),
      profile_(UserId(0), "traffic-default") {
  assert(num_videos_ > 0);
  assert(!sites_.empty());
}

double TrafficGenerator::NextGapSeconds() {
  return rng_.Exponential(options_.mean_interarrival_seconds);
}

QuerySpec TrafficGenerator::Next() {
  QuerySpec spec;
  if (options_.video_zipf_s > 0.0) {
    spec.content = LogicalOid(static_cast<int64_t>(
        rng_.Zipf(static_cast<size_t>(num_videos_), options_.video_zipf_s)));
  } else {
    spec.content = LogicalOid(rng_.UniformInt(0, num_videos_ - 1));
  }
  spec.client_site =
      sites_[static_cast<size_t>(rng_.UniformInt(
          0, static_cast<int64_t>(sites_.size()) - 1))];

  auto level = [this] {
    return static_cast<core::QopLevel>(rng_.UniformInt(0, 2));
  };
  spec.qop.spatial = level();
  spec.qop.temporal = level();
  spec.qop.color = level();
  spec.qop.audio = level();
  if (options_.fraction_secure > 0.0 &&
      rng_.Bernoulli(options_.fraction_secure)) {
    spec.qop.security = rng_.Bernoulli(0.5)
                            ? media::SecurityLevel::kStandard
                            : media::SecurityLevel::kStrong;
  }
  spec.qos.range = profile_.Translate(spec.qop);
  spec.qos.min_security = spec.qop.security;
  return spec;
}

}  // namespace quasaq::workload
