#include "query/parser.h"

#include <cctype>

namespace quasaq::query {

namespace internal_parser {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Parser::Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

const Token& Parser::Peek() const { return tokens_[pos_]; }

Token Parser::Consume() {
  Token token = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return token;
}

bool Parser::PeekKeyword(std::string_view keyword) const {
  return Peek().type == TokenType::kIdent &&
         EqualsIgnoreCase(Peek().text, keyword);
}

Status Parser::ErrorAt(const Token& token, std::string message) const {
  return Status::InvalidArgument(message + " at offset " +
                                 std::to_string(token.position) + " (got " +
                                 (token.type == TokenType::kEnd
                                      ? std::string("end of input")
                                      : "'" + token.text + "'") +
                                 ")");
}

Status Parser::ExpectKeyword(std::string_view keyword) {
  if (!PeekKeyword(keyword)) {
    return ErrorAt(Peek(), "expected keyword '" + std::string(keyword) + "'");
  }
  Consume();
  return Status::Ok();
}

Result<Token> Parser::Expect(TokenType type) {
  if (Peek().type != type) {
    return ErrorAt(Peek(),
                   "expected " + std::string(TokenTypeName(type)));
  }
  return Consume();
}

Result<ParsedQuery> Parser::Run() {
  ParsedQuery query;
  if (PeekKeyword("EXPLAIN")) {
    Consume();
    query.explain = true;
  }
  if (Status s = ExpectKeyword("SELECT"); !s.ok()) return s;
  if (Result<Token> t = Expect(TokenType::kIdent); !t.ok()) {
    return t.status();
  }
  if (Status s = ExpectKeyword("FROM"); !s.ok()) return s;
  Result<Token> target = Expect(TokenType::kIdent);
  if (!target.ok()) return target.status();
  query.target = target->text;

  if (PeekKeyword("WHERE")) {
    Consume();
    if (Status s = ParseWhere(query); !s.ok()) return s;
  }
  if (PeekKeyword("WITH")) {
    Consume();
    if (Status s = ExpectKeyword("QOS"); !s.ok()) return s;
    if (Status s = ParseQosClause(query); !s.ok()) return s;
    query.has_qos_clause = true;
  }
  if (Peek().type == TokenType::kSemicolon) Consume();
  if (Peek().type != TokenType::kEnd) {
    return ErrorAt(Peek(), "trailing input");
  }
  if (Status s = Validate(query); !s.ok()) return s;
  return query;
}

Status Parser::ParseWhere(ParsedQuery& query) {
  if (Status s = ParseTerm(query); !s.ok()) return s;
  while (PeekKeyword("AND")) {
    Consume();
    if (Status s = ParseTerm(query); !s.ok()) return s;
  }
  return Status::Ok();
}

Status Parser::ParseTerm(ParsedQuery& query) {
  if (PeekKeyword("CONTAINS")) {
    Consume();
    if (Result<Token> t = Expect(TokenType::kLParen); !t.ok()) {
      return t.status();
    }
    Result<Token> keyword = Expect(TokenType::kString);
    if (!keyword.ok()) return keyword.status();
    if (Result<Token> t = Expect(TokenType::kRParen); !t.ok()) {
      return t.status();
    }
    query.content.keywords.push_back(keyword->text);
    return Status::Ok();
  }
  if (PeekKeyword("TITLE")) {
    Consume();
    if (Result<Token> t = Expect(TokenType::kEq); !t.ok()) return t.status();
    Result<Token> title = Expect(TokenType::kString);
    if (!title.ok()) return title.status();
    query.content.title = title->text;
    return Status::Ok();
  }
  if (PeekKeyword("SIMILAR")) {
    Consume();
    if (Result<Token> t = Expect(TokenType::kLParen); !t.ok()) {
      return t.status();
    }
    std::vector<double> features;
    Result<Token> first = Expect(TokenType::kNumber);
    if (!first.ok()) return first.status();
    features.push_back(first->number);
    while (Peek().type == TokenType::kComma) {
      Consume();
      Result<Token> next = Expect(TokenType::kNumber);
      if (!next.ok()) return next.status();
      features.push_back(next->number);
    }
    if (Result<Token> t = Expect(TokenType::kRParen); !t.ok()) {
      return t.status();
    }
    query.content.similar_to = std::move(features);
    if (PeekKeyword("TOP")) {
      Consume();
      Result<Token> k = Expect(TokenType::kNumber);
      if (!k.ok()) return k.status();
      query.content.top_k = static_cast<int>(k->number);
    }
    return Status::Ok();
  }
  return ErrorAt(Peek(), "expected CONTAINS, TITLE or SIMILAR");
}

Status Parser::ParseQosClause(ParsedQuery& query) {
  if (Result<Token> t = Expect(TokenType::kLParen); !t.ok()) {
    return t.status();
  }
  if (Status s = ParseQosItem(query); !s.ok()) return s;
  while (Peek().type == TokenType::kComma) {
    Consume();
    if (Status s = ParseQosItem(query); !s.ok()) return s;
  }
  if (Result<Token> t = Expect(TokenType::kRParen); !t.ok()) {
    return t.status();
  }
  return Status::Ok();
}

namespace {

Result<media::VideoFormat> ParseFormatName(const Token& token) {
  if (EqualsIgnoreCase(token.text, "MPEG1")) {
    return media::VideoFormat::kMpeg1;
  }
  if (EqualsIgnoreCase(token.text, "MPEG2")) {
    return media::VideoFormat::kMpeg2;
  }
  return Status::InvalidArgument("unknown format '" + token.text + "'");
}

Result<media::AudioQuality> ParseAudioName(const Token& token) {
  if (EqualsIgnoreCase(token.text, "none")) {
    return media::AudioQuality::kNone;
  }
  if (EqualsIgnoreCase(token.text, "phone")) {
    return media::AudioQuality::kPhone;
  }
  if (EqualsIgnoreCase(token.text, "fm")) {
    return media::AudioQuality::kFm;
  }
  if (EqualsIgnoreCase(token.text, "cd")) {
    return media::AudioQuality::kCd;
  }
  return Status::InvalidArgument("unknown audio quality '" + token.text +
                                 "'");
}

Result<media::SecurityLevel> ParseSecurityName(const Token& token) {
  if (EqualsIgnoreCase(token.text, "none")) {
    return media::SecurityLevel::kNone;
  }
  if (EqualsIgnoreCase(token.text, "standard")) {
    return media::SecurityLevel::kStandard;
  }
  if (EqualsIgnoreCase(token.text, "strong")) {
    return media::SecurityLevel::kStrong;
  }
  return Status::InvalidArgument("unknown security level '" + token.text +
                                 "'");
}

}  // namespace

Status Parser::ParseQosItem(ParsedQuery& query) {
  Result<Token> name = Expect(TokenType::kIdent);
  if (!name.ok()) return name.status();
  media::AppQosRange& range = query.qos.range;

  if (EqualsIgnoreCase(name->text, "resolution")) {
    TokenType op = Peek().type;
    if (op != TokenType::kGe && op != TokenType::kLe &&
        op != TokenType::kEq) {
      return ErrorAt(Peek(), "expected comparison operator");
    }
    Consume();
    Result<Token> value = Expect(TokenType::kResolution);
    if (!value.ok()) return value.status();
    media::Resolution r{value->res_width, value->res_height};
    if (op != TokenType::kLe) range.min_resolution = r;
    if (op != TokenType::kGe) range.max_resolution = r;
    return Status::Ok();
  }
  if (EqualsIgnoreCase(name->text, "framerate") ||
      EqualsIgnoreCase(name->text, "color")) {
    bool is_framerate = EqualsIgnoreCase(name->text, "framerate");
    TokenType op = Peek().type;
    if (op != TokenType::kGe && op != TokenType::kLe &&
        op != TokenType::kEq) {
      return ErrorAt(Peek(), "expected comparison operator");
    }
    Consume();
    Result<Token> value = Expect(TokenType::kNumber);
    if (!value.ok()) return value.status();
    if (is_framerate) {
      if (op != TokenType::kLe) range.min_frame_rate = value->number;
      if (op != TokenType::kGe) range.max_frame_rate = value->number;
    } else {
      if (op != TokenType::kLe) {
        range.min_color_depth_bits = static_cast<int>(value->number);
      }
      if (op != TokenType::kGe) {
        range.max_color_depth_bits = static_cast<int>(value->number);
      }
    }
    return Status::Ok();
  }
  if (EqualsIgnoreCase(name->text, "format")) {
    if (Peek().type == TokenType::kEq) {
      Consume();
      Result<Token> fmt = Expect(TokenType::kIdent);
      if (!fmt.ok()) return fmt.status();
      Result<media::VideoFormat> format = ParseFormatName(*fmt);
      if (!format.ok()) return format.status();
      range.accepted_formats = 1u << static_cast<int>(*format);
      return Status::Ok();
    }
    if (Status s = ExpectKeyword("IN"); !s.ok()) return s;
    if (Result<Token> t = Expect(TokenType::kLParen); !t.ok()) {
      return t.status();
    }
    uint32_t mask = 0;
    while (true) {
      Result<Token> fmt = Expect(TokenType::kIdent);
      if (!fmt.ok()) return fmt.status();
      Result<media::VideoFormat> format = ParseFormatName(*fmt);
      if (!format.ok()) return format.status();
      mask |= 1u << static_cast<int>(*format);
      if (Peek().type != TokenType::kComma) break;
      Consume();
    }
    if (Result<Token> t = Expect(TokenType::kRParen); !t.ok()) {
      return t.status();
    }
    range.accepted_formats = mask;
    return Status::Ok();
  }
  if (EqualsIgnoreCase(name->text, "startup")) {
    // Time Guarantee: an upper bound on startup latency in seconds.
    TokenType op = Peek().type;
    if (op != TokenType::kLe && op != TokenType::kEq) {
      return ErrorAt(Peek(), "expected '<=' or '=' after startup");
    }
    Consume();
    Result<Token> value = Expect(TokenType::kNumber);
    if (!value.ok()) return value.status();
    if (value->number <= 0.0) {
      return ErrorAt(*value, "startup bound must be positive");
    }
    query.qos.max_startup_seconds = value->number;
    return Status::Ok();
  }
  if (EqualsIgnoreCase(name->text, "audio")) {
    TokenType op = Peek().type;
    if (op != TokenType::kGe && op != TokenType::kLe &&
        op != TokenType::kEq) {
      return ErrorAt(Peek(), "expected comparison operator");
    }
    Consume();
    Result<Token> level = Expect(TokenType::kIdent);
    if (!level.ok()) return level.status();
    Result<media::AudioQuality> audio = ParseAudioName(*level);
    if (!audio.ok()) return audio.status();
    if (op != TokenType::kLe) range.min_audio = *audio;
    if (op != TokenType::kGe) range.max_audio = *audio;
    return Status::Ok();
  }
  if (EqualsIgnoreCase(name->text, "security")) {
    TokenType op = Peek().type;
    if (op != TokenType::kGe && op != TokenType::kEq) {
      return ErrorAt(Peek(), "expected '>=' or '=' after security");
    }
    Consume();
    Result<Token> level = Expect(TokenType::kIdent);
    if (!level.ok()) return level.status();
    Result<media::SecurityLevel> security = ParseSecurityName(*level);
    if (!security.ok()) return security.status();
    query.qos.min_security = *security;
    return Status::Ok();
  }
  return ErrorAt(*name, "unknown QoS parameter '" + name->text + "'");
}

Status Parser::Validate(const ParsedQuery& query) const {
  const media::AppQosRange& range = query.qos.range;
  if (range.min_resolution.PixelCount() >
      range.max_resolution.PixelCount()) {
    return Status::InvalidArgument("empty resolution range");
  }
  if (range.min_color_depth_bits > range.max_color_depth_bits) {
    return Status::InvalidArgument("empty color depth range");
  }
  if (range.min_frame_rate > range.max_frame_rate) {
    return Status::InvalidArgument("empty frame rate range");
  }
  if (range.accepted_formats == 0) {
    return Status::InvalidArgument("no accepted format");
  }
  if (range.min_audio > range.max_audio) {
    return Status::InvalidArgument("empty audio quality range");
  }
  if (query.content.top_k < 1) {
    return Status::InvalidArgument("TOP must be at least 1");
  }
  return Status::Ok();
}

}  // namespace internal_parser

Result<ParsedQuery> ParseQuery(std::string_view input) {
  Result<std::vector<Token>> tokens = Tokenize(input);
  if (!tokens.ok()) return tokens.status();
  internal_parser::Parser parser(std::move(tokens).value());
  return parser.Run();
}

}  // namespace quasaq::query
