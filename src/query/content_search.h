#ifndef QUASAQ_QUERY_CONTENT_SEARCH_H_
#define QUASAQ_QUERY_CONTENT_SEARCH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "media/video.h"
#include "query/ast.h"

// Content-based search over the video catalog — phase 1 of QuaSAQ query
// processing ("searching and identification of video objects done by the
// original VDBMS"). Returns *logical* OIDs; QuaSAQ then plans the
// QoS-constrained delivery. Keyword predicates are resolved through an
// inverted index; SIMILAR(...) ranks candidates by Euclidean distance
// over the stored feature vectors.

namespace quasaq::query {

class ContentIndex {
 public:
  /// Indexes one logical object (keywords, title and features).
  void Add(const media::VideoContent& content);

  /// Evaluates the content component of a query. Results are ranked by
  /// similarity when SIMILAR is present (then truncated to top_k),
  /// otherwise sorted by logical OID. An empty predicate matches all.
  std::vector<LogicalOid> Search(const ContentPredicate& predicate) const;

  size_t indexed_count() const { return contents_.size(); }

 private:
  std::vector<LogicalOid> CandidatesFor(
      const ContentPredicate& predicate) const;

  std::unordered_map<LogicalOid, media::VideoContent> contents_;
  std::unordered_map<std::string, std::vector<LogicalOid>> keyword_index_;
  std::unordered_map<std::string, LogicalOid> title_index_;
};

/// Squared Euclidean distance between two feature vectors; shorter
/// vectors are zero-padded (queries may probe fewer dimensions).
double FeatureDistanceSquared(const std::vector<double>& a,
                              const std::vector<double>& b);

}  // namespace quasaq::query

#endif  // QUASAQ_QUERY_CONTENT_SEARCH_H_
