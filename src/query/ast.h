#ifndef QUASAQ_QUERY_AST_H_
#define QUASAQ_QUERY_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "media/activities.h"
#include "media/quality.h"

// Abstract syntax of QoS-aware queries. Following the paper (and the
// view/content split of Bertino et al. [3]), a query has a *content*
// component — which videos — and a *quality* component — the
// application-QoS bounds the delivery must satisfy. Example:
//
//   SELECT video FROM videos
//   WHERE CONTAINS('sunset') AND SIMILAR(0.1, 0.9, ...) TOP 3
//   WITH QOS (resolution >= 320x240, resolution <= 720x480,
//             framerate >= 20, color >= 24, format IN (MPEG1, MPEG2),
//             security >= standard)

namespace quasaq::query {

// The content component: conjunctive keyword / title predicates plus an
// optional feature-similarity ranking.
struct ContentPredicate {
  std::vector<std::string> keywords;  // every CONTAINS(...) term, ANDed
  std::optional<std::string> title;   // TITLE = '...'
  // SIMILAR(v1, ..., vn): rank matches by feature-vector distance.
  std::optional<std::vector<double>> similar_to;
  // Result budget for similarity ranking (>= 1).
  int top_k = 1;

  bool empty() const {
    return keywords.empty() && !title.has_value() && !similar_to.has_value();
  }
};

// The quality component after parsing (still in application-QoS units;
// QoP translation happens earlier, in the QoP browser).
struct QosRequirement {
  media::AppQosRange range;
  media::SecurityLevel min_security = media::SecurityLevel::kNone;
  // Time Guarantee (paper Table 1's application-QoS parameter): upper
  // bound on the delivery's startup latency, seconds; 0 = no bound.
  double max_startup_seconds = 0.0;

  /// True when a delivered stream of quality `qos` protected by
  /// `encryption` satisfies the requirement.
  bool SatisfiedBy(const media::AppQos& qos,
                   media::EncryptionAlgorithm encryption) const {
    return range.Contains(qos) &&
           media::EncryptionStrength(encryption) >= min_security;
  }
};

// A fully parsed QoS-aware query.
struct ParsedQuery {
  std::string target;  // table name, e.g. "videos"
  ContentPredicate content;
  QosRequirement qos;
  bool has_qos_clause = false;
  // EXPLAIN SELECT ...: enumerate and rank the delivery plans instead
  // of executing one.
  bool explain = false;
};

}  // namespace quasaq::query

#endif  // QUASAQ_QUERY_AST_H_
