#include "query/lexer.h"

#include <cctype>
#include <cstdlib>

namespace quasaq::query {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

std::string_view TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kIdent:
      return "identifier";
    case TokenType::kString:
      return "string";
    case TokenType::kNumber:
      return "number";
    case TokenType::kResolution:
      return "resolution";
    case TokenType::kComma:
      return "','";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kEq:
      return "'='";
    case TokenType::kGe:
      return "'>='";
    case TokenType::kLe:
      return "'<='";
    case TokenType::kEnd:
      return "end of input";
  }
  return "unknown";
}

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (c == ',') {
      tokens.push_back({TokenType::kComma, ",", 0, 0, 0, start});
      ++i;
    } else if (c == '(') {
      tokens.push_back({TokenType::kLParen, "(", 0, 0, 0, start});
      ++i;
    } else if (c == ')') {
      tokens.push_back({TokenType::kRParen, ")", 0, 0, 0, start});
      ++i;
    } else if (c == ';') {
      tokens.push_back({TokenType::kSemicolon, ";", 0, 0, 0, start});
      ++i;
    } else if (c == '=') {
      tokens.push_back({TokenType::kEq, "=", 0, 0, 0, start});
      ++i;
    } else if (c == '>' || c == '<') {
      if (i + 1 >= n || input[i + 1] != '=') {
        return Status::InvalidArgument(
            "expected '=' after '" + std::string(1, c) + "' at offset " +
            std::to_string(start));
      }
      tokens.push_back({c == '>' ? TokenType::kGe : TokenType::kLe,
                        std::string(1, c) + "=", 0, 0, 0, start});
      i += 2;
    } else if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          closed = true;
          ++i;
          break;
        }
        text += input[i++];
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string at offset " +
                                       std::to_string(start));
      }
      tokens.push_back({TokenType::kString, text, 0, 0, 0, start});
    } else if (IsDigit(c)) {
      size_t j = i;
      while (j < n && IsDigit(input[j])) ++j;
      // A digit run followed by 'x' and another digit run is a
      // resolution literal (e.g. 320x240).
      if (j < n && (input[j] == 'x' || input[j] == 'X') && j + 1 < n &&
          IsDigit(input[j + 1])) {
        int width = std::atoi(std::string(input.substr(i, j - i)).c_str());
        size_t k = j + 1;
        while (k < n && IsDigit(input[k])) ++k;
        int height =
            std::atoi(std::string(input.substr(j + 1, k - j - 1)).c_str());
        tokens.push_back({TokenType::kResolution,
                          std::string(input.substr(i, k - i)), 0, width,
                          height, start});
        i = k;
      } else {
        // Decimal number (integer or fractional part allowed).
        if (j < n && input[j] == '.') {
          ++j;
          while (j < n && IsDigit(input[j])) ++j;
        }
        std::string text(input.substr(i, j - i));
        tokens.push_back(
            {TokenType::kNumber, text, std::atof(text.c_str()), 0, 0, start});
        i = j;
      }
    } else if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(input[j])) ++j;
      tokens.push_back({TokenType::kIdent,
                        std::string(input.substr(i, j - i)), 0, 0, 0, start});
      i = j;
    } else {
      return Status::InvalidArgument("unexpected character '" +
                                     std::string(1, c) + "' at offset " +
                                     std::to_string(start));
    }
  }
  tokens.push_back({TokenType::kEnd, "", 0, 0, 0, n});
  return tokens;
}

}  // namespace quasaq::query
