#ifndef QUASAQ_QUERY_PARSER_H_
#define QUASAQ_QUERY_PARSER_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "query/ast.h"
#include "query/lexer.h"

// Recursive-descent parser for QoS-aware queries (grammar in ast.h).
// Produces a ParsedQuery or a kInvalidArgument status pointing at the
// offending token.

namespace quasaq::query {

/// Parses one query. Keywords are case-insensitive.
Result<ParsedQuery> ParseQuery(std::string_view input);

namespace internal_parser {

// Exposed for tests: the parser over a pre-lexed token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens);

  Result<ParsedQuery> Run();

 private:
  const Token& Peek() const;
  Token Consume();
  bool PeekKeyword(std::string_view keyword) const;
  Status ExpectKeyword(std::string_view keyword);
  Result<Token> Expect(TokenType type);

  Status ParseWhere(ParsedQuery& query);
  Status ParseTerm(ParsedQuery& query);
  Status ParseQosClause(ParsedQuery& query);
  Status ParseQosItem(ParsedQuery& query);
  Status Validate(const ParsedQuery& query) const;

  Status ErrorAt(const Token& token, std::string message) const;

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

/// Case-insensitive comparison used for keywords and enum literals.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

}  // namespace internal_parser
}  // namespace quasaq::query

#endif  // QUASAQ_QUERY_PARSER_H_
