#ifndef QUASAQ_QUERY_LEXER_H_
#define QUASAQ_QUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

// Tokenizer for the QoS-aware query language. Keywords are recognized in
// the parser (case-insensitively); the lexer only classifies shapes.

namespace quasaq::query {

enum class TokenType {
  kIdent = 0,    // SELECT, videos, framerate, MPEG1, ...
  kString,       // 'sunset'
  kNumber,       // 20, 23.97
  kResolution,   // 320x240
  kComma,
  kLParen,
  kRParen,
  kSemicolon,
  kEq,           // =
  kGe,           // >=
  kLe,           // <=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;        // raw text (string contents for kString)
  double number = 0.0;     // for kNumber
  int res_width = 0;       // for kResolution
  int res_height = 0;
  size_t position = 0;     // byte offset in the input, for diagnostics
};

/// Returns a short name for `type` ("identifier", "','", ...).
std::string_view TokenTypeName(TokenType type);

/// Tokenizes `input`; the result always ends with a kEnd token.
/// Fails with kInvalidArgument on an unrecognized character or an
/// unterminated string literal.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace quasaq::query

#endif  // QUASAQ_QUERY_LEXER_H_
