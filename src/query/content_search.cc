#include "query/content_search.h"

#include <algorithm>

namespace quasaq::query {

double FeatureDistanceSquared(const std::vector<double>& a,
                              const std::vector<double>& b) {
  size_t n = std::max(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double ai = i < a.size() ? a[i] : 0.0;
    double bi = i < b.size() ? b[i] : 0.0;
    sum += (ai - bi) * (ai - bi);
  }
  return sum;
}

void ContentIndex::Add(const media::VideoContent& content) {
  contents_[content.id] = content;
  for (const std::string& keyword : content.keywords) {
    keyword_index_[keyword].push_back(content.id);
  }
  title_index_[content.title] = content.id;
}

std::vector<LogicalOid> ContentIndex::CandidatesFor(
    const ContentPredicate& predicate) const {
  // Title lookup is the most selective; start there if present.
  if (predicate.title.has_value()) {
    auto it = title_index_.find(*predicate.title);
    if (it == title_index_.end()) return {};
    std::vector<LogicalOid> single{it->second};
    // Keyword predicates must still hold.
    const media::VideoContent& content = contents_.at(it->second);
    for (const std::string& keyword : predicate.keywords) {
      if (std::find(content.keywords.begin(), content.keywords.end(),
                    keyword) == content.keywords.end()) {
        return {};
      }
    }
    return single;
  }
  if (!predicate.keywords.empty()) {
    // Intersect the posting lists of every keyword.
    auto it = keyword_index_.find(predicate.keywords.front());
    if (it == keyword_index_.end()) return {};
    std::vector<LogicalOid> result = it->second;
    std::sort(result.begin(), result.end());
    for (size_t k = 1; k < predicate.keywords.size(); ++k) {
      auto kt = keyword_index_.find(predicate.keywords[k]);
      if (kt == keyword_index_.end()) return {};
      std::vector<LogicalOid> postings = kt->second;
      std::sort(postings.begin(), postings.end());
      std::vector<LogicalOid> merged;
      std::set_intersection(result.begin(), result.end(), postings.begin(),
                            postings.end(), std::back_inserter(merged));
      result = std::move(merged);
      if (result.empty()) return result;
    }
    return result;
  }
  // No filter: every indexed object is a candidate.
  std::vector<LogicalOid> all;
  all.reserve(contents_.size());
  for (const auto& [id, content] : contents_) all.push_back(id);
  std::sort(all.begin(), all.end());
  return all;
}

std::vector<LogicalOid> ContentIndex::Search(
    const ContentPredicate& predicate) const {
  std::vector<LogicalOid> candidates = CandidatesFor(predicate);
  if (!predicate.similar_to.has_value()) return candidates;

  std::vector<std::pair<double, LogicalOid>> ranked;
  ranked.reserve(candidates.size());
  for (LogicalOid id : candidates) {
    const media::VideoContent& content = contents_.at(id);
    ranked.emplace_back(
        FeatureDistanceSquared(content.features, *predicate.similar_to), id);
  }
  std::sort(ranked.begin(), ranked.end());
  size_t k = std::min<size_t>(ranked.size(),
                              static_cast<size_t>(predicate.top_k));
  std::vector<LogicalOid> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(ranked[i].second);
  return out;
}

}  // namespace quasaq::query
