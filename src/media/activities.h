#ifndef QUASAQ_MEDIA_ACTIVITIES_H_
#define QUASAQ_MEDIA_ACTIVITIES_H_

#include <string>

#include "media/frames.h"
#include "media/quality.h"

// Server activities (paper §3.4, Fig. 2): the per-plan processing steps a
// delivery plan may compose after object retrieval — frame dropping,
// online transcoding, and encryption. Each activity exposes the cost
// model the Plan Generator uses to build a plan's resource vector and the
// stream transformation the executor applies.

namespace quasaq::media {

// ---------------------------------------------------------------------------
// Frame dropping (activity set A3)

// Runtime QoS adaptation by dropping droppable MPEG frames. Matches the
// strategies of Fig. 2: no dropping, half of the B frames, all B frames,
// or all B and P frames (I frames only).
enum class FrameDropStrategy {
  kNone = 0,
  kHalfBFrames,
  kAllBFrames,
  kAllBAndPFrames,
};

inline constexpr int kNumFrameDropStrategies = 4;

/// Returns e.g. "no-drop", "half-B", "all-B", "all-B+P".
std::string_view FrameDropStrategyName(FrameDropStrategy strategy);

/// True when a frame survives the strategy. `b_ordinal` is the 0-based
/// index of this frame among the B frames of its GOP (used by kHalfB,
/// which drops every other B frame); ignored for other types.
bool FrameSurvivesDrop(FrameDropStrategy strategy, FrameType type,
                       int b_ordinal);

// Aggregate effect of a drop strategy on a stream with a given GOP
// pattern.
struct FrameDropEffect {
  double bandwidth_factor = 1.0;   // surviving bytes / original bytes
  double frame_rate_factor = 1.0;  // surviving frames / original frames
};

/// Computes the effect of `strategy` over one GOP of `pattern`.
FrameDropEffect ComputeFrameDropEffect(const GopPattern& pattern,
                                       FrameDropStrategy strategy);

// ---------------------------------------------------------------------------
// Online transcoding (activity set A4)

// Cost constants of the online transcoder (stand-in for the modified
// `transcode` tool of the prototype). CPU cost scales with the pixel
// rates read plus written.
inline constexpr double kTranscodeCpuMsPerMegapixel = 45.0;

/// True when transcoding from `from` to `to` is sensible: never upscale
/// resolution, color depth or frame rate (paper §3.4: "it makes no sense
/// to transcode from low resolution to high resolution").
bool TranscodeAllowed(const AppQos& from, const AppQos& to);

/// CPU milliseconds consumed per second of video transcoded online.
double TranscodeCpuMsPerSecond(const AppQos& from, const AppQos& to);

// ---------------------------------------------------------------------------
// Encryption (activity set A5)

// Stream encryption choices. The prototype evaluates three algorithms
// with different CPU cost / strength trade-offs.
enum class EncryptionAlgorithm {
  kNone = 0,
  kAlgorithm1,  // block cipher, strong, slow
  kAlgorithm2,  // block cipher, standard, medium
  kAlgorithm3,  // stream cipher, standard, fast
};

inline constexpr int kNumEncryptionAlgorithms = 4;

// Required security strength; queries ask for a level, algorithms
// provide one.
enum class SecurityLevel { kNone = 0, kStandard, kStrong };

/// Returns e.g. "none", "enc1", "enc2", "enc3".
std::string_view EncryptionAlgorithmName(EncryptionAlgorithm algorithm);

/// The strength an algorithm provides.
SecurityLevel EncryptionStrength(EncryptionAlgorithm algorithm);

/// CPU milliseconds consumed per KB of stream encrypted.
double EncryptionCpuMsPerKb(EncryptionAlgorithm algorithm);

// ---------------------------------------------------------------------------
// Baseline streaming cost (packetization / RTP synchronization)

// Per-frame CPU cost of streaming itself (decode of layering info,
// packetization, RTP timestamping) — the work the Transport API performs
// for every delivered frame regardless of other activities.
struct StreamingCpuCost {
  double ms_per_frame_base = 0.8;
  double ms_per_kb = 0.01;

  /// CPU milliseconds to process one frame of `size_kb`.
  double FrameMs(double size_kb) const {
    return ms_per_frame_base + ms_per_kb * size_kb;
  }
};

}  // namespace quasaq::media

#endif  // QUASAQ_MEDIA_ACTIVITIES_H_
