#include "media/video.h"

namespace quasaq::media {

void FinalizeReplicaSizing(ReplicaInfo& replica) {
  replica.bitrate_kbps = EstimateBitrateKBps(replica.qos);
  replica.size_kb = replica.bitrate_kbps * replica.duration_seconds;
}

}  // namespace quasaq::media
