#include "media/quality.h"

#include <cstdio>

namespace quasaq::media {

std::string_view VideoFormatName(VideoFormat format) {
  switch (format) {
    case VideoFormat::kMpeg1:
      return "MPEG1";
    case VideoFormat::kMpeg2:
      return "MPEG2";
  }
  return "UNKNOWN";
}

std::string_view AudioQualityName(AudioQuality audio) {
  switch (audio) {
    case AudioQuality::kNone:
      return "none";
    case AudioQuality::kPhone:
      return "phone";
    case AudioQuality::kFm:
      return "fm";
    case AudioQuality::kCd:
      return "cd";
  }
  return "unknown";
}

double AudioBitrateKBps(AudioQuality audio) {
  switch (audio) {
    case AudioQuality::kNone:
      return 0.0;
    case AudioQuality::kPhone:
      return 2.0;   // ~16 kbit/s speech codec
    case AudioQuality::kFm:
      return 8.0;   // ~64 kbit/s
    case AudioQuality::kCd:
      return 16.0;  // ~128 kbit/s stereo
  }
  return 0.0;
}

std::string ResolutionToString(const Resolution& r) {
  return std::to_string(r.width) + "x" + std::to_string(r.height);
}

std::string AppQosToString(const AppQos& qos) {
  char buf[112];
  std::snprintf(buf, sizeof(buf), "%dx%d/%dbit/%.5gfps/%s/%s-audio",
                qos.resolution.width, qos.resolution.height,
                qos.color_depth_bits, qos.frame_rate,
                std::string(VideoFormatName(qos.format)).c_str(),
                std::string(AudioQualityName(qos.audio)).c_str());
  return std::string(buf);
}

bool AppQosRange::Contains(const AppQos& qos) const {
  if (qos.resolution.PixelCount() < min_resolution.PixelCount()) return false;
  if (qos.resolution.PixelCount() > max_resolution.PixelCount()) return false;
  if (qos.color_depth_bits < min_color_depth_bits) return false;
  if (qos.color_depth_bits > max_color_depth_bits) return false;
  if (qos.frame_rate < min_frame_rate) return false;
  if (qos.frame_rate > max_frame_rate) return false;
  if (qos.audio < min_audio || qos.audio > max_audio) return false;
  return AcceptsFormat(qos.format);
}

bool AppQosRange::AcceptsFormat(VideoFormat format) const {
  return (accepted_formats & (1u << static_cast<int>(format))) != 0;
}

std::string AppQosRange::ToString() const {
  std::string out = "[" + ResolutionToString(min_resolution) + "..." +
                    ResolutionToString(max_resolution) + ", " +
                    std::to_string(min_color_depth_bits) + "..." +
                    std::to_string(max_color_depth_bits) + "bit, ";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3g...%.3gfps", min_frame_rate,
                max_frame_rate);
  out += buf;
  out += ", audio=";
  out += AudioQualityName(min_audio);
  out += "...";
  out += AudioQualityName(max_audio);
  out += ", fmts=";
  bool first = true;
  for (int i = 0; i < kNumVideoFormats; ++i) {
    if ((accepted_formats & (1u << i)) == 0) continue;
    if (!first) out += "|";
    first = false;
    out += VideoFormatName(static_cast<VideoFormat>(i));
  }
  out += "]";
  return out;
}

double EstimateVideoBitrateKBps(const AppQos& qos) {
  // Compressed bits per pixel at 24-bit color.
  double bits_per_pixel = qos.format == VideoFormat::kMpeg1 ? 0.40 : 0.30;
  double depth_factor = static_cast<double>(qos.color_depth_bits) / 24.0;
  double bits_per_second = static_cast<double>(qos.resolution.PixelCount()) *
                           qos.frame_rate * bits_per_pixel * depth_factor;
  return bits_per_second / 8.0 / 1024.0;
}

double EstimateBitrateKBps(const AppQos& qos) {
  return EstimateVideoBitrateKBps(qos) + AudioBitrateKBps(qos.audio);
}

}  // namespace quasaq::media
