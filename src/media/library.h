#ifndef QUASAQ_MEDIA_LIBRARY_H_
#define QUASAQ_MEDIA_LIBRARY_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "media/video.h"

// Synthetic video library builder — the stand-in for the prototype's
// experimental database of 15 MPEG-1 videos (playback 30 s – 18 min)
// with 3–4 offline-transcoded replicas per video, fully replicated on
// every server (paper §5, "Experimental setup"). The quality ladder is
// chosen so replica bitrates fit typical 2004 link classes (T1/LAN,
// DSL, modem), as the prototype did with VideoMach.

namespace quasaq::media {

// The offline replica quality ladder, best first.
struct QualityLadder {
  std::vector<AppQos> levels;

  /// The prototype's 4-level ladder: DVD-class MPEG-2, VCD-class MPEG-1,
  /// low-rate SIF MPEG-1, and a modem-class QCIF MPEG-1.
  static QualityLadder Standard();

  /// The cheapest (lowest-bitrate, highest-index) level whose stored
  /// quality lies inside `range`; -1 when no ladder level does and only
  /// derived streams could satisfy it.
  int CheapestSatisfyingLevel(const AppQosRange& range) const;
};

struct LibraryOptions {
  int num_videos = 15;
  double min_duration_seconds = 30.0;
  double max_duration_seconds = 18.0 * 60.0;
  // Number of ladder levels materialized per video is drawn uniformly
  // from [min_replica_levels, max_replica_levels] (always starting from
  // the top level, which matches the master quality).
  int min_replica_levels = 3;
  int max_replica_levels = 4;
  uint64_t seed = 2004;
};

// The full content + replica catalog of an experiment.
struct VideoLibrary {
  std::vector<VideoContent> contents;
  std::vector<ReplicaInfo> replicas;

  /// Returns all replicas of `content` (across all sites).
  std::vector<const ReplicaInfo*> ReplicasOf(LogicalOid content) const;

  /// Returns the replica with physical OID `id`, or nullptr.
  const ReplicaInfo* FindReplica(PhysicalOid id) const;

  /// The master-quality (highest-resolution) replica of `content`
  /// stored at `site`, or nullptr when the site holds no copy.
  const ReplicaInfo* MasterReplicaAt(LogicalOid content, SiteId site) const;
};

/// Builds a library with `options.num_videos` logical objects whose
/// replicas are fully replicated on every site in `sites`. Titles,
/// keywords, features and durations are generated deterministically from
/// `options.seed`.
VideoLibrary BuildExperimentLibrary(const LibraryOptions& options,
                                    const std::vector<SiteId>& sites);

}  // namespace quasaq::media

#endif  // QUASAQ_MEDIA_LIBRARY_H_
