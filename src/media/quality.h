#ifndef QUASAQ_MEDIA_QUALITY_H_
#define QUASAQ_MEDIA_QUALITY_H_

#include <cstdint>
#include <string>

// Application-level QoS description of a video object (paper Table 1 /
// §3.3 "Quality Metadata"): spatial resolution, color depth, temporal
// resolution (frame rate) and file format. These are the quantitative
// parameters that user-level QoP inputs are translated into, and that
// each stored replica is labelled with.

namespace quasaq::media {

// Compression format of a stored or delivered stream.
enum class VideoFormat {
  kMpeg1 = 0,
  kMpeg2,
};

inline constexpr int kNumVideoFormats = 2;

/// Returns "MPEG1" / "MPEG2".
std::string_view VideoFormatName(VideoFormat format);

// Spatial resolution in pixels.
struct Resolution {
  int width = 0;
  int height = 0;

  int64_t PixelCount() const {
    return static_cast<int64_t>(width) * height;
  }

  friend bool operator==(const Resolution& a, const Resolution& b) = default;

  /// Orders by pixel count (the planner treats resolution as the scalar
  /// "spatial resolution" axis of the QoS space).
  friend bool operator<(const Resolution& a, const Resolution& b) {
    return a.PixelCount() < b.PixelCount();
  }
};

/// Renders "720x480".
std::string ResolutionToString(const Resolution& r);

// Audio track quality (paper Table 1 / §3.2 lists audio quality among
// the key QoP parameters; "CD quality audio" is the intro's example of
// a qualitative user input). Levels order by fidelity.
enum class AudioQuality {
  kNone = 0,   // video-only object
  kPhone,      // speech-grade mono
  kFm,         // FM-radio grade
  kCd,         // CD-quality stereo
};

inline constexpr int kNumAudioQualities = 4;

/// Returns "none" / "phone" / "fm" / "cd".
std::string_view AudioQualityName(AudioQuality audio);

/// Compressed bitrate of the audio track in KB/s (0 for kNone).
double AudioBitrateKBps(AudioQuality audio);

// Well-known resolutions used by the replica ladder and QoP mappings.
inline constexpr Resolution kResolutionDvd{720, 480};
inline constexpr Resolution kResolutionSvcd{480, 480};
inline constexpr Resolution kResolutionVcd{352, 288};
inline constexpr Resolution kResolutionSif{320, 240};
inline constexpr Resolution kResolutionQcif{176, 144};

// The application QoS of one concrete stream or replica.
struct AppQos {
  Resolution resolution;
  int color_depth_bits = 24;  // 12 or 24 in the prototype's ladder
  double frame_rate = 23.97;  // frames per second
  VideoFormat format = VideoFormat::kMpeg1;
  AudioQuality audio = AudioQuality::kCd;

  friend bool operator==(const AppQos& a, const AppQos& b) = default;
};

/// Renders e.g. "352x288/24bit/23.97fps/MPEG1".
std::string AppQosToString(const AppQos& qos);

// A closed range over the application QoS space: what a translated user
// query is willing to accept. Formats are accepted via a bitmask so a
// query can accept several.
struct AppQosRange {
  Resolution min_resolution = kResolutionQcif;
  Resolution max_resolution = kResolutionDvd;
  int min_color_depth_bits = 12;
  int max_color_depth_bits = 24;
  double min_frame_rate = 5.0;
  double max_frame_rate = 60.0;
  uint32_t accepted_formats = 0x3;  // bit i set => VideoFormat(i) accepted
  AudioQuality min_audio = AudioQuality::kNone;
  AudioQuality max_audio = AudioQuality::kCd;

  /// True when `qos` lies inside every axis of the range.
  bool Contains(const AppQos& qos) const;

  /// True when the format bit for `format` is set.
  bool AcceptsFormat(VideoFormat format) const;

  /// Renders a compact human-readable description.
  std::string ToString() const;
};

/// Estimated compressed bitrate in KB/s for a stream with quality `qos`:
/// the video component (pixel-rate x bits-per-pixel, with MPEG-2 assumed
/// ~25% more efficient per pixel and color depth scaling linearly from
/// the 24-bit baseline) plus the audio track. Calibrated so the
/// prototype's ladder spans typical 2004 links: DVD-quality MPEG-2
/// ~300 KB/s (T1/LAN), VCD ~100 KB/s (DSL), thumbnail ~12 KB/s
/// (modem-ish).
double EstimateBitrateKBps(const AppQos& qos);

/// The video component only (no audio track).
double EstimateVideoBitrateKBps(const AppQos& qos);

}  // namespace quasaq::media

#endif  // QUASAQ_MEDIA_QUALITY_H_
