#include "media/activities.h"

namespace quasaq::media {

std::string_view FrameDropStrategyName(FrameDropStrategy strategy) {
  switch (strategy) {
    case FrameDropStrategy::kNone:
      return "no-drop";
    case FrameDropStrategy::kHalfBFrames:
      return "half-B";
    case FrameDropStrategy::kAllBFrames:
      return "all-B";
    case FrameDropStrategy::kAllBAndPFrames:
      return "all-B+P";
  }
  return "unknown";
}

bool FrameSurvivesDrop(FrameDropStrategy strategy, FrameType type,
                       int b_ordinal) {
  switch (strategy) {
    case FrameDropStrategy::kNone:
      return true;
    case FrameDropStrategy::kHalfBFrames:
      return type != FrameType::kB || (b_ordinal % 2) == 0;
    case FrameDropStrategy::kAllBFrames:
      return type != FrameType::kB;
    case FrameDropStrategy::kAllBAndPFrames:
      return type == FrameType::kI;
  }
  return true;
}

FrameDropEffect ComputeFrameDropEffect(const GopPattern& pattern,
                                       FrameDropStrategy strategy) {
  double surviving_weight = 0.0;
  int surviving_frames = 0;
  int b_ordinal = 0;
  for (FrameType type : pattern.frames()) {
    int ordinal = type == FrameType::kB ? b_ordinal++ : 0;
    if (!FrameSurvivesDrop(strategy, type, ordinal)) continue;
    surviving_weight += FrameTypeWeight(type);
    ++surviving_frames;
  }
  FrameDropEffect effect;
  effect.bandwidth_factor = surviving_weight / pattern.TotalWeight();
  effect.frame_rate_factor =
      static_cast<double>(surviving_frames) / pattern.size();
  return effect;
}

bool TranscodeAllowed(const AppQos& from, const AppQos& to) {
  if (to.resolution.PixelCount() > from.resolution.PixelCount()) return false;
  if (to.color_depth_bits > from.color_depth_bits) return false;
  if (to.frame_rate > from.frame_rate + 1e-9) return false;
  if (to.audio > from.audio) return false;
  // Identity "transcode" is not a transcode; the planner models staying
  // in the source quality as the absence of the A4 activity.
  if (to == from) return false;
  return true;
}

double TranscodeCpuMsPerSecond(const AppQos& from, const AppQos& to) {
  double read_mpix = static_cast<double>(from.resolution.PixelCount()) *
                     from.frame_rate / 1e6;
  double write_mpix = static_cast<double>(to.resolution.PixelCount()) *
                      to.frame_rate / 1e6;
  return kTranscodeCpuMsPerMegapixel * (read_mpix + write_mpix);
}

std::string_view EncryptionAlgorithmName(EncryptionAlgorithm algorithm) {
  switch (algorithm) {
    case EncryptionAlgorithm::kNone:
      return "none";
    case EncryptionAlgorithm::kAlgorithm1:
      return "enc1";
    case EncryptionAlgorithm::kAlgorithm2:
      return "enc2";
    case EncryptionAlgorithm::kAlgorithm3:
      return "enc3";
  }
  return "unknown";
}

SecurityLevel EncryptionStrength(EncryptionAlgorithm algorithm) {
  switch (algorithm) {
    case EncryptionAlgorithm::kNone:
      return SecurityLevel::kNone;
    case EncryptionAlgorithm::kAlgorithm1:
      return SecurityLevel::kStrong;
    case EncryptionAlgorithm::kAlgorithm2:
      return SecurityLevel::kStandard;
    case EncryptionAlgorithm::kAlgorithm3:
      return SecurityLevel::kStandard;
  }
  return SecurityLevel::kNone;
}

double EncryptionCpuMsPerKb(EncryptionAlgorithm algorithm) {
  switch (algorithm) {
    case EncryptionAlgorithm::kNone:
      return 0.0;
    case EncryptionAlgorithm::kAlgorithm1:
      return 0.050;
    case EncryptionAlgorithm::kAlgorithm2:
      return 0.030;
    case EncryptionAlgorithm::kAlgorithm3:
      return 0.012;
  }
  return 0.0;
}

}  // namespace quasaq::media
