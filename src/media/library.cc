#include "media/library.h"

#include <cassert>
#include <cstdio>

namespace quasaq::media {

namespace {

// Topic pool for synthetic keyword metadata. Several echo the paper's
// motivating examples (medical imagery, George Bush, sunsets).
constexpr const char* kTopics[] = {
    "news",    "sunset",  "surgery", "patient", "bush",     "sports",
    "weather", "lecture", "traffic", "wildlife", "concert",  "interview",
    "ocean",   "city",    "xray",
};
constexpr size_t kNumTopics = sizeof(kTopics) / sizeof(kTopics[0]);

constexpr int kFeatureDim = 8;

}  // namespace

QualityLadder QualityLadder::Standard() {
  QualityLadder ladder;
  // Level 0 — master/DVD class, MPEG-2 with CD audio (~330 KB/s: T1/LAN).
  ladder.levels.push_back(AppQos{kResolutionDvd, 24, 23.97,
                                 VideoFormat::kMpeg2, AudioQuality::kCd});
  // Level 1 — VCD class, MPEG-1 with CD audio (~135 KB/s: fast DSL).
  ladder.levels.push_back(AppQos{kResolutionVcd, 24, 23.97,
                                 VideoFormat::kMpeg1, AudioQuality::kCd});
  // Level 2 — low-rate SIF, reduced color/rate, FM audio (~36 KB/s).
  ladder.levels.push_back(AppQos{kResolutionSif, 12, 15.0,
                                 VideoFormat::kMpeg1, AudioQuality::kFm});
  // Level 3 — QCIF thumbnail stream, speech audio (~8 KB/s: modem).
  ladder.levels.push_back(AppQos{kResolutionQcif, 12, 10.0,
                                 VideoFormat::kMpeg1, AudioQuality::kPhone});
  return ladder;
}

std::vector<const ReplicaInfo*> VideoLibrary::ReplicasOf(
    LogicalOid content) const {
  std::vector<const ReplicaInfo*> out;
  for (const ReplicaInfo& r : replicas) {
    if (r.content == content) out.push_back(&r);
  }
  return out;
}

const ReplicaInfo* VideoLibrary::FindReplica(PhysicalOid id) const {
  for (const ReplicaInfo& r : replicas) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

const ReplicaInfo* VideoLibrary::MasterReplicaAt(LogicalOid content,
                                                 SiteId site) const {
  const ReplicaInfo* best = nullptr;
  for (const ReplicaInfo& replica : replicas) {
    if (replica.content != content || replica.site != site) continue;
    if (best == nullptr || best->qos.resolution.PixelCount() <
                               replica.qos.resolution.PixelCount()) {
      best = &replica;
    }
  }
  return best;
}

int QualityLadder::CheapestSatisfyingLevel(const AppQosRange& range) const {
  for (int level = static_cast<int>(levels.size()) - 1; level >= 0;
       --level) {
    if (range.Contains(levels[static_cast<size_t>(level)])) return level;
  }
  return -1;
}

VideoLibrary BuildExperimentLibrary(const LibraryOptions& options,
                                    const std::vector<SiteId>& sites) {
  assert(options.num_videos > 0);
  assert(!sites.empty());
  assert(options.min_replica_levels >= 1);
  assert(options.max_replica_levels >= options.min_replica_levels);

  Rng rng(options.seed);
  QualityLadder ladder = QualityLadder::Standard();
  assert(options.max_replica_levels <=
         static_cast<int>(ladder.levels.size()));

  VideoLibrary library;
  int64_t next_physical = 0;
  for (int v = 0; v < options.num_videos; ++v) {
    VideoContent content;
    content.id = LogicalOid(v);
    char title[32];
    std::snprintf(title, sizeof(title), "video%02d", v);
    content.title = title;
    // 2-3 keywords; the primary topic rotates so every topic is covered.
    content.keywords.push_back(kTopics[v % kNumTopics]);
    size_t extra = static_cast<size_t>(rng.UniformInt(1, 2));
    for (size_t k = 0; k < extra; ++k) {
      const char* topic =
          kTopics[static_cast<size_t>(rng.UniformInt(0, kNumTopics - 1))];
      if (topic != content.keywords.front()) content.keywords.push_back(topic);
    }
    for (int d = 0; d < kFeatureDim; ++d) {
      content.features.push_back(rng.NextDouble());
    }
    content.duration_seconds = rng.Uniform(options.min_duration_seconds,
                                           options.max_duration_seconds);
    content.master_quality = ladder.levels.front();

    int levels = static_cast<int>(
        rng.UniformInt(options.min_replica_levels, options.max_replica_levels));
    for (int level = 0; level < levels; ++level) {
      for (SiteId site : sites) {
        ReplicaInfo replica;
        replica.id = PhysicalOid(next_physical++);
        replica.content = content.id;
        replica.site = site;
        replica.qos = ladder.levels[static_cast<size_t>(level)];
        replica.duration_seconds = content.duration_seconds;
        // One VBR sequence per (video, level): replicas of the same
        // transcode on different sites are byte-identical copies.
        replica.frame_seed =
            options.seed * 1000003 + static_cast<uint64_t>(v) * 31 +
            static_cast<uint64_t>(level);
        FinalizeReplicaSizing(replica);
        library.replicas.push_back(replica);
      }
    }
    library.contents.push_back(std::move(content));
  }
  return library;
}

}  // namespace quasaq::media
