#ifndef QUASAQ_MEDIA_VIDEO_H_
#define QUASAQ_MEDIA_VIDEO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "media/quality.h"

// Logical vs. physical video objects. In QuaSAQ an OID returned by the
// content query refers to video *content* (logical OID); the same content
// is materialized as several replicas with distinct application QoS and
// locations (physical OIDs). The logical->physical mapping lives in the
// distribution metadata (metadata/).

namespace quasaq::media {

// One logical media object: the content users query for.
struct VideoContent {
  LogicalOid id;
  std::string title;
  // Semantic descriptors extracted at insertion time (shot detection,
  // segmentation, annotations); we model them as keywords.
  std::vector<std::string> keywords;
  // Visual feature vector (e.g. color histogram) for similarity search.
  std::vector<double> features;
  double duration_seconds = 0.0;
  // Quality of the raw/master recording; replicas never exceed it.
  AppQos master_quality;
};

// One physical replica of a logical object stored at a site.
struct ReplicaInfo {
  PhysicalOid id;
  LogicalOid content;
  SiteId site;
  AppQos qos;
  double duration_seconds = 0.0;
  double bitrate_kbps = 0.0;  // average compressed bitrate, KB/s
  double size_kb = 0.0;       // total object size, KB
  // Seed for the replica's deterministic VBR frame-size sequence.
  uint64_t frame_seed = 0;
};

/// Fills the derived fields (`bitrate_kbps`, `size_kb`) of `replica`
/// from its qos and duration using EstimateBitrateKBps().
void FinalizeReplicaSizing(ReplicaInfo& replica);

}  // namespace quasaq::media

#endif  // QUASAQ_MEDIA_VIDEO_H_
