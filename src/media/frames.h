#ifndef QUASAQ_MEDIA_FRAMES_H_
#define QUASAQ_MEDIA_FRAMES_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "media/quality.h"

// MPEG frame/GOP structure. The paper's QoS experiments stream MPEG-1
// video, whose variable-bitrate nature (large I frames, small B frames)
// is the source of the "intrinsic variance" in inter-frame delay that
// Table 2 smooths out at GOP granularity. This module models a Group of
// Pictures as a typed frame pattern with per-type size weights and
// generates per-frame sizes for a target bitrate.

namespace quasaq::media {

// Coding type of one frame within a GOP.
enum class FrameType : uint8_t {
  kI = 0,  // intra-coded: largest
  kP,      // predicted
  kB,      // bi-directionally predicted: smallest, droppable first
};

/// Returns 'I' / 'P' / 'B'.
char FrameTypeChar(FrameType type);

/// Relative compressed-size weight of a frame type (I=5, P=3, B=1); the
/// classic ~5:3:1 MPEG-1 ratio.
double FrameTypeWeight(FrameType type);

// The repeating frame-type pattern of a GOP.
class GopPattern {
 public:
  /// Builds the standard 15-frame IBBPBBPBBPBBPBB pattern (N=15, M=3).
  static GopPattern Standard();

  /// The conventional pattern for a format: MPEG-1 N=15/M=3, MPEG-2
  /// N=12/M=3 (the common broadcast GOP).
  static GopPattern StandardFor(VideoFormat format);

  /// Builds N-frame pattern with a P frame every `m` positions
  /// (`m` - 1 B frames between anchors). `n` must be a multiple of `m`.
  static GopPattern Make(int n, int m);

  const std::vector<FrameType>& frames() const { return frames_; }
  int size() const { return static_cast<int>(frames_.size()); }

  /// Sum of FrameTypeWeight over the pattern.
  double TotalWeight() const;

  /// Number of frames of `type` in one GOP.
  int CountOf(FrameType type) const;

 private:
  explicit GopPattern(std::vector<FrameType> frames);

  std::vector<FrameType> frames_;
};

// One concrete frame instance of a stream.
struct FrameInfo {
  FrameType type = FrameType::kI;
  double size_kb = 0.0;
  int index_in_gop = 0;
};

// Generates the per-frame sizes of a VBR stream: per-GOP bytes hit the
// target bitrate on average, with scene-level (per-GOP) and frame-level
// multiplicative noise. Deterministic given the seed.
class FrameSizeGenerator {
 public:
  struct Options {
    double gop_noise_sd = 0.15;    // scene-to-scene variation
    double frame_noise_sd = 0.20;  // frame-to-frame variation
  };

  FrameSizeGenerator(const GopPattern& pattern, double bitrate_kbps,
                     double frame_rate, uint64_t seed)
      : FrameSizeGenerator(pattern, bitrate_kbps, frame_rate, seed,
                           Options()) {}
  FrameSizeGenerator(const GopPattern& pattern, double bitrate_kbps,
                     double frame_rate, uint64_t seed,
                     const Options& options);

  /// Returns the next frame of the stream (advances the sequence).
  FrameInfo Next();

  /// Returns the mean size in KB of a frame of `type` (no noise).
  double MeanFrameSizeKb(FrameType type) const;

  const GopPattern& pattern() const { return pattern_; }

 private:
  GopPattern pattern_;
  double bitrate_kbps_;
  double frame_rate_;
  Options options_;
  Rng rng_;
  int position_ = 0;        // index within current GOP
  double gop_factor_ = 1.0;  // current scene multiplier
};

}  // namespace quasaq::media

#endif  // QUASAQ_MEDIA_FRAMES_H_
