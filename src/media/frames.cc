#include "media/frames.h"

#include <cassert>
#include <utility>

namespace quasaq::media {

char FrameTypeChar(FrameType type) {
  switch (type) {
    case FrameType::kI:
      return 'I';
    case FrameType::kP:
      return 'P';
    case FrameType::kB:
      return 'B';
  }
  return '?';
}

double FrameTypeWeight(FrameType type) {
  switch (type) {
    case FrameType::kI:
      return 5.0;
    case FrameType::kP:
      return 3.0;
    case FrameType::kB:
      return 1.0;
  }
  return 1.0;
}

GopPattern::GopPattern(std::vector<FrameType> frames)
    : frames_(std::move(frames)) {
  assert(!frames_.empty());
  assert(frames_[0] == FrameType::kI);
}

GopPattern GopPattern::Standard() { return Make(15, 3); }

GopPattern GopPattern::StandardFor(VideoFormat format) {
  return format == VideoFormat::kMpeg2 ? Make(12, 3) : Make(15, 3);
}

GopPattern GopPattern::Make(int n, int m) {
  assert(n > 0);
  assert(m > 0);
  assert(n % m == 0);
  std::vector<FrameType> frames;
  frames.reserve(n);
  for (int i = 0; i < n; ++i) {
    if (i == 0) {
      frames.push_back(FrameType::kI);
    } else if (i % m == 0) {
      frames.push_back(FrameType::kP);
    } else {
      frames.push_back(FrameType::kB);
    }
  }
  return GopPattern(std::move(frames));
}

double GopPattern::TotalWeight() const {
  double total = 0.0;
  for (FrameType type : frames_) total += FrameTypeWeight(type);
  return total;
}

int GopPattern::CountOf(FrameType type) const {
  int count = 0;
  for (FrameType t : frames_) {
    if (t == type) ++count;
  }
  return count;
}

FrameSizeGenerator::FrameSizeGenerator(const GopPattern& pattern,
                                       double bitrate_kbps, double frame_rate,
                                       uint64_t seed, const Options& options)
    : pattern_(pattern),
      bitrate_kbps_(bitrate_kbps),
      frame_rate_(frame_rate),
      options_(options),
      rng_(seed) {
  assert(bitrate_kbps_ > 0.0);
  assert(frame_rate_ > 0.0);
}

double FrameSizeGenerator::MeanFrameSizeKb(FrameType type) const {
  // Bytes in one GOP at the target bitrate, split across frames by the
  // per-type weights.
  double gop_seconds = static_cast<double>(pattern_.size()) / frame_rate_;
  double gop_kb = bitrate_kbps_ * gop_seconds;
  return gop_kb * FrameTypeWeight(type) / pattern_.TotalWeight();
}

FrameInfo FrameSizeGenerator::Next() {
  if (position_ == 0) {
    gop_factor_ = rng_.ClampedNormal(1.0, options_.gop_noise_sd, 0.4, 2.0);
  }
  FrameType type = pattern_.frames()[position_];
  double noise = rng_.ClampedNormal(1.0, options_.frame_noise_sd, 0.3, 2.5);
  FrameInfo info{type, MeanFrameSizeKb(type) * gop_factor_ * noise,
                 position_};
  position_ = (position_ + 1) % pattern_.size();
  return info;
}

}  // namespace quasaq::media
