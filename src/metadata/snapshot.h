#ifndef QUASAQ_METADATA_SNAPSHOT_H_
#define QUASAQ_METADATA_SNAPSHOT_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "metadata/distributed_engine.h"

// Catalog snapshots: a textual dump/restore of the distributed metadata
// engine's content, distribution, quality and QoS-profile catalogs.
// Lets deployments checkpoint the catalog, move it between clusters,
// and lets tests assert full round-trip fidelity.
//
// Format (one record per line, '#' comments):
//   content,<oid>,<title>,<duration_s>,<kw1;kw2;...>,<f1;f2;...>,
//           <w>,<h>,<depth>,<fps>,<format>,<audio>
//   replica,<poid>,<content_oid>,<site>,<w>,<h>,<depth>,<fps>,<format>,
//           <audio>,<duration_s>,<frame_seed>
//   profile,<poid>,<cpu_fraction>,<net_kbps>,<disk_kbps>,<memory_kb>

namespace quasaq::meta {

/// Serializes every catalog entry of `engine`. Titles and keywords must
/// not contain ',' or ';' (the library generator never produces them).
std::string SerializeCatalog(DistributedMetadataEngine& engine);

/// Loads a snapshot into `engine` (which should be freshly constructed
/// with the destination site set). Fails with kInvalidArgument naming
/// the offending line; on failure the engine may hold a partial load.
Status LoadCatalog(std::string_view snapshot,
                   DistributedMetadataEngine* engine);

}  // namespace quasaq::meta

#endif  // QUASAQ_METADATA_SNAPSHOT_H_
