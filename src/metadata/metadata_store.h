#ifndef QUASAQ_METADATA_METADATA_STORE_H_
#define QUASAQ_METADATA_METADATA_STORE_H_

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "media/video.h"
#include "metadata/qos_profile.h"

// Single-site metadata store holding the four metadata classes of
// §3.3: content metadata (VideoContent), quality metadata (the AppQos
// inside each ReplicaInfo), distribution metadata (logical->physical
// mapping with sites), and QoS profiles.

namespace quasaq::meta {

class MetadataStore {
 public:
  /// Registers a logical object. Fails on duplicate logical OID.
  Status InsertContent(const media::VideoContent& content);

  /// Registers one replica (distribution + quality metadata). The
  /// logical object must already be registered.
  Status InsertReplica(const media::ReplicaInfo& replica);

  /// Records the sampled delivery profile of a replica.
  Status SetQosProfile(PhysicalOid id, const QosProfile& profile);

  /// Drops a replica's distribution metadata (e.g. after migration).
  Status EraseReplica(PhysicalOid id);

  /// Drops a logical object and cascades to its replicas and profiles.
  Status EraseContent(LogicalOid id);

  const media::VideoContent* FindContent(LogicalOid id) const;
  const media::ReplicaInfo* FindReplica(PhysicalOid id) const;
  const QosProfile* FindQosProfile(PhysicalOid id) const;

  /// Returns all replicas of `content`, in physical-OID order.
  std::vector<const media::ReplicaInfo*> ReplicasOf(LogicalOid content) const;

  /// Returns all registered logical objects, in logical-OID order.
  std::vector<const media::VideoContent*> AllContents() const;

  size_t content_count() const { return contents_.size(); }
  size_t replica_count() const { return replicas_.size(); }

 private:
  std::unordered_map<LogicalOid, media::VideoContent> contents_;
  std::unordered_map<PhysicalOid, media::ReplicaInfo> replicas_;
  std::unordered_map<LogicalOid, std::vector<PhysicalOid>> replica_index_;
  std::unordered_map<PhysicalOid, QosProfile> profiles_;
};

}  // namespace quasaq::meta

#endif  // QUASAQ_METADATA_METADATA_STORE_H_
