#include "metadata/metadata_store.h"

#include <algorithm>

namespace quasaq::meta {

Status MetadataStore::InsertContent(const media::VideoContent& content) {
  if (!content.id.valid()) {
    return Status::InvalidArgument("invalid logical OID");
  }
  auto [it, inserted] = contents_.emplace(content.id, content);
  if (!inserted) return Status::AlreadyExists("logical OID already present");
  return Status::Ok();
}

Status MetadataStore::InsertReplica(const media::ReplicaInfo& replica) {
  if (!replica.id.valid()) {
    return Status::InvalidArgument("invalid physical OID");
  }
  if (contents_.count(replica.content) == 0) {
    return Status::FailedPrecondition("logical object not registered");
  }
  auto [it, inserted] = replicas_.emplace(replica.id, replica);
  if (!inserted) return Status::AlreadyExists("physical OID already present");
  replica_index_[replica.content].push_back(replica.id);
  return Status::Ok();
}

Status MetadataStore::SetQosProfile(PhysicalOid id, const QosProfile& profile) {
  if (replicas_.count(id) == 0) {
    return Status::NotFound("no such replica");
  }
  profiles_[id] = profile;
  return Status::Ok();
}

Status MetadataStore::EraseReplica(PhysicalOid id) {
  auto it = replicas_.find(id);
  if (it == replicas_.end()) return Status::NotFound("no such replica");
  auto& index = replica_index_[it->second.content];
  index.erase(std::remove(index.begin(), index.end(), id), index.end());
  profiles_.erase(id);
  replicas_.erase(it);
  return Status::Ok();
}

Status MetadataStore::EraseContent(LogicalOid id) {
  auto it = contents_.find(id);
  if (it == contents_.end()) return Status::NotFound("no such content");
  auto index_it = replica_index_.find(id);
  if (index_it != replica_index_.end()) {
    for (PhysicalOid replica : index_it->second) {
      profiles_.erase(replica);
      replicas_.erase(replica);
    }
    replica_index_.erase(index_it);
  }
  contents_.erase(it);
  return Status::Ok();
}

const media::VideoContent* MetadataStore::FindContent(LogicalOid id) const {
  auto it = contents_.find(id);
  return it == contents_.end() ? nullptr : &it->second;
}

const media::ReplicaInfo* MetadataStore::FindReplica(PhysicalOid id) const {
  auto it = replicas_.find(id);
  return it == replicas_.end() ? nullptr : &it->second;
}

const QosProfile* MetadataStore::FindQosProfile(PhysicalOid id) const {
  auto it = profiles_.find(id);
  return it == profiles_.end() ? nullptr : &it->second;
}

std::vector<const media::ReplicaInfo*> MetadataStore::ReplicasOf(
    LogicalOid content) const {
  std::vector<const media::ReplicaInfo*> out;
  auto it = replica_index_.find(content);
  if (it == replica_index_.end()) return out;
  std::vector<PhysicalOid> ids = it->second;
  std::sort(ids.begin(), ids.end());
  for (PhysicalOid id : ids) out.push_back(&replicas_.at(id));
  return out;
}

std::vector<const media::VideoContent*> MetadataStore::AllContents() const {
  std::vector<const media::VideoContent*> out;
  out.reserve(contents_.size());
  for (const auto& [id, content] : contents_) out.push_back(&content);
  std::sort(out.begin(), out.end(),
            [](const media::VideoContent* a, const media::VideoContent* b) {
              return a->id < b->id;
            });
  return out;
}

}  // namespace quasaq::meta
