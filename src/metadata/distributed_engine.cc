#include "metadata/distributed_engine.h"

#include <cassert>

namespace quasaq::meta {

DistributedMetadataEngine::DistributedMetadataEngine(std::vector<SiteId> sites,
                                                     const Options& options)
    : sites_(std::move(sites)), options_(options) {
  assert(!sites_.empty());
  stores_.resize(sites_.size());
  site_states_.reserve(sites_.size());
  for (size_t i = 0; i < sites_.size(); ++i) {
    site_states_.push_back(std::make_unique<SiteState>());
  }
}

size_t DistributedMetadataEngine::SiteIndex(SiteId site) const {
  for (size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i] == site) return i;
  }
  assert(false && "unknown site");
  return 0;
}

SiteId DistributedMetadataEngine::OwnerOf(LogicalOid id) const {
  return sites_[static_cast<size_t>(id.value()) % sites_.size()];
}

MetadataStore& DistributedMetadataEngine::OwnerStore(LogicalOid id) {
  return stores_[SiteIndex(OwnerOf(id))];
}

Status DistributedMetadataEngine::InsertContent(
    const media::VideoContent& content) {
  Status status = OwnerStore(content.id).InsertContent(content);
  if (status.ok()) InvalidateCaches(content.id);
  return status;
}

Status DistributedMetadataEngine::InsertReplica(
    const media::ReplicaInfo& replica) {
  Status status = OwnerStore(replica.content).InsertReplica(replica);
  if (status.ok()) {
    physical_to_logical_[replica.id] = replica.content;
    InvalidateCaches(replica.content);
  }
  return status;
}

Status DistributedMetadataEngine::SetQosProfile(PhysicalOid id,
                                                const QosProfile& profile) {
  auto it = physical_to_logical_.find(id);
  if (it == physical_to_logical_.end()) {
    return Status::NotFound("unknown physical OID");
  }
  Status status = OwnerStore(it->second).SetQosProfile(id, profile);
  if (status.ok()) InvalidateCaches(it->second);
  return status;
}

Status DistributedMetadataEngine::EraseReplica(PhysicalOid id) {
  auto it = physical_to_logical_.find(id);
  if (it == physical_to_logical_.end()) {
    return Status::NotFound("unknown physical OID");
  }
  LogicalOid content = it->second;
  Status status = OwnerStore(content).EraseReplica(id);
  if (status.ok()) {
    physical_to_logical_.erase(it);
    InvalidateCaches(content);
  }
  return status;
}

Status DistributedMetadataEngine::EraseContent(LogicalOid id) {
  MetadataStore& store = OwnerStore(id);
  // Collect the replicas first so the physical index can be pruned.
  std::vector<PhysicalOid> replicas;
  for (const media::ReplicaInfo* replica : store.ReplicasOf(id)) {
    replicas.push_back(replica->id);
  }
  Status status = store.EraseContent(id);
  if (!status.ok()) return status;
  for (PhysicalOid replica : replicas) {
    physical_to_logical_.erase(replica);
  }
  InvalidateCaches(id);
  return Status::Ok();
}

MetadataBundle DistributedMetadataEngine::BuildBundle(
    const MetadataStore& store, LogicalOid id) const {
  MetadataBundle bundle;
  const media::VideoContent* content = store.FindContent(id);
  assert(content != nullptr);
  bundle.content = *content;
  for (const media::ReplicaInfo* replica : store.ReplicasOf(id)) {
    bundle.replicas.push_back(*replica);
    if (const QosProfile* profile = store.FindQosProfile(replica->id)) {
      bundle.profiles.emplace_back(replica->id, *profile);
    }
  }
  return bundle;
}

const MetadataBundle* DistributedMetadataEngine::FetchBundle(
    SiteState& state, SiteId from, LogicalOid id, SimTime* latency) {
  size_t from_index = SiteIndex(from);
  AccessStats& stats = state.stats;
  SiteId owner = OwnerOf(id);

  if (owner == from) {
    MetadataStore& store = stores_[from_index];
    if (store.FindContent(id) == nullptr) return nullptr;
    ++stats.local_accesses;
    if (latency != nullptr) *latency += options_.local_access_latency;
    // Local bundles are served through the cache slot as well so callers
    // get one stable pointer type; they are never evicted remotely.
    SiteCache& cache = state.cache;
    auto it = cache.entries.find(id);
    if (it != cache.entries.end()) cache.entries.erase(it);
    cache.order.remove(id);
    cache.order.push_front(id);
    auto [ins, ok] = cache.entries.emplace(
        id, std::make_pair(cache.order.begin(), BuildBundle(store, id)));
    (void)ok;
    return &ins->second.second;
  }

  SiteCache& cache = state.cache;
  if (auto it = cache.entries.find(id); it != cache.entries.end()) {
    ++stats.cache_hits;
    if (latency != nullptr) *latency += options_.local_access_latency;
    cache.order.erase(it->second.first);
    cache.order.push_front(id);
    it->second.first = cache.order.begin();
    return &it->second.second;
  }

  // Remote fetch from the owner's store.
  MetadataStore& owner_store = stores_[SiteIndex(owner)];
  if (owner_store.FindContent(id) == nullptr) return nullptr;
  ++stats.remote_accesses;
  if (latency != nullptr) *latency += options_.remote_access_latency;
  if (options_.cache_capacity == 0) {
    // Caching disabled: keep a single scratch slot that every remote
    // access overwrites.
    cache.order.clear();
    cache.entries.clear();
  }
  while (cache.entries.size() >=
         std::max<size_t>(1, options_.cache_capacity)) {
    LogicalOid victim = cache.order.back();
    cache.order.pop_back();
    cache.entries.erase(victim);
  }
  cache.order.push_front(id);
  auto [ins, ok] = cache.entries.emplace(
      id, std::make_pair(cache.order.begin(), BuildBundle(owner_store, id)));
  (void)ok;
  return &ins->second.second;
}

std::optional<media::VideoContent> DistributedMetadataEngine::FindContent(
    SiteId from, LogicalOid id, SimTime* latency) {
  SiteState& state = *site_states_[SiteIndex(from)];
  MutexLock lock(&state.mu);
  const MetadataBundle* bundle = FetchBundle(state, from, id, latency);
  if (bundle == nullptr) return std::nullopt;
  return bundle->content;
}

std::vector<media::ReplicaInfo> DistributedMetadataEngine::ReplicasOf(
    SiteId from, LogicalOid id, SimTime* latency) {
  SiteState& state = *site_states_[SiteIndex(from)];
  MutexLock lock(&state.mu);
  const MetadataBundle* bundle = FetchBundle(state, from, id, latency);
  if (bundle == nullptr) return {};
  return bundle->replicas;
}

std::optional<QosProfile> DistributedMetadataEngine::FindQosProfile(
    SiteId from, PhysicalOid id, SimTime* latency) {
  auto it = physical_to_logical_.find(id);
  if (it == physical_to_logical_.end()) return std::nullopt;
  SiteState& state = *site_states_[SiteIndex(from)];
  MutexLock lock(&state.mu);
  const MetadataBundle* bundle = FetchBundle(state, from, it->second, latency);
  if (bundle == nullptr) return std::nullopt;
  for (const auto& [oid, profile] : bundle->profiles) {
    if (oid == id) return profile;
  }
  return std::nullopt;
}

std::vector<LogicalOid> DistributedMetadataEngine::AllContentIds() const {
  std::vector<LogicalOid> out;
  for (const MetadataStore& store : stores_) {
    for (const media::VideoContent* content : store.AllContents()) {
      out.push_back(content->id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

DistributedMetadataEngine::AccessStats DistributedMetadataEngine::stats_for(
    SiteId site) const {
  const SiteState& state = *site_states_[SiteIndex(site)];
  MutexLock lock(&state.mu);
  return state.stats;
}

void DistributedMetadataEngine::InvalidateCaches(LogicalOid id) {
  for (const std::unique_ptr<SiteState>& state : site_states_) {
    MutexLock lock(&state->mu);
    SiteCache& cache = state->cache;
    auto it = cache.entries.find(id);
    if (it == cache.entries.end()) continue;
    cache.order.erase(it->second.first);
    cache.entries.erase(it);
  }
}

}  // namespace quasaq::meta
