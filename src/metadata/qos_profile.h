#ifndef QUASAQ_METADATA_QOS_PROFILE_H_
#define QUASAQ_METADATA_QOS_PROFILE_H_

#include <string>

#include "common/rng.h"
#include "media/activities.h"
#include "media/video.h"

// QoS profiles (paper §3.3): the resource-consumption pattern of
// delivering one physical media object, obtained offline by the QoS
// sampler and stored as metadata. Profiles are the basis for cost
// estimation of QoS-aware plans.

namespace quasaq::meta {

// Resources consumed while streaming one replica, per concurrent
// session, expressed in the units of the resource buckets.
struct QosProfile {
  double cpu_fraction = 0.0;  // fraction of one server CPU
  double net_kbps = 0.0;      // outbound network bandwidth
  double disk_kbps = 0.0;     // sequential disk read bandwidth
  double memory_kb = 0.0;     // staging buffers

  std::string ToString() const;
};

// Offline QoS-mapping component ("QoS sampling" in Fig. 1): derives a
// replica's QoS profile from its quality metadata and the Transport API
// cost model. An optional measurement-noise term models the fact that
// the prototype obtained profiles by running sample deliveries.
class QosSampler {
 public:
  struct Options {
    media::StreamingCpuCost streaming_cost;
    // Relative sd of multiplicative measurement noise; 0 = analytic.
    double measurement_noise_sd = 0.0;
    // Buffer sized to hold this many seconds of stream.
    double buffer_seconds = 2.0;
  };

  QosSampler() : QosSampler(Options(), 0) {}
  QosSampler(const Options& options, uint64_t seed);

  /// Samples the delivery profile of `replica` streamed as stored
  /// (no extra server activities).
  QosProfile SampleStreaming(const media::ReplicaInfo& replica);

 private:
  double Noise();

  Options options_;
  Rng rng_;
};

}  // namespace quasaq::meta

#endif  // QUASAQ_METADATA_QOS_PROFILE_H_
