#include "metadata/qos_profile.h"

#include <cstdio>

namespace quasaq::meta {

std::string QosProfile::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{cpu: %.4f, net: %.1f KB/s, disk: %.1f KB/s, mem: %.0f KB}",
                cpu_fraction, net_kbps, disk_kbps, memory_kb);
  return std::string(buf);
}

QosSampler::QosSampler(const Options& options, uint64_t seed)
    : options_(options), rng_(seed) {}

double QosSampler::Noise() {
  if (options_.measurement_noise_sd <= 0.0) return 1.0;
  return rng_.ClampedNormal(1.0, options_.measurement_noise_sd, 0.5, 1.5);
}

QosProfile QosSampler::SampleStreaming(const media::ReplicaInfo& replica) {
  QosProfile profile;
  const double mean_frame_kb =
      replica.bitrate_kbps / replica.qos.frame_rate;
  const double cpu_ms_per_second =
      options_.streaming_cost.FrameMs(mean_frame_kb) * replica.qos.frame_rate;
  profile.cpu_fraction = cpu_ms_per_second / 1000.0 * Noise();
  profile.net_kbps = replica.bitrate_kbps * Noise();
  profile.disk_kbps = replica.bitrate_kbps * Noise();
  profile.memory_kb = replica.bitrate_kbps * options_.buffer_seconds;
  return profile;
}

}  // namespace quasaq::meta
