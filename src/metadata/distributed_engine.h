#ifndef QUASAQ_METADATA_DISTRIBUTED_ENGINE_H_
#define QUASAQ_METADATA_DISTRIBUTED_ENGINE_H_

#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/sync.h"
#include "metadata/metadata_store.h"

// Distributed Metadata Engine (paper §3.3): metadata is partitioned
// across sites by logical OID ("distributed in various locations
// enabling ease of use and migration") and non-local accesses are
// accelerated by a per-site LRU cache of metadata bundles. Accesses
// report a simulated latency so callers can charge metadata I/O to the
// plan-generation path.
//
// Thread-safety: the read path (FindContent/ReplicasOf/FindQosProfile)
// mutates the accessing site's LRU cache and counters, so each site's
// cache + stats sit behind their own leaf Mutex — concurrent admissions
// from different sites never contend, same-site accesses serialize.
// Population and erasure (Insert*/Erase*/SetQosProfile) write the
// unguarded stores and physical index; they are construction-time /
// simulator-driven operations and must not overlap with concurrent
// reads (docs/ARCHITECTURE.md "Threading model").

namespace quasaq::meta {

// All metadata of one logical object, copied as a unit between sites.
struct MetadataBundle {
  media::VideoContent content;
  std::vector<media::ReplicaInfo> replicas;
  std::vector<std::pair<PhysicalOid, QosProfile>> profiles;
};

class DistributedMetadataEngine {
 public:
  struct Options {
    // Cached remote bundles per site; 0 disables caching.
    size_t cache_capacity = 256;
    SimTime local_access_latency = 50 * kMicrosecond;
    SimTime remote_access_latency = 2 * kMillisecond;
  };

  struct AccessStats {
    uint64_t local_accesses = 0;
    uint64_t cache_hits = 0;
    uint64_t remote_accesses = 0;
  };

  DistributedMetadataEngine(std::vector<SiteId> sites,
                            const Options& options);

  // --- Population (routed to the owning site's store) ----------------

  Status InsertContent(const media::VideoContent& content);
  Status InsertReplica(const media::ReplicaInfo& replica);
  Status SetQosProfile(PhysicalOid id, const QosProfile& profile);

  /// Unregisters a replica (e.g. after eviction/migration); cached
  /// copies at every site are invalidated.
  Status EraseReplica(PhysicalOid id);

  /// Unregisters a logical object, cascading to its replicas and
  /// profiles; cached copies at every site are invalidated.
  Status EraseContent(LogicalOid id);

  // --- Access from a site ---------------------------------------------
  // Each accessor simulates the lookup as seen from `from`: a local read
  // when the metadata is owned there, a cache hit, or a remote fetch
  // that populates the cache. When `latency` is non-null the simulated
  // access latency is added to it.

  std::optional<media::VideoContent> FindContent(SiteId from, LogicalOid id,
                                                 SimTime* latency = nullptr);
  std::vector<media::ReplicaInfo> ReplicasOf(SiteId from, LogicalOid id,
                                             SimTime* latency = nullptr);
  std::optional<QosProfile> FindQosProfile(SiteId from, PhysicalOid id,
                                           SimTime* latency = nullptr);

  /// Returns every registered logical OID (union over sites).
  std::vector<LogicalOid> AllContentIds() const;

  /// Returns the site owning the metadata of `id`.
  SiteId OwnerOf(LogicalOid id) const;

  /// Snapshot of the site's access counters (copied under its lock).
  AccessStats stats_for(SiteId site) const;

 private:
  struct SiteCache {
    // LRU over logical OIDs; front = most recent.
    std::list<LogicalOid> order;
    std::unordered_map<LogicalOid,
                       std::pair<std::list<LogicalOid>::iterator,
                                 MetadataBundle>>
        entries;
  };

  // One site's mutable read-path state. Heap-allocated so the Mutex
  // address stays stable in the vector.
  struct SiteState {
    mutable Mutex mu;
    SiteCache cache QUASAQ_GUARDED_BY(mu);
    AccessStats stats QUASAQ_GUARDED_BY(mu);
  };

  size_t SiteIndex(SiteId site) const;
  MetadataStore& OwnerStore(LogicalOid id);
  // Fetches the bundle as seen from `from` (whose state is `state`),
  // tracking stats and latency. The returned pointer aims into the
  // site's cache and is only valid while the lock is held.
  const MetadataBundle* FetchBundle(SiteState& state, SiteId from,
                                    LogicalOid id, SimTime* latency)
      QUASAQ_REQUIRES(state.mu);
  MetadataBundle BuildBundle(const MetadataStore& store, LogicalOid id) const;
  void InvalidateCaches(LogicalOid id);

  std::vector<SiteId> sites_;
  Options options_;
  std::vector<MetadataStore> stores_;  // one per site
  std::vector<std::unique_ptr<SiteState>> site_states_;  // one per site
  std::unordered_map<PhysicalOid, LogicalOid> physical_to_logical_;
};

}  // namespace quasaq::meta

#endif  // QUASAQ_METADATA_DISTRIBUTED_ENGINE_H_
