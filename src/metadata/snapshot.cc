#include "metadata/snapshot.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace quasaq::meta {

namespace {

void AppendQos(std::ostringstream& out, const media::AppQos& qos) {
  out << qos.resolution.width << ',' << qos.resolution.height << ','
      << qos.color_depth_bits << ',';
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", qos.frame_rate);
  out << buf << ',' << static_cast<int>(qos.format) << ','
      << static_cast<int>(qos.audio);
}

std::vector<std::string> SplitLine(std::string_view line, char sep) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (start <= line.size()) {
    size_t end = line.find(sep, start);
    if (end == std::string_view::npos) end = line.size();
    fields.emplace_back(line.substr(start, end - start));
    start = end + 1;
  }
  return fields;
}

Status BadLine(size_t line_number, const std::string& why) {
  return Status::InvalidArgument("catalog line " +
                                 std::to_string(line_number) + ": " + why);
}

// Parses the 6 AppQos fields starting at `fields[at]`.
Result<media::AppQos> ParseQosFields(const std::vector<std::string>& fields,
                                     size_t at) {
  media::AppQos qos;
  qos.resolution.width = std::atoi(fields[at].c_str());
  qos.resolution.height = std::atoi(fields[at + 1].c_str());
  qos.color_depth_bits = std::atoi(fields[at + 2].c_str());
  qos.frame_rate = std::atof(fields[at + 3].c_str());
  int format = std::atoi(fields[at + 4].c_str());
  int audio = std::atoi(fields[at + 5].c_str());
  if (qos.resolution.width <= 0 || qos.resolution.height <= 0 ||
      qos.color_depth_bits <= 0 || qos.frame_rate <= 0.0 || format < 0 ||
      format >= media::kNumVideoFormats || audio < 0 ||
      audio >= media::kNumAudioQualities) {
    return Status::InvalidArgument("bad quality fields");
  }
  qos.format = static_cast<media::VideoFormat>(format);
  qos.audio = static_cast<media::AudioQuality>(audio);
  return qos;
}

}  // namespace

std::string SerializeCatalog(DistributedMetadataEngine& engine) {
  std::ostringstream out;
  out << "# quasaq catalog v1\n";
  for (LogicalOid oid : engine.AllContentIds()) {
    SiteId owner = engine.OwnerOf(oid);
    auto content = engine.FindContent(owner, oid);
    if (!content.has_value()) continue;
    out << "content," << oid.value() << ',' << content->title << ',';
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", content->duration_seconds);
    out << buf << ',';
    for (size_t i = 0; i < content->keywords.size(); ++i) {
      if (i > 0) out << ';';
      out << content->keywords[i];
    }
    out << ',';
    for (size_t i = 0; i < content->features.size(); ++i) {
      if (i > 0) out << ';';
      std::snprintf(buf, sizeof(buf), "%.10g", content->features[i]);
      out << buf;
    }
    out << ',';
    AppendQos(out, content->master_quality);
    out << '\n';

    for (const media::ReplicaInfo& replica : engine.ReplicasOf(owner, oid)) {
      out << "replica," << replica.id.value() << ',' << oid.value() << ','
          << replica.site.value() << ',';
      AppendQos(out, replica.qos);
      std::snprintf(buf, sizeof(buf), "%.10g", replica.duration_seconds);
      out << ',' << buf << ',' << replica.frame_seed << '\n';

      auto profile = engine.FindQosProfile(owner, replica.id);
      if (profile.has_value()) {
        out << "profile," << replica.id.value();
        for (double v : {profile->cpu_fraction, profile->net_kbps,
                         profile->disk_kbps, profile->memory_kb}) {
          std::snprintf(buf, sizeof(buf), "%.10g", v);
          out << ',' << buf;
        }
        out << '\n';
      }
    }
  }
  return out.str();
}

Status LoadCatalog(std::string_view snapshot,
                   DistributedMetadataEngine* engine) {
  size_t line_number = 0;
  size_t start = 0;
  while (start <= snapshot.size()) {
    size_t end = snapshot.find('\n', start);
    if (end == std::string_view::npos) end = snapshot.size();
    std::string_view line = snapshot.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (line.empty() || line.front() == '#') continue;
    std::vector<std::string> fields = SplitLine(line, ',');

    if (fields[0] == "content") {
      if (fields.size() != 12) {
        return BadLine(line_number, "content record needs 12 fields");
      }
      media::VideoContent content;
      content.id = LogicalOid(std::atoll(fields[1].c_str()));
      content.title = fields[2];
      content.duration_seconds = std::atof(fields[3].c_str());
      for (const std::string& keyword : SplitLine(fields[4], ';')) {
        if (!keyword.empty()) content.keywords.push_back(keyword);
      }
      for (const std::string& feature : SplitLine(fields[5], ';')) {
        if (!feature.empty()) {
          content.features.push_back(std::atof(feature.c_str()));
        }
      }
      Result<media::AppQos> qos = ParseQosFields(fields, 6);
      if (!qos.ok()) return BadLine(line_number, qos.status().message());
      content.master_quality = *qos;
      if (!content.id.valid() || content.duration_seconds <= 0.0) {
        return BadLine(line_number, "bad content id/duration");
      }
      Status status = engine->InsertContent(content);
      if (!status.ok()) return BadLine(line_number, status.message());
    } else if (fields[0] == "replica") {
      if (fields.size() != 12) {
        return BadLine(line_number, "replica record needs 12 fields");
      }
      media::ReplicaInfo replica;
      replica.id = PhysicalOid(std::atoll(fields[1].c_str()));
      replica.content = LogicalOid(std::atoll(fields[2].c_str()));
      replica.site = SiteId(std::atoll(fields[3].c_str()));
      Result<media::AppQos> qos = ParseQosFields(fields, 4);
      if (!qos.ok()) return BadLine(line_number, qos.status().message());
      replica.qos = *qos;
      replica.duration_seconds = std::atof(fields[10].c_str());
      replica.frame_seed =
          static_cast<uint64_t>(std::strtoull(fields[11].c_str(),
                                              nullptr, 10));
      if (!replica.id.valid() || !replica.content.valid() ||
          !replica.site.valid() || replica.duration_seconds <= 0.0) {
        return BadLine(line_number, "bad replica ids/duration");
      }
      media::FinalizeReplicaSizing(replica);
      Status status = engine->InsertReplica(replica);
      if (!status.ok()) return BadLine(line_number, status.message());
    } else if (fields[0] == "profile") {
      if (fields.size() != 6) {
        return BadLine(line_number, "profile record needs 6 fields");
      }
      QosProfile profile;
      PhysicalOid oid(std::atoll(fields[1].c_str()));
      profile.cpu_fraction = std::atof(fields[2].c_str());
      profile.net_kbps = std::atof(fields[3].c_str());
      profile.disk_kbps = std::atof(fields[4].c_str());
      profile.memory_kb = std::atof(fields[5].c_str());
      Status status = engine->SetQosProfile(oid, profile);
      if (!status.ok()) return BadLine(line_number, status.message());
    } else {
      return BadLine(line_number,
                     "unknown record type '" + fields[0] + "'");
    }
  }
  return Status::Ok();
}

}  // namespace quasaq::meta
