#ifndef QUASAQ_OBS_METRICS_H_
#define QUASAQ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "common/stats.h"
#include "common/sync.h"

// Runtime metrics for the delivery pipeline. QuaSAQ's admission decisions
// price plans against *live* bucket utilization, so operating the system
// blind — with only post-hoc bench aggregates — means the one thing the
// cost model reacts to is the one thing nobody can see. The registry here
// is the single place every layer reports into: monotonic Counters,
// point-in-time Gauges (optionally sampled into a TimeSeries for the
// time-axis figures), and log-bucketed Histograms for latency-shaped
// values, all grouped into labeled families under one metric name.
//
// Exposition is pull-based and allocation-free on the hot path: the
// instrumented code holds raw Counter*/Gauge*/Histogram* pointers (stable
// for the registry's lifetime) and updates them with atomic operations;
// `PrometheusText()` renders the classic text format and `JsonSnapshot()`
// a machine-readable dump the bench harnesses write next to their
// BENCH_*.json.
//
// Metric names follow `quasaq_<subsystem>_<noun>_<unit>` (enforced by
// tools/check_metrics.py); the catalog lives in docs/OBSERVABILITY.md.
//
// Thread-safe: Counter and Gauge values are lock-free atomics; the gauge
// history, each histogram, and the family table take a quasaq::Mutex.
// All obs locks are leaves — nothing else is acquired while they are
// held — so any subsystem may report from inside its own critical
// section (docs/ARCHITECTURE.md "Threading model").

namespace quasaq::obs {

// One metric's label set, e.g. {{"site", "2"}, {"kind", "disk"}}.
// Canonicalized (sorted by key) when a family child is resolved.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Escapes `text` for embedding in a JSON string literal.
std::string JsonEscapeString(std::string_view text);

// Monotonically increasing count (events, bytes). Lock-free.
class Counter {
 public:
  void Increment(double delta = 1.0) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Point-in-time value (active sessions, bucket utilization). The current
// value is a lock-free atomic; `Sample` additionally appends to a
// bounded TimeSeries so utilization-over-time comes out of the same
// object the live dashboards read.
class Gauge {
 public:
  // History samples kept before further Sample calls stop recording
  // (the current value still updates; `history_dropped` counts the loss
  // so truncation is visible instead of silent).
  static constexpr size_t kMaxHistory = 65536;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

  /// Sets the value and records (now, value) into the gauge's history.
  void Sample(SimTime now, double value) QUASAQ_EXCLUDES(mu_);

  /// Raises the gauge to `value` when higher (atomic running maximum)
  /// and records a history sample only when the value actually rose —
  /// the high-water-mark flavor of Sample. Safe against concurrent
  /// callers: exactly the raising calls append history.
  void SampleMax(SimTime now, double value) QUASAQ_EXCLUDES(mu_);

  /// Copy of the sampled history (empty when never sampled).
  TimeSeries history() const QUASAQ_EXCLUDES(mu_);

  size_t history_dropped() const QUASAQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return history_dropped_;
  }

 private:
  std::atomic<double> value_{0.0};
  mutable Mutex mu_;
  TimeSeries history_ QUASAQ_GUARDED_BY(mu_);
  size_t history_dropped_ QUASAQ_GUARDED_BY(mu_) = 0;
};

// Log-bucketed histogram: finite bucket upper bounds grow geometrically
// from `first_bound` by `growth`, with an implicit +Inf bucket, so a
// fixed bucket count covers latencies from microseconds to minutes at
// constant relative resolution.
struct HistogramOptions {
  double first_bound = 1.0;  // upper bound of the first bucket
  double growth = 2.0;       // geometric bound growth, > 1
  int bucket_count = 24;     // finite buckets; +Inf is implied
};

class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options);

  void Observe(double value) QUASAQ_EXCLUDES(mu_);

  struct Snapshot {
    std::vector<double> bounds;     // finite upper bounds, ascending
    std::vector<uint64_t> counts;   // bounds.size() + 1 (last = +Inf)
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  Snapshot snapshot() const QUASAQ_EXCLUDES(mu_);

  uint64_t count() const QUASAQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_.count();
  }

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;  // immutable after construction
  mutable Mutex mu_;
  std::vector<uint64_t> counts_ QUASAQ_GUARDED_BY(mu_);
  RunningStats stats_ QUASAQ_GUARDED_BY(mu_);
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// "counter", "gauge" or "histogram".
std::string_view MetricTypeName(MetricType type);

// The registry: metric families keyed by name, children keyed by label
// set. Get* registers on first use and returns the existing child on
// every later call with the same (name, labels) — instrumented code
// resolves its pointers once and hammers them thereafter. A Get* whose
// name is already registered under a *different* type (or, for
// histograms, different bucket layout) returns nullptr: silently
// aliasing two meanings under one name is how dashboards lie.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name, std::string_view help,
                      const Labels& labels = {}) QUASAQ_EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  const Labels& labels = {}) QUASAQ_EXCLUDES(mu_);
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          const HistogramOptions& options = {},
                          const Labels& labels = {}) QUASAQ_EXCLUDES(mu_);

  /// All registered family names, sorted.
  std::vector<std::string> MetricNames() const QUASAQ_EXCLUDES(mu_);

  size_t family_count() const QUASAQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return families_.size();
  }

  /// Prometheus text exposition format (HELP/TYPE comments, one line
  /// per series; histograms expand to cumulative _bucket/_sum/_count).
  std::string PrometheusText() const QUASAQ_EXCLUDES(mu_);

  /// JSON document: {"metrics": [{name, type, help, series: [...]}]}.
  /// Gauge series include their sampled history as [seconds, value]
  /// pairs; histogram series include per-bucket counts.
  std::string JsonSnapshot() const QUASAQ_EXCLUDES(mu_);

  // Merge-on-snapshot exposition for sharded registries: renders the
  // union of `parts` as one document. Counter and gauge values sum per
  // series, histograms merge per-bucket, gauge histories concatenate
  // (time-sorted when merging more than one part). With a single part
  // the output is byte-identical to the instance methods — which are in
  // fact implemented on top of these. When parts disagree on a family's
  // type (or a histogram's bucket layout) the first part wins and the
  // conflicting series are skipped.
  static std::string MergedPrometheusText(
      const std::vector<const MetricsRegistry*>& parts);
  static std::string MergedJsonSnapshot(
      const std::vector<const MetricsRegistry*>& parts);

 private:
  // Transparent child-map comparator: compares stored canonical keys
  // ("k=v,k=v", label pairs sorted) against a *sorted* label set without
  // serializing the probe — labeled-family lookups on the hot path cost
  // zero allocations after first registration.
  struct SortedLabelsRef {
    const Labels* labels;
  };
  struct ChildKeyLess {
    using is_transparent = void;
    bool operator()(const std::string& a, const std::string& b) const {
      return a < b;
    }
    bool operator()(const std::string& a, const SortedLabelsRef& b) const;
    bool operator()(const SortedLabelsRef& a, const std::string& b) const;
  };

  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    HistogramOptions histogram;
    // Children keyed by canonical (sorted, serialized) label set.
    // std::map keeps exposition order deterministic.
    std::map<std::string, std::unique_ptr<Counter>, ChildKeyLess> counters;
    std::map<std::string, std::unique_ptr<Gauge>, ChildKeyLess> gauges;
    std::map<std::string, std::unique_ptr<Histogram>, ChildKeyLess> histograms;
    // Canonical key -> labels in first-registration order (exposition
    // renders labels as the instrumentation passed them).
    std::map<std::string, Labels> label_sets;
  };

  // One series' state accumulated across the merged parts.
  struct MergedSeries {
    Labels labels;
    double value = 0.0;  // counter / gauge sum
    TimeSeries history;  // gauge history, parts concatenated
    Histogram::Snapshot histogram;
    bool histogram_init = false;
  };
  struct MergedFamily {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::map<std::string, MergedSeries> series;  // canonical key order
  };
  using MergedView = std::map<std::string, MergedFamily>;

  static MergedView BuildMergedView(
      const std::vector<const MetricsRegistry*>& parts);
  static std::string RenderPrometheus(const MergedView& view);
  static std::string RenderJson(const MergedView& view);

  Family* ResolveFamily(std::string_view name, std::string_view help,
                        MetricType type) QUASAQ_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Family, std::less<>> families_ QUASAQ_GUARDED_BY(mu_);
};

}  // namespace quasaq::obs

#endif  // QUASAQ_OBS_METRICS_H_
