#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace quasaq::obs {

namespace {

// Renders a double the way the Prometheus text format expects.
std::string RenderNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

// Canonical child key: labels sorted by key, serialized "k=v,k=v".
std::string CanonicalKey(Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string key;
  for (const auto& [k, v] : labels) {
    if (!key.empty()) key += ',';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

// Prometheus series suffix: {k="v",k="v"} or empty for no labels.
std::string PromLabelSuffix(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + v + "\"";
  }
  out += '}';
  return out;
}

// Same but with one extra label appended (for histogram "le").
std::string PromLabelSuffixWith(const Labels& labels, const std::string& key,
                                const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return PromLabelSuffix(extended);
}

std::string JsonLabelObject(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscapeString(k) + "\": \"" + JsonEscapeString(v) + "\"";
  }
  out += '}';
  return out;
}

std::string JsonNumberOrNull(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

}  // namespace

std::string JsonEscapeString(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string_view MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

void Gauge::Sample(SimTime now, double value) {
  value_.store(value, std::memory_order_relaxed);
  MutexLock lock(&mu_);
  if (history_.samples().size() >= kMaxHistory) {
    ++history_dropped_;
    return;
  }
  history_.Add(now, value);
}

TimeSeries Gauge::history() const {
  MutexLock lock(&mu_);
  return history_;
}

Histogram::Histogram(const HistogramOptions& options) {
  assert(options.first_bound > 0.0);
  assert(options.growth > 1.0);
  assert(options.bucket_count > 0);
  bounds_.reserve(static_cast<size_t>(options.bucket_count));
  double bound = options.first_bound;
  for (int i = 0; i < options.bucket_count; ++i) {
    bounds_.push_back(bound);
    bound *= options.growth;
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  // A value lands in the first bucket whose upper bound is >= value;
  // anything beyond the last finite bound goes to the +Inf bucket.
  size_t bucket =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                           value) -
                          bounds_.begin());
  MutexLock lock(&mu_);
  ++counts_[bucket];
  stats_.Add(value);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  MutexLock lock(&mu_);
  snap.counts = counts_;
  snap.count = stats_.count();
  snap.sum = stats_.mean() * static_cast<double>(stats_.count());
  snap.min = stats_.min();
  snap.max = stats_.max();
  return snap;
}

MetricsRegistry::Family* MetricsRegistry::ResolveFamily(std::string_view name,
                                                        std::string_view help,
                                                        MetricType type) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.type = type;
    family.help = std::string(help);
    it = families_.emplace(std::string(name), std::move(family)).first;
  } else if (it->second.type != type) {
    return nullptr;  // one name, one meaning
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help,
                                     const Labels& labels) {
  MutexLock lock(&mu_);
  Family* family = ResolveFamily(name, help, MetricType::kCounter);
  if (family == nullptr) return nullptr;
  std::string key = CanonicalKey(labels);
  auto it = family->counters.find(key);
  if (it == family->counters.end()) {
    it = family->counters.emplace(key, std::make_unique<Counter>()).first;
    family->label_sets.emplace(key, labels);
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 const Labels& labels) {
  MutexLock lock(&mu_);
  Family* family = ResolveFamily(name, help, MetricType::kGauge);
  if (family == nullptr) return nullptr;
  std::string key = CanonicalKey(labels);
  auto it = family->gauges.find(key);
  if (it == family->gauges.end()) {
    it = family->gauges.emplace(key, std::make_unique<Gauge>()).first;
    family->label_sets.emplace(key, labels);
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         const HistogramOptions& options,
                                         const Labels& labels) {
  MutexLock lock(&mu_);
  Family* family = ResolveFamily(name, help, MetricType::kHistogram);
  if (family == nullptr) return nullptr;
  std::string key = CanonicalKey(labels);
  auto it = family->histograms.find(key);
  if (it == family->histograms.end()) {
    family->histogram = options;
    it = family->histograms.emplace(key, std::make_unique<Histogram>(options))
             .first;
    family->label_sets.emplace(key, labels);
  } else {
    // A family has one bucket layout; a mismatched re-registration is
    // the histogram flavor of a type conflict.
    const Histogram& existing = *it->second;
    Histogram probe(options);
    if (existing.bounds() != probe.bounds()) return nullptr;
  }
  return it->second.get();
}

std::vector<std::string> MetricsRegistry::MetricNames() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const auto& [name, family] : families_) names.push_back(name);
  return names;
}

std::string MetricsRegistry::PrometheusText() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " " +
           std::string(MetricTypeName(family.type)) + "\n";
    switch (family.type) {
      case MetricType::kCounter:
        for (const auto& [key, counter] : family.counters) {
          out += name + PromLabelSuffix(family.label_sets.at(key)) + " " +
                 RenderNumber(counter->value()) + "\n";
        }
        break;
      case MetricType::kGauge:
        for (const auto& [key, gauge] : family.gauges) {
          out += name + PromLabelSuffix(family.label_sets.at(key)) + " " +
                 RenderNumber(gauge->value()) + "\n";
        }
        break;
      case MetricType::kHistogram:
        for (const auto& [key, histogram] : family.histograms) {
          const Labels& labels = family.label_sets.at(key);
          Histogram::Snapshot snap = histogram->snapshot();
          uint64_t cumulative = 0;
          for (size_t i = 0; i < snap.counts.size(); ++i) {
            cumulative += snap.counts[i];
            std::string le = i < snap.bounds.size()
                                 ? RenderNumber(snap.bounds[i])
                                 : "+Inf";
            out += name + "_bucket" +
                   PromLabelSuffixWith(labels, "le", le) + " " +
                   std::to_string(cumulative) + "\n";
          }
          out += name + "_sum" + PromLabelSuffix(labels) + " " +
                 RenderNumber(snap.sum) + "\n";
          out += name + "_count" + PromLabelSuffix(labels) + " " +
                 std::to_string(snap.count) + "\n";
        }
        break;
    }
  }
  return out;
}

std::string MetricsRegistry::JsonSnapshot() const {
  MutexLock lock(&mu_);
  std::string out = "{\n  \"metrics\": [";
  bool first_family = true;
  for (const auto& [name, family] : families_) {
    if (!first_family) out += ',';
    first_family = false;
    out += "\n    {\"name\": \"" + JsonEscapeString(name) + "\", \"type\": \"" +
           std::string(MetricTypeName(family.type)) + "\", \"help\": \"" +
           JsonEscapeString(family.help) + "\", \"series\": [";
    bool first_series = true;
    auto begin_series = [&](const std::string& key) {
      if (!first_series) out += ',';
      first_series = false;
      out += "\n      {\"labels\": " +
             JsonLabelObject(family.label_sets.at(key));
    };
    switch (family.type) {
      case MetricType::kCounter:
        for (const auto& [key, counter] : family.counters) {
          begin_series(key);
          out += ", \"value\": " + JsonNumberOrNull(counter->value()) + "}";
        }
        break;
      case MetricType::kGauge:
        for (const auto& [key, gauge] : family.gauges) {
          begin_series(key);
          out += ", \"value\": " + JsonNumberOrNull(gauge->value());
          TimeSeries history = gauge->history();
          if (!history.empty()) {
            out += ", \"history\": [";
            bool first_sample = true;
            for (const TimeSeries::Sample& s : history.samples()) {
              if (!first_sample) out += ", ";
              first_sample = false;
              out += "[" + JsonNumberOrNull(SimTimeToSeconds(s.time)) + ", " +
                     JsonNumberOrNull(s.value) + "]";
            }
            out += ']';
          }
          out += '}';
        }
        break;
      case MetricType::kHistogram:
        for (const auto& [key, histogram] : family.histograms) {
          begin_series(key);
          Histogram::Snapshot snap = histogram->snapshot();
          out += ", \"count\": " + std::to_string(snap.count) +
                 ", \"sum\": " + JsonNumberOrNull(snap.sum) +
                 ", \"min\": " + JsonNumberOrNull(snap.min) +
                 ", \"max\": " + JsonNumberOrNull(snap.max) +
                 ", \"buckets\": [";
          for (size_t i = 0; i < snap.counts.size(); ++i) {
            if (i > 0) out += ", ";
            std::string le = i < snap.bounds.size()
                                 ? JsonNumberOrNull(snap.bounds[i])
                                 : "\"+Inf\"";
            out += "{\"le\": " + le +
                   ", \"count\": " + std::to_string(snap.counts[i]) + "}";
          }
          out += "]}";
        }
        break;
    }
    out += "\n    ]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace quasaq::obs
