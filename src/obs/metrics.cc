#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace quasaq::obs {

namespace {

// Renders a double the way the Prometheus text format expects.
std::string RenderNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

// Canonical child key: labels sorted by key, serialized "k=v,k=v".
std::string CanonicalKey(Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string key;
  for (const auto& [k, v] : labels) {
    if (!key.empty()) key += ',';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

// Three-way compare of a stored canonical key against the serialization
// `labels` (already sorted) *would* produce, character by character —
// the allocation-free half of the transparent child lookup. Returns
// <0 / 0 / >0 as `key` orders before / equal to / after the labels.
int CompareKeyToLabels(std::string_view key, const Labels& labels) {
  size_t pos = 0;
  auto compare_piece = [&](std::string_view piece) -> int {
    for (char c : piece) {
      if (pos >= key.size()) return -1;  // key is a strict prefix
      if (key[pos] != c) return key[pos] < c ? -1 : 1;
      ++pos;
    }
    return 0;
  };
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) {
      if (int r = compare_piece(",")) return r;
    }
    first = false;
    if (int r = compare_piece(k)) return r;
    if (int r = compare_piece("=")) return r;
    if (int r = compare_piece(v)) return r;
  }
  return pos == key.size() ? 0 : 1;  // leftover key chars order after
}

// Prometheus series suffix: {k="v",k="v"} or empty for no labels.
std::string PromLabelSuffix(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + v + "\"";
  }
  out += '}';
  return out;
}

// Same but with one extra label appended (for histogram "le").
std::string PromLabelSuffixWith(const Labels& labels, const std::string& key,
                                const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return PromLabelSuffix(extended);
}

std::string JsonLabelObject(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscapeString(k) + "\": \"" + JsonEscapeString(v) + "\"";
  }
  out += '}';
  return out;
}

std::string JsonNumberOrNull(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

}  // namespace

std::string JsonEscapeString(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string_view MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

bool MetricsRegistry::ChildKeyLess::operator()(const std::string& a,
                                               const SortedLabelsRef& b) const {
  return CompareKeyToLabels(a, *b.labels) < 0;
}

bool MetricsRegistry::ChildKeyLess::operator()(const SortedLabelsRef& a,
                                               const std::string& b) const {
  return CompareKeyToLabels(b, *a.labels) > 0;
}

void Gauge::Sample(SimTime now, double value) {
  value_.store(value, std::memory_order_relaxed);
  MutexLock lock(&mu_);
  if (history_.samples().size() >= kMaxHistory) {
    ++history_dropped_;
    return;
  }
  history_.Add(now, value);
}

void Gauge::SampleMax(SimTime now, double value) {
  double current = value_.load(std::memory_order_relaxed);
  while (current < value) {
    if (value_.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
      MutexLock lock(&mu_);
      if (history_.samples().size() >= kMaxHistory) {
        ++history_dropped_;
        return;
      }
      history_.Add(now, value);
      return;
    }
  }
}

TimeSeries Gauge::history() const {
  MutexLock lock(&mu_);
  return history_;
}

Histogram::Histogram(const HistogramOptions& options) {
  assert(options.first_bound > 0.0);
  assert(options.growth > 1.0);
  assert(options.bucket_count > 0);
  bounds_.reserve(static_cast<size_t>(options.bucket_count));
  double bound = options.first_bound;
  for (int i = 0; i < options.bucket_count; ++i) {
    bounds_.push_back(bound);
    bound *= options.growth;
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  // A value lands in the first bucket whose upper bound is >= value;
  // anything beyond the last finite bound goes to the +Inf bucket.
  size_t bucket =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                           value) -
                          bounds_.begin());
  MutexLock lock(&mu_);
  ++counts_[bucket];
  stats_.Add(value);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  MutexLock lock(&mu_);
  snap.counts = counts_;
  snap.count = stats_.count();
  snap.sum = stats_.mean() * static_cast<double>(stats_.count());
  snap.min = stats_.min();
  snap.max = stats_.max();
  return snap;
}

MetricsRegistry::Family* MetricsRegistry::ResolveFamily(std::string_view name,
                                                        std::string_view help,
                                                        MetricType type) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.type = type;
    family.help = std::string(help);
    it = families_.emplace(std::string(name), std::move(family)).first;
  } else if (it->second.type != type) {
    return nullptr;  // one name, one meaning
  }
  return &it->second;
}

namespace {

// The sorted view of `labels`: `labels` itself when already sorted (the
// common case — instrumented call sites pass at most a couple of pairs
// in order), else a sorted copy placed in `storage`.
const Labels& SortedLabelView(const Labels& labels, Labels& storage) {
  if (std::is_sorted(labels.begin(), labels.end())) return labels;
  storage = labels;
  std::sort(storage.begin(), storage.end());
  return storage;
}

}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help,
                                     const Labels& labels) {
  MutexLock lock(&mu_);
  Family* family = ResolveFamily(name, help, MetricType::kCounter);
  if (family == nullptr) return nullptr;
  Labels sorted_storage;
  const Labels& sorted = SortedLabelView(labels, sorted_storage);
  auto it = family->counters.find(SortedLabelsRef{&sorted});
  if (it == family->counters.end()) {
    // Only first registration serializes the canonical key.
    std::string key = CanonicalKey(sorted);
    family->label_sets.emplace(key, labels);
    it = family->counters
             .emplace(std::move(key), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 const Labels& labels) {
  MutexLock lock(&mu_);
  Family* family = ResolveFamily(name, help, MetricType::kGauge);
  if (family == nullptr) return nullptr;
  Labels sorted_storage;
  const Labels& sorted = SortedLabelView(labels, sorted_storage);
  auto it = family->gauges.find(SortedLabelsRef{&sorted});
  if (it == family->gauges.end()) {
    std::string key = CanonicalKey(sorted);
    family->label_sets.emplace(key, labels);
    it = family->gauges.emplace(std::move(key), std::make_unique<Gauge>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         const HistogramOptions& options,
                                         const Labels& labels) {
  MutexLock lock(&mu_);
  Family* family = ResolveFamily(name, help, MetricType::kHistogram);
  if (family == nullptr) return nullptr;
  Labels sorted_storage;
  const Labels& sorted = SortedLabelView(labels, sorted_storage);
  auto it = family->histograms.find(SortedLabelsRef{&sorted});
  if (it == family->histograms.end()) {
    family->histogram = options;
    std::string key = CanonicalKey(sorted);
    family->label_sets.emplace(key, labels);
    it = family->histograms
             .emplace(std::move(key), std::make_unique<Histogram>(options))
             .first;
  } else {
    // A family has one bucket layout; a mismatched re-registration is
    // the histogram flavor of a type conflict.
    const Histogram& existing = *it->second;
    Histogram probe(options);
    if (existing.bounds() != probe.bounds()) return nullptr;
  }
  return it->second.get();
}

std::vector<std::string> MetricsRegistry::MetricNames() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const auto& [name, family] : families_) names.push_back(name);
  return names;
}

MetricsRegistry::MergedView MetricsRegistry::BuildMergedView(
    const std::vector<const MetricsRegistry*>& parts) {
  MergedView view;
  for (const MetricsRegistry* part : parts) {
    if (part == nullptr) continue;
    MutexLock lock(&part->mu_);
    for (const auto& [name, family] : part->families_) {
      auto [entry, inserted] = view.try_emplace(name);
      MergedFamily& merged = entry->second;
      if (inserted) {
        merged.type = family.type;
        merged.help = family.help;
      } else if (merged.type != family.type) {
        continue;  // one name, one meaning: first part wins
      }
      auto series_for = [&](const std::string& key) -> MergedSeries& {
        auto [it, fresh] = merged.series.try_emplace(key);
        if (fresh) it->second.labels = family.label_sets.at(key);
        return it->second;
      };
      switch (family.type) {
        case MetricType::kCounter:
          for (const auto& [key, counter] : family.counters) {
            series_for(key).value += counter->value();
          }
          break;
        case MetricType::kGauge:
          for (const auto& [key, gauge] : family.gauges) {
            MergedSeries& series = series_for(key);
            series.value += gauge->value();
            TimeSeries history = gauge->history();
            for (const TimeSeries::Sample& s : history.samples()) {
              series.history.Add(s.time, s.value);
            }
          }
          break;
        case MetricType::kHistogram:
          for (const auto& [key, histogram] : family.histograms) {
            MergedSeries& series = series_for(key);
            Histogram::Snapshot snap = histogram->snapshot();
            if (!series.histogram_init) {
              series.histogram = std::move(snap);
              series.histogram_init = true;
              continue;
            }
            if (snap.bounds != series.histogram.bounds) continue;
            for (size_t i = 0; i < snap.counts.size(); ++i) {
              series.histogram.counts[i] += snap.counts[i];
            }
            if (snap.count > 0) {
              if (series.histogram.count == 0) {
                series.histogram.min = snap.min;
                series.histogram.max = snap.max;
              } else {
                series.histogram.min =
                    std::min(series.histogram.min, snap.min);
                series.histogram.max =
                    std::max(series.histogram.max, snap.max);
              }
            }
            series.histogram.count += snap.count;
            series.histogram.sum += snap.sum;
          }
          break;
      }
    }
  }
  if (parts.size() > 1) {
    // Shard histories interleave; time-order the merged series. A
    // single part keeps its raw append order (byte-identical to the
    // instance exposition).
    for (auto& [name, family] : view) {
      if (family.type != MetricType::kGauge) continue;
      for (auto& [key, series] : family.series) {
        if (series.history.empty()) continue;
        std::vector<TimeSeries::Sample> samples = series.history.samples();
        std::stable_sort(samples.begin(), samples.end(),
                         [](const TimeSeries::Sample& a,
                            const TimeSeries::Sample& b) {
                           return a.time < b.time;
                         });
        series.history = TimeSeries();
        for (const TimeSeries::Sample& s : samples) {
          series.history.Add(s.time, s.value);
        }
      }
    }
  }
  return view;
}

std::string MetricsRegistry::RenderPrometheus(const MergedView& view) {
  std::string out;
  for (const auto& [name, family] : view) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " " +
           std::string(MetricTypeName(family.type)) + "\n";
    for (const auto& [key, series] : family.series) {
      switch (family.type) {
        case MetricType::kCounter:
        case MetricType::kGauge:
          out += name + PromLabelSuffix(series.labels) + " " +
                 RenderNumber(series.value) + "\n";
          break;
        case MetricType::kHistogram: {
          const Histogram::Snapshot& snap = series.histogram;
          uint64_t cumulative = 0;
          for (size_t i = 0; i < snap.counts.size(); ++i) {
            cumulative += snap.counts[i];
            std::string le = i < snap.bounds.size()
                                 ? RenderNumber(snap.bounds[i])
                                 : "+Inf";
            out += name + "_bucket" +
                   PromLabelSuffixWith(series.labels, "le", le) + " " +
                   std::to_string(cumulative) + "\n";
          }
          out += name + "_sum" + PromLabelSuffix(series.labels) + " " +
                 RenderNumber(snap.sum) + "\n";
          out += name + "_count" + PromLabelSuffix(series.labels) + " " +
                 std::to_string(snap.count) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson(const MergedView& view) {
  std::string out = "{\n  \"metrics\": [";
  bool first_family = true;
  for (const auto& [name, family] : view) {
    if (!first_family) out += ',';
    first_family = false;
    out += "\n    {\"name\": \"" + JsonEscapeString(name) + "\", \"type\": \"" +
           std::string(MetricTypeName(family.type)) + "\", \"help\": \"" +
           JsonEscapeString(family.help) + "\", \"series\": [";
    bool first_series = true;
    for (const auto& [key, series] : family.series) {
      if (!first_series) out += ',';
      first_series = false;
      out += "\n      {\"labels\": " + JsonLabelObject(series.labels);
      switch (family.type) {
        case MetricType::kCounter:
          out += ", \"value\": " + JsonNumberOrNull(series.value) + "}";
          break;
        case MetricType::kGauge: {
          out += ", \"value\": " + JsonNumberOrNull(series.value);
          if (!series.history.empty()) {
            out += ", \"history\": [";
            bool first_sample = true;
            for (const TimeSeries::Sample& s : series.history.samples()) {
              if (!first_sample) out += ", ";
              first_sample = false;
              out += "[" + JsonNumberOrNull(SimTimeToSeconds(s.time)) + ", " +
                     JsonNumberOrNull(s.value) + "]";
            }
            out += ']';
          }
          out += '}';
          break;
        }
        case MetricType::kHistogram: {
          const Histogram::Snapshot& snap = series.histogram;
          out += ", \"count\": " + std::to_string(snap.count) +
                 ", \"sum\": " + JsonNumberOrNull(snap.sum) +
                 ", \"min\": " + JsonNumberOrNull(snap.min) +
                 ", \"max\": " + JsonNumberOrNull(snap.max) +
                 ", \"buckets\": [";
          for (size_t i = 0; i < snap.counts.size(); ++i) {
            if (i > 0) out += ", ";
            std::string le = i < snap.bounds.size()
                                 ? JsonNumberOrNull(snap.bounds[i])
                                 : "\"+Inf\"";
            out += "{\"le\": " + le +
                   ", \"count\": " + std::to_string(snap.counts[i]) + "}";
          }
          out += "]}";
          break;
        }
      }
    }
    out += "\n    ]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string MetricsRegistry::MergedPrometheusText(
    const std::vector<const MetricsRegistry*>& parts) {
  return RenderPrometheus(BuildMergedView(parts));
}

std::string MetricsRegistry::MergedJsonSnapshot(
    const std::vector<const MetricsRegistry*>& parts) {
  return RenderJson(BuildMergedView(parts));
}

std::string MetricsRegistry::PrometheusText() const {
  return MergedPrometheusText({this});
}

std::string MetricsRegistry::JsonSnapshot() const {
  return RenderJson(BuildMergedView({this}));
}

}  // namespace quasaq::obs
