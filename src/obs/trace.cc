#include "obs/trace.h"

#include "obs/metrics.h"  // JsonEscapeString

namespace quasaq::obs {

namespace {

// "plan.enumerate" -> "plan"; names without a dot are their own
// category.
std::string CategoryOf(std::string_view name) {
  size_t dot = name.find('.');
  return std::string(dot == std::string_view::npos ? name
                                                   : name.substr(0, dot));
}

}  // namespace

int64_t Tracer::NewTrack(std::string_view name) {
  if (!options_.enabled) return 0;
  MutexLock lock(&mu_);
  int64_t track = next_track_++;
  track_names_.emplace(track, std::string(name));
  return track;
}

void Tracer::Record(Event event) {
  if (events_.size() >= options_.max_events) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void Tracer::Begin(int64_t track, std::string_view name, SimTime now,
                   Args args) {
  if (!options_.enabled) return;
  MutexLock lock(&mu_);
  open_spans_[track].emplace_back(name);
  Event event;
  event.phase = 'B';
  event.track = track;
  event.ts = now;
  event.name = std::string(name);
  event.category = CategoryOf(name);
  event.args = std::move(args);
  Record(std::move(event));
}

void Tracer::End(int64_t track, SimTime now, Args args) {
  if (!options_.enabled) return;
  MutexLock lock(&mu_);
  auto it = open_spans_.find(track);
  if (it == open_spans_.end() || it->second.empty()) {
    ++unbalanced_ends_;
    return;
  }
  std::string name = std::move(it->second.back());
  it->second.pop_back();
  Event event;
  event.phase = 'E';
  event.track = track;
  event.ts = now;
  event.category = CategoryOf(name);
  event.args = std::move(args);
  // Even past max_events, End must be recorded (minus the cap would
  // leave previously recorded Begins unclosed). Record drops only
  // B/i events because End bypasses it here.
  events_.push_back(std::move(event));
}

void Tracer::EndAll(int64_t track, SimTime now) {
  if (!options_.enabled) return;
  MutexLock lock(&mu_);
  auto it = open_spans_.find(track);
  if (it == open_spans_.end()) return;
  while (!it->second.empty()) {
    std::string name = std::move(it->second.back());
    it->second.pop_back();
    Event event;
    event.phase = 'E';
    event.track = track;
    event.ts = now;
    event.category = CategoryOf(name);
    events_.push_back(std::move(event));
  }
}

void Tracer::Instant(int64_t track, std::string_view name, SimTime now,
                     Args args) {
  if (!options_.enabled) return;
  MutexLock lock(&mu_);
  Event event;
  event.phase = 'i';
  event.track = track;
  event.ts = now;
  event.name = std::string(name);
  event.category = CategoryOf(name);
  event.args = std::move(args);
  Record(std::move(event));
}

int Tracer::OpenSpans(int64_t track) const {
  MutexLock lock(&mu_);
  auto it = open_spans_.find(track);
  return it == open_spans_.end() ? 0 : static_cast<int>(it->second.size());
}

size_t Tracer::event_count() const {
  MutexLock lock(&mu_);
  return events_.size();
}

size_t Tracer::dropped_events() const {
  MutexLock lock(&mu_);
  return dropped_;
}

size_t Tracer::unbalanced_ends() const {
  MutexLock lock(&mu_);
  return unbalanced_ends_;
}

std::vector<Tracer::Event> Tracer::snapshot() const {
  MutexLock lock(&mu_);
  return events_;
}

std::string Tracer::ChromeTraceJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  auto emit = [&](const std::string& body) {
    if (!first) out += ',';
    first = false;
    out += "\n  {" + body + "}";
  };
  // Metadata: name each track's row after its delivery.
  for (const auto& [track, name] : track_names_) {
    emit("\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(track) +
         ", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
         JsonEscapeString(name) + "\"}");
  }
  for (const Event& event : events_) {
    std::string body = "\"ph\": \"";
    body += event.phase;
    body += "\", \"pid\": 1, \"tid\": " + std::to_string(event.track) +
            ", \"ts\": " + std::to_string(event.ts);
    if (!event.name.empty()) {
      body += ", \"name\": \"" + JsonEscapeString(event.name) + "\"";
    }
    if (!event.category.empty()) {
      body += ", \"cat\": \"" + JsonEscapeString(event.category) + "\"";
    }
    if (event.phase == 'i') body += ", \"s\": \"t\"";  // thread-scoped
    if (!event.args.empty()) {
      body += ", \"args\": {";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) body += ", ";
        first_arg = false;
        body += "\"" + JsonEscapeString(key) + "\": \"" +
                JsonEscapeString(value) + "\"";
      }
      body += '}';
    }
    emit(body);
  }
  out += "\n]}\n";
  return out;
}

}  // namespace quasaq::obs
