#ifndef QUASAQ_OBS_OBSERVABILITY_H_
#define QUASAQ_OBS_OBSERVABILITY_H_

#include "obs/metrics.h"
#include "obs/trace.h"

// The observability context one system instance threads through its
// layers: a metrics registry and a tracer, created together so every
// subsystem reports into the same exposition surface. Instrumented
// components take an `Observability*` (or a `MetricsRegistry*` when
// they only count) and treat nullptr as "not observed".

namespace quasaq::obs {

class Observability {
 public:
  Observability() = default;
  explicit Observability(const Tracer::Options& trace_options)
      : tracer_(trace_options) {}

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
};

}  // namespace quasaq::obs

#endif  // QUASAQ_OBS_OBSERVABILITY_H_
