#ifndef QUASAQ_OBS_OBSERVABILITY_H_
#define QUASAQ_OBS_OBSERVABILITY_H_

#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

// The observability context one system instance threads through its
// layers: a metrics registry and a tracer, created together so every
// subsystem reports into the same exposition surface. Instrumented
// components take an `Observability*` (or a `MetricsRegistry*` when
// they only count) and treat nullptr as "not observed".
//
// When the session table shards (core/session_manager.h), each shard
// gets its own MetricsRegistry so per-session counters stop contending
// on shared atomics' cache lines; MergedPrometheusText/MergedJsonSnapshot
// render the main registry and every shard registry as one document.
// With no shard registries the merged exposition is byte-identical to
// the plain one.

namespace quasaq::obs {

class Observability {
 public:
  Observability() = default;
  explicit Observability(const Tracer::Options& trace_options)
      : tracer_(trace_options) {}

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// Allocates `count` per-shard registries (idempotent for the same
  /// count; growing re-allocation is not supported). Call once at
  /// construction time, before any thread resolves shard handles.
  void AllocateShardRegistries(int count) {
    if (static_cast<int>(shard_metrics_.size()) == count) return;
    shard_metrics_.clear();
    shard_metrics_.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
      shard_metrics_.push_back(std::make_unique<MetricsRegistry>());
    }
  }

  int shard_registry_count() const {
    return static_cast<int>(shard_metrics_.size());
  }

  /// Registry of shard `index` (must be < shard_registry_count()).
  MetricsRegistry& shard_metrics(int index) {
    return *shard_metrics_[static_cast<size_t>(index)];
  }

  /// Main + shard registries rendered as one Prometheus document /
  /// JSON snapshot: counters sum per series, histograms merge
  /// per-bucket (obs/metrics.h). With zero shard registries this is
  /// byte-identical to metrics().PrometheusText() / JsonSnapshot().
  std::string MergedPrometheusText() const {
    return MetricsRegistry::MergedPrometheusText(AllRegistries());
  }
  std::string MergedJsonSnapshot() const {
    return MetricsRegistry::MergedJsonSnapshot(AllRegistries());
  }

 private:
  std::vector<const MetricsRegistry*> AllRegistries() const {
    std::vector<const MetricsRegistry*> parts;
    parts.reserve(1 + shard_metrics_.size());
    parts.push_back(&metrics_);
    for (const auto& shard : shard_metrics_) parts.push_back(shard.get());
    return parts;
  }

  MetricsRegistry metrics_;
  // unique_ptr keeps registry addresses stable across the vector —
  // instrumented code caches raw Counter*/Histogram* handles into them.
  std::vector<std::unique_ptr<MetricsRegistry>> shard_metrics_;
  Tracer tracer_;
};

}  // namespace quasaq::obs

#endif  // QUASAQ_OBS_OBSERVABILITY_H_
