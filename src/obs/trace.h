#ifndef QUASAQ_OBS_TRACE_H_
#define QUASAQ_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "common/sync.h"

// Per-session delivery traces over simulated time. Every delivery gets
// its own *track* (rendered as one row), and the pipeline layers nest
// spans on it as the query moves through them:
//
//   delivery                              admit -> ... -> complete/abort
//   └─ delivery.admit                     facade-side admission
//      └─ plan.enumerate                  PlanStream consumption
//         └─ plan.reserve                 one Composite-API attempt
//   └─ session.stream                     playback (start -> end)
//      └─ session.renegotiate             mid-playback QoS change
//      └─ session.paused                  pause -> resume window
//
// Spans follow stack discipline per track (Begin/End pairs nest), which
// is exactly what the Chrome trace-event "B"/"E" phases encode, so
// `ChromeTraceJson()` loads directly in chrome://tracing or Perfetto
// (https://ui.perfetto.dev) with correct nesting — SimTime is already
// microseconds, the unit the format's "ts" field expects. Admission
// happens at one simulated instant, so admit-side spans render as
// zero-width slices at the admit time; the streaming/pause spans carry
// the real playback durations. The span hierarchy and how to open a
// trace are documented in docs/OBSERVABILITY.md.
//
// Thread-safe: one leaf mutex guards the event buffer and per-track
// span stacks, so lifecycle events may be emitted from inside
// SessionManager's critical section. A disabled tracer (Options::
// enabled = false) costs one branch per call and records nothing; a
// bounded buffer (`max_events`) drops-and-counts instead of growing
// without limit under long bench runs.

namespace quasaq::obs {

class Tracer {
 public:
  struct Options {
    bool enabled = true;
    // Hard cap on buffered events; once reached, Begin/Instant events
    // are dropped (and counted) but End events still close open spans
    // so nesting stays valid.
    size_t max_events = 1 << 20;
  };

  // Span/event arguments, rendered into the trace event's "args".
  using Args = std::vector<std::pair<std::string, std::string>>;

  struct Event {
    char phase = 'B';  // 'B' begin, 'E' end, 'i' instant
    int64_t track = 0;
    SimTime ts = 0;
    std::string name;  // empty on 'E' (the matching 'B' names the span)
    std::string category;
    Args args;
  };

  Tracer() = default;
  explicit Tracer(const Options& options) : options_(options) {}

  bool enabled() const { return options_.enabled; }

  /// Allocates a new track (one per delivery) and names its row.
  int64_t NewTrack(std::string_view name) QUASAQ_EXCLUDES(mu_);

  /// Opens a span on `track`. The category is the name's dotted prefix
  /// ("plan.enumerate" -> "plan").
  void Begin(int64_t track, std::string_view name, SimTime now,
             Args args = {}) QUASAQ_EXCLUDES(mu_);

  /// Closes the innermost open span on `track`. No-op when none is
  /// open (a mismatched End is a bug, surfaced via `unbalanced_ends`).
  void End(int64_t track, SimTime now, Args args = {}) QUASAQ_EXCLUDES(mu_);

  /// Closes every open span on `track` (terminal events: a cancelled
  /// session may die with stream + pause spans still open).
  void EndAll(int64_t track, SimTime now) QUASAQ_EXCLUDES(mu_);

  /// A point event on `track`.
  void Instant(int64_t track, std::string_view name, SimTime now,
               Args args = {}) QUASAQ_EXCLUDES(mu_);

  /// Open span count on `track` (0 for unknown tracks).
  int OpenSpans(int64_t track) const QUASAQ_EXCLUDES(mu_);

  size_t event_count() const QUASAQ_EXCLUDES(mu_);
  size_t dropped_events() const QUASAQ_EXCLUDES(mu_);
  size_t unbalanced_ends() const QUASAQ_EXCLUDES(mu_);

  /// Copy of the recorded events, in emission order (tests, exporters).
  std::vector<Event> snapshot() const QUASAQ_EXCLUDES(mu_);

  /// Chrome trace-event JSON: {"traceEvents": [...], ...}. Track names
  /// become thread names so Perfetto labels each delivery's row.
  std::string ChromeTraceJson() const QUASAQ_EXCLUDES(mu_);

 private:
  void Record(Event event) QUASAQ_REQUIRES(mu_);

  Options options_;
  mutable Mutex mu_;
  std::vector<Event> events_ QUASAQ_GUARDED_BY(mu_);
  // track -> names of currently open spans (a stack).
  std::unordered_map<int64_t, std::vector<std::string>> open_spans_
      QUASAQ_GUARDED_BY(mu_);
  std::unordered_map<int64_t, std::string> track_names_
      QUASAQ_GUARDED_BY(mu_);
  int64_t next_track_ QUASAQ_GUARDED_BY(mu_) = 1;
  size_t dropped_ QUASAQ_GUARDED_BY(mu_) = 0;
  size_t unbalanced_ends_ QUASAQ_GUARDED_BY(mu_) = 0;
};

}  // namespace quasaq::obs

#endif  // QUASAQ_OBS_TRACE_H_
