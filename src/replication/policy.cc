#include "replication/policy.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace quasaq::repl {

namespace {

// Demand lookup for eviction ranking: rate of the (content, level)
// stream a replica serves.
double DemandOf(const PlacementSnapshot& snapshot, LogicalOid content,
                int level) {
  for (const auto& [key, rate] : snapshot.demand) {
    if (key.content == content && key.ladder_level == level) return rate;
  }
  return 0.0;
}

}  // namespace

std::string ReplicationAction::ToString() const {
  if (kind == Kind::kCreate) {
    return "create content" + std::to_string(content.value()) + "/L" +
           std::to_string(ladder_level) + "@site" +
           std::to_string(site.value());
  }
  return "drop oid" + std::to_string(victim.value());
}

namespace {

// Shrinks cold non-master (content, level) groups to `min_copies`.
void PlanConsolidation(const PlacementSnapshot& snapshot,
                       const PolicyOptions& options,
                       std::vector<ReplicationAction>& actions) {
  // Group replicas by (content, level) and count copies.
  std::unordered_map<int64_t, std::vector<const PlacementEntry*>> groups;
  for (const PlacementEntry& entry : snapshot.replicas) {
    if (options.protect_master_level && entry.ladder_level == 0) continue;
    groups[entry.content.value() * 1000 + entry.ladder_level].push_back(
        &entry);
  }
  for (const auto& [key, members] : groups) {
    if (static_cast<int>(members.size()) <= options.min_copies) continue;
    if (DemandOf(snapshot, members.front()->content,
                 members.front()->ladder_level) > 0.0) {
      continue;  // still warm
    }
    for (size_t i = static_cast<size_t>(options.min_copies);
         i < members.size(); ++i) {
      if (static_cast<int>(actions.size()) >=
          options.max_actions_per_cycle) {
        return;
      }
      ReplicationAction drop;
      drop.kind = ReplicationAction::Kind::kDrop;
      drop.victim = members[i]->oid;
      actions.push_back(drop);
    }
  }
}

}  // namespace

std::vector<ReplicationAction> PlanReplicationActions(
    const PlacementSnapshot& snapshot, const PolicyOptions& options) {
  std::vector<ReplicationAction> actions;
  if (options.consolidate_cold_replicas) {
    PlanConsolidation(snapshot, options, actions);
  }

  // Free space per site (mutable working copy).
  std::unordered_map<int64_t, double> free_kb;
  std::unordered_set<int64_t> bounded_sites;
  for (const auto& [site, kb] : snapshot.free_kb) {
    free_kb[site.value()] = kb;
    bounded_sites.insert(site.value());
  }

  // Fast placement membership: (content, level, site) -> present.
  auto placement_key = [](LogicalOid content, int level, SiteId site) {
    return content.value() * 1000000 + level * 1000 + site.value();
  };
  std::unordered_set<int64_t> placed;
  for (const PlacementEntry& entry : snapshot.replicas) {
    placed.insert(
        placement_key(entry.content, entry.ladder_level, entry.site));
  }
  std::unordered_set<int64_t> dropped;  // victims already planned
  // Account for consolidation drops planned above: their space frees up
  // and their placement slots reopen.
  for (const ReplicationAction& action : actions) {
    if (action.kind != ReplicationAction::Kind::kDrop) continue;
    for (const PlacementEntry& entry : snapshot.replicas) {
      if (entry.oid != action.victim) continue;
      dropped.insert(entry.oid.value());
      placed.erase(placement_key(entry.content, entry.ladder_level,
                                 entry.site));
      if (bounded_sites.count(entry.site.value()) > 0) {
        free_kb[entry.site.value()] += entry.size_kb;
      }
      break;
    }
  }

  for (size_t d = 0; d < snapshot.demand.size(); ++d) {
    if (static_cast<int>(actions.size()) >= options.max_actions_per_cycle) {
      break;
    }
    const auto& [key, rate] = snapshot.demand[d];
    if (rate < options.create_threshold_per_second) break;  // sorted desc
    double replica_kb = snapshot.demand_replica_kb[d];

    // The content must have a master copy somewhere to transcode from.
    bool has_master = false;
    for (const PlacementEntry& entry : snapshot.replicas) {
      if (entry.content == key.content && entry.ladder_level == 0 &&
          dropped.count(entry.oid.value()) == 0) {
        has_master = true;
        break;
      }
    }
    if (!has_master) continue;

    for (SiteId site : snapshot.sites) {
      if (static_cast<int>(actions.size()) >=
          options.max_actions_per_cycle) {
        break;
      }
      if (placed.count(placement_key(key.content, key.ladder_level, site)) >
          0) {
        continue;  // already materialized there
      }

      // Make room when the site has a bounded store.
      if (bounded_sites.count(site.value()) > 0) {
        double& site_free = free_kb[site.value()];
        if (site_free < replica_kb) {
          // Evict the coldest evictable replicas at this site.
          std::vector<const PlacementEntry*> candidates;
          for (const PlacementEntry& entry : snapshot.replicas) {
            if (entry.site != site) continue;
            if (dropped.count(entry.oid.value()) > 0) continue;
            if (options.protect_master_level && entry.ladder_level == 0) {
              continue;
            }
            candidates.push_back(&entry);
          }
          std::sort(candidates.begin(), candidates.end(),
                    [&snapshot](const PlacementEntry* a,
                                const PlacementEntry* b) {
                      double da =
                          DemandOf(snapshot, a->content, a->ladder_level);
                      double db =
                          DemandOf(snapshot, b->content, b->ladder_level);
                      if (da != db) return da < db;
                      // Equal demand: a drop invalidates the victim's
                      // cached segments, so sacrifice the cache-cold
                      // replica and keep the warm one's hit ratio.
                      if (a->cache_warmth != b->cache_warmth) {
                        return a->cache_warmth < b->cache_warmth;
                      }
                      return a->oid.value() < b->oid.value();
                    });
          for (const PlacementEntry* victim : candidates) {
            if (site_free >= replica_kb) break;
            // Evicting something hotter than the newcomer is a loss.
            if (DemandOf(snapshot, victim->content, victim->ladder_level) >=
                rate) {
              break;
            }
            ReplicationAction drop;
            drop.kind = ReplicationAction::Kind::kDrop;
            drop.victim = victim->oid;
            actions.push_back(drop);
            dropped.insert(victim->oid.value());
            site_free += victim->size_kb;
          }
          if (site_free < replica_kb) continue;  // cannot make room
        }
        site_free -= replica_kb;
      }

      ReplicationAction create;
      create.kind = ReplicationAction::Kind::kCreate;
      create.content = key.content;
      create.ladder_level = key.ladder_level;
      create.site = site;
      actions.push_back(create);
      placed.insert(placement_key(key.content, key.ladder_level, site));
    }
  }
  return actions;
}

}  // namespace quasaq::repl
