#include "replication/access_tracker.h"

#include <algorithm>
#include <cassert>

namespace quasaq::repl {

AccessTracker::AccessTracker(SimTime window) : window_(window) {
  assert(window_ > 0);
}

void AccessTracker::Record(LogicalOid content, int ladder_level,
                           SimTime now) {
  DemandKey key{content, ladder_level};
  std::deque<SimTime>& events = events_[key];
  events.push_back(now);
  ++total_;
  Expire(events, now);
}

void AccessTracker::Expire(std::deque<SimTime>& events, SimTime now) const {
  while (!events.empty() && events.front() < now - window_) {
    events.pop_front();
  }
}

double AccessTracker::DemandRate(LogicalOid content, int ladder_level,
                                 SimTime now) {
  auto it = events_.find(DemandKey{content, ladder_level});
  if (it == events_.end()) return 0.0;
  Expire(it->second, now);
  return static_cast<double>(it->second.size()) /
         SimTimeToSeconds(window_);
}

std::vector<std::pair<DemandKey, double>> AccessTracker::RankedDemand(
    SimTime now) {
  std::vector<std::pair<DemandKey, double>> ranked;
  for (auto& [key, events] : events_) {
    Expire(events, now);
    if (events.empty()) continue;
    ranked.emplace_back(key, static_cast<double>(events.size()) /
                                 SimTimeToSeconds(window_));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              if (a.first.content != b.first.content) {
                return a.first.content < b.first.content;
              }
              return a.first.ladder_level < b.first.ladder_level;
            });
  return ranked;
}

}  // namespace quasaq::repl
