#ifndef QUASAQ_REPLICATION_POLICY_H_
#define QUASAQ_REPLICATION_POLICY_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "replication/access_tracker.h"

// Demand-driven replication policy. Given a snapshot of current demand,
// placement and free space, plans which replicas to materialize (by
// offline transcoding from a master copy) and which cold replicas to
// evict to make room. Pure function of its inputs, so it is directly
// testable; the ReplicationManager executes the returned actions.

namespace quasaq::repl {

// One replica as the policy sees it.
struct PlacementEntry {
  PhysicalOid oid;
  LogicalOid content;
  int ladder_level = 0;
  SiteId site;
  double size_kb = 0.0;
  // Fraction of the replica resident in its site's segment cache
  // ([0, 1]; 0 when the site has no cache). Dropping a replica also
  // invalidates its cached segments, so at equal demand the policy
  // evicts cache-cold replicas first.
  double cache_warmth = 0.0;
};

// Everything the policy may look at.
struct PlacementSnapshot {
  std::vector<PlacementEntry> replicas;
  std::vector<SiteId> sites;
  // Free storage per site, KB; empty (or missing site) = unlimited.
  std::vector<std::pair<SiteId, double>> free_kb;
  // Demand over the sliding window, most-demanded first.
  std::vector<std::pair<DemandKey, double>> demand;
  // Estimated size of a (content, level) replica, KB.
  // Index: same order as `demand`.
  std::vector<double> demand_replica_kb;
};

struct ReplicationAction {
  enum class Kind { kCreate, kDrop };
  Kind kind = Kind::kCreate;
  // kCreate: materialize (content, ladder_level) at `site`.
  LogicalOid content;
  int ladder_level = 0;
  SiteId site;
  // kDrop: evict this replica.
  PhysicalOid victim;

  std::string ToString() const;
};

struct PolicyOptions {
  // Demand rate (requests/s) above which a missing replica is created.
  double create_threshold_per_second = 0.05;
  // Upper bound on actions per planning cycle (creation is offline
  // transcoding work; throttle it).
  int max_actions_per_cycle = 4;
  // Never evict ladder level 0 (master copies).
  bool protect_master_level = true;
  // Consolidation (the migration half of the paper's "dynamic online
  // replication and migration"): when a non-master (content, level) has
  // seen no demand in the window, shrink it back to `min_copies`
  // replicas, reclaiming space for hotter content.
  bool consolidate_cold_replicas = false;
  int min_copies = 1;
};

/// Plans the next cycle's actions. Creates missing high-demand replicas
/// on every site (nearest data wins for the planner); when a site lacks
/// space, evicts its coldest non-master replicas first. Never plans a
/// drop of a replica it also plans to create.
std::vector<ReplicationAction> PlanReplicationActions(
    const PlacementSnapshot& snapshot, const PolicyOptions& options);

}  // namespace quasaq::repl

#endif  // QUASAQ_REPLICATION_POLICY_H_
