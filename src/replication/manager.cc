#include "replication/manager.h"

#include <cassert>

#include "common/logging.h"

namespace quasaq::repl {

ReplicationManager::ReplicationManager(
    sim::Simulator* simulator, meta::DistributedMetadataEngine* metadata,
    std::vector<storage::StorageManager*> stores,
    const media::QualityLadder& ladder, int64_t first_dynamic_oid,
    const Options& options)
    : simulator_(simulator),
      metadata_(metadata),
      stores_(std::move(stores)),
      ladder_(ladder),
      options_(options),
      tracker_(options.demand_window),
      next_oid_(first_dynamic_oid) {
  assert(simulator_ != nullptr);
  assert(metadata_ != nullptr);
  assert(!stores_.empty());
}

void ReplicationManager::Start() {
  if (timer_ != nullptr) return;
  timer_ = std::make_unique<sim::PeriodicTask>(
      simulator_, options_.period, [this] { RunCycle(); });
}

void ReplicationManager::Stop() {
  if (timer_ != nullptr) timer_->Stop();
}

void ReplicationManager::RecordDemand(LogicalOid content, int ladder_level) {
  tracker_.Record(content, ladder_level, simulator_->Now());
}

storage::StorageManager* ReplicationManager::StoreFor(SiteId site) {
  for (storage::StorageManager* store : stores_) {
    if (store->site() == site) return store;
  }
  return nullptr;
}

PlacementSnapshot ReplicationManager::BuildSnapshot() {
  PlacementSnapshot snapshot;
  for (storage::StorageManager* store : stores_) {
    snapshot.sites.push_back(store->site());
    if (store->store().capacity_kb() > 0.0) {
      snapshot.free_kb.emplace_back(
          store->site(),
          store->store().capacity_kb() - store->store().used_kb());
    }
  }
  // Placement: every replica registered in metadata whose quality matches
  // a ladder level.
  for (LogicalOid content : metadata_->AllContentIds()) {
    SiteId owner = metadata_->OwnerOf(content);
    for (const media::ReplicaInfo& replica :
         metadata_->ReplicasOf(owner, content)) {
      for (size_t level = 0; level < ladder_.levels.size(); ++level) {
        if (replica.qos == ladder_.levels[level]) {
          double warmth =
              cache_ != nullptr
                  ? cache_->CachedFraction(replica.site, replica)
                  : 0.0;
          snapshot.replicas.push_back(PlacementEntry{
              replica.id, content, static_cast<int>(level), replica.site,
              replica.size_kb, warmth});
          break;
        }
      }
    }
  }
  snapshot.demand = tracker_.RankedDemand(simulator_->Now());
  // Sizing estimate per demanded (content, level).
  for (const auto& [key, rate] : snapshot.demand) {
    double kb = 0.0;
    if (key.ladder_level >= 0 &&
        key.ladder_level < static_cast<int>(ladder_.levels.size())) {
      auto content = metadata_->FindContent(metadata_->OwnerOf(key.content),
                                            key.content);
      if (content.has_value()) {
        kb = media::EstimateBitrateKBps(
                 ladder_.levels[static_cast<size_t>(key.ladder_level)]) *
             content->duration_seconds;
      }
    }
    snapshot.demand_replica_kb.push_back(kb);
  }
  return snapshot;
}

void ReplicationManager::RunCycle() {
  ++stats_.cycles;
  PlacementSnapshot snapshot = BuildSnapshot();
  std::vector<ReplicationAction> actions =
      PlanReplicationActions(snapshot, options_.policy);
  for (const ReplicationAction& action : actions) {
    if (action.kind == ReplicationAction::Kind::kDrop) {
      ExecuteDrop(action);
    } else {
      ExecuteCreate(action);
    }
  }
}

void ReplicationManager::ExecuteDrop(const ReplicationAction& action) {
  // Free the physical copy (if any store holds it) and unregister the
  // distribution metadata so the planner stops seeing the replica.
  // In-flight sessions keep their reservations; eviction only removes
  // the replica as a future plan option.
  for (storage::StorageManager* store : stores_) {
    if (store->store().Contains(action.victim)) {
      Status status = store->store().Delete(action.victim);
      assert(status.ok());
      (void)status;
      break;
    }
  }
  if (cache_ != nullptr) cache_->EraseReplica(action.victim);
  Status status = metadata_->EraseReplica(action.victim);
  if (status.ok()) {
    ++stats_.dropped;
    QUASAQ_LOG(kDebug) << "replication: " << action.ToString();
  }
}

void ReplicationManager::ExecuteCreate(const ReplicationAction& action) {
  auto content = metadata_->FindContent(metadata_->OwnerOf(action.content),
                                        action.content);
  if (!content.has_value()) {
    ++stats_.create_failures;
    return;
  }
  media::ReplicaInfo replica;
  replica.id = PhysicalOid(next_oid_++);
  replica.content = action.content;
  replica.site = action.site;
  replica.qos = ladder_.levels[static_cast<size_t>(action.ladder_level)];
  replica.duration_seconds = content->duration_seconds;
  replica.frame_seed = static_cast<uint64_t>(replica.id.value()) * 97 + 5;
  media::FinalizeReplicaSizing(replica);

  // Offline transcoding takes simulated time before the copy exists.
  SimTime transcode_time = SecondsToSimTime(
      replica.size_kb / options_.transcode_throughput_kbps);
  simulator_->ScheduleAfter(transcode_time, [this, replica] {
    storage::StorageManager* store = StoreFor(replica.site);
    if (store == nullptr) {
      ++stats_.create_failures;
      return;
    }
    Status status = store->store().Put(replica);
    if (!status.ok()) {
      // Lost a space race with another creation; count and move on.
      ++stats_.create_failures;
      return;
    }
    status = metadata_->InsertReplica(replica);
    if (!status.ok()) {
      ++stats_.create_failures;
      Status undo = store->store().Delete(replica.id);
      (void)undo;
      return;
    }
    ++stats_.created;
    QUASAQ_LOG(kDebug) << "replication: materialized oid"
                       << replica.id.value() << " ("
                       << media::AppQosToString(replica.qos) << ") at site"
                       << replica.site.value();
  });
}

}  // namespace quasaq::repl
