#ifndef QUASAQ_REPLICATION_MANAGER_H_
#define QUASAQ_REPLICATION_MANAGER_H_

#include <memory>
#include <vector>

#include "cache/cache_manager.h"
#include "common/ids.h"
#include "media/library.h"
#include "metadata/distributed_engine.h"
#include "replication/access_tracker.h"
#include "replication/policy.h"
#include "simcore/simulator.h"
#include "storage/storage_manager.h"

// Dynamic online replication and migration (paper §2 item 1 — deferred
// to a follow-up paper there, implemented here). A periodic manager
// observes per-(content, quality) demand, asks the policy which replicas
// to materialize or evict, and executes the actions: creation is offline
// transcoding from a master copy (it takes simulated time proportional
// to the object size before the new replica becomes plannable), eviction
// frees storage and unregisters distribution metadata immediately.

namespace quasaq::repl {

class ReplicationManager {
 public:
  struct Options {
    SimTime period = 30 * kSecond;        // planning cycle
    SimTime demand_window = 120 * kSecond;
    PolicyOptions policy;
    // Offline transcoder throughput (output KB/s); creation of a
    // replica of size S takes S / throughput seconds.
    double transcode_throughput_kbps = 4000.0;
  };

  struct Stats {
    uint64_t cycles = 0;
    uint64_t created = 0;
    uint64_t dropped = 0;
    uint64_t create_failures = 0;  // lost source / storage races
  };

  /// `metadata` and every storage manager must outlive the manager.
  /// Stores must already hold the initial replicas. `first_dynamic_oid`
  /// seeds the physical-OID allocator for created replicas.
  ReplicationManager(sim::Simulator* simulator,
                     meta::DistributedMetadataEngine* metadata,
                     std::vector<storage::StorageManager*> stores,
                     const media::QualityLadder& ladder,
                     int64_t first_dynamic_oid, const Options& options);

  /// Begins the periodic planning cycles.
  void Start();
  void Stop();

  /// Records one query's demand: `content` served best by a
  /// `ladder_level` replica.
  void RecordDemand(LogicalOid content, int ladder_level);

  /// Runs one planning cycle immediately (also used by Start's timer).
  void RunCycle();

  const Stats& stats() const { return stats_; }
  const AccessTracker& tracker() const { return tracker_; }

  /// Attaches the per-site segment caches (non-owning; nullptr
  /// detaches). Snapshots then carry each replica's cache warmth into
  /// the eviction ranking, and dropping a replica invalidates its
  /// cached segments everywhere.
  void set_cache(cache::CacheManager* cache) { cache_ = cache; }

 private:
  PlacementSnapshot BuildSnapshot();
  void ExecuteCreate(const ReplicationAction& action);
  void ExecuteDrop(const ReplicationAction& action);
  storage::StorageManager* StoreFor(SiteId site);

  sim::Simulator* simulator_;
  meta::DistributedMetadataEngine* metadata_;
  std::vector<storage::StorageManager*> stores_;
  media::QualityLadder ladder_;
  Options options_;
  cache::CacheManager* cache_ = nullptr;
  AccessTracker tracker_;
  int64_t next_oid_;
  Stats stats_;
  std::unique_ptr<sim::PeriodicTask> timer_;
};

}  // namespace quasaq::repl

#endif  // QUASAQ_REPLICATION_MANAGER_H_
