#ifndef QUASAQ_REPLICATION_ACCESS_TRACKER_H_
#define QUASAQ_REPLICATION_ACCESS_TRACKER_H_

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"

// Access-pattern tracking for dynamic replication (paper §2 item 1: "the
// total number and choice of QoS of pre-stored media replicas should
// reflect the access pattern of media content. Therefore, dynamic online
// replication and migration has to be performed to make the system
// converge to the current status of user requests").
//
// The tracker records, per (logical object, quality-ladder level), the
// demand observed over a sliding window; the replication policy reads
// demand rates from it.

namespace quasaq::repl {

// Key of one demand stream: which content at which ladder level.
struct DemandKey {
  LogicalOid content;
  int ladder_level = 0;

  friend bool operator==(const DemandKey& a, const DemandKey& b) = default;
};

struct DemandKeyHash {
  size_t operator()(const DemandKey& key) const {
    return std::hash<int64_t>()(key.content.value() * 31 +
                                key.ladder_level);
  }
};

class AccessTracker {
 public:
  /// `window` is the sliding-window length for rate estimation.
  explicit AccessTracker(SimTime window);

  /// Records one request for `content` that a `ladder_level` replica
  /// would (ideally) serve, observed at time `now`.
  void Record(LogicalOid content, int ladder_level, SimTime now);

  /// Requests per second for (content, level) over the window ending at
  /// `now`.
  double DemandRate(LogicalOid content, int ladder_level, SimTime now);

  /// All keys with at least one request in the window ending at `now`,
  /// most-demanded first.
  std::vector<std::pair<DemandKey, double>> RankedDemand(SimTime now);

  /// Total requests recorded (lifetime).
  uint64_t total_requests() const { return total_; }

 private:
  void Expire(std::deque<SimTime>& events, SimTime now) const;

  SimTime window_;
  uint64_t total_ = 0;
  std::unordered_map<DemandKey, std::deque<SimTime>, DemandKeyHash> events_;
};

}  // namespace quasaq::repl

#endif  // QUASAQ_REPLICATION_ACCESS_TRACKER_H_
