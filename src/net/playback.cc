#include "net/playback.h"

#include <algorithm>

namespace quasaq::net {

PlaybackReport SimulateClientPlayback(
    const std::vector<SimTime>& server_frame_times,
    const PlaybackOptions& options) {
  PlaybackReport report;
  report.frames = static_cast<int>(server_frame_times.size());
  if (server_frame_times.empty()) return report;

  Rng rng(options.jitter_seed);
  std::vector<SimTime> arrivals;
  arrivals.reserve(server_frame_times.size());
  for (SimTime t : server_frame_times) {
    SimTime jitter = options.max_network_jitter > 0
                         ? rng.UniformInt(0, options.max_network_jitter)
                         : 0;
    arrivals.push_back(t + options.network_delay + jitter);
  }
  // Frames may overtake each other only marginally (jitter); the player
  // consumes them in order, so order the arrival times.
  std::sort(arrivals.begin(), arrivals.end());

  const SimTime frame_interval =
      SecondsToSimTime(1.0 / options.frame_rate);
  SimTime playback_start = arrivals.front() + options.startup_buffer;
  report.startup_latency = playback_start - server_frame_times.front();

  SimTime shift = 0;  // accumulated rebuffering shift
  bool in_stall = false;
  for (size_t i = 0; i < arrivals.size(); ++i) {
    SimTime deadline =
        playback_start + static_cast<SimTime>(i) * frame_interval + shift;
    if (arrivals[i] > deadline) {
      ++report.late_frames;
      report.total_stall += arrivals[i] - deadline;
      shift += arrivals[i] - deadline;
      if (!in_stall) {
        ++report.underruns;
        in_stall = true;
      }
    } else {
      in_stall = false;
    }
  }
  return report;
}

}  // namespace quasaq::net
