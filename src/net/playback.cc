#include "net/playback.h"

#include <algorithm>

namespace quasaq::net {

namespace {

void RecordPlayback(obs::MetricsRegistry& registry,
                    const PlaybackReport& report,
                    const std::vector<SimTime>& arrivals) {
  registry.GetCounter("quasaq_playback_frames_total", "Frames played out")
      ->Increment(report.frames);
  registry
      .GetCounter("quasaq_playback_qos_violations_total",
                  "Frames that missed their playout deadline")
      ->Increment(report.late_frames);
  registry
      .GetCounter("quasaq_playback_underruns_total",
                  "Rebuffering events (runs of late frames)")
      ->Increment(report.underruns);
  registry
      .GetHistogram("quasaq_playback_startup_latency_ms",
                    "First server frame to playback start",
                    obs::HistogramOptions{/*first_bound=*/50.0,
                                          /*growth=*/2.0,
                                          /*bucket_count=*/10})
      ->Observe(SimTimeToSeconds(report.startup_latency) * 1000.0);
  obs::Histogram* interframe = registry.GetHistogram(
      "quasaq_playback_interframe_delay_ms",
      "Client-side gap between consecutive frame arrivals",
      obs::HistogramOptions{/*first_bound=*/1.0, /*growth=*/2.0,
                            /*bucket_count=*/12});
  for (size_t i = 1; i < arrivals.size(); ++i) {
    interframe->Observe(SimTimeToSeconds(arrivals[i] - arrivals[i - 1]) *
                        1000.0);
  }
}

}  // namespace

PlaybackReport SimulateClientPlayback(
    const std::vector<SimTime>& server_frame_times,
    const PlaybackOptions& options, obs::MetricsRegistry* metrics) {
  PlaybackReport report;
  report.frames = static_cast<int>(server_frame_times.size());
  if (server_frame_times.empty()) return report;

  Rng rng(options.jitter_seed);
  std::vector<SimTime> arrivals;
  arrivals.reserve(server_frame_times.size());
  for (SimTime t : server_frame_times) {
    SimTime jitter = options.max_network_jitter > 0
                         ? rng.UniformInt(0, options.max_network_jitter)
                         : 0;
    arrivals.push_back(t + options.network_delay + jitter);
  }
  // Frames may overtake each other only marginally (jitter); the player
  // consumes them in order, so order the arrival times.
  std::sort(arrivals.begin(), arrivals.end());

  const SimTime frame_interval =
      SecondsToSimTime(1.0 / options.frame_rate);
  SimTime playback_start = arrivals.front() + options.startup_buffer;
  report.startup_latency = playback_start - server_frame_times.front();

  SimTime shift = 0;  // accumulated rebuffering shift
  bool in_stall = false;
  for (size_t i = 0; i < arrivals.size(); ++i) {
    SimTime deadline =
        playback_start + static_cast<SimTime>(i) * frame_interval + shift;
    if (arrivals[i] > deadline) {
      ++report.late_frames;
      report.total_stall += arrivals[i] - deadline;
      shift += arrivals[i] - deadline;
      if (!in_stall) {
        ++report.underruns;
        in_stall = true;
      }
    } else {
      in_stall = false;
    }
  }
  if (metrics != nullptr) RecordPlayback(*metrics, report, arrivals);
  return report;
}

}  // namespace quasaq::net
