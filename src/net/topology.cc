#include "net/topology.h"

#include <cassert>

namespace quasaq::net {

Topology Topology::PaperTestbed() { return Uniform(3); }

Topology Topology::Uniform(int n) {
  assert(n > 0);
  Topology topology;
  for (int i = 0; i < n; ++i) {
    ServerSpec spec;
    spec.id = SiteId(i);
    topology.servers.push_back(spec);
  }
  return topology;
}

std::vector<SiteId> Topology::SiteIds() const {
  std::vector<SiteId> out;
  out.reserve(servers.size());
  for (const ServerSpec& s : servers) out.push_back(s.id);
  return out;
}

const ServerSpec* Topology::Find(SiteId id) const {
  for (const ServerSpec& s : servers) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

NetworkModel::NetworkModel(sim::Simulator* simulator,
                           const Topology& topology)
    : topology_(topology) {
  for (const ServerSpec& spec : topology_.servers) {
    links_.emplace(spec.id, std::make_unique<sim::FluidServer>(
                                simulator, spec.outbound_kbps));
  }
}

sim::FluidServer& NetworkModel::OutboundLink(SiteId site) {
  auto it = links_.find(site);
  assert(it != links_.end());
  return *it->second;
}

}  // namespace quasaq::net
