#include "net/rtp.h"

#include <cassert>
#include <cmath>

namespace quasaq::net {

media::AppQos StreamTransform::DeliveredQos(
    const media::ReplicaInfo& replica) const {
  return transcode_target.value_or(replica.qos);
}

double StreamWireRateKbps(const media::ReplicaInfo& replica,
                          const StreamTransform& transform) {
  media::FrameDropEffect effect = media::ComputeFrameDropEffect(
      media::GopPattern::StandardFor(replica.qos.format), transform.drop);
  return media::EstimateBitrateKBps(transform.DeliveredQos(replica)) *
         effect.bandwidth_factor;
}

double StreamCpuFraction(const media::ReplicaInfo& replica,
                         const StreamTransform& transform,
                         const media::StreamingCpuCost& cost) {
  media::FrameDropEffect effect = media::ComputeFrameDropEffect(
      media::GopPattern::StandardFor(replica.qos.format), transform.drop);
  double source_fps = replica.qos.frame_rate;
  double delivered_fps = source_fps * effect.frame_rate_factor;
  double wire_rate = StreamWireRateKbps(replica, transform);
  double mean_out_kb = delivered_fps > 0.0 ? wire_rate / delivered_fps : 0.0;
  double transcode_ms_per_second =
      transform.transcode_target.has_value()
          ? media::TranscodeCpuMsPerSecond(replica.qos,
                                           *transform.transcode_target)
          : 0.0;
  double ms_per_second =
      transcode_ms_per_second + cost.FrameMs(mean_out_kb) * delivered_fps +
      media::EncryptionCpuMsPerKb(transform.encryption) * wire_rate;
  return ms_per_second / 1000.0;
}

media::AppQos StreamDeliveredQos(const media::ReplicaInfo& replica,
                                 const StreamTransform& transform) {
  media::FrameDropEffect effect = media::ComputeFrameDropEffect(
      media::GopPattern::StandardFor(replica.qos.format), transform.drop);
  media::AppQos qos = transform.DeliveredQos(replica);
  qos.frame_rate *= effect.frame_rate_factor;
  return qos;
}

RtpStreamingSession::RtpStreamingSession(sim::Simulator* simulator,
                                         const media::ReplicaInfo& replica,
                                         const StreamTransform& transform,
                                         const RtpSessionOptions& options)
    : simulator_(simulator),
      replica_(replica),
      transform_(transform),
      options_(options) {
  assert(simulator_ != nullptr);
  delivered_qos_ = transform_.DeliveredQos(replica_);
  if (transform_.transcode_target.has_value()) {
    output_scale_ = media::EstimateBitrateKBps(delivered_qos_) /
                    media::EstimateBitrateKBps(replica_.qos);
    transcode_ms_per_frame_ =
        media::TranscodeCpuMsPerSecond(replica_.qos, delivered_qos_) /
        replica_.qos.frame_rate;
  }
  media::GopPattern pattern =
      media::GopPattern::StandardFor(replica_.qos.format);
  media::FrameDropEffect drop_effect =
      media::ComputeFrameDropEffect(pattern, transform_.drop);
  wire_rate_kbps_ = media::EstimateBitrateKBps(delivered_qos_) *
                    drop_effect.bandwidth_factor;
  frames_ = std::make_unique<media::FrameSizeGenerator>(
      pattern, replica_.bitrate_kbps, replica_.qos.frame_rate,
      replica_.frame_seed, options_.vbr);
}

RtpStreamingSession::~RtpStreamingSession() { Stop(); }

void RtpStreamingSession::AttachTimeSharing(
    res::TimeSharingCpuScheduler* scheduler) {
  assert(scheduler_ == nullptr && "already attached");
  cpu_task_ = std::make_unique<res::WorkQueueTask>(scheduler);
  scheduler->AddTask(cpu_task_.get());
  scheduler_ = scheduler;
}

Status RtpStreamingSession::AttachReserved(
    res::ReservationCpuScheduler* scheduler, double cpu_fraction) {
  assert(scheduler_ == nullptr && "already attached");
  auto task = std::make_unique<res::WorkQueueTask>(scheduler);
  Status status = scheduler->AddReservedTask(task.get(), cpu_fraction);
  if (!status.ok()) return status;
  cpu_task_ = std::move(task);
  scheduler_ = scheduler;
  return Status::Ok();
}

Status RtpStreamingSession::AttachRelay(
    res::ReservationCpuScheduler* source_scheduler, double cpu_fraction,
    SimTime hop_latency) {
  assert(cpu_task_ != nullptr && "attach the delivery CPU first");
  assert(relay_task_ == nullptr && "relay already attached");
  auto task = std::make_unique<res::WorkQueueTask>(source_scheduler);
  Status status = source_scheduler->AddReservedTask(task.get(), cpu_fraction);
  if (!status.ok()) return status;
  relay_task_ = std::move(task);
  // Spread the reserved forwarding budget over the source byte stream.
  relay_work_per_kb_ms_ =
      cpu_fraction * 1000.0 / replica_.bitrate_kbps;
  relay_hop_latency_ = hop_latency;
  return Status::Ok();
}

int RtpStreamingSession::TotalSourceFrames() const {
  int from_duration = static_cast<int>(
      std::floor(replica_.duration_seconds * replica_.qos.frame_rate));
  if (options_.max_source_frames > 0) {
    return std::min(options_.max_source_frames, from_duration);
  }
  return from_duration;
}

double RtpStreamingSession::CpuDemandFraction() const {
  return StreamCpuFraction(replica_, transform_, options_.cpu_cost);
}

void RtpStreamingSession::Start(FinishedCallback on_finished) {
  assert(cpu_task_ != nullptr && "call AttachTimeSharing/AttachReserved");
  assert(!started_);
  started_ = true;
  on_finished_ = std::move(on_finished);
  if (TotalSourceFrames() == 0) {
    finished_ = true;
    if (on_finished_) on_finished_();
    return;
  }
  ScheduleNextFrame(0);
}

void RtpStreamingSession::Stop() {
  if (pending_frame_event_ != sim::kInvalidEventId) {
    simulator_->Cancel(pending_frame_event_);
    pending_frame_event_ = sim::kInvalidEventId;
  }
  // Dropping the tasks also drops any frames still queued on the CPUs.
  cpu_task_.reset();
  relay_task_.reset();
  source_exhausted_ = true;
}

void RtpStreamingSession::ScheduleNextFrame(SimTime delay) {
  pending_frame_event_ =
      simulator_->ScheduleAfter(delay, [this] { HandleSourceFrame(); });
}

void RtpStreamingSession::HandleSourceFrame() {
  pending_frame_event_ = sim::kInvalidEventId;
  media::FrameInfo frame = frames_->Next();
  if (frame.index_in_gop == 0) b_ordinal_in_gop_ = 0;
  int b_ordinal = 0;
  if (frame.type == media::FrameType::kB) b_ordinal = b_ordinal_in_gop_++;

  ++source_frame_index_;
  const bool last_frame = source_frame_index_ >= TotalSourceFrames();

  double cpu_ms = transcode_ms_per_frame_;
  bool survives =
      media::FrameSurvivesDrop(transform_.drop, frame.type, b_ordinal);
  // Relayed plans forward every source frame (the transfer precedes
  // transcode/drop in the activity order), even ones dropped later.
  double relay_ms =
      relay_task_ != nullptr ? relay_work_per_kb_ms_ * frame.size_kb : 0.0;
  if (!survives) {
    // The frame consumes its transcode work but produces no output;
    // charge that work to the next delivered frame.
    carried_cpu_ms_ += cpu_ms;
    if (relay_task_ != nullptr && relay_ms > 0.0) {
      relay_task_->Submit(relay_ms, nullptr);
    }
    if (!last_frame) {
      ScheduleNextFrame(0);
    } else {
      source_exhausted_ = true;
      if (frames_in_flight_ == 0 && !finished_) {
        finished_ = true;
        if (on_finished_) on_finished_();
      }
    }
    return;
  }

  double output_kb = frame.size_kb * output_scale_;
  cpu_ms += options_.cpu_cost.FrameMs(output_kb) +
            media::EncryptionCpuMsPerKb(transform_.encryption) * output_kb;
  cpu_ms += carried_cpu_ms_;
  carried_cpu_ms_ = 0.0;

  ++frames_in_flight_;
  auto deliver = [this, cpu_ms] {
    cpu_task_->Submit(cpu_ms, [this](SimTime completion) {
      --frames_in_flight_;
      ++delivered_frames_;
      if (completion_times_.size() < options_.record_limit) {
        completion_times_.push_back(completion);
      }
      if (source_exhausted_ && frames_in_flight_ == 0 && !finished_) {
        finished_ = true;
        if (on_finished_) on_finished_();
      }
    });
  };
  if (relay_task_ != nullptr) {
    // Pipeline: forward at the source, cross the server network, then
    // process at the delivery site.
    relay_task_->Submit(std::max(relay_ms, 1e-6), [this, deliver](SimTime) {
      simulator_->ScheduleAfter(relay_hop_latency_, deliver);
    });
  } else {
    deliver();
  }

  if (!last_frame) {
    // Transmission pacing: the next frame is handled once this frame's
    // bytes have left at the delivered wire rate.
    double seconds = output_kb / wire_rate_kbps_;
    ScheduleNextFrame(SecondsToSimTime(seconds));
  } else {
    source_exhausted_ = true;
  }
}

RunningStats RtpStreamingSession::InterFrameDelayStats() const {
  RunningStats stats;
  for (size_t i = 1; i < completion_times_.size(); ++i) {
    stats.Add(SimTimeToMillis(completion_times_[i] - completion_times_[i - 1]));
  }
  return stats;
}

RunningStats RtpStreamingSession::InterGopDelayStats(int gop_frames) const {
  RunningStats stats;
  assert(gop_frames > 0);
  size_t step = static_cast<size_t>(gop_frames);
  for (size_t i = step; i < completion_times_.size(); i += step) {
    stats.Add(SimTimeToMillis(completion_times_[i] - completion_times_[i - step]));
  }
  return stats;
}

}  // namespace quasaq::net
