#ifndef QUASAQ_NET_RTP_H_
#define QUASAQ_NET_RTP_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/sim_time.h"
#include "common/stats.h"
#include "media/activities.h"
#include "media/frames.h"
#include "media/video.h"
#include "resource/cpu_scheduler.h"
#include "simcore/simulator.h"

// RTP-like streaming transport (the Transport API of §3.5, stand-in for
// the live.com-based streamer of the prototype). A session walks the
// replica's VBR frame sequence, paced by transmission (frame i+1 is
// handled once frame i's bytes have left at the delivered bitrate),
// applies the plan's server activities (transcode / frame-drop /
// encrypt), and submits the per-frame CPU work to a CpuScheduler.
//
// The simulated time at which each delivered frame's processing
// completes is recorded server-side; consecutive differences are the
// paper's inter-frame delays (Figure 5, Table 2).

namespace quasaq::net {

// The in-band processing a plan applies to the stream.
struct StreamTransform {
  media::FrameDropStrategy drop = media::FrameDropStrategy::kNone;
  // Online transcode target; empty = deliver the stored quality.
  std::optional<media::AppQos> transcode_target;
  media::EncryptionAlgorithm encryption = media::EncryptionAlgorithm::kNone;

  /// The quality actually delivered (transcode target or the stored
  /// quality of `replica`).
  media::AppQos DeliveredQos(const media::ReplicaInfo& replica) const;
};

/// Average wire rate (KB/s) of `replica` delivered under `transform`
/// (bitrate of the delivered quality scaled by the drop strategy's
/// surviving-bytes factor).
double StreamWireRateKbps(const media::ReplicaInfo& replica,
                          const StreamTransform& transform);

/// CPU fraction of one server CPU needed to deliver `replica` under
/// `transform`: online transcode of every source frame, packetization of
/// every surviving frame, and encryption of every wire byte.
double StreamCpuFraction(const media::ReplicaInfo& replica,
                         const StreamTransform& transform,
                         const media::StreamingCpuCost& cost);

/// The quality actually observed by the client: the delivered quality
/// with its frame rate scaled by the drop strategy's surviving-frames
/// factor.
media::AppQos StreamDeliveredQos(const media::ReplicaInfo& replica,
                                 const StreamTransform& transform);

struct RtpSessionOptions {
  media::StreamingCpuCost cpu_cost;
  // VBR noise of the frame sequence. The defaults are calibrated to the
  // prototype's measurements: I/B/P size spread dominates inter-frame
  // variance while GOP-level sums stay nearly constant (Table 2).
  media::FrameSizeGenerator::Options vbr{/*gop_noise_sd=*/0.01,
                                         /*frame_noise_sd=*/0.05};
  // Stop after this many source frames; 0 = the replica's full duration.
  int max_source_frames = 0;
  // Keep at most this many per-frame completion times (0 = keep none;
  // background-load sessions use that to stay cheap).
  size_t record_limit = 4096;
};

class RtpStreamingSession {
 public:
  using FinishedCallback = std::function<void()>;

  /// The session creates its own WorkQueueTask on `scheduler`; for a
  /// time-sharing CPU, AddTask() it there first via AttachTimeSharing,
  /// or reserve it on a ReservationCpuScheduler via AttachReserved.
  RtpStreamingSession(sim::Simulator* simulator,
                      const media::ReplicaInfo& replica,
                      const StreamTransform& transform,
                      const RtpSessionOptions& options);
  ~RtpStreamingSession();

  RtpStreamingSession(const RtpStreamingSession&) = delete;
  RtpStreamingSession& operator=(const RtpStreamingSession&) = delete;

  /// Registers the session's CPU task on a time-sharing scheduler
  /// (plain VDBMS mode). Call exactly one Attach* before Start().
  void AttachTimeSharing(res::TimeSharingCpuScheduler* scheduler);

  /// Reserves `cpu_fraction` on a reservation scheduler (QuaSAQ mode).
  Status AttachReserved(res::ReservationCpuScheduler* scheduler,
                        double cpu_fraction);

  /// For relayed plans (delivery site != source site): frames are first
  /// forwarded at the source — consuming `cpu_fraction` of the source
  /// CPU, reserved on `source_scheduler` — and cross the server network
  /// with `hop_latency` before the delivery site processes them. Call
  /// after Attach*, before Start().
  Status AttachRelay(res::ReservationCpuScheduler* source_scheduler,
                     double cpu_fraction, SimTime hop_latency);

  /// Begins streaming at the current simulated time.
  void Start(FinishedCallback on_finished = nullptr);

  /// Stops early (no more frames are scheduled; no callback fires).
  void Stop();

  bool finished() const { return finished_; }
  int delivered_frames() const { return delivered_frames_; }
  int source_frames() const { return source_frame_index_; }

  /// Average wire rate of the delivered stream, KB/s (after transcode
  /// and frame dropping).
  double WireRateKbps() const { return wire_rate_kbps_; }

  /// CPU fraction this stream needs on the serving CPU (used both for
  /// reservations and for the plan's resource vector).
  double CpuDemandFraction() const;

  /// Completion times of the first `record_limit` delivered frames.
  const std::vector<SimTime>& frame_completion_times() const {
    return completion_times_;
  }

  /// Inter-frame delay statistics (milliseconds) over recorded frames.
  RunningStats InterFrameDelayStats() const;

  /// Inter-GOP delay statistics (milliseconds): deltas between the
  /// completion times of every `gop_frames`-th recorded frame.
  RunningStats InterGopDelayStats(int gop_frames = 15) const;

 private:
  void ScheduleNextFrame(SimTime delay);
  void HandleSourceFrame();
  int TotalSourceFrames() const;

  sim::Simulator* simulator_;
  media::ReplicaInfo replica_;
  StreamTransform transform_;
  RtpSessionOptions options_;

  media::AppQos delivered_qos_;
  double output_scale_ = 1.0;      // output bytes per input byte
  double wire_rate_kbps_ = 0.0;    // average delivered KB/s
  double transcode_ms_per_frame_ = 0.0;

  std::unique_ptr<media::FrameSizeGenerator> frames_;
  std::unique_ptr<res::WorkQueueTask> cpu_task_;
  res::CpuScheduler* scheduler_ = nullptr;
  // Relay pipeline (optional).
  std::unique_ptr<res::WorkQueueTask> relay_task_;
  double relay_work_per_kb_ms_ = 0.0;
  SimTime relay_hop_latency_ = 0;

  FinishedCallback on_finished_;
  sim::EventId pending_frame_event_ = sim::kInvalidEventId;
  int source_frame_index_ = 0;
  int delivered_frames_ = 0;
  int b_ordinal_in_gop_ = 0;
  double carried_cpu_ms_ = 0.0;  // work from frames that produced no output
  int frames_in_flight_ = 0;
  bool started_ = false;
  bool finished_ = false;
  bool source_exhausted_ = false;
  std::vector<SimTime> completion_times_;
};

}  // namespace quasaq::net

#endif  // QUASAQ_NET_RTP_H_
