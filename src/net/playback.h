#ifndef QUASAQ_NET_PLAYBACK_H_
#define QUASAQ_NET_PLAYBACK_H_

#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "obs/metrics.h"

// Client-side playback model. The paper measures server-side inter-frame
// delays and notes that "data collected on the client side show similar
// results"; this module closes the loop: given the server-side frame
// completion times, it models network transit (fixed delay + jitter) and
// a client that buffers before starting playback, and reports what the
// viewer experiences — startup latency, late frames, rebuffering stalls.

namespace quasaq::net {

struct PlaybackOptions {
  double frame_rate = 23.97;
  // One-way network transit (clients are 2-3 hops from the servers).
  SimTime network_delay = 30 * kMillisecond;
  // Uniform jitter in [0, max] added per frame.
  SimTime max_network_jitter = 5 * kMillisecond;
  // The client buffers this much media before starting playback.
  SimTime startup_buffer = 1 * kSecond;
  uint64_t jitter_seed = 17;
};

struct PlaybackReport {
  int frames = 0;
  // Frames that arrived after their playout deadline.
  int late_frames = 0;
  // Contiguous runs of late frames = rebuffering events.
  int underruns = 0;
  // Total time playback was frozen waiting for data.
  SimTime total_stall = 0;
  // Delay from the first frame leaving the server to playback start.
  SimTime startup_latency = 0;

  /// Fraction of frames delivered on time, in [0, 1].
  double OnTimeFraction() const {
    return frames == 0
               ? 1.0
               : 1.0 - static_cast<double>(late_frames) / frames;
  }
};

/// Plays out `server_frame_times` (the per-frame server completion
/// times) at the client. When a frame misses its deadline the player
/// stalls until the frame arrives and playback resumes shifted by the
/// stall (the standard rebuffering model). When `metrics` is non-null
/// the run is recorded there too: frame/violation/underrun counters, a
/// startup-latency histogram, and one inter-frame-delay observation per
/// consecutive arrival pair — the paper's measured QoS quantity.
PlaybackReport SimulateClientPlayback(
    const std::vector<SimTime>& server_frame_times,
    const PlaybackOptions& options,
    obs::MetricsRegistry* metrics = nullptr);

}  // namespace quasaq::net

#endif  // QUASAQ_NET_PLAYBACK_H_
