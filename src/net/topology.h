#ifndef QUASAQ_NET_TOPOLOGY_H_
#define QUASAQ_NET_TOPOLOGY_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "simcore/fluid.h"
#include "simcore/simulator.h"

// Distributed testbed topology. The paper's deployment: three servers on
// separate 100 Mbps Ethernets, each with 3200 KB/s of total streaming
// bandwidth; clients 2–3 hops away; the bottleneck link is always the
// server's outbound link and those links are dedicated to the
// experiments. We therefore model exactly one shared resource per
// server: its outbound link.

namespace quasaq::net {

// Static description of one database server site.
struct ServerSpec {
  SiteId id;
  double outbound_kbps = 3200.0;   // total streaming bandwidth
  double disk_kbps = 20000.0;      // sequential read bandwidth
  double memory_kb = 1024.0 * 1024.0;  // staging-buffer budget
  // Read bandwidth of the in-memory segment cache; far above the disk,
  // so cache-served plans relieve the disk bucket (src/cache/).
  double memory_bandwidth_kbps = 200000.0;
};

// Static description of the whole deployment.
struct Topology {
  std::vector<ServerSpec> servers;

  /// The paper's testbed: 3 identical servers with 3200 KB/s links.
  static Topology PaperTestbed();

  /// `n` identical servers with the paper's per-server capacities
  /// (used by the scale-out experiments the paper lists as future work).
  static Topology Uniform(int n);

  std::vector<SiteId> SiteIds() const;
  const ServerSpec* Find(SiteId id) const;
};

// Dynamic network state: one fluid-shared outbound link per server.
// With admission control, total admitted traffic never exceeds the
// capacity, so every flow holds its full rate; without admission control
// (plain VDBMS) the link oversubscribes and all flows slow down.
class NetworkModel {
 public:
  NetworkModel(sim::Simulator* simulator, const Topology& topology);

  /// Returns the outbound link of `site` (must exist).
  sim::FluidServer& OutboundLink(SiteId site);

  const Topology& topology() const { return topology_; }

 private:
  Topology topology_;
  std::unordered_map<SiteId, std::unique_ptr<sim::FluidServer>> links_;
};

}  // namespace quasaq::net

#endif  // QUASAQ_NET_TOPOLOGY_H_
