#ifndef QUASAQ_SIMCORE_SIMULATOR_H_
#define QUASAQ_SIMCORE_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/sim_time.h"

// Discrete-event simulation engine. The entire QuaSAQ testbed —
// CPU schedulers, network links, streaming sessions, query arrivals —
// runs on one Simulator so that every reported quantity is a function of
// reproducible simulated time.

namespace quasaq::sim {

using EventCallback = std::function<void()>;

// Handle for a scheduled event; valid ids are positive.
using EventId = int64_t;
inline constexpr EventId kInvalidEventId = 0;

// Time-ordered event executor. Events at the same timestamp run in
// scheduling order (FIFO), which keeps runs deterministic.
//
// Not thread-safe; each experiment owns one Simulator.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Returns the current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `callback` at absolute time `when`; times in the past are
  /// clamped to Now(). Returns a handle usable with Cancel().
  EventId ScheduleAt(SimTime when, EventCallback callback);

  /// Schedules `callback` after `delay` (>= 0) from Now().
  EventId ScheduleAfter(SimTime delay, EventCallback callback);

  /// Cancels a pending event. Returns false if the event already ran,
  /// was cancelled, or never existed.
  bool Cancel(EventId id);

  /// Executes the next pending event, if any. Returns false when the
  /// queue is empty.
  bool Step();

  /// Runs events until the queue empties or the next event lies strictly
  /// after `until`; then advances the clock to `until`.
  void RunUntil(SimTime until);

  /// Runs until no events remain.
  void RunAll();

  /// Returns the number of pending (non-cancelled) events.
  size_t pending_events() const { return queue_.size() - cancelled_.size(); }

  /// Returns the number of events executed so far.
  uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    SimTime when;
    EventId id;
    EventCallback callback;

    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<EventId> cancelled_;
};

// Re-arms a callback at a fixed period until stopped. Used for quantum
// ticks, metric sampling, and background load.
class PeriodicTask {
 public:
  /// Runs `callback` every `period` starting at Now() + `period`.
  PeriodicTask(Simulator* simulator, SimTime period, EventCallback callback);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Stops future firings; safe to call from within the callback.
  void Stop();
  bool stopped() const { return stopped_; }

 private:
  void Arm();

  Simulator* simulator_;
  SimTime period_;
  EventCallback callback_;
  EventId pending_ = kInvalidEventId;
  bool stopped_ = false;
};

}  // namespace quasaq::sim

#endif  // QUASAQ_SIMCORE_SIMULATOR_H_
