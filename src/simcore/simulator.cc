#include "simcore/simulator.h"

#include <cassert>
#include <utility>

namespace quasaq::sim {

EventId Simulator::ScheduleAt(SimTime when, EventCallback callback) {
  assert(callback);
  if (when < now_) when = now_;
  EventId id = next_id_++;
  queue_.push(Entry{when, id, std::move(callback)});
  return id;
}

EventId Simulator::ScheduleAfter(SimTime delay, EventCallback callback) {
  assert(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(callback));
}

bool Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_id_) return false;
  // Lazy deletion: remember the id and skip it when popped.
  return cancelled_.insert(id).second;
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(entry.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(entry.when >= now_);
    now_ = entry.when;
    ++executed_;
    entry.callback();
    return true;
  }
  return false;
}

void Simulator::RunUntil(SimTime until) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (cancelled_.count(top.id) > 0) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.when > until) break;
    Step();
  }
  if (now_ < until) now_ = until;
}

void Simulator::RunAll() {
  while (Step()) {
  }
}

PeriodicTask::PeriodicTask(Simulator* simulator, SimTime period,
                           EventCallback callback)
    : simulator_(simulator), period_(period), callback_(std::move(callback)) {
  assert(simulator_ != nullptr);
  assert(period_ > 0);
  assert(callback_);
  Arm();
}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Stop() {
  if (stopped_) return;
  stopped_ = true;
  if (pending_ != kInvalidEventId) simulator_->Cancel(pending_);
  pending_ = kInvalidEventId;
}

void PeriodicTask::Arm() {
  pending_ = simulator_->ScheduleAfter(period_, [this] {
    if (stopped_) return;
    // Re-arm before running so the callback may Stop() this task.
    Arm();
    callback_();
  });
}

}  // namespace quasaq::sim
