#ifndef QUASAQ_SIMCORE_FLUID_H_
#define QUASAQ_SIMCORE_FLUID_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/sim_time.h"
#include "simcore/simulator.h"

// Fluid (processor-sharing) model of a shared server. Concurrent flows —
// streaming sessions on a server's outbound link, for example — split the
// capacity max-min fairly, each bounded by its own demand cap. The model
// captures the paper's throughput experiments: with no admission control
// (plain VDBMS) a link admits everything and every job finishes late;
// with admission control each admitted flow holds its full rate.

namespace quasaq::sim {

using FlowId = int64_t;
inline constexpr FlowId kInvalidFlowId = 0;

// One capacity shared by many finite flows. Work and rates share one
// arbitrary unit (we use KB and KB/s); the solver recomputes the
// allocation on every membership change and fires a callback when a flow
// finishes its work.
class FluidServer {
 public:
  using CompletionCallback = std::function<void(FlowId)>;

  /// `capacity` must be positive (work units per second).
  FluidServer(Simulator* simulator, double capacity);

  FluidServer(const FluidServer&) = delete;
  FluidServer& operator=(const FluidServer&) = delete;

  /// Admits a flow needing `total_work` units, never served faster than
  /// `max_rate` units/second. `on_complete` fires when the work drains.
  FlowId AddFlow(double total_work, double max_rate,
                 CompletionCallback on_complete);

  /// Removes a flow before completion (no callback fires). Returns false
  /// if the flow is unknown or already finished.
  bool RemoveFlow(FlowId id);

  /// Returns the current fair-share rate of `id` (0 if unknown).
  double CurrentRate(FlowId id) const;

  /// Returns the work remaining for `id` as of Now() (0 if unknown).
  double RemainingWork(FlowId id) const;

  size_t active_flows() const { return flows_.size(); }
  double capacity() const { return capacity_; }

  /// Returns the summed allocated rate divided by capacity, in [0, 1].
  double utilization() const;

 private:
  struct Flow {
    double remaining = 0.0;
    double max_rate = 0.0;
    double rate = 0.0;
    CompletionCallback on_complete;
  };

  // Applies elapsed progress, recomputes the max-min allocation and
  // re-arms the next completion event.
  void Reschedule();
  void DrainProgress();
  void RecomputeRates();
  void OnCompletionEvent();

  Simulator* simulator_;
  double capacity_;
  FlowId next_id_ = 1;
  SimTime last_update_ = 0;
  EventId pending_completion_ = kInvalidEventId;
  std::unordered_map<FlowId, Flow> flows_;
};

}  // namespace quasaq::sim

#endif  // QUASAQ_SIMCORE_FLUID_H_
