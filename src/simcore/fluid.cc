#include "simcore/fluid.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace quasaq::sim {

namespace {
// Work below this many units counts as drained (guards float rounding).
constexpr double kWorkEpsilon = 1e-6;
}  // namespace

FluidServer::FluidServer(Simulator* simulator, double capacity)
    : simulator_(simulator), capacity_(capacity) {
  assert(simulator_ != nullptr);
  assert(capacity_ > 0.0);
  last_update_ = simulator_->Now();
}

FlowId FluidServer::AddFlow(double total_work, double max_rate,
                            CompletionCallback on_complete) {
  assert(total_work > 0.0);
  assert(max_rate > 0.0);
  DrainProgress();
  FlowId id = next_id_++;
  flows_[id] = Flow{total_work, max_rate, 0.0, std::move(on_complete)};
  Reschedule();
  return id;
}

bool FluidServer::RemoveFlow(FlowId id) {
  DrainProgress();
  if (flows_.erase(id) == 0) return false;
  Reschedule();
  return true;
}

double FluidServer::CurrentRate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

double FluidServer::RemainingWork(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) return 0.0;
  double elapsed = SimTimeToSeconds(simulator_->Now() - last_update_);
  return std::max(0.0, it->second.remaining - it->second.rate * elapsed);
}

double FluidServer::utilization() const {
  double total = 0.0;
  for (const auto& [id, flow] : flows_) total += flow.rate;
  return std::min(1.0, total / capacity_);
}

void FluidServer::DrainProgress() {
  SimTime now = simulator_->Now();
  if (now == last_update_) return;
  double elapsed = SimTimeToSeconds(now - last_update_);
  for (auto& [id, flow] : flows_) {
    flow.remaining = std::max(0.0, flow.remaining - flow.rate * elapsed);
  }
  last_update_ = now;
}

void FluidServer::RecomputeRates() {
  // Max-min fair water-filling with per-flow caps: repeatedly give every
  // unsaturated flow an equal share of what is left; flows capped below
  // the share freeze at their cap.
  std::vector<Flow*> unsat;
  unsat.reserve(flows_.size());
  for (auto& [id, flow] : flows_) {
    flow.rate = 0.0;
    unsat.push_back(&flow);
  }
  double remaining_capacity = capacity_;
  std::sort(unsat.begin(), unsat.end(), [](const Flow* a, const Flow* b) {
    return a->max_rate < b->max_rate;
  });
  size_t left = unsat.size();
  for (Flow* flow : unsat) {
    double share = remaining_capacity / static_cast<double>(left);
    flow->rate = std::min(flow->max_rate, share);
    remaining_capacity -= flow->rate;
    --left;
  }
}

void FluidServer::Reschedule() {
  RecomputeRates();
  if (pending_completion_ != kInvalidEventId) {
    simulator_->Cancel(pending_completion_);
    pending_completion_ = kInvalidEventId;
  }
  // Find the earliest completion under the (now constant) rates.
  double best_seconds = -1.0;
  for (const auto& [id, flow] : flows_) {
    if (flow.rate <= 0.0) continue;
    double seconds = flow.remaining / flow.rate;
    if (best_seconds < 0.0 || seconds < best_seconds) best_seconds = seconds;
  }
  if (best_seconds < 0.0) return;
  // Never re-arm at a zero-microsecond delay: sub-microsecond residues
  // would otherwise re-fire at the same timestamp forever (simulated
  // time could not advance past them).
  SimTime delay = std::max<SimTime>(1, SecondsToSimTime(best_seconds));
  pending_completion_ =
      simulator_->ScheduleAfter(delay, [this] { OnCompletionEvent(); });
}

void FluidServer::OnCompletionEvent() {
  pending_completion_ = kInvalidEventId;
  DrainProgress();
  // Collect everything that drained (several flows can tie).
  std::vector<std::pair<FlowId, CompletionCallback>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining <= kWorkEpsilon) {
      done.emplace_back(it->first, std::move(it->second.on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  Reschedule();
  for (auto& [id, callback] : done) {
    if (callback) callback(id);
  }
}

}  // namespace quasaq::sim
