#include "cache/cache_manager.h"

#include <cstdio>

namespace quasaq::cache {

CacheManager::CacheManager(const std::vector<SiteId>& sites,
                           const Options& options)
    : sites_(sites), options_(options) {
  caches_.reserve(sites_.size());
  for (size_t i = 0; i < sites_.size(); ++i) {
    caches_.push_back(std::make_unique<SegmentCache>(options_.cache));
  }
}

SegmentCache* CacheManager::at(SiteId site) {
  for (size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i] == site) return caches_[i].get();
  }
  return nullptr;
}

const SegmentCache* CacheManager::at(SiteId site) const {
  for (size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i] == site) return caches_[i].get();
  }
  return nullptr;
}

double CacheManager::CachedFraction(
    SiteId site, const media::ReplicaInfo& replica) const {
  const SegmentCache* cache = at(site);
  if (cache == nullptr) return 0.0;
  double cached_kb = cache->CachedKbOf(replica.id);
  if (cached_kb <= 0.0) return 0.0;
  SegmentLayout layout = SegmentLayout::For(replica, options_.layout);
  if (layout.total_kb() <= 0.0) return 0.0;
  double fraction = cached_kb / layout.total_kb();
  return fraction > 1.0 ? 1.0 : fraction;
}

void CacheManager::OnStream(SiteId site, const media::ReplicaInfo& replica,
                            SimTime now) {
  SegmentCache* cache = at(site);
  if (cache == nullptr) return;
  SegmentLayout layout = SegmentLayout::For(replica, options_.layout);
  for (int i = 0; i < layout.num_segments(); ++i) {
    cache->Access(SegmentKey{replica.id, i}, layout.SegmentKb(i), now);
  }
}

void CacheManager::EraseReplica(PhysicalOid replica) {
  for (auto& cache : caches_) cache->EraseReplica(replica);
}

void CacheManager::set_metrics(obs::MetricsRegistry* registry) {
  for (size_t i = 0; i < caches_.size(); ++i) {
    caches_[i]->set_metrics(registry, std::to_string(sites_[i].value()));
  }
}

void CacheManager::set_metrics(
    const std::function<obs::MetricsRegistry*(SiteId)>& registry_for) {
  for (size_t i = 0; i < caches_.size(); ++i) {
    caches_[i]->set_metrics(registry_for(sites_[i]),
                            std::to_string(sites_[i].value()));
  }
}

SegmentCache::Counters CacheManager::TotalCounters() const {
  SegmentCache::Counters total;
  for (const auto& cache : caches_) {
    const SegmentCache::Counters c = cache->counters();
    total.hits += c.hits;
    total.misses += c.misses;
    total.inserts += c.inserts;
    total.evictions += c.evictions;
    total.rejected += c.rejected;
    total.hit_kb += c.hit_kb;
    total.miss_kb += c.miss_kb;
    total.inserted_kb += c.inserted_kb;
    total.evicted_kb += c.evicted_kb;
  }
  return total;
}

std::string CacheManager::ReportString() const {
  std::string out;
  for (size_t i = 0; i < sites_.size(); ++i) {
    out += "site" + std::to_string(sites_[i].value()) + " " +
           caches_[i]->ReportString() + "\n";
  }
  SegmentCache::Counters total = TotalCounters();
  char buf[120];
  std::snprintf(buf, sizeof(buf),
                "cache total: hit ratio %.2f, %.0f KB served from memory",
                total.HitRatio(), total.hit_kb);
  out += buf;
  return out;
}

}  // namespace quasaq::cache
