#ifndef QUASAQ_CACHE_SEGMENT_CACHE_H_
#define QUASAQ_CACHE_SEGMENT_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/sync.h"
#include "cache/eviction.h"
#include "cache/segment.h"
#include "obs/metrics.h"

// One site's in-memory segment cache. Streamed segments pass through the
// cache read-through style: a resident segment is served from memory (a
// hit), a missing one is read from disk and filled in, evicting the
// policy's lowest-scored segments until it fits. All timing comes from
// the caller-supplied simulated clock, so cache contents — and therefore
// hit/miss sequences — are a deterministic function of the access
// sequence.
//
// Thread-safe: this is the per-site lock of the cache subsystem. One
// mutex guards the segment table, the per-replica byte accounting, and
// the hit/miss counters, so concurrent readers, fills, and evictions on
// one site serialize here while different sites proceed in parallel
// (CacheManager holds no lock of its own). SegmentCache::mu_ is a leaf
// lock: nothing else is acquired while it is held.

namespace quasaq::cache {

class SegmentCache {
 public:
  struct Options {
    // Memory budget for cached segments, KB.
    double capacity_kb = 256.0 * 1024.0;
    // Eviction policy name (see MakeEvictionPolicy): "lru" or "utility".
    std::string policy = "utility";
    // Idle time that halves a segment's stored access mass.
    SimTime popularity_half_life = 120 * kSecond;
  };

  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    // A segment larger than the whole cache is never admitted.
    uint64_t rejected = 0;
    double hit_kb = 0.0;
    double miss_kb = 0.0;
    double inserted_kb = 0.0;
    double evicted_kb = 0.0;

    double HitRatio() const {
      uint64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) /
                             static_cast<double>(total)
                       : 0.0;
    }
  };

  explicit SegmentCache(const Options& options);
  /// Test seam: takes an explicit policy instance.
  SegmentCache(const Options& options,
               std::unique_ptr<EvictionPolicy> policy);

  /// The streaming read path: returns true (a hit) when `key` is
  /// resident, touching its recency/popularity; on a miss the segment is
  /// filled in (unless larger than the cache), evicting as needed. All
  /// counters are charged.
  bool Access(const SegmentKey& key, double size_kb, SimTime now)
      QUASAQ_EXCLUDES(mu_);

  /// Inserts without hit/miss accounting (warm-up / prefetch). Returns
  /// false when the segment cannot be admitted. Re-inserting a resident
  /// segment only touches it.
  bool Insert(const SegmentKey& key, double size_kb, SimTime now)
      QUASAQ_EXCLUDES(mu_);

  /// Residency check with no side effects (the planner's admission-time
  /// peek must not distort recency or the hit ratio).
  bool Contains(const SegmentKey& key) const QUASAQ_EXCLUDES(mu_);

  /// Drops one segment if resident.
  void Erase(const SegmentKey& key) QUASAQ_EXCLUDES(mu_);

  /// Invalidates every segment of `replica` (e.g. after the replica is
  /// evicted from storage). Returns the number of segments dropped.
  /// Not charged as evictions — nothing was displaced by pressure.
  size_t EraseReplica(PhysicalOid replica) QUASAQ_EXCLUDES(mu_);

  /// Total resident KB of `replica`'s segments.
  double CachedKbOf(PhysicalOid replica) const QUASAQ_EXCLUDES(mu_);

  /// Number of resident segments of `replica`.
  int CachedSegmentsOf(PhysicalOid replica) const QUASAQ_EXCLUDES(mu_);

  double used_kb() const QUASAQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return used_kb_;
  }
  double capacity_kb() const { return options_.capacity_kb; }
  size_t segment_count() const QUASAQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return segments_.size();
  }
  /// Snapshot of the counters (by value: the struct is shared state).
  Counters counters() const QUASAQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return counters_;
  }
  std::string_view policy_name() const { return policy_->name(); }

  /// One-line operator report: policy, fill, hit ratio.
  std::string ReportString() const QUASAQ_EXCLUDES(mu_);

  /// Mirrors the counters into `registry` as a site-labeled series
  /// (`site_label` is the label value, normally the site id). nullptr
  /// detaches. The registry must outlive the cache; call before the
  /// first Access so registry totals match counters().
  void set_metrics(obs::MetricsRegistry* registry, std::string_view site_label)
      QUASAQ_EXCLUDES(mu_);

 private:
  // Registry handles resolved once in set_metrics; all nullptr when
  // unobserved. Emitted under mu_ — the registry's locks are leaves,
  // consistent with mu_ being otherwise leaf-level.
  struct Metrics {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* inserts = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* hit_kb = nullptr;
    obs::Counter* miss_kb = nullptr;
    obs::Counter* evicted_kb = nullptr;
    obs::Gauge* used_kb = nullptr;
  };

  void Touch(SegmentMeta& meta, SimTime now) QUASAQ_REQUIRES(mu_);
  // Evicts lowest-scored segments until `needed_kb` fits. Returns false
  // when the cache cannot make enough room (needed_kb > capacity).
  bool EvictFor(double needed_kb, SimTime now) QUASAQ_REQUIRES(mu_);
  // Lock-assuming body of Insert, shared with the Access miss path.
  bool InsertLocked(const SegmentKey& key, double size_kb, SimTime now)
      QUASAQ_REQUIRES(mu_);

  Options options_;                         // immutable after construction
  std::unique_ptr<EvictionPolicy> policy_;  // immutable after construction
  mutable Mutex mu_;
  std::unordered_map<SegmentKey, SegmentMeta> segments_
      QUASAQ_GUARDED_BY(mu_);
  // Resident KB per replica, for O(1) warmth lookups by the planner.
  std::unordered_map<PhysicalOid, double> replica_kb_ QUASAQ_GUARDED_BY(mu_);
  std::unordered_map<PhysicalOid, int> replica_segments_
      QUASAQ_GUARDED_BY(mu_);
  double used_kb_ QUASAQ_GUARDED_BY(mu_) = 0.0;
  Counters counters_ QUASAQ_GUARDED_BY(mu_);
  Metrics metrics_ QUASAQ_GUARDED_BY(mu_);
};

}  // namespace quasaq::cache

#endif  // QUASAQ_CACHE_SEGMENT_CACHE_H_
