#include "cache/segment.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "media/frames.h"

namespace quasaq::cache {

std::string SegmentKeyToString(const SegmentKey& key) {
  return "oid" + std::to_string(key.replica.value()) + "#" +
         std::to_string(key.index);
}

SegmentLayout SegmentLayout::For(const media::ReplicaInfo& replica,
                                 const Options& options) {
  assert(replica.bitrate_kbps > 0.0);
  assert(replica.duration_seconds > 0.0);
  assert(options.target_segment_seconds > 0.0);

  SegmentLayout layout;
  media::GopPattern pattern =
      media::GopPattern::StandardFor(replica.qos.format);
  double frame_rate = replica.qos.frame_rate > 0.0 ? replica.qos.frame_rate
                                                   : 24.0;
  double gop_seconds = static_cast<double>(pattern.size()) / frame_rate;
  layout.gops_per_segment_ = std::max(
      1, static_cast<int>(
             std::llround(options.target_segment_seconds / gop_seconds)));
  layout.segment_seconds_ = layout.gops_per_segment_ * gop_seconds;
  layout.full_segment_kb_ = replica.bitrate_kbps * layout.segment_seconds_;
  layout.total_kb_ = replica.size_kb > 0.0
                         ? replica.size_kb
                         : replica.bitrate_kbps * replica.duration_seconds;
  layout.num_segments_ = std::max(
      1, static_cast<int>(std::ceil(replica.duration_seconds /
                                    layout.segment_seconds_)));
  return layout;
}

double SegmentLayout::SegmentKb(int index) const {
  assert(index >= 0 && index < num_segments_);
  if (index + 1 < num_segments_) return full_segment_kb_;
  // Trailing remainder: whatever the full segments did not cover.
  double remainder =
      total_kb_ - full_segment_kb_ * static_cast<double>(num_segments_ - 1);
  return std::clamp(remainder, 0.0, full_segment_kb_);
}

double SegmentLayout::PrefixKb(int segments) const {
  segments = std::clamp(segments, 0, num_segments_);
  double total = 0.0;
  for (int i = 0; i < segments; ++i) total += SegmentKb(i);
  return total;
}

int SegmentLayout::SegmentAtOffsetKb(double offset_kb) const {
  if (full_segment_kb_ <= 0.0 || offset_kb <= 0.0) return 0;
  int index = static_cast<int>(offset_kb / full_segment_kb_);
  return std::clamp(index, 0, num_segments_ - 1);
}

}  // namespace quasaq::cache
