#ifndef QUASAQ_CACHE_EVICTION_H_
#define QUASAQ_CACHE_EVICTION_H_

#include <memory>
#include <string_view>

#include "common/sim_time.h"
#include "cache/segment.h"

// Pluggable eviction policies for the segment cache. A policy is a pure
// retention-score function over the metadata the cache maintains for a
// resident segment; the cache evicts the lowest-scored segment first
// (ties break on the segment key, so eviction order is deterministic
// regardless of hash-map iteration order).

namespace quasaq::cache {

// Everything the cache knows about one resident segment.
struct SegmentMeta {
  SegmentKey key;
  double size_kb = 0.0;
  SimTime inserted = 0;
  SimTime last_access = 0;
  uint64_t access_count = 0;
  // Exponentially decayed access mass, maintained by the cache (+1 per
  // access, halved every popularity_half_life of idleness).
  double popularity = 0.0;
};

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  virtual std::string_view name() const = 0;

  /// Retention score of a resident segment at `now`; the lowest score is
  /// evicted first. Must be a pure function of its arguments.
  virtual double Score(const SegmentMeta& segment, SimTime now) const = 0;
};

// Classic least-recently-used: retention score is the last access time.
class LruPolicy : public EvictionPolicy {
 public:
  std::string_view name() const override { return "lru"; }
  double Score(const SegmentMeta& segment, SimTime now) const override;
};

// QoS-utility-weighted retention: popular segments score higher, and the
// early segments of an object are worth more than its tail — a cached
// prefix hides startup disk reads for *every* future viewer, while tail
// segments only pay off for viewers that get that far. Score is the
// decayed access mass divided by (1 + prefix_bias * segment index), so a
// flash crowd keeps its video's prefix resident while one-off scans age
// out quickly.
class UtilityWeightedPolicy : public EvictionPolicy {
 public:
  struct Options {
    // How strongly early segments are favored; 0 reduces to pure
    // popularity.
    double prefix_bias = 0.25;
    // Idle time that halves a segment's popularity inside the score.
    SimTime popularity_half_life = 120 * kSecond;
  };

  UtilityWeightedPolicy() = default;
  explicit UtilityWeightedPolicy(const Options& options)
      : options_(options) {}

  std::string_view name() const override { return "utility"; }
  double Score(const SegmentMeta& segment, SimTime now) const override;

 private:
  Options options_;
};

/// Factory by name ("lru", "utility"); nullptr for unknown names.
std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(std::string_view name);

}  // namespace quasaq::cache

#endif  // QUASAQ_CACHE_EVICTION_H_
