#include "cache/eviction.h"

#include <cmath>

namespace quasaq::cache {

double LruPolicy::Score(const SegmentMeta& segment, SimTime now) const {
  (void)now;
  return static_cast<double>(segment.last_access);
}

double UtilityWeightedPolicy::Score(const SegmentMeta& segment,
                                    SimTime now) const {
  double popularity = segment.popularity;
  if (options_.popularity_half_life > 0 && now > segment.last_access) {
    double idle_half_lives =
        static_cast<double>(now - segment.last_access) /
        static_cast<double>(options_.popularity_half_life);
    popularity *= std::exp2(-idle_half_lives);
  }
  return popularity /
         (1.0 + options_.prefix_bias * static_cast<double>(segment.key.index));
}

std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(std::string_view name) {
  if (name == "lru") return std::make_unique<LruPolicy>();
  if (name == "utility") return std::make_unique<UtilityWeightedPolicy>();
  return nullptr;
}

}  // namespace quasaq::cache
