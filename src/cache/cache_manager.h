#ifndef QUASAQ_CACHE_CACHE_MANAGER_H_
#define QUASAQ_CACHE_CACHE_MANAGER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "cache/segment.h"
#include "cache/segment_cache.h"
#include "media/video.h"

// Site-level coordination of the segment caches. One SegmentCache per
// site; the manager translates replica records into segment accesses and
// answers the planner's admission-time warmth queries. It implements the
// read-only CacheView interface that the Plan Generator consults to emit
// cache-served plan variants without depending on the cache machinery.
//
// Thread-safe by construction: the manager's own state (the site list
// and the cache array) is immutable after the constructor, so it needs
// no lock of its own — concurrency control lives entirely in the
// per-site SegmentCache locks, letting accesses on different sites
// proceed in parallel. A streamed session (OnStream) is a sequence of
// per-segment critical sections, not one atomic operation; concurrent
// streams on the same site interleave at segment granularity, exactly
// like the read-through cache it models.

namespace quasaq::cache {

// What plan generation may ask about cache state. Implementations must
// be side-effect free: admission-time peeks may not distort recency or
// hit/miss counters.
class CacheView {
 public:
  virtual ~CacheView() = default;

  /// Fraction of `replica`'s bytes resident in `site`'s cache, in
  /// [0, 1]; 0 when the site has no cache.
  virtual double CachedFraction(SiteId site,
                                const media::ReplicaInfo& replica) const = 0;
};

class CacheManager : public CacheView {
 public:
  struct Options {
    SegmentCache::Options cache;     // applied to every site's cache
    SegmentLayout::Options layout;
  };

  CacheManager(const std::vector<SiteId>& sites, const Options& options);

  /// The cache of `site`, or nullptr for unknown sites.
  SegmentCache* at(SiteId site);
  const SegmentCache* at(SiteId site) const;

  double CachedFraction(SiteId site,
                        const media::ReplicaInfo& replica) const override;

  /// Streams `replica` through `site`'s cache at `now`: every segment is
  /// accessed in order — residents are served from memory (hits), the
  /// rest are filled from disk (misses) — modelling a read-through
  /// streaming cache at session granularity.
  void OnStream(SiteId site, const media::ReplicaInfo& replica, SimTime now);

  /// Invalidates `replica`'s segments at every site (the physical copy
  /// is gone; its cached bytes are undeliverable).
  void EraseReplica(PhysicalOid replica);

  /// Counters summed over all sites.
  SegmentCache::Counters TotalCounters() const;

  /// Attaches every site's cache to `registry` as one site-labeled
  /// family per counter (nullptr detaches). Call before streaming so
  /// the registry totals reconcile with TotalCounters().
  void set_metrics(obs::MetricsRegistry* registry);

  /// Sharded flavor: each site's cache attaches to the registry
  /// `registry_for(site)` returns — typically the shard-local registry
  /// the site's sessions report into, so busy sites never contend on a
  /// counter cache line. Merged exposition reassembles one document;
  /// the site label keeps every series distinct across registries.
  void set_metrics(
      const std::function<obs::MetricsRegistry*(SiteId)>& registry_for);

  const SegmentLayout::Options& layout_options() const {
    return options_.layout;
  }

  /// One line per site plus a totals line.
  std::string ReportString() const;

 private:
  // All three are immutable after construction (see class comment).
  std::vector<SiteId> sites_;
  Options options_;
  std::vector<std::unique_ptr<SegmentCache>> caches_;  // parallel to sites_
};

}  // namespace quasaq::cache

#endif  // QUASAQ_CACHE_CACHE_MANAGER_H_
