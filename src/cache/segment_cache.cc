#include "cache/segment_cache.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace quasaq::cache {

SegmentCache::SegmentCache(const Options& options)
    : SegmentCache(options, MakeEvictionPolicy(options.policy)) {}

SegmentCache::SegmentCache(const Options& options,
                           std::unique_ptr<EvictionPolicy> policy)
    : options_(options), policy_(std::move(policy)) {
  assert(policy_ != nullptr && "unknown eviction policy name");
  assert(options_.capacity_kb > 0.0);
}

void SegmentCache::set_metrics(obs::MetricsRegistry* registry,
                               std::string_view site_label) {
  MutexLock lock(&mu_);
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  const obs::Labels labels = {{"site", std::string(site_label)}};
  metrics_.hits = registry->GetCounter("quasaq_cache_hits_total",
                                       "Segment reads served from memory",
                                       labels);
  metrics_.misses = registry->GetCounter(
      "quasaq_cache_misses_total", "Segment reads that went to disk",
      labels);
  metrics_.inserts = registry->GetCounter(
      "quasaq_cache_inserts_total", "Segments filled into the cache",
      labels);
  metrics_.evictions = registry->GetCounter(
      "quasaq_cache_evictions_total", "Segments displaced by pressure",
      labels);
  metrics_.rejected = registry->GetCounter(
      "quasaq_cache_rejected_total",
      "Segments never admitted (larger than the cache)", labels);
  metrics_.hit_kb = registry->GetCounter("quasaq_cache_hit_kb_total",
                                         "KB served from memory", labels);
  metrics_.miss_kb = registry->GetCounter("quasaq_cache_miss_kb_total",
                                          "KB read from disk", labels);
  metrics_.evicted_kb = registry->GetCounter(
      "quasaq_cache_evicted_kb_total", "KB displaced by pressure", labels);
  metrics_.used_kb = registry->GetGauge(
      "quasaq_cache_used_kb", "Resident KB of cached segments", labels);
}

void SegmentCache::Touch(SegmentMeta& meta, SimTime now) {
  if (options_.popularity_half_life > 0 && now > meta.last_access) {
    double idle_half_lives =
        static_cast<double>(now - meta.last_access) /
        static_cast<double>(options_.popularity_half_life);
    meta.popularity *= std::exp2(-idle_half_lives);
  }
  meta.popularity += 1.0;
  meta.last_access = now;
  ++meta.access_count;
}

bool SegmentCache::EvictFor(double needed_kb, SimTime now) {
  if (needed_kb > options_.capacity_kb) return false;
  while (used_kb_ + needed_kb > options_.capacity_kb) {
    // Lowest retention score goes first; ties break on the key so the
    // victim never depends on hash-map iteration order.
    const SegmentMeta* victim = nullptr;
    double victim_score = 0.0;
    for (const auto& [key, meta] : segments_) {
      double score = policy_->Score(meta, now);
      if (victim == nullptr || score < victim_score ||
          (score == victim_score && key < victim->key)) {
        victim = &meta;
        victim_score = score;
      }
    }
    if (victim == nullptr) return false;  // empty yet still no room
    const SegmentKey victim_key = victim->key;
    const double victim_kb = victim->size_kb;
    ++counters_.evictions;
    counters_.evicted_kb += victim_kb;
    if (metrics_.evictions != nullptr) {
      metrics_.evictions->Increment();
      metrics_.evicted_kb->Increment(victim_kb);
    }
    used_kb_ -= victim_kb;
    double& replica_kb = replica_kb_[victim_key.replica];
    replica_kb = std::max(0.0, replica_kb - victim_kb);
    --replica_segments_[victim_key.replica];
    segments_.erase(victim_key);
  }
  return true;
}

bool SegmentCache::Insert(const SegmentKey& key, double size_kb,
                          SimTime now) {
  MutexLock lock(&mu_);
  return InsertLocked(key, size_kb, now);
}

bool SegmentCache::InsertLocked(const SegmentKey& key, double size_kb,
                                SimTime now) {
  assert(size_kb >= 0.0);
  auto it = segments_.find(key);
  if (it != segments_.end()) {
    Touch(it->second, now);
    return true;
  }
  if (size_kb > options_.capacity_kb || !EvictFor(size_kb, now)) {
    ++counters_.rejected;
    if (metrics_.rejected != nullptr) metrics_.rejected->Increment();
    return false;
  }
  SegmentMeta meta;
  meta.key = key;
  meta.size_kb = size_kb;
  meta.inserted = now;
  meta.last_access = now;
  meta.access_count = 1;
  meta.popularity = 1.0;
  segments_.emplace(key, meta);
  used_kb_ += size_kb;
  replica_kb_[key.replica] += size_kb;
  ++replica_segments_[key.replica];
  ++counters_.inserts;
  counters_.inserted_kb += size_kb;
  if (metrics_.inserts != nullptr) {
    metrics_.inserts->Increment();
    metrics_.used_kb->Sample(now, used_kb_);
  }
  return true;
}

bool SegmentCache::Access(const SegmentKey& key, double size_kb,
                          SimTime now) {
  MutexLock lock(&mu_);
  auto it = segments_.find(key);
  if (it != segments_.end()) {
    ++counters_.hits;
    counters_.hit_kb += it->second.size_kb;
    if (metrics_.hits != nullptr) {
      metrics_.hits->Increment();
      metrics_.hit_kb->Increment(it->second.size_kb);
    }
    Touch(it->second, now);
    return true;
  }
  ++counters_.misses;
  counters_.miss_kb += size_kb;
  if (metrics_.misses != nullptr) {
    metrics_.misses->Increment();
    metrics_.miss_kb->Increment(size_kb);
  }
  InsertLocked(key, size_kb, now);
  return false;
}

bool SegmentCache::Contains(const SegmentKey& key) const {
  MutexLock lock(&mu_);
  return segments_.find(key) != segments_.end();
}

void SegmentCache::Erase(const SegmentKey& key) {
  MutexLock lock(&mu_);
  auto it = segments_.find(key);
  if (it == segments_.end()) return;
  used_kb_ -= it->second.size_kb;
  double& replica_kb = replica_kb_[key.replica];
  replica_kb = std::max(0.0, replica_kb - it->second.size_kb);
  --replica_segments_[key.replica];
  segments_.erase(it);
}

size_t SegmentCache::EraseReplica(PhysicalOid replica) {
  MutexLock lock(&mu_);
  size_t dropped = 0;
  for (auto it = segments_.begin(); it != segments_.end();) {
    if (it->first.replica == replica) {
      used_kb_ -= it->second.size_kb;
      it = segments_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  replica_kb_.erase(replica);
  replica_segments_.erase(replica);
  if (used_kb_ < 0.0) used_kb_ = 0.0;
  return dropped;
}

double SegmentCache::CachedKbOf(PhysicalOid replica) const {
  MutexLock lock(&mu_);
  auto it = replica_kb_.find(replica);
  return it != replica_kb_.end() ? it->second : 0.0;
}

int SegmentCache::CachedSegmentsOf(PhysicalOid replica) const {
  MutexLock lock(&mu_);
  auto it = replica_segments_.find(replica);
  return it != replica_segments_.end() ? it->second : 0;
}

std::string SegmentCache::ReportString() const {
  MutexLock lock(&mu_);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "cache[%s]: %.0f/%.0f KB in %zu segments, hits=%llu "
                "misses=%llu (ratio %.2f) evicted=%.0f KB",
                std::string(policy_->name()).c_str(), used_kb_,
                options_.capacity_kb, segments_.size(),
                static_cast<unsigned long long>(counters_.hits),
                static_cast<unsigned long long>(counters_.misses),
                counters_.HitRatio(), counters_.evicted_kb);
  return std::string(buf);
}

}  // namespace quasaq::cache
