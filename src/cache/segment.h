#ifndef QUASAQ_CACHE_SEGMENT_H_
#define QUASAQ_CACHE_SEGMENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/ids.h"
#include "media/video.h"

// Segment addressing for the streaming cache. A replica's byte range is
// cut into fixed-duration segments aligned to whole GOPs (media/frames.h)
// so a cached segment is always independently decodable — a stream can
// switch between cache and disk at any segment boundary without breaking
// the MPEG reference structure. All segments of a replica share one size
// (bitrate x segment duration) except the trailing remainder.

namespace quasaq::cache {

// Names one segment of one stored replica.
struct SegmentKey {
  PhysicalOid replica;
  int32_t index = 0;

  friend bool operator==(const SegmentKey& a, const SegmentKey& b) {
    return a.replica == b.replica && a.index == b.index;
  }
  friend auto operator<=>(const SegmentKey& a, const SegmentKey& b) = default;
};

/// Renders e.g. "oid7#3".
std::string SegmentKeyToString(const SegmentKey& key);

// The deterministic segment geometry of one replica. Pure function of the
// replica record and the layout options, so every component (cache,
// storage manager, planner) derives the same geometry independently.
class SegmentLayout {
 public:
  struct Options {
    // Target playback duration of one segment; rounded to whole GOPs.
    double target_segment_seconds = 10.0;
  };

  /// Computes the layout of `replica` (requires positive bitrate and
  /// duration).
  static SegmentLayout For(const media::ReplicaInfo& replica,
                           const Options& options);
  static SegmentLayout For(const media::ReplicaInfo& replica) {
    return For(replica, Options{});
  }

  int num_segments() const { return num_segments_; }
  /// Playback seconds covered by one full segment (a whole number of
  /// GOPs).
  double segment_seconds() const { return segment_seconds_; }
  int gops_per_segment() const { return gops_per_segment_; }
  double total_kb() const { return total_kb_; }

  /// Size in KB of segment `index`; the last segment carries the
  /// remainder and may be smaller (never larger).
  double SegmentKb(int index) const;

  /// Sum of SegmentKb over the first `segments` segments.
  double PrefixKb(int segments) const;

  /// The segment containing byte offset `offset_kb` (clamped to the
  /// valid range).
  int SegmentAtOffsetKb(double offset_kb) const;

 private:
  SegmentLayout() = default;

  int num_segments_ = 1;
  int gops_per_segment_ = 1;
  double segment_seconds_ = 0.0;
  double full_segment_kb_ = 0.0;
  double total_kb_ = 0.0;
};

}  // namespace quasaq::cache

namespace std {

template <>
struct hash<quasaq::cache::SegmentKey> {
  size_t operator()(const quasaq::cache::SegmentKey& key) const {
    return std::hash<int64_t>()(key.replica.value() * 131071 + key.index);
  }
};

}  // namespace std

#endif  // QUASAQ_CACHE_SEGMENT_H_
