#include "common/resource_vector.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace quasaq {

std::string_view ResourceKindName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu:
      return "cpu";
    case ResourceKind::kNetworkBandwidth:
      return "net";
    case ResourceKind::kDiskBandwidth:
      return "disk";
    case ResourceKind::kMemory:
      return "mem";
    case ResourceKind::kMemoryBandwidth:
      return "membw";
  }
  return "unknown";
}

std::string BucketIdToString(const BucketId& id) {
  std::string out = "site" + std::to_string(id.site.value());
  out += "/";
  out += ResourceKindName(id.kind);
  return out;
}

void ResourceVector::Add(const BucketId& bucket, double amount) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), bucket,
      [](const Entry& e, const BucketId& b) { return e.bucket < b; });
  if (it != entries_.end() && it->bucket == bucket) {
    it->amount = std::max(0.0, it->amount + amount);
    return;
  }
  entries_.insert(it, Entry{bucket, std::max(0.0, amount)});
}

double ResourceVector::Get(const BucketId& bucket) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), bucket,
      [](const Entry& e, const BucketId& b) { return e.bucket < b; });
  if (it != entries_.end() && it->bucket == bucket) return it->amount;
  return 0.0;
}

void ResourceVector::Merge(const ResourceVector& other) {
  for (const Entry& e : other.entries_) Add(e.bucket, e.amount);
}

void ResourceVector::Scale(double factor) {
  assert(factor >= 0.0);
  for (Entry& e : entries_) e.amount *= factor;
}

std::string ResourceVector::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const Entry& e : entries_) {
    if (!first) out += ", ";
    first = false;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3g", e.amount);
    out += BucketIdToString(e.bucket) + ": " + buf;
  }
  out += "}";
  return out;
}

}  // namespace quasaq
