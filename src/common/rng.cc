#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace quasaq {

double Rng::NextDouble() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::ClampedNormal(double mean, double stddev, double lo, double hi) {
  assert(lo <= hi);
  return std::clamp(Normal(mean, stddev), lo, hi);
}

bool Rng::Bernoulli(double p) {
  return NextDouble() < std::clamp(p, 0.0, 1.0);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double draw = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (draw < acc) return i;
  }
  return weights.size() - 1;
}

size_t Rng::Zipf(size_t n, double s) {
  assert(n > 0);
  // Direct inversion over the (small) rank space; n is at most a few
  // thousand in our workloads, so the linear scan is fine.
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  return WeightedIndex(weights);
}

Rng Rng::Fork() {
  return Rng(engine_());
}

}  // namespace quasaq
