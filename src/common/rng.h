#ifndef QUASAQ_COMMON_RNG_H_
#define QUASAQ_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

// Seeded random number generation. Every stochastic component in QuaSAQ
// receives an explicit Rng so that experiments are reproducible; there is
// no global generator and no wall-clock seeding.

namespace quasaq {

// Pseudo-random source with the distribution helpers the simulator and
// workload generators need. Not thread-safe; use one per logical stream.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Returns a uniform draw from [0, 1).
  double NextDouble();

  /// Returns a uniform draw from [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns a uniform integer draw from [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns an exponential draw with the given mean (> 0).
  double Exponential(double mean);

  /// Returns a normal draw; values are NOT clamped.
  double Normal(double mean, double stddev);

  /// Returns a normal draw clamped to [lo, hi].
  double ClampedNormal(double mean, double stddev, double lo, double hi);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns an index in [0, weights.size()) drawn proportionally to
  /// `weights`; all weights must be non-negative with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Returns a Zipf(s) draw over ranks [0, n); s = 0 degenerates to
  /// uniform. Used to model skewed video popularity in extensions of the
  /// paper's uniform-access workload.
  size_t Zipf(size_t n, double s);

  /// Derives an independent generator; useful to give each simulated
  /// entity its own stream from one experiment seed.
  Rng Fork();

 private:
  std::mt19937_64 engine_;
};

}  // namespace quasaq

#endif  // QUASAQ_COMMON_RNG_H_
