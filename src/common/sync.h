#ifndef QUASAQ_COMMON_SYNC_H_
#define QUASAQ_COMMON_SYNC_H_

#include <condition_variable>
#include <mutex>

// Synchronization primitives carrying Clang thread-safety annotations
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Locking
// discipline is declared in the types — which mutex guards which member
// (GUARDED_BY), which helper assumes the lock (REQUIRES) — and Clang's
// `-Wthread-safety` turns a violation into a compile error instead of a
// flaky benchmark. On non-Clang compilers every annotation expands to
// nothing and the wrappers are thin veneers over <mutex>.
//
// The annotated subsystems, their locks, and the lock ordering are
// documented in docs/ARCHITECTURE.md ("Threading model").

#if defined(__clang__) && !defined(SWIG)
#define QUASAQ_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define QUASAQ_THREAD_ANNOTATION_(x)  // no-op
#endif

// The type is a capability (a lock).
#define QUASAQ_CAPABILITY(x) QUASAQ_THREAD_ANNOTATION_(capability(x))
// The type is an RAII object acquiring a capability for its lifetime.
#define QUASAQ_SCOPED_CAPABILITY QUASAQ_THREAD_ANNOTATION_(scoped_lockable)
// The member may only be read/written while holding the given lock.
#define QUASAQ_GUARDED_BY(x) QUASAQ_THREAD_ANNOTATION_(guarded_by(x))
// The pointed-to data (not the pointer) is guarded by the given lock.
#define QUASAQ_PT_GUARDED_BY(x) QUASAQ_THREAD_ANNOTATION_(pt_guarded_by(x))
// The function acquires / releases the listed capabilities.
#define QUASAQ_ACQUIRE(...) \
  QUASAQ_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define QUASAQ_RELEASE(...) \
  QUASAQ_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define QUASAQ_TRY_ACQUIRE(...) \
  QUASAQ_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
// The caller must already hold the listed capabilities.
#define QUASAQ_REQUIRES(...) \
  QUASAQ_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
// The caller must NOT hold the listed capabilities (deadlock guard for
// public entry points that take the lock themselves).
#define QUASAQ_EXCLUDES(...) \
  QUASAQ_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
// The function returns a reference to the given capability.
#define QUASAQ_RETURN_CAPABILITY(x) \
  QUASAQ_THREAD_ANNOTATION_(lock_returned(x))
// Runtime assertion that the capability is held (informs the analysis).
#define QUASAQ_ASSERT_CAPABILITY(x) \
  QUASAQ_THREAD_ANNOTATION_(assert_capability(x))
// Escape hatch: disable the analysis for one function.
#define QUASAQ_NO_THREAD_SAFETY_ANALYSIS \
  QUASAQ_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace quasaq {

// Annotated mutual-exclusion lock. Non-reentrant: a thread acquiring a
// Mutex it already holds deadlocks (Clang's analysis rejects the
// attempt at compile time via EXCLUDES on the public entry points).
class QUASAQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() QUASAQ_ACQUIRE() { mu_.lock(); }
  void Unlock() QUASAQ_RELEASE() { mu_.unlock(); }
  bool TryLock() QUASAQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// No-op at runtime; tells the analysis the lock is held (for
  /// callbacks invoked from contexts the analysis cannot see).
  void AssertHeld() const QUASAQ_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock for a scope. The annotation transfers the capability to the
// guard object, so every guarded access inside the scope type-checks.
class QUASAQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) QUASAQ_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() QUASAQ_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Condition variable over a Mutex. The Mutex is a parameter of Wait —
// not bound at construction — because Clang's analysis matches
// capability expressions syntactically: REQUIRES(mu) on the parameter
// unifies with whatever lock expression the caller actually holds,
// whereas a stored `cv.mu_` never would. Wait() adopts the already-held
// Mutex into a std::unique_lock (the standard wait protocol) and
// releases the adoption before returning, so the caller's discipline —
// hold the Mutex across the wait — is undisturbed.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks until notified; `mu` is
  /// re-held on return. Spurious wakeups are possible — use Await.
  void Wait(Mutex* mu) QUASAQ_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  /// Waits until `pred()` holds, re-checking after every wakeup.
  template <typename Predicate>
  void Await(Mutex* mu, Predicate pred) QUASAQ_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace quasaq

#endif  // QUASAQ_COMMON_SYNC_H_
