#ifndef QUASAQ_COMMON_THREAD_POOL_H_
#define QUASAQ_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

// A fixed-size worker pool for CPU-bound fan-out inside a single
// operation — the plan-costing parallelism of core/plan_stream.h costs
// one (replica, site) group per worker and joins before merging. Tasks
// must not block on each other: the pool has no work stealing and a
// task waiting for a later-queued task deadlocks. Submit is safe from
// any thread, including from multiple concurrent PlanStreams sharing
// one pool.

namespace quasaq {

class ThreadPool {
 public:
  /// Spawns `worker_count` (>= 1) threads immediately; they idle on a
  /// condition variable until work arrives.
  explicit ThreadPool(int worker_count);
  /// Drains the queue (queued tasks still run) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task) QUASAQ_EXCLUDES(mu_);

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar work_cv_;
  std::deque<std::function<void()>> queue_ QUASAQ_GUARDED_BY(mu_);
  bool shutdown_ QUASAQ_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // immutable after construction
};

// Counts a fixed number of task completions and lets one caller block
// until all of them happened — the join half of a Submit fan-out.
class BlockingCounter {
 public:
  explicit BlockingCounter(int initial_count) : count_(initial_count) {}

  BlockingCounter(const BlockingCounter&) = delete;
  BlockingCounter& operator=(const BlockingCounter&) = delete;

  /// Called by each task when done; the last call wakes the waiter.
  void DecrementCount() QUASAQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (--count_ == 0) cv_.SignalAll();
  }

  /// Blocks until the count reaches zero.
  void Wait() QUASAQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    cv_.Await(&mu_, [this]() QUASAQ_REQUIRES(mu_) { return count_ == 0; });
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int count_ QUASAQ_GUARDED_BY(mu_);
};

}  // namespace quasaq

#endif  // QUASAQ_COMMON_THREAD_POOL_H_
