#ifndef QUASAQ_COMMON_STATUS_H_
#define QUASAQ_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

// Error handling for QuaSAQ. The codebase does not use exceptions;
// fallible operations return Status (or Result<T> for value-producing
// operations), mirroring the Status idiom of production storage engines.

namespace quasaq {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  // Admission control turned the request away: resources exhausted.
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "NOT_FOUND").
std::string_view StatusCodeToString(StatusCode code);

// Result of a fallible operation: a code plus an optional message.
// The OK status carries no message and is cheap to copy.
//
// [[nodiscard]]: silently dropping a Status hides admission failures
// and accounting bugs; a caller that genuinely cannot act on an error
// must say so with an explicit `(void)` cast next to a reason.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CODE>: <message>" for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Either a value of type T or a non-OK Status explaining its absence.
// Accessors assert on misuse; check ok() first.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace quasaq

#endif  // QUASAQ_COMMON_STATUS_H_
