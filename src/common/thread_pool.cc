#include "common/thread_pool.h"

#include <cassert>
#include <utility>

namespace quasaq {

ThreadPool::ThreadPool(int worker_count) {
  assert(worker_count >= 1);
  workers_.reserve(static_cast<size_t>(worker_count));
  for (int i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.SignalAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.Signal();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      work_cv_.Await(&mu_, [this]() QUASAQ_REQUIRES(mu_) {
        return shutdown_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace quasaq
