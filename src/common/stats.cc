#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace quasaq {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void TimeSeries::Add(SimTime time, double value) {
  samples_.push_back({time, value});
}

double TimeSeries::MeanOver(SimTime from, SimTime to) const {
  RunningStats stats;
  for (const Sample& s : samples_) {
    if (s.time >= from && s.time <= to) stats.Add(s.value);
  }
  return stats.mean();
}

double TimeSeries::ValueAt(SimTime time) const {
  double value = 0.0;
  for (const Sample& s : samples_) {
    if (s.time > time) break;
    value = s.value;
  }
  return value;
}

std::vector<TimeSeries::Sample> TimeSeries::Downsample(SimTime horizon,
                                                       size_t buckets) const {
  // A degenerate request (no buckets, or an empty/negative horizon)
  // has no well-defined windows; under NDEBUG the old assert-only
  // guard fell through to a division by zero. Return an empty series.
  if (buckets == 0 || horizon <= 0) return {};
  std::vector<RunningStats> acc(buckets);
  for (const Sample& s : samples_) {
    if (s.time < 0 || s.time > horizon) continue;
    size_t b = static_cast<size_t>(
        std::min<int64_t>(static_cast<int64_t>(buckets) - 1,
                          s.time * static_cast<int64_t>(buckets) / horizon));
    acc[b].Add(s.value);
  }
  std::vector<Sample> out;
  out.reserve(buckets);
  for (size_t b = 0; b < buckets; ++b) {
    if (acc[b].count() == 0) continue;
    SimTime mid = horizon * static_cast<SimTime>(2 * b + 1) /
                  static_cast<SimTime>(2 * buckets);
    out.push_back({mid, acc[b].mean()});
  }
  return out;
}

WindowedRate::WindowedRate(SimTime window) : window_(window) {
  assert(window_ > 0);
}

void WindowedRate::AddEvent(SimTime time) { events_.push_back(time); }

std::vector<TimeSeries::Sample> WindowedRate::Rates(SimTime horizon) const {
  size_t buckets = static_cast<size_t>((horizon + window_ - 1) / window_);
  std::vector<double> counts(buckets, 0.0);
  for (SimTime t : events_) {
    if (t < 0 || t >= horizon) continue;
    counts[static_cast<size_t>(t / window_)] += 1.0;
  }
  std::vector<TimeSeries::Sample> out;
  out.reserve(buckets);
  for (size_t b = 0; b < buckets; ++b) {
    out.push_back({static_cast<SimTime>(b) * window_, counts[b]});
  }
  return out;
}

std::string FormatStatsRow(const std::string& label,
                           const RunningStats& stats) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-36s mean=%10.2f  sd=%10.2f  n=%zu",
                label.c_str(), stats.mean(), stats.stddev(), stats.count());
  return std::string(buf);
}

}  // namespace quasaq
