#ifndef QUASAQ_COMMON_SIM_TIME_H_
#define QUASAQ_COMMON_SIM_TIME_H_

#include <cstdint>

// Simulated-time units. All simulation code measures time in integral
// microseconds (SimTime) so that event ordering is exact and runs are
// reproducible; floating-point seconds appear only at the edges
// (reporting, rate arithmetic).

namespace quasaq {

// A point in simulated time, in microseconds since simulation start.
// Also used for durations; both start at zero and never go negative.
using SimTime = int64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;
inline constexpr SimTime kMinute = 60 * kSecond;

/// Converts a duration in (possibly fractional) seconds to SimTime,
/// rounding to the nearest microsecond.
constexpr SimTime SecondsToSimTime(double seconds) {
  return static_cast<SimTime>(seconds * static_cast<double>(kSecond) + 0.5);
}

/// Converts a duration in (possibly fractional) milliseconds to SimTime.
constexpr SimTime MillisToSimTime(double millis) {
  return static_cast<SimTime>(millis * static_cast<double>(kMillisecond) +
                              0.5);
}

/// Converts SimTime to fractional seconds (for reporting and rates).
constexpr double SimTimeToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts SimTime to fractional milliseconds (for reporting).
constexpr double SimTimeToMillis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

}  // namespace quasaq

#endif  // QUASAQ_COMMON_SIM_TIME_H_
