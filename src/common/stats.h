#ifndef QUASAQ_COMMON_STATS_H_
#define QUASAQ_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/sim_time.h"

// Statistics collectors used by the experiment harnesses: running
// mean/variance (Welford), timestamped series for the paper's
// time-series figures, and fixed-window event counting for
// "accomplished jobs per minute"-style metrics.

namespace quasaq {

// Single-pass mean / standard deviation / extrema accumulator.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Returns the population variance (0 for fewer than two samples).
  double variance() const;
  /// Returns the population standard deviation.
  double stddev() const;

  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// An append-only series of (time, value) samples, e.g. "outstanding
// sessions over time" (Figures 6a and 7a).
class TimeSeries {
 public:
  struct Sample {
    SimTime time = 0;
    double value = 0.0;
  };

  void Add(SimTime time, double value);

  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  /// Returns the mean value over samples with time in [from, to].
  double MeanOver(SimTime from, SimTime to) const;

  /// Returns the value of the latest sample at or before `time`
  /// (0 if none).
  double ValueAt(SimTime time) const;

  /// Reduces the series to at most `buckets` points by averaging within
  /// equal time windows over [0, horizon]; used for compact printing.
  /// Returns an empty vector when `buckets` is 0 or `horizon` is not
  /// positive.
  std::vector<Sample> Downsample(SimTime horizon, size_t buckets) const;

 private:
  std::vector<Sample> samples_;
};

// Counts point events into fixed time windows, reporting a per-window
// rate series ("accomplished jobs per minute", Figure 6b).
class WindowedRate {
 public:
  /// `window` is the bucket width; must be positive.
  explicit WindowedRate(SimTime window);

  /// Records one event at `time` (times may arrive in any order).
  void AddEvent(SimTime time);

  /// Returns one sample per window in [0, horizon): the window start
  /// time and the event count in that window.
  std::vector<TimeSeries::Sample> Rates(SimTime horizon) const;

  size_t total_events() const { return events_.size(); }

 private:
  SimTime window_;
  std::vector<SimTime> events_;
};

/// Formats a (label, stats) row as "label  mean=...  sd=...  n=...".
std::string FormatStatsRow(const std::string& label,
                           const RunningStats& stats);

}  // namespace quasaq

#endif  // QUASAQ_COMMON_STATS_H_
