#ifndef QUASAQ_COMMON_RESOURCE_VECTOR_H_
#define QUASAQ_COMMON_RESOURCE_VECTOR_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/ids.h"

// Resource accounting types. A QuaSAQ execution plan is costed by the
// vector of resources it would consume: CPU, network bandwidth and disk
// bandwidth at specific sites (plus memory). Each (site, kind) pair is
// one "bucket" in the Lowest Resource Bucket cost model (paper §3.4).

namespace quasaq {

// The system/network-level resource kinds of Table 1 that the prototype
// manages. Memory buffers are tracked but never the bottleneck in the
// paper's experiments.
enum class ResourceKind {
  kCpu = 0,            // fraction of one server CPU, 0..1
  kNetworkBandwidth,   // server outbound link, KB/s
  kDiskBandwidth,      // storage read bandwidth, KB/s
  kMemory,             // staging buffers, KB
  kMemoryBandwidth,    // cache-served read bandwidth, KB/s
};

inline constexpr int kNumResourceKinds = 5;

/// Returns a short stable name, e.g. "cpu", "net", "disk", "mem",
/// "membw".
std::string_view ResourceKindName(ResourceKind kind);

// Names one reservable resource instance: a kind at a site.
struct BucketId {
  SiteId site;
  ResourceKind kind = ResourceKind::kCpu;

  friend bool operator==(const BucketId& a, const BucketId& b) {
    return a.site == b.site && a.kind == b.kind;
  }
  friend auto operator<=>(const BucketId& a, const BucketId& b) = default;
};

/// Renders e.g. "site2/net".
std::string BucketIdToString(const BucketId& id);

// Sparse map from bucket to a non-negative amount. Small (a plan touches
// at most a handful of buckets), so it is a flat sorted vector.
class ResourceVector {
 public:
  struct Entry {
    BucketId bucket;
    double amount = 0.0;
  };

  ResourceVector() = default;

  /// Adds `amount` to the bucket (creating it if absent). Negative
  /// deltas are allowed but the stored amount is clamped at zero.
  void Add(const BucketId& bucket, double amount);

  /// Returns the amount for `bucket` (0 if absent).
  double Get(const BucketId& bucket) const;

  /// Adds every entry of `other` into this vector.
  void Merge(const ResourceVector& other);

  /// Multiplies every amount by `factor` (>= 0).
  void Scale(double factor);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Renders e.g. "{site0/cpu: 0.05, site0/net: 190}".
  std::string ToString() const;

 private:
  std::vector<Entry> entries_;  // sorted by bucket
};

}  // namespace quasaq

namespace std {

template <>
struct hash<quasaq::BucketId> {
  size_t operator()(const quasaq::BucketId& id) const {
    return std::hash<int64_t>()(id.site.value() * 31 +
                                static_cast<int64_t>(id.kind));
  }
};

}  // namespace std

#endif  // QUASAQ_COMMON_RESOURCE_VECTOR_H_
