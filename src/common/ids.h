#ifndef QUASAQ_COMMON_IDS_H_
#define QUASAQ_COMMON_IDS_H_

#include <cstdint>
#include <functional>

// Strongly-typed identifiers used throughout QuaSAQ. Each identifier is a
// distinct type so that, e.g., a logical OID can never be passed where a
// physical OID is expected — the distinction is load-bearing in QuaSAQ,
// where one logical video maps to several physical replicas.

namespace quasaq {

namespace internal_ids {

// Value wrapper giving each tag type an independent integer id space.
// Ids are comparable and hashable; kInvalid (-1) is the default.
template <typename Tag>
class TypedId {
 public:
  constexpr TypedId() = default;
  constexpr explicit TypedId(int64_t value) : value_(value) {}

  constexpr int64_t value() const { return value_; }
  constexpr bool valid() const { return value_ >= 0; }

  friend constexpr bool operator==(TypedId a, TypedId b) {
    return a.value_ == b.value_;
  }
  friend constexpr auto operator<=>(TypedId a, TypedId b) {
    return a.value_ <=> b.value_;
  }

 private:
  int64_t value_ = -1;
};

}  // namespace internal_ids

// Identifies video *content* (one per logical media object).
using LogicalOid = internal_ids::TypedId<struct LogicalOidTag>;
// Identifies one stored replica of a logical object at some site.
using PhysicalOid = internal_ids::TypedId<struct PhysicalOidTag>;
// Identifies a database server site.
using SiteId = internal_ids::TypedId<struct SiteIdTag>;
// Identifies a client streaming session (one per serviced query).
using SessionId = internal_ids::TypedId<struct SessionIdTag>;
// Identifies a user (owner of a QoP profile).
using UserId = internal_ids::TypedId<struct UserIdTag>;

}  // namespace quasaq

namespace std {

template <typename Tag>
struct hash<quasaq::internal_ids::TypedId<Tag>> {
  size_t operator()(quasaq::internal_ids::TypedId<Tag> id) const {
    return std::hash<int64_t>()(id.value());
  }
};

}  // namespace std

#endif  // QUASAQ_COMMON_IDS_H_
