#ifndef QUASAQ_COMMON_LOGGING_H_
#define QUASAQ_COMMON_LOGGING_H_

#include <sstream>
#include <string>

// Minimal leveled logging. Experiments run millions of simulated events,
// so logging defaults to kWarning; tests and examples can raise it.

namespace quasaq {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace quasaq

#define QUASAQ_LOG(level)                                           \
  ::quasaq::internal_logging::LogMessage(::quasaq::LogLevel::level, \
                                         __FILE__, __LINE__)

#endif  // QUASAQ_COMMON_LOGGING_H_
