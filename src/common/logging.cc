#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace quasaq {

namespace {
// The level is read on every QUASAQ_LOG site's enabled-check and may be
// flipped by any thread (tests raise it around a section, the stress
// suite logs from 8 threads), so it must be an atomic — a plain global
// here is a data race the TSan leg rightly flags. Relaxed ordering is
// enough: the level is an independent filter knob, not a synchronization
// point for other data.
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << LevelTag(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal_logging
}  // namespace quasaq
