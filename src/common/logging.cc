#include "common/logging.h"

#include <cstdio>

namespace quasaq {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << LevelTag(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal_logging
}  // namespace quasaq
