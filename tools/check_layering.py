#!/usr/bin/env python3
"""Include-graph layering checker for src/.

Enforces the one-way layer order documented in docs/ARCHITECTURE.md
("Threading model / Layering"):

    common
      <- media, simcore
      <- cache, query, resource, metadata
      <- net, storage
      <- replication
      <- core
      <- workload

A file in directory D may include headers from its own directory or
from any directory in a strictly lower layer. Upward includes (and
sideways includes between sibling directories in the same layer) are
build-order rot: they quietly turn the layered architecture into a
cycle. CI runs this over the real tree and fails on any violation; an
unknown src/ subdirectory is also an error so the map cannot silently
go stale.

Exit codes: 0 clean, 1 violations found, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Layer order, lowest first. Directories in the same tuple are siblings
# and may not include each other.
LAYERS: list[tuple[str, ...]] = [
    ("common",),
    ("obs",),
    ("media", "simcore"),
    ("cache", "query", "resource", "metadata"),
    ("net", "storage"),
    ("replication",),
    ("core",),
    ("workload",),
]

RANK = {d: i for i, layer in enumerate(LAYERS) for d in layer}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.M)


def check_files(files: dict[str, str]) -> list[str]:
    """files: relative path (e.g. 'core/system.cc') -> file contents.

    Returns a list of human-readable violation strings.
    """
    violations = []
    for path, text in sorted(files.items()):
        parts = Path(path).parts
        if len(parts) < 2:
            continue  # top-level file in src/, e.g. a CMakeLists
        src_dir = parts[0]
        if src_dir not in RANK:
            violations.append(
                f"{path}: directory '{src_dir}' is not in the layer map "
                f"(update tools/check_layering.py and docs/ARCHITECTURE.md)")
            continue
        for inc in INCLUDE_RE.findall(text):
            inc_dir = Path(inc).parts[0] if "/" in inc else None
            if inc_dir is None or inc_dir not in RANK:
                continue  # system header or non-layered include
            if inc_dir == src_dir:
                continue
            if RANK[inc_dir] >= RANK[src_dir]:
                kind = ("sideways" if RANK[inc_dir] == RANK[src_dir]
                        else "upward")
                violations.append(
                    f"{path}: {kind} include \"{inc}\" "
                    f"({src_dir} [layer {RANK[src_dir]}] -> "
                    f"{inc_dir} [layer {RANK[inc_dir]}])")
    return violations


def load_tree(src_root: Path) -> dict[str, str]:
    files = {}
    for path in sorted(src_root.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        files[str(path.relative_to(src_root))] = path.read_text(
            encoding="utf-8")
    return files


def self_test() -> int:
    """Synthetic trees: the checker must flag an upward include and a
    sideways include, and accept a correctly layered tree."""
    upward = {
        "resource/pool.h": '#include "common/status.h"\n',
        # resource (layer 2) reaching up into core (layer 5): must fail.
        "resource/bad.cc": '#include "core/system.h"\n#include <vector>\n',
    }
    sideways = {
        # cache and query are siblings in layer 2: must fail.
        "cache/bad.h": '#include "query/parser.h"\n',
    }
    clean = {
        "core/system.cc": ('#include "core/system.h"\n'
                           '#include "cache/segment_cache.h"\n'
                           '#include "common/status.h"\n'),
        "storage/storage_manager.h": '#include "cache/segment.h"\n',
    }
    failures = []
    if len(check_files(upward)) != 1:
        failures.append("upward include not flagged")
    if len(check_files(sideways)) != 1:
        failures.append("sideways include not flagged")
    if check_files(clean):
        failures.append("clean tree wrongly flagged")
    for f in failures:
        print(f"self-test FAILED: {f}", file=sys.stderr)
    if not failures:
        print("self-test ok: upward and sideways includes are flagged, "
              "layered tree passes")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--src", default=None,
                        help="src/ root to scan (default: <repo>/src)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the checker itself on synthetic trees")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    src_root = Path(args.src) if args.src else (
        Path(__file__).resolve().parent.parent / "src")
    if not src_root.is_dir():
        print(f"error: src root not found: {src_root}", file=sys.stderr)
        return 2

    violations = check_files(load_tree(src_root))
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        print(f"\n{len(violations)} layering violation(s); layer order is "
              "documented in docs/ARCHITECTURE.md", file=sys.stderr)
        return 1
    print(f"layering ok: {len(load_tree(src_root))} files respect "
          f"{len(LAYERS)} layers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
