#!/usr/bin/env python3
"""Metric-name lint for src/.

Every metric registered against obs::MetricsRegistry appears in the
source as a string literal "quasaq_...". This checker enforces the
conventions documented in docs/OBSERVABILITY.md:

  * Names follow  quasaq_<subsystem>_<noun...>_<unit>  with at least
    one noun segment and a unit drawn from the closed set below, so
    dashboards can tell a counter of bytes from a ratio gauge by name
    alone.
  * Each name literal appears exactly once in src/. The single
    occurrence is the registration site; a second occurrence means
    either a copy-pasted registration (two subsystems fighting over
    one series) or a stringly-typed lookup that will silently drift
    when the registration is renamed.

Test code (tests/, bench/) is deliberately out of scope: tests mint
throwaway names like quasaq_stress_* that never reach an exposition.

Exit codes: 0 clean, 1 violations found, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import re
import sys
from collections import defaultdict
from pathlib import Path

# Closed unit vocabulary. "total" for counters, "ratio"/"count" for
# gauges and dimensionless histograms, the rest are physical units.
UNITS = ("total", "ratio", "seconds", "ms", "kb", "kbps", "count")

NAME_RE = re.compile(
    r"^quasaq_[a-z][a-z0-9]*(?:_[a-z][a-z0-9]*)+_(?:%s)$"
    % "|".join(UNITS))

LITERAL_RE = re.compile(r'"(quasaq_[A-Za-z0-9_]+)"')


def check_files(files: dict[str, str]) -> list[str]:
    """files: relative path (e.g. 'core/system.cc') -> file contents.

    Returns a list of human-readable violation strings.
    """
    occurrences: dict[str, list[str]] = defaultdict(list)
    for path, text in sorted(files.items()):
        for name in LITERAL_RE.findall(text):
            occurrences[name].append(path)

    violations = []
    for name, paths in sorted(occurrences.items()):
        if not NAME_RE.match(name):
            violations.append(
                f"{paths[0]}: metric '{name}' does not match "
                f"quasaq_<subsystem>_<noun>_<unit> with unit in "
                f"{{{', '.join(UNITS)}}}")
        if len(paths) > 1:
            violations.append(
                f"metric '{name}' registered/used {len(paths)} times "
                f"({', '.join(paths)}); each name literal must appear "
                f"exactly once in src/")
    return violations


def metric_count(files: dict[str, str]) -> int:
    names = set()
    for text in files.values():
        names.update(LITERAL_RE.findall(text))
    return len(names)


def load_tree(src_root: Path) -> dict[str, str]:
    files = {}
    for path in sorted(src_root.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        files[str(path.relative_to(src_root))] = path.read_text(
            encoding="utf-8")
    return files


def self_test() -> int:
    """Synthetic trees: the checker must flag duplicates, bad units and
    malformed names, and accept a conforming tree."""
    duplicate = {
        "cache/a.cc": '"quasaq_cache_hits_total"\n',
        "core/b.cc": 'reg.GetCounter("quasaq_cache_hits_total", "x");\n',
    }
    bad_unit = {
        # "bytes" is not in the unit vocabulary (we standardize on kb).
        "net/a.cc": '"quasaq_net_sent_bytes"\n',
    }
    malformed = {
        # No noun segment between subsystem and unit.
        "net/a.cc": '"quasaq_total"\n',
        # Uppercase is out.
        "net/b.cc": '"quasaq_net_Frames_total"\n',
    }
    clean = {
        "cache/a.cc": ('"quasaq_cache_hits_total"\n'
                       '"quasaq_cache_used_kb"\n'),
        "core/b.cc": '"quasaq_session_duration_seconds"\n',
    }
    failures = []
    if len(check_files(duplicate)) != 1:
        failures.append("duplicate registration not flagged")
    if len(check_files(bad_unit)) != 1:
        failures.append("unknown unit not flagged")
    if len(check_files(malformed)) != 2:
        failures.append("malformed names not flagged")
    if check_files(clean):
        failures.append("conforming tree wrongly flagged")
    for f in failures:
        print(f"self-test FAILED: {f}", file=sys.stderr)
    if not failures:
        print("self-test ok: duplicates, bad units and malformed names "
              "are flagged, conforming names pass")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--src", default=None,
                        help="src/ root to scan (default: <repo>/src)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the checker itself on synthetic trees")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    src_root = Path(args.src) if args.src else (
        Path(__file__).resolve().parent.parent / "src")
    if not src_root.is_dir():
        print(f"error: src root not found: {src_root}", file=sys.stderr)
        return 2

    files = load_tree(src_root)
    violations = check_files(files)
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        print(f"\n{len(violations)} metric naming violation(s); the "
              "convention is documented in docs/OBSERVABILITY.md",
              file=sys.stderr)
        return 1
    print(f"metrics ok: {metric_count(files)} metric names are unique "
          "and follow quasaq_<subsystem>_<noun>_<unit>")
    return 0


if __name__ == "__main__":
    sys.exit(main())
