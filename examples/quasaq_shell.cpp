// Interactive QuaSAQ shell: type QoS-aware queries against a simulated
// 3-server deployment and watch planning, admission and resource state.
//
//   $ ./build/examples/quasaq_shell
//   quasaq> SELECT video FROM videos WHERE CONTAINS('news')
//           WITH QOS (resolution >= 320x240, framerate >= 15)
//   quasaq> \buckets
//   quasaq> \run 30
//   quasaq> \quit
//
// Commands: \help \videos \buckets \sessions \stats \run <sec> \quit
// Anything else is parsed as a query. Reads stdin; EOF exits (so it is
// safe to pipe a script of queries through it).

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "core/system.h"
#include "simcore/simulator.h"

using namespace quasaq;  // NOLINT: example code

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  \\help            this text\n"
      "  \\videos          list the content catalog\n"
      "  \\buckets         resource bucket fill levels\n"
      "  \\sessions        outstanding session count\n"
      "  \\stats           system + quality-manager counters\n"
      "  \\report          operator report (buckets, bottleneck)\n"
      "  \\run <seconds>   advance simulated time\n"
      "  \\quit            exit\n"
      "EXPLAIN SELECT ... ranks the delivery plans without running one;\n"
      "anything else is parsed as a QoS-aware query, e.g.\n"
      "  SELECT video FROM videos WHERE CONTAINS('news')\n"
      "    WITH QOS (resolution >= 320x240, framerate >= 15)\n");
}

void PrintVideos(const core::MediaDbSystem& db) {
  for (const media::VideoContent& content : db.library().contents) {
    std::printf("  %-10s %6.0fs  keywords:", content.title.c_str(),
                content.duration_seconds);
    for (const std::string& keyword : content.keywords) {
      std::printf(" %s", keyword.c_str());
    }
    std::printf("\n");
  }
}

void PrintStats(core::MediaDbSystem& db) {
  const core::MediaDbSystem::Stats& stats = db.stats();
  std::printf("  submitted=%llu admitted=%llu rejected=%llu completed=%llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.admitted),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.completed));
  if (db.quality_manager() != nullptr) {
    const core::QualityManager::Stats& qm = db.quality_manager()->stats();
    std::printf("  plans generated=%llu renegotiated=%llu\n",
                static_cast<unsigned long long>(qm.plans_generated),
                static_cast<unsigned long long>(qm.renegotiated));
  }
}

}  // namespace

int main() {
  sim::Simulator simulator;
  core::MediaDbSystem::Options options;
  options.kind = core::SystemKind::kVdbmsQuasaq;
  core::MediaDbSystem db(&simulator, options);
  core::UserProfile profile(UserId(1), "shell-user");

  std::printf(
      "QuaSAQ shell — %zu videos, %zu replicas, %zu servers. \\help for "
      "commands.\n",
      db.library().contents.size(), db.library().replicas.size(),
      db.topology().servers.size());

  std::string line;
  std::printf("quasaq> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line[0] == '\\') {
      std::istringstream in(line.substr(1));
      std::string command;
      in >> command;
      if (command == "quit" || command == "q") break;
      if (command == "help") {
        PrintHelp();
      } else if (command == "videos") {
        PrintVideos(db);
      } else if (command == "buckets") {
        std::printf("  %s\n", db.pool().DebugString().c_str());
      } else if (command == "sessions") {
        std::printf("  %d outstanding at t=%.1fs\n",
                    db.outstanding_sessions(),
                    SimTimeToSeconds(simulator.Now()));
      } else if (command == "stats") {
        PrintStats(db);
      } else if (command == "report") {
        std::printf("%s\n", db.ReportString().c_str());
      } else if (command == "run") {
        double seconds = 0.0;
        in >> seconds;
        simulator.RunUntil(simulator.Now() + SecondsToSimTime(seconds));
        std::printf("  t=%.1fs, %d sessions outstanding\n",
                    SimTimeToSeconds(simulator.Now()),
                    db.outstanding_sessions());
      } else {
        std::printf("  unknown command; \\help\n");
      }
    } else if (!line.empty() &&
               (line.rfind("EXPLAIN", 0) == 0 ||
                line.rfind("explain", 0) == 0)) {
      Result<core::MediaDbSystem::Explanation> explanation =
          db.ExplainTextQuery(SiteId(0), line);
      if (!explanation.ok()) {
        std::printf("  error: %s\n",
                    explanation.status().ToString().c_str());
      } else {
        std::printf("%s", explanation->ToString().c_str());
      }
    } else if (!line.empty()) {
      Result<core::MediaDbSystem::TextQueryOutcome> outcome =
          db.SubmitTextQuery(SiteId(0), line, &profile);
      if (!outcome.ok()) {
        std::printf("  error: %s\n", outcome.status().ToString().c_str());
      } else if (!outcome->delivery.status.ok()) {
        std::printf("  content oid%lld found, delivery rejected: %s\n",
                    static_cast<long long>(outcome->content.value()),
                    outcome->delivery.status.ToString().c_str());
      } else {
        std::printf(
            "  session %lld: oid%lld as %s at %.1f KB/s%s\n",
            static_cast<long long>(outcome->delivery.session.value()),
            static_cast<long long>(outcome->content.value()),
            media::AppQosToString(outcome->delivery.delivered_qos).c_str(),
            outcome->delivery.wire_rate_kbps,
            outcome->delivery.renegotiated ? " (renegotiated)" : "");
      }
    }
    std::printf("quasaq> ");
    std::fflush(stdout);
  }
  std::printf("\nbye\n");
  return 0;
}
