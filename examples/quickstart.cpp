// Quickstart: bring up a QoS-aware multimedia database on the paper's
// 3-server testbed, run a QoS-enhanced query end to end (parse ->
// content search -> plan -> admit -> stream), and inspect what QuaSAQ
// decided.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/system.h"
#include "simcore/simulator.h"

using namespace quasaq;  // NOLINT: example code

int main() {
  // One discrete-event simulator drives the whole deployment.
  sim::Simulator simulator;

  // A full QuaSAQ system: 15 synthetic videos, 3-4 quality replicas
  // each, fully replicated on 3 servers, LRB cost model.
  core::MediaDbSystem::Options options;
  options.kind = core::SystemKind::kVdbmsQuasaq;
  core::MediaDbSystem db(&simulator, options);

  std::printf("library: %zu videos, %zu physical replicas on %zu sites\n",
              db.library().contents.size(), db.library().replicas.size(),
              db.topology().servers.size());

  // A QoS-aware query in the textual language: content component
  // (keyword search) plus quality component (application-QoS bounds).
  const char* query_text =
      "SELECT video FROM videos WHERE CONTAINS('news') "
      "WITH QOS (resolution >= 320x240, resolution <= 480x480, "
      "framerate >= 15, color >= 12)";
  std::printf("\nquery: %s\n", query_text);

  Result<core::MediaDbSystem::TextQueryOutcome> outcome =
      db.SubmitTextQuery(SiteId(0), query_text);
  if (!outcome.ok()) {
    std::printf("query failed: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  const core::MediaDbSystem::DeliveryOutcome& delivery = outcome->delivery;
  std::printf("content resolved to logical OID %lld\n",
              static_cast<long long>(outcome->content.value()));
  if (!delivery.status.ok()) {
    std::printf("delivery rejected: %s\n",
                delivery.status.ToString().c_str());
    return 1;
  }
  std::printf("admitted session %lld: delivering %s at %.1f KB/s\n",
              static_cast<long long>(delivery.session.value()),
              media::AppQosToString(delivery.delivered_qos).c_str(),
              delivery.wire_rate_kbps);
  std::printf("resource buckets now: %s\n",
              db.pool().DebugString().c_str());

  // Let the simulated playback run to completion.
  db.set_on_session_complete([&](SessionId id, SimTime when) {
    std::printf("session %lld completed at t=%.1fs\n",
                static_cast<long long>(id.value()),
                SimTimeToSeconds(when));
  });
  simulator.RunAll();
  std::printf("resource buckets after completion: %s\n",
              db.pool().DebugString().c_str());
  return 0;
}
