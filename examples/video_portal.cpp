// Video portal under load — a compact version of the paper's Figure 6
// story: the same Poisson query stream hits the three system
// configurations, and the portal operator compares what each one
// actually sustains.
//
// Build & run:  ./build/examples/video_portal

#include <cstdio>

#include "workload/throughput.h"

using namespace quasaq;  // NOLINT: example code

int main() {
  std::printf(
      "portal workload: 1 query/s, uniform videos, uniform QoS, 600 s\n\n");
  std::printf("%-14s %9s %9s %9s %11s %16s %18s\n", "system", "submitted",
              "admitted", "rejected", "completed", "avg outstanding",
              "mean delivered KB/s");

  for (core::SystemKind kind :
       {core::SystemKind::kVdbms, core::SystemKind::kVdbmsQosApi,
        core::SystemKind::kVdbmsQuasaq}) {
    workload::ThroughputOptions options;
    options.system.kind = kind;
    options.system.seed = 11;
    options.system.library.max_duration_seconds = 120.0;
    options.traffic.seed = 5;
    options.horizon = 600 * kSecond;
    workload::ThroughputResult result =
        workload::RunThroughputExperiment(options);
    std::printf("%-14s %9llu %9llu %9llu %11llu %16.1f %18.1f\n",
                std::string(core::SystemKindName(kind)).c_str(),
                static_cast<unsigned long long>(result.system_stats.submitted),
                static_cast<unsigned long long>(result.system_stats.admitted),
                static_cast<unsigned long long>(result.system_stats.rejected),
                static_cast<unsigned long long>(result.system_stats.completed),
                result.outstanding.MeanOver(300 * kSecond, 600 * kSecond),
                result.mean_delivered_kbps);
  }

  std::printf(
      "\nreading the table: plain VDBMS admits everything (zero rejects)\n"
      "but its sessions crawl; the QoS-API-only system protects quality\n"
      "by rejecting hard; QuaSAQ's replicas + LRB plans complete the most\n"
      "jobs while honoring every admitted session's QoS.\n");
  return 0;
}
