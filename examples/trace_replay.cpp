// Trace tooling: record a reproducible query trace, save it to disk,
// load it back, and replay the identical stream against two QuaSAQ
// configurations — the workflow for sharing workloads between teams or
// regression-testing planner changes.
//
// Build & run:  ./build/examples/trace_replay [trace-file]

#include <cstdio>
#include <fstream>
#include <sstream>

#include "workload/trace.h"

using namespace quasaq;  // NOLINT: example code

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "/tmp/quasaq_demo.trace";

  // 1. Record a 600-query trace from the paper's generator settings.
  workload::TrafficOptions traffic_options;
  traffic_options.seed = 2004;
  traffic_options.fraction_secure = 0.15;
  workload::TrafficGenerator generator(traffic_options, 15,
                                       {SiteId(0), SiteId(1), SiteId(2)});
  std::vector<workload::TraceEntry> trace =
      workload::RecordTrace(generator, 600);

  {
    std::ofstream out(path);
    if (!out) {
      std::printf("cannot write %s\n", path);
      return 1;
    }
    out << workload::FormatTrace(trace);
  }
  std::printf("recorded %zu queries (%.0f s of workload) to %s\n",
              trace.size(), trace.back().arrival_seconds, path);

  // 2. Load it back — the round trip is exact.
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  core::UserProfile profile(UserId(1), "replayer");
  Result<std::vector<workload::TraceEntry>> loaded =
      workload::ParseTrace(buffer.str(), profile);
  if (!loaded.ok()) {
    std::printf("failed to parse trace: %s\n",
                loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu queries back\n\n", loaded->size());

  // 3. Replay against two planner configurations.
  std::printf("%-28s %10s %10s %12s\n", "configuration", "admitted",
              "rejected", "completed");
  for (const char* model : {"lrb", "random"}) {
    sim::Simulator simulator;
    core::MediaDbSystem::Options options;
    options.kind = core::SystemKind::kVdbmsQuasaq;
    options.cost_model = model;
    options.seed = 7;
    options.library.max_duration_seconds = 120.0;
    core::MediaDbSystem system(&simulator, options);
    workload::TraceReplayResult result =
        workload::ReplayTrace(*loaded, system, simulator, &profile);
    std::printf("%-28s %10d %10d %12llu\n", model, result.admitted,
                result.rejected,
                static_cast<unsigned long long>(result.stats.completed));
  }
  std::printf(
      "\nsame queries, same instants — any difference between the rows\n"
      "is attributable to the cost model alone.\n");
  return 0;
}
