// Capacity planning — the paper's future-work question: "the QuaSAQ
// idea also needs to be validated on distributed systems with scales
// larger than the one we deployed the prototype on." This example sweeps
// the server count and reports what a QuaSAQ deployment sustains at each
// scale under a proportionally growing query load.
//
// Build & run:  ./build/examples/capacity_planning

#include <cstdio>

#include "workload/throughput.h"

using namespace quasaq;  // NOLINT: example code

int main() {
  std::printf("QuaSAQ scale-out sweep (load grows with the cluster)\n\n");
  std::printf("%8s %16s %10s %10s %16s %14s\n", "servers", "arrival (q/s)",
              "admitted", "rejected", "avg outstanding", "reject rate");

  for (int servers : {1, 2, 3, 6, 9}) {
    workload::ThroughputOptions options;
    options.system.kind = core::SystemKind::kVdbmsQuasaq;
    options.system.topology = net::Topology::Uniform(servers);
    options.system.seed = 11;
    options.system.library.max_duration_seconds = 120.0;
    // Offered load scales with capacity: one query per second per
    // 3 servers (the paper's operating point).
    options.traffic.mean_interarrival_seconds = 3.0 / servers;
    options.traffic.seed = 5;
    options.horizon = 600 * kSecond;
    workload::ThroughputResult result =
        workload::RunThroughputExperiment(options);
    double reject_rate =
        result.system_stats.submitted == 0
            ? 0.0
            : static_cast<double>(result.system_stats.rejected) /
                  static_cast<double>(result.system_stats.submitted);
    std::printf("%8d %16.2f %10llu %10llu %16.1f %13.1f%%\n", servers,
                1.0 / options.traffic.mean_interarrival_seconds,
                static_cast<unsigned long long>(result.system_stats.admitted),
                static_cast<unsigned long long>(result.system_stats.rejected),
                result.outstanding.MeanOver(300 * kSecond, 600 * kSecond),
                reject_rate * 100.0);
  }

  std::printf(
      "\nnear-linear growth in sustained sessions confirms the planner\n"
      "and metadata partitioning hold up as servers are added.\n");
  return 0;
}
