// Medical video archive — the paper's motivating scenario (§1): a
// physician diagnosing a patient needs jitter-free, high-rate,
// high-resolution playback with strong security; a nurse organizing the
// same records accepts much less. Each user holds a QoP Browser with
// their own profile; identical content requests produce different
// delivery plans, and when resources run dry, renegotiation degrades
// each user along the axis they value least.
//
// Build & run:  ./build/examples/medical_archive

#include <cstdio>

#include "core/qop_browser.h"
#include "simcore/simulator.h"

using namespace quasaq;  // NOLINT: example code

namespace {

void Show(const char* who, const Result<core::QopBrowser::Presentation>&
                               presentation,
          const core::QopBrowser& browser) {
  std::printf("\n[%s] %s\n", who, browser.last_query_text().c_str());
  if (!presentation.ok()) {
    std::printf("[%s] rejected: %s\n", who,
                presentation.status().ToString().c_str());
    return;
  }
  std::printf(
      "[%s] delivered %s at %.1f KB/s%s\n", who,
      media::AppQosToString(presentation->delivery.delivered_qos).c_str(),
      presentation->delivery.wire_rate_kbps,
      presentation->delivery.renegotiated
          ? "  (renegotiated: degraded along the least-valued axis)"
          : "");
}

}  // namespace

int main() {
  sim::Simulator simulator;
  core::MediaDbSystem::Options options;
  options.kind = core::SystemKind::kVdbmsQuasaq;
  core::MediaDbSystem db(&simulator, options);

  core::QopBrowser physician(&db, core::UserProfile::Physician(UserId(1)),
                             SiteId(0));
  core::QopBrowser nurse(&db, core::UserProfile::Nurse(UserId(2)),
                         SiteId(1));

  query::ContentPredicate patient_video;
  patient_video.keywords = {"patient"};

  // The physician demands the diagnostic-grade stream, protected.
  core::QopRequest diagnostic;
  diagnostic.spatial = core::QopLevel::kHigh;
  diagnostic.temporal = core::QopLevel::kHigh;
  diagnostic.color = core::QopLevel::kHigh;
  diagnostic.audio = core::QopLevel::kHigh;
  diagnostic.security = media::SecurityLevel::kStrong;

  // The nurse organizes records: medium is plenty.
  core::QopRequest organizational;
  organizational.security = media::SecurityLevel::kStandard;

  std::printf("=== idle system: both users get their full request ===");
  Show("physician", physician.Present(patient_video, diagnostic),
       physician);
  Show("nurse", nurse.Present(patient_video, organizational), nurse);

  // The nurse pauses to take a call; her bandwidth goes back to the pool.
  Status status = nurse.Pause();
  std::printf("\nnurse pauses: %s; buckets now %s\n",
              status.ToString().c_str(), db.pool().DebugString().c_str());

  // Crowd the system with background viewers until DVD-rate streams no
  // longer fit, and watch renegotiation kick in.
  std::printf("\n=== loading the servers with background sessions ===\n");
  query::QosRequirement background;
  background.range.min_resolution = media::kResolutionSvcd;
  background.range.min_color_depth_bits = 24;
  background.range.min_frame_rate = 20.0;
  int admitted = 0;
  for (int i = 0; i < 60; ++i) {
    if (db.SubmitDelivery(SiteId(i % 3), LogicalOid(i % 15), background)
            .status.ok()) {
      ++admitted;
    }
  }
  std::printf("%d high-rate background sessions admitted; buckets: %s\n",
              admitted, db.pool().DebugString().c_str());

  std::printf(
      "\n=== loaded system: the physician's request needs a second "
      "chance ===");
  Show("physician", physician.Present(patient_video, diagnostic),
       physician);

  // The nurse comes back — resume is a renegotiation and may fail on a
  // loaded system.
  status = nurse.Resume();
  std::printf("\nnurse resumes: %s\n", status.ToString().c_str());
  if (!status.ok()) {
    std::printf("she retries at reduced quality instead:\n");
    core::QopRequest reduced;
    reduced.spatial = core::QopLevel::kLow;
    reduced.temporal = core::QopLevel::kLow;
    reduced.color = core::QopLevel::kLow;
    reduced.audio = core::QopLevel::kLow;
    Show("nurse", nurse.Present(patient_video, reduced), nurse);
  }

  if (db.quality_manager() != nullptr) {
    const core::QualityManager::Stats& stats =
        db.quality_manager()->stats();
    std::printf(
        "\nquality manager: %llu queries, %llu admitted, %llu renegotiated, "
        "%llu rejected for resources\n",
        static_cast<unsigned long long>(stats.queries),
        static_cast<unsigned long long>(stats.admitted),
        static_cast<unsigned long long>(stats.renegotiated),
        static_cast<unsigned long long>(stats.rejected_no_resources));
  }
  return 0;
}
