// Observability demo: run a traced QuaSAQ deployment through a small
// scripted scenario — admissions, a mid-playback renegotiation, a
// pause/resume, and a rejection under pressure — then export all three
// observability artifacts:
//
//   quasaq_metrics.prom   Prometheus text exposition
//   quasaq_metrics.json   JSON metrics snapshot (incl. gauge history)
//   quasaq_trace.json     Chrome trace-event JSON; open at
//                         https://ui.perfetto.dev or chrome://tracing
//
// The printed reconciliation shows that the exported counters agree
// with the facade's own aggregates — the metrics are the same events,
// not a parallel bookkeeping. CI runs this binary and validates both
// JSON artifacts with `python -m json.tool`.
//
// Build & run:  ./build/examples/observability_demo

#include <cstdio>
#include <string>
#include <vector>

#include "core/system.h"
#include "simcore/simulator.h"

using namespace quasaq;  // NOLINT: example code

namespace {

bool WriteFile(const char* path, const std::string& body) {
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), file);
  std::fclose(file);
  std::printf("wrote %s (%zu bytes)\n", path, body.size());
  return true;
}

query::QosRequirement LowQos() {
  query::QosRequirement qos;
  qos.range.min_frame_rate = 1.0;
  qos.range.max_resolution = media::kResolutionSif;
  return qos;
}

query::QosRequirement HighQos() {
  query::QosRequirement qos;
  qos.range.min_resolution = media::kResolutionSvcd;
  qos.range.min_color_depth_bits = 24;
  qos.range.min_frame_rate = 20.0;
  return qos;
}

}  // namespace

int main() {
  sim::Simulator simulator;
  core::MediaDbSystem::Options options;
  options.kind = core::SystemKind::kVdbmsQuasaq;
  options.seed = 3;
  options.library.max_duration_seconds = 90.0;
  options.cache.enabled = true;      // exercise quasaq_cache_* metrics
  options.observability.tracing = true;
  core::MediaDbSystem db(&simulator, options);

  // One session that lives through the whole lifecycle: admitted at low
  // quality, upgraded mid-stream, paused and resumed, runs to
  // completion.
  core::MediaDbSystem::DeliveryOutcome hero =
      db.SubmitDelivery(SiteId(0), LogicalOid(0), LowQos());
  if (!hero.status.ok()) {
    std::fprintf(stderr, "admission failed: %s\n",
                 hero.status.ToString().c_str());
    return 1;
  }
  Result<core::MediaDbSystem::DeliveryOutcome> upgraded =
      db.ChangeSessionQos(hero.session, HighQos());
  std::printf("hero session %lld: admitted low, renegotiate -> %s\n",
              static_cast<long long>(hero.session.value()),
              upgraded.ok() ? "upgraded" : "kept old plan");
  simulator.ScheduleAt(5 * kSecond, [&db, &hero] {
    (void)db.PauseSession(hero.session);
  });
  simulator.ScheduleAt(12 * kSecond, [&db, &hero] {
    (void)db.ResumeSession(hero.session);
  });

  // Background admissions until the pool pushes back, so the trace
  // shows rejected deliveries and the reserve_rejected counter moves.
  int admitted = 1;
  int rejected = 0;
  for (int i = 0; i < 60; ++i) {
    core::MediaDbSystem::DeliveryOutcome outcome = db.SubmitDelivery(
        SiteId(i % 3), LogicalOid(i % 15), i % 2 == 0 ? HighQos() : LowQos());
    outcome.status.ok() ? ++admitted : ++rejected;
  }
  simulator.RunAll();
  std::printf("scenario done: %d admitted, %d rejected, all complete\n",
              admitted, rejected);

  // Export the three artifacts.
  core::MediaDbSystem::ObservabilitySnapshot snapshot =
      db.TakeObservabilitySnapshot();
  if (!WriteFile("quasaq_metrics.prom", snapshot.prometheus) ||
      !WriteFile("quasaq_metrics.json", snapshot.metrics_json) ||
      !WriteFile("quasaq_trace.json", snapshot.trace_json)) {
    return 1;
  }

  // Reconciliation: the exported counters and the facade's aggregates
  // describe the same run.
  core::MediaDbSystem::Stats stats = db.stats();
  const obs::Tracer& tracer = db.observability().tracer();
  std::printf("\nreconciliation (facade stats vs exported metrics):\n");
  std::printf("  admitted=%llu rejected=%llu completed=%llu\n",
              static_cast<unsigned long long>(stats.admitted),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.completed));
  std::printf("  trace: %zu events on the buffer, %zu dropped, "
              "%zu unbalanced ends\n",
              tracer.event_count(), tracer.dropped_events(),
              tracer.unbalanced_ends());
  bool consistent = tracer.unbalanced_ends() == 0 &&
                    snapshot.prometheus.find("quasaq_session_started_total " +
                                             std::to_string(stats.admitted)) !=
                        std::string::npos &&
                    snapshot.prometheus.find("quasaq_plan_queries_total") !=
                        std::string::npos;
  std::printf("  consistent: %s\n", consistent ? "yes" : "NO");
  std::printf("\nopen quasaq_trace.json at https://ui.perfetto.dev — each\n"
              "delivery is one labeled track; spans nest as\n"
              "delivery > {delivery.admit > plan.enumerate > plan.reserve},\n"
              "then session.stream with renegotiate/pause children.\n");
  return consistent ? 0 : 1;
}
