# Empty dependencies file for medical_archive.
# This may be replaced when dependencies are built.
