# Empty dependencies file for video_portal.
# This may be replaced when dependencies are built.
