file(REMOVE_RECURSE
  "CMakeFiles/video_portal.dir/video_portal.cpp.o"
  "CMakeFiles/video_portal.dir/video_portal.cpp.o.d"
  "video_portal"
  "video_portal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
