file(REMOVE_RECURSE
  "CMakeFiles/quasaq_shell.dir/quasaq_shell.cpp.o"
  "CMakeFiles/quasaq_shell.dir/quasaq_shell.cpp.o.d"
  "quasaq_shell"
  "quasaq_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quasaq_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
