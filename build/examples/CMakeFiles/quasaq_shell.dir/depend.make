# Empty dependencies file for quasaq_shell.
# This may be replaced when dependencies are built.
