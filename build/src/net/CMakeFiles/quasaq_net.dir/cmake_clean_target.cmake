file(REMOVE_RECURSE
  "libquasaq_net.a"
)
