# Empty dependencies file for quasaq_net.
# This may be replaced when dependencies are built.
